// Command casa-experiments regenerates the tables and figures of the CASA
// paper's evaluation (§6-§7) on synthetic workloads.
//
// Usage:
//
//	casa-experiments [-scale small|default] [-fig 5|12|13|14|15|16] [-table 3|4] [-summary] [-all]
//
// Without selection flags it runs everything (-all). Output is plain text,
// one section per artifact; EXPERIMENTS.md records a captured run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"casa/internal/buildinfo"
	"casa/internal/energy"
	"casa/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-experiments: ")
	var (
		scaleName = flag.String("scale", "default", "workload scale: small or default")
		fig       = flag.Int("fig", 0, "regenerate one figure (5, 12, 13, 14, 15, 16)")
		table     = flag.Int("table", 0, "regenerate one table (3, 4)")
		summary   = flag.Bool("summary", false, "print the headline ratio summary (§7.1/§7.2)")
		ablation  = flag.Bool("ablation", false, "run the design-choice ablation sweeps")
		all       = flag.Bool("all", false, "run every artifact")
		version   = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-experiments")
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *fig == 0 && *table == 0 && !*summary && !*ablation {
		*all = true
	}

	s := experiments.NewSuite(scale)
	fmt.Printf("workloads: %d genomes x %d bases, %d reads each (seed %d)\n\n",
		len(s.Workloads), scale.GenomeBases, scale.Reads, scale.Seed)

	run := func(want int, sel *int, fn func() error) {
		if *all || *sel == want {
			if err := fn(); err != nil {
				log.Fatalf("artifact %d: %v", want, err)
			}
		}
	}
	run(5, fig, func() error { return fig5(s) })
	run(12, fig, func() error { return fig12(s) })
	run(13, fig, func() error { return fig13(s) })
	run(14, fig, func() error { return fig14(s) })
	run(15, fig, func() error { return fig15(s) })
	run(16, fig, func() error { return fig16(s) })
	run(3, table, func() error { return table3() })
	run(4, table, func() error { return table4(s) })
	if *all || *summary {
		if err := printSummary(s); err != nil {
			log.Fatal(err)
		}
	}
	if *all || *ablation {
		if err := printAblations(s); err != nil {
			log.Fatal(err)
		}
	}
	_ = os.Stdout.Sync()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

func fig5(s *experiments.Suite) error {
	res, err := s.Fig5()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 5: hit pivots per read per partition vs k ==")
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{strconv.Itoa(r.K), f(r.HitPivots)})
	}
	fmt.Print(experiments.RenderTable([]string{"k", "hit pivots/read/part"}, rows))
	fmt.Printf("k=12 over k=19 ratio: %.2fx (paper: 6.04x)\n\n", res.Ratio12to19)
	return nil
}

func fig12(s *experiments.Suite) error {
	all, err := s.Fig12All()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 12: seeding throughput (reads/s, paper-scale projected) ==")
	for _, res := range all {
		fmt.Printf("-- %s --\n", res.Workload)
		var rows [][]string
		for _, e := range res.Engines {
			rows = append(rows, []string{e.Name, f(e.Throughput)})
		}
		fmt.Print(experiments.RenderTable([]string{"engine", "reads/s"}, rows))
	}
	fmt.Println()
	return nil
}

func fig13(s *experiments.Suite) error {
	res, err := s.Fig12(s.Workloads[0])
	if err != nil {
		return err
	}
	fmt.Println("== Figure 13: power (W) and energy efficiency (reads/mJ) ==")
	var rows [][]string
	for _, name := range []string{"CASA", "ERT", "GenAx"} {
		m := res.Metric(name)
		rows = append(rows, []string{name, f(m.PowerW), f(m.ReadsPerMJ), f(m.DRAMGBs)})
	}
	fmt.Print(experiments.RenderTable([]string{"engine", "power(W)", "reads/mJ", "DRAM GB/s"}, rows))
	fmt.Println()
	return nil
}

func fig14(s *experiments.Suite) error {
	res, err := s.Fig14(s.Workloads[0])
	if err != nil {
		return err
	}
	fmt.Println("== Figure 14: end-to-end normalized running time (BWA-MEM2 = 1.0) ==")
	var rows [][]string
	for _, b := range res.Breakdowns {
		rows = append(rows, []string{
			b.System, f(b.IO), f(b.Seeding), f(b.PreProcessing),
			f(b.Extension), f(b.Overlapped), f(b.PostProcessing), f(b.Total()),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"system", "IO", "seeding", "preproc", "extension", "seed||ext", "postproc", "total"}, rows))
	fmt.Printf("CASA+SeedEx speedup: %.2fx over BWA-MEM2 (paper 6x), %.2fx over ERT+SeedEx (paper 2.4x), %.2fx over GenAx+SeedEx (paper 1.4x)\n\n",
		res.SpeedupVs["BWA-MEM2"], res.SpeedupVs["ERT+SeedEx"], res.SpeedupVs["GenAx+SeedEx"])
	return nil
}

func fig15(s *experiments.Suite) error {
	res, err := s.Fig15()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 15: avg pivots triggering SMEM computation per read ==")
	fmt.Print(experiments.RenderTable([]string{"design", "pivots/read"}, [][]string{
		{"naive", f(res.Naive)},
		{"table", f(res.Table)},
		{"table+analysis", f(res.TableAnalysis)},
	}))
	fmt.Printf("filter rates: table %.1f%% (paper 98.9%%), table+analysis %.1f%% (paper 99.9%%)\n\n",
		res.TableFilterRate*100, res.AnalysisFilterRate*100)
	return nil
}

func fig16(s *experiments.Suite) error {
	res, err := s.Fig16()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 16: inexact-matching throughput normalized to GenAx ==")
	fmt.Print(experiments.RenderTable([]string{"engine", "normalized"}, [][]string{
		{"CASA", f(res.CASA)},
		{"ERT", f(res.ERT)},
		{"GenAx", "1"},
	}))
	fmt.Printf("CASA vs GenAx: %.2fx (paper 3.86x); CASA vs ERT: %.2fx (paper 0.72x); %d inexact reads\n\n",
		res.CASA, res.CASAOverERT, res.InexactReads)
	return nil
}

func table3() error {
	fmt.Println("== Table 3: circuit models in 28 nm ==")
	var rows [][]string
	for _, m := range experiments.Table3() {
		rows = append(rows, []string{
			m.Name, f(m.DelayPS), f(m.AreaUM2), f(m.EnergyPJ), f(m.LeakUA),
			fmt.Sprintf("%dx%d", m.Rows, m.Bits),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"component", "delay(ps)", "area(um2)", "energy(pJ)", "leakage(uA)", "size"}, rows))
	fmt.Println()
	return nil
}

func table4(s *experiments.Suite) error {
	res, err := s.Table4()
	if err != nil {
		return err
	}
	fmt.Println("== Table 4: power and area breakdown (model at paper geometry) ==")
	fmt.Print(res.Report.String())
	fmt.Println("\npaper's published rows:")
	var rows [][]string
	for _, r := range energy.PaperTable4() {
		rows = append(rows, []string{r.Component, f(r.AreaMM2), f(r.PowerW)})
	}
	fmt.Print(experiments.RenderTable([]string{"component", "area(mm2)", "power(W)"}, rows))
	fmt.Printf("total area: %.1f mm^2 (paper %.1f); +%.1f%% vs GenAx (paper +33.9%%)\n\n",
		res.TotalArea, res.PaperArea, res.AreaVsGenAx*100)
	return nil
}

func printSummary(s *experiments.Suite) error {
	sum, err := s.Summarize()
	if err != nil {
		return err
	}
	fmt.Println("== Headline summary (§7.1/§7.2) ==")
	fmt.Print(experiments.RenderTable([]string{"metric", "measured", "paper"}, [][]string{
		{"CASA throughput vs B-12T", f(sum.CASAOverB12) + "x", "17.26x"},
		{"CASA throughput vs B-32T", f(sum.CASAOverB32) + "x", "7.53x"},
		{"CASA throughput vs GenAx", f(sum.CASAOverGenAx) + "x", "5.47x"},
		{"CASA throughput vs ERT", f(sum.CASAOverERT) + "x", "1.2x"},
		{"CASA efficiency vs GenAx", f(sum.EffOverGenAx) + "x", "6.69x"},
		{"CASA efficiency vs ERT", f(sum.EffOverERT) + "x", "2.57x"},
		{"CASA DRAM bandwidth", f(sum.CASADRAMGBs) + " GB/s", "< 30 GB/s"},
		{"exact-match read fraction", f(sum.ExactFraction*100) + "%", "~80%"},
	}))
	fmt.Println()
	return nil
}

func printAblations(s *experiments.Suite) error {
	sweeps, err := s.Ablations()
	if err != nil {
		return err
	}
	fmt.Println("== Design-choice ablations (DESIGN.md §6) ==")
	for _, sw := range sweeps {
		fmt.Printf("-- %s --\n", sw.Sweep)
		var rows [][]string
		for _, r := range sw.Rows {
			rows = append(rows, []string{
				r.Name, f(r.Throughput), f(r.ReadsPerMJ),
				f(float64(r.CAMRowsEnabled)), f(float64(r.PivotsComputed)), f(r.OnChipMB),
			})
		}
		fmt.Print(experiments.RenderTable(
			[]string{"config", "reads/s", "reads/mJ", "CAM rows", "pivots", "on-chip MB"}, rows))
	}
	fmt.Println()
	return nil
}
