// Command casa-align is a complete single- and paired-end short-read
// aligner built from this repository's components, mirroring the paper's
// §5 system: a registry engine seeds reads (SMEMs + hit positions), 5
// SeedEx machines extend the seeds with banded Smith-Waterman and verify
// with Myers edit machines, and alignments stream out as SAM.
//
// Any engine registered in internal/engine can seed (-engine; "list"
// prints them). casa resolves both strands and hit positions natively;
// other engines seed the reverse complements in a second pass and fall
// back to a direct-scan positioner. -verify cross-checks the seeding
// engine's forward SMEMs against a second engine batch by batch.
//
// The run is interruptible: SIGINT stops seeding new shards, the current
// batch's completed prefix is extended and written, and the command
// flushes the SAM output plus partial metrics/trace before exiting with
// status 130. Live state is observable the same way as casa-smem: -http
// adds /progress and /events, -progress logs terminal snapshots,
// -stall-timeout arms a watchdog; diagnostics are run-scoped structured
// logs on stderr (-log-level, -log-format).
//
// Usage:
//
//	casa-align -ref ref.fa -reads reads.fq [-out out.sam]            # single-end
//	casa-align -ref ref.fa -reads r1.fq -reads2 r2.fq [-out out.sam] # paired-end
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"casa/internal/batch"
	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/metrics"
	"casa/internal/obshttp"
	"casa/internal/pairing"
	"casa/internal/progress"
	"casa/internal/refidx"
	"casa/internal/sam"
	"casa/internal/seedex"
	"casa/internal/seqio"
	_ "casa/internal/shard" // registers the sharded:<name> composites
	"casa/internal/smem"
	"casa/internal/trace"
)

// Proper-pair template length window (FR orientation).
const (
	minInsert = 50
	maxInsert = 2000
)

type aligner struct {
	ctx        context.Context
	eng        engine.Engine
	pos        engine.Positioner // nil = direct-scan fallback over flat
	veng       engine.Engine     // nil = no -verify cross-check
	flat       dna.Sequence
	sx         *seedex.Machine
	ix         *refidx.Index
	maxHits    int
	pool       batch.Options
	tracker    *progress.Tracker
	writer     *sam.Writer
	aligned    int
	total      int
	mismatches int
}

// newLogger builds the command's stderr slog.Logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// logSnapshot emits one progress snapshot as an info record — the
// terminal-ticker counterpart of the /progress endpoint.
func logSnapshot(log *slog.Logger, s progress.Snapshot) {
	log.Info("progress",
		"reads_done", s.ReadsDone,
		"total_reads", s.TotalReads,
		"shards_done", s.ShardsDone,
		"percent_done", fmt.Sprintf("%.1f", s.PercentDone),
		"host_reads_per_s", fmt.Sprintf("%.0f", s.HostReadsPerS),
		"model_cycles", s.ModelCycles,
		"eta_s", fmt.Sprintf("%.1f", s.ETASeconds))
}

func main() {
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required)")
		indexPath  = flag.String("index", "", "prebuilt casa-idx/v1 index (casa-index output) over the same reference; any persisting engine")
		readsPath  = flag.String("reads", "", "reads FASTQ (required; mate 1 in paired mode)")
		reads2     = flag.String("reads2", "", "mate-2 FASTQ (enables paired-end mode)")
		outPath    = flag.String("out", "-", "SAM output path (- = stdout)")
		engName    = flag.String("engine", "casa", "seeding engine (any registered name; \"list\" prints them)")
		verify     = flag.String("verify", "", "cross-check the seeding engine's forward SMEMs against this engine (\"list\" prints the choices)")
		partition  = flag.Int("partition", 4<<20, "partition size in bases (engines that partition the reference)")
		maxHits    = flag.Int("max-hits", 4, "extension candidates per SMEM")
		batchSize  = flag.Int("batch", 4096, "reads seeded per batch")
		workers    = flag.Int("workers", 0, "seeding worker goroutines (0 = one per CPU)")
		metricsOut = flag.Bool("metrics", false, "write the metrics text exposition to stderr after the run")
		tracePath  = flag.String("trace", "", "write a casa-trace/v1 seeding trace (.jsonl = JSONL, else Chrome JSON)")
		traceSamp  = flag.String("trace-sample", "all", "trace sampling policy: all, head:N, slowest:N")
		wallPath   = flag.String("walltrace", "", "write a casa-walltrace/v1 host wall-clock profile of the seeding pool (Chrome JSON; analyze with casa-trace -wall)")
		httpAddr   = flag.String("http", "", "serve /metrics, /trace, /progress, /events and /debug/pprof on this address until interrupted")
		progEvery  = flag.Duration("progress", 0, "log a progress snapshot at this interval (0 = off)")
		stallAfter = flag.Duration("stall-timeout", 0, "warn with per-worker state and a goroutine dump when no seeding shard completes for this long (0 = off)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		version    = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-align")
		return
	}
	if *engName == "list" || *verify == "list" {
		engine.WriteList(os.Stdout)
		return
	}
	if f, ok := engine.Lookup(*engName); ok {
		*engName = f.Name
	}
	if f, ok := engine.Lookup(*verify); ok {
		*verify = f.Name
	}
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// With -index the engine identity comes from the container header; an
	// explicit conflicting -engine is an error, not a silent override.
	if *indexPath != "" {
		var engSet bool
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "engine" {
				engSet = true
			}
		})
		hdr, err := peekHeader(*indexPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casa-align:", err)
			os.Exit(1)
		}
		if engSet && *engName != hdr.Engine {
			fmt.Fprintf(os.Stderr, "casa-align: %s holds a %s index; it cannot seed with -engine %s\n",
				*indexPath, hdr.Engine, *engName)
			os.Exit(2)
		}
		*engName = hdr.Engine
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casa-align:", err)
		os.Exit(2)
	}
	runID := progress.NewRunID()
	logger = logger.With("run_id", runID, "engine", *engName)
	// srv is declared before fatal so error exits after -http has started
	// the observability server still release its listener.
	var srv *obshttp.Server
	fatal := func(err error) {
		logger.Error(err.Error())
		if srv != nil {
			srv.Close()
		}
		os.Exit(1)
	}

	// SIGINT cancels the run context: seeding drains its in-flight
	// shards, the completed prefix is aligned and flushed, partial
	// telemetry is published, and the command exits 130. A second SIGINT
	// kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ix, err := loadRef(*refPath)
	if err != nil {
		fatal(err)
	}
	var eng engine.Engine
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			fatal(err)
		}
		var hdr idxio.Header
		eng, hdr, err = engine.LoadIndex(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// The index must describe the same reference -ref resolved to:
		// extension and SAM emission use -ref's coordinate space, so a
		// stale index would silently misplace every alignment.
		if err := checkChromosomes(hdr.Chromosomes, ix.Chromosomes()); err != nil {
			fatal(fmt.Errorf("%s does not match -ref %s: %w", *indexPath, *refPath, err))
		}
	} else {
		eng, err = engine.New(*engName, ix.Flat(), engine.Options{Partition: *partition})
		if err != nil {
			fatal(err)
		}
	}
	var veng engine.Engine
	if *verify != "" {
		veng, err = engine.New(*verify, ix.Flat(), engine.Options{})
		if err != nil {
			fatal(err)
		}
	}
	sx, err := seedex.New(ix.Flat(), seedex.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	var refSeqs []sam.RefSeq
	for _, c := range ix.Chromosomes() {
		refSeqs = append(refSeqs, sam.RefSeq{Name: c.Name, Length: c.Length})
	}
	reg := metrics.New()
	var tr *trace.Trace
	if *tracePath != "" || *httpAddr != "" {
		policy, err := trace.ParsePolicy(*traceSamp)
		if err != nil {
			fatal(err)
		}
		tr = trace.New(policy, 0)
	}
	// The wall recorder profiles the host side of the seeding pool: one
	// span per claimed shard, across every streamed batch (ReadBase keeps
	// shard names globally unique). The verify and reverse-complement
	// passes share it — their spans land under the same workers.
	var wall *trace.WallTrace
	if *wallPath != "" {
		wall = trace.NewWall(0)
	}
	pool := batch.Options{Workers: *workers, Metrics: reg, Trace: tr, Wall: wall}
	// The input streams in batches, so the read total is unknown upfront
	// (single-end) or learned at load (paired): the tracker starts at 0
	// and grows via AddTotal, and percent/ETA stay 0 until it is known.
	tracker := progress.New(runID, *engName, pool.WorkerCount(), 0)
	pool.Progress = tracker
	pos, _ := eng.(engine.Positioner)
	a := &aligner{
		ctx: ctx, eng: eng, pos: pos, veng: veng, flat: ix.Flat(),
		sx: sx, ix: ix, maxHits: *maxHits,
		pool: pool, tracker: tracker,
		writer: sam.NewWriter(out, refSeqs, "casa-align"),
	}
	logger.Info("run starting", "workers", pool.WorkerCount(), "batch", *batchSize, "paired", *reads2 != "")

	if *httpAddr != "" {
		// Start before aligning so /debug/pprof can profile the run and
		// /progress and /events observe it live.
		srv, err = obshttp.Start(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		srv.SetProgress(tracker)
		logger.Info("observability server listening", "addr", srv.Addr())
	}
	if *stallAfter > 0 {
		wd := progress.NewWatchdog(tracker, *stallAfter, logger)
		wd.Start()
		defer wd.Stop()
	}
	if *progEvery > 0 {
		go func() {
			tick := time.NewTicker(*progEvery)
			defer tick.Stop()
			for {
				select {
				case <-tracker.Done():
					return
				case <-tick.C:
					logSnapshot(logger, tracker.Snapshot())
				}
			}
		}()
	}

	if *reads2 == "" {
		err = a.runSingle(*readsPath, *batchSize)
	} else {
		err = a.runPaired(*readsPath, *reads2, *batchSize)
	}
	tracker.Finish()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		logger.Warn("run interrupted; flushing the aligned prefix", "reads_done", a.total)
	}
	if err := a.writer.Flush(); err != nil {
		fatal(err)
	}
	a.sx.PublishMetrics(reg)
	reg.Counter("align/reads/total").Add(int64(a.total))
	reg.Counter("align/reads/aligned").Add(int64(a.aligned))
	logger.Info("alignment finished", "aligned", a.aligned, "reads", a.total, "interrupted", interrupted)
	if veng != nil {
		logger.Info("seed verification finished", "verify", *verify, "mismatches", a.mismatches)
	}
	if tr != nil {
		// On an interrupted run this is the valid partial trace of the
		// completed shards.
		spans := tr.Spans()
		if srv != nil {
			srv.PublishTrace(spans)
		}
		if *tracePath != "" {
			if err := trace.WriteFile(*tracePath, spans); err != nil {
				fatal(err)
			}
		}
	}
	if wall != nil {
		spans := wall.Spans()
		if err := trace.WriteWallFile(*wallPath, spans, wall.Dropped()); err != nil {
			fatal(err)
		}
		logger.Info("wall trace written", "path", *wallPath,
			"spans", len(spans), "dropped", wall.Dropped())
	}
	if *metricsOut {
		if err := reg.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if srv != nil {
		if !interrupted {
			logger.Info("serving observability endpoints until interrupted", "addr", srv.Addr())
			<-ctx.Done()
		}
		if err := srv.Close(); err != nil {
			logger.Error(err.Error())
		}
	}
	if interrupted {
		os.Exit(130)
	}
	if a.mismatches > 0 {
		os.Exit(1)
	}
}

// seedBatch seeds one batch and returns per-read forward/reverse seed
// sets covering the completed prefix. Engines with native positioning
// (casa) resolve both strands in one pass; other engines seed the
// reverse complements in a second pass (outside the progress/trace
// accounting, which counts each read once). With -verify set, the
// forward SMEMs are cross-checked against the verify engine.
func (a *aligner) seedBatch(reads []dna.Sequence) ([]engine.Seeds, int, error) {
	res, done, err := batch.SeedEngineCtx(a.ctx, a.eng, reads, a.pool)
	var seeds []engine.Seeds
	if a.pos != nil {
		seeds = a.pos.ReadSeeds(res)
	} else {
		fwd := a.eng.SMEMs(res)
		seeds = make([]engine.Seeds, done)
		for i := range seeds {
			seeds[i].Forward = fwd[i]
		}
		if err == nil && done > 0 {
			rcs := make([]dna.Sequence, done)
			for i, r := range reads[:done] {
				rcs[i] = r.ReverseComplement()
			}
			rpool := a.pool
			rpool.Progress = nil
			rpool.Trace = nil
			var rres engine.Result
			var rdone int
			rres, rdone, err = batch.SeedEngineCtx(a.ctx, a.eng, rcs, rpool)
			for i, ms := range a.eng.SMEMs(rres)[:rdone] {
				seeds[i].Reverse = ms
			}
			if rdone < done {
				done = rdone
			}
		}
	}
	if a.veng != nil && err == nil {
		vpool := a.pool
		vpool.Progress = nil
		vpool.Trace = nil
		vres, vdone, verr := batch.SeedEngineCtx(a.ctx, a.veng, reads[:done], vpool)
		if verr == nil {
			for i, want := range a.veng.SMEMs(vres)[:vdone] {
				if !smem.SameIntervals(seeds[i].Forward, want) {
					a.mismatches++
				}
			}
		}
	}
	return seeds, done, err
}

// runSingle streams single-end reads in batches. On cancellation the
// current batch's completed read prefix is still extended and written,
// and the error is context.Canceled.
func (a *aligner) runSingle(path string, batchSize int) error {
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()

	var recs []seqio.Record
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		reads := make([]dna.Sequence, len(recs))
		for i := range recs {
			reads[i] = recs[i].Seq
		}
		a.tracker.AddTotal(int64(len(reads)))
		// Later batches keep globally unique read indices in the trace.
		a.pool.ReadBase = a.total
		seeds, done, seedErr := a.seedBatch(reads)
		for i := 0; i < done; i++ {
			rec := recs[i]
			p := a.place(rec.Seq, seeds[i])
			out := a.recordSingle(rec, p)
			if out.Flag&sam.FlagUnmapped == 0 {
				a.aligned++
			}
			if err := a.writer.Write(out); err != nil {
				return err
			}
		}
		a.total += done
		// The extension phase runs outside the seeding pool: refresh the
		// stall watchdog so a long extension is not reported as a hang.
		a.tracker.Touch()
		recs = recs[:0]
		return seedErr
	}
	err = seqio.ForEachFastq(in, func(rec seqio.Record) error {
		recs = append(recs, rec)
		if len(recs) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// runPaired streams mate pairs in lockstep batches. On cancellation only
// fully-seeded pairs of the current batch are extended and written.
func (a *aligner) runPaired(path1, path2 string, batchSize int) error {
	r1, err := readAllFastq(path1)
	if err != nil {
		return err
	}
	r2, err := readAllFastq(path2)
	if err != nil {
		return err
	}
	if len(r1) != len(r2) {
		return fmt.Errorf("casa-align: mate files differ in length: %d vs %d", len(r1), len(r2))
	}
	a.tracker.AddTotal(int64(2 * len(r1)))
	for lo := 0; lo < len(r1); lo += batchSize {
		hi := min(lo+batchSize, len(r1))
		var reads []dna.Sequence
		for i := lo; i < hi; i++ {
			reads = append(reads, r1[i].Seq, r2[i].Seq)
		}
		a.pool.ReadBase = 2 * lo // mates interleave: global read index = 2*pair + mate
		seeds, done, seedErr := a.seedBatch(reads)
		for i := lo; i < lo+done/2; i++ {
			p1 := a.place(r1[i].Seq, seeds[2*(i-lo)])
			p2 := a.place(r2[i].Seq, seeds[2*(i-lo)+1])
			p1, p2 = a.rescuePair(r1[i], r2[i], p1, p2)
			rec1, rec2 := a.recordPair(r1[i], r2[i], p1, p2)
			for _, rec := range []sam.Record{rec1, rec2} {
				if rec.Flag&sam.FlagUnmapped == 0 {
					a.aligned++
				}
				if err := a.writer.Write(rec); err != nil {
					return err
				}
			}
			a.total += 2
		}
		a.tracker.Touch()
		if seedErr != nil {
			return seedErr
		}
	}
	return nil
}

// placement is one read's resolved alignment.
type placement struct {
	ok     bool
	chrom  refidx.Chromosome
	local  int
	rev    bool
	al     seedex.Alignment
	second int
}

// hitPositions resolves an SMEM's reference occurrences: natively for
// positioning engines, by direct scan otherwise.
func (a *aligner) hitPositions(strand dna.Sequence, m smem.Match) []int32 {
	if a.pos != nil {
		return a.pos.HitPositions(strand, m, a.maxHits)
	}
	return engine.Positions(a.flat, strand, m, a.maxHits)
}

// place extends both strands of one read and resolves the winner to a
// chromosome.
func (a *aligner) place(read dna.Sequence, rs engine.Seeds) placement {
	toSeeds := func(strand dna.Sequence, smems []smem.Match) []seedex.Seed {
		var seeds []seedex.Seed
		for _, m := range smems {
			for _, pos := range a.hitPositions(strand, m) {
				seeds = append(seeds, seedex.Seed{QStart: m.Start, QEnd: m.End, RefPos: pos})
			}
		}
		return seeds
	}
	type cand struct {
		al  seedex.Alignment
		rev bool
	}
	var cands []cand
	if al, ok := a.sx.ExtendRead(read, toSeeds(read, rs.Forward)); ok {
		cands = append(cands, cand{al, false})
	}
	rc := read.ReverseComplement()
	if al, ok := a.sx.ExtendRead(rc, toSeeds(rc, rs.Reverse)); ok {
		cands = append(cands, cand{al, true})
	}
	if len(cands) == 0 {
		return placement{}
	}
	best := cands[0]
	second := best.al.SecondScore
	for _, c := range cands[1:] {
		if c.al.Score > best.al.Score {
			second = max(second, best.al.Score)
			best = c
		} else {
			second = max(second, c.al.Score)
		}
	}
	chrom, local, ok := a.ix.ResolveSpan(best.al.RefStart, best.al.Cigar.RefLen())
	if !ok {
		return placement{} // crosses a chromosome spacer: not a real locus
	}
	return placement{ok: true, chrom: chrom, local: local, rev: best.rev, al: best.al, second: second}
}

// recordSingle builds the SAM record for a single-end read.
func (a *aligner) recordSingle(rec seqio.Record, p placement) sam.Record {
	if !p.ok {
		return sam.Unmapped(rec.Name, rec.Seq, rec.Qual)
	}
	return a.baseRecord(rec, p, 0)
}

// baseRecord fills the mapped fields shared by single and paired records.
func (a *aligner) baseRecord(rec seqio.Record, p placement, extraFlags int) sam.Record {
	out := sam.Record{
		QName:        rec.Name,
		Flag:         extraFlags,
		RName:        p.chrom.Name,
		Pos:          p.local + 1,
		MapQ:         sam.MapQFromScores(p.al.Score, p.second, len(rec.Seq)),
		Cigar:        p.al.Cigar,
		EditDistance: p.al.EditDist,
		Score:        p.al.Score,
		HasTags:      true,
	}
	if p.rev {
		out.Flag |= sam.FlagReverse
		out.Seq = rec.Seq.ReverseComplement()
		out.Qual = reverseQual(rec.Qual)
	} else {
		out.Seq = rec.Seq
		out.Qual = rec.Qual
	}
	return out
}

// recordPair builds both mates' records with pair flags, mate fields and
// the proper-pair determination (same chromosome, FR orientation, insert
// within [minInsert, maxInsert]).
func (a *aligner) recordPair(rec1, rec2 seqio.Record, p1, p2 placement) (sam.Record, sam.Record) {
	build := func(rec seqio.Record, p placement, mateFlag int, mate placement) sam.Record {
		var out sam.Record
		if p.ok {
			out = a.baseRecord(rec, p, sam.FlagPaired|mateFlag)
		} else {
			out = sam.Unmapped(rec.Name, rec.Seq, rec.Qual)
			out.Flag |= sam.FlagPaired | mateFlag
		}
		if !mate.ok {
			out.Flag |= sam.FlagMateUnmapped
			return out
		}
		if mate.rev {
			out.Flag |= sam.FlagMateReverse
		}
		if p.ok && mate.chrom.Name == p.chrom.Name {
			out.RNext = "="
		} else {
			out.RNext = mate.chrom.Name
		}
		out.PNext = mate.local + 1
		return out
	}
	rec1Out := build(rec1, p1, sam.FlagFirstInPair, p2)
	rec2Out := build(rec2, p2, sam.FlagLastInPair, p1)

	if proper, tlen := properPair(p1, p2); proper {
		rec1Out.Flag |= sam.FlagProperPair
		rec2Out.Flag |= sam.FlagProperPair
		if p1.local <= p2.local {
			rec1Out.TLen, rec2Out.TLen = tlen, -tlen
		} else {
			rec1Out.TLen, rec2Out.TLen = -tlen, tlen
		}
	}
	return rec1Out, rec2Out
}

// properPair checks FR orientation on one chromosome with a plausible
// template length, returning the length.
func properPair(p1, p2 placement) (bool, int) {
	if !p1.ok || !p2.ok || p1.chrom.Name != p2.chrom.Name {
		return false, 0
	}
	opt := pairing.DefaultOptions()
	opt.MinInsert, opt.MaxInsert = minInsert, maxInsert
	return pairing.Proper(toMate(p1), toMate(p2), opt)
}

// toMate converts a placement into pairing's flat-coordinate view.
func toMate(p placement) pairing.Mate {
	return pairing.Mate{
		Mapped:   p.ok,
		Pos:      p.al.RefStart,
		RefLen:   p.al.Cigar.RefLen(),
		Reverse:  p.rev,
		Score:    p.al.Score,
		EditDist: p.al.EditDist,
		Cigar:    p.al.Cigar,
	}
}

// rescuePair attempts mate rescue when exactly one mate placed: the
// partner's position implies a window for the missing mate, searched with
// a banded fit (internal/pairing).
func (a *aligner) rescuePair(rec1, rec2 seqio.Record, p1, p2 placement) (placement, placement) {
	opt := pairing.DefaultOptions()
	opt.MinInsert, opt.MaxInsert = minInsert, maxInsert
	switch {
	case p1.ok && !p2.ok:
		if m, ok := pairing.Rescue(a.ix.Flat(), rec2.Seq, toMate(p1), opt); ok {
			p2 = a.fromMate(m)
		}
	case p2.ok && !p1.ok:
		if m, ok := pairing.Rescue(a.ix.Flat(), rec1.Seq, toMate(p2), opt); ok {
			p1 = a.fromMate(m)
		}
	}
	return p1, p2
}

// fromMate converts a rescued mate back into a placement (resolving the
// chromosome); rescues landing on a spacer are dropped.
func (a *aligner) fromMate(m pairing.Mate) placement {
	chrom, local, ok := a.ix.ResolveSpan(m.Pos, m.RefLen)
	if !ok {
		return placement{}
	}
	return placement{
		ok: true, chrom: chrom, local: local, rev: m.Reverse,
		al: seedex.Alignment{
			Score: m.Score, RefStart: m.Pos, Cigar: m.Cigar, EditDist: m.EditDist,
		},
	}
}

func reverseQual(q []byte) []byte {
	out := make([]byte, len(q))
	for i, c := range q {
		out[len(q)-1-i] = c
	}
	return out
}

func readAllFastq(path string) ([]seqio.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seqio.ReadFastq(f)
}

// peekHeader reads just the casa-idx/v1 header of an index file.
func peekHeader(path string) (idxio.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return idxio.Header{}, err
	}
	defer f.Close()
	_, hdr, err := idxio.NewReader(f)
	return hdr, err
}

// checkChromosomes requires the index header's chromosome table to match
// the one -ref resolved to, name for name and coordinate for coordinate.
// An index written without a chromosome table (chroms omitted at build
// time) passes — there is nothing to cross-check.
func checkChromosomes(got []idxio.Chromosome, want []refidx.Chromosome) error {
	if len(got) == 0 {
		return nil
	}
	if len(got) != len(want) {
		return fmt.Errorf("index has %d sequences, reference has %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Name != w.Name || g.Start != int64(w.Start) || g.Length != int64(w.Length) {
			return fmt.Errorf("sequence %d: index has %s [%d,+%d), reference has %s [%d,+%d)",
				i, g.Name, g.Start, g.Length, w.Name, w.Start, w.Length)
		}
	}
	return nil
}

func loadRef(path string) (*refidx.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	return refidx.Build(recs)
}
