// Command casa-index builds a seeding index offline for any persisting
// engine in the internal/engine registry and writes it as a versioned,
// checksummed casa-idx/v1 container, matching the paper's flow ("CASA
// builds the mini index table and the tag table offline for each
// reference partition", §4.1). casa-smem, casa-serve, casa-align and
// casa-sim load the result with -index, skipping reconstruction.
//
// The output is written atomically: the container is staged in a
// temporary file next to -out and renamed into place only after a
// successful write, so a crash or a full disk never leaves a truncated
// index under the final name.
//
// Usage:
//
//	casa-index -ref ref.fa -out ref.casaidx [-engine casa] [-min-smem 19] [-shards N]
//	casa-index -info ref.casaidx
//
// The two modes are exclusive: combining -info with any build flag is a
// usage error (exit 2), not a silent ignore — a typo like
// `casa-index -info old.casaidx -out new.casaidx` must not masquerade as
// a successful rebuild.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"casa/internal/buildinfo"
	"casa/internal/core"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/refidx"
	"casa/internal/seqio"
	_ "casa/internal/shard" // registers the sharded:<name> composites
)

// options holds the parsed command line.
type options struct {
	ref, out, info string
	eng            string
	minSMEM        int
	partition      int
	k, m           int
	shards         int
	shardOverlap   int
	version        bool

	// kSet/mSet record whether the casa-specific geometry knobs were
	// given explicitly; they select the core.Config build path and are
	// rejected for engines that have no such config.
	kSet, mSet bool
}

// buildOnly names the flags that configure an index build and therefore
// contradict -info, which only reads an existing index.
var buildOnly = map[string]bool{
	"ref": true, "out": true, "engine": true, "min-smem": true,
	"partition": true, "k": true, "m": true,
	"shards": true, "shard-overlap": true,
}

// parseArgs registers the flags on fs and parses args, rejecting
// contradictory mode mixes. Only flags the user explicitly set count:
// defaults never conflict.
func parseArgs(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.ref, "ref", "", "reference FASTA")
	fs.StringVar(&o.out, "out", "ref.casaidx", "index output path")
	fs.StringVar(&o.eng, "engine", "casa", "engine to index for (any registered name; \"list\" prints them)")
	fs.IntVar(&o.minSMEM, "min-smem", 19, "minimum SMEM length recorded in the index header")
	fs.IntVar(&o.partition, "partition", 0, "partition size in bases for partitioning engines (0 = engine default)")
	fs.IntVar(&o.k, "k", 19, "seed k-mer size (casa engine only)")
	fs.IntVar(&o.m, "m", 10, "mini index m-mer size (casa engine only)")
	fs.IntVar(&o.shards, "shards", 0, "reference shards for sharded:* engines (0 = engine default)")
	fs.IntVar(&o.shardOverlap, "shard-overlap", 0, "shard overlap in bases; must be >= the longest read seeded (0 = engine default)")
	fs.StringVar(&o.info, "info", "", "inspect an existing index instead of building")
	fs.BoolVar(&o.version, "version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	var mixed []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "k":
			o.kSet = true
		case "m":
			o.mSet = true
		}
		if o.info != "" && buildOnly[f.Name] {
			mixed = append(mixed, "-"+f.Name)
		}
	})
	if len(mixed) > 0 {
		sort.Strings(mixed)
		return nil, fmt.Errorf("-info inspects an existing index and cannot be combined with build flag(s) %s", strings.Join(mixed, ", "))
	}
	return o, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-index: ")
	fs := flag.NewFlagSet("casa-index", flag.ExitOnError)
	o, err := parseArgs(fs, os.Args[1:])
	if err != nil {
		log.Print(err)
		fs.Usage()
		os.Exit(2)
	}

	if o.version {
		buildinfo.Print(os.Stdout, "casa-index")
		return
	}
	if o.eng == "list" {
		engine.WriteList(os.Stdout)
		return
	}
	if o.info != "" {
		inspect(o.info)
		return
	}
	if o.ref == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, ok := engine.Lookup(o.eng)
	if !ok {
		var sb strings.Builder
		engine.WriteList(&sb)
		log.Fatalf("unknown engine %q; registered engines:\n%s", o.eng, sb.String())
	}
	name := f.Name
	if f.NewEmpty == nil {
		log.Fatalf("engine %s does not support index persistence (it rebuilds from FASTA as fast as it would load)", name)
	}

	rf, err := os.Open(o.ref)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqio.ReadFasta(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	ix, err := refidx.Build(recs)
	if err != nil {
		log.Fatal(err)
	}
	ref := ix.Flat()
	var chroms []idxio.Chromosome
	for _, c := range ix.Chromosomes() {
		chroms = append(chroms, idxio.Chromosome{
			Name: c.Name, Start: int64(c.Start), Length: int64(c.Length),
		})
	}

	opt := engine.Options{
		MinSMEM:      o.minSMEM,
		Partition:    o.partition,
		Shards:       o.shards,
		ShardOverlap: o.shardOverlap,
	}
	if o.kSet || o.mSet {
		if strings.TrimPrefix(name, "sharded:") != "casa" {
			log.Fatalf("-k and -m configure the casa accelerator; they do not apply to -engine %s", name)
		}
		cfg := core.DefaultConfig()
		cfg.K, cfg.M = o.k, o.m
		if o.minSMEM > cfg.K {
			cfg.MinSMEM = o.minSMEM
		} else {
			cfg.MinSMEM = cfg.K
		}
		if o.partition > 0 {
			cfg.PartitionBases = o.partition
		}
		opt.Config = cfg
	}

	start := time.Now()
	eng, err := engine.New(name, ref, opt)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	start = time.Now()
	size, err := writeAtomic(o.out, func(w io.Writer) error {
		return engine.SaveIndex(w, eng, opt, chroms)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d bases (%d sequences) for %s in %v; wrote %s (%.1f MB) in %v\n",
		len(ref), len(chroms), name, buildTime.Round(time.Millisecond),
		o.out, float64(size)/(1<<20), time.Since(start).Round(time.Millisecond))
}

// writeAtomic streams write into a temporary file beside path and renames
// it into place on success, so the final name only ever holds a complete
// container. The temp file is removed on any failure.
func writeAtomic(path string, write func(io.Writer) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	st, err := tmp.Stat()
	if err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	committed = true
	return st.Size(), nil
}

// inspect prints the casa-idx/v1 header and the section table — name,
// payload size and CRC32 per section — without loading the engine.
func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	hdr, infos, err := idxio.ReadInfo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/v%d %s\n", idxio.Magic, idxio.Version, path)
	fmt.Printf("  engine: %s\n", hdr.Engine)
	fmt.Printf("  options: min-smem=%d partition=%d table-k=%d cache-bytes=%d exact=%v shards=%d shard-overlap=%d\n",
		hdr.MinSMEM, hdr.Partition, hdr.TableK, hdr.CacheBytes, hdr.Exact, hdr.Shards, hdr.ShardOverlap)
	if len(hdr.Chromosomes) > 0 {
		fmt.Printf("  sequences: %d\n", len(hdr.Chromosomes))
		for _, c := range hdr.Chromosomes {
			fmt.Printf("    %-20s start %12d  length %12d\n", c.Name, c.Start, c.Length)
		}
	}
	fmt.Printf("  sections: %d\n", len(infos))
	var total int64
	for _, s := range infos {
		fmt.Printf("    %-28s %12d bytes  crc32 %08x\n", s.Name, s.Size, s.CRC)
		total += s.Size
	}
	fmt.Printf("  total payload: %.1f MB\n", float64(total)/(1<<20))
}
