// Command casa-index builds a CASA index (partitioned reference +
// pre-seeding filter tables) offline and writes it to disk, matching the
// paper's flow ("CASA builds the mini index table and the tag table
// offline for each reference partition", §4.1). casa-sim and casa-align
// load the result with -index, skipping reconstruction.
//
// Usage:
//
//	casa-index -ref ref.fa -out ref.casaidx [-partition N] [-k 19] [-m 10]
//	casa-index -info ref.casaidx
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/seqio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-index: ")
	var (
		refPath   = flag.String("ref", "", "reference FASTA")
		outPath   = flag.String("out", "ref.casaidx", "index output path")
		partition = flag.Int("partition", 4<<20, "partition size in bases")
		k         = flag.Int("k", 19, "seed k-mer size")
		m         = flag.Int("m", 10, "mini index m-mer size")
		info      = flag.String("info", "", "inspect an existing index instead of building")
	)
	flag.Parse()

	if *info != "" {
		inspect(*info)
		return
	}
	if *refPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*refPath)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqio.ReadFasta(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var ref dna.Sequence
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}

	cfg := core.DefaultConfig()
	cfg.PartitionBases = *partition
	cfg.K, cfg.M = *k, *m
	if cfg.MinSMEM < cfg.K {
		cfg.MinSMEM = cfg.K
	}

	start := time.Now()
	acc, err := core.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	start = time.Now()
	if err := acc.WriteIndex(out); err != nil {
		log.Fatal(err)
	}
	st, _ := out.Stat()
	fmt.Printf("indexed %d bases into %d partitions in %v; wrote %s (%.1f MB) in %v\n",
		len(ref), acc.Partitions(), buildTime.Round(time.Millisecond),
		*outPath, float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	acc, err := core.ReadIndex(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg := acc.Config()
	fmt.Printf("CASA index %s\n", path)
	fmt.Printf("  k=%d m=%d minSMEM=%d stride=%d groups=%d CAM lanes=%d\n",
		cfg.K, cfg.M, cfg.MinSMEM, cfg.Stride, cfg.Groups, cfg.ComputeCAMs)
	fmt.Printf("  partitions: %d x up to %d bases\n", acc.Partitions(), cfg.PartitionBases)
	fmt.Printf("  on-chip budget per partition: %.1f MB\n", float64(cfg.OnChipBytes())/(1<<20))
	total := 0
	for i := 0; i < acc.Partitions(); i++ {
		total += len(acc.Partition(i).Ref())
		if i < 3 {
			p := acc.Partition(i)
			fmt.Printf("  partition %d: %d bases, %d distinct %d-mers\n",
				i, len(p.Ref()), p.Filter().DistinctKmers(), cfg.K)
		}
	}
	fmt.Printf("  total indexed bases (with overlaps): %d\n", total)
}
