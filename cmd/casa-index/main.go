// Command casa-index builds a CASA index (partitioned reference +
// pre-seeding filter tables) offline and writes it to disk, matching the
// paper's flow ("CASA builds the mini index table and the tag table
// offline for each reference partition", §4.1). casa-sim and casa-align
// load the result with -index, skipping reconstruction.
//
// Usage:
//
//	casa-index -ref ref.fa -out ref.casaidx [-partition N] [-k 19] [-m 10]
//	casa-index -info ref.casaidx
//
// The two modes are exclusive: combining -info with any build flag is a
// usage error (exit 2), not a silent ignore — a typo like
// `casa-index -info old.casaidx -out new.casaidx` must not masquerade as
// a successful rebuild.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"casa/internal/buildinfo"
	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/seqio"
)

// options holds the parsed command line.
type options struct {
	ref, out, info string
	partition      int
	k, m           int
	version        bool
}

// buildOnly names the flags that configure an index build and therefore
// contradict -info, which only reads an existing index.
var buildOnly = map[string]bool{
	"ref": true, "out": true, "partition": true, "k": true, "m": true,
}

// parseArgs registers the flags on fs and parses args, rejecting
// contradictory mode mixes. Only flags the user explicitly set count:
// defaults never conflict.
func parseArgs(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.ref, "ref", "", "reference FASTA")
	fs.StringVar(&o.out, "out", "ref.casaidx", "index output path")
	fs.IntVar(&o.partition, "partition", 4<<20, "partition size in bases")
	fs.IntVar(&o.k, "k", 19, "seed k-mer size")
	fs.IntVar(&o.m, "m", 10, "mini index m-mer size")
	fs.StringVar(&o.info, "info", "", "inspect an existing index instead of building")
	fs.BoolVar(&o.version, "version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.info != "" {
		var mixed []string
		fs.Visit(func(f *flag.Flag) {
			if buildOnly[f.Name] {
				mixed = append(mixed, "-"+f.Name)
			}
		})
		sort.Strings(mixed)
		if len(mixed) > 0 {
			return nil, fmt.Errorf("-info inspects an existing index and cannot be combined with build flag(s) %s", strings.Join(mixed, ", "))
		}
	}
	return o, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-index: ")
	fs := flag.NewFlagSet("casa-index", flag.ExitOnError)
	o, err := parseArgs(fs, os.Args[1:])
	if err != nil {
		log.Print(err)
		fs.Usage()
		os.Exit(2)
	}

	if o.version {
		buildinfo.Print(os.Stdout, "casa-index")
		return
	}
	if o.info != "" {
		inspect(o.info)
		return
	}
	if o.ref == "" {
		fs.Usage()
		os.Exit(2)
	}

	f, err := os.Open(o.ref)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqio.ReadFasta(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var ref dna.Sequence
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}

	cfg := core.DefaultConfig()
	cfg.PartitionBases = o.partition
	cfg.K, cfg.M = o.k, o.m
	if cfg.MinSMEM < cfg.K {
		cfg.MinSMEM = cfg.K
	}

	start := time.Now()
	acc, err := core.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	out, err := os.Create(o.out)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	start = time.Now()
	if err := acc.WriteIndex(out); err != nil {
		log.Fatal(err)
	}
	st, _ := out.Stat()
	fmt.Printf("indexed %d bases into %d partitions in %v; wrote %s (%.1f MB) in %v\n",
		len(ref), acc.Partitions(), buildTime.Round(time.Millisecond),
		o.out, float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	acc, err := core.ReadIndex(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg := acc.Config()
	fmt.Printf("CASA index %s\n", path)
	fmt.Printf("  k=%d m=%d minSMEM=%d stride=%d groups=%d CAM lanes=%d\n",
		cfg.K, cfg.M, cfg.MinSMEM, cfg.Stride, cfg.Groups, cfg.ComputeCAMs)
	fmt.Printf("  partitions: %d x up to %d bases\n", acc.Partitions(), cfg.PartitionBases)
	fmt.Printf("  on-chip budget per partition: %.1f MB\n", float64(cfg.OnChipBytes())/(1<<20))
	total := 0
	for i := 0; i < acc.Partitions(); i++ {
		total += len(acc.Partition(i).Ref())
		if i < 3 {
			p := acc.Partition(i)
			fmt.Printf("  partition %d: %d bases, %d distinct %d-mers\n",
				i, len(p.Ref()), p.Filter().DistinctKmers(), cfg.K)
		}
	}
	fmt.Printf("  total indexed bases (with overlaps): %d\n", total)
}
