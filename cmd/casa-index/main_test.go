package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// TestParseArgsFlagMatrix drives parseArgs over the build/inspect flag
// matrix. Every combination of -info with an explicit build flag must be
// rejected — before this gate, `casa-index -info idx -out new.casaidx`
// silently inspected and never wrote anything — while each mode's own
// flags parse cleanly and defaults never trigger the conflict.
func TestParseArgsFlagMatrix(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr []string // substrings the error must mention; empty = no error
		check   func(t *testing.T, o *options)
	}{
		{
			name: "build with defaults",
			args: []string{"-ref", "ref.fa"},
			check: func(t *testing.T, o *options) {
				if o.ref != "ref.fa" || o.out != "ref.casaidx" || o.eng != "casa" ||
					o.minSMEM != 19 || o.partition != 0 || o.shards != 0 {
					t.Errorf("options = %+v", o)
				}
				if o.kSet || o.mSet {
					t.Errorf("default -k/-m must not count as explicitly set: %+v", o)
				}
			},
		},
		{
			name: "build with every knob",
			args: []string{"-ref", "ref.fa", "-out", "x.casaidx", "-engine", "fmindex",
				"-min-smem", "25", "-partition", "1024", "-shards", "4", "-shard-overlap", "300"},
			check: func(t *testing.T, o *options) {
				if o.out != "x.casaidx" || o.eng != "fmindex" || o.minSMEM != 25 ||
					o.partition != 1024 || o.shards != 4 || o.shardOverlap != 300 {
					t.Errorf("options = %+v", o)
				}
			},
		},
		{
			name: "explicit casa geometry is recorded",
			args: []string{"-ref", "ref.fa", "-k", "15", "-m", "8"},
			check: func(t *testing.T, o *options) {
				if o.k != 15 || o.m != 8 || !o.kSet || !o.mSet {
					t.Errorf("options = %+v", o)
				}
			},
		},
		{
			name: "inspect alone",
			args: []string{"-info", "ref.casaidx"},
			check: func(t *testing.T, o *options) {
				if o.info != "ref.casaidx" {
					t.Errorf("options = %+v", o)
				}
			},
		},
		{name: "no flags at all", args: nil},
		{
			name:    "inspect with -ref",
			args:    []string{"-info", "idx", "-ref", "ref.fa"},
			wantErr: []string{"-ref"},
		},
		{
			name:    "inspect with -out",
			args:    []string{"-info", "idx", "-out", "new.casaidx"},
			wantErr: []string{"-out"},
		},
		{
			name:    "inspect with -engine",
			args:    []string{"-info", "idx", "-engine", "fmindex"},
			wantErr: []string{"-engine"},
		},
		{
			name:    "inspect with -partition",
			args:    []string{"-partition", "4096", "-info", "idx"},
			wantErr: []string{"-partition"},
		},
		{
			name:    "inspect with -k",
			args:    []string{"-info", "idx", "-k", "19"},
			wantErr: []string{"-k"},
		},
		{
			name:    "inspect with -m",
			args:    []string{"-info", "idx", "-m", "10"},
			wantErr: []string{"-m"},
		},
		{
			name:    "inspect with -shards",
			args:    []string{"-info", "idx", "-shards", "2"},
			wantErr: []string{"-shards"},
		},
		{
			name:    "inspect with -shard-overlap",
			args:    []string{"-info", "idx", "-shard-overlap", "512"},
			wantErr: []string{"-shard-overlap"},
		},
		{
			name:    "inspect with -min-smem",
			args:    []string{"-info", "idx", "-min-smem", "19"},
			wantErr: []string{"-min-smem"},
		},
		{
			name:    "inspect with several build flags names each",
			args:    []string{"-info", "idx", "-out", "x", "-k", "12", "-m", "6"},
			wantErr: []string{"-out", "-k", "-m"},
		},
		{
			name:    "explicit default value still conflicts",
			args:    []string{"-info", "idx", "-out", "ref.casaidx"},
			wantErr: []string{"-out"},
		},
		{
			name:    "unknown flag",
			args:    []string{"-bogus"},
			wantErr: []string{"bogus"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("casa-index", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			o, err := parseArgs(fs, tc.args)
			if len(tc.wantErr) == 0 {
				if err != nil {
					t.Fatalf("parseArgs(%v): unexpected error %v", tc.args, err)
				}
				if tc.check != nil {
					tc.check(t, o)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseArgs(%v): want error mentioning %v, got options %+v", tc.args, tc.wantErr, o)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %s", err, want)
				}
			}
		})
	}
}
