package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"casa/internal/trace"
)

func span(proc, track, name string, read int32, start, dur int64) trace.Span {
	return trace.Span{Proc: proc, Track: track, Name: name, Read: read, Start: start, Dur: dur}
}

func TestUnionLen(t *testing.T) {
	ss := []trace.Span{
		span("e", "t", "a", 0, 0, 10),
		span("e", "t", "b", 0, 2, 4), // nested: no extra coverage
		span("e", "t", "c", 0, 20, 5),
		span("e", "t", "d", 0, 23, 7), // overlaps c's tail by 2
	}
	if got := unionLen(ss); got != 20 {
		t.Fatalf("unionLen = %d, want 20", got)
	}
}

func TestBucket(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}} {
		if got := bucket(tc.v); got != tc.want {
			t.Errorf("bucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestAnalyze pins the core numbers: slowest-first ordering, window vs
// per-track union, and the system overlap summary.
func TestAnalyze(t *testing.T) {
	spans := []trace.Span{
		// Engine "e": read 0 is fast, read 1 is slow with a nested
		// partition sub-span that must not double count.
		span("e", "exact", "exact", 0, 0, 10),
		span("e", "exact", "exact", 1, 0, 100),
		span("e", "p00", "exact", 1, 5, 40),
		// System timeline: io then two overlapped stages.
		span("pipeline:X", "io", "io", trace.SystemRead, 0, 100),
		span("pipeline:X", "seeding", "seeding", trace.SystemRead, 100, 50),
		span("pipeline:X", "extension", "extension", trace.SystemRead, 100, 80),
	}
	reps := analyze(spans)
	if len(reps) != 2 {
		t.Fatalf("got %d procs, want 2", len(reps))
	}
	e := reps[0]
	if e.proc != "e" || len(e.reads) != 2 {
		t.Fatalf("proc %q with %d reads, want e with 2", e.proc, len(e.reads))
	}
	if e.reads[0].read != 1 || e.reads[0].window != 100 {
		t.Errorf("slowest read = %d window %d, want read 1 window 100", e.reads[0].read, e.reads[0].window)
	}
	if e.reads[0].byTrack["exact"] != 100 || e.reads[0].byTrack["p00"] != 40 {
		t.Errorf("read 1 breakdown = %v", e.reads[0].byTrack)
	}

	p := reps[1]
	wall, covered := overlapSummary(p.system)
	if wall != 180 {
		t.Errorf("wall = %d, want 180", wall)
	}
	if covered["io"] != 100 || covered["seeding"] != 50 || covered["extension"] != 80 {
		t.Errorf("covered = %v", covered)
	}
}

// TestRunEndToEnd writes both file formats and checks the rendered
// report: same analysis regardless of framing, top-N respected.
func TestRunEndToEnd(t *testing.T) {
	tr := trace.New(trace.PolicyAll, 0)
	b := tr.NewBuffer("casa")
	for r := 0; r < 20; r++ {
		b.Emit(r, "exact", "exact", 0, int64(10+r))
		b.Emit(r, "smem", "smem", int64(10+r), 30)
	}
	spans := tr.Spans()

	dir := t.TempDir()
	for _, name := range []string{"t.json", "t.jsonl"} {
		path := filepath.Join(dir, name)
		if err := trace.WriteFile(path, spans); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := run(&out, path, 3); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if !strings.Contains(got, "== casa: 40 spans, 20 reads ==") {
			t.Errorf("%s: missing proc header in:\n%s", name, got)
		}
		// Slowest read is 19: window 10+19+30 = 59.
		if !strings.Contains(got, "read     19  total         59") {
			t.Errorf("%s: missing slowest read line in:\n%s", name, got)
		}
		if strings.Count(got, "  read ") != 3 {
			t.Errorf("%s: want exactly 3 top reads, got:\n%s", name, got)
		}
	}
}
