package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"casa/internal/trace"
)

// wallFixture writes a small casa-walltrace/v1 capture: a 2-worker pool
// over 4 shards of 25 reads, one host reduce phase and one lifecycle
// span, with worker 0 doing three shards (the straggler).
func wallFixture(t *testing.T) string {
	t.Helper()
	w := trace.NewWall(64)
	at := func(us int64) time.Time { return time.UnixMicro(1_800_000_000_000_000 + us) }
	w.Record(trace.WallWorkerProc(0), "casa", trace.WallShardName(0, 0, 25), at(0), 300*time.Microsecond)
	w.Record(trace.WallWorkerProc(1), "casa", trace.WallShardName(1, 25, 50), at(0), 100*time.Microsecond)
	w.Record(trace.WallWorkerProc(0), "casa", trace.WallShardName(2, 50, 75), at(310), 200*time.Microsecond)
	w.Record(trace.WallWorkerProc(0), "casa", trace.WallShardName(3, 75, 100), at(520), 100*time.Microsecond)
	w.Record(trace.WallHostProc, "casa", "reduce", at(630), 40*time.Microsecond)
	w.Record("casa-serve", "running", "run-xyz", at(0), 700*time.Microsecond)
	path := filepath.Join(t.TempDir(), "wall.json")
	if err := trace.WriteWallFile(path, w.Spans(), w.Dropped()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWallReport(t *testing.T) {
	var buf bytes.Buffer
	if err := runWall(&buf, wallFixture(t), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"casa-walltrace/v1: 6 spans (0 dropped)",
		"workers: 2   shards: 4   reads: 100",
		// Worker 0: 3 shards, 75 reads, 600 us busy.
		"00          3       75        600",
		"01          1       25        100",
		// Pool busy 700 us; imbalance = 600 / mean(350) = 1.71x.
		"imbalance (max/mean worker busy): 1.71x",
		"slowest 2 shards:",
		trace.WallShardName(0, 0, 25),
		trace.WallShardName(2, 50, 75),
		"non-worker spans (2):",
		"reduce",
		"run-xyz",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("wall report lacks %q:\n%s", want, out)
		}
	}
	// -top 2 must leave shard 3 out of the slowest table.
	if strings.Contains(out, trace.WallShardName(3, 75, 100)) {
		t.Fatalf("wall report ranks more shards than -top asked for:\n%s", out)
	}
}

func TestRunWallRejectsCycleTrace(t *testing.T) {
	// A cycle-domain trace file must be refused, not misread: the two
	// schemas are deliberately incompatible.
	path := filepath.Join(t.TempDir(), "cycle.json")
	tr := trace.New(trace.Policy{}, 0)
	b := tr.NewBuffer("e")
	b.Emit(0, "exact", "exact", 0, 10)
	if err := trace.WriteFile(path, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runWall(&buf, path, 5); err == nil {
		t.Fatal("runWall accepted a casa-trace/v1 cycle-domain file")
	}
}
