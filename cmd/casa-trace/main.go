// Command casa-trace analyzes casa-trace/v1 trace files (Chrome JSON or
// JSONL, as written by casa-smem/casa-align -trace) without a browser:
// per engine it ranks the slowest reads with per-track cycle breakdowns,
// prints power-of-two histograms of per-read track time, and summarizes
// stage overlap on the system timelines (the pipeline model's Fig-14
// waterfalls).
//
// Times are modelled units, never host time: engine cycles (or fetches /
// FM-index steps — see docs/OBSERVABILITY.md for each engine's unit) for
// read spans, modelled-wall nanoseconds for pipeline system spans.
//
// With -wall the input is instead a casa-walltrace/v1 capture (the host
// wall-clock domain, as written by -walltrace or served at
// GET /debug/runtrace): the report becomes a per-worker utilization
// table, the pool's imbalance ratio and the slowest shards.
//
// Usage:
//
//	casa-trace [-top 10] trace.json
//	casa-trace -wall [-top 10] walltrace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/bits"
	"os"
	"sort"

	"casa/internal/buildinfo"
	"casa/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-trace: ")
	top := flag.Int("top", 10, "slowest reads (or, with -wall, shards) to show")
	wall := flag.Bool("wall", false, "input is a casa-walltrace/v1 host wall-clock capture")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-trace")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: casa-trace [-wall] [-top N] trace.json")
		os.Exit(2)
	}
	analyzer := run
	if *wall {
		analyzer = runWall
	}
	if err := analyzer(os.Stdout, flag.Arg(0), *top); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, path string, top int) error {
	spans, err := trace.ParseFile(path)
	if err != nil {
		return err
	}
	if err := trace.Validate(spans); err != nil {
		fmt.Fprintf(os.Stderr, "casa-trace: warning: stream violates casa-trace/v1 invariants: %v\n", err)
	}
	printReport(w, analyze(spans), top)
	return nil
}

// readStat is one read's cost on one process: the length of its span
// window and the per-track interval-union breakdown (union, not sum, so
// nested sub-spans — casa's per-partition spans inside a stage span —
// are not double counted).
type readStat struct {
	read    int32
	window  int64            // max end - min start over the read's spans
	byTrack map[string]int64 // track -> union of span intervals
}

// procReport aggregates one process (engine or pipeline system).
type procReport struct {
	proc   string
	spans  int
	reads  []readStat       // slowest first (window desc, read asc)
	hist   map[string][]int // track -> power-of-two buckets of per-read union
	system []trace.Span     // system-timeline spans in stream order
}

// analyze folds a span stream into per-process reports, sorted by
// process name.
func analyze(spans []trace.Span) []procReport {
	type key struct {
		proc string
		read int32
	}
	perRead := map[key][]trace.Span{}
	sysSpans := map[string][]trace.Span{}
	count := map[string]int{}
	for _, s := range spans {
		count[s.Proc]++
		if s.Read == trace.SystemRead {
			sysSpans[s.Proc] = append(sysSpans[s.Proc], s)
			continue
		}
		k := key{s.Proc, s.Read}
		perRead[k] = append(perRead[k], s)
	}

	stats := map[string][]readStat{}
	for k, ss := range perRead {
		st := readStat{read: k.read, byTrack: map[string]int64{}}
		lo, hi := ss[0].Start, ss[0].End()
		perTrack := map[string][]trace.Span{}
		for _, s := range ss {
			if s.Start < lo {
				lo = s.Start
			}
			if s.End() > hi {
				hi = s.End()
			}
			perTrack[s.Track] = append(perTrack[s.Track], s)
		}
		st.window = hi - lo
		for t, ts := range perTrack {
			st.byTrack[t] = unionLen(ts)
		}
		stats[k.proc] = append(stats[k.proc], st)
	}

	var out []procReport
	for proc := range count {
		rep := procReport{proc: proc, spans: count[proc], system: sysSpans[proc]}
		rep.reads = stats[proc]
		sort.Slice(rep.reads, func(i, j int) bool {
			a, b := rep.reads[i], rep.reads[j]
			if a.window != b.window {
				return a.window > b.window
			}
			return a.read < b.read
		})
		rep.hist = map[string][]int{}
		for _, st := range rep.reads {
			for t, u := range st.byTrack {
				b := bucket(u)
				for len(rep.hist[t]) <= b {
					rep.hist[t] = append(rep.hist[t], 0)
				}
				rep.hist[t][b]++
			}
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].proc < out[j].proc })
	return out
}

// unionLen returns the total length covered by the spans' intervals,
// counting overlapping (nested) stretches once.
func unionLen(ss []trace.Span) int64 {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	var total, end int64
	end = -1 << 62
	for _, s := range ss {
		if s.Start > end {
			total += s.Dur
			end = s.End()
		} else if s.End() > end {
			total += s.End() - end
			end = s.End()
		}
	}
	return total
}

// bucket maps a duration to its power-of-two histogram bucket: bucket b
// holds values in [2^(b-1), 2^b), with 0 in bucket 0.
func bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

func printReport(w io.Writer, reps []procReport, top int) {
	for _, rep := range reps {
		fmt.Fprintf(w, "== %s: %d spans, %d reads ==\n", rep.proc, rep.spans, len(rep.reads))

		if len(rep.reads) > 0 {
			n := top
			if n > len(rep.reads) {
				n = len(rep.reads)
			}
			fmt.Fprintf(w, "slowest %d reads (modelled units; per-track interval union):\n", n)
			for _, st := range rep.reads[:n] {
				fmt.Fprintf(w, "  read %6d  total %10d", st.read, st.window)
				for _, t := range sortedTracks(st.byTrack) {
					fmt.Fprintf(w, "  %s=%d", t, st.byTrack[t])
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintln(w, "per-track histogram (bucket 2^b covers [2^(b-1), 2^b)):")
			tracks := make([]string, 0, len(rep.hist))
			for t := range rep.hist {
				tracks = append(tracks, t)
			}
			sort.Strings(tracks)
			for _, t := range tracks {
				fmt.Fprintf(w, "  %-12s", t)
				for b, c := range rep.hist[t] {
					if c > 0 {
						fmt.Fprintf(w, " 2^%d:%d", b, c)
					}
				}
				fmt.Fprintln(w)
			}
		}

		if len(rep.system) > 0 {
			wall, covered := overlapSummary(rep.system)
			fmt.Fprintf(w, "system timeline: wall %d\n", wall)
			var sum int64
			for _, t := range sortedTracks(covered) {
				c := covered[t]
				sum += c
				pct := 0.0
				if wall > 0 {
					pct = 100 * float64(c) / float64(wall)
				}
				fmt.Fprintf(w, "  %-12s covered %10d  (%.1f%% of wall)\n", t, c, pct)
			}
			if wall > 0 {
				fmt.Fprintf(w, "  parallelism %.2fx (total stage time / wall)\n", float64(sum)/float64(wall))
			}
		}
		fmt.Fprintln(w)
	}
}

// overlapSummary reduces a system timeline to its wall length (max end -
// min start) and the per-track covered lengths; covered/wall over all
// tracks is the timeline's average stage parallelism.
func overlapSummary(ss []trace.Span) (wall int64, covered map[string]int64) {
	lo, hi := ss[0].Start, ss[0].End()
	perTrack := map[string][]trace.Span{}
	for _, s := range ss {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End() > hi {
			hi = s.End()
		}
		perTrack[s.Track] = append(perTrack[s.Track], s)
	}
	covered = map[string]int64{}
	for t, ts := range perTrack {
		covered[t] = unionLen(ts)
	}
	return hi - lo, covered
}

func sortedTracks(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
