package main

import (
	"fmt"
	"io"
	"sort"

	"casa/internal/trace"
)

// runWall is the wall-clock counterpart of run: it reads a
// casa-walltrace/v1 capture (casa-smem/casa-align -walltrace, or a saved
// GET /debug/runtrace) and reports where the *host* time went — a
// per-worker utilization table, the pool's load-imbalance ratio, and the
// slowest shards. Everything here is nondeterministic host time; the
// cycle-domain report stays in run().
func runWall(w io.Writer, path string, top int) error {
	spans, dropped, err := trace.ParseWallFile(path)
	if err != nil {
		return err
	}
	printWallReport(w, spans, dropped, top)
	return nil
}

// wallShard is one shard span joined with its parsed name, for the
// slowest-shards ranking.
type wallShard struct {
	span  trace.WallSpan
	shard int
	lo    int
	hi    int
}

func printWallReport(w io.Writer, spans []trace.WallSpan, dropped int64, top int) {
	fmt.Fprintf(w, "== %s: %d spans (%d dropped) ==\n", trace.WallSchemaVersion, len(spans), dropped)
	workers, others := trace.WallWorkers(spans)
	window := trace.WallWindow(spans)

	var shards []wallShard
	totalShards, totalReads := 0, 0
	var poolBusy int64
	for _, st := range workers {
		totalShards += st.Shards
		totalReads += st.Reads
		poolBusy += st.BusyUS
	}
	for _, s := range spans {
		if shard, lo, hi, ok := trace.ParseWallShardName(s.Name); ok {
			shards = append(shards, wallShard{span: s, shard: shard, lo: lo, hi: hi})
		}
	}
	fmt.Fprintf(w, "window: %d us   workers: %d   shards: %d   reads: %d\n\n",
		window, len(workers), totalShards, totalReads)

	if len(workers) > 0 {
		// Utilization is busy time over the pool window (first worker
		// span start to last worker span end): the gantt summary, one row
		// per worker.
		poolLo, poolHi := workers[0].StartUS, workers[0].EndUS
		for _, st := range workers[1:] {
			if st.StartUS < poolLo {
				poolLo = st.StartUS
			}
			if st.EndUS > poolHi {
				poolHi = st.EndUS
			}
		}
		poolWindow := poolHi - poolLo
		fmt.Fprintln(w, "worker   shards    reads    busy_us    util%")
		for _, st := range workers {
			util := 0.0
			if poolWindow > 0 {
				util = 100 * float64(st.BusyUS) / float64(poolWindow)
			}
			fmt.Fprintf(w, "  %-6s %6d  %7d  %9d  %6.1f\n",
				st.Proc[len(st.Proc)-2:], st.Shards, st.Reads, st.BusyUS, util)
		}
		utilPct, par := 0.0, 0.0
		if poolWindow > 0 {
			par = float64(poolBusy) / float64(poolWindow)
			utilPct = 100 * par / float64(len(workers))
		}
		fmt.Fprintf(w, "pool: busy %d us over window %d us   utilization %.1f%%   parallelism %.2fx\n",
			poolBusy, poolWindow, utilPct, par)
		fmt.Fprintf(w, "imbalance (max/mean worker busy): %.2fx\n\n", trace.WallImbalance(workers))
	}

	if len(shards) > 0 {
		sort.Slice(shards, func(i, j int) bool {
			a, b := shards[i], shards[j]
			if a.span.Dur != b.span.Dur {
				return a.span.Dur > b.span.Dur
			}
			return a.shard < b.shard
		})
		n := top
		if n > len(shards) {
			n = len(shards)
		}
		fmt.Fprintf(w, "slowest %d shards:\n", n)
		for _, sh := range shards[:n] {
			fmt.Fprintf(w, "  %-32s %s/%s  %8d us\n",
				sh.span.Name, sh.span.Proc, sh.span.Track, sh.span.Dur)
		}
		fmt.Fprintln(w)
	}

	if len(others) > 0 {
		// Host phases and lifecycle spans, grouped by proc/track, summed.
		type groupKey struct{ proc, track, name string }
		groups := map[groupKey]struct {
			count int
			dur   int64
		}{}
		for _, s := range others {
			k := groupKey{s.Proc, s.Track, s.Name}
			g := groups[k]
			g.count++
			g.dur += s.Dur
			groups[k] = g
		}
		keys := make([]groupKey, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.proc != b.proc {
				return a.proc < b.proc
			}
			if a.track != b.track {
				return a.track < b.track
			}
			return a.name < b.name
		})
		fmt.Fprintf(w, "non-worker spans (%d):\n", len(others))
		for _, k := range keys {
			g := groups[k]
			fmt.Fprintf(w, "  %s/%s  %-24s x%-4d %8d us\n", k.proc, k.track, k.name, g.count, g.dur)
		}
	}
}
