package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench regression gate: -compare checks a casa-bench/v1 document
// against a committed baseline and fails (exit 1) when any engine's
// *model* numbers regress beyond the threshold. Modelled seconds,
// cycles and throughput are deterministic functions of the workload,
// identical on every machine and at every worker count, so any drift is
// a real change to the simulated hardware and gets a tight threshold.
//
// Host throughput measures the CI runner as much as the code, so it is
// gated separately by compareHost with a deliberately loose floor: a
// row fails only when its host reads/s fall below a fraction (default
// half) of the baseline's, catching order-of-magnitude host-path
// regressions without flaking on machine variance.

// loadDoc reads and decodes one casa-bench/v1 file.
func loadDoc(path string) (doc, error) {
	var d doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return d, fmt.Errorf("casa-bench: %s: %w", path, err)
	}
	if d.Schema != benchSchema {
		return d, fmt.Errorf("casa-bench: %s: schema %q, want %q", path, d.Schema, benchSchema)
	}
	return d, nil
}

// modelRows collapses a document to one row per engine: model numbers
// are worker-count independent (the determinism contract), so the first
// row of each engine represents it.
func modelRows(d doc) map[string]row {
	out := map[string]row{}
	for _, r := range d.Engines {
		if _, ok := out[r.Engine]; !ok {
			out[r.Engine] = r
		}
	}
	return out
}

// compareDocs returns one message per regression of cur against base
// beyond threshold (a fraction: 0.10 = 10%). Engines with no model
// numbers in the baseline (fmindex) are skipped; an engine present in
// the baseline but absent from cur is itself a regression. Comparing
// documents with different workloads is an error — the gate must
// compare like against like.
func compareDocs(base, cur doc, threshold float64) ([]string, error) {
	if base.Scale != cur.Scale || base.Workload != cur.Workload {
		return nil, fmt.Errorf("casa-bench: workload mismatch: baseline %s %+v vs current %s %+v",
			base.Scale, base.Workload, cur.Scale, cur.Workload)
	}
	baseRows, curRows := modelRows(base), modelRows(cur)
	engines := make([]string, 0, len(baseRows))
	for e := range baseRows {
		engines = append(engines, e)
	}
	sort.Strings(engines)

	var regressions []string
	for _, e := range engines {
		b := baseRows[e]
		if b.ModelSeconds == 0 && b.ModelCycles == 0 && b.ModelReadsPerS == 0 {
			continue // no hardware model to gate (fmindex)
		}
		c, ok := curRows[e]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: engine missing from current run", e))
			continue
		}
		if b.ModelSeconds > 0 && c.ModelSeconds > b.ModelSeconds*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: model seconds %.6g exceeds baseline %.6g by more than %.0f%%",
				e, c.ModelSeconds, b.ModelSeconds, threshold*100))
		}
		if b.ModelCycles > 0 && float64(c.ModelCycles) > float64(b.ModelCycles)*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: model cycles %d exceeds baseline %d by more than %.0f%%",
				e, c.ModelCycles, b.ModelCycles, threshold*100))
		}
		if b.ModelReadsPerS > 0 && c.ModelReadsPerS < b.ModelReadsPerS*(1-threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: model throughput %.6g below baseline %.6g by more than %.0f%%",
				e, c.ModelReadsPerS, b.ModelReadsPerS, threshold*100))
		}
	}
	return regressions, nil
}

// compareHost returns one message per engine×workers row whose host
// throughput fell below floor × the baseline's (floor is a fraction;
// 0.5 = half). Rows absent from either document are skipped — host
// coverage is advisory, the model gate already catches missing engines.
// A non-positive floor disables the check. Callers must have verified
// the workloads match (compareDocs does).
func compareHost(base, cur doc, floor float64) []string {
	if floor <= 0 {
		return nil
	}
	type key struct {
		engine  string
		workers int
	}
	curHost := map[key]float64{}
	for _, r := range cur.Engines {
		curHost[key{r.Engine, r.Workers}] = r.HostReadsPerS
	}
	var regressions []string
	for _, b := range base.Engines {
		if b.HostReadsPerS <= 0 {
			continue
		}
		c, ok := curHost[key{b.Engine, b.Workers}]
		if !ok {
			continue
		}
		if c < b.HostReadsPerS*floor {
			regressions = append(regressions, fmt.Sprintf(
				"%s workers=%d: host throughput %.0f reads/s below %.0f%% of baseline %.0f",
				b.Engine, b.Workers, c, floor*100, b.HostReadsPerS))
		}
	}
	return regressions
}
