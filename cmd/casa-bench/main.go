// Command casa-bench runs the cross-engine batch-seeding benchmark and
// writes a machine-readable BENCH_seeding.json (schema casa-bench/v1):
// for every engine and worker-pool size, the host wall-clock throughput
// of the simulation plus the engine's modelled seconds, cycles and
// throughput. `make bench` drives it; CI runs `-scale quick` and then
// `-validate` to keep the schema honest.
//
// -compare is the regression gate: the run's (or a given file's) model
// numbers are checked against a committed baseline and the process exits
// non-zero when modelled seconds, cycles or throughput regress beyond
// -threshold. Host throughput gets its own, much more generous floor
// (-host-threshold, default 0.5): the run fails only when an engine's
// host reads/s drop below half the baseline's, loose enough for CI-runner
// noise but tight enough to catch an accidental 10× host-path regression.
// `make bench-quick` gates against bench/baseline-quick.json.
//
// Each host measurement is the best of -reps runs (default 3): the first
// pass pays cold caches and scratch-buffer growth, so a single-shot
// timing of a millisecond-scale workload underestimates steady-state
// throughput by 2× or more. Model numbers are identical on every run
// (the determinism contract), so reps do not affect them.
//
// Usage:
//
//	casa-bench [-scale quick|default] [-workers 1,2,4,8] [-reps 3] [-out BENCH_seeding.json]
//	casa-bench -validate BENCH_seeding.json
//	casa-bench -compare bench/baseline-quick.json [-threshold 0.10] [-host-threshold 0.5] BENCH_seeding.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"casa/internal/batch"
	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/readsim"
	_ "casa/internal/shard" // registers the sharded:<name> composites
)

// benchSchema identifies the document layout.
const benchSchema = "casa-bench/v1"

type workload struct {
	RefBases int `json:"ref_bases"`
	Reads    int `json:"reads"`
	ReadLen  int `json:"read_len"`
	MinSMEM  int `json:"min_smem"`
}

// row is one engine × worker-count measurement. Host numbers measure the
// simulator on this machine; model numbers are the simulated hardware's
// and are identical at every worker count (the determinism contract).
type row struct {
	Engine        string  `json:"engine"`
	Workers       int     `json:"workers"`
	HostSeconds   float64 `json:"host_seconds"`
	HostReadsPerS float64 `json:"host_reads_per_s"`
	// HostRepSeconds lists every repetition's wall time (HostSeconds is
	// their minimum): the spread shows whether the machine was quiet
	// enough to trust the row. Host-side, so -compare never reads it.
	HostRepSeconds []float64 `json:"host_rep_seconds,omitempty"`
	ModelSeconds   float64   `json:"model_seconds,omitempty"`
	ModelCycles    int64     `json:"model_cycles,omitempty"`
	ModelReadsPerS float64   `json:"model_reads_per_s,omitempty"`
}

// hostPhases breaks the benchmark's one-time host costs out of the
// per-row seeding timings: generating the reference, simulating the
// reads, and building each engine's index. Like every host field,
// -compare ignores it.
type hostPhases struct {
	RefGenSeconds     float64            `json:"ref_gen_seconds"`
	ReadSimSeconds    float64            `json:"read_sim_seconds"`
	IndexBuildSeconds map[string]float64 `json:"index_build_seconds"` // engine -> build wall time
	// IndexLoadSeconds times engine.LoadIndex over an in-memory
	// casa-idx/v1 serialization of each freshly built index — the
	// load-instead-of-rebuild path casa-smem -index and casa-serve -index
	// take. Only persisting engines appear.
	IndexLoadSeconds map[string]float64 `json:"index_load_seconds"`
	SeedingSeconds   float64            `json:"seeding_seconds"` // all reps, all rows
}

// hostEnv records the machine a benchmark ran on. Host throughput is
// meaningless without it; the model numbers stay machine-independent, so
// -compare ignores every host field.
type hostEnv struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Build      *buildinfo.Info `json:"build_info,omitempty"`
	Phases     *hostPhases     `json:"phases,omitempty"`
}

// currentHostEnv captures the running process's environment.
func currentHostEnv() *hostEnv {
	build := buildinfo.Current()
	return &hostEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Build:      &build,
	}
}

type doc struct {
	Schema   string   `json:"schema"`
	Scale    string   `json:"scale"`
	Host     *hostEnv `json:"host,omitempty"` // absent in pre-host documents; never compared
	Workload workload `json:"workload"`
	Engines  []row    `json:"engines"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-bench: ")
	var (
		scale         = flag.String("scale", "default", "workload scale: quick (CI smoke) or default")
		workers       = flag.String("workers", "1,2,4,8", "comma-separated worker-pool sizes")
		reps          = flag.Int("reps", 3, "measurement repetitions per engine/worker row; host numbers are best-of-reps")
		out           = flag.String("out", "BENCH_seeding.json", "output path (- = stdout)")
		validate      = flag.String("validate", "", "validate an existing benchmark file against the schema and exit")
		compare       = flag.String("compare", "", "baseline benchmark file: exit non-zero if model numbers regress beyond -threshold")
		threshold     = flag.Float64("threshold", 0.10, "allowed fractional model regression for -compare")
		hostThreshold = flag.Float64("host-threshold", 0.5, "host-throughput floor for -compare: fail below this fraction of baseline host reads/s (0 disables)")
		version       = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-bench")
		return
	}
	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("casa-bench: %s is a valid %s document\n", *validate, benchSchema)
		return
	}
	if *compare != "" && flag.NArg() == 1 {
		// Gate an already-written document without re-running the bench.
		cur, err := loadDoc(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		runGate(*compare, cur, *threshold, *hostThreshold)
		return
	}

	ws, err := parseWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	if *reps < 1 {
		log.Fatal("-reps must be at least 1")
	}
	d := runBench(*scale, ws, *reps)

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %s (%d rows)", *out, len(d.Engines))
	}
	if *compare != "" {
		runGate(*compare, d, *threshold, *hostThreshold)
	}
}

// runBench measures every registered engine at every worker count over
// the named workload scale. The host timing of each row is the fastest
// of reps runs; model numbers come from the last run and are identical
// on every repetition.
func runBench(scale string, ws []int, reps int) doc {
	refBases, nReads := 1<<17, 1000
	if scale == "quick" {
		refBases, nReads = 1<<16, 200
	}
	phases := &hostPhases{
		IndexBuildSeconds: map[string]float64{},
		IndexLoadSeconds:  map[string]float64{},
	}
	refStart := time.Now()
	ref := readsim.GenerateReference(readsim.DefaultGenome(refBases, 21))
	phases.RefGenSeconds = time.Since(refStart).Seconds()
	simStart := time.Now()
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(nReads, 22)))
	phases.ReadSimSeconds = time.Since(simStart).Seconds()
	const minSMEM = 19
	d := doc{
		Schema: benchSchema,
		Scale:  scale,
		Host:   currentHostEnv(),
		Workload: workload{
			RefBases: len(ref), Reads: len(reads), ReadLen: len(reads[0]), MinSMEM: minSMEM,
		},
	}
	d.Host.Phases = phases

	seedStart := time.Now()
	for _, e := range buildEngines(ref, minSMEM, phases) {
		for _, w := range ws {
			opts := batch.Options{Workers: w}
			var m model
			repSecs := make([]float64, 0, reps)
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				m = e.run(reads, opts)
				repSecs = append(repSecs, time.Since(start).Seconds())
			}
			host := repSecs[0]
			for _, s := range repSecs[1:] {
				if s < host {
					host = s
				}
			}
			r := row{Engine: e.name, Workers: w, HostSeconds: host, HostRepSeconds: repSecs}
			if host > 0 {
				r.HostReadsPerS = float64(len(reads)) / host
			}
			r.ModelSeconds, r.ModelCycles, r.ModelReadsPerS = m.seconds, m.cycles, m.throughput
			d.Engines = append(d.Engines, r)
			log.Printf("%-8s workers=%d host=%.3fs (%.0f reads/s)", e.name, w, host, r.HostReadsPerS)
		}
	}
	phases.SeedingSeconds = time.Since(seedStart).Seconds()
	log.Printf("host phases: ref_gen=%.3fs read_sim=%.3fs index_build=%.3fs index_load=%.3fs seeding=%.3fs",
		phases.RefGenSeconds, phases.ReadSimSeconds, sumValues(phases.IndexBuildSeconds),
		sumValues(phases.IndexLoadSeconds), phases.SeedingSeconds)
	return d
}

// sumValues totals a per-engine timing map.
func sumValues(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// runGate compares cur against the baseline file and exits non-zero on
// any model regression or host-throughput collapse.
func runGate(baselinePath string, cur doc, threshold, hostThreshold float64) {
	base, err := loadDoc(baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	regressions, err := compareDocs(base, cur, threshold)
	if err != nil {
		log.Fatal(err)
	}
	regressions = append(regressions, compareHost(base, cur, hostThreshold)...)
	if len(regressions) > 0 {
		for _, r := range regressions {
			log.Printf("REGRESSION %s", r)
		}
		log.Fatalf("%d regression(s) vs %s (model threshold %.0f%%, host floor %.0f%%)",
			len(regressions), baselinePath, threshold*100, hostThreshold*100)
	}
	log.Printf("model numbers within %.0f%% of %s; host throughput above %.0f%% floor",
		threshold*100, baselinePath, hostThreshold*100)
}

// model carries the simulated-hardware outputs of one run; zero for
// engines with no hardware model (fmindex).
type model struct {
	seconds    float64
	cycles     int64
	throughput float64
}

// benchEngine is one registry engine prepared for measurement.
type benchEngine struct {
	name string
	run  func(reads []dna.Sequence, o batch.Options) model
}

// buildEngines constructs every registered engine over ref, scaled to
// bench size (small segments so multi-partition paths are exercised,
// table k-mers kept small enough for CI memory), recording each engine's
// index-build wall time into phases. For persisting engines it also
// times engine.LoadIndex over an in-memory casa-idx/v1 serialization —
// the build-vs-load ratio is what justifies shipping index files at all.
// The golden oracle is skipped — quadratic, validation only — so a newly
// registered engine is benchmarked automatically.
func buildEngines(ref dna.Sequence, minSMEM int, phases *hostPhases) []benchEngine {
	opt := engine.Options{
		MinSMEM:    minSMEM,
		Partition:  len(ref) / 4,
		TableK:     8,
		CacheBytes: 1 << 14,
	}
	var out []benchEngine
	for _, f := range engine.List() {
		if f.Golden {
			continue
		}
		buildStart := time.Now()
		e, err := engine.New(f.Name, ref, opt)
		if err != nil {
			log.Fatal(err)
		}
		phases.IndexBuildSeconds[f.Name] = time.Since(buildStart).Seconds()
		if f.NewEmpty != nil {
			var buf bytes.Buffer
			if err := engine.SaveIndex(&buf, e, opt, nil); err != nil {
				log.Fatal(err)
			}
			loadStart := time.Now()
			if _, _, err := engine.LoadIndex(bytes.NewReader(buf.Bytes())); err != nil {
				log.Fatal(err)
			}
			phases.IndexLoadSeconds[f.Name] = time.Since(loadStart).Seconds()
		}
		out = append(out, benchEngine{f.Name, func(reads []dna.Sequence, o batch.Options) model {
			res := batch.SeedEngine(e, reads, o)
			if mod, ok := e.(engine.Modeler); ok {
				m := mod.Model(res)
				return model{m.Seconds, m.Cycles, m.ReadsPerS}
			}
			return model{}
		}})
	}
	return out
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("casa-bench: bad -workers entry %q", f)
		}
		ws = append(ws, n)
	}
	return ws, nil
}

// validateFile checks that path holds a well-formed casa-bench/v1
// document: the right schema tag, a plausible workload, and positive
// host measurements for every engine row.
func validateFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d doc
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return fmt.Errorf("casa-bench: %s: %w", path, err)
	}
	if d.Schema != benchSchema {
		return fmt.Errorf("casa-bench: %s: schema %q, want %q", path, d.Schema, benchSchema)
	}
	if d.Workload.RefBases <= 0 || d.Workload.Reads <= 0 || d.Workload.ReadLen <= 0 {
		return fmt.Errorf("casa-bench: %s: implausible workload %+v", path, d.Workload)
	}
	if len(d.Engines) == 0 {
		return fmt.Errorf("casa-bench: %s: no engine rows", path)
	}
	seen := map[string]bool{}
	for i, r := range d.Engines {
		if r.Engine == "" || r.Workers < 1 {
			return fmt.Errorf("casa-bench: %s: row %d malformed: %+v", path, i, r)
		}
		if r.HostSeconds <= 0 || r.HostReadsPerS <= 0 {
			return fmt.Errorf("casa-bench: %s: row %d (%s workers=%d) has no host measurement", path, i, r.Engine, r.Workers)
		}
		seen[r.Engine] = true
	}
	for _, f := range engine.List() {
		if f.Golden {
			continue
		}
		if !seen[f.Name] {
			return fmt.Errorf("casa-bench: %s: engine %q missing", path, f.Name)
		}
	}
	return nil
}
