package main

import (
	"io"
	"log"
	"testing"
)

// TestBaselineModelNumbersReproducible reruns the quick workload in
// process and requires every model field to match the committed baseline
// bit for bit. This is the determinism contract applied to the committed
// artifact: host-path optimisations (scratch reuse, batched ranks, fast
// paths) may change host numbers freely, but if a regenerated baseline
// shifts a single model bit, the simulated hardware changed and the
// baseline diff must say so explicitly.
func TestBaselineModelNumbersReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds every engine over the quick workload")
	}
	base, err := loadDoc("../../bench/baseline-quick.json")
	if err != nil {
		t.Fatal(err)
	}

	log.SetOutput(io.Discard) // silence runBench's per-row progress lines
	defer log.SetOutput(testWriter{t})
	cur := runBench("quick", []int{1}, 1)

	if cur.Workload != base.Workload {
		t.Fatalf("workload drifted: committed %+v, regenerated %+v", base.Workload, cur.Workload)
	}
	curRows := map[string]row{}
	for _, r := range cur.Engines {
		curRows[r.Engine] = r
	}
	for _, b := range modelRows(base) {
		c, ok := curRows[b.Engine]
		if !ok {
			t.Errorf("engine %q in baseline but not produced by runBench", b.Engine)
			continue
		}
		if c.ModelSeconds != b.ModelSeconds || c.ModelCycles != b.ModelCycles || c.ModelReadsPerS != b.ModelReadsPerS {
			t.Errorf("%s: model numbers drifted from committed baseline:\n  committed  seconds=%v cycles=%d reads/s=%v\n  regenerated seconds=%v cycles=%d reads/s=%v",
				b.Engine, b.ModelSeconds, b.ModelCycles, b.ModelReadsPerS, c.ModelSeconds, c.ModelCycles, c.ModelReadsPerS)
		}
	}
}

// testWriter routes stray log output through the test framework after a
// test has redirected the global logger.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
