package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casa/internal/buildinfo"
	"casa/internal/engine"
)

func benchDoc(rows ...row) doc {
	return doc{
		Schema:   benchSchema,
		Scale:    "quick",
		Workload: workload{RefBases: 1 << 16, Reads: 200, ReadLen: 150, MinSMEM: 19},
		Engines:  rows,
	}
}

func TestCompareDocs(t *testing.T) {
	base := benchDoc(
		row{Engine: "casa", Workers: 1, HostSeconds: 1, ModelSeconds: 0.010, ModelCycles: 1000, ModelReadsPerS: 20000},
		row{Engine: "ert", Workers: 1, HostSeconds: 1, ModelSeconds: 0.020, ModelReadsPerS: 10000},
		row{Engine: "fmindex", Workers: 1, HostSeconds: 1},
	)

	t.Run("identical passes", func(t *testing.T) {
		regs, err := compareDocs(base, base, 0.10)
		if err != nil || len(regs) != 0 {
			t.Fatalf("regs=%v err=%v", regs, err)
		}
	})

	t.Run("within threshold passes", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostSeconds: 9, ModelSeconds: 0.0108, ModelCycles: 1080, ModelReadsPerS: 18200},
			row{Engine: "ert", Workers: 1, HostSeconds: 9, ModelSeconds: 0.021, ModelReadsPerS: 9500},
			row{Engine: "fmindex", Workers: 1, HostSeconds: 9},
		)
		regs, err := compareDocs(base, cur, 0.10)
		if err != nil || len(regs) != 0 {
			t.Fatalf("regs=%v err=%v", regs, err)
		}
	})

	t.Run("regressions caught", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostSeconds: 1, ModelSeconds: 0.012, ModelCycles: 1200, ModelReadsPerS: 17000},
			row{Engine: "ert", Workers: 1, HostSeconds: 1, ModelSeconds: 0.020, ModelReadsPerS: 10000},
			row{Engine: "fmindex", Workers: 1, HostSeconds: 1},
		)
		regs, err := compareDocs(base, cur, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 3 {
			t.Fatalf("want 3 regressions (seconds, cycles, throughput), got %v", regs)
		}
		for _, r := range regs {
			if !strings.HasPrefix(r, "casa:") {
				t.Errorf("regression blames %q, want casa", r)
			}
		}
	})

	t.Run("missing engine is a regression", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostSeconds: 1, ModelSeconds: 0.010, ModelCycles: 1000, ModelReadsPerS: 20000},
			row{Engine: "fmindex", Workers: 1, HostSeconds: 1},
		)
		regs, err := compareDocs(base, cur, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "ert") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("host-only drift ignored", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostSeconds: 100, HostReadsPerS: 2, ModelSeconds: 0.010, ModelCycles: 1000, ModelReadsPerS: 20000},
			row{Engine: "ert", Workers: 1, HostSeconds: 100, ModelSeconds: 0.020, ModelReadsPerS: 10000},
			row{Engine: "fmindex", Workers: 1, HostSeconds: 100},
		)
		regs, err := compareDocs(base, cur, 0.10)
		if err != nil || len(regs) != 0 {
			t.Fatalf("host drift must not gate: regs=%v err=%v", regs, err)
		}
	})

	t.Run("host environment differences ignored", func(t *testing.T) {
		// A baseline captured on another machine (or before host capture
		// existed, Host == nil) must gate purely on model numbers.
		withHost := base
		withHost.Host = &hostEnv{GoVersion: "go1.22", GOOS: "linux", GOARCH: "arm64", NumCPU: 4, GOMAXPROCS: 4}
		cur := base
		cur.Host = currentHostEnv()
		regs, err := compareDocs(withHost, cur, 0.10)
		if err != nil || len(regs) != 0 {
			t.Fatalf("host env drift must not gate: regs=%v err=%v", regs, err)
		}
		regs, err = compareDocs(base, cur, 0.10) // nil-host baseline
		if err != nil || len(regs) != 0 {
			t.Fatalf("nil-host baseline must not gate: regs=%v err=%v", regs, err)
		}
	})

	t.Run("workload mismatch errors", func(t *testing.T) {
		cur := base
		cur.Workload.Reads = 999
		if _, err := compareDocs(base, cur, 0.10); err == nil {
			t.Fatal("want workload mismatch error")
		}
	})
}

func TestCompareHost(t *testing.T) {
	base := benchDoc(
		row{Engine: "casa", Workers: 1, HostSeconds: 0.001, HostReadsPerS: 200000},
		row{Engine: "casa", Workers: 4, HostSeconds: 0.001, HostReadsPerS: 300000},
		row{Engine: "fmindex", Workers: 1, HostSeconds: 0.002, HostReadsPerS: 80000},
	)

	t.Run("identical passes", func(t *testing.T) {
		if regs := compareHost(base, base, 0.5); len(regs) != 0 {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("mild slowdown passes", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostReadsPerS: 120000},
			row{Engine: "casa", Workers: 4, HostReadsPerS: 160000},
			row{Engine: "fmindex", Workers: 1, HostReadsPerS: 41000},
		)
		if regs := compareHost(base, cur, 0.5); len(regs) != 0 {
			t.Fatalf("40%% slowdown must pass the 0.5 floor: regs=%v", regs)
		}
	})

	t.Run("collapse caught per row", func(t *testing.T) {
		cur := benchDoc(
			row{Engine: "casa", Workers: 1, HostReadsPerS: 20000}, // 10x collapse
			row{Engine: "casa", Workers: 4, HostReadsPerS: 290000},
			row{Engine: "fmindex", Workers: 1, HostReadsPerS: 79000},
		)
		regs := compareHost(base, cur, 0.5)
		if len(regs) != 1 || !strings.Contains(regs[0], "casa workers=1") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("missing rows and zero-host baselines skipped", func(t *testing.T) {
		zb := benchDoc(row{Engine: "legacy", Workers: 1}) // pre-host baseline row
		cur := benchDoc(row{Engine: "casa", Workers: 1, HostReadsPerS: 1})
		if regs := compareHost(zb, cur, 0.5); len(regs) != 0 {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("non-positive floor disables", func(t *testing.T) {
		cur := benchDoc(row{Engine: "casa", Workers: 1, HostReadsPerS: 1})
		if regs := compareHost(base, cur, 0); len(regs) != 0 {
			t.Fatalf("regs=%v", regs)
		}
	})
}

// TestHostBlockRoundTrip pins the host-side observability fields: a
// document carrying build info, phase breakdown and per-rep timings still
// validates (DisallowUnknownFields must know every field), and none of it
// reaches the comparison gates.
func TestHostBlockRoundTrip(t *testing.T) {
	build := buildinfo.Current()
	// One row per non-Golden registry engine (validateFile requires full
	// coverage, and the roster includes the sharded composites here); the
	// casa row carries the model and per-rep fields under test.
	rows := []row{{Engine: "casa", Workers: 1, HostSeconds: 1, HostReadsPerS: 200,
		HostRepSeconds: []float64{1.2, 1.0, 1.1}, ModelSeconds: 0.01, ModelCycles: 1000, ModelReadsPerS: 20000}}
	for _, f := range engine.List() {
		if f.Golden || f.Name == "casa" {
			continue
		}
		rows = append(rows, row{Engine: f.Name, Workers: 1, HostSeconds: 1, HostReadsPerS: 200})
	}
	d := benchDoc(rows...)
	d.Host = currentHostEnv()
	d.Host.Phases = &hostPhases{
		RefGenSeconds:     0.1,
		ReadSimSeconds:    0.05,
		IndexBuildSeconds: map[string]float64{"casa": 0.2},
		IndexLoadSeconds:  map[string]float64{"casa": 0.01},
		SeedingSeconds:    3.3,
	}
	if d.Host.Build == nil || d.Host.Build.GoVersion != build.GoVersion {
		t.Fatalf("host env lacks build info: %+v", d.Host)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateFile(path); err != nil {
		t.Fatalf("document with host phases does not validate: %v", err)
	}

	// A baseline without any of the new host fields gates cleanly against
	// it: host metadata is never compared.
	base := benchDoc(d.Engines...)
	for i := range base.Engines {
		base.Engines[i].HostRepSeconds = nil
	}
	regs, err := compareDocs(base, d, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v", regs, err)
	}
	if regs := compareHost(base, d, 0.5); len(regs) != 0 {
		t.Fatalf("host gate tripped on metadata: %v", regs)
	}
}
