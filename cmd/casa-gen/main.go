// Command casa-gen generates a synthetic reference genome (FASTA) and a
// simulated read set (FASTQ), the workload substitutes for GRCh38/GRCm39
// and ERR194147/DWGSIM (see DESIGN.md).
//
// Usage:
//
//	casa-gen -bases 4194304 -reads 10000 -out ref.fa -reads-out reads.fq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/readsim"
	"casa/internal/seqio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-gen: ")
	var (
		bases    = flag.Int("bases", 4<<20, "reference length in bases (split across chromosomes)")
		chroms   = flag.Int("chroms", 1, "number of chromosomes (FASTA records)")
		nReads   = flag.Int("reads", 10000, "number of simulated reads")
		readLen  = flag.Int("read-len", 101, "read length in bp")
		seed     = flag.Int64("seed", 1, "RNG seed")
		errRate  = flag.Float64("err", 0.001, "per-base sequencing error rate")
		mutRate  = flag.Float64("mut", 0.001, "per-base haplotype SNP rate")
		refOut   = flag.String("out", "ref.fa", "reference FASTA output path")
		readsOut = flag.String("reads-out", "reads.fq", "reads FASTQ output path")
		paired   = flag.Bool("paired", false, "emit paired-end reads (mate files <reads-out> and <reads-out>.2)")
		insert   = flag.Int("insert", 350, "paired-end mean fragment length")
		version  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-gen")
		return
	}

	if *chroms < 1 {
		log.Fatal("chroms must be >= 1")
	}
	var recs []seqio.Record
	per := *bases / *chroms
	var all dna.Sequence
	for c := 0; c < *chroms; c++ {
		g := readsim.GenerateReference(readsim.DefaultGenome(per, *seed+int64(c)*13))
		recs = append(recs, seqio.Record{
			Name: fmt.Sprintf("chr%d", c+1),
			Desc: "casa-gen synthetic chromosome",
			Seq:  g,
		})
		all = append(all, g...)
	}
	profile := readsim.ReadProfile{
		Length:  *readLen,
		Count:   *nReads,
		Seed:    *seed + 1,
		MutRate: *mutRate,
		ErrRate: *errRate,
		RevComp: true,
	}
	rf, err := os.Create(*refOut)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	if err := seqio.WriteFasta(rf, recs, 70); err != nil {
		log.Fatal(err)
	}

	if *paired {
		pp := readsim.PairProfile{Read: profile, InsertMean: *insert, InsertSD: *insert / 7}
		pp.Read.RevComp = false
		pairs := readsim.SimulatePairs(all, pp)
		r1, r2 := readsim.PairRecords(pairs)
		if err := writeFastq(*readsOut, r1); err != nil {
			log.Fatal(err)
		}
		if err := writeFastq(*readsOut+".2", r2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d chromosomes, %d bases) and %s/.2 (%d pairs)\n",
			*refOut, len(recs), len(all), *readsOut, len(pairs))
		return
	}

	reads := readsim.Simulate(all, profile)
	if err := writeFastq(*readsOut, readsim.Records(reads)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote %s (%d chromosomes, %d bases) and %s (%d reads, %.1f%% exact)\n",
		*refOut, len(recs), len(all), *readsOut, len(reads), readsim.ExactFraction(reads)*100)
}

func writeFastq(path string, recs []seqio.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return seqio.WriteFastq(f, recs)
}
