// Command casa-smem computes SMEMs for reads against a reference with a
// selectable engine (casa, fmindex, genax, gencache, ert, brute) and
// optionally cross-checks two engines against each other, mirroring the
// paper's §6 validation ("CASA produces identical SMEMs to GenAx and 100%
// SMEMs of BWA-MEM2 are contained").
//
// Reads are seeded as one batch over a worker pool (-workers); results
// are reported in input order regardless of completion order.
//
// Observability (see docs/OBSERVABILITY.md): every engine publishes its
// activity counters and model gauges into a metrics registry. -json emits
// a stable machine-readable report (schema casa-smem/v1) on stdout;
// -metrics writes the Prometheus-style text exposition to stderr; -trace
// records the run's cycle-domain spans (casa-trace/v1; Chrome JSON, or
// JSONL for .jsonl paths) with optional -trace-sample sampling; -http
// serves /metrics, /trace and /debug/pprof until interrupted.
//
// Usage:
//
//	casa-smem -ref ref.fa -reads reads.fq -engine casa [-verify fmindex] [-min-smem 19] [-workers 8] [-json] [-metrics] [-trace out.json] [-trace-sample slowest:100] [-http localhost:6060]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"casa/internal/batch"
	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/gencache"
	"casa/internal/metrics"
	"casa/internal/obshttp"
	"casa/internal/seqio"
	"casa/internal/smem"
	"casa/internal/trace"
)

// engine computes forward-strand SMEMs for a read batch on a worker pool,
// returning per-read SMEM sets in input order. When pool.Metrics is set,
// the engine publishes its activity counters and model gauges into it.
type engine interface {
	findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match
}

// reportSchema identifies the -json document layout.
const reportSchema = "casa-smem/v1"

// report is the -json output document. Field order is fixed and the
// embedded registry serializes with sorted names, so the same run always
// produces the same bytes.
type report struct {
	Schema     string            `json:"schema"`
	Engine     string            `json:"engine"`
	Verify     string            `json:"verify,omitempty"`
	MinSMEM    int               `json:"min_smem"`
	Workers    int               `json:"workers"`
	Reads      int               `json:"reads"`
	SMEMs      int               `json:"smems"`
	Mismatches int               `json:"mismatches"`
	Metrics    *metrics.Registry `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-smem: ")
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required)")
		readsPath  = flag.String("reads", "", "reads FASTQ (required)")
		engName    = flag.String("engine", "casa", "engine: casa, fmindex, genax, gencache, ert, brute")
		verify     = flag.String("verify", "", "second engine to cross-check against")
		minSMEM    = flag.Int("min-smem", 19, "minimum SMEM length")
		maxReads   = flag.Int("max-reads", 1000, "cap the number of reads (0 = all)")
		workers    = flag.Int("workers", 0, "seeding worker goroutines (0 = one per CPU)")
		quiet      = flag.Bool("quiet", false, "suppress per-read output (counts only)")
		jsonOut    = flag.Bool("json", false, "emit a "+reportSchema+" JSON report on stdout instead of text")
		metricsOut = flag.Bool("metrics", false, "write the metrics text exposition to stderr after the run")
		tracePath  = flag.String("trace", "", "write a casa-trace/v1 trace of the run (.jsonl = JSONL, else Chrome JSON)")
		traceSamp  = flag.String("trace-sample", "all", "trace sampling policy: all, head:N, slowest:N")
		httpAddr   = flag.String("http", "", "serve /metrics, /trace and /debug/pprof on this address until interrupted")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ref, reads, names, err := load(*refPath, *readsPath, *maxReads)
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.New()
	// Record spans whenever anything could consume them: a -trace file or
	// the HTTP server's /trace endpoint.
	var tr *trace.Trace
	if *tracePath != "" || *httpAddr != "" {
		policy, err := trace.ParsePolicy(*traceSamp)
		if err != nil {
			log.Fatal(err)
		}
		tr = trace.New(policy, 0)
	}
	pool := batch.Options{Workers: *workers, Metrics: reg, Trace: tr}
	var srv *obshttp.Server
	if *httpAddr != "" {
		// Start before seeding so /debug/pprof can profile the run.
		srv, err = obshttp.Start(*httpAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
	}

	eng, err := build(*engName, ref, *minSMEM)
	if err != nil {
		log.Fatal(err)
	}
	got := eng.findAll(reads, *minSMEM, pool)
	var want [][]smem.Match
	if *verify != "" {
		ver, err := build(*verify, ref, *minSMEM)
		if err != nil {
			log.Fatal(err)
		}
		want = ver.findAll(reads, *minSMEM, pool)
	}
	if tr != nil {
		// The pool has drained: merge once and fan the snapshot out to the
		// -trace file and the /trace endpoint. With -verify both engines'
		// spans land in one trace as separate processes.
		spans := tr.Spans()
		if srv != nil {
			srv.PublishTrace(spans)
		}
		if *tracePath != "" {
			if err := trace.WriteFile(*tracePath, spans); err != nil {
				log.Fatal(err)
			}
		}
	}

	totalSMEMs, mismatches := 0, 0
	for i := range reads {
		ms := got[i]
		totalSMEMs += len(ms)
		if !*quiet && !*jsonOut {
			fmt.Printf("%s\t%d SMEMs", names[i], len(ms))
			for _, m := range ms {
				fmt.Printf("\t%s", m)
			}
			fmt.Println()
		}
		if want != nil && !smem.SameIntervals(ms, want[i]) {
			mismatches++
			fmt.Fprintf(os.Stderr, "MISMATCH %s:\n  %s: %v\n  %s: %v\n", names[i], *engName, ms, *verify, want[i])
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Schema:     reportSchema,
			Engine:     *engName,
			Verify:     *verify,
			MinSMEM:    *minSMEM,
			Workers:    pool.WorkerCount(),
			Reads:      len(reads),
			SMEMs:      totalSMEMs,
			Mismatches: mismatches,
			Metrics:    reg,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("\n%d reads, %d SMEMs via %s", len(reads), totalSMEMs, *engName)
		if want != nil {
			fmt.Printf("; %d mismatches vs %s", mismatches, *verify)
		}
		fmt.Println()
	}
	if *metricsOut {
		if err := reg.WriteText(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "casa-smem: serving /metrics, /trace and /debug/pprof on %s, interrupt to exit\n", srv.Addr())
		waitForInterrupt()
		if err := srv.Close(); err != nil {
			log.Print(err)
		}
	}
	if mismatches > 0 {
		os.Exit(1)
	}
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func build(name string, ref dna.Sequence, minSMEM int) (engine, error) {
	switch name {
	case "casa":
		cfg := core.DefaultConfig()
		cfg.MinSMEM = minSMEM
		if cfg.PartitionBases > len(ref) {
			// Shrink to one partition for small references.
			for cfg.PartitionBases/2 >= len(ref) && cfg.PartitionBases > 1024 {
				cfg.PartitionBases /= 2
			}
		}
		a, err := core.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return casaEngine{a}, nil
	case "fmindex":
		f := smem.NewBidirectional(ref)
		return finderEngine{
			newFinder: func(worker int) smem.Finder {
				if worker == 0 {
					return f
				}
				return f.Clone()
			},
			publish: func(f smem.Finder, reg *metrics.Registry) {
				f.(*smem.Bidirectional).PublishMetrics(reg)
			},
		}, nil
	case "brute":
		// BruteForce holds no mutable state: every worker shares it.
		bf := smem.BruteForce{Ref: ref}
		return finderEngine{newFinder: func(int) smem.Finder { return bf }}, nil
	case "genax":
		cfg := genax.DefaultConfig()
		cfg.MinSMEM = minSMEM
		a, err := genax.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return genaxEngine{a}, nil
	case "gencache":
		cfg := gencache.DefaultConfig()
		cfg.GenAx.MinSMEM = minSMEM
		a, err := gencache.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return gencacheEngine{a}, nil
	case "ert":
		cfg := ert.DefaultConfig()
		cfg.MinSMEM = minSMEM
		ix, err := ert.Build(ref, cfg)
		if err != nil {
			return nil, err
		}
		return finderEngine{
			newFinder: func(worker int) smem.Finder {
				if worker == 0 {
					return ertFinder{ix}
				}
				return ertFinder{ix.Clone()}
			},
			publish: func(f smem.Finder, reg *metrics.Registry) {
				f.(ertFinder).ix.PublishMetrics(reg)
			},
		}, nil
	default:
		return nil, fmt.Errorf("casa-smem: unknown engine %q", name)
	}
}

// finderEngine batches any smem.Finder via a per-worker constructor; when
// the pool carries a registry and the finder counts work, publish folds
// each worker's counters in after the batch drains.
type finderEngine struct {
	newFinder func(worker int) smem.Finder
	publish   func(f smem.Finder, reg *metrics.Registry)
}

func (e finderEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	finders := make([]smem.Finder, pool.WorkerCount())
	for w := range finders {
		finders[w] = e.newFinder(w)
	}
	out := batch.FindSMEMs(reads, minLen, pool, func(worker int) smem.Finder {
		return finders[worker]
	})
	if pool.Metrics != nil && e.publish != nil {
		for _, f := range finders {
			e.publish(f, pool.Metrics)
		}
	}
	return out
}

type ertFinder struct{ ix *ert.Index }

func (f ertFinder) FindSMEMs(read dna.Sequence, minLen int) []smem.Match {
	return f.ix.FindSMEMs(read, minLen)
}

type casaEngine struct{ a *core.Accelerator }

func (e casaEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := batch.SeedCASA(e.a, reads, pool)
	out := make([][]smem.Match, len(res.Reads))
	for i, rr := range res.Reads {
		out[i] = rr.Forward
	}
	return out
}

// gencacheEngine shards like the other accelerators: the order-sensitive
// multi-bank cache is replayed from the recorded per-shard fetch streams
// during reduction, so -workers applies without perturbing the model.
type gencacheEngine struct{ a *gencache.Accelerator }

func (e gencacheEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := batch.SeedGenCache(e.a, reads, pool)
	return res.Reads
}

type genaxEngine struct{ a *genax.Accelerator }

func (e genaxEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := batch.SeedGenAx(e.a, reads, pool)
	return res.Reads
}

func load(refPath, readsPath string, maxReads int) (dna.Sequence, []dna.Sequence, []string, error) {
	rf, err := os.Open(refPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rf.Close()
	recs, err := seqio.ReadFasta(rf)
	if err != nil {
		return nil, nil, nil, err
	}
	var ref dna.Sequence
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}
	qf, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer qf.Close()
	var reads []dna.Sequence
	var names []string
	err = seqio.ForEachFastq(qf, func(rec seqio.Record) error {
		if maxReads > 0 && len(reads) >= maxReads {
			return nil
		}
		reads = append(reads, rec.Seq)
		names = append(names, rec.Name)
		return nil
	})
	return ref, reads, names, err
}
