// Command casa-smem computes SMEMs for reads against a reference with a
// selectable engine (casa, fmindex, genax, ert, brute) and optionally
// cross-checks two engines against each other, mirroring the paper's §6
// validation ("CASA produces identical SMEMs to GenAx and 100% SMEMs of
// BWA-MEM2 are contained").
//
// Reads are seeded as one batch over a worker pool (-workers); results
// are reported in input order regardless of completion order.
//
// Usage:
//
//	casa-smem -ref ref.fa -reads reads.fq -engine casa [-verify fmindex] [-min-smem 19] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"casa/internal/batch"
	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/gencache"
	"casa/internal/seqio"
	"casa/internal/smem"
)

// engine computes forward-strand SMEMs for a read batch on a worker pool,
// returning per-read SMEM sets in input order.
type engine interface {
	findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-smem: ")
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTQ (required)")
		engName   = flag.String("engine", "casa", "engine: casa, fmindex, genax, gencache, ert, brute")
		verify    = flag.String("verify", "", "second engine to cross-check against")
		minSMEM   = flag.Int("min-smem", 19, "minimum SMEM length")
		maxReads  = flag.Int("max-reads", 1000, "cap the number of reads (0 = all)")
		workers   = flag.Int("workers", 0, "seeding worker goroutines (0 = one per CPU)")
		quiet     = flag.Bool("quiet", false, "suppress per-read output (counts only)")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ref, reads, names, err := load(*refPath, *readsPath, *maxReads)
	if err != nil {
		log.Fatal(err)
	}
	pool := batch.Options{Workers: *workers}

	eng, err := build(*engName, ref, *minSMEM)
	if err != nil {
		log.Fatal(err)
	}
	got := eng.findAll(reads, *minSMEM, pool)
	var want [][]smem.Match
	if *verify != "" {
		ver, err := build(*verify, ref, *minSMEM)
		if err != nil {
			log.Fatal(err)
		}
		want = ver.findAll(reads, *minSMEM, pool)
	}

	totalSMEMs, mismatches := 0, 0
	for i := range reads {
		ms := got[i]
		totalSMEMs += len(ms)
		if !*quiet {
			fmt.Printf("%s\t%d SMEMs", names[i], len(ms))
			for _, m := range ms {
				fmt.Printf("\t%s", m)
			}
			fmt.Println()
		}
		if want != nil && !smem.SameIntervals(ms, want[i]) {
			mismatches++
			fmt.Fprintf(os.Stderr, "MISMATCH %s:\n  %s: %v\n  %s: %v\n", names[i], *engName, ms, *verify, want[i])
		}
	}
	fmt.Printf("\n%d reads, %d SMEMs via %s", len(reads), totalSMEMs, *engName)
	if want != nil {
		fmt.Printf("; %d mismatches vs %s", mismatches, *verify)
	}
	fmt.Println()
	if mismatches > 0 {
		os.Exit(1)
	}
}

func build(name string, ref dna.Sequence, minSMEM int) (engine, error) {
	switch name {
	case "casa":
		cfg := core.DefaultConfig()
		cfg.MinSMEM = minSMEM
		if cfg.PartitionBases > len(ref) {
			// Shrink to one partition for small references.
			for cfg.PartitionBases/2 >= len(ref) && cfg.PartitionBases > 1024 {
				cfg.PartitionBases /= 2
			}
		}
		a, err := core.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return casaEngine{a}, nil
	case "fmindex":
		f := smem.NewBidirectional(ref)
		return finderEngine{func(worker int) smem.Finder {
			if worker == 0 {
				return f
			}
			return f.Clone()
		}}, nil
	case "brute":
		// BruteForce holds no mutable state: every worker shares it.
		bf := smem.BruteForce{Ref: ref}
		return finderEngine{func(int) smem.Finder { return bf }}, nil
	case "genax":
		cfg := genax.DefaultConfig()
		cfg.MinSMEM = minSMEM
		a, err := genax.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return genaxEngine{a}, nil
	case "gencache":
		cfg := gencache.DefaultConfig()
		cfg.GenAx.MinSMEM = minSMEM
		a, err := gencache.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return gencacheEngine{a}, nil
	case "ert":
		cfg := ert.DefaultConfig()
		cfg.MinSMEM = minSMEM
		ix, err := ert.Build(ref, cfg)
		if err != nil {
			return nil, err
		}
		return finderEngine{func(worker int) smem.Finder {
			if worker == 0 {
				return ertFinder{ix}
			}
			return ertFinder{ix.Clone()}
		}}, nil
	default:
		return nil, fmt.Errorf("casa-smem: unknown engine %q", name)
	}
}

// finderEngine batches any smem.Finder via a per-worker constructor.
type finderEngine struct {
	newFinder func(worker int) smem.Finder
}

func (e finderEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	return batch.FindSMEMs(reads, minLen, pool, e.newFinder)
}

type ertFinder struct{ ix *ert.Index }

func (f ertFinder) FindSMEMs(read dna.Sequence, minLen int) []smem.Match {
	return f.ix.FindSMEMs(read, minLen)
}

type casaEngine struct{ a *core.Accelerator }

func (e casaEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := batch.SeedCASA(e.a, reads, pool)
	out := make([][]smem.Match, len(res.Reads))
	for i, rr := range res.Reads {
		out[i] = rr.Forward
	}
	return out
}

// gencacheEngine seeds sequentially: GenCache's fast-seeding cache is
// order-sensitive shared state with no Clone, so it does not shard.
type gencacheEngine struct{ a *gencache.Accelerator }

func (e gencacheEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := e.a.SeedReads(reads)
	return res.Reads
}

type genaxEngine struct{ a *genax.Accelerator }

func (e genaxEngine) findAll(reads []dna.Sequence, minLen int, pool batch.Options) [][]smem.Match {
	res := batch.SeedGenAx(e.a, reads, pool)
	return res.Reads
}

func load(refPath, readsPath string, maxReads int) (dna.Sequence, []dna.Sequence, []string, error) {
	rf, err := os.Open(refPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rf.Close()
	recs, err := seqio.ReadFasta(rf)
	if err != nil {
		return nil, nil, nil, err
	}
	var ref dna.Sequence
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}
	qf, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer qf.Close()
	var reads []dna.Sequence
	var names []string
	err = seqio.ForEachFastq(qf, func(rec seqio.Record) error {
		if maxReads > 0 && len(reads) >= maxReads {
			return nil
		}
		reads = append(reads, rec.Seq)
		names = append(names, rec.Name)
		return nil
	})
	return ref, reads, names, err
}
