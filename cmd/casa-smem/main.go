// Command casa-smem computes SMEMs for reads against a reference with any
// engine registered in internal/engine (casa, ert, genax, gencache, cpu,
// fmindex, brute — `-engine list` prints them) and optionally cross-checks
// two engines against each other, mirroring the paper's §6 validation
// ("CASA produces identical SMEMs to GenAx and 100% SMEMs of BWA-MEM2 are
// contained").
//
// Reads are seeded as one batch over a worker pool (-workers); results
// are reported in input order regardless of completion order. The run is
// interruptible: SIGINT stops handing out new shards, drains the
// in-flight ones, and the command still emits its report, metrics and
// trace for the completed read prefix before exiting with status 130.
//
// Observability (see docs/OBSERVABILITY.md): every engine publishes its
// activity counters and model gauges into a metrics registry, and every
// run drives a live casa-progress/v1 tracker. -json emits a stable
// machine-readable report (schema casa-smem/v1) on stdout; -metrics
// writes the Prometheus-style text exposition to stderr; -trace records
// the run's cycle-domain spans (casa-trace/v1; Chrome JSON, or JSONL for
// .jsonl paths) with optional -trace-sample sampling; -walltrace records
// the host wall-clock profile (casa-walltrace/v1: per-shard worker spans
// plus the CLI's load/build/seed phases — analyze with casa-trace -wall);
// -http serves
// /metrics, /trace, /progress, /events and /debug/pprof until
// interrupted; -progress logs periodic snapshots for non-HTTP runs;
// -stall-timeout arms a watchdog that dumps per-worker state and
// goroutines when no shard completes in time. Diagnostics go to stderr
// as run-scoped structured logs (-log-level, -log-format).
//
// Usage:
//
//	casa-smem -ref ref.fa -reads reads.fq -engine casa [-verify fmindex] [-min-smem 19] [-workers 8] [-json] [-metrics] [-trace out.json] [-trace-sample slowest:100] [-walltrace wall.json] [-http localhost:6060] [-progress 5s] [-stall-timeout 1m] [-log-format json]
//	casa-smem -index ref.casaidx -reads reads.fq [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"casa/internal/batch"
	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/metrics"
	"casa/internal/obshttp"
	"casa/internal/progress"
	"casa/internal/refidx"
	"casa/internal/seqio"
	"casa/internal/serve"
	_ "casa/internal/shard" // registers the sharded:<name> composites
	"casa/internal/smem"
	"casa/internal/trace"
)

// The -json output document is serve.Report: the CLI and the casa-serve
// HTTP API share one casa-smem/v1 type, so a batch seeded offline and one
// POSTed to /v1/seed produce byte-identical modelled fields.

// newLogger builds the command's stderr slog.Logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// logSnapshot emits one progress snapshot as an info record — the
// terminal-ticker counterpart of the /progress endpoint.
func logSnapshot(log *slog.Logger, s progress.Snapshot) {
	log.Info("progress",
		"reads_done", s.ReadsDone,
		"total_reads", s.TotalReads,
		"shards_done", s.ShardsDone,
		"percent_done", fmt.Sprintf("%.1f", s.PercentDone),
		"host_reads_per_s", fmt.Sprintf("%.0f", s.HostReadsPerS),
		"model_cycles", s.ModelCycles,
		"eta_s", fmt.Sprintf("%.1f", s.ETASeconds))
}

// findAll seeds reads on the pool and returns the engine's forward-strand
// SMEM sets in input order; on cancellation the slice covers exactly the
// completed read prefix (length n) and err is ctx.Err().
func findAll(ctx context.Context, e engine.Engine, reads []dna.Sequence, pool batch.Options) ([][]smem.Match, int, error) {
	res, done, err := batch.SeedEngineCtx(ctx, e, reads, pool)
	return e.SMEMs(res), done, err
}

func main() {
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required unless -index)")
		indexPath  = flag.String("index", "", "prebuilt casa-idx/v1 index (casa-index output); replaces -ref, and the engine and min-smem come from its header")
		readsPath  = flag.String("reads", "", "reads FASTQ (required)")
		engName    = flag.String("engine", "casa", "seeding engine (any registered name; \"list\" prints them)")
		verify     = flag.String("verify", "", "second engine to cross-check against (\"list\" prints the choices)")
		minSMEM    = flag.Int("min-smem", 19, "minimum SMEM length")
		shards     = flag.Int("shards", 0, "reference shards for sharded:* engines (0 = engine default; ignored with -index)")
		shardOver  = flag.Int("shard-overlap", 0, "shard overlap in bases for sharded:* engines (0 = engine default; ignored with -index)")
		maxReads   = flag.Int("max-reads", 1000, "cap the number of reads (0 = all)")
		workers    = flag.Int("workers", 0, "seeding worker goroutines (0 = one per CPU)")
		quiet      = flag.Bool("quiet", false, "suppress per-read output (counts only)")
		jsonOut    = flag.Bool("json", false, "emit a "+serve.ReportSchema+" JSON report on stdout instead of text")
		metricsOut = flag.Bool("metrics", false, "write the metrics text exposition to stderr after the run")
		tracePath  = flag.String("trace", "", "write a casa-trace/v1 trace of the run (.jsonl = JSONL, else Chrome JSON)")
		traceSamp  = flag.String("trace-sample", "all", "trace sampling policy: all, head:N, slowest:N")
		wallPath   = flag.String("walltrace", "", "write a casa-walltrace/v1 host wall-clock profile of the run (Chrome JSON; analyze with casa-trace -wall)")
		httpAddr   = flag.String("http", "", "serve /metrics, /trace, /progress, /events and /debug/pprof on this address until interrupted")
		progEvery  = flag.Duration("progress", 0, "log a progress snapshot at this interval (0 = off)")
		stallAfter = flag.Duration("stall-timeout", 0, "warn with per-worker state and a goroutine dump when no shard completes for this long (0 = off)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		version    = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-smem")
		return
	}
	if *engName == "list" || *verify == "list" {
		engine.WriteList(os.Stdout)
		return
	}
	// Canonicalize aliases up front so every label — logs, trace procs,
	// the JSON report — carries the registry name.
	if f, ok := engine.Lookup(*engName); ok {
		*engName = f.Name
	}
	if f, ok := engine.Lookup(*verify); ok {
		*verify = f.Name
	}
	if (*refPath == "") == (*indexPath == "") || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *indexPath != "" && *verify != "" {
		fmt.Fprintln(os.Stderr, "casa-smem: -verify rebuilds a second engine from FASTA and needs -ref, not -index")
		os.Exit(2)
	}
	// With -index the engine identity and reporting floor come from the
	// container header (resolved below, after the header is read); an
	// explicit conflicting -engine is an error, not a silent override.
	var engSet, minSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "engine":
			engSet = true
		case "min-smem":
			minSet = true
		}
	})
	if *indexPath != "" {
		hdr, err := peekHeader(*indexPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casa-smem:", err)
			os.Exit(1)
		}
		if engSet && *engName != hdr.Engine {
			fmt.Fprintf(os.Stderr, "casa-smem: %s holds a %s index; it cannot seed with -engine %s\n",
				*indexPath, hdr.Engine, *engName)
			os.Exit(2)
		}
		*engName = hdr.Engine
		if hdr.MinSMEM > 0 {
			if minSet && *minSMEM != int(hdr.MinSMEM) {
				fmt.Fprintf(os.Stderr, "casa-smem: -min-smem %d conflicts with the index header's %d\n",
					*minSMEM, hdr.MinSMEM)
				os.Exit(2)
			}
			*minSMEM = int(hdr.MinSMEM)
		}
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casa-smem:", err)
		os.Exit(2)
	}
	runID := progress.NewRunID()
	logger = logger.With("run_id", runID, "engine", *engName)
	// srv is declared before fatal so error exits after -http has started
	// the observability server still release its listener.
	var srv *obshttp.Server
	fatal := func(err error) {
		logger.Error(err.Error())
		if srv != nil {
			srv.Close()
		}
		os.Exit(1)
	}

	// SIGINT cancels the run context: the pool drains in-flight shards,
	// the completed prefix is reported with its telemetry, and the
	// command exits 130. A second SIGINT kills the process immediately
	// (stop() restores default signal handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The wall recorder profiles the *host* side of the run: the CLI's own
	// load/build/seed phases (proc "casa-smem", track "phase") plus the
	// batch layer's per-shard worker spans. Entirely separate from the
	// cycle-domain -trace.
	var wall *trace.WallTrace
	if *wallPath != "" {
		wall = trace.NewWall(0)
	}
	phase := func(name string, start time.Time) {
		wall.Record("casa-smem", "phase", name, start, time.Since(start))
	}

	loadStart := time.Now()
	var ref dna.Sequence
	if *indexPath == "" {
		ref, err = loadRef(*refPath)
		if err != nil {
			fatal(err)
		}
	}
	reads, names, err := loadReads(*readsPath, *maxReads)
	if err != nil {
		fatal(err)
	}
	phase("load", loadStart)
	reg := metrics.New()
	// Record spans whenever anything could consume them: a -trace file or
	// the HTTP server's /trace endpoint.
	var tr *trace.Trace
	if *tracePath != "" || *httpAddr != "" {
		policy, err := trace.ParsePolicy(*traceSamp)
		if err != nil {
			fatal(err)
		}
		tr = trace.New(policy, 0)
	}
	pool := batch.Options{Workers: *workers, Metrics: reg, Trace: tr, Wall: wall}
	tracker := progress.New(runID, *engName, pool.WorkerCount(), int64(len(reads)))
	pool.Progress = tracker
	logger.Info("run starting", "reads", len(reads), "workers", pool.WorkerCount(), "min_smem", *minSMEM)

	if *httpAddr != "" {
		// Start before seeding so /debug/pprof can profile the run and
		// /progress and /events observe it live.
		srv, err = obshttp.Start(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		srv.SetProgress(tracker)
		logger.Info("observability server listening", "addr", srv.Addr())
	}
	if *stallAfter > 0 {
		wd := progress.NewWatchdog(tracker, *stallAfter, logger)
		wd.Start()
		defer wd.Stop()
	}
	if *progEvery > 0 {
		go func() {
			tick := time.NewTicker(*progEvery)
			defer tick.Stop()
			for {
				select {
				case <-tracker.Done():
					return
				case <-tick.C:
					logSnapshot(logger, tracker.Snapshot())
				}
			}
		}()
	}

	// The build phase either constructs the engine from the reference or
	// loads the prebuilt index — the wall trace labels both "build" so
	// the two flows compare directly in casa-trace -wall.
	buildStart := time.Now()
	var eng engine.Engine
	if *indexPath != "" {
		eng, err = loadIndexEngine(*indexPath)
	} else {
		eng, err = engine.New(*engName, ref, engine.Options{
			MinSMEM: *minSMEM, Shards: *shards, ShardOverlap: *shardOver,
		})
	}
	if err != nil {
		fatal(err)
	}
	phase("build", buildStart)
	seedStart := time.Now()
	got, done, runErr := findAll(ctx, eng, reads, pool)
	phase("seed", seedStart)
	tracker.Finish()
	interrupted := runErr != nil
	if interrupted {
		logger.Warn("run interrupted; reporting the completed prefix",
			"reads_done", done, "total_reads", len(reads))
	}

	var want [][]smem.Match
	vdone := 0
	if *verify != "" && !interrupted {
		ver, err := engine.New(*verify, ref, engine.Options{
			MinSMEM: *minSMEM, Shards: *shards, ShardOverlap: *shardOver,
		})
		if err != nil {
			fatal(err)
		}
		// The verify pass reuses the metrics/trace sinks (both engines'
		// spans land in one trace as separate processes) but not the
		// progress tracker — the live run it describes is finished.
		vpool := pool
		vpool.Progress = nil
		want, vdone, err = findAll(ctx, ver, reads, vpool)
		if err != nil {
			interrupted = true
			logger.Warn("verify pass interrupted; cross-checking the completed prefix",
				"reads_verified", vdone)
		}
	}
	if tr != nil {
		// The pool has drained: merge once and fan the snapshot out to the
		// -trace file and the /trace endpoint. On an interrupted run this
		// is the valid partial trace of the completed shards.
		spans := tr.Spans()
		if srv != nil {
			srv.PublishTrace(spans)
		}
		if *tracePath != "" {
			if err := trace.WriteFile(*tracePath, spans); err != nil {
				fatal(err)
			}
		}
	}
	if wall != nil {
		spans := wall.Spans()
		if err := trace.WriteWallFile(*wallPath, spans, wall.Dropped()); err != nil {
			fatal(err)
		}
		logger.Info("wall trace written", "path", *wallPath,
			"spans", len(spans), "dropped", wall.Dropped())
	}

	totalSMEMs, mismatches := 0, 0
	for i := 0; i < done; i++ {
		ms := got[i]
		totalSMEMs += len(ms)
		if !*quiet && !*jsonOut {
			fmt.Printf("%s\t%d SMEMs", names[i], len(ms))
			for _, m := range ms {
				fmt.Printf("\t%s", m)
			}
			fmt.Println()
		}
		if want != nil && i < vdone && !smem.SameIntervals(ms, want[i]) {
			mismatches++
			fmt.Fprintf(os.Stderr, "MISMATCH %s:\n  %s: %v\n  %s: %v\n", names[i], *engName, ms, *verify, want[i])
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(serve.Report{
			Schema:      serve.ReportSchema,
			RunID:       runID,
			Engine:      *engName,
			Verify:      *verify,
			MinSMEM:     *minSMEM,
			Workers:     pool.WorkerCount(),
			Reads:       done,
			SMEMs:       totalSMEMs,
			Mismatches:  mismatches,
			Interrupted: interrupted,
			Metrics:     reg,
		}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("\n%d reads, %d SMEMs via %s", done, totalSMEMs, *engName)
		if want != nil {
			fmt.Printf("; %d mismatches vs %s", mismatches, *verify)
		}
		if interrupted {
			fmt.Printf(" (interrupted: %d of %d reads)", done, len(reads))
		}
		fmt.Println()
	}
	if *metricsOut {
		if err := reg.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if srv != nil {
		if !interrupted {
			logger.Info("serving observability endpoints until interrupted", "addr", srv.Addr())
			<-ctx.Done()
		}
		if err := srv.Close(); err != nil {
			logger.Error(err.Error())
		}
	}
	logSnapshot(logger, tracker.Snapshot())
	if interrupted {
		os.Exit(130)
	}
	if mismatches > 0 {
		os.Exit(1)
	}
}

// loadRef builds the flat reference the same way casa-index does
// (refidx.Build: records concatenated with spacers), so an index-loaded
// run and a FASTA rebuild seed the identical coordinate space.
func loadRef(refPath string) (dna.Sequence, error) {
	rf, err := os.Open(refPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	recs, err := seqio.ReadFasta(rf)
	if err != nil {
		return nil, err
	}
	ix, err := refidx.Build(recs)
	if err != nil {
		return nil, err
	}
	return ix.Flat(), nil
}

func loadReads(readsPath string, maxReads int) ([]dna.Sequence, []string, error) {
	qf, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, err
	}
	defer qf.Close()
	var reads []dna.Sequence
	var names []string
	err = seqio.ForEachFastq(qf, func(rec seqio.Record) error {
		if maxReads > 0 && len(reads) >= maxReads {
			return nil
		}
		reads = append(reads, rec.Seq)
		names = append(names, rec.Name)
		return nil
	})
	return reads, names, err
}

// peekHeader reads just the casa-idx/v1 header of an index file, to
// resolve the engine label and reporting floor before the run starts.
func peekHeader(path string) (idxio.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return idxio.Header{}, err
	}
	defer f.Close()
	_, hdr, err := idxio.NewReader(f)
	return hdr, err
}

// loadIndexEngine materializes the index's engine via the registry.
func loadIndexEngine(path string) (engine.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	eng, _, err := engine.LoadIndex(f)
	return eng, err
}
