// Command casa-smem computes SMEMs for reads against a reference with a
// selectable engine (casa, fmindex, genax, ert, brute) and optionally
// cross-checks two engines against each other, mirroring the paper's §6
// validation ("CASA produces identical SMEMs to GenAx and 100% SMEMs of
// BWA-MEM2 are contained").
//
// Usage:
//
//	casa-smem -ref ref.fa -reads reads.fq -engine casa [-verify fmindex] [-min-smem 19]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/gencache"
	"casa/internal/seqio"
	"casa/internal/smem"
)

// engine computes forward-strand SMEMs for one read.
type engine interface {
	find(read dna.Sequence, minLen int) []smem.Match
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-smem: ")
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTQ (required)")
		engName   = flag.String("engine", "casa", "engine: casa, fmindex, genax, gencache, ert, brute")
		verify    = flag.String("verify", "", "second engine to cross-check against")
		minSMEM   = flag.Int("min-smem", 19, "minimum SMEM length")
		maxReads  = flag.Int("max-reads", 1000, "cap the number of reads (0 = all)")
		quiet     = flag.Bool("quiet", false, "suppress per-read output (counts only)")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ref, reads, names, err := load(*refPath, *readsPath, *maxReads)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := build(*engName, ref, *minSMEM)
	if err != nil {
		log.Fatal(err)
	}
	var ver engine
	if *verify != "" {
		if ver, err = build(*verify, ref, *minSMEM); err != nil {
			log.Fatal(err)
		}
	}

	totalSMEMs, mismatches := 0, 0
	for i, read := range reads {
		ms := eng.find(read, *minSMEM)
		totalSMEMs += len(ms)
		if !*quiet {
			fmt.Printf("%s\t%d SMEMs", names[i], len(ms))
			for _, m := range ms {
				fmt.Printf("\t%s", m)
			}
			fmt.Println()
		}
		if ver != nil {
			want := ver.find(read, *minSMEM)
			if !smem.SameIntervals(ms, want) {
				mismatches++
				fmt.Fprintf(os.Stderr, "MISMATCH %s:\n  %s: %v\n  %s: %v\n", names[i], *engName, ms, *verify, want)
			}
		}
	}
	fmt.Printf("\n%d reads, %d SMEMs via %s", len(reads), totalSMEMs, *engName)
	if ver != nil {
		fmt.Printf("; %d mismatches vs %s", mismatches, *verify)
	}
	fmt.Println()
	if mismatches > 0 {
		os.Exit(1)
	}
}

func build(name string, ref dna.Sequence, minSMEM int) (engine, error) {
	switch name {
	case "casa":
		cfg := core.DefaultConfig()
		cfg.MinSMEM = minSMEM
		if cfg.PartitionBases > len(ref) {
			// Shrink to one partition for small references.
			for cfg.PartitionBases/2 >= len(ref) && cfg.PartitionBases > 1024 {
				cfg.PartitionBases /= 2
			}
		}
		a, err := core.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return casaEngine{a}, nil
	case "fmindex":
		return finderEngine{smem.NewBidirectional(ref)}, nil
	case "brute":
		return finderEngine{smem.BruteForce{Ref: ref}}, nil
	case "genax":
		cfg := genax.DefaultConfig()
		cfg.MinSMEM = minSMEM
		a, err := genax.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return genaxEngine{a}, nil
	case "gencache":
		cfg := gencache.DefaultConfig()
		cfg.GenAx.MinSMEM = minSMEM
		a, err := gencache.New(ref, cfg)
		if err != nil {
			return nil, err
		}
		return gencacheEngine{a}, nil
	case "ert":
		cfg := ert.DefaultConfig()
		cfg.MinSMEM = minSMEM
		ix, err := ert.Build(ref, cfg)
		if err != nil {
			return nil, err
		}
		return finderEngine{ertFinder{ix}}, nil
	default:
		return nil, fmt.Errorf("casa-smem: unknown engine %q", name)
	}
}

type finderEngine struct{ f smem.Finder }

func (e finderEngine) find(read dna.Sequence, minLen int) []smem.Match {
	return e.f.FindSMEMs(read, minLen)
}

type ertFinder struct{ ix *ert.Index }

func (f ertFinder) FindSMEMs(read dna.Sequence, minLen int) []smem.Match {
	return f.ix.FindSMEMs(read, minLen)
}

type casaEngine struct{ a *core.Accelerator }

func (e casaEngine) find(read dna.Sequence, minLen int) []smem.Match {
	res := e.a.SeedReads([]dna.Sequence{read})
	return res.Reads[0].Forward
}

type gencacheEngine struct{ a *gencache.Accelerator }

func (e gencacheEngine) find(read dna.Sequence, minLen int) []smem.Match {
	res := e.a.SeedReads([]dna.Sequence{read})
	return res.Reads[0]
}

type genaxEngine struct{ a *genax.Accelerator }

func (e genaxEngine) find(read dna.Sequence, minLen int) []smem.Match {
	res := e.a.SeedReads([]dna.Sequence{read})
	return res.Reads[0]
}

func load(refPath, readsPath string, maxReads int) (dna.Sequence, []dna.Sequence, []string, error) {
	rf, err := os.Open(refPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rf.Close()
	recs, err := seqio.ReadFasta(rf)
	if err != nil {
		return nil, nil, nil, err
	}
	var ref dna.Sequence
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}
	qf, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer qf.Close()
	var reads []dna.Sequence
	var names []string
	err = seqio.ForEachFastq(qf, func(rec seqio.Record) error {
		if maxReads > 0 && len(reads) >= maxReads {
			return nil
		}
		reads = append(reads, rec.Seq)
		names = append(names, rec.Name)
		return nil
	})
	return ref, reads, names, err
}
