// Command casa-sim runs the CASA accelerator simulator over a reference
// (FASTA) and a read set (FASTQ), printing the modelled throughput,
// power, DRAM bandwidth, filter statistics, and the Table 4 style
// breakdown for the run.
//
// Usage:
//
//	casa-sim -ref ref.fa -reads reads.fq [-partition 4194304] [-k 19] [-naive]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"casa/internal/buildinfo"
	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/refidx"
	"casa/internal/seqio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casa-sim: ")
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required unless -index)")
		indexPath = flag.String("index", "", "prebuilt casa-idx/v1 index holding a casa accelerator (casa-index output); overrides -ref and geometry flags")
		readsPath = flag.String("reads", "", "reads FASTQ (required)")
		partition = flag.Int("partition", 4<<20, "partition size in bases")
		k         = flag.Int("k", 19, "seed k-mer size")
		m         = flag.Int("m", 10, "mini index m-mer size")
		minSMEM   = flag.Int("min-smem", 19, "minimum reported SMEM length")
		naive     = flag.Bool("naive", false, "disable the pre-seeding filter and analyses")
		noPrepass = flag.Bool("no-exact-prepass", false, "disable the exact-match prepass")
		maxReads  = flag.Int("max-reads", 0, "cap the number of reads (0 = all)")
		version   = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-sim")
		return
	}
	if (*refPath == "" && *indexPath == "") || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	reads, err := loadReads(*readsPath, *maxReads)
	if err != nil {
		log.Fatal(err)
	}

	var acc *core.Accelerator
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		eng, hdr, err := engine.LoadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// The simulator models the paper's accelerator specifically: any
		// casa-idx/v1 container works as long as it unwraps to one.
		u, ok := eng.(engine.Unwrapper)
		if ok {
			acc, ok = u.Unwrap().(*core.Accelerator)
		}
		if !ok {
			log.Fatalf("%s holds a %s index; casa-sim needs a casa index", *indexPath, hdr.Engine)
		}
	} else {
		ref, err := loadRef(*refPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.PartitionBases = *partition
		cfg.K, cfg.M, cfg.MinSMEM = *k, *m, *minSMEM
		if *naive {
			cfg.UseFilterTable = false
			cfg.UseAnalysis = false
			cfg.GroupGating = false
			cfg.EntryGating = false
		}
		if *noPrepass {
			cfg.ExactMatchPrepass = false
		}
		acc, err = engine.Build[*core.Accelerator]("casa", ref, engine.Options{Config: cfg})
		if err != nil {
			log.Fatal(err)
		}
	}
	cfg := acc.Config()
	fmt.Printf("reference: %d partitions; on-chip budget %.1f MB\n",
		acc.Partitions(), float64(cfg.OnChipBytes())/(1<<20))

	res := acc.SeedReads(reads)
	st := res.Stats
	fmt.Printf("reads:            %d (x2 strands x %d partitions)\n", len(reads), acc.Partitions())
	fmt.Printf("throughput:       %.3g reads/s (modelled, %d cycles)\n", res.Throughput(), res.Cycles)
	fmt.Printf("power:            %.2f W   efficiency: %.1f reads/mJ\n", res.Energy.PowerW(), res.ReadsPerMJ())
	fmt.Printf("DRAM:             %.1f GB/s average\n", res.DRAM.BandwidthGBs(res.Seconds))
	fmt.Printf("exact-match reads:%d   discarded (no hit): %d\n", st.ReadsExact, st.ReadsDiscarded)
	fmt.Printf("pivots:           %d total; filtered: table %d, CRkM %d, align %d; computed %d (%.3f%%)\n",
		st.PivotsTotal, st.PivotsFilteredTable, st.PivotsFilteredCRkM, st.PivotsFilteredAlign,
		st.PivotsComputed, 100*float64(st.PivotsComputed)/float64(max(st.PivotsTotal, 1)))
	fmt.Printf("CAM activity:     %d searches, %d rows enabled, %d stride steps, %d binary-search steps\n",
		st.CAMSearches, st.CAMRowsEnabled, st.StrideSteps, st.BinSearchSteps)
	smems := 0
	for _, rr := range res.Reads {
		smems += len(rr.Forward) + len(rr.Reverse)
	}
	fmt.Printf("SMEMs:            %d across both strands\n\n", smems)
	fmt.Println(res.Energy.String())
}

// loadRef builds the flat reference the same way casa-index and
// casa-smem do (refidx.Build), so a -ref run and an -index run over the
// same FASTA model the identical coordinate space.
func loadRef(path string) (dna.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	ix, err := refidx.Build(recs)
	if err != nil {
		return nil, fmt.Errorf("casa-sim: %s: %w", path, err)
	}
	return ix.Flat(), nil
}

func loadReads(path string, maxReads int) ([]dna.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var reads []dna.Sequence
	err = seqio.ForEachFastq(f, func(rec seqio.Record) error {
		if maxReads > 0 && len(reads) >= maxReads {
			return nil
		}
		reads = append(reads, rec.Seq)
		return nil
	})
	return reads, err
}
