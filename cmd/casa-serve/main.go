// Command casa-serve is the seeding front door: it loads a reference
// FASTA once, builds one engine from the internal/engine registry
// (-engine; "list" prints the catalogue), and serves read batches over
// HTTP until terminated — the long-running counterpart of casa-smem's
// one-shot batch run (see internal/serve for the API and queueing
// semantics).
//
//	POST /v1/seed      submit a FASTA/FASTQ batch (raw body or
//	                   curl -F reads=@reads.fq); answers a casa-smem/v1
//	                   JSON report, or an SSE stream of per-shard
//	                   progress events then the report with
//	                   Accept: text/event-stream; ?include=smems adds
//	                   per-read SMEM sets
//	GET  /v1/runs[/{id}]  run inventory / casa-progress/v1 snapshots
//	GET  /v1/stats     lifetime summary (casa-serve-stats/v1 JSON)
//	GET  /healthz, /metrics, /debug/runtrace, /debug/pprof/
//
// A full queue answers 429 with a Retry-After derived from observed run
// durations; disconnected clients free their slot via the pool's drain
// semantics. SIGTERM/SIGINT drain gracefully: stop accepting, finish the
// in-flight and queued runs, flush metrics (-metrics) and the wall-clock
// run lifecycle trace (-trace), exit 0. A second signal kills the
// process. See docs/OBSERVABILITY.md for the serving telemetry surface.
//
// Usage:
//
//	casa-serve -ref ref.fa [-addr :8844] [-engine casa] [-min-smem 19] [-workers 8] [-queue 8] [-metrics] [-trace run.json] [-log-format json]
//	casa-serve -index ref.casaidx [-addr :8844]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/progress"
	"casa/internal/refidx"
	"casa/internal/seqio"
	"casa/internal/serve"
	_ "casa/internal/shard" // registers the sharded:<name> composites
)

// newLogger builds the command's stderr slog.Logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required unless -index)")
		indexPath  = flag.String("index", "", "prebuilt casa-idx/v1 index (casa-index output); replaces -ref, and the engine and min-smem come from its header")
		addr       = flag.String("addr", "127.0.0.1:8844", "listen address (port 0 picks a free port)")
		engName    = flag.String("engine", "casa", "seeding engine (any registered name; \"list\" prints them)")
		minSMEM    = flag.Int("min-smem", 19, "minimum SMEM length")
		partition  = flag.Int("partition", 0, "partition size in bases for partitioned engines (0 = engine default)")
		workers    = flag.Int("workers", 0, "seeding worker goroutines per run (0 = one per CPU)")
		queueDepth = flag.Int("queue", 8, "seed requests queued behind the running one before 429")
		maxBody    = flag.Int64("max-body", 64<<20, "largest accepted read batch in bytes")
		eventEvery = flag.Duration("event-interval", time.Second, "SSE heartbeat cadence between shard completions")
		metricsOut = flag.Bool("metrics", false, "write the serving metrics text exposition to stderr at shutdown")
		traceOut   = flag.String("trace", "", "write the wall-clock run lifecycle trace (Chrome JSON) to this file at shutdown")
		traceCap   = flag.Int("trace-spans", 0, "wall-clock lifecycle spans retained for /debug/runtrace and -trace (0 = library default)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		version    = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "casa-serve")
		return
	}
	if *engName == "list" {
		engine.WriteList(os.Stdout)
		return
	}
	if (*refPath == "") == (*indexPath == "") {
		flag.Usage()
		os.Exit(2)
	}
	var engSet bool
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engSet = true
		}
	})
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casa-serve:", err)
		os.Exit(2)
	}
	logger = logger.With("pid", os.Getpid(), "server_id", progress.NewRunID())
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	cfg := serve.Config{
		Engine:            *engName,
		EngineOptions:     engine.Options{MinSMEM: *minSMEM, Partition: *partition},
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		MaxBodyBytes:      *maxBody,
		EventInterval:     *eventEvery,
		TraceSpanCapacity: *traceCap,
		Log:               logger,
	}
	var s *serve.Server
	if *indexPath != "" {
		loadStart := time.Now()
		eng, hdr, err := loadIndexEngine(*indexPath)
		if err != nil {
			fatal(err)
		}
		if f, ok := engine.Lookup(*engName); ok {
			*engName = f.Name
		}
		if engSet && *engName != hdr.Engine {
			fatal(fmt.Errorf("%s holds a %s index; it cannot seed with -engine %s", *indexPath, hdr.Engine, *engName))
		}
		cfg.Engine = hdr.Engine
		if hdr.MinSMEM > 0 {
			cfg.EngineOptions.MinSMEM = int(hdr.MinSMEM)
		}
		logger.Info("index loaded", "path", *indexPath, "engine", hdr.Engine,
			"load_seconds", fmt.Sprintf("%.3f", time.Since(loadStart).Seconds()))
		s, err = serve.StartEngine(*addr, eng, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		ref, err := loadRef(*refPath)
		if err != nil {
			fatal(err)
		}
		logger.Info("reference loaded", "path", *refPath, "bases", len(ref), "engine", *engName)
		s, err = serve.Start(*addr, ref, cfg)
		if err != nil {
			fatal(err)
		}
	}
	logger.Info("seeding server listening", "addr", s.Addr())

	// First SIGTERM/SIGINT starts the drain; stop() then restores default
	// handling so a second signal kills a stuck process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	logger.Info("draining: finishing in-flight and queued runs")
	if err := s.Close(); err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if *metricsOut {
		if err := s.Metrics().WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeRunTrace(s, *traceOut); err != nil {
			fatal(err)
		}
		spans, dropped := s.TraceStats()
		logger.Info("run trace written", "path", *traceOut,
			"spans", spans, "dropped", dropped)
	}
	logger.Info("drained, exiting")
}

// writeRunTrace dumps the server's wall-clock lifecycle trace
// (casa-walltrace/v1 Chrome JSON, the same document /debug/runtrace
// serves) into path — load it in Perfetto to see where each served run's
// wall time went.
func writeRunTrace(s *serve.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteRunTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadRef builds the flat reference sequence the engines index, the same
// way casa-smem and casa-index load it (refidx.Build: records
// concatenated with spacers).
func loadRef(path string) (dna.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	ix, err := refidx.Build(recs)
	if err != nil {
		return nil, err
	}
	return ix.Flat(), nil
}

// loadIndexEngine materializes a casa-idx/v1 index file's engine via the
// registry, returning the header for labels and option resolution.
func loadIndexEngine(path string) (engine.Engine, idxio.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, idxio.Header{}, err
	}
	defer f.Close()
	return engine.LoadIndex(f)
}
