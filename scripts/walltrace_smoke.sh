#!/usr/bin/env bash
# Wall-clock trace smoke test: seed a toy batch with casa-smem
# -walltrace, then assert casa-trace -wall reads the capture back and
# reports the expected pool shape — 4 workers, the exact shard count the
# pool's grain math dictates, every read accounted for, no ring drops,
# and the utilization/imbalance lines the analyzer promises. Run by
# CI's walltrace-smoke job and by `make walltrace-smoke`.
set -euo pipefail

GO=${GO:-go}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

# 8000 reads on 4 workers: grain = ceil(8000/(4*4)) = 500, so exactly
# 16 shards — a fixed shape the assertions below can pin. The shard and
# read totals are exact regardless of how the workers split them; how
# many of the 4 workers actually claim a shard from the dynamic handout
# is scheduling-dependent, so the worker count is only bounded.
READS=8000
WORKERS=4
SHARDS=16

echo "== generating workload =="
(cd "$ROOT" && $GO run ./cmd/casa-gen -bases $((1 << 20)) -reads $READS -read-len 101 -seed 7 \
    -out "$WORKDIR/ref.fa" -reads-out "$WORKDIR/reads.fq")

echo "== seeding with -walltrace =="
(cd "$ROOT" && $GO run ./cmd/casa-smem -ref "$WORKDIR/ref.fa" -reads "$WORKDIR/reads.fq" \
    -engine casa -max-reads 0 -workers $WORKERS -quiet \
    -walltrace "$WORKDIR/wall.json") >smem.out 2>smem.log
grep -q "wall trace written" smem.log || { cat smem.log; echo "no wall-trace log line"; exit 1; }
[ -s wall.json ] || { echo "wall.json missing or empty"; exit 1; }

echo "== analyzing with casa-trace -wall =="
(cd "$ROOT" && $GO run ./cmd/casa-trace -wall "$WORKDIR/wall.json") >wall.txt
cat wall.txt

echo "== asserting the report =="
grep -q "(0 dropped)" wall.txt || { echo "expected a drop-free capture"; exit 1; }
GOT_WORKERS=$(sed -n 's/.*workers: \([0-9]*\).*/\1/p' wall.txt | head -1)
[ -n "$GOT_WORKERS" ] || { echo "no workers count in the report"; exit 1; }
[ "$GOT_WORKERS" -ge 1 ] && [ "$GOT_WORKERS" -le $WORKERS ] \
    || { echo "expected 1..$WORKERS workers, got $GOT_WORKERS"; exit 1; }
grep -q "shards: $SHARDS " wall.txt || { echo "expected shards: $SHARDS"; exit 1; }
grep -q "reads: $READS" wall.txt || { echo "expected reads: $READS"; exit 1; }
grep -q "utilization" wall.txt || { echo "expected a pool utilization line"; exit 1; }
grep -q "imbalance (max/mean worker busy):" wall.txt || { echo "expected an imbalance line"; exit 1; }
# Host phases from the CLI ride along as non-worker spans.
for phase in load build seed; do
    grep -q " $phase\$" wall.txt || grep -q " $phase " wall.txt \
        || { echo "expected host phase span '$phase'"; exit 1; }
done

echo "walltrace smoke OK: $GOT_WORKERS/$WORKERS workers, $SHARDS shards, $READS reads"
