#!/usr/bin/env bash
# lint_engine_registry.sh — keep engine dispatch in the registry.
#
# The internal/engine registry is the single place that maps engine
# names to constructors and the generic batch.Seed* entry points are the
# single per-engine-free batch API. This lint fails when either property
# erodes:
#
#   1. internal/batch grows per-engine Seed wrappers again
#      (func SeedCASA / SeedERT / SeedGenAx / SeedGenCache / SeedCPU ...).
#   2. a command under cmd/ reintroduces a local engine name-switch
#      (case "casa": ... / func build(...)) instead of engine.New.
#
# Run from the repository root: scripts/lint_engine_registry.sh

set -u
cd "$(dirname "$0")/.."

fail=0

# 1. Per-engine batch wrappers. The only engine names internal/batch may
# know are the ones flowing through engine.Engine values.
if grep -nE 'func Seed(CASA|ERT|GenAx|GenCache|CPU|FM|Brute)' internal/batch/*.go; then
    echo "lint_engine_registry: internal/batch reintroduces per-engine Seed wrappers (use batch.Seed / batch.SeedEngine)" >&2
    fail=1
fi

# 2. Engine name-switches in commands. Commands select engines through
# engine.New / engine.Lookup / engine.List; a case arm on an engine name
# or a local build() dispatcher means a new engine would silently be
# missing from that command.
if grep -nE 'case "(casa|ert|genax|gencache|cpu|bwa|fmindex|fm|brute|bruteforce|golden)"' cmd/*/*.go; then
    echo "lint_engine_registry: a command dispatches on engine names (use the internal/engine registry)" >&2
    fail=1
fi
if grep -nE 'func build\(' cmd/*/*.go; then
    echo "lint_engine_registry: a command defines a local engine build() dispatcher (use engine.New)" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "lint_engine_registry: OK — engine dispatch stays in internal/engine"
fi
exit "$fail"
