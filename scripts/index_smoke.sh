#!/usr/bin/env bash
# Index-persistence smoke test: generate a multi-chromosome workload,
# then for every persisting engine build a casa-idx/v1 index with
# casa-index and require a casa-smem -index run to produce a report
# byte-identical (modulo the random run_id) to a fresh -ref rebuild over
# the same FASTA — the load path must change nothing but the build time.
# Sharded composites get the same check with explicit shard geometry
# (the index header pins it), plus a sharded-vs-unsharded parity pass:
# casa-smem -verify cross-checks per-read SMEM sets at shard counts
# 1, 2 and 5. Finally -info must read every index back and the atomic
# writer must leave no temp files behind. Run by CI's index-smoke job
# and by `make index-smoke`.
set -euo pipefail

GO=${GO:-go}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

echo "== building casa-gen, casa-index and casa-smem =="
(cd "$ROOT" && $GO build -o "$WORKDIR/" ./cmd/casa-gen ./cmd/casa-index ./cmd/casa-smem)

echo "== generating workload =="
./casa-gen -bases $((1 << 18)) -chroms 3 -reads 500 -read-len 101 -seed 11 \
    -out ref.fa -reads-out reads.fq

# The engines offering IndexPersister (Factory.NewEmpty != nil): the
# registry's other engines rebuild from FASTA by design and have no
# index file to smoke.
for ENG in casa cpu fmindex; do
    echo "== $ENG: loaded index matches FASTA rebuild =="
    ./casa-index -ref ref.fa -engine "$ENG" -out e.casaidx
    ./casa-index -info e.casaidx >info.txt
    grep -q "^casa-idx/v1 " info.txt || { cat info.txt; echo "$ENG: -info prints no container line"; exit 1; }
    grep -q "engine: $ENG\$" info.txt || { cat info.txt; echo "$ENG: -info names the wrong engine"; exit 1; }
    ./casa-smem -ref ref.fa -reads reads.fq -engine "$ENG" -max-reads 0 -quiet -json >fresh.json
    ./casa-smem -index e.casaidx -reads reads.fq -max-reads 0 -quiet -json >loaded.json
    diff <(grep -v '"run_id"' fresh.json) <(grep -v '"run_id"' loaded.json) \
        || { echo "$ENG: loaded-index report differs from FASTA rebuild"; exit 1; }
done

# Sharded composites persist one sub-index per shard; the fresh run must
# use the same geometry the index was built with (the header carries it,
# so the -index run needs no flags).
for ENG in sharded:casa sharded:cpu sharded:fmindex; do
    echo "== $ENG: loaded index matches FASTA rebuild (3 shards) =="
    ./casa-index -ref ref.fa -engine "$ENG" -shards 3 -shard-overlap 256 -out e.casaidx
    ./casa-index -info e.casaidx >info.txt
    grep -q "^casa-idx/v1 " info.txt || { cat info.txt; echo "$ENG: -info prints no container line"; exit 1; }
    grep -q "engine: $ENG\$" info.txt || { cat info.txt; echo "$ENG: -info names the wrong engine"; exit 1; }
    grep -q "shards=3 shard-overlap=256" info.txt || { cat info.txt; echo "$ENG: -info does not report the shard geometry"; exit 1; }
    ./casa-smem -ref ref.fa -reads reads.fq -engine "$ENG" -shards 3 -shard-overlap 256 \
        -max-reads 0 -quiet -json >fresh.json
    ./casa-smem -index e.casaidx -reads reads.fq -max-reads 0 -quiet -json >loaded.json
    diff <(grep -v '"run_id"' fresh.json) <(grep -v '"run_id"' loaded.json) \
        || { echo "$ENG: loaded-index report differs from FASTA rebuild"; exit 1; }
done

echo "== sharded-vs-unsharded per-read SMEM parity =="
for N in 1 2 5; do
    for INNER in casa fmindex; do
        ./casa-smem -ref ref.fa -reads reads.fq -engine "sharded:$INNER" -shards "$N" \
            -verify "$INNER" -max-reads 0 -quiet -json >parity.json \
            || { echo "sharded:$INNER at $N shards disagrees with $INNER"; exit 1; }
        grep -q '"mismatches": 0' parity.json \
            || { cat parity.json; echo "sharded:$INNER at $N shards reported mismatches"; exit 1; }
        echo "sharded:$INNER == $INNER at $N shards"
    done
done

echo "== atomic writer left no temp files =="
LEFTOVER=$(find . -name '*.tmp-*' | wc -l)
[ "$LEFTOVER" = "0" ] || { find . -name '*.tmp-*'; echo "casa-index left $LEFTOVER temp file(s)"; exit 1; }

echo "index smoke OK"
