#!/usr/bin/env bash
# Seeding-server smoke test: start a race-built casa-serve on an
# ephemeral port, POST a batch and require a casa-smem/v1 report whose
# modelled fields (reads, smems, engine, min_smem) are byte-for-byte
# those of a casa-smem -json run over the same inputs, stream a second
# batch over SSE and require per-shard progress events plus a terminal
# report event, run two POSTs concurrently, check the telemetry surface
# (/metrics histograms, run-ID-correlated access logs, /v1/stats,
# /debug/runtrace), then SIGTERM the server and require a graceful drain
# with exit 0 plus a -trace Chrome JSON dump. Run by CI's serve-smoke job
# and by `make serve-smoke`.
set -euo pipefail

GO=${GO:-go}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${SERVE_PID:-}" ] && kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
cd "$WORKDIR"

echo "== generating workload =="
(cd "$ROOT" && $GO run ./cmd/casa-gen -bases $((1 << 20)) -reads 4000 -read-len 101 -seed 7 \
    -out "$WORKDIR/ref.fa" -reads-out "$WORKDIR/reads.fq")

echo "== building casa-serve and casa-smem (-race) =="
(cd "$ROOT" && $GO build -race -o "$WORKDIR/casa-serve" ./cmd/casa-serve)
(cd "$ROOT" && $GO build -race -o "$WORKDIR/casa-smem" ./cmd/casa-smem)

echo "== offline reference run =="
./casa-smem -ref ref.fa -reads reads.fq -engine casa -max-reads 0 -quiet -json \
    >offline.json 2>offline.log
WANT_READS=$(sed -n 's/.*"reads": \([0-9]*\).*/\1/p' offline.json | head -1)
WANT_SMEMS=$(sed -n 's/.*"smems": \([0-9]*\).*/\1/p' offline.json | head -1)
[ -n "$WANT_READS" ] && [ -n "$WANT_SMEMS" ] || { cat offline.json; echo "offline run produced no report"; exit 1; }
echo "offline: $WANT_READS reads, $WANT_SMEMS SMEMs"

echo "== starting casa-serve =="
./casa-serve -ref ref.fa -engine casa -addr 127.0.0.1:0 -trace runtrace.json >serve.out 2>serve.log &
SERVE_PID=$!
ADDR=
for _ in $(seq 1 600); do
    ADDR=$(sed -n 's/.*seeding server listening.*addr=\([0-9.:]*\).*/\1/p' serve.log | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat serve.log; echo "casa-serve died before listening"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { cat serve.log; echo "no listen address in the log"; exit 1; }
echo "server at $ADDR"

echo "== POST /v1/seed matches the offline run =="
curl -sf -X POST --data-binary @reads.fq "http://$ADDR/v1/seed" >served.json
grep -q '"schema": "casa-smem/v1"' served.json || { cat served.json; echo "missing casa-smem/v1 report"; exit 1; }
GOT_READS=$(sed -n 's/.*"reads": \([0-9]*\).*/\1/p' served.json | head -1)
GOT_SMEMS=$(sed -n 's/.*"smems": \([0-9]*\).*/\1/p' served.json | head -1)
[ "$GOT_READS" = "$WANT_READS" ] || { echo "served reads $GOT_READS != offline $WANT_READS"; exit 1; }
[ "$GOT_SMEMS" = "$WANT_SMEMS" ] || { echo "served smems $GOT_SMEMS != offline $WANT_SMEMS"; exit 1; }
grep -q '"engine": "casa"' served.json || { echo "served report names the wrong engine"; exit 1; }
grep -q '"min_smem": 19' served.json || { echo "served report has the wrong min_smem"; exit 1; }
echo "served report matches: $GOT_READS reads, $GOT_SMEMS SMEMs"

echo "== multipart upload =="
curl -sf -F reads=@reads.fq "http://$ADDR/v1/seed" >multipart.json
MP_SMEMS=$(sed -n 's/.*"smems": \([0-9]*\).*/\1/p' multipart.json | head -1)
[ "$MP_SMEMS" = "$WANT_SMEMS" ] || { echo "multipart smems $MP_SMEMS != offline $WANT_SMEMS"; exit 1; }

echo "== SSE stream =="
curl -sN --max-time 60 -H 'Accept: text/event-stream' -X POST --data-binary @reads.fq \
    "http://$ADDR/v1/seed" >events.txt || true
PROGRESS=$(grep -c '^event: progress' events.txt || true)
[ "$PROGRESS" -ge 1 ] || { head -20 events.txt; echo "SSE stream delivered $PROGRESS progress events, want >= 1"; exit 1; }
grep -q '^event: report' events.txt || { tail -5 events.txt; echo "SSE stream has no terminal report event"; exit 1; }
grep -q '"schema":"casa-smem/v1"' events.txt || { tail -5 events.txt; echo "SSE report is not casa-smem/v1"; exit 1; }
echo "SSE delivered $PROGRESS progress events and a report"

echo "== two concurrent POSTs =="
curl -sf -X POST --data-binary @reads.fq "http://$ADDR/v1/seed" >conc1.json &
C1=$!
curl -sf -X POST --data-binary @reads.fq "http://$ADDR/v1/seed" >conc2.json &
C2=$!
wait "$C1" "$C2"
for f in conc1.json conc2.json; do
    S=$(sed -n 's/.*"smems": \([0-9]*\).*/\1/p' "$f" | head -1)
    [ "$S" = "$WANT_SMEMS" ] || { echo "$f smems $S != offline $WANT_SMEMS"; exit 1; }
done
RUNS=$(curl -sf "http://$ADDR/v1/runs")
echo "concurrent POSTs OK; runs inventory: $RUNS"

echo "== health and method guards =="
curl -sf "http://$ADDR/healthz" >/dev/null
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/seed")
[ "$CODE" = "405" ] || { echo "GET /v1/seed answered $CODE, want 405"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @reads.fq "http://$ADDR/v1/seed?include=bogus")
[ "$CODE" = "400" ] || { echo "POST ?include=bogus answered $CODE, want 400"; exit 1; }

echo "== lifetime metrics exposition =="
curl -sf "http://$ADDR/metrics" >metrics.txt
for m in serve_run_duration_us_count serve_queue_wait_us_count http_v1_seed_duration_us_count; do
    grep -q "^$m " metrics.txt || { grep TYPE metrics.txt; echo "/metrics lacks $m"; exit 1; }
done
grep -q '^serve_queue_depth ' metrics.txt || { echo "/metrics lacks the queue-depth gauge"; exit 1; }
grep -q '^lifetime_' metrics.txt || { echo "/metrics lacks the lifetime/ engine aggregate"; exit 1; }
RUN_COUNT=$(sed -n 's/^serve_run_duration_us_count \([0-9]*\)$/\1/p' metrics.txt)
[ "${RUN_COUNT:-0}" -ge 4 ] || { echo "run-duration histogram counts $RUN_COUNT runs, want >= 4"; exit 1; }
echo "metrics exposition carries serving + lifetime families ($RUN_COUNT runs observed)"

echo "== access log correlates run IDs =="
grep -q 'http request' serve.log || { tail serve.log; echo "no access-log records in the log"; exit 1; }
grep 'http request' serve.log | grep 'path=/v1/seed' | grep -q 'run_id=' \
    || { grep 'http request' serve.log | head -5; echo "seed access-log lines carry no run_id"; exit 1; }

echo "== GET /v1/stats =="
curl -sf "http://$ADDR/v1/stats" >stats.json
grep -q '"schema": "casa-serve-stats/v1"' stats.json || { cat stats.json; echo "stats is not casa-serve-stats/v1"; exit 1; }
COMPLETED=$(sed -n 's/.*"runs_completed": \([0-9]*\).*/\1/p' stats.json | head -1)
[ "${COMPLETED:-0}" -ge 4 ] || { cat stats.json; echo "stats counts $COMPLETED completed runs, want >= 4"; exit 1; }
grep -q '"p50_us"' stats.json || { cat stats.json; echo "stats has no latency quantiles"; exit 1; }
echo "stats: $COMPLETED completed runs"

echo "== GET /debug/runtrace =="
curl -sf "http://$ADDR/debug/runtrace" >runtrace_live.json
grep -q '"schema": "casa-walltrace/v1"' runtrace_live.json || { head runtrace_live.json; echo "runtrace is not casa-walltrace/v1"; exit 1; }
grep -q '"traceEvents"' runtrace_live.json || { echo "runtrace has no traceEvents"; exit 1; }
for track in received queued running reporting; do
    grep -q "\"$track\"" runtrace_live.json || { echo "runtrace has no $track spans"; exit 1; }
done

echo "== SIGTERM drains and exits 0 =="
kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
[ "$RC" = "0" ] || { cat serve.log; echo "casa-serve exited $RC after SIGTERM"; exit 1; }
grep -q 'drained, exiting' serve.log || { tail serve.log; echo "no drain record in the log"; exit 1; }

echo "== -trace wrote the lifecycle trace at shutdown =="
[ -s runtrace.json ] || { echo "-trace wrote no runtrace.json"; exit 1; }
grep -q '"schema": "casa-walltrace/v1"' runtrace.json || { head runtrace.json; echo "shutdown trace is not casa-walltrace/v1"; exit 1; }
grep -q '"ph": "X"' runtrace.json || { echo "shutdown trace has no complete events"; exit 1; }

echo "serve smoke OK"
