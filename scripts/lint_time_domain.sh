#!/usr/bin/env bash
# lint_time_domain.sh — keep the modelled cycle domain free of wall time.
#
# The modelled packages (the accelerator models and the seeding
# algorithms they run) express time exclusively as deterministic cycle
# counts: their numbers must be byte-identical across runs, machines and
# worker counts. A time.Now()/time.Since() call inside one of them is a
# wall-clock leak — the moment a modelled counter or trace span depends
# on host time, the determinism tests and the casa-bench -compare gate
# turn flaky. Wall-clock measurement belongs to the host layers (batch,
# serve, obshttp, the CLIs) and to internal/trace's explicit wall-span
# types.
#
# Test files are exempt: a _test.go may time itself (e.g. throughput
# floors) without the model depending on it.
#
# Run from the repository root: scripts/lint_time_domain.sh

set -u
cd "$(dirname "$0")/.."

# The modelled cycle-domain packages: accelerator hardware models (core,
# cam, dram, energy, ert, genax, gencache, cpu) and the deterministic
# seeding algorithms they execute (fmindex, smem).
PKGS="core cam dram energy ert genax gencache cpu fmindex smem"

fail=0
for p in $PKGS; do
    # shellcheck disable=SC2086
    hits=$(grep -rn 'time\.Now\(\)\|time\.Since(' "internal/$p" --include='*.go' 2>/dev/null | grep -v '_test\.go:') || true
    if [ -n "$hits" ]; then
        echo "$hits"
        echo "lint_time_domain: internal/$p is cycle-domain but reads the wall clock (model time must be deterministic cycles; wall time lives in the host layers)" >&2
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "lint_time_domain: OK — modelled packages stay on deterministic cycle time"
fi
exit "$fail"
