#!/usr/bin/env bash
# Live-telemetry smoke test: start casa-smem -http on a workload large
# enough to observe mid-run state, assert /progress reports a strictly
# partial snapshot while the run is in flight, assert /events streams at
# least two events, then interrupt the run and require a clean exit with
# partial telemetry. Run by CI's live-smoke job (with -race) and by
# `make live-smoke`.
set -euo pipefail

GO=${GO:-go}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${SMEM_PID:-}" ] && kill -9 "$SMEM_PID" 2>/dev/null || true' EXIT
cd "$WORKDIR"

echo "== generating workload =="
(cd "$ROOT" && $GO run ./cmd/casa-gen -bases $((4 << 20)) -reads 40000 -read-len 101 -seed 7 \
    -out "$WORKDIR/ref.fa" -reads-out "$WORKDIR/reads.fq")

echo "== building casa-smem (-race) =="
(cd "$ROOT" && $GO build -race -o "$WORKDIR/casa-smem" ./cmd/casa-smem)

echo "== starting the run =="
./casa-smem -ref ref.fa -reads reads.fq -engine casa -max-reads 0 -quiet -json \
    -http 127.0.0.1:0 -progress 2s -stall-timeout 2m \
    >report.json 2>run.log &
SMEM_PID=$!

# The listen address (port 0 = ephemeral) appears in the structured log.
ADDR=
for _ in $(seq 1 600); do
    ADDR=$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' run.log | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$SMEM_PID" 2>/dev/null || { cat run.log; echo "casa-smem died before listening"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { cat run.log; echo "no listen address in the log"; exit 1; }
echo "server at $ADDR"

echo "== polling /progress for a mid-run snapshot =="
# Require 0 < reads_done < total_reads at least once while the run is live.
MIDRUN=
for _ in $(seq 1 600); do
    SNAP=$(curl -sf "http://$ADDR/progress" || true)
    [ -n "$SNAP" ] || { sleep 0.1; continue; }
    READS_DONE=$(printf '%s' "$SNAP" | sed -n 's/.*"reads_done": \([0-9]*\).*/\1/p')
    TOTAL=$(printf '%s' "$SNAP" | sed -n 's/.*"total_reads": \([0-9]*\).*/\1/p')
    DONE=$(printf '%s' "$SNAP" | sed -n 's/.*"done": \(true\|false\).*/\1/p')
    if [ "$DONE" = "false" ] && [ "${READS_DONE:-0}" -gt 0 ] && [ "$READS_DONE" -lt "${TOTAL:-0}" ]; then
        MIDRUN="$READS_DONE/$TOTAL"
        break
    fi
    [ "$DONE" = "true" ] && break
    sleep 0.05
done
[ -n "$MIDRUN" ] || { cat run.log; echo "never observed a mid-run /progress snapshot (0 < reads_done < total)"; exit 1; }
echo "mid-run snapshot: $MIDRUN reads"

echo "== checking /events streams =="
curl -sN --max-time 10 "http://$ADDR/events" >events.txt || true
EVENTS=$(grep -c '^event: ' events.txt || true)
[ "$EVENTS" -ge 2 ] || { cat events.txt; echo "SSE stream delivered $EVENTS events, want >= 2"; exit 1; }
grep -q '^data: {"schema":"casa-progress/v1"' events.txt || { head events.txt; echo "SSE data is not casa-progress/v1"; exit 1; }
echo "SSE delivered $EVENTS events"

echo "== interrupting the run =="
kill -INT "$SMEM_PID"
RC=0
wait "$SMEM_PID" || RC=$?
# 130: interrupted mid-run or while serving post-run; 0: the run and
# server wound down before the signal landed. Anything else is a bug.
case "$RC" in
  0|130) echo "exit status $RC" ;;
  *) cat run.log; echo "casa-smem exited $RC after SIGINT"; exit 1 ;;
esac

echo "== checking the report =="
grep -q '"schema": "casa-smem/v1"' report.json || { cat report.json; echo "missing casa-smem/v1 report"; exit 1; }
grep -q '"reads": 0' report.json && { cat report.json; echo "report shows zero completed reads"; exit 1; }
grep -q 'progress' run.log || { cat run.log; echo "no progress ticker records in the log"; exit 1; }

echo "live smoke OK"
