// Package casa is the public API of the CASA reproduction: a CAM-based
// SMEM seeding accelerator for genome alignment (Huang et al., MICRO
// 2023), implemented as a behavioural + cycle-approximate architectural
// simulator in pure Go, together with the baselines it is evaluated
// against (BWA-MEM2 software seeding, the ERT accelerator, GenAx) and the
// SeedEx extension stage for end-to-end alignment.
//
// Quick start:
//
//	ref := casa.GenerateReference(casa.DefaultGenome(1<<20, 1))
//	reads := casa.Sequences(casa.Simulate(ref, casa.DefaultProfile(1000, 2)))
//	acc, err := casa.New(ref, casa.DefaultConfig())
//	...
//	res := acc.SeedReads(reads)
//	fmt.Println(res.Throughput(), res.Reads[0].Forward)
//
// The exported names are aliases into the implementation packages so that
// the whole system remains usable through this single import; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package casa

import (
	"context"

	"casa/internal/align"
	"casa/internal/batch"
	"casa/internal/chain"
	"casa/internal/core"
	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/gencache"
	"casa/internal/metrics"
	"casa/internal/pairing"
	"casa/internal/pipeline"
	"casa/internal/progress"
	"casa/internal/readsim"
	"casa/internal/seedex"
	"casa/internal/smem"
	"casa/internal/trace"
	"casa/internal/vcall"
)

// DNA primitives.
type (
	// Base is a 2-bit nucleotide (A=0, C=1, G=2, T=3).
	Base = dna.Base
	// Sequence is an unpacked DNA sequence.
	Sequence = dna.Sequence
)

// FromString parses an ASCII DNA string (ambiguous bases replaced
// deterministically).
func FromString(s string) Sequence { return dna.FromString(s) }

// SMEM model.
type (
	// Match is an exact match interval on a read with its hit count.
	Match = smem.Match
	// Finder computes SMEMs of reads against a fixed reference.
	Finder = smem.Finder
)

// NewBruteForceFinder returns the definition-based golden SMEM finder.
func NewBruteForceFinder(ref Sequence) Finder { return smem.BruteForce{Ref: ref} }

// NewFMIndexFinder returns the BWA-MEM2-style bidirectional SMEM finder.
func NewFMIndexFinder(ref Sequence) Finder { return smem.NewBidirectional(ref) }

// CASA accelerator (the paper's contribution).
type (
	// Config holds CASA's architectural parameters.
	Config = core.Config
	// Accelerator is a full CASA instance over a partitioned reference.
	Accelerator = core.Accelerator
	// Result is the outcome of a seeding run (SMEMs, time, power).
	Result = core.Result
	// ReadResult is the per-read SMEM output (both strands).
	ReadResult = core.ReadResult
	// Stats is the per-partition activity breakdown.
	Stats = core.PartStats
)

// DefaultConfig returns the paper's CASA configuration (k=19, m=10,
// 40-base CAM entries, 20 groups, 10 computing CAMs, 55 MB on-chip).
func DefaultConfig() Config { return core.DefaultConfig() }

// New builds a CASA accelerator over ref.
func New(ref Sequence, cfg Config) (*Accelerator, error) { return core.New(ref, cfg) }

// Batch seeding: shard a read batch across a pool of worker-owned engine
// clones. Every engine shares its immutable index structures between
// clones and keeps activity counters per instance, so batch runs need no
// locking and reduce to results bit-identical to a sequential SeedReads
// call — parallelism changes host wall-clock, never the modelled
// hardware (see docs/MODEL.md, "Concurrency contract").
type (
	// BatchOptions configures the batch worker pool (worker count, shard
	// grain). The zero value uses one worker per host CPU.
	BatchOptions = batch.Options
	// SeedingEngine is the uniform engine interface every seeding model
	// implements (Clone-per-worker, deterministic Reduce); see
	// internal/engine and DESIGN.md, "Engine registry".
	SeedingEngine = engine.Engine
	// EngineOptions is the engine-agnostic construction knob set
	// understood by every registered factory.
	EngineOptions = engine.Options
	// EngineResult is the opaque outcome of a RunEngine call; pass it
	// back to the engine's SMEMs (or assert its concrete type).
	EngineResult = engine.Result
	// EngineFactory describes one registered engine (name, aliases,
	// description, constructor).
	EngineFactory = engine.Factory
)

// DefaultBatchOptions returns the default pool configuration: one worker
// per CPU, automatic shard grain.
func DefaultBatchOptions() BatchOptions { return batch.DefaultOptions() }

// NewEngine constructs a registered engine ("casa", "ert", "genax",
// "gencache", "cpu", "fmindex", "brute" or any alias) over ref.
func NewEngine(name string, ref Sequence, opt EngineOptions) (SeedingEngine, error) {
	return engine.New(name, ref, opt)
}

// ListEngines returns every registered engine factory in registration
// order.
func ListEngines() []EngineFactory { return engine.List() }

// CASAEngine wraps an already-built CASA accelerator as a SeedingEngine
// (e.g. one loaded from a prebuilt index).
func CASAEngine(acc *Accelerator) SeedingEngine { return engine.CASA(acc) }

// RunEngine seeds reads on a worker pool of clones of e and returns a
// result bit-identical to a sequential run at any worker count.
func RunEngine(e SeedingEngine, reads []Sequence, o BatchOptions) EngineResult {
	return batch.SeedEngine(e, reads, o)
}

// RunEngineCtx is RunEngine with cooperative cancellation: when ctx is
// cancelled mid-run the pool stops handing out new shards, drains the
// in-flight ones, and returns the result of the completed contiguous
// read prefix (its length is the second return value) together with
// ctx.Err(). Metrics, trace spans and progress cells stay consistent
// with that prefix.
func RunEngineCtx(ctx context.Context, e SeedingEngine, reads []Sequence, o BatchOptions) (EngineResult, int, error) {
	return batch.SeedEngineCtx(ctx, e, reads, o)
}

// RunBatch seeds reads on a worker pool of CASA accelerator clones and
// returns a Result bit-identical to acc.SeedReads(reads).
//
// Deprecated: use RunEngine with CASAEngine(acc) or NewEngine("casa", ...).
func RunBatch(acc *Accelerator, reads []Sequence, o BatchOptions) *Result {
	return batch.Seed[*core.Result](engine.CASA(acc), reads, o)
}

// RunBatchCtx is RunBatch with cooperative cancellation.
//
// Deprecated: use RunEngineCtx with CASAEngine(acc).
func RunBatchCtx(ctx context.Context, acc *Accelerator, reads []Sequence, o BatchOptions) (*Result, int, error) {
	return batch.SeedCtx[*core.Result](ctx, engine.CASA(acc), reads, o)
}

// RunBatchERT is RunBatch for the ASIC-ERT baseline.
//
// Deprecated: use RunEngine with NewEngine("ert", ...).
func RunBatchERT(acc *ERTAccelerator, reads []Sequence, o BatchOptions) *ert.Result {
	return batch.Seed[*ert.Result](engine.ERT(acc), reads, o)
}

// RunBatchGenAx is RunBatch for the GenAx baseline.
//
// Deprecated: use RunEngine with NewEngine("genax", ...).
func RunBatchGenAx(acc *GenAxAccelerator, reads []Sequence, o BatchOptions) *genax.Result {
	return batch.Seed[*genax.Result](engine.GenAx(acc), reads, o)
}

// RunBatchCPU is RunBatch for the software BWA-MEM2 baseline.
//
// Deprecated: use RunEngine with NewEngine("cpu", ...).
func RunBatchCPU(s *CPUSeeder, reads []Sequence, o BatchOptions) *cpu.Result {
	return batch.Seed[*cpu.Result](engine.CPU(s), reads, o)
}

// RunBatchGenCache is RunBatch for the GenCache baseline. The
// order-sensitive cache model is replayed from recorded per-shard fetch
// streams during reduction, so results stay bit-identical to a
// sequential SeedReads at any worker count.
//
// Deprecated: use RunEngine with NewEngine("gencache", ...).
func RunBatchGenCache(acc *GenCacheAccelerator, reads []Sequence, o BatchOptions) *gencache.Result {
	return batch.Seed[*gencache.Result](engine.GenCache(acc), reads, o)
}

// Observability: engines publish activity counters and model gauges into
// a MetricsRegistry under names of the form engine/stage/counter; see
// docs/OBSERVABILITY.md. Set BatchOptions.Metrics to collect a batch
// run's metrics — the merged registry is byte-identical for any worker
// count.
type (
	// MetricsRegistry is an in-process counter/gauge/histogram registry.
	MetricsRegistry = metrics.Registry
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// Live progress: a run with BatchOptions.Progress set updates lock-free
// per-worker cells as shards drain; Snapshot aggregates them on demand
// into a casa-progress/v1 document (reads done, throughput, ETA); see
// docs/OBSERVABILITY.md, "Live telemetry".
type (
	// ProgressTracker holds a run's live per-worker progress cells.
	ProgressTracker = progress.Tracker
	// ProgressSnapshot is one aggregated casa-progress/v1 snapshot.
	ProgressSnapshot = progress.Snapshot
)

// NewProgressTracker returns a tracker for a run of workers workers over
// totalReads reads (0 = unknown; grow it later with AddTotal).
func NewProgressTracker(runID, engine string, workers int, totalReads int64) *ProgressTracker {
	return progress.New(runID, engine, workers, totalReads)
}

// NewRunID returns a fresh 16-hex-character run identifier.
func NewRunID() string { return progress.NewRunID() }

// Tracing: engines emit per-read, per-stage spans in the modelled cycle
// domain into a Trace session; see docs/OBSERVABILITY.md. Set
// BatchOptions.Trace to record a batch run — the merged span stream is
// byte-identical for any worker count.
type (
	// Trace is a cycle-domain span recording session.
	Trace = trace.Trace
	// TraceSpan is one recorded cycle-domain event.
	TraceSpan = trace.Span
	// TracePolicy selects which reads a Trace keeps (all, head:N,
	// slowest:N).
	TracePolicy = trace.Policy
)

// NewTrace returns a trace session with the given sampling policy and
// ring capacity in spans (<= 0 picks the default).
func NewTrace(policy TracePolicy, capacity int) *Trace { return trace.New(policy, capacity) }

// ParseTracePolicy parses "all", "head:N" or "slowest:N".
func ParseTracePolicy(s string) (TracePolicy, error) { return trace.ParsePolicy(s) }

// WriteTraceFile writes a merged span stream (Trace.Spans) to path:
// Chrome trace_event JSON (Perfetto-loadable), or JSONL when the path
// ends in .jsonl.
func WriteTraceFile(path string, spans []TraceSpan) error { return trace.WriteFile(path, spans) }

// FindSMEMsBatch runs any Finder over a read batch on the worker pool,
// returning per-read SMEM sets in input order. newFinder must return an
// independent finder per worker (e.g. a Clone sharing the index).
func FindSMEMsBatch(reads []Sequence, minLen int, o BatchOptions, newFinder func(worker int) Finder) [][]Match {
	return batch.FindSMEMs(reads, minLen, o, newFinder)
}

// Baselines.
type (
	// ERTConfig configures the ERT baseline accelerator.
	ERTConfig = ert.AccelConfig
	// ERTAccelerator is the Enumerated-Radix-Trees baseline.
	ERTAccelerator = ert.Accelerator
	// GenAxConfig configures the GenAx baseline.
	GenAxConfig = genax.Config
	// GenAxAccelerator is the seed & position table baseline.
	GenAxAccelerator = genax.Accelerator
	// CPUConfig configures the software BWA-MEM2 baseline model.
	CPUConfig = cpu.Config
	// CPUSeeder is the software baseline.
	CPUSeeder = cpu.Seeder
)

// DefaultERTConfig returns the paper's ASIC-ERT evaluation setup.
func DefaultERTConfig() ERTConfig { return ert.DefaultAccelConfig() }

// NewERT builds the ERT baseline over ref.
func NewERT(ref Sequence, cfg ERTConfig) (*ERTAccelerator, error) {
	return ert.NewAccelerator(ref, cfg)
}

// DefaultGenAxConfig returns the paper's GenAx evaluation setup.
func DefaultGenAxConfig() GenAxConfig { return genax.DefaultConfig() }

// NewGenAx builds the GenAx baseline over ref.
func NewGenAx(ref Sequence, cfg GenAxConfig) (*GenAxAccelerator, error) {
	return genax.New(ref, cfg)
}

// GenCache baseline (GenAx + fast-seeding bypass + cached tables).
type (
	// GenCacheConfig configures the GenCache baseline.
	GenCacheConfig = gencache.Config
	// GenCacheAccelerator is the GenCache model.
	GenCacheAccelerator = gencache.Accelerator
)

// DefaultGenCacheConfig returns the GenCache setup at the paper's scale.
func DefaultGenCacheConfig() GenCacheConfig { return gencache.DefaultConfig() }

// NewGenCache builds the GenCache baseline over ref.
func NewGenCache(ref Sequence, cfg GenCacheConfig) (*GenCacheAccelerator, error) {
	return gencache.New(ref, cfg)
}

// B12T and B32T return the two CPU platforms of Table 2.
func B12T() CPUConfig { return cpu.B12T() }

// B32T returns the 32-thread Xeon configuration.
func B32T() CPUConfig { return cpu.B32T() }

// NewCPUSeeder builds the software baseline over ref.
func NewCPUSeeder(ref Sequence, cfg CPUConfig) (*CPUSeeder, error) { return cpu.New(ref, cfg) }

// Seed extension and end-to-end pipeline.
type (
	// SeedExConfig configures the SeedEx machines.
	SeedExConfig = seedex.Config
	// SeedExMachine extends seeds with banded SW + edit machines.
	SeedExMachine = seedex.Machine
	// Seed is one positioned extension candidate.
	Seed = seedex.Seed
	// Alignment is a chosen read alignment.
	Alignment = seedex.Alignment
	// Cigar is a run-length encoded alignment description.
	Cigar = align.Cigar
	// PipelineConfig configures the end-to-end cost model.
	PipelineConfig = pipeline.Config
	// PipelineEngines bundles all engines for an end-to-end run.
	PipelineEngines = pipeline.Engines
	// Breakdown is one system's stacked end-to-end running time.
	Breakdown = pipeline.Breakdown
)

// DefaultSeedExConfig returns the paper's 5-machine SeedEx arrangement.
func DefaultSeedExConfig() SeedExConfig { return seedex.DefaultConfig() }

// NewSeedEx builds the SeedEx machine array over ref.
func NewSeedEx(ref Sequence, cfg SeedExConfig) (*SeedExMachine, error) {
	return seedex.New(ref, cfg)
}

// DefaultPipelineConfig returns the end-to-end model defaults.
func DefaultPipelineConfig() PipelineConfig { return pipeline.DefaultConfig() }

// BuildPipeline constructs every engine over one reference for an
// end-to-end comparison (Fig 14).
func BuildPipeline(ref Sequence, casaCfg Config, ertCfg ERTConfig, genaxCfg GenAxConfig,
	cpuCfg CPUConfig, sxCfg SeedExConfig) (*PipelineEngines, error) {
	return pipeline.BuildEngines(ref, casaCfg, ertCfg, genaxCfg, cpuCfg, sxCfg)
}

// RunPipeline executes the end-to-end comparison on a read batch.
func RunPipeline(e *PipelineEngines, reads []Sequence, cfg PipelineConfig) (*pipeline.Result, error) {
	return pipeline.Run(e, reads, cfg)
}

// RunPipelineTrace is RunPipeline with each system's stage waterfall
// (the paper's Fig 14 timelines) recorded into tr as system spans, in
// modelled-wall nanoseconds.
func RunPipelineTrace(e *PipelineEngines, reads []Sequence, cfg PipelineConfig, tr *Trace) (*pipeline.Result, error) {
	return pipeline.RunTrace(e, reads, cfg, tr)
}

// Seed chaining (long-read anchoring, extension preprocessing).
type (
	// Anchor is one exact match for chaining.
	Anchor = chain.Anchor
	// ChainOptions tunes the collinear chaining DP.
	ChainOptions = chain.Options
	// Chain is a scored collinear anchor chain.
	Chain = chain.Chain
)

// DefaultChainOptions returns chaining parameters for short and long reads.
func DefaultChainOptions() ChainOptions { return chain.DefaultOptions() }

// BestChain returns the maximum-scoring collinear chain over the anchors.
func BestChain(anchors []Anchor, opt ChainOptions) (Chain, error) {
	return chain.Best(anchors, opt)
}

// Paired-end resolution.
type (
	// Mate is one end's placement for pairing decisions.
	Mate = pairing.Mate
	// PairingOptions configures proper-pair classification and rescue.
	PairingOptions = pairing.Options
)

// DefaultPairingOptions matches common Illumina libraries.
func DefaultPairingOptions() PairingOptions { return pairing.DefaultOptions() }

// ProperPair reports FR-orientation propriety and the template length.
func ProperPair(a, b Mate, opt PairingOptions) (bool, int) { return pairing.Proper(a, b, opt) }

// RescueMate places an unaligned mate using its partner's position.
func RescueMate(ref Sequence, mateSeq Sequence, partner Mate, opt PairingOptions) (Mate, bool) {
	return pairing.Rescue(ref, mateSeq, partner, opt)
}

// Workload generation.
type (
	// GenomeConfig controls synthetic reference generation.
	GenomeConfig = readsim.GenomeConfig
	// ReadProfile controls the DWGSIM-like read simulator.
	ReadProfile = readsim.ReadProfile
	// Read is one simulated read with ground truth.
	Read = readsim.Read
	// PairProfile controls paired-end simulation.
	PairProfile = readsim.PairProfile
	// ReadPair is one simulated fragment's two mates.
	ReadPair = readsim.ReadPair
)

// DefaultGenome returns a mammalian-like genome configuration.
func DefaultGenome(length int, seed int64) GenomeConfig { return readsim.DefaultGenome(length, seed) }

// GenerateReference builds a synthetic genome.
func GenerateReference(cfg GenomeConfig) Sequence { return readsim.GenerateReference(cfg) }

// DefaultProfile returns the paper-like read profile (101 bp, ~80% exact).
func DefaultProfile(count int, seed int64) ReadProfile { return readsim.DefaultProfile(count, seed) }

// Simulate samples reads from ref.
func Simulate(ref Sequence, p ReadProfile) []Read { return readsim.Simulate(ref, p) }

// DefaultPairProfile returns an Illumina-like paired-end profile.
func DefaultPairProfile(count int, seed int64) PairProfile {
	return readsim.DefaultPairProfile(count, seed)
}

// SimulatePairs samples read pairs from ref.
func SimulatePairs(ref Sequence, p PairProfile) []ReadPair { return readsim.SimulatePairs(ref, p) }

// Sequences extracts the base sequences of simulated reads.
func Sequences(reads []Read) []Sequence { return readsim.Sequences(reads) }

// Variant calling (the pipeline endpoint the paper's §1 motivates).
type (
	// Variant is one planted or called SNP.
	Variant = readsim.Variant
	// Pileup accumulates per-position allele counts from alignments.
	Pileup = vcall.Pileup
	// CallConfig sets the SNP-calling thresholds.
	CallConfig = vcall.Config
	// VariantCall is one emitted SNP call.
	VariantCall = vcall.Call
)

// Donor derives a donor genome from ref with planted SNPs (the truth set
// a caller should recover).
func Donor(ref Sequence, rate float64, seed int64) (Sequence, []Variant) {
	return readsim.Donor(ref, rate, seed)
}

// NewPileup creates an empty pileup over ref.
func NewPileup(ref Sequence) *Pileup { return vcall.NewPileup(ref) }

// DefaultCallConfig returns calling thresholds for ~20-40x coverage.
func DefaultCallConfig() CallConfig { return vcall.DefaultConfig() }
