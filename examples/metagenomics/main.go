// Metagenomics: the paper's §9 notes that CASA's large-k filtering
// "broadens its applicability to ... metagenomics classification". This
// example builds a Centrifuge-style classifier from the public API: one
// CASA accelerator per species genome, a mixed read pool sampled from all
// of them, and classification by total SMEM evidence (sum of SMEM lengths
// on the best strand) per species.
package main

import (
	"fmt"
	"log"

	"casa"
)

const (
	species   = 3
	genomeLen = 256 << 10
	readsPer  = 40
)

func main() {
	// Three synthetic species (different seeds = unrelated genomes).
	names := []string{"alpha", "beta", "gamma"}
	genomes := make([]casa.Sequence, species)
	accs := make([]*casa.Accelerator, species)
	cfg := casa.DefaultConfig()
	cfg.PartitionBases = 64 << 10
	for i := range genomes {
		genomes[i] = casa.GenerateReference(casa.DefaultGenome(genomeLen, int64(100+i)))
		acc, err := casa.New(genomes[i], cfg)
		if err != nil {
			log.Fatal(err)
		}
		accs[i] = acc
	}

	// A mixed pool: reads sampled from each species with realistic errors.
	type labelled struct {
		seq   casa.Sequence
		truth int
	}
	var pool []labelled
	for i, g := range genomes {
		for _, r := range casa.Simulate(g, casa.DefaultProfile(readsPer, int64(200+i))) {
			pool = append(pool, labelled{r.Seq, i})
		}
	}

	// Classify each read: seed it against every species and score by the
	// strongest strand's total SMEM coverage.
	correct, ambiguous := 0, 0
	confusion := [species][species]int{}
	for _, read := range pool {
		bestSpecies, bestScore, secondScore := -1, 0, 0
		for i, acc := range accs {
			res := acc.SeedReads([]casa.Sequence{read.seq})
			score := max(coverage(res.Reads[0].Forward), coverage(res.Reads[0].Reverse))
			switch {
			case score > bestScore:
				secondScore = bestScore
				bestScore, bestSpecies = score, i
			case score > secondScore:
				secondScore = score
			}
		}
		if bestSpecies < 0 || bestScore == secondScore {
			ambiguous++
			continue
		}
		confusion[read.truth][bestSpecies]++
		if bestSpecies == read.truth {
			correct++
		}
	}

	fmt.Printf("classified %d reads from %d species\n\n", len(pool), species)
	fmt.Printf("%-8s", "truth\\as")
	for _, n := range names {
		fmt.Printf("%8s", n)
	}
	fmt.Println()
	for i, n := range names {
		fmt.Printf("%-8s", n)
		for j := range names {
			fmt.Printf("%8d", confusion[i][j])
		}
		fmt.Println()
	}
	fmt.Printf("\naccuracy: %.1f%% (%d/%d), %d ambiguous\n",
		100*float64(correct)/float64(len(pool)), correct, len(pool), ambiguous)
	if correct < len(pool)*9/10 {
		log.Fatal("classification accuracy unexpectedly low")
	}
}

// coverage scores one strand's SMEM evidence: the sum of SMEM lengths.
func coverage(smems []casa.Match) int {
	total := 0
	for _, m := range smems {
		total += m.Len()
	}
	return total
}
