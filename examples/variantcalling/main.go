// Variantcalling: the genome-analysis pipeline the paper's introduction
// motivates, end to end — plant SNPs into a donor genome, sequence it,
// align the reads with CASA seeding + SeedEx extension, pile up the
// alignments, call variants, and score the calls against the planted
// truth set.
package main

import (
	"fmt"
	"log"

	"casa"
)

func main() {
	// Reference and a donor carrying ~1 SNP per kilobase.
	ref := casa.GenerateReference(casa.DefaultGenome(128<<10, 51))
	donor, truth := casa.Donor(ref, 0.001, 53)
	fmt.Printf("reference: %d bases; donor carries %d SNPs\n", len(ref), len(truth))

	cfg := casa.DefaultConfig()
	cfg.PartitionBases = 32 << 10
	acc, err := casa.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sx, err := casa.NewSeedEx(ref, casa.DefaultSeedExConfig())
	if err != nil {
		log.Fatal(err)
	}

	// ~30x coverage with a light sequencing-error rate.
	profile := casa.ReadProfile{Length: 101, Count: len(ref) * 30 / 101, Seed: 55, ErrRate: 0.002, RevComp: true}
	reads := casa.Simulate(donor, profile)
	fmt.Printf("sequenced %d reads (~30x)\n", len(reads))

	res := acc.SeedReads(casa.Sequences(reads))
	pile := casa.NewPileup(ref)
	aligned := 0
	for i, r := range reads {
		al, rev, ok := bestStrand(acc, sx, r.Seq, res.Reads[i])
		if !ok {
			continue
		}
		aligned++
		oriented := r.Seq
		if rev {
			oriented = r.Seq.ReverseComplement()
		}
		if err := pile.Add(al.RefStart, al.Cigar, oriented, rev); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("aligned %d/%d reads\n", aligned, len(reads))

	calls, err := pile.Call(casa.DefaultCallConfig())
	if err != nil {
		log.Fatal(err)
	}
	truthSet := map[int]casa.Base{}
	for _, v := range truth {
		truthSet[v.Pos] = v.Alt
	}
	tp, fp := 0, 0
	for _, c := range calls {
		if alt, ok := truthSet[c.Pos]; ok && alt == c.Alt {
			tp++
		} else {
			fp++
			fmt.Printf("  false positive at %d: %s>%s (depth %d, alt %d)\n",
				c.Pos, c.Ref, c.Alt, c.Depth, c.AltDepth)
		}
	}
	fmt.Printf("\ncalled %d variants: %d true, %d false\n", len(calls), tp, fp)
	fmt.Printf("recall %.1f%%  precision %.1f%%\n",
		100*float64(tp)/float64(len(truth)), 100*float64(tp)/float64(maxInt(tp+fp, 1)))
	if tp*10 < len(truth)*8 {
		log.Fatal("recall unexpectedly low")
	}
}

// bestStrand extends both strands and returns the winner.
func bestStrand(acc *casa.Accelerator, sx *casa.SeedExMachine, read casa.Sequence, rr casa.ReadResult) (casa.Alignment, bool, bool) {
	collect := func(strand casa.Sequence, smems []casa.Match) (casa.Alignment, bool) {
		var seeds []casa.Seed
		for _, m := range smems {
			for _, pos := range acc.HitPositions(strand, m, 4) {
				seeds = append(seeds, casa.Seed{QStart: m.Start, QEnd: m.End, RefPos: pos})
			}
		}
		return sx.ExtendRead(strand, seeds)
	}
	var best casa.Alignment
	rev, found := false, false
	if al, ok := collect(read, rr.Forward); ok {
		best, found = al, true
	}
	rc := read.ReverseComplement()
	if al, ok := collect(rc, rr.Reverse); ok && (!found || al.Score > best.Score) {
		best, rev, found = al, true, true
	}
	return best, rev, found
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
