// Alignment: the full seed-and-extend flow of §5 — CASA seeds reads, the
// hit positions feed 5 SeedEx machines (banded Smith-Waterman cores plus
// Myers edit machines), and the best alignment per read is printed in a
// SAM-like form with its CIGAR, score, and edit distance. Ground truth
// from the read simulator verifies the placements.
package main

import (
	"fmt"
	"log"

	"casa"
)

func main() {
	ref := casa.GenerateReference(casa.DefaultGenome(512<<10, 9))
	sim := casa.Simulate(ref, casa.DefaultProfile(30, 11))
	reads := casa.Sequences(sim)

	casaCfg := casa.DefaultConfig()
	casaCfg.PartitionBases = 128 << 10
	acc, err := casa.New(ref, casaCfg)
	if err != nil {
		log.Fatal(err)
	}
	sx, err := casa.NewSeedEx(ref, casa.DefaultSeedExConfig())
	if err != nil {
		log.Fatal(err)
	}

	res := acc.SeedReads(reads)
	correct, aligned := 0, 0
	fmt.Println("read\tstrand\tpos\tscore\tedit\tcigar\ttruth")
	for i, read := range reads {
		al, strand, ok := extendBest(acc, sx, read, res.Reads[i])
		if !ok {
			fmt.Printf("%s\t-\tunaligned\n", sim[i].Name)
			continue
		}
		aligned++
		status := "ok"
		if al.RefStart != sim[i].Origin && al.EditDist > 0 {
			status = fmt.Sprintf("off-target (origin %d)", sim[i].Origin)
		} else {
			correct++
		}
		fmt.Printf("%s\t%s\t%d\t%d\t%d\t%s\t%s\n",
			sim[i].Name, strand, al.RefStart, al.Score, al.EditDist, al.Cigar, status)
	}
	fmt.Printf("\naligned %d/%d reads, %d placed at their simulated origin or an exact copy\n",
		aligned, len(reads), correct)
}

// extendBest resolves seed positions for both strands and keeps the
// higher-scoring alignment.
func extendBest(acc *casa.Accelerator, sx *casa.SeedExMachine, read casa.Sequence, rr casa.ReadResult) (casa.Alignment, string, bool) {
	toSeeds := func(strandRead casa.Sequence, smems []casa.Match) []casa.Seed {
		var seeds []casa.Seed
		for _, m := range smems {
			for _, pos := range acc.HitPositions(strandRead, m, 4) {
				seeds = append(seeds, casa.Seed{QStart: m.Start, QEnd: m.End, RefPos: pos})
			}
		}
		return seeds
	}
	var best casa.Alignment
	strand, found := "", false
	if al, ok := sx.ExtendRead(read, toSeeds(read, rr.Forward)); ok {
		best, strand, found = al, "+", true
	}
	rc := read.ReverseComplement()
	if al, ok := sx.ExtendRead(rc, toSeeds(rc, rr.Reverse)); ok && (!found || al.Score > best.Score) {
		best, strand, found = al, "-", true
	}
	return best, strand, found
}
