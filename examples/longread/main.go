// Longread: §9's other extension claim — SMEM seeding with k=19 for
// long-read workloads. This example seeds noisy multi-kilobase reads
// (ONT/PacBio-like error rates are far higher than Illumina's, so SMEMs
// fragment into many shorter anchors), then chains the anchors per
// diagonal to recover each read's placement, the anchor-chaining core of
// long-read aligners like minimap2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"casa"
)

func main() {
	ref := casa.GenerateReference(casa.DefaultGenome(512<<10, 77))
	cfg := casa.DefaultConfig()
	cfg.PartitionBases = 128 << 10
	acc, err := casa.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Long reads: 2-5 kb with ~4% substitution errors (long-read regime;
	// indels omitted so ground truth stays a fixed window).
	rng := rand.New(rand.NewSource(42))
	const nReads = 15
	type longRead struct {
		seq    casa.Sequence
		origin int
	}
	var reads []longRead
	for i := 0; i < nReads; i++ {
		length := 2000 + rng.Intn(3000)
		origin := rng.Intn(len(ref) - length)
		seq := append(casa.Sequence(nil), ref[origin:origin+length]...)
		for j := range seq {
			if rng.Float64() < 0.04 {
				seq[j] = casa.Base(rng.Intn(4))
			}
		}
		reads = append(reads, longRead{seq, origin})
	}

	fmt.Printf("%-6s %-8s %-8s %-7s %-9s %-9s %-s\n",
		"read", "length", "anchors", "chain", "score", "placed", "truth")
	correct := 0
	for i, lr := range reads {
		res := acc.SeedReads([]casa.Sequence{lr.seq})
		smems := res.Reads[0].Forward

		// Turn SMEM hits into chaining anchors and run the collinear
		// chaining DP (the minimap2-style step long-read aligners use).
		var anchors []casa.Anchor
		for _, m := range smems {
			for _, pos := range acc.HitPositions(lr.seq, m, 8) {
				anchors = append(anchors, casa.Anchor{
					Q: int32(m.Start), R: pos, Len: int32(m.Len()),
				})
			}
		}
		ch, err := casa.BestChain(anchors, casa.DefaultChainOptions())
		if err != nil {
			log.Fatal(err)
		}
		placed := -1
		if len(ch.Anchors) > 0 {
			placed = int(ch.Anchors[0].R) - int(ch.Anchors[0].Q)
		}
		status := "ok"
		if placed != lr.origin {
			status = "off"
		} else {
			correct++
		}
		fmt.Printf("%-6d %-8d %-8d %-7d %-9d %-9d %d (%s)\n",
			i, len(lr.seq), len(anchors), len(ch.Anchors), ch.Score, placed, lr.origin, status)
	}
	fmt.Printf("\n%d/%d long reads placed at their true origin by anchor chaining\n", correct, nReads)
	if correct < nReads*8/10 {
		log.Fatal("long-read placement unexpectedly poor")
	}
}
