// Ablation: reproduce the spirit of Fig 15 interactively — run the same
// workload through the naive design, the pre-seeding filter table alone,
// and the full filter-enabled algorithm (table + CRkM/alignment analyses),
// and show how many pivots each one sends into SMEM computation, alongside
// the modelled throughput and energy impact of the CAM gating levels.
package main

import (
	"fmt"
	"log"

	"casa"
)

func main() {
	ref := casa.GenerateReference(casa.DefaultGenome(512<<10, 21))
	reads := casa.Sequences(casa.Simulate(ref, casa.DefaultProfile(200, 23)))

	base := casa.DefaultConfig()
	base.PartitionBases = 128 << 10
	base.ExactMatchPrepass = false // isolate the pivot filters, as Fig 15 does

	type variant struct {
		name   string
		mutate func(*casa.Config)
	}
	fmt.Println("== pivot filtering (Fig 15) ==")
	fmt.Printf("%-18s %14s %14s %12s\n", "design", "pivots/read", "filtered", "reads/s")
	for _, v := range []variant{
		{"naive", func(c *casa.Config) { c.UseFilterTable = false; c.UseAnalysis = false }},
		{"table", func(c *casa.Config) { c.UseAnalysis = false }},
		{"table+analysis", func(c *casa.Config) {}},
	} {
		cfg := base
		v.mutate(&cfg)
		res := run(ref, reads, cfg)
		perRead := float64(res.Stats.PivotsComputed) / float64(res.Stats.ReadsSeeded)
		filtered := 100 * (1 - float64(res.Stats.PivotsComputed)/float64(res.Stats.PivotsTotal))
		fmt.Printf("%-18s %14.2f %13.1f%% %12.3g\n", v.name, perRead, filtered, res.Throughput())
	}

	fmt.Println("\n== CAM power gating (§4.1) ==")
	fmt.Printf("%-18s %16s %14s\n", "design", "rows enabled", "reads/mJ")
	for _, v := range []variant{
		{"no gating", func(c *casa.Config) { c.GroupGating = false; c.EntryGating = false }},
		{"group gating", func(c *casa.Config) { c.EntryGating = false }},
		{"group+entry", func(c *casa.Config) {}},
	} {
		cfg := base
		v.mutate(&cfg)
		res := run(ref, reads, cfg)
		fmt.Printf("%-18s %16d %14.1f\n", v.name, res.Stats.CAMRowsEnabled, res.ReadsPerMJ())
	}

	fmt.Println("\n== exact-match prepass (§4.3) ==")
	for _, prepass := range []bool{false, true} {
		cfg := base
		cfg.ExactMatchPrepass = prepass
		res := run(ref, reads, cfg)
		fmt.Printf("prepass=%-5v  exact reads: %4d  throughput: %.3g reads/s\n",
			prepass, res.Stats.ReadsExact, res.Throughput())
	}
}

func run(ref casa.Sequence, reads []casa.Sequence, cfg casa.Config) *casa.Result {
	acc, err := casa.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return acc.SeedReads(reads)
}
