// Quickstart: build a synthetic reference, construct a CASA accelerator,
// seed a handful of simulated reads, and print the SMEMs with the modelled
// throughput and power — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"casa"
)

func main() {
	// A 1 Mbase synthetic genome with mammalian-like repeat content.
	ref := casa.GenerateReference(casa.DefaultGenome(1<<20, 42))

	// 101 bp reads with the paper's error profile (~80% exact matches).
	sim := casa.Simulate(ref, casa.DefaultProfile(50, 7))
	reads := casa.Sequences(sim)

	// CASA with the paper's architecture, shrunk to 256 Kbase partitions
	// so this example builds instantly.
	cfg := casa.DefaultConfig()
	cfg.PartitionBases = 256 << 10
	acc, err := casa.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d bases in %d partitions (on-chip budget %.1f MB)\n\n",
		len(ref), acc.Partitions(), float64(cfg.OnChipBytes())/(1<<20))

	res := acc.SeedReads(reads)
	for i := 0; i < 5; i++ {
		rr := res.Reads[i]
		fmt.Printf("%s\n  forward SMEMs: %v\n  reverse SMEMs: %v\n", sim[i].Name, rr.Forward, rr.Reverse)
	}

	fmt.Printf("\nseeded %d reads (both strands x %d partitions)\n", len(reads), acc.Partitions())
	fmt.Printf("modelled throughput: %.3g reads/s\n", res.Throughput())
	fmt.Printf("modelled power:      %.2f W (%.0f reads/mJ)\n", res.Energy.PowerW(), res.ReadsPerMJ())
	fmt.Printf("pivot filtering:     %d of %d pivots computed (%.2f%% filtered)\n",
		res.Stats.PivotsComputed, res.Stats.PivotsTotal,
		100*(1-float64(res.Stats.PivotsComputed)/float64(res.Stats.PivotsTotal)))
}
