// Enginecompare: run the same read batch through every seeding engine —
// the golden brute-force finder, the FM-index (BWA-MEM2 algorithm), the
// ERT radix-tree index, GenAx's seed & position tables, and the CASA
// accelerator — and verify they all report identical SMEM sets, the §6
// validation result ("CASA produces identical SMEMs to GenAx and 100%
// SMEMs of BWA-MEM2 are contained").
package main

import (
	"fmt"
	"log"

	"casa"
)

func main() {
	ref := casa.GenerateReference(casa.DefaultGenome(256<<10, 31))
	sim := casa.Simulate(ref, casa.DefaultProfile(40, 33))
	reads := casa.Sequences(sim)
	const minSMEM = 19

	// Golden and FM-index finders work on whole reads directly.
	golden := casa.NewBruteForceFinder(ref)
	fm := casa.NewFMIndexFinder(ref)

	// CASA (partitioned, merged across partitions). The exact-match
	// prepass is disabled for this comparison: its read retirement
	// intentionally skips the non-matching strand of resolved reads,
	// which is a coverage optimization rather than a different SMEM set.
	cfg := casa.DefaultConfig()
	cfg.PartitionBases = 64 << 10
	cfg.ExactMatchPrepass = false
	acc, err := casa.New(ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	casaRes := acc.SeedReads(reads)

	// ERT and GenAx baselines.
	ertAcc, err := casa.NewERT(ref, casa.DefaultERTConfig())
	if err != nil {
		log.Fatal(err)
	}
	ertRes := ertAcc.SeedReads(reads)
	genaxAcc, err := casa.NewGenAx(ref, casa.DefaultGenAxConfig())
	if err != nil {
		log.Fatal(err)
	}
	genaxRes := genaxAcc.SeedReads(reads)

	agree := 0
	for i, read := range reads {
		want := golden.FindSMEMs(read, minSMEM)
		sets := map[string][]casa.Match{
			"fm-index": fm.FindSMEMs(read, minSMEM),
			"casa":     casaRes.Reads[i].Forward,
			"ert":      ertRes.Reads[i],
			"genax":    genaxRes.Reads[i],
		}
		ok := true
		for name, got := range sets {
			if !sameIntervals(want, got) {
				ok = false
				fmt.Printf("%s: %s disagrees\n  golden: %v\n  %s: %v\n",
					sim[i].Name, name, want, name, got)
			}
		}
		if ok {
			agree++
		}
	}
	fmt.Printf("%d/%d reads: all five engines report identical SMEM sets\n", agree, len(reads))
	if agree != len(reads) {
		log.Fatal("engines disagree — this should never happen")
	}
}

func sameIntervals(a, b []casa.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
	}
	return true
}
