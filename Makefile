# Developer entry points for the CASA reproduction. Everything is plain
# `go` under the hood; these targets just bundle the common flows.

GO ?= go

.PHONY: all build test race cover bench fuzz experiments ablations examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/pipeline/

cover:
	$(GO) test -cover ./...

# One bench pass per table/figure plus the ablation benches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

fuzz:
	$(GO) test ./internal/seqio/ -fuzz FuzzReadFasta -fuzztime 15s
	$(GO) test ./internal/seqio/ -fuzz FuzzReadFastq -fuzztime 15s

# Regenerate every paper table/figure (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/casa-experiments -scale default

ablations:
	$(GO) run ./cmd/casa-experiments -scale default -ablation

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/enginecompare
	$(GO) run ./examples/ablation
	$(GO) run ./examples/alignment
	$(GO) run ./examples/metagenomics
	$(GO) run ./examples/longread
	$(GO) run ./examples/variantcalling

clean:
	$(GO) clean ./...
