# Developer entry points for the CASA reproduction. Everything is plain
# `go` under the hood; these targets just bundle the common flows.

GO ?= go

.PHONY: all build test race cover lint bench bench-quick bench-baseline bench-all fuzz live-smoke serve-smoke walltrace-smoke index-smoke experiments ablations examples clean

all: build test lint

build:
	$(GO) build ./...
	$(GO) vet ./...

# Structural lints the compiler cannot see (engine dispatch must stay in
# the internal/engine registry; modelled packages must stay off the wall
# clock).
lint:
	bash scripts/lint_engine_registry.sh
	bash scripts/lint_time_domain.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/batch/ ./internal/core/ ./internal/pipeline/ ./internal/serve/ ./internal/obshttp/ ./internal/progress/ ./internal/trace/

cover:
	$(GO) test -cover ./...

# Batch-seeding benchmarks: the BenchmarkBatch* suites plus the
# cross-engine casa-bench run, which writes BENCH_seeding.json
# (schema casa-bench/v1; host throughput + modelled seconds/cycles per
# engine and worker count) and re-validates it.
bench:
	$(GO) test -bench=BenchmarkBatch -benchmem -benchtime=1x .
	$(GO) run ./cmd/casa-bench -out BENCH_seeding.json
	$(GO) run ./cmd/casa-bench -validate BENCH_seeding.json

# CI smoke variant: small workload, fewer pool sizes, then the
# regression gate against the committed baseline — model numbers with a
# tight threshold (deterministic, machine-independent) and host
# throughput with a loose floor (0.25 of baseline, absorbing the gap
# between the baseline machine and CI runners while still catching
# order-of-magnitude host-path regressions).
bench-quick:
	$(GO) test -bench=BenchmarkBatch -benchtime=1x .
	$(GO) run ./cmd/casa-bench -scale quick -workers 1,4 -out BENCH_seeding.json
	$(GO) run ./cmd/casa-bench -validate BENCH_seeding.json
	$(GO) run ./cmd/casa-bench -compare bench/baseline-quick.json -threshold 0.10 -host-threshold 0.25 BENCH_seeding.json

# Refresh the committed gate baseline after an intentional model change.
bench-baseline:
	$(GO) run ./cmd/casa-bench -scale quick -workers 1,4 -out bench/baseline-quick.json

# One bench pass per paper table/figure plus the ablation benches.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x .

fuzz:
	$(GO) test ./internal/seqio/ -fuzz FuzzReadFasta -fuzztime 15s
	$(GO) test ./internal/seqio/ -fuzz FuzzReadFastq -fuzztime 15s
	$(GO) test ./internal/idxio/ -fuzz FuzzIndexRoundTrip -fuzztime 15s
	$(GO) test ./internal/idxio/ -fuzz FuzzIndexCorrupted -fuzztime 15s

# Live-telemetry smoke: a race-built casa-smem run observed mid-flight
# through /progress and /events, then interrupted (see the script).
live-smoke:
	bash scripts/live_smoke.sh

# Seeding-server smoke: a race-built casa-serve answering POST /v1/seed
# with reports matching casa-smem offline, streaming SSE, handling
# concurrent clients, and draining cleanly on SIGTERM (see the script).
serve-smoke:
	bash scripts/serve_smoke.sh

# Wall-trace smoke: seed a toy batch with casa-smem -walltrace and
# assert casa-trace -wall reports the expected worker/shard/read counts
# and utilization lines (see the script).
walltrace-smoke:
	bash scripts/walltrace_smoke.sh

# Index-persistence smoke: for every persisting engine, a casa-smem
# -index run must match a fresh -ref rebuild byte for byte, and the
# sharded composites must agree with their inner engines at shard counts
# 1/2/5 (see the script).
index-smoke:
	bash scripts/index_smoke.sh

# Regenerate every paper table/figure (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/casa-experiments -scale default

ablations:
	$(GO) run ./cmd/casa-experiments -scale default -ablation

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/enginecompare
	$(GO) run ./examples/ablation
	$(GO) run ./examples/alignment
	$(GO) run ./examples/metagenomics
	$(GO) run ./examples/longread
	$(GO) run ./examples/variantcalling

clean:
	$(GO) clean ./...
