module casa

go 1.22
