package ert

import (
	"casa/internal/dna"
	"casa/internal/dram"
	"casa/internal/energy"
	"casa/internal/smem"
	"casa/internal/trace"
)

// AccelConfig sets the ASIC-ERT performance model: 16 seeding machines
// with a 4 MB k-mer reuse cache in front of a dedicated DDR4 index
// (§6: "16 seeding machines with 4MB k-mer reuse cache").
type AccelConfig struct {
	Index         Config
	Machines      int     // parallel seeding machines (16)
	CacheBytes    int64   // k-mer reuse cache capacity (4 MB)
	RootBytes     int64   // bytes per cached root entry
	FetchBytes    int64   // bytes per tree-node/index fetch (DRAM burst)
	BasesPerFetch int     // tree bases resolved per DRAM fetch (ERT packs multi-base nodes into 64 B lines)
	MLP           float64 // memory-level parallelism per machine
	OnChipWatts   float64 // seeding machines + cache average power
	OnChipAreaMM  float64 // seeding machines + cache area
}

// DefaultAccelConfig returns the paper's ASIC-ERT evaluation setup.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{
		Index:         DefaultConfig(),
		Machines:      16,
		CacheBytes:    4 << 20,
		RootBytes:     64,
		FetchBytes:    64,
		BasesPerFetch: 8,
		MLP:           2,
		OnChipWatts:   12.0, // ASIC-ERT on-chip power (~47% of total is DRAM)
		OnChipAreaMM:  60,
	}
}

// Accelerator is the ASIC-ERT model: the real ERT index for behaviour,
// plus DRAM-traffic-driven timing and power.
type Accelerator struct {
	cfg   AccelConfig
	index *Index
	cache *lruCache
}

// NewAccelerator builds the ERT index over ref.
func NewAccelerator(ref dna.Sequence, cfg AccelConfig) (*Accelerator, error) {
	ix, err := Build(ref, cfg.Index)
	if err != nil {
		return nil, err
	}
	capacity := int(cfg.CacheBytes / cfg.RootBytes)
	return &Accelerator{cfg: cfg, index: ix, cache: newLRU(capacity)}, nil
}

// Index exposes the underlying index.
func (a *Accelerator) Index() *Index { return a.index }

// Clone returns an accelerator sharing the ERT index's immutable trees
// with fresh activity counters and its own (empty) reuse cache. Clones
// are the per-worker engines of batch seeding; the shared reuse-cache
// accounting is replayed sequentially in Reduce, so clone-parallel runs
// report the same hit rates as a sequential one.
func (a *Accelerator) Clone() *Accelerator {
	return &Accelerator{cfg: a.cfg, index: a.index.Clone(), cache: newLRU(a.cache.capacity)}
}

// Result is the outcome of an ERT seeding run.
type Result struct {
	Reads      [][]smem.Match // forward-strand SMEMs per read
	Rev        [][]smem.Match // reverse-strand SMEMs per read
	Stats      Stats
	CacheHits  int64
	CacheMiss  int64
	Seconds    float64
	DRAM       *dram.Traffic
	Energy     energy.Report
	Throughput float64
	ReadsPerMJ float64
}

// Activity is the raw, additive outcome of seeding a batch of reads: the
// per-read SMEM results of both strands plus the index-search counters
// and the read-stream bytes. Activities of disjoint sub-batches reduce
// (Reduce) to a Result identical to a sequential run; the reuse-cache
// model, whose hit rates depend on read order, is replayed over the full
// batch inside Reduce rather than counted here.
type Activity struct {
	Reads     [][]smem.Match
	Rev       [][]smem.Match
	Stats     Stats
	ReadBytes int64
}

// SeedReads seeds every read (both strands) and models time and power.
// It is exactly Reduce(reads, Seed(reads)); use Seed and Reduce directly
// to split a batch across worker-owned Clones.
func (a *Accelerator) SeedReads(reads []dna.Sequence) *Result {
	return a.Reduce(reads, a.Seed(reads))
}

// Seed runs the behavioural ERT search for every read (both strands) and
// returns the raw activity. Seed mutates only this accelerator's index
// counters: concurrent calls on distinct Clones are safe.
func (a *Accelerator) Seed(reads []dna.Sequence) *Activity {
	return a.SeedTrace(reads, nil, 0)
}

// SeedTrace is Seed with cycle-domain tracing: when tb is non-nil, every
// read gets "fwd" and "rev" spans on the "seed" track, with read-local
// timestamps in modelled DRAM fetches (tree-node fetches converted at
// BasesPerFetch, plus reference verifies) — the unit the ERT timing model
// is latency-bound on. Reuse-cache misses are order-sensitive and counted
// in Reduce, so they are not in per-read durations. Reads are keyed
// base+i so batch shards merge worker-count independently.
func (a *Accelerator) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) *Activity {
	act := &Activity{}
	start := a.index.Stats
	for i, r := range reads {
		before := a.index.Stats
		act.Reads = append(act.Reads, a.index.FindSMEMs(r, a.cfg.Index.MinSMEM))
		if tb != nil {
			fwd := a.fetchWork(diff(a.index.Stats, before))
			before = a.index.Stats
			act.Rev = append(act.Rev, a.index.FindSMEMs(r.ReverseComplement(), a.cfg.Index.MinSMEM))
			rev := a.fetchWork(diff(a.index.Stats, before))
			tb.Emit(base+i, "seed", "fwd", 0, fwd)
			tb.Emit(base+i, "seed", "rev", fwd, rev)
		} else {
			act.Rev = append(act.Rev, a.index.FindSMEMs(r.ReverseComplement(), a.cfg.Index.MinSMEM))
		}
		act.ReadBytes += int64((len(r) + 3) / 4)
	}
	act.Stats = diff(a.index.Stats, start)
	return act
}

// fetchWork converts an activity delta into modelled DRAM fetches, the
// same conversion Reduce applies to the batch totals (minus the
// order-sensitive reuse-cache misses).
func (a *Accelerator) fetchWork(d Stats) int64 {
	perFetch := int64(a.cfg.BasesPerFetch)
	if perFetch < 1 {
		perFetch = 1
	}
	return (d.NodeFetches+perFetch-1)/perFetch + d.RefFetches
}

// Reduce folds the Activities of disjoint sub-batches (in input order)
// into one finalized Result. reads must be the concatenation of the
// sub-batches, in the same order: the k-mer reuse cache is replayed over
// it sequentially, starting cold, so cache hit rates — and therefore DRAM
// traffic, time and energy — are identical no matter how the batch was
// sharded (a per-worker cache would fabricate hit rates no real read
// stream has).
func (a *Accelerator) Reduce(reads []dna.Sequence, acts ...*Activity) *Result {
	res := &Result{DRAM: dram.NewTraffic(dram.ERTConfig())}
	var readBytes int64
	for _, act := range acts {
		res.Reads = append(res.Reads, act.Reads...)
		res.Rev = append(res.Rev, act.Rev...)
		res.Stats.add(act.Stats)
		readBytes += act.ReadBytes
	}

	// Reuse-cache replay: one access per pivot k-mer per strand, in batch
	// order, exactly as the seeding machines stream the reads.
	cache := newLRU(a.cache.capacity)
	var hits, miss int64
	countStrand := func(read dna.Sequence) {
		for i := 0; i+a.cfg.Index.K <= len(read); i++ {
			if cache.access(dna.PackKmer(read, i, a.cfg.Index.K)) {
				hits++
			} else {
				miss++
			}
		}
	}
	for _, r := range reads {
		countStrand(r)
		countStrand(r.ReverseComplement())
	}
	res.CacheHits, res.CacheMiss = hits, miss

	// DRAM traffic: the single-base trie levels of the model map onto
	// ERT's multi-base nodes (one 64 B line resolves several bases), so
	// node visits convert to fetches at BasesPerFetch; every reference
	// verify and root miss is its own random burst; reads stream in once.
	perFetch := int64(a.cfg.BasesPerFetch)
	if perFetch < 1 {
		perFetch = 1
	}
	randomFetches := (res.Stats.NodeFetches+perFetch-1)/perFetch + res.Stats.RefFetches + miss
	res.DRAM.RandomAccesses += randomFetches
	res.DRAM.BytesRead += randomFetches * a.cfg.FetchBytes
	res.DRAM.Read(readBytes)

	// Time: the random-access latency is overlapped across machines and
	// each machine's memory-level parallelism; the stream bandwidth is the
	// other bound.
	cfg := res.DRAM.Config()
	latencyBound := cfg.RandAccessSeconds(randomFetches) / (float64(a.cfg.Machines) * a.cfg.MLP)
	bwBound := cfg.TransferSeconds(res.DRAM.TotalBytes())
	res.Seconds = latencyBound
	if bwBound > res.Seconds {
		res.Seconds = bwBound
	}

	m := energy.NewMeter()
	m.Register("seeding machines + reuse cache", a.cfg.OnChipWatts, a.cfg.OnChipAreaMM)
	m.ChargeJ("DDR4 (64GB index)", res.DRAM.DynamicJ())
	m.Register("DDR4 (64GB index)", res.DRAM.BackgroundW(), 0)
	m.Register("DRAM controller PHY", cfg.PHYW, 0)
	res.Energy = m.Report(res.Seconds)

	if n := len(res.Reads); res.Seconds > 0 {
		res.Throughput = float64(n) / res.Seconds
	}
	if j := res.Energy.TotalJ(); j > 0 {
		res.ReadsPerMJ = float64(len(res.Reads)) / (j * 1e3)
	}
	return res
}

func diff(after, before Stats) Stats {
	return Stats{
		IndexFetches: after.IndexFetches - before.IndexFetches,
		NodeFetches:  after.NodeFetches - before.NodeFetches,
		RefFetches:   after.RefFetches - before.RefFetches,
		Pivots:       after.Pivots - before.Pivots,
		Reads:        after.Reads - before.Reads,
	}
}

// lruCache is an LRU set of k-mers for the reuse-cache model, backed by a
// map plus an intrusive doubly-linked list for O(1) access and eviction.
type lruCache struct {
	capacity int
	items    map[dna.Kmer]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
}

type lruEntry struct {
	key        dna.Kmer
	prev, next *lruEntry
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, items: make(map[dna.Kmer]*lruEntry, capacity)}
}

// access returns true on hit, inserting the key either way.
func (c *lruCache) access(k dna.Kmer) bool {
	if e, ok := c.items[k]; ok {
		c.unlink(e)
		c.pushFront(e)
		return true
	}
	if len(c.items) >= c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.key)
	}
	e := &lruEntry{key: k}
	c.items[k] = e
	c.pushFront(e)
	return false
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
}
