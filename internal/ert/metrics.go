package ert

import "casa/internal/metrics"

// Engine is the metric-name prefix for the ASIC-ERT baseline.
const Engine = "ert"

// publishStats adds one search-counter snapshot into the ert/* counters.
func publishStats(reg *metrics.Registry, s Stats) {
	reg.Counter("ert/search/index_fetches").Add(s.IndexFetches)
	reg.Counter("ert/search/node_fetches").Add(s.NodeFetches)
	reg.Counter("ert/search/ref_fetches").Add(s.RefFetches)
	reg.Counter("ert/search/pivots").Add(s.Pivots)
	reg.Counter("ert/search/reads").Add(s.Reads)
}

// PublishMetrics adds this shard's additive activity counters into reg.
// Shard registries merged in any order equal the sequential run's.
func (act *Activity) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, act.Stats)
	reg.Counter("ert/dram/read_stream_bytes").Add(act.ReadBytes)
}

// PublishMetrics adds the index's accumulated search counters into reg —
// for direct (non-Accelerator) use of the ERT index, e.g. as an SMEM
// finder. Call once per run per index instance.
func (ix *Index) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, ix.Stats)
}

// PublishModelMetrics publishes the finalized model outputs of a reduced
// Result: the replayed reuse-cache counts, time, throughput, DRAM
// traffic and energy. Call once per run, after Reduce.
func (res *Result) PublishModelMetrics(reg *metrics.Registry) {
	reg.Counter("ert/cache/hits").Add(res.CacheHits)
	reg.Counter("ert/cache/misses").Add(res.CacheMiss)
	reg.Gauge("ert/model/reads").Set(float64(len(res.Reads)))
	reg.Gauge("ert/model/seconds").Set(res.Seconds)
	reg.Gauge("ert/model/throughput_reads_per_s").Set(res.Throughput)
	reg.Gauge("ert/model/reads_per_mj").Set(res.ReadsPerMJ)
	res.DRAM.PublishMetrics(reg, Engine)
	res.Energy.PublishMetrics(reg, Engine)
}

// PublishMetrics publishes the aggregated search counters and the model
// outputs of a sequential (single-shard) run. The read-stream byte
// counter is only available from per-shard activities and is not
// re-published here.
func (res *Result) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, res.Stats)
	res.PublishModelMetrics(reg)
}
