// Package ert implements the Enumerated-Radix-Trees baseline (§2.2 of the
// CASA paper, originally Subramaniyan et al., ISCA 2021): an index table
// mapping k-mers to radix trees over their reference extensions, searched
// bidirectionally to find SMEMs. The ASIC-ERT performance model on top
// (accel.go) charges a DRAM fetch per tree-node visit, with a k-mer reuse
// cache in front of the root fetches, matching the traffic pattern the
// CASA paper measured with Ramulator ("it still has some random accesses
// left caused by tree root fetches and k-mer searches").
package ert

import (
	"fmt"
	"sort"

	"casa/internal/dna"
	"casa/internal/smem"
	"casa/internal/suffixarray"
)

// Config sets the ERT index dimensions.
type Config struct {
	K        int // index k-mer size (15 in ERT)
	MinSMEM  int // minimum reported SMEM length (19)
	MaxDepth int // deepest tree level beyond which fat leaves are used
}

// DefaultConfig returns ERT's published configuration.
func DefaultConfig() Config {
	return Config{K: 15, MinSMEM: 19, MaxDepth: 128}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	switch {
	case c.K <= 0 || c.K > dna.MaxK:
		return fmt.Errorf("ert: k=%d out of range", c.K)
	case c.MinSMEM < c.K:
		return fmt.Errorf("ert: MinSMEM=%d must be >= k=%d", c.MinSMEM, c.K)
	case c.MaxDepth <= c.K:
		return fmt.Errorf("ert: MaxDepth=%d must exceed k=%d", c.MaxDepth, c.K)
	}
	return nil
}

// node is one radix-tree node: the set of reference suffixes sharing the
// prefix on the path from the root, represented by a suffix-array interval.
// A node with a singleton interval is a leaf pointing directly into the
// reference; a node at MaxDepth is a fat leaf resolved by direct
// reference comparison.
type node struct {
	children [dna.NumBases]int32 // -1 when absent
	saLo     int32               // suffix-array interval [saLo, saHi)
	saHi     int32
}

// Index is the ERT index over one reference sequence.
type Index struct {
	cfg   Config
	ref   dna.Sequence
	sa    []int32 // suffix array (no sentinel row)
	roots map[dna.Kmer]int32
	nodes []node

	// Stats accumulates search activity until Reset.
	Stats Stats
}

// Stats counts the memory events of ERT searches, the quantities the
// ASIC-ERT performance model converts into DRAM traffic.
type Stats struct {
	IndexFetches int64 // index-table lookups (root fetches)
	NodeFetches  int64 // radix-tree node fetches
	RefFetches   int64 // direct reference-segment fetches (leaf verify)
	Pivots       int64 // pivots processed
	Reads        int64 // reads processed
}

func (s *Stats) add(o Stats) {
	s.IndexFetches += o.IndexFetches
	s.NodeFetches += o.NodeFetches
	s.RefFetches += o.RefFetches
	s.Pivots += o.Pivots
	s.Reads += o.Reads
}

// Clone returns an index sharing this one's trees, suffix array and root
// table (never written after Build) with a fresh Stats counter, so clones
// can search concurrently without locks.
func (ix *Index) Clone() *Index {
	return &Index{cfg: ix.cfg, ref: ix.ref, sa: ix.sa, roots: ix.roots, nodes: ix.nodes}
}

// Build constructs the index: the suffix array, one radix tree per
// distinct k-mer (built from the k-mer's suffix-array interval), and the
// root table.
func Build(ref dna.Sequence, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:   cfg,
		ref:   ref,
		sa:    suffixarray.BuildNoSentinel(ref),
		roots: make(map[dna.Kmer]int32),
	}
	// Walk maximal suffix-array runs sharing a full-length k-mer prefix.
	lo := 0
	for lo < len(ix.sa) {
		p := int(ix.sa[lo])
		if p+cfg.K > len(ref) {
			lo++ // suffix shorter than k: not indexable
			continue
		}
		km := dna.PackKmer(ref, p, cfg.K)
		hi := lo + 1
		for hi < len(ix.sa) {
			q := int(ix.sa[hi])
			if q+cfg.K > len(ref) || dna.PackKmer(ref, q, cfg.K) != km {
				break
			}
			hi++
		}
		ix.roots[km] = ix.buildNode(lo, hi, cfg.K)
		lo = hi
	}
	return ix, nil
}

// buildNode creates the node for suffix-array interval [lo, hi) at the
// given depth (bases already matched) and recursively builds children.
func (ix *Index) buildNode(lo, hi, depth int) int32 {
	id := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, node{
		children: [dna.NumBases]int32{-1, -1, -1, -1},
		saLo:     int32(lo),
		saHi:     int32(hi),
	})
	if hi-lo <= 1 || depth >= ix.cfg.MaxDepth {
		return id // leaf or fat leaf
	}
	// Split the interval by the base at offset depth. Suffixes too short
	// to have that base sort first within the interval.
	start := lo
	for start < hi && int(ix.sa[start])+depth >= len(ix.ref) {
		start++
	}
	for b := dna.Base(0); b < dna.NumBases; b++ {
		// Suffixes within [start, hi) are sorted by ref[sa[i]+depth].
		end := start + sort.Search(hi-start, func(i int) bool {
			return ix.ref[int(ix.sa[start+i])+depth] > b
		})
		if end > start {
			child := ix.buildNode(start, end, depth+1)
			ix.nodes[id].children[b] = child
		}
		start = end
	}
	return id
}

// Nodes returns the total radix-tree node count (index-size accounting).
func (ix *Index) Nodes() int { return len(ix.nodes) }

// Roots returns the number of distinct indexed k-mers.
func (ix *Index) Roots() int { return len(ix.roots) }

// HeapBytes approximates the index footprint: the paper notes the
// ERT-index for GRCh38 needs a dedicated 62 GB DRAM; this scales that
// footprint to the configured reference.
func (ix *Index) HeapBytes() int64 {
	return int64(len(ix.nodes))*24 + int64(len(ix.roots))*12 + int64(len(ix.sa))*4 + int64(len(ix.ref))
}

// step is one successful forward extension.
type step struct {
	end  int // inclusive read index matched so far
	hits int // occurrences of read[pivot..end]
}

// walk matches read[pivot..] down the k-mer's radix tree, returning one
// step per matched base (starting at the end of the k-mer itself). Fetch
// accounting: one index fetch, one node fetch per visited node, and one
// reference fetch when a singleton leaf switches to direct comparison.
func (ix *Index) walk(read dna.Sequence, pivot int) []step {
	ix.Stats.IndexFetches++
	if pivot+ix.cfg.K > len(read) {
		return nil
	}
	root, ok := ix.roots[dna.PackKmer(read, pivot, ix.cfg.K)]
	if !ok {
		return nil
	}
	n := &ix.nodes[root]
	ix.Stats.NodeFetches++
	steps := []step{{end: pivot + ix.cfg.K - 1, hits: int(n.saHi - n.saLo)}}
	depth := ix.cfg.K
	for e := pivot + ix.cfg.K; e < len(read); e++ {
		if n.saHi-n.saLo == 1 {
			// Singleton: compare directly against the reference.
			p := int(ix.sa[n.saLo])
			ix.Stats.RefFetches++
			for ; e < len(read) && p+depth < len(ix.ref) && ix.ref[p+depth] == read[e]; e++ {
				steps = append(steps, step{end: e, hits: 1})
				depth++
			}
			return steps
		}
		child := n.children[read[e]]
		if child < 0 {
			// MaxDepth fat leaf keeps children empty: resolve by direct
			// comparison over its interval.
			if depth >= ix.cfg.MaxDepth {
				return ix.walkFat(read, pivot, e, n, depth, steps)
			}
			return steps
		}
		n = &ix.nodes[child]
		ix.Stats.NodeFetches++
		steps = append(steps, step{end: e, hits: int(n.saHi - n.saLo)})
		depth++
	}
	return steps
}

// walkFat extends past a fat leaf by direct reference comparison over the
// leaf's suffix interval.
func (ix *Index) walkFat(read dna.Sequence, pivot, e int, n *node, depth int, steps []step) []step {
	positions := ix.sa[n.saLo:n.saHi]
	for ; e < len(read); e++ {
		hits := 0
		ix.Stats.RefFetches++
		for _, p := range positions {
			if int(p)+depth < len(ix.ref) && ix.ref[int(p)+depth] == read[e] {
				hits++
			}
		}
		if hits == 0 {
			return steps
		}
		// Keep only surviving positions for subsequent bases.
		kept := positions[:0:0]
		for _, p := range positions {
			if int(p)+depth < len(ix.ref) && ix.ref[int(p)+depth] == read[e] {
				kept = append(kept, p)
			}
		}
		positions = kept
		steps = append(steps, step{end: e, hits: hits})
		depth++
	}
	return steps
}

// maxEnd returns the largest end (inclusive) such that read[pivot..end]
// occurs, or -1; a thin wrapper over walk for the backward binary search.
func (ix *Index) maxEnd(read dna.Sequence, pivot int) int {
	steps := ix.walk(read, pivot)
	if len(steps) == 0 {
		return -1
	}
	return steps[len(steps)-1].end
}

// FindSMEMs runs ERT's bidirectional SMEM search: forward-walk from each
// pivot recording left extension points, backward-extend each LEP to its
// minimal start (binary search over tree walks), and keep the
// super-maximal matches of length >= minLen.
func (ix *Index) FindSMEMs(read dna.Sequence, minLen int) []smem.Match {
	ix.Stats.Reads++
	var cands []smem.Match
	pivot := 0
	for pivot+ix.cfg.K <= len(read) {
		ix.Stats.Pivots++
		steps := ix.walk(read, pivot)
		if len(steps) == 0 {
			pivot++
			continue
		}
		// LEPs: ends where the hit count changes.
		var leps []step
		for i, st := range steps {
			if i+1 == len(steps) || steps[i+1].hits != st.hits {
				leps = append(leps, st)
			}
		}
		for _, lep := range leps {
			x := ix.backwardMin(read, pivot, lep.end)
			cands = append(cands, smem.Match{Start: x, End: lep.end, Hits: ix.hitCount(read, x, lep.end)})
		}
		// Advance conservatively: a k-mer-rooted walk from pivot q only
		// sees match ends >= q+k-1, so the next pivot must not pass
		// e-k+2 or SMEMs ending just beyond e become invisible.
		next := steps[len(steps)-1].end - ix.cfg.K + 2
		if next <= pivot {
			next = pivot + 1
		}
		pivot = next
	}
	return dedup(cands, minLen)
}

// backwardMin finds the smallest x <= pivot with read[x..end] occurring,
// by binary search over tree walks (e(x) is non-decreasing in x, so
// "walk from x reaches end" is monotone in x).
func (ix *Index) backwardMin(read dna.Sequence, pivot, end int) int {
	lo, hi := 0, pivot // invariant: hi works
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.maxEnd(read, mid) >= end {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// hitCount returns the occurrence count of read[start..end] via one walk.
func (ix *Index) hitCount(read dna.Sequence, start, end int) int {
	steps := ix.walk(read, start)
	for _, st := range steps {
		if st.end == end {
			return st.hits
		}
	}
	return 0
}

// dedup removes contained candidates and filters by length.
func dedup(cands []smem.Match, minLen int) []smem.Match {
	smem.Sort(cands)
	uniq := cands[:0:0]
	for i, m := range cands {
		if i == 0 || m != cands[i-1] {
			uniq = append(uniq, m)
		}
	}
	var out []smem.Match
	for i, m := range uniq {
		contained := false
		for j, o := range uniq {
			if i != j && o.Contains(m) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, m)
		}
	}
	out = smem.FilterMinLen(out, minLen)
	smem.Sort(out)
	return out
}
