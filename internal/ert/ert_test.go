package ert

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

func testConfig() Config {
	return Config{K: 7, MinSMEM: 7, MaxDepth: 64}
}

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func plantedRead(rng *rand.Rand, ref dna.Sequence, length, mutations int) dna.Sequence {
	start := rng.Intn(len(ref) - length)
	read := ref[start : start+length].Clone()
	for m := 0; m < mutations; m++ {
		read[rng.Intn(length)] = dna.Base(rng.Intn(4))
	}
	return read
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := []Config{
		{K: 0, MinSMEM: 19, MaxDepth: 100},
		{K: 15, MinSMEM: 10, MaxDepth: 100},
		{K: 15, MinSMEM: 19, MaxDepth: 15},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBuildCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randSeq(rng, 2000)
	ix, err := Build(ref, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Distinct k-mer count must match a direct enumeration.
	want := make(map[dna.Kmer]bool)
	for i := 0; i+7 <= len(ref); i++ {
		want[dna.PackKmer(ref, i, 7)] = true
	}
	if ix.Roots() != len(want) {
		t.Errorf("Roots = %d, want %d", ix.Roots(), len(want))
	}
	if ix.Nodes() < ix.Roots() {
		t.Errorf("fewer nodes (%d) than roots (%d)", ix.Nodes(), ix.Roots())
	}
	if ix.HeapBytes() <= 0 {
		t.Error("HeapBytes must be positive")
	}
}

func TestWalkHitsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randSeq(rng, 1200)
	ix, err := Build(ref, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	count := func(pat dna.Sequence) int {
		n := 0
	outer:
		for i := 0; i+len(pat) <= len(ref); i++ {
			for j, b := range pat {
				if ref[i+j] != b {
					continue outer
				}
			}
			n++
		}
		return n
	}
	for trial := 0; trial < 60; trial++ {
		read := plantedRead(rng, ref, 40, rng.Intn(4))
		steps := ix.walk(read, 0)
		for _, st := range steps {
			if got, want := st.hits, count(read[:st.end+1]); got != want {
				t.Fatalf("walk hits at end %d = %d, want %d (read %s)", st.end, got, want, read)
			}
		}
		// One base past the last step must not occur.
		if len(steps) > 0 {
			last := steps[len(steps)-1].end
			if last+1 < len(read) && count(read[:last+2]) != 0 {
				t.Fatalf("walk stopped early at %d for %s", last, read)
			}
		}
	}
}

func TestFindSMEMsMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		ref := randSeq(rng, 400+rng.Intn(600))
		ix, err := Build(ref, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		golden := smem.BruteForce{Ref: ref}
		for r := 0; r < 6; r++ {
			read := plantedRead(rng, ref, 40+rng.Intn(40), rng.Intn(5))
			want := golden.FindSMEMs(read, 7)
			got := ix.FindSMEMs(read, 7)
			if !smem.Equal(want, got) {
				t.Fatalf("trial %d read %d:\n got %v\nwant %v\nread %s\nref %s",
					trial, r, got, want, read, ref)
			}
		}
	}
}

func TestFindSMEMsRepetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	unit := randSeq(rng, 9)
	var ref dna.Sequence
	for i := 0; i < 50; i++ {
		ref = append(ref, unit...)
		if i%5 == 0 {
			ref = append(ref, randSeq(rng, 6)...)
		}
	}
	// Shallow MaxDepth forces the fat-leaf path.
	cfg := Config{K: 7, MinSMEM: 7, MaxDepth: 12}
	ix, err := Build(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	for r := 0; r < 12; r++ {
		read := plantedRead(rng, ref, 45, rng.Intn(3))
		want := golden.FindSMEMs(read, 7)
		got := ix.FindSMEMs(read, 7)
		if !smem.Equal(want, got) {
			t.Fatalf("read %d:\n got %v\nwant %v", r, got, want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randSeq(rng, 1000)
	ix, err := Build(ref, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix.FindSMEMs(plantedRead(rng, ref, 50, 1), 7)
	s := ix.Stats
	if s.Reads != 1 || s.Pivots == 0 || s.IndexFetches == 0 || s.NodeFetches == 0 {
		t.Errorf("stats not accumulated: %+v", s)
	}
}

func TestAcceleratorSeedReads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := randSeq(rng, 3000)
	cfg := DefaultAccelConfig()
	cfg.Index = testConfig()
	a, err := NewAccelerator(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Sequence
	for i := 0; i < 20; i++ {
		reads = append(reads, plantedRead(rng, ref, 50, rng.Intn(3)))
	}
	res := a.SeedReads(reads)
	if len(res.Reads) != len(reads) || len(res.Rev) != len(reads) {
		t.Fatal("result count mismatch")
	}
	if res.Seconds <= 0 || res.Throughput <= 0 {
		t.Errorf("no time modelled: %+v", res.Seconds)
	}
	if res.DRAM.RandomAccesses == 0 {
		t.Error("ERT must issue random DRAM accesses (tree fetches)")
	}
	if res.CacheHits+res.CacheMiss == 0 {
		t.Error("reuse cache never consulted")
	}
	if res.Energy.PowerW() <= 12 {
		t.Errorf("ERT power = %.1f W; must exceed on-chip floor", res.Energy.PowerW())
	}
	if res.ReadsPerMJ <= 0 {
		t.Error("energy efficiency missing")
	}
	// Behavioural cross-check against golden on a sample.
	golden := smem.BruteForce{Ref: ref}
	for i := 0; i < 5; i++ {
		want := golden.FindSMEMs(reads[i], cfg.Index.MinSMEM)
		if !smem.Equal(want, res.Reads[i]) {
			t.Fatalf("read %d: %v vs golden %v", i, res.Reads[i], want)
		}
	}
}

func TestCacheReuseAcrossReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randSeq(rng, 2000)
	cfg := DefaultAccelConfig()
	cfg.Index = testConfig()
	a, err := NewAccelerator(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	read := plantedRead(rng, ref, 60, 0)
	// The same read twice: the second pass must hit the cache heavily.
	res := a.SeedReads([]dna.Sequence{read, read})
	if res.CacheHits == 0 {
		t.Error("duplicate reads produced no cache hits")
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	if c.access(1) {
		t.Error("cold access hit")
	}
	if !c.access(1) {
		t.Error("warm access missed")
	}
	c.access(2)
	c.access(3) // evicts 1 (LRU)
	if c.access(1) {
		t.Error("evicted key still present")
	}
	if !c.access(3) {
		t.Error("recent key evicted")
	}
}

func TestLRUCapacityOne(t *testing.T) {
	c := newLRU(0) // clamped to 1
	c.access(1)
	c.access(2)
	if c.access(1) {
		t.Error("capacity-1 cache held two keys")
	}
}
