// Package trace is the cycle-domain event-tracing layer of the CASA
// reproduction: a std-lib-only, allocation-conscious span recorder that
// engines and the pipeline model emit into, with deterministic merging
// across batch workers and export to Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing) and a compact JSONL, both under the
// casa-trace/v1 schema (see docs/OBSERVABILITY.md).
//
// Spans live in the *modelled* time domain, never the host wall clock:
// for the accelerator engines the unit is the engine's native cycle (or
// fetch/step) count, for the pipeline model it is nanoseconds of modelled
// wall time. Per-read spans are keyed by the read's index in the input
// batch and carry read-local timestamps (cycle 0 = the moment the
// modelled hardware starts that read), so a span's value depends only on
// the read itself — the same discipline that makes the batch runner's
// Results bit-identical at any worker count extends to traces: the merged
// span stream, and therefore the exported bytes, are identical at
// -workers 1, 4 and 16.
//
// Recording is two-level, mirroring internal/batch:
//
//   - a Buffer is a single-worker sink: appends without locking, one per
//     worker goroutine (or one for a sequential run). A nil *Buffer is a
//     valid no-op sink, so engines emit unconditionally.
//   - a Trace owns the run: it hands out Buffers (NewBuffer is locked,
//     called once per worker, off the hot path) and merges them on demand
//     (Spans), sorting by read index, applying the sampling policy, and
//     bounding memory with a ring-buffer sink.
package trace

import (
	"sort"
	"sync"
)

// SchemaVersion identifies the exported trace layout (both the Chrome
// JSON and the JSONL framing). Bump only on incompatible changes.
const SchemaVersion = "casa-trace/v1"

// SystemRead is the Read value of system-timeline spans (pipeline stages,
// batch-level phases): they carry absolute timestamps on their process's
// timeline rather than read-local ones, and sampling never drops them.
const SystemRead = int32(-1)

// Span is one recorded event: Dur units of modelled time on a named
// track, belonging to a read (or to the system timeline).
type Span struct {
	Proc  string // process-level group: engine name or "pipeline:<system>"
	Track string // thread-level track within the process: stage name
	Name  string // span label: "exact", "smem", "p03", "fwd", ...
	Read  int32  // read index in the input batch; SystemRead for timelines
	Start int64  // modelled start time (read-local for read spans)
	Dur   int64  // modelled duration, >= 0

	// seq is the emission order within the owning Buffer; the merge key
	// (Proc, Read, seq) reproduces each read's emission order exactly,
	// independent of how reads were sharded across workers.
	seq int64
}

// End returns Start+Dur.
func (s Span) End() int64 { return s.Start + s.Dur }

// Buffer collects the spans of one worker (or one sequential run). It is
// not safe for concurrent use — each worker owns exactly one. The zero
// value is unusable; obtain buffers from Trace.NewBuffer. A nil *Buffer
// is a valid sink that drops everything, so instrumented hot paths need
// no tracing-enabled check beyond the pointer test Emit does itself.
type Buffer struct {
	proc  string
	spans []Span
	seq   int64
}

// Emit records one read-scoped span. No-op on a nil buffer or a negative
// duration (a cycle model rounding to nothing is not an event).
func (b *Buffer) Emit(read int, track, name string, start, dur int64) {
	if b == nil || dur < 0 {
		return
	}
	b.spans = append(b.spans, Span{
		Proc: b.proc, Track: track, Name: name,
		Read: int32(read), Start: start, Dur: dur, seq: b.seq,
	})
	b.seq++
}

// EmitSystem records one system-timeline span with absolute timestamps.
func (b *Buffer) EmitSystem(track, name string, start, dur int64) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, Span{
		Proc: b.proc, Track: track, Name: name,
		Read: SystemRead, Start: start, Dur: dur, seq: b.seq,
	})
	b.seq++
}

// Len returns the number of spans recorded so far.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.spans)
}

// Trace owns one run's recording: the sampling policy, the ring capacity,
// and the worker buffers.
type Trace struct {
	policy   Policy
	capacity int

	mu      sync.Mutex
	buffers []*Buffer
}

// DefaultCapacity is the default ring-buffer sink size, in spans. At the
// 24 bytes + two interned strings a span costs, a full default ring stays
// around 100 MB — large enough that sampling, not the ring, is normally
// what bounds output.
const DefaultCapacity = 1 << 21

// New returns a trace session with the given sampling policy and ring
// capacity (spans retained after sampling; <= 0 means DefaultCapacity).
func New(policy Policy, capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{policy: policy, capacity: capacity}
}

// NewBuffer registers and returns a fresh span buffer whose spans carry
// proc as their process label. Safe for concurrent use; called once per
// worker, off the hot path. On a nil Trace it returns nil — the no-op
// sink — so callers thread `tr.NewBuffer(engine)` through unconditionally.
func (t *Trace) NewBuffer(proc string) *Buffer {
	if t == nil {
		return nil
	}
	b := &Buffer{proc: proc}
	t.mu.Lock()
	t.buffers = append(t.buffers, b)
	t.mu.Unlock()
	return b
}

// Policy returns the sampling policy the session was created with.
func (t *Trace) Policy() Policy { return t.policy }

// Spans merges every buffer registered so far into one deterministic
// span stream: sorted by (Proc, Read, emission order), sampled per the
// policy, then pushed through the ring-buffer sink (evicting the earliest
// read spans first when over capacity). System spans always survive
// sampling. The result is independent of worker count and of buffer
// registration order; callers must not run Spans concurrently with
// workers still emitting.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	total := 0
	for _, b := range t.buffers {
		total += len(b.spans)
	}
	merged := make([]Span, 0, total)
	for _, b := range t.buffers {
		merged = append(merged, b.spans...)
	}
	t.mu.Unlock()

	// A read's spans live in exactly one buffer (reads are sharded, never
	// split), so (Proc, Read, seq) totally orders the stream: within a
	// read, seq reproduces the engine's emission order.
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Read != b.Read {
			return a.Read < b.Read
		}
		return a.seq < b.seq
	})

	merged = t.policy.apply(merged)

	if len(merged) > t.capacity {
		// Ring-buffer semantics: keep the newest spans (the highest read
		// indices), drop whole reads from the front so no read is ever
		// half-represented. System spans (sorted to each proc's front by
		// Read = -1) are re-attached untouched.
		merged = evictOldest(merged, t.capacity)
	}
	return merged
}

// evictOldest drops whole-read span groups from the front of the sorted
// stream until at most capacity spans remain, never dropping system
// spans. If the system spans alone exceed capacity they are all kept —
// the ring bounds read-span memory, not the (tiny) timeline.
func evictOldest(spans []Span, capacity int) []Span {
	var system, reads []Span
	for _, s := range spans {
		if s.Read == SystemRead {
			system = append(system, s)
		} else {
			reads = append(reads, s)
		}
	}
	budget := capacity - len(system)
	if budget < 0 {
		budget = 0
	}
	for len(reads) > budget {
		// Drop the first read group (stream is sorted by proc then read;
		// the front holds the earliest read of the first proc).
		r, p := reads[0].Read, reads[0].Proc
		i := 0
		for i < len(reads) && reads[i].Read == r && reads[i].Proc == p {
			i++
		}
		reads = reads[i:]
	}
	out := make([]Span, 0, len(system)+len(reads))
	// Re-merge preserving the (Proc, Read) order.
	i, j := 0, 0
	for i < len(system) || j < len(reads) {
		switch {
		case i >= len(system):
			out = append(out, reads[j])
			j++
		case j >= len(reads):
			out = append(out, system[i])
			i++
		case system[i].Proc <= reads[j].Proc:
			out = append(out, system[i])
			i++
		default:
			out = append(out, reads[j])
			j++
		}
	}
	return out
}
