package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Wall-span naming contract of the batch layer, plus the utilization
// analysis built on it. internal/batch records one wall span per claimed
// shard — proc names the worker, track names the engine, the span name
// carries the shard index, global read range and read count — and the
// formatting/parsing pair below is the single place that contract lives:
// the recorder (batch), the analyzer (casa-trace -wall) and the serving
// aggregation (casa-serve's lifetime worker metrics) all go through it,
// so the name format can evolve without the three drifting apart.

// wallWorkerPrefix starts every batch-worker process label.
const wallWorkerPrefix = "worker "

// WallHostProc is the process label of the batch layer's non-worker wall
// spans: the sequential reduce/merge phases that run on the caller's
// goroutine after the pool drains.
const WallHostProc = "host"

// WallWorkerProc returns the process label of one pool worker's wall
// spans, e.g. "worker 03". Zero-padded to two digits so Perfetto's
// process list (and the analyzer's table) sorts pools of up to 100
// workers naturally.
func WallWorkerProc(worker int) string {
	return fmt.Sprintf("%s%02d", wallWorkerPrefix, worker)
}

// ParseWallWorkerProc recovers the worker index from a WallWorkerProc
// label; ok is false for non-worker process labels (lifecycle spans,
// host phases).
func ParseWallWorkerProc(proc string) (worker int, ok bool) {
	rest, found := strings.CutPrefix(proc, wallWorkerPrefix)
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// WallShardName returns the span name of one claimed shard: its index in
// the run plus the global read range it covered, e.g.
// "shard 3 reads [300,400) n=100".
func WallShardName(shard, lo, hi int) string {
	return fmt.Sprintf("shard %d reads [%d,%d) n=%d", shard, lo, hi, hi-lo)
}

// ParseWallShardName recovers the shard index and read range from a
// WallShardName; ok is false for spans that are not shard spans (reduce,
// lifecycle stages, host phases).
func ParseWallShardName(name string) (shard, lo, hi int, ok bool) {
	var n int
	c, err := fmt.Sscanf(name, "shard %d reads [%d,%d) n=%d", &shard, &lo, &hi, &n)
	if err != nil || c != 4 {
		return 0, 0, 0, false
	}
	return shard, lo, hi, true
}

// WallWorkerStat summarizes one pool worker's wall spans: how many
// shards and reads it claimed and how much host time it spent busy.
// Workers run their shards sequentially, so busy time is the plain sum
// of span durations; everything between StartUS and EndUS not covered by
// a span is idle (waiting on the shard counter, or the pool tail).
type WallWorkerStat struct {
	Worker  int    // worker index parsed from the proc label
	Proc    string // the label itself
	Shards  int    // spans recorded (one per claimed shard)
	Reads   int    // total reads across shard spans (0 if names don't parse)
	BusyUS  int64  // sum of span durations
	StartUS int64  // earliest span start, µs since the epoch (or rebased)
	EndUS   int64  // latest span end
}

// WallWorkers splits a wall span stream into per-worker statistics
// (sorted by worker index) and the remaining non-worker spans (lifecycle
// stages, host phases, reduce spans) in input order.
func WallWorkers(spans []WallSpan) (workers []WallWorkerStat, others []WallSpan) {
	byWorker := map[int]*WallWorkerStat{}
	for _, s := range spans {
		w, ok := ParseWallWorkerProc(s.Proc)
		if !ok {
			others = append(others, s)
			continue
		}
		st := byWorker[w]
		if st == nil {
			st = &WallWorkerStat{Worker: w, Proc: s.Proc, StartUS: s.Start, EndUS: s.End()}
			byWorker[w] = st
		}
		st.Shards++
		st.BusyUS += s.Dur
		if _, lo, hi, ok := ParseWallShardName(s.Name); ok {
			st.Reads += hi - lo
		}
		if s.Start < st.StartUS {
			st.StartUS = s.Start
		}
		if s.End() > st.EndUS {
			st.EndUS = s.End()
		}
	}
	workers = make([]WallWorkerStat, 0, len(byWorker))
	for _, st := range byWorker {
		workers = append(workers, *st)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].Worker < workers[j].Worker })
	return workers, others
}

// WallImbalance is the pool's load-imbalance ratio: the maximum worker
// busy time over the mean. 1.0 is a perfectly balanced pool; the ratio
// approaches the worker count when one straggler serializes the run.
// Zero when no worker recorded any busy time.
func WallImbalance(workers []WallWorkerStat) float64 {
	if len(workers) == 0 {
		return 0
	}
	var total, maxBusy int64
	for _, st := range workers {
		total += st.BusyUS
		if st.BusyUS > maxBusy {
			maxBusy = st.BusyUS
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(workers))
	return float64(maxBusy) / mean
}

// WallWindow returns the wall-clock window [min start, max end) covered
// by the spans, in microseconds. Zero for an empty stream.
func WallWindow(spans []WallSpan) int64 {
	if len(spans) == 0 {
		return 0
	}
	lo, hi := spans[0].Start, spans[0].End()
	for _, s := range spans[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End() > hi {
			hi = s.End()
		}
	}
	return hi - lo
}

// ParseChromeWall decodes a casa-walltrace/v1 Chrome trace_event
// document (as written by WriteChromeWall) back into its span stream and
// eviction count. Timestamps come back as exported — rebased onto the
// stream's earliest span — which is what the wall analyses operate on;
// durations round-trip exactly.
func ParseChromeWall(data []byte) ([]WallSpan, int64, error) {
	var doc struct {
		TraceEvents []chromeEvent       `json:"traceEvents"`
		OtherData   chromeWallOtherData `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, 0, fmt.Errorf("trace: wall chrome parse: %w", err)
	}
	if doc.OtherData.Schema != WallSchemaVersion {
		return nil, 0, fmt.Errorf("trace: wall chrome schema %q, want %q", doc.OtherData.Schema, WallSchemaVersion)
	}
	procOf := map[int]string{}
	trackOf := map[[2]int]string{}
	var spans []WallSpan
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Args == nil {
				continue
			}
			switch ev.Name {
			case "process_name":
				procOf[ev.Pid] = ev.Args.Name
			case "thread_name":
				trackOf[[2]int{ev.Pid, ev.Tid}] = ev.Args.Name
			}
		case "X":
			s := WallSpan{
				Proc:  procOf[ev.Pid],
				Track: trackOf[[2]int{ev.Pid, ev.Tid}],
				Name:  ev.Name,
				Start: ev.Ts,
			}
			if ev.Dur != nil {
				s.Dur = *ev.Dur
			}
			if s.Proc == "" || s.Track == "" {
				return nil, 0, fmt.Errorf("trace: wall event %q references pid %d / tid %d with no metadata", ev.Name, ev.Pid, ev.Tid)
			}
			spans = append(spans, s)
		}
	}
	return spans, doc.OtherData.Dropped, nil
}

// ParseWallFile reads a casa-walltrace/v1 Chrome JSON file.
func ParseWallFile(path string) ([]WallSpan, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return ParseChromeWall(data)
}

// WriteWallFile writes a wall span stream as a casa-walltrace/v1 Chrome
// JSON file — the file-sink counterpart of WriteChromeWall, what the
// CLIs' -walltrace flag produces.
func WriteWallFile(path string, spans []WallSpan, dropped int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeWall(f, spans, dropped); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
