package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the casa-trace/v1 mapping is
//
//   - one trace_event *process* per Proc (engine or pipeline system),
//   - one *thread* per Track (stage or partition),
//   - one complete ("X") event per span, with one modelled cycle
//     rendered as one microsecond (trace_event's ts/dur unit), so
//     Perfetto's time axis reads directly in cycles.
//
// Read spans carry read-local timestamps; the exporter serializes each
// process's reads onto its timeline back to back (read r starts where
// read r-1's timeline ended), which preserves every span's duration and
// intra-read structure while giving Perfetto a single non-overlapping
// waterfall per process. The read index is in every event's args.
//
// Output is deterministic: events are written in (Proc, Read, emission)
// order with sorted metadata up front, so identical span streams —
// guaranteed by the recorder across worker counts — produce identical
// bytes.

// chromeDoc is the top-level Chrome JSON object format.
type chromeDoc struct {
	TraceEvents []chromeEvent   `json:"traceEvents"`
	OtherData   chromeOtherData `json:"otherData"`
}

type chromeOtherData struct {
	Schema string `json:"schema"`
}

// chromeEvent is one trace_event entry. Args is a pointer to a fixed
// struct so field order (and therefore the output bytes) is stable.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  *int64      `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name   string `json:"name,omitempty"`   // metadata events
	Read   *int   `json:"read,omitempty"`   // read-scoped span events
	Cycles *int64 `json:"cycles,omitempty"` // cycle-domain span events
	RunID  string `json:"run_id,omitempty"` // wall-domain span events (wall.go)
}

// WriteChrome writes the span stream as Chrome trace_event JSON (object
// format), loadable in Perfetto and chrome://tracing. spans must be in
// the deterministic merged order Trace.Spans returns.
func WriteChrome(w io.Writer, spans []Span) error {
	doc := chromeDoc{
		TraceEvents: buildChromeEvents(spans),
		OtherData:   chromeOtherData{Schema: SchemaVersion},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func buildChromeEvents(spans []Span) []chromeEvent {
	// Assign pids to procs and tids to tracks, both in sorted order.
	procs := map[string]int{}
	tracks := map[string]map[string]int{}
	for _, s := range spans {
		if _, ok := procs[s.Proc]; !ok {
			procs[s.Proc] = 0
			tracks[s.Proc] = map[string]int{}
		}
		tracks[s.Proc][s.Track] = 0
	}
	procNames := sortedKeys(procs)
	for i, p := range procNames {
		procs[p] = i + 1
		trackNames := sortedKeys(tracks[p])
		for j, t := range trackNames {
			tracks[p][t] = j + 1
		}
	}

	// Per-process read base offsets: reads are laid out back to back in
	// index order, each occupying its read-local timeline length.
	base := map[string]map[int32]int64{}
	for _, p := range procNames {
		base[p] = map[int32]int64{}
	}
	ends := map[string]map[int32]int64{}
	for _, s := range spans {
		if s.Read == SystemRead {
			continue
		}
		if ends[s.Proc] == nil {
			ends[s.Proc] = map[int32]int64{}
		}
		if e := s.End(); e > ends[s.Proc][s.Read] {
			ends[s.Proc][s.Read] = e
		}
	}
	for p, perRead := range ends {
		reads := make([]int32, 0, len(perRead))
		for r := range perRead {
			reads = append(reads, r)
		}
		sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
		var cursor int64
		for _, r := range reads {
			base[p][r] = cursor
			cursor += perRead[r]
		}
	}

	events := make([]chromeEvent, 0, len(spans)+2*len(procNames))
	for _, p := range procNames {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: procs[p],
			Args: &chromeArgs{Name: p},
		})
		for _, t := range sortedKeys(tracks[p]) {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: procs[p], Tid: tracks[p][t],
				Args: &chromeArgs{Name: t},
			})
		}
	}
	for _, s := range spans {
		s := s
		ts := s.Start
		args := &chromeArgs{Cycles: &s.Dur}
		if s.Read != SystemRead {
			ts += base[s.Proc][s.Read]
			r := int(s.Read)
			args.Read = &r
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Track, Ph: "X", Ts: ts, Dur: &s.Dur,
			Pid: procs[s.Proc], Tid: tracks[s.Proc][s.Track], Args: args,
		})
	}
	return events
}

// ParseChrome decodes Chrome trace_event JSON written by WriteChrome back
// into a span stream. Timestamps come back absolute (the per-read base
// offsets stay baked in), which is what the casa-trace analyses operate
// on; Read and Dur round-trip exactly.
func ParseChrome(data []byte) ([]Span, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: chrome parse: %w", err)
	}
	if doc.OtherData.Schema != SchemaVersion {
		return nil, fmt.Errorf("trace: chrome schema %q, want %q", doc.OtherData.Schema, SchemaVersion)
	}
	procOf := map[int]string{}
	trackOf := map[[2]int]string{}
	var spans []Span
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Args == nil {
				continue
			}
			switch ev.Name {
			case "process_name":
				procOf[ev.Pid] = ev.Args.Name
			case "thread_name":
				trackOf[[2]int{ev.Pid, ev.Tid}] = ev.Args.Name
			}
		case "X":
			s := Span{
				Proc:  procOf[ev.Pid],
				Track: trackOf[[2]int{ev.Pid, ev.Tid}],
				Name:  ev.Name,
				Read:  SystemRead,
				Start: ev.Ts,
			}
			if ev.Dur != nil {
				s.Dur = *ev.Dur
			}
			if ev.Args != nil && ev.Args.Read != nil {
				s.Read = int32(*ev.Args.Read)
			}
			if s.Proc == "" || s.Track == "" {
				return nil, fmt.Errorf("trace: event %q references pid %d / tid %d with no metadata", ev.Name, ev.Pid, ev.Tid)
			}
			spans = append(spans, s)
		}
	}
	return spans, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
