package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Wall-clock span domain. The rest of this package records *modelled*
// time — deterministic cycle counts that must be byte-identical across
// runs and worker counts. A serving process additionally needs to see
// where *host* wall-clock time goes: how long a request waited in the
// queue, how long the pool actually ran, how long the response took to
// stream. Those numbers are nondeterministic by nature, so they live in
// their own types (WallSpan / WallTrace), their own schema
// (casa-walltrace/v1) and their own export entry point (WriteChromeWall):
// a wall span can never leak into a cycle-domain trace document, and the
// cycle-domain determinism tests never see a wall timestamp.

// WallSchemaVersion identifies the wall-clock Chrome export layout. It is
// deliberately distinct from SchemaVersion: the two domains must not be
// mistaken for one another by tooling.
const WallSchemaVersion = "casa-walltrace/v1"

// WallSpan is one wall-clock event: Dur microseconds of host time on a
// named track. Start is absolute (Unix microseconds); WriteChromeWall
// rebases the stream onto its earliest span, so exported traces start at
// ts 0 regardless of when the process booted.
type WallSpan struct {
	Proc  string // process-level group, e.g. "casa-serve"
	Track string // lifecycle stage: "received", "queued", "running", ...
	Name  string // span label: the run ID, so spans join logs and metrics
	Start int64  // absolute start, µs since the Unix epoch
	Dur   int64  // duration, µs, >= 0
}

// End returns Start+Dur.
func (s WallSpan) End() int64 { return s.Start + s.Dur }

// DefaultWallCapacity bounds a WallTrace's memory when the caller passes
// a non-positive capacity: at five lifecycle spans per served run, the
// default ring remembers the last ~13k runs.
const DefaultWallCapacity = 1 << 16

// WallTrace is a bounded, concurrency-safe recorder of wall-clock spans.
// Unlike the cycle-domain Trace/Buffer pair it is emitted into directly
// from HTTP handlers and the dispatcher — many goroutines, low rate — so
// a single mutex-guarded ring is the right shape. When the ring is full
// the oldest span is dropped (and counted); a long-lived server keeps
// the most recent runs, which are the ones an operator is debugging.
// A nil *WallTrace is a valid no-op sink.
type WallTrace struct {
	mu      sync.Mutex
	spans   []WallSpan // ring storage, len == capacity once wrapped
	next    int        // ring write cursor
	wrapped bool
	cap     int
	dropped int64
}

// NewWall returns a wall-clock recorder retaining at most capacity spans
// (non-positive means DefaultWallCapacity).
func NewWall(capacity int) *WallTrace {
	if capacity <= 0 {
		capacity = DefaultWallCapacity
	}
	return &WallTrace{cap: capacity}
}

// Record appends one span with the given start time and duration.
// Negative durations are clamped to zero (a clock step backwards is not
// an event worth inventing time for). No-op on a nil recorder.
func (t *WallTrace) Record(proc, track, name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	d := dur.Microseconds()
	if d < 0 {
		d = 0
	}
	t.AddSpan(WallSpan{Proc: proc, Track: track, Name: name, Start: start.UnixMicro(), Dur: d})
}

// AddSpan appends one already-built span, clamping a negative duration to
// zero — the bulk-ingest counterpart of Record, used when folding a
// per-run recorder into a long-lived ring (casa-serve nests each run's
// batch-layer shard spans under its lifecycle trace this way). No-op on a
// nil recorder.
func (t *WallTrace) AddSpan(s WallSpan) {
	if t == nil {
		return
	}
	if s.Dur < 0 {
		s.Dur = 0
	}
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, s)
	} else {
		t.spans[t.next] = s
		t.wrapped = true
	}
	t.next++
	if t.next == t.cap {
		t.next = 0
	}
	if t.wrapped {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of spans currently retained.
func (t *WallTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the ring has evicted so far.
func (t *WallTrace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans sorted by (Start, Proc,
// Track, Name) — chronological order with a deterministic tie-break, the
// order WriteChromeWall expects. Safe to call while recorders still emit.
func (t *WallTrace) Spans() []WallSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]WallSpan, 0, len(t.spans))
	if t.wrapped {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
	} else {
		out = append(out, t.spans...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	return out
}

// chromeWallDoc is the wall-domain Chrome JSON object: the same
// trace_event body as the cycle export, under its own schema marker plus
// the domain tag and the ring's eviction count, so a consumer can tell a
// wall trace from a cycle trace (and a truncated one from a complete one)
// without heuristics.
type chromeWallDoc struct {
	TraceEvents []chromeEvent       `json:"traceEvents"`
	OtherData   chromeWallOtherData `json:"otherData"`
}

type chromeWallOtherData struct {
	Schema  string `json:"schema"`
	Domain  string `json:"domain"`
	Spans   int    `json:"spans"`
	Dropped int64  `json:"dropped,omitempty"`
}

// WriteChromeWall writes a wall-clock span stream as Chrome trace_event
// JSON, loadable in Perfetto and chrome://tracing: one process per Proc,
// one thread per Track, one complete ("X") event per span with its run
// ID as the event name, timestamps rebased so the earliest span starts
// at ts 0 (trace_event ts/dur are microseconds, the spans' native unit —
// Perfetto's time axis reads directly in real time). dropped is the
// recorder's eviction count (WallTrace.Dropped). Output is deterministic
// for a given span stream.
func WriteChromeWall(w io.Writer, spans []WallSpan, dropped int64) error {
	procs := map[string]int{}
	tracks := map[string]map[string]int{}
	for _, s := range spans {
		if _, ok := procs[s.Proc]; !ok {
			procs[s.Proc] = 0
			tracks[s.Proc] = map[string]int{}
		}
		tracks[s.Proc][s.Track] = 0
	}
	procNames := sortedKeys(procs)
	for i, p := range procNames {
		procs[p] = i + 1
		for j, t := range sortedKeys(tracks[p]) {
			tracks[p][t] = j + 1
		}
	}

	var epoch int64
	for i, s := range spans {
		if i == 0 || s.Start < epoch {
			epoch = s.Start
		}
	}

	events := make([]chromeEvent, 0, len(spans)+2*len(procNames))
	for _, p := range procNames {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: procs[p],
			Args: &chromeArgs{Name: p},
		})
		for _, t := range sortedKeys(tracks[p]) {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: procs[p], Tid: tracks[p][t],
				Args: &chromeArgs{Name: t},
			})
		}
	}
	for _, s := range spans {
		s := s
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Track, Ph: "X", Ts: s.Start - epoch, Dur: &s.Dur,
			Pid: procs[s.Proc], Tid: tracks[s.Proc][s.Track],
			Args: &chromeArgs{RunID: s.Name},
		})
	}

	doc := chromeWallDoc{
		TraceEvents: events,
		OtherData:   chromeWallOtherData{Schema: WallSchemaVersion, Domain: "wall", Spans: len(spans), Dropped: dropped},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
