package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// wallAt builds a fixed absolute time for deterministic wall tests.
func wallAt(us int64) time.Time { return time.UnixMicro(1_700_000_000_000_000 + us) }

func TestWallTraceRecordAndOrder(t *testing.T) {
	w := NewWall(16)
	// Recorded out of chronological order: Spans must sort by start.
	w.Record("casa-serve", "running", "run-b", wallAt(500), 300*time.Microsecond)
	w.Record("casa-serve", "received", "run-a", wallAt(0), 100*time.Microsecond)
	w.Record("casa-serve", "queued", "run-a", wallAt(100), 400*time.Microsecond)

	spans := w.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	wantTracks := []string{"received", "queued", "running"}
	for i, s := range spans {
		if s.Track != wantTracks[i] {
			t.Fatalf("span %d on track %q, want %q", i, s.Track, wantTracks[i])
		}
	}
	if spans[0].Name != "run-a" || spans[0].Dur != 100 {
		t.Fatalf("first span %+v, want run-a / 100us", spans[0])
	}
	if spans[2].End()-spans[2].Start != 300 {
		t.Fatalf("running span duration %d, want 300", spans[2].Dur)
	}
	if w.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", w.Dropped())
	}
}

func TestWallTraceNegativeDurationClamped(t *testing.T) {
	w := NewWall(4)
	w.Record("p", "t", "n", wallAt(10), -5*time.Microsecond)
	spans := w.Spans()
	if len(spans) != 1 || spans[0].Dur != 0 {
		t.Fatalf("negative duration recorded as %+v, want Dur 0", spans)
	}
}

func TestWallTraceRingEviction(t *testing.T) {
	w := NewWall(3)
	for i := 0; i < 5; i++ {
		w.Record("p", "t", "n", wallAt(int64(i)), time.Microsecond)
	}
	if w.Len() != 3 {
		t.Fatalf("ring retains %d spans, want 3", w.Len())
	}
	if w.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", w.Dropped())
	}
	spans := w.Spans()
	// The two oldest spans (starts 0 and 1) were evicted.
	for i, s := range spans {
		if want := int64(i + 2); s.Start-wallAt(0).UnixMicro() != want {
			t.Fatalf("span %d starts at offset %d, want %d", i, s.Start-wallAt(0).UnixMicro(), want)
		}
	}
}

func TestWallTraceNilIsNoop(t *testing.T) {
	var w *WallTrace
	w.Record("p", "t", "n", wallAt(0), time.Second) // must not panic
	w.AddSpan(WallSpan{Proc: "p", Track: "t", Name: "n"})
	if w.Spans() != nil || w.Len() != 0 || w.Dropped() != 0 {
		t.Fatal("nil WallTrace is not a no-op sink")
	}
}

func TestWallTraceWraparoundOrdering(t *testing.T) {
	// Starts arrive out of chronological order and the ring wraps twice
	// over: Spans must still return the retained set sorted by start, and
	// retention must follow arrival order (oldest *recorded* evicted
	// first), not start order.
	w := NewWall(4)
	starts := []int64{50, 10, 90, 30, 70, 20, 80, 60, 40, 100}
	for _, us := range starts {
		w.Record("p", "t", "n", wallAt(us), time.Microsecond)
	}
	if w.Len() != 4 {
		t.Fatalf("ring retains %d spans, want 4", w.Len())
	}
	if w.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", w.Dropped())
	}
	spans := w.Spans()
	// The last four recorded were 80, 60, 40, 100 — sorted: 40, 60, 80, 100.
	want := []int64{40, 60, 80, 100}
	for i, s := range spans {
		if got := s.Start - wallAt(0).UnixMicro(); got != want[i] {
			t.Fatalf("span %d starts at offset %d, want %d", i, got, want[i])
		}
	}
}

func TestWallTraceConcurrentRecord(t *testing.T) {
	w := NewWall(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					w.Record("p", "t", "n", wallAt(int64(g*1000+i)), time.Microsecond)
				} else {
					w.AddSpan(WallSpan{Proc: "p", Track: "t", Name: "n",
						Start: wallAt(int64(g*1000 + i)).UnixMicro(), Dur: 1})
				}
				_ = w.Spans()
			}
		}(g)
	}
	wg.Wait()
	if w.Len() != 800 {
		t.Fatalf("retained %d spans, want 800", w.Len())
	}
}

func TestWriteChromeWall(t *testing.T) {
	w := NewWall(16)
	w.Record("casa-serve", "received", "aabbccdd", wallAt(1000), 50*time.Microsecond)
	w.Record("casa-serve", "queued", "aabbccdd", wallAt(1050), 200*time.Microsecond)
	w.Record("casa-serve", "running", "aabbccdd", wallAt(1250), 700*time.Microsecond)

	var buf bytes.Buffer
	if err := WriteChromeWall(&buf, w.Spans(), w.Dropped()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, WallSchemaVersion) {
		t.Fatalf("export lacks schema %q:\n%s", WallSchemaVersion, out)
	}
	if !strings.Contains(out, `"domain": "wall"`) {
		t.Fatalf("export lacks the wall domain marker:\n%s", out)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Args struct {
				Name  string `json:"name"`
				RunID string `json:"run_id"`
			} `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			Schema  string `json:"schema"`
			Domain  string `json:"domain"`
			Dropped int64  `json:"dropped"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export does not parse: %v", err)
	}
	if doc.OtherData.Schema != WallSchemaVersion || doc.OtherData.Domain != "wall" {
		t.Fatalf("otherData %+v", doc.OtherData)
	}
	var xEvents, metaEvents int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metaEvents++
		case "X":
			xEvents++
			if ev.Name != "aabbccdd" || ev.Args.RunID != "aabbccdd" {
				t.Fatalf("span event %+v does not carry the run ID", ev)
			}
		}
	}
	if xEvents != 3 {
		t.Fatalf("%d span events, want 3", xEvents)
	}
	// 1 process + 3 tracks.
	if metaEvents != 4 {
		t.Fatalf("%d metadata events, want 4", metaEvents)
	}
	// Timestamps are rebased onto the earliest span.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "received" && ev.Ts != 0 {
			t.Fatalf("earliest span at ts %d, want 0", ev.Ts)
		}
	}

	// Determinism: exporting the same stream twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := WriteChromeWall(&buf2, w.Spans(), w.Dropped()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("wall chrome export is not deterministic")
	}
}

func TestWriteChromeWallEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeWall(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), WallSchemaVersion) {
		t.Fatal("empty export lacks the schema marker")
	}
}
