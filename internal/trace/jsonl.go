package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// JSONL export: a compact line-per-span format for tooling that wants the
// raw cycle-domain spans without the Chrome envelope. The first line is a
// header object carrying the schema tag; every following line is one
// span with read-local timestamps exactly as recorded (no base offsets).

// jsonlHeader is the first line of a JSONL trace.
type jsonlHeader struct {
	Schema string `json:"schema"`
}

// jsonlSpan is one span line.
type jsonlSpan struct {
	Proc  string `json:"proc"`
	Track string `json:"track"`
	Name  string `json:"name"`
	Read  int32  `json:"read"`
	Start int64  `json:"start"`
	Dur   int64  `json:"dur"`
}

// WriteJSONL writes the span stream in the casa-trace/v1 JSONL framing.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Schema: SchemaVersion}); err != nil {
		return err
	}
	for _, s := range spans {
		if err := enc.Encode(jsonlSpan{
			Proc: s.Proc, Track: s.Track, Name: s.Name,
			Read: s.Read, Start: s.Start, Dur: s.Dur,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL decodes a casa-trace/v1 JSONL document.
func ParseJSONL(data []byte) ([]Span, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: jsonl header: %w", err)
	}
	if hdr.Schema != SchemaVersion {
		return nil, fmt.Errorf("trace: jsonl schema %q, want %q", hdr.Schema, SchemaVersion)
	}
	var spans []Span
	for {
		var line jsonlSpan
		if err := dec.Decode(&line); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl span %d: %w", len(spans), err)
		}
		spans = append(spans, Span{
			Proc: line.Proc, Track: line.Track, Name: line.Name,
			Read: line.Read, Start: line.Start, Dur: line.Dur,
		})
	}
}

// Parse decodes either casa-trace/v1 format, sniffing the framing: a
// Chrome document is one JSON object containing traceEvents, a JSONL
// document starts with the schema header line.
func Parse(data []byte) ([]Span, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if bytes.HasPrefix(trimmed, []byte("{")) {
		var probe struct {
			TraceEvents *json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(firstValue(trimmed), &probe); err == nil && probe.TraceEvents != nil {
			return ParseChrome(data)
		}
	}
	return ParseJSONL(data)
}

// WriteFile writes the span stream to path, picking the framing by
// extension: .jsonl gets the line-per-span format, anything else the
// Chrome trace_event JSON (Perfetto-loadable). This is the shared policy
// behind every CLI's -trace flag.
func WriteFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = WriteJSONL(f, spans)
	} else {
		err = WriteChrome(f, spans)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ParseFile reads and parses a trace file in either format.
func ParseFile(path string) ([]Span, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// firstValue returns the first complete JSON value of data (the whole
// document for Chrome traces, the header line for JSONL), so the format
// probe does not fail on trailing lines.
func firstValue(data []byte) []byte {
	dec := json.NewDecoder(bytes.NewReader(data))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return data
	}
	return raw
}
