package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func TestWallShardNameRoundTrip(t *testing.T) {
	for _, tc := range []struct{ shard, lo, hi int }{
		{0, 0, 1}, {3, 300, 400}, {17, 123456, 130000},
	} {
		name := WallShardName(tc.shard, tc.lo, tc.hi)
		shard, lo, hi, ok := ParseWallShardName(name)
		if !ok || shard != tc.shard || lo != tc.lo || hi != tc.hi {
			t.Fatalf("ParseWallShardName(%q) = (%d,%d,%d,%v), want (%d,%d,%d,true)",
				name, shard, lo, hi, ok, tc.shard, tc.lo, tc.hi)
		}
	}
	for _, bad := range []string{"", "reduce", "shard x reads", "received"} {
		if _, _, _, ok := ParseWallShardName(bad); ok {
			t.Fatalf("ParseWallShardName(%q) parsed, want reject", bad)
		}
	}
}

func TestWallWorkerProcRoundTrip(t *testing.T) {
	for _, w := range []int{0, 1, 7, 15, 99, 128} {
		proc := WallWorkerProc(w)
		got, ok := ParseWallWorkerProc(proc)
		if !ok || got != w {
			t.Fatalf("ParseWallWorkerProc(%q) = (%d,%v), want (%d,true)", proc, got, ok, w)
		}
	}
	for _, bad := range []string{"", "host", "casa-serve", "worker x", "worker -1"} {
		if _, ok := ParseWallWorkerProc(bad); ok {
			t.Fatalf("ParseWallWorkerProc(%q) parsed, want reject", bad)
		}
	}
}

// shardSpan builds one worker shard span for the analysis tests.
func shardSpan(worker, shard, lo, hi int, startUS, durUS int64) WallSpan {
	return WallSpan{
		Proc:  WallWorkerProc(worker),
		Track: "casa",
		Name:  WallShardName(shard, lo, hi),
		Start: startUS,
		Dur:   durUS,
	}
}

func TestWallWorkersUtilization(t *testing.T) {
	spans := []WallSpan{
		shardSpan(0, 0, 0, 100, 0, 50),
		shardSpan(1, 1, 100, 200, 0, 200),
		shardSpan(0, 2, 200, 300, 60, 40),
		{Proc: WallHostProc, Track: "casa", Name: "reduce", Start: 260, Dur: 10},
		{Proc: "casa-serve", Track: "running", Name: "r1", Start: 0, Dur: 270},
	}
	workers, others := WallWorkers(spans)
	if len(workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(workers))
	}
	w0, w1 := workers[0], workers[1]
	if w0.Worker != 0 || w0.Shards != 2 || w0.Reads != 200 || w0.BusyUS != 90 {
		t.Fatalf("worker 0 stat %+v, want 2 shards / 200 reads / 90us busy", w0)
	}
	if w0.StartUS != 0 || w0.EndUS != 100 {
		t.Fatalf("worker 0 window [%d,%d), want [0,100)", w0.StartUS, w0.EndUS)
	}
	if w1.Worker != 1 || w1.Shards != 1 || w1.Reads != 100 || w1.BusyUS != 200 {
		t.Fatalf("worker 1 stat %+v, want 1 shard / 100 reads / 200us busy", w1)
	}
	if len(others) != 2 {
		t.Fatalf("got %d non-worker spans, want 2", len(others))
	}

	// max busy 200 over mean (90+200)/2 = 145.
	imb := WallImbalance(workers)
	if want := 200.0 / 145.0; imb < want-1e-9 || imb > want+1e-9 {
		t.Fatalf("imbalance %.4f, want %.4f", imb, want)
	}
	if WallImbalance(nil) != 0 {
		t.Fatal("imbalance of an empty pool must be 0")
	}
	if got := WallWindow(spans); got != 270 {
		t.Fatalf("window %d, want 270", got)
	}
	if WallWindow(nil) != 0 {
		t.Fatal("window of an empty stream must be 0")
	}
}

func TestParseChromeWallRoundTrip(t *testing.T) {
	w := NewWall(16)
	w.Record("casa-serve", "received", "run-a", wallAt(1000), 50*time.Microsecond)
	w.Record(WallWorkerProc(0), "casa", WallShardName(0, 0, 100), wallAt(1100), 400*time.Microsecond)
	w.Record(WallWorkerProc(1), "casa", WallShardName(1, 100, 180), wallAt(1150), 300*time.Microsecond)
	w.Record(WallHostProc, "casa", "reduce", wallAt(1600), 20*time.Microsecond)

	var buf bytes.Buffer
	if err := WriteChromeWall(&buf, w.Spans(), 3); err != nil {
		t.Fatal(err)
	}
	spans, dropped, err := ParseChromeWall(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	if len(spans) != 4 {
		t.Fatalf("parsed %d spans, want 4", len(spans))
	}
	// Timestamps were rebased onto the earliest span; durations and
	// proc/track/name survive exactly, so the analysis still works.
	workers, others := WallWorkers(spans)
	if len(workers) != 2 || len(others) != 2 {
		t.Fatalf("round-trip split %d workers / %d others, want 2 / 2", len(workers), len(others))
	}
	if workers[0].Reads != 100 || workers[1].Reads != 80 {
		t.Fatalf("round-trip reads %d / %d, want 100 / 80", workers[0].Reads, workers[1].Reads)
	}
	if workers[0].BusyUS != 400 || workers[1].BusyUS != 300 {
		t.Fatalf("round-trip busy %d / %d, want 400 / 300", workers[0].BusyUS, workers[1].BusyUS)
	}

	if _, _, err := ParseChromeWall([]byte(`{"otherData":{"schema":"casa-trace/v1"}}`)); err == nil {
		t.Fatal("cycle-domain schema must be rejected by the wall parser")
	}
}

func TestWallFileRoundTrip(t *testing.T) {
	w := NewWall(8)
	w.Record(WallWorkerProc(0), "casa", WallShardName(0, 0, 10), wallAt(0), 100*time.Microsecond)
	path := filepath.Join(t.TempDir(), "wall.json")
	if err := WriteWallFile(path, w.Spans(), w.Dropped()); err != nil {
		t.Fatal(err)
	}
	spans, dropped, err := ParseWallFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || dropped != 0 {
		t.Fatalf("file round-trip: %d spans, %d dropped", len(spans), dropped)
	}
	if spans[0].Dur != 100 || spans[0].Name != WallShardName(0, 0, 10) {
		t.Fatalf("file round-trip span %+v", spans[0])
	}
}
