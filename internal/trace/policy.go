package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Policy selects which reads' spans survive the merge. System spans
// (Read == SystemRead) are never dropped.
//
// The three policies:
//
//	all        — every read (bounded only by the ring capacity)
//	head:N     — the first N reads of the batch (lowest read indices)
//	slowest:N  — the N reads with the longest modelled timelines
//
// slowest:N ranks a read by the end of its read-local timeline (the max
// Start+Dur over its spans, summed across processes when several engines
// traced the same batch), breaking ties toward the lower read index so
// the selection — like everything else in the trace — is deterministic.
type Policy struct {
	Kind string // "all", "head" or "slowest"
	N    int    // read budget for head/slowest; ignored for all
}

// PolicyAll keeps every read.
var PolicyAll = Policy{Kind: "all"}

// ParsePolicy parses a -trace-sample flag value: "all", "head:N" or
// "slowest:N" with N >= 1.
func ParsePolicy(s string) (Policy, error) {
	if s == "" || s == "all" {
		return PolicyAll, nil
	}
	kind, ns, ok := strings.Cut(s, ":")
	if ok && (kind == "head" || kind == "slowest") {
		n, err := strconv.Atoi(ns)
		if err == nil && n >= 1 {
			return Policy{Kind: kind, N: n}, nil
		}
	}
	return Policy{}, fmt.Errorf("trace: bad sampling policy %q (want all, head:N or slowest:N)", s)
}

// String formats the policy in ParsePolicy's syntax.
func (p Policy) String() string {
	if p.Kind == "" || p.Kind == "all" {
		return "all"
	}
	return fmt.Sprintf("%s:%d", p.Kind, p.N)
}

// apply filters a merged, sorted span stream down to the selected reads.
func (p Policy) apply(spans []Span) []Span {
	switch p.Kind {
	case "", "all":
		return spans
	case "head":
		return filterReads(spans, headReads(spans, p.N))
	case "slowest":
		return filterReads(spans, slowestReads(spans, p.N))
	default:
		return spans
	}
}

// headReads returns the set of the N lowest read indices present.
func headReads(spans []Span, n int) map[int32]bool {
	present := distinctReads(spans)
	sort.Slice(present, func(i, j int) bool { return present[i] < present[j] })
	if len(present) > n {
		present = present[:n]
	}
	return toSet(present)
}

// slowestReads returns the set of the N reads with the longest timelines.
func slowestReads(spans []Span, n int) map[int32]bool {
	ends := make(map[int32]int64)
	for _, s := range spans {
		if s.Read == SystemRead {
			continue
		}
		if e := s.End(); e > ends[s.Read] {
			ends[s.Read] = e
		}
	}
	reads := make([]int32, 0, len(ends))
	for r := range ends {
		reads = append(reads, r)
	}
	sort.Slice(reads, func(i, j int) bool {
		a, b := reads[i], reads[j]
		if ends[a] != ends[b] {
			return ends[a] > ends[b]
		}
		return a < b
	})
	if len(reads) > n {
		reads = reads[:n]
	}
	return toSet(reads)
}

func distinctReads(spans []Span) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, s := range spans {
		if s.Read != SystemRead && !seen[s.Read] {
			seen[s.Read] = true
			out = append(out, s.Read)
		}
	}
	return out
}

func toSet(reads []int32) map[int32]bool {
	set := make(map[int32]bool, len(reads))
	for _, r := range reads {
		set[r] = true
	}
	return set
}

// filterReads keeps system spans and the spans of the selected reads,
// preserving order.
func filterReads(spans []Span, keep map[int32]bool) []Span {
	out := spans[:0:0]
	for _, s := range spans {
		if s.Read == SystemRead || keep[s.Read] {
			out = append(out, s)
		}
	}
	return out
}
