package trace

import (
	"fmt"
	"sort"
)

// Validate checks the structural invariants every casa-trace/v1 span
// stream must satisfy, in either recorded (read-local) or exported
// (absolute) timestamps. All checks are scoped to one read's timeline on
// one track — (proc, track, read) — because in recorded streams every
// read's clock restarts at zero, and in exported streams the base offsets
// keep reads disjoint anyway:
//
//  1. durations are non-negative and starts are non-negative;
//  2. timestamps are monotonic: within a read's track timeline, spans
//     appear in non-decreasing start order;
//  3. spans nest: two spans on the same read's track timeline are either
//     disjoint or one contains the other — no partial overlap.
//
// It returns the first violation found, or nil.
func Validate(spans []Span) error {
	type key struct {
		proc, track string
		read        int32
	}
	lastStart := map[key]int64{}
	seen := map[key]bool{}
	byTrack := map[key][]Span{}
	for i, s := range spans {
		if s.Dur < 0 {
			return fmt.Errorf("span %d (%s/%s %q): negative duration %d", i, s.Proc, s.Track, s.Name, s.Dur)
		}
		if s.Start < 0 {
			return fmt.Errorf("span %d (%s/%s %q): negative start %d", i, s.Proc, s.Track, s.Name, s.Start)
		}
		k := key{s.Proc, s.Track, s.Read}
		if seen[k] && s.Start < lastStart[k] {
			return fmt.Errorf("span %d (%s/%s read %d %q): start %d regresses below %d on its track",
				i, s.Proc, s.Track, s.Read, s.Name, s.Start, lastStart[k])
		}
		seen[k] = true
		lastStart[k] = s.Start
		byTrack[k] = append(byTrack[k], s)
	}

	// Nest-or-disjoint per read-track timeline: sweep in (start, -dur)
	// order with a stack of enclosing span ends.
	for k, ts := range byTrack {
		sort.SliceStable(ts, func(i, j int) bool {
			if ts[i].Start != ts[j].Start {
				return ts[i].Start < ts[j].Start
			}
			return ts[i].Dur > ts[j].Dur
		})
		var stack []int64
		for _, s := range ts {
			for len(stack) > 0 && stack[len(stack)-1] <= s.Start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.End() > stack[len(stack)-1] {
				return fmt.Errorf("%s/%s read %d: span %q [%d,%d) partially overlaps an enclosing span ending at %d",
					k.proc, k.track, k.read, s.Name, s.Start, s.End(), stack[len(stack)-1])
			}
			stack = append(stack, s.End())
		}
	}
	return nil
}
