package trace

import (
	"bytes"
	"testing"
)

// emitRead records a two-span read timeline (a "work" span and a "tail"
// span) with a total duration derived from the read index.
func emitRead(b *Buffer, read int, total int64) {
	b.Emit(read, "seed", "fwd", 0, total/2)
	b.Emit(read, "seed", "rev", total/2, total-total/2)
}

func TestParsePolicy(t *testing.T) {
	good := map[string]Policy{
		"":           PolicyAll,
		"all":        PolicyAll,
		"head:10":    {Kind: "head", N: 10},
		"slowest:3":  {Kind: "slowest", N: 3},
		"slowest:#1": {}, // replaced below
	}
	delete(good, "slowest:#1")
	for in, want := range good {
		got, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"head", "head:", "head:0", "head:-1", "slowest:x", "tail:5"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q): want error", bad)
		}
	}
	if got := (Policy{Kind: "head", N: 7}).String(); got != "head:7" {
		t.Errorf("String() = %q", got)
	}
}

func TestSamplingPolicies(t *testing.T) {
	build := func(policy Policy) []Span {
		tr := New(policy, 0)
		b := tr.NewBuffer("eng")
		// Reads 0..9; read r's timeline is 100-10r cycles long, so the
		// slowest reads are the LOWEST indices (distinct from head order
		// only in ranking, so give read 7 an outlier timeline).
		for r := 0; r < 10; r++ {
			total := int64(100 - 10*r)
			if r == 7 {
				total = 1000
			}
			emitRead(b, r, total)
		}
		b.EmitSystem("io", "io", 0, 42)
		return tr.Spans()
	}

	reads := func(spans []Span) map[int32]bool {
		set := map[int32]bool{}
		for _, s := range spans {
			if s.Read != SystemRead {
				set[s.Read] = true
			}
		}
		return set
	}

	all := build(PolicyAll)
	if len(reads(all)) != 10 {
		t.Fatalf("all: got %d reads, want 10", len(reads(all)))
	}

	head := build(Policy{Kind: "head", N: 3})
	if got := reads(head); len(got) != 3 || !got[0] || !got[1] || !got[2] {
		t.Fatalf("head:3 selected %v", got)
	}

	slow := build(Policy{Kind: "slowest", N: 3})
	// Slowest three timelines: read 7 (1000), read 0 (100), read 1 (90).
	if got := reads(slow); len(got) != 3 || !got[7] || !got[0] || !got[1] {
		t.Fatalf("slowest:3 selected %v", got)
	}

	// System spans survive every policy.
	for name, spans := range map[string][]Span{"head": head, "slowest": slow} {
		found := false
		for _, s := range spans {
			if s.Read == SystemRead {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: system span dropped", name)
		}
	}
}

func TestRingEvictsOldestWholeReads(t *testing.T) {
	tr := New(PolicyAll, 5) // room for two 2-span reads + 1 system span
	b := tr.NewBuffer("eng")
	b.EmitSystem("io", "io", 0, 1)
	for r := 0; r < 4; r++ {
		emitRead(b, r, 10)
	}
	spans := tr.Spans()
	if len(spans) > 5 {
		t.Fatalf("ring kept %d spans, capacity 5", len(spans))
	}
	got := map[int32]int{}
	for _, s := range spans {
		got[s.Read]++
	}
	if got[SystemRead] != 1 {
		t.Fatalf("system span evicted: %v", got)
	}
	// The newest reads survive whole; the oldest are gone entirely.
	if got[0] != 0 || got[1] != 0 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("eviction not whole-read oldest-first: %v", got)
	}
}

func TestNilTraceAndBufferAreNoOps(t *testing.T) {
	var tr *Trace
	b := tr.NewBuffer("eng")
	if b != nil {
		t.Fatal("nil Trace must hand out nil buffers")
	}
	b.Emit(0, "seed", "fwd", 0, 10) // must not panic
	b.EmitSystem("io", "io", 0, 1)
	if b.Len() != 0 {
		t.Fatal("nil buffer reported spans")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil Trace.Spans() = %v", got)
	}
}

func TestMergeDeterministicAcrossSharding(t *testing.T) {
	// The same 20 reads recorded through 1, 4 and 16 buffers (contiguous
	// shards) must merge to identical streams and identical export bytes.
	record := func(buffers int) *Trace {
		tr := New(PolicyAll, 0)
		bs := make([]*Buffer, buffers)
		for i := range bs {
			bs[i] = tr.NewBuffer("eng")
		}
		per := (20 + buffers - 1) / buffers
		for r := 0; r < 20; r++ {
			emitRead(bs[min(r/per, buffers-1)], r, int64(50+r))
		}
		return tr
	}
	chrome := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if err := WriteChrome(&buf, tr.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := chrome(record(1))
	for _, n := range []int{4, 16} {
		if got := chrome(record(n)); !bytes.Equal(got, want) {
			t.Errorf("%d buffers: chrome bytes differ from sequential", n)
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := New(PolicyAll, 0)
	b := tr.NewBuffer("casa")
	b.Emit(0, "exact", "p00", 0, 10)
	b.Emit(0, "exact", "exact", 0, 10)
	b.Emit(0, "smem", "p00", 10, 30)
	b.Emit(1, "exact", "p00", 0, 5)
	p := tr.NewBuffer("pipeline:CASA+SeedEx")
	p.EmitSystem("io", "io", 0, 100)
	p.EmitSystem("seeding", "seeding", 100, 400)

	spans := tr.Spans()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	back, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip: %d spans, want %d", len(back), len(spans))
	}
	// Durations, names, tracks, procs and read keys survive exactly;
	// read-span timestamps come back with base offsets applied.
	for i := range back {
		if back[i].Proc != spans[i].Proc || back[i].Track != spans[i].Track ||
			back[i].Name != spans[i].Name || back[i].Read != spans[i].Read ||
			back[i].Dur != spans[i].Dur {
			t.Fatalf("span %d: %+v != %+v", i, back[i], spans[i])
		}
	}
	// Read 1 is offset past read 0's 40-cycle timeline.
	if back[3].Start != 40 {
		t.Fatalf("read 1 base offset = %d, want 40", back[3].Start)
	}
	if err := Validate(back); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTripAndSniff(t *testing.T) {
	tr := New(PolicyAll, 0)
	b := tr.NewBuffer("eng")
	emitRead(b, 0, 10)
	b.EmitSystem("io", "io", 0, 3)
	spans := tr.Spans()

	var jl, ch bytes.Buffer
	if err := WriteJSONL(&jl, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&ch, spans); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"jsonl": jl.Bytes(), "chrome": ch.Bytes()} {
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back) != len(spans) {
			t.Fatalf("%s: %d spans, want %d", name, len(back), len(spans))
		}
	}
	if _, err := Parse([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	ok := []Span{
		{Proc: "e", Track: "t", Name: "parent", Start: 0, Dur: 10},
		{Proc: "e", Track: "t", Name: "child", Start: 0, Dur: 4},
		{Proc: "e", Track: "t", Name: "child", Start: 4, Dur: 6},
		{Proc: "e", Track: "t", Name: "next", Start: 10, Dur: 1},
	}
	if err := Validate(ok); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	bad := [][]Span{
		{{Proc: "e", Track: "t", Start: 0, Dur: -1}},                                           // negative dur
		{{Proc: "e", Track: "t", Start: -2, Dur: 1}},                                           // negative start
		{{Proc: "e", Track: "t", Start: 5, Dur: 1}, {Proc: "e", Track: "t", Start: 2, Dur: 1}}, // regression
		{{Proc: "e", Track: "t", Start: 0, Dur: 5}, {Proc: "e", Track: "t", Start: 3, Dur: 5}}, // partial overlap
	}
	for i, spans := range bad {
		if err := Validate(spans); err == nil {
			t.Errorf("bad stream %d accepted", i)
		}
	}
}
