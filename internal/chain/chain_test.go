package chain

import (
	"math/rand"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultOptions()
	bad.MaxGap = 0
	if bad.Validate() == nil {
		t.Error("zero gap accepted")
	}
	bad = DefaultOptions()
	bad.GapCostDen = 0
	if bad.Validate() == nil {
		t.Error("zero denominator accepted")
	}
}

func TestBestEmpty(t *testing.T) {
	c, err := Best(nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors) != 0 || c.Score != 0 {
		t.Errorf("empty input chain = %+v", c)
	}
}

func TestBestSingleAnchor(t *testing.T) {
	c, err := Best([]Anchor{{Q: 10, R: 100, Len: 25}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 25 || len(c.Anchors) != 1 {
		t.Errorf("single-anchor chain = %+v", c)
	}
	qs, qe := c.QSpan()
	rs, re := c.RSpan()
	if qs != 10 || qe != 35 || rs != 100 || re != 125 {
		t.Errorf("spans = q[%d,%d) r[%d,%d)", qs, qe, rs, re)
	}
}

func TestBestChainsCollinearAnchors(t *testing.T) {
	// Three collinear anchors on one diagonal plus one far-away decoy.
	anchors := []Anchor{
		{Q: 0, R: 1000, Len: 20},
		{Q: 30, R: 1030, Len: 20},
		{Q: 60, R: 1060, Len: 20},
		{Q: 10, R: 90000, Len: 25}, // decoy: longer but alone
	}
	c, err := Best(anchors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors) != 3 {
		t.Fatalf("chained %d anchors, want 3: %+v", len(c.Anchors), c)
	}
	if c.Score != 60 {
		t.Errorf("score = %d, want 60 (no gaps on the diagonal)", c.Score)
	}
	for i := 1; i < len(c.Anchors); i++ {
		if c.Anchors[i].Q <= c.Anchors[i-1].Q || c.Anchors[i].R <= c.Anchors[i-1].R {
			t.Fatalf("chain not increasing: %+v", c.Anchors)
		}
	}
}

func TestBestPenalizesGaps(t *testing.T) {
	// A 20-base diagonal shift costs 20*1/2 = 10: linking still wins.
	anchors := []Anchor{
		{Q: 0, R: 0, Len: 30},
		{Q: 40, R: 60, Len: 30},
	}
	c, err := Best(anchors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 30+30-10 {
		t.Errorf("score = %d, want 50", c.Score)
	}
	// A 100-base shift costs 50 > the 30 gained: the DP must prefer the
	// single anchor over a losing link.
	worse := []Anchor{
		{Q: 0, R: 0, Len: 30},
		{Q: 40, R: 140, Len: 30},
	}
	c, err = Best(worse, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 30 || len(c.Anchors) != 1 {
		t.Errorf("losing link accepted: %+v", c)
	}
}

func TestBestRespectsMaxGap(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxGap = 50
	anchors := []Anchor{
		{Q: 0, R: 0, Len: 30},
		{Q: 10, R: 500, Len: 30}, // 490-base diagonal jump: unlinkable
	}
	c, err := Best(anchors, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors) != 1 {
		t.Errorf("gap-violating anchors chained: %+v", c)
	}
}

func TestBestHandlesOverlap(t *testing.T) {
	// Overlapping anchors on one diagonal: the second contributes only
	// its non-overlapping tail.
	anchors := []Anchor{
		{Q: 0, R: 0, Len: 30},
		{Q: 10, R: 10, Len: 30}, // 20 bases overlap
	}
	c, err := Best(anchors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 40 {
		t.Errorf("score = %d, want 40 (30 + 10 new)", c.Score)
	}
}

func TestBestFindsPlantedChainInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var anchors []Anchor
	// Planted chain: 8 anchors along diagonal 5000.
	for i := 0; i < 8; i++ {
		q := int32(i * 120)
		anchors = append(anchors, Anchor{Q: q, R: q + 5000, Len: 40})
	}
	// Noise: 200 random anchors.
	for i := 0; i < 200; i++ {
		anchors = append(anchors, Anchor{
			Q:   int32(rng.Intn(1000)),
			R:   int32(rng.Intn(1 << 20)),
			Len: int32(15 + rng.Intn(20)),
		})
	}
	rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
	c, err := Best(anchors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors) < 8 {
		t.Fatalf("planted chain not recovered: %d anchors, score %d", len(c.Anchors), c.Score)
	}
	onDiag := 0
	for _, a := range c.Anchors {
		if a.Diagonal() == 5000 {
			onDiag++
		}
	}
	if onDiag < 8 {
		t.Errorf("only %d planted anchors in the best chain", onDiag)
	}
}

func TestBestCapsAnchors(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxAnchors = 10
	var anchors []Anchor
	for i := 0; i < 100; i++ {
		anchors = append(anchors, Anchor{Q: int32(i), R: int32(i * 7), Len: int32(10 + i%5)})
	}
	c, err := Best(anchors, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors) > 10 {
		t.Errorf("cap ignored: %d anchors", len(c.Anchors))
	}
}

func TestBestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var anchors []Anchor
	for i := 0; i < 150; i++ {
		anchors = append(anchors, Anchor{
			Q: int32(rng.Intn(500)), R: int32(rng.Intn(5000)), Len: int32(10 + rng.Intn(30)),
		})
	}
	a, _ := Best(anchors, DefaultOptions())
	rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
	b, _ := Best(anchors, DefaultOptions())
	if a.Score != b.Score || len(a.Anchors) != len(b.Anchors) {
		t.Errorf("chaining depends on input order: %d/%d vs %d/%d",
			a.Score, len(a.Anchors), b.Score, len(b.Anchors))
	}
}
