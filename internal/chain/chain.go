// Package chain implements collinear seed chaining: given exact-match
// anchors between a read and the reference (SMEMs with their hit
// positions), find the highest-scoring subset that is consistent with one
// alignment — increasing in both read and reference coordinates, with
// bounded gaps. This is the "chaining" step of Fig 14's seed-extension
// preprocessing (done on the CPU for ERT, folded into the accelerator for
// CASA/GenAx) and the anchor-chaining core of long-read alignment, one of
// the §9 extension domains.
//
// The algorithm is the classic O(n^2) chaining DP (as in minimap2 with a
// linear gap cost): anchors sorted by reference position, each anchor's
// best chain score extends the best compatible predecessor.
package chain

import (
	"fmt"
	"sort"
)

// Anchor is one exact match: read[Q : Q+Len) == ref[R : R+Len).
type Anchor struct {
	Q   int32 // read position
	R   int32 // reference position
	Len int32
}

// Diagonal returns R - Q, the anchor's alignment diagonal.
func (a Anchor) Diagonal() int32 { return a.R - a.Q }

// Options tunes the chaining DP.
type Options struct {
	// MaxGap is the largest allowed gap (in read or reference bases)
	// between consecutive anchors in a chain.
	MaxGap int32
	// GapCostNum/GapCostDen scale the penalty per gap base
	// (num/den per base; integer arithmetic keeps scores exact).
	GapCostNum int32
	GapCostDen int32
	// MaxAnchors caps the DP input (largest-first selection) so
	// pathological repeat pileups stay bounded.
	MaxAnchors int
}

// DefaultOptions returns chaining parameters suited to short and long
// reads alike: gaps to 5 kb, 1/2 penalty per gap base.
func DefaultOptions() Options {
	return Options{MaxGap: 5000, GapCostNum: 1, GapCostDen: 2, MaxAnchors: 5000}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.MaxGap <= 0 || o.GapCostDen <= 0 || o.GapCostNum < 0 || o.MaxAnchors <= 0 {
		return fmt.Errorf("chain: invalid options %+v", o)
	}
	return nil
}

// Chain is one scored collinear chain.
type Chain struct {
	Anchors []Anchor // in read/reference order
	Score   int32    // matched bases minus gap costs
}

// QSpan returns the read interval [start, end) covered by the chain.
func (c Chain) QSpan() (int32, int32) {
	if len(c.Anchors) == 0 {
		return 0, 0
	}
	first, last := c.Anchors[0], c.Anchors[len(c.Anchors)-1]
	return first.Q, last.Q + last.Len
}

// RSpan returns the reference interval [start, end) covered by the chain.
func (c Chain) RSpan() (int32, int32) {
	if len(c.Anchors) == 0 {
		return 0, 0
	}
	first, last := c.Anchors[0], c.Anchors[len(c.Anchors)-1]
	return first.R, last.R + last.Len
}

// Best returns the maximum-scoring chain over the anchors (empty chain
// for no anchors). Deterministic: ties break toward the smaller
// reference coordinate.
func Best(anchors []Anchor, opt Options) (Chain, error) {
	if err := opt.Validate(); err != nil {
		return Chain{}, err
	}
	if len(anchors) == 0 {
		return Chain{}, nil
	}
	as := append([]Anchor(nil), anchors...)
	if len(as) > opt.MaxAnchors {
		// Keep the longest anchors: they carry the most evidence.
		sort.Slice(as, func(i, j int) bool { return as[i].Len > as[j].Len })
		as = as[:opt.MaxAnchors]
	}
	sort.Slice(as, func(i, j int) bool {
		if as[i].R != as[j].R {
			return as[i].R < as[j].R
		}
		return as[i].Q < as[j].Q
	})

	score := make([]int32, len(as))
	prev := make([]int, len(as))
	bestIdx := 0
	for i := range as {
		score[i] = as[i].Len
		prev[i] = -1
		for j := i - 1; j >= 0; j-- {
			s, ok := link(as[j], as[i], opt)
			if !ok {
				continue
			}
			if cand := score[j] + s; cand > score[i] {
				score[i] = cand
				prev[i] = j
			}
		}
		if score[i] > score[bestIdx] {
			bestIdx = i
		}
	}

	var out []Anchor
	for i := bestIdx; i >= 0; i = prev[i] {
		out = append(out, as[i])
	}
	// Reverse into read order.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return Chain{Anchors: out, Score: score[bestIdx]}, nil
}

// link scores appending b after a: the gained matched bases (b.Len,
// clipped for overlap) minus the gap cost; ok is false when the pair is
// not collinear within the gap bound.
func link(a, b Anchor, opt Options) (int32, bool) {
	dq := b.Q - a.Q
	dr := b.R - a.R
	if dq <= 0 || dr <= 0 {
		return 0, false // must advance in both coordinates
	}
	gap := dq - dr
	if gap < 0 {
		gap = -gap
	}
	if gap > opt.MaxGap {
		return 0, false
	}
	span := min(dq, dr)
	if span > opt.MaxGap {
		return 0, false
	}
	gain := b.Len
	// Overlap on the read or reference shrinks the new contribution.
	if overlap := a.Len - min(dq, dr); overlap > 0 {
		gain -= overlap
		if gain <= 0 {
			return 0, false
		}
	}
	cost := gap * opt.GapCostNum / opt.GapCostDen
	return gain - cost, true
}
