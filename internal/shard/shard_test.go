package shard_test

import (
	"bytes"
	"strings"
	"testing"

	"casa/internal/batch"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/readsim"
	"casa/internal/shard"
	"casa/internal/smem"
	"casa/internal/trace"
)

func testWorkload(t *testing.T, refLen, reads int) (dna.Sequence, []dna.Sequence) {
	t.Helper()
	ref := readsim.GenerateReference(readsim.DefaultGenome(refLen, 11))
	rs := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(reads, 13)))
	return ref, rs
}

func seedAll(t *testing.T, e engine.Engine, reads []dna.Sequence) [][]smem.Match {
	t.Helper()
	c := e.Clone()
	act := c.SeedTrace(reads, nil, 0)
	return c.SMEMs(c.Reduce(reads, []engine.Activity{act}))
}

// TestShardedMatchesFlat pins the acceptance criterion: for every
// engine, the sharded composite's per-read SMEM sets are bit-identical
// to the flat engine's at shard counts 1, 2 and 5 (Exact mode, where
// the inner engines' outputs are defined to be the exact SMEM sets).
func TestShardedMatchesFlat(t *testing.T) {
	ref, reads := testWorkload(t, 1<<14, 24)
	for _, f := range engine.List() {
		if f.Golden || len(f.Name) >= 8 && f.Name[:8] == "sharded:" {
			continue
		}
		opt := engine.Options{MinSMEM: 19, TableK: 8, Exact: true}
		flat, err := engine.New(f.Name, ref, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		want := seedAll(t, flat, reads)
		for _, shards := range []int{1, 2, 5} {
			sopt := opt
			sopt.Shards = shards
			sharded, err := engine.New("sharded:"+f.Name, ref, sopt)
			if err != nil {
				t.Fatalf("sharded:%s shards=%d: %v", f.Name, shards, err)
			}
			got := seedAll(t, sharded, reads)
			for i := range reads {
				if !smem.Equal(want[i], got[i]) {
					t.Fatalf("sharded:%s shards=%d read %d:\nflat    %v\nsharded %v",
						f.Name, shards, i, want[i], got[i])
				}
			}
		}
	}
}

// TestShardedWorkerCounts drives the sharded engines through the batch
// pool at worker counts 1, 4 and 16 and requires bit-identical results
// each time (the pool's determinism contract must survive composition).
func TestShardedWorkerCounts(t *testing.T) {
	ref, reads := testWorkload(t, 1<<14, 32)
	for _, name := range []string{"sharded:casa", "sharded:cpu", "sharded:fmindex"} {
		e, err := engine.New(name, ref, engine.Options{MinSMEM: 19, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]smem.Match
		for _, workers := range []int{1, 4, 16} {
			res := batch.SeedEngine(e, reads, batch.Options{Workers: workers, Grain: 4})
			got := e.SMEMs(res)
			if want == nil {
				want = got
				continue
			}
			for i := range reads {
				if !smem.Equal(want[i], got[i]) {
					t.Fatalf("%s workers=%d read %d: results differ", name, workers, i)
				}
			}
		}
	}
}

// TestShardedSeedReadIntoMatchesReduce requires the per-read hot path
// and the batch Reduce path to merge identically.
func TestShardedSeedReadIntoMatchesReduce(t *testing.T) {
	ref, reads := testWorkload(t, 1<<14, 16)
	for _, name := range []string{"sharded:casa", "sharded:cpu", "sharded:fmindex"} {
		e, err := engine.New(name, ref, engine.Options{MinSMEM: 19, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		rs, ok := e.Clone().(engine.ReadSeeder)
		if !ok {
			t.Fatalf("%s: no ReadSeeder", name)
		}
		want := seedAll(t, e, reads)
		var seeds engine.Seeds
		for i, read := range reads {
			if !rs.SeedReadInto(&seeds, read) {
				t.Fatalf("%s: SeedReadInto refused", name)
			}
			if !smem.Equal(want[i], seeds.Forward) {
				t.Fatalf("%s read %d:\nreduce %v\nhot    %v", name, i, want[i], seeds.Forward)
			}
		}
	}
}

// The brute-backed composite must refuse the hot path (brute allocates
// by design) without touching dst.
func TestShardedSeedReadIntoRefusal(t *testing.T) {
	ref, reads := testWorkload(t, 1<<12, 2)
	e, err := engine.New("sharded:brute", ref, engine.Options{MinSMEM: 19})
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := e.(engine.ReadSeeder)
	if !ok {
		t.Fatal("sharded engines expose ReadSeeder unconditionally")
	}
	seeds := engine.Seeds{Forward: []smem.Match{{Start: 1, End: 2, Hits: 3}}}
	if rs.SeedReadInto(&seeds, reads[0]) {
		t.Fatal("sharded:brute accepted the hot path")
	}
	if len(seeds.Forward) != 1 || seeds.Forward[0].Hits != 3 {
		t.Fatal("refusal mutated dst")
	}
}

// TestShardedIndexRoundTrip pins persistence through the composite:
// save a sharded index, load it, and require identical SMEMs — without
// the reference in reach of the loaded instance.
func TestShardedIndexRoundTrip(t *testing.T) {
	ref, reads := testWorkload(t, 1<<14, 12)
	for _, name := range []string{"sharded:casa", "sharded:cpu", "sharded:fmindex"} {
		opt := engine.Options{MinSMEM: 19, Shards: 3}
		built, err := engine.New(name, ref, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := engine.SaveIndex(&buf, built, opt, nil); err != nil {
			t.Fatalf("%s: SaveIndex: %v", name, err)
		}
		loaded, hdr, err := engine.LoadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: LoadIndex: %v", name, err)
		}
		if hdr.Engine != name || hdr.Shards != 3 {
			t.Fatalf("%s: header %+v", name, hdr)
		}
		if loaded.(*shard.Sharded).Shards() != built.(*shard.Sharded).Shards() {
			t.Fatalf("%s: shard count changed across the round trip", name)
		}
		want := seedAll(t, built, reads)
		got := seedAll(t, loaded, reads)
		for i := range reads {
			if !smem.Equal(want[i], got[i]) {
				t.Fatalf("%s read %d: loaded index disagrees", name, i)
			}
		}
	}
}

// TestGeometryInvariants checks the shard layout directly: full
// coverage, pairwise-only overlap, and windows bounded by the overlap.
func TestGeometryInvariants(t *testing.T) {
	for _, tc := range []struct{ n, shards, overlap int }{
		{0, 2, 512}, {1, 2, 512}, {100, 5, 512}, {1 << 14, 5, 512},
		{1 << 14, 1, 512}, {1 << 16, 7, 100}, {1000, 100, 16}, {513, 2, 512},
	} {
		ref := make(dna.Sequence, tc.n)
		e, err := engine.New("sharded:fmindex", ref, engine.Options{
			MinSMEM: 19, Shards: tc.shards, ShardOverlap: tc.overlap,
		})
		if tc.n == 0 {
			// Engines reject empty references flat and sharded alike;
			// either outcome just must not panic.
			continue
		}
		if err != nil {
			t.Fatalf("n=%d shards=%d overlap=%d: %v", tc.n, tc.shards, tc.overlap, err)
		}
		s := e.(*shard.Sharded)
		if got := s.Shards(); got < 1 || got > max(tc.shards, 1) {
			t.Errorf("n=%d shards=%d: built %d shards", tc.n, tc.shards, got)
		}
	}
}

// TestShardedTraceSpans checks the composite's own spans validate and
// carry the shard geometry in their names.
func TestShardedTraceSpans(t *testing.T) {
	ref, reads := testWorkload(t, 1<<13, 4)
	e, err := engine.New("sharded:fmindex", ref, engine.Options{MinSMEM: 19, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.PolicyAll, 0)
	res := batch.SeedEngine(e, reads, batch.Options{Workers: 2, Grain: 2, Trace: tr})
	if got := e.SMEMs(res); len(got) != len(reads) {
		t.Fatalf("%d results", len(got))
	}
	spans := tr.Spans()
	if err := trace.Validate(spans); err != nil {
		t.Fatalf("spans do not validate: %v", err)
	}
	var shardSpans int
	for _, sp := range spans {
		if sp.Track == "shard" {
			shardSpans++
			if !strings.Contains(sp.Name, "shard ") || !strings.Contains(sp.Name, "[") {
				t.Fatalf("span name %q does not carry the geometry", sp.Name)
			}
		}
	}
	if want := len(reads) * e.(*shard.Sharded).Shards(); shardSpans != want {
		t.Fatalf("%d shard spans, want %d", shardSpans, want)
	}
}
