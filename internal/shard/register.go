package shard

import (
	"casa/internal/dna"
	"casa/internal/engine"
)

// init registers one "sharded:<name>" composite per engine already in
// the registry, so the batch pool, benchmarks, conformance tests, fuzz
// harnesses and CLIs pick them up with zero per-engine switches. The
// built-in engines register in package engine's own init, which Go
// runs before this one (engine is an import of this package).
func init() {
	for _, f := range engine.List() {
		engine.Register(shardedFactory(f))
	}
}

// shardedFactory derives the composite's factory from the inner
// engine's: golden-ness propagates (sharded:brute is still an oracle,
// and still too slow to benchmark), persistence is offered exactly when
// the inner engine persists.
func shardedFactory(inner engine.Factory) engine.Factory {
	f := engine.Factory{
		Name:        "sharded:" + inner.Name,
		Description: "sharded composite over " + inner.Name + " (overlapping reference shards, merged SMEMs)",
		Golden:      inner.Golden,
		New: func(ref dna.Sequence, opt engine.Options) (engine.Engine, error) {
			return newSharded(inner, ref, opt)
		},
	}
	for _, a := range inner.Aliases {
		f.Aliases = append(f.Aliases, "sharded:"+a)
	}
	if inner.NewEmpty != nil {
		f.NewEmpty = func(opt engine.Options) (engine.Engine, error) {
			return &Sharded{name: "sharded:" + inner.Name, factory: inner, opt: opt}, nil
		}
	}
	return f
}
