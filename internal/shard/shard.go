// Package shard composes any registered seeding engine into a sharded
// engine over a partitioned reference: the flat reference is split into
// overlapping shards, one inner engine (index) is built — or loaded —
// per shard, every read is seeded against every shard, and the per-read
// SMEM sets are merged back into the flat engine's answer.
//
// This is the ROADMAP's genome-scale rung: a reference too large to
// index in one piece is handled as independently built (and
// independently persistable) shards, in the BioSEAL/PRinS spirit of
// processing each partition where it lives. The paper's own accelerator
// partitions internally for capacity (§4.1); sharding lifts the same
// idea above the engine abstraction so every engine gets it.
//
// # Geometry
//
// For n reference bases, S requested shards and overlap V, shard i
// covers [i*step, min(i*step+step+V, n)) with step = max(ceil(n/S), V).
// Forcing step >= V guarantees adjacent shards overlap by at most V and
// non-adjacent shards are disjoint (no base is covered three times), so
// the intersection windows W_i = shard_i ∩ shard_{i+1} have length <= V
// and tile at most pairwise.
//
// # Correctness contract
//
// Sharding is lossless when V is at least the longest read seeded:
// every read interval (length <= read length <= V) then occurs fully
// inside at least one shard, so
//
//   - a globally supermaximal match is reported as a shard-local SMEM
//     by every shard containing one of its occurrences (its one-base
//     extensions occur nowhere globally, hence nowhere in any shard),
//   - a shard-local SMEM that is not globally supermaximal is strictly
//     contained in some globally supermaximal interval, which some
//     shard reports — so a containment filter over the union removes
//     exactly the non-global candidates, and
//   - summing per-shard hit counts double-counts exactly the
//     occurrences lying fully inside an intersection window, each seen
//     by the two adjacent shards; subtracting one direct occurrence
//     count per window restores the flat total.
//
// The merge therefore equals the flat engine's SMEM set whenever the
// inner engine reports exact SMEM sets (Options.Exact, or the exact
// engines); the registry conformance suite and FuzzSMEMEnginesAgree
// pin sharded-vs-flat equality across shard counts and worker counts.
package shard

import (
	"encoding/binary"
	"fmt"
	"io"

	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/metrics"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Defaults for Options.Shards and Options.ShardOverlap. The overlap
// default comfortably exceeds short-read lengths; long-read workloads
// must raise it to their read length.
const (
	DefaultShards  = 2
	DefaultOverlap = 512
)

// Sharded seeds reads against per-shard inner engines and merges the
// results; it implements every optional engine capability by forwarding
// to the inners (reporting zero work where an inner lacks the
// capability, mirroring how the flat harnesses probe dynamically).
type Sharded struct {
	name    string
	factory engine.Factory // the inner engine's factory
	opt     engine.Options // construction options, applied per shard

	// Read-only after construction, shared across clones.
	overlap  int
	starts   []int64
	lens     []int64
	windows  []dna.Sequence // shard-intersection contents, len = shards-1
	winStart []int64
	names    []string // per-shard trace span names

	inners []engine.Engine

	// Per-clone scratch for the allocation-free per-read path.
	seeders []engine.ReadSeeder
	scratch engine.Seeds
	candF   []smem.Match
	candR   []smem.Match
	rc      dna.Sequence
}

// geometry computes shard start/length pairs for n bases.
func geometry(n, shards, overlap int) (starts, lens []int64, V int) {
	S := shards
	if S <= 0 {
		S = DefaultShards
	}
	V = overlap
	if V <= 0 {
		V = DefaultOverlap
	}
	step := (n + S - 1) / S
	if step < V {
		step = V
	}
	if step < 1 {
		step = 1 // n == 0: a single empty shard
	}
	S = (n + step - 1) / step
	if S < 1 {
		S = 1
	}
	for i := 0; i < S; i++ {
		s := i * step
		e := min(s+step+V, n)
		starts = append(starts, int64(s))
		lens = append(lens, int64(e-s))
	}
	return starts, lens, V
}

// build derives the shared derived state (windows, span names) and
// constructs the inner engines over the shard slices of ref.
func newSharded(f engine.Factory, ref dna.Sequence, opt engine.Options) (*Sharded, error) {
	s := &Sharded{name: "sharded:" + f.Name, factory: f, opt: opt}
	s.starts, s.lens, s.overlap = geometry(len(ref), opt.Shards, opt.ShardOverlap)
	for i := range s.starts {
		lo, hi := s.starts[i], s.starts[i]+s.lens[i]
		inner, err := f.New(ref[lo:hi], opt)
		if err != nil {
			return nil, fmt.Errorf("shard %d [%d,%d): %w", i, lo, hi, err)
		}
		s.inners = append(s.inners, inner)
	}
	for i := range s.starts {
		if i+1 < len(s.starts) {
			lo, hi := s.starts[i+1], s.starts[i]+s.lens[i]
			s.windows = append(s.windows, ref[lo:hi])
			s.winStart = append(s.winStart, lo)
		}
	}
	s.finish()
	return s, nil
}

// finish computes the derived per-shard state (span names, the seeder
// table) once the geometry and inner engines are in place.
func (s *Sharded) finish() {
	s.names = s.names[:0]
	for i := range s.starts {
		s.names = append(s.names,
			fmt.Sprintf("shard %d [%d,%d)", i, s.starts[i], s.starts[i]+s.lens[i]))
	}
	s.seeders = s.seeders[:0]
	for _, inner := range s.inners {
		rs, _ := inner.(engine.ReadSeeder)
		s.seeders = append(s.seeders, rs)
	}
}

// Name implements Engine.
func (s *Sharded) Name() string { return s.name }

// Clone implements Engine: inner clones share the read-only indexes;
// the merge scratch is per-clone.
func (s *Sharded) Clone() engine.Engine {
	c := &Sharded{
		name: s.name, factory: s.factory, opt: s.opt,
		overlap: s.overlap, starts: s.starts, lens: s.lens,
		windows: s.windows, winStart: s.winStart, names: s.names,
	}
	for _, inner := range s.inners {
		c.inners = append(c.inners, inner.Clone())
	}
	for _, inner := range c.inners {
		rs, _ := inner.(engine.ReadSeeder)
		c.seeders = append(c.seeders, rs)
	}
	return c
}

// activity is one batch shard's record: the inner engines' activities
// in reference-shard order.
type activity struct {
	acts  []engine.Activity
	reads int
}

// PublishMetrics folds every inner activity's counters in shard order;
// counters are additive, so the totals match a flat run over the
// concatenated shards.
func (a *activity) PublishMetrics(reg *metrics.Registry) {
	for _, sa := range a.acts {
		sa.PublishMetrics(reg)
	}
}

// SeedTrace implements Engine: every read is seeded against every
// reference shard. The sharded engine emits one unit span per
// (read, shard) on its own "shard" track — inner tracing is disabled,
// since several inner engines writing one buffer would interleave
// per-read spans in ways trace.Validate rejects.
func (s *Sharded) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) engine.Activity {
	a := &activity{reads: len(reads)}
	for j, inner := range s.inners {
		a.acts = append(a.acts, inner.SeedTrace(reads, nil, base))
		if tb != nil {
			for i := range reads {
				tb.Emit(base+i, "shard", s.names[j], int64(j), 1)
			}
		}
	}
	return a
}

// result carries the merged per-read SMEM sets plus the aggregated
// model numbers of the inner results.
type result struct {
	smems    [][]smem.Match
	model    engine.Model
	hasModel bool
}

// PublishModelMetrics publishes the aggregate model under the sharded
// engine's own names. The inner results' gauges are not forwarded:
// model gauges are set-once values, and S shards overwriting one name
// would leave the last shard's number masquerading as the run's.
func (r *result) PublishModelMetrics(reg *metrics.Registry) {
	if !r.hasModel {
		return
	}
	reg.Gauge("shard/model/seconds").Set(r.model.Seconds)
	reg.Gauge("shard/model/reads_per_s").Set(r.model.ReadsPerS)
	if r.model.Cycles > 0 {
		reg.Gauge("shard/model/cycles").Set(float64(r.model.Cycles))
	}
}

// Reduce implements Engine: batch-shard activities (one per pool
// worker chunk, in read order) are transposed to reference-shard order,
// each inner engine reduces its own activities — on the origin
// instance, preserving order-sensitive model state — and the per-read
// SMEM sets are merged.
func (s *Sharded) Reduce(reads []dna.Sequence, acts []engine.Activity) engine.Result {
	perShard := make([][]engine.Activity, len(s.inners))
	for _, a := range acts {
		sa := a.(*activity)
		for j, inner := range sa.acts {
			perShard[j] = append(perShard[j], inner)
		}
	}
	res := &result{smems: make([][]smem.Match, len(reads))}
	shardSMEMs := make([][][]smem.Match, len(s.inners))
	for j, inner := range s.inners {
		ir := inner.Reduce(reads, perShard[j])
		shardSMEMs[j] = inner.SMEMs(ir)
		if m, ok := inner.(engine.Modeler); ok {
			im := m.Model(ir)
			res.model.Seconds += im.Seconds
			res.model.Cycles += im.Cycles
			res.hasModel = true
		}
	}
	if res.hasModel && res.model.Seconds > 0 {
		res.model.ReadsPerS = float64(len(reads)) / res.model.Seconds
	}
	var buf, out []smem.Match
	for i, read := range reads {
		buf = buf[:0]
		for j := range s.inners {
			buf = append(buf, shardSMEMs[j][i]...)
		}
		out = s.mergeAppend(out[:0], buf, read)
		res.smems[i] = smem.Retain(out)
	}
	return res
}

// SMEMs implements Engine.
func (s *Sharded) SMEMs(res engine.Result) [][]smem.Match {
	return res.(*result).smems
}

// mergeAppend merges the concatenated shard-local SMEM candidates of
// one read (on one strand) into the flat engine's answer, appending to
// dst: sort, sum hit counts of identical intervals, drop intervals
// contained in an earlier (longer) one, and subtract each window's
// direct occurrence count to undo pair double-counting. cand is
// reordered in place. Allocation-free given capacity in dst.
func (s *Sharded) mergeAppend(dst []smem.Match, cand []smem.Match, strand dna.Sequence) []smem.Match {
	if len(s.inners) == 1 {
		return append(dst, cand...)
	}
	smem.SortCover(cand)
	maxEnd := -1
	for i := 0; i < len(cand); {
		m := cand[i]
		i++
		for i < len(cand) && cand[i].Start == m.Start && cand[i].End == m.End {
			m.Hits += cand[i].Hits
			i++
		}
		if m.End <= maxEnd {
			continue // strictly contained in an earlier interval
		}
		maxEnd = m.End
		pat := strand[m.Start : m.End+1]
		for _, w := range s.windows {
			m.Hits -= countOccurrences(w, pat)
		}
		dst = append(dst, m)
	}
	return dst
}

// countOccurrences counts the occurrences of pat fully inside win by
// direct scan; windows are at most overlap bases, so this is bounded
// work per merged match.
func countOccurrences(win, pat dna.Sequence) int {
	n := 0
scan:
	for i := 0; i+len(pat) <= len(win); i++ {
		for j, b := range pat {
			if win[i+j] != b {
				continue scan
			}
		}
		n++
	}
	return n
}

// SeedReadInto implements engine.ReadSeeder when every inner engine
// does: each shard seeds into shared scratch and the candidates merge
// into dst. Any inner without the capability (or refusing dynamically)
// makes the whole composite refuse, leaving dst untouched.
func (s *Sharded) SeedReadInto(dst *engine.Seeds, read dna.Sequence) bool {
	for _, rs := range s.seeders {
		if rs == nil {
			return false
		}
	}
	s.candF = s.candF[:0]
	s.candR = s.candR[:0]
	for _, rs := range s.seeders {
		s.scratch.Forward = s.scratch.Forward[:0]
		s.scratch.Reverse = s.scratch.Reverse[:0]
		if !rs.SeedReadInto(&s.scratch, read) {
			return false
		}
		s.candF = append(s.candF, s.scratch.Forward...)
		s.candR = append(s.candR, s.scratch.Reverse...)
	}
	dst.Forward = s.mergeAppend(dst.Forward[:0], s.candF, read)
	s.rc = read.AppendReverseComplement(s.rc[:0])
	dst.Reverse = s.mergeAppend(dst.Reverse[:0], s.candR, s.rc)
	return true
}

// Model implements engine.Modeler by forwarding to Reduce's aggregation
// (zero when no inner engine has a timing model).
func (s *Sharded) Model(res engine.Result) engine.Model {
	return res.(*result).model
}

// ActivityCycles implements engine.CycleCoster: the summed modelled
// cycles of the inner activities (zero for model-less inners).
func (s *Sharded) ActivityCycles(act engine.Activity) int64 {
	var total int64
	a := act.(*activity)
	for j, inner := range s.inners {
		if cc, ok := inner.(engine.CycleCoster); ok {
			total += cc.ActivityCycles(a.acts[j])
		}
	}
	return total
}

// PublishWorkerMetrics implements engine.WorkerPublisher, forwarding to
// every inner instance in shard order.
func (s *Sharded) PublishWorkerMetrics(reg *metrics.Registry) {
	for _, inner := range s.inners {
		if wp, ok := inner.(engine.WorkerPublisher); ok {
			wp.PublishWorkerMetrics(reg)
		}
	}
}

// Unwrap exposes the inner engines.
func (s *Sharded) Unwrap() any { return s.inners }

// Shards returns the shard count (for tests and diagnostics).
func (s *Sharded) Shards() int { return len(s.inners) }

// SaveIndex implements engine.IndexPersister: a geometry section (shard
// layout plus the window contents the merge needs), then each inner
// engine's own sections under a "shard<i>/" prefix.
func (s *Sharded) SaveIndex(w *idxio.Writer) error {
	if err := w.Section("shard/geometry", func(sw io.Writer) error {
		return s.writeGeometry(sw)
	}); err != nil {
		return err
	}
	for j, inner := range s.inners {
		p, ok := inner.(engine.IndexPersister)
		if !ok {
			return fmt.Errorf("shard: inner engine %s does not support index persistence", inner.Name())
		}
		if err := p.SaveIndex(w.Prefixed(fmt.Sprintf("shard%d/", j))); err != nil {
			return err
		}
	}
	return nil
}

// LoadIndex implements engine.IndexPersister on a factory NewEmpty
// instance: geometry first, then one inner engine per shard.
func (s *Sharded) LoadIndex(r *idxio.Reader) error {
	if s.factory.NewEmpty == nil {
		return fmt.Errorf("shard: inner engine %s does not support index persistence", s.factory.Name)
	}
	sec, err := r.Section("shard/geometry")
	if err != nil {
		return err
	}
	if err := s.readGeometry(sec); err != nil {
		return fmt.Errorf("shard: section %q: %w", "shard/geometry", err)
	}
	s.inners = s.inners[:0]
	for j := range s.starts {
		inner, err := s.factory.NewEmpty(s.opt)
		if err != nil {
			return err
		}
		p, ok := inner.(engine.IndexPersister)
		if !ok {
			return fmt.Errorf("shard: inner engine %s does not support index persistence", s.factory.Name)
		}
		if err := p.LoadIndex(r.Prefixed(fmt.Sprintf("shard%d/", j))); err != nil {
			return err
		}
		s.inners = append(s.inners, inner)
	}
	// Window contents were restored by readGeometry; recompute the
	// derived state.
	s.finish()
	return nil
}

// Geometry payload, little-endian:
//
//	u64 overlap | u64 shards | shards x (u64 start, u64 len)
//	| (shards-1) x (u64 winStart, u64 winLen, ceil(winLen/4) packed bases)
func (s *Sharded) writeGeometry(w io.Writer) error {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.overlap))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.starts)))
	for i := range s.starts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.starts[i]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.lens[i]))
	}
	for i, win := range s.windows {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.winStart[i]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(win)))
		for j := 0; j < len(win); j += 4 {
			var b byte
			for k := 0; k < 4 && j+k < len(win); k++ {
				b |= byte(win[j+k]) << uint(2*k)
			}
			buf = append(buf, b)
		}
	}
	_, err := w.Write(buf)
	return err
}

func (s *Sharded) readGeometry(r io.Reader) error {
	var u [16]byte
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return err
	}
	s.overlap = int(binary.LittleEndian.Uint64(u[0:]))
	shards := binary.LittleEndian.Uint64(u[8:])
	if shards == 0 || shards > 1<<20 {
		return fmt.Errorf("implausible shard count %d", shards)
	}
	s.starts, s.lens = s.starts[:0], s.lens[:0]
	for i := uint64(0); i < shards; i++ {
		if _, err := io.ReadFull(r, u[:]); err != nil {
			return err
		}
		s.starts = append(s.starts, int64(binary.LittleEndian.Uint64(u[0:])))
		s.lens = append(s.lens, int64(binary.LittleEndian.Uint64(u[8:])))
	}
	s.windows, s.winStart = s.windows[:0], s.winStart[:0]
	for i := uint64(0); i+1 < shards; i++ {
		if _, err := io.ReadFull(r, u[:]); err != nil {
			return err
		}
		s.winStart = append(s.winStart, int64(binary.LittleEndian.Uint64(u[0:])))
		winLen := binary.LittleEndian.Uint64(u[8:])
		if winLen > 1<<32 {
			return fmt.Errorf("implausible window length %d", winLen)
		}
		win := make(dna.Sequence, 0, winLen)
		var chunk [4096]byte
		for read := uint64(0); read < (winLen+3)/4; {
			c := min(int((winLen+3)/4-read), len(chunk))
			if _, err := io.ReadFull(r, chunk[:c]); err != nil {
				return err
			}
			for _, b := range chunk[:c] {
				for k := 0; k < 4 && uint64(len(win)) < winLen; k++ {
					win = append(win, dna.Base(b>>uint(2*k))&3)
				}
			}
			read += uint64(c)
		}
		s.windows = append(s.windows, win)
	}
	return nil
}
