package vcall

import (
	"math/rand"
	"testing"

	"casa/internal/align"
	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/readsim"
	"casa/internal/seedex"
)

func matchCigar(n int) align.Cigar { return align.Cigar{{Op: align.OpMatch, Len: n}} }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.MinAltFrac = 1.5
	if bad.Validate() == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestPileupCountsAndDepth(t *testing.T) {
	ref := dna.FromString("ACGTACGTAC")
	p := NewPileup(ref)
	read := dna.FromString("ACGTA")
	for i := 0; i < 3; i++ {
		if err := p.Add(0, matchCigar(5), read, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if d := p.Depth(2); d != 3 {
		t.Errorf("Depth(2) = %d, want 3", d)
	}
	if d := p.Depth(7); d != 0 {
		t.Errorf("Depth(7) = %d, want 0", d)
	}
}

func TestPileupRejectsOutOfRange(t *testing.T) {
	p := NewPileup(dna.FromString("ACGT"))
	if err := p.Add(2, matchCigar(5), dna.FromString("ACGTA"), false); err == nil {
		t.Error("overhanging alignment accepted")
	}
}

func TestPileupCigarWalk(t *testing.T) {
	// 3M 1D 2M: read base 3 lands at ref position 4 (one deleted base).
	ref := dna.FromString("AAAATTTT")
	p := NewPileup(ref)
	read := dna.FromString("AAACC")
	cigar := align.Cigar{{Op: align.OpMatch, Len: 3}, {Op: align.OpDelete, Len: 1}, {Op: align.OpMatch, Len: 2}}
	if err := p.Add(0, cigar, read, false); err != nil {
		t.Fatal(err)
	}
	if p.counts[3][dna.A] != 0 {
		t.Error("deleted position received a base")
	}
	if p.counts[4][dna.C] != 1 || p.counts[5][dna.C] != 1 {
		t.Error("post-deletion bases misplaced")
	}
	// Insertions consume query only.
	p2 := NewPileup(ref)
	cigar2 := align.Cigar{{Op: align.OpMatch, Len: 2}, {Op: align.OpInsert, Len: 2}, {Op: align.OpMatch, Len: 1}}
	if err := p2.Add(0, cigar2, read, false); err != nil {
		t.Fatal(err)
	}
	if p2.counts[2][dna.C] != 1 {
		t.Error("post-insertion base misplaced")
	}
}

func TestCallThresholds(t *testing.T) {
	ref := dna.FromString("AAAAAAAAAA")
	p := NewPileup(ref)
	read := dna.FromString("ACAAA") // alt C at position 1
	for i := 0; i < 10; i++ {
		p.Add(0, matchCigar(5), read, i%2 == 0)
	}
	calls, err := p.Call(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0].Pos != 1 || calls[0].Alt != dna.C {
		t.Fatalf("calls = %+v", calls)
	}
	if calls[0].Depth != 10 || calls[0].AltDepth != 10 {
		t.Errorf("call depths = %+v", calls[0])
	}
	// Below depth: no call.
	p2 := NewPileup(ref)
	for i := 0; i < 3; i++ {
		p2.Add(0, matchCigar(5), read, i%2 == 0)
	}
	if calls, _ := p2.Call(DefaultConfig()); len(calls) != 0 {
		t.Errorf("thin coverage called: %+v", calls)
	}
}

func TestCallStrandFilter(t *testing.T) {
	ref := dna.FromString("AAAAAAAAAA")
	p := NewPileup(ref)
	read := dna.FromString("ACAAA")
	for i := 0; i < 10; i++ {
		p.Add(0, matchCigar(5), read, false) // forward only
	}
	cfg := DefaultConfig()
	if calls, _ := p.Call(cfg); len(calls) != 0 {
		t.Error("single-strand support passed the strand filter")
	}
	cfg.RequireStrand = false
	if calls, _ := p.Call(cfg); len(calls) != 1 {
		t.Error("strand filter off still suppressed the call")
	}
}

func TestCallLowFractionSuppressed(t *testing.T) {
	// Sequencing-error-like noise: 2 alt reads of 20 must not be called.
	ref := dna.FromString("AAAAAAAAAA")
	p := NewPileup(ref)
	refRead := dna.FromString("AAAAA")
	altRead := dna.FromString("ACAAA")
	for i := 0; i < 18; i++ {
		p.Add(0, matchCigar(5), refRead, i%2 == 0)
	}
	for i := 0; i < 2; i++ {
		p.Add(0, matchCigar(5), altRead, i%2 == 0)
	}
	if calls, _ := p.Call(DefaultConfig()); len(calls) != 0 {
		t.Errorf("noise called as variant: %+v", calls)
	}
}

func TestEndToEndVariantRecovery(t *testing.T) {
	// The full pipeline: donor variants -> reads -> CASA seeding ->
	// SeedEx extension -> pileup -> calls. Precision and recall must be
	// high on clean simulated data.
	rng := rand.New(rand.NewSource(1))
	ref := readsim.GenerateReference(readsim.DefaultGenome(60000, 2))
	donor, truth := readsim.Donor(ref, 0.001, 3)
	if len(truth) == 0 {
		t.Fatal("no variants planted")
	}

	cfg := core.DefaultConfig()
	cfg.PartitionBases = 16 << 10
	acc, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := seedex.New(ref, seedex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// ~25x coverage of error-free donor reads.
	profile := readsim.ReadProfile{Length: 101, Count: 60000 * 25 / 101, Seed: 5, RevComp: true}
	reads := readsim.Simulate(donor, profile)
	pile := NewPileup(ref)
	for _, r := range reads {
		seq := r.Seq
		rr := acc.SeedReads([]dna.Sequence{seq})
		al, rev, ok := bestStrand(acc, sx, seq, rr.Reads[0])
		if !ok {
			continue
		}
		oriented := seq
		if rev {
			oriented = seq.ReverseComplement()
		}
		if err := pile.Add(al.RefStart, al.Cigar, oriented, rev); err != nil {
			t.Fatal(err)
		}
	}
	calls, err := pile.Call(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	truthSet := map[int]dna.Base{}
	for _, v := range truth {
		truthSet[v.Pos] = v.Alt
	}
	tp, fp := 0, 0
	for _, c := range calls {
		if alt, ok := truthSet[c.Pos]; ok && alt == c.Alt {
			tp++
		} else {
			fp++
		}
	}
	recall := float64(tp) / float64(len(truth))
	precision := float64(tp) / float64(max(tp+fp, 1))
	t.Logf("variants: %d truth, %d called, recall %.2f, precision %.2f", len(truth), len(calls), recall, precision)
	if recall < 0.85 {
		t.Errorf("recall %.2f too low (tp=%d of %d)", recall, tp, len(truth))
	}
	if precision < 0.95 {
		t.Errorf("precision %.2f too low (fp=%d)", precision, fp)
	}
	_ = rng
}

// bestStrand extends both strands and returns the winner.
func bestStrand(acc *core.Accelerator, sx *seedex.Machine, read dna.Sequence, rr core.ReadResult) (seedex.Alignment, bool, bool) {
	collect := func(strand dna.Sequence, fwd bool) (seedex.Alignment, bool) {
		var seeds []seedex.Seed
		var ms = rr.Forward
		if !fwd {
			ms = rr.Reverse
		}
		for _, m := range ms {
			for _, pos := range acc.HitPositions(strand, m, 4) {
				seeds = append(seeds, seedex.Seed{QStart: m.Start, QEnd: m.End, RefPos: pos})
			}
		}
		return sx.ExtendRead(strand, seeds)
	}
	var best seedex.Alignment
	rev, found := false, false
	if al, ok := collect(read, true); ok {
		best, found = al, true
	}
	rc := read.ReverseComplement()
	if al, ok := collect(rc, false); ok && (!found || al.Score > best.Score) {
		best, rev, found = al, true, true
	}
	return best, rev, found
}
