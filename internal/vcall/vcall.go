// Package vcall is a small pileup-based SNP caller: the downstream
// endpoint of the genome-analysis pipeline the paper's introduction
// motivates ("the Broad Institute's best practices genomics pipeline",
// §1/§2.1). Alignments accumulate per-position base counts; positions
// where a non-reference allele clears depth, fraction and strand-support
// thresholds are called as variants.
//
// The caller is deliberately simple (no genotype likelihoods) — its role
// in this repository is to close the loop: simulated donor variants ->
// reads -> CASA seeding -> SeedEx extension -> calls that recover the
// truth set.
package vcall

import (
	"fmt"
	"sort"

	"casa/internal/align"
	"casa/internal/dna"
)

// Config sets the calling thresholds.
type Config struct {
	MinDepth      int     // minimum total coverage at the site
	MinAltDepth   int     // minimum reads supporting the alternate allele
	MinAltFrac    float64 // minimum alternate allele fraction
	RequireStrand bool    // require support from both strands
}

// DefaultConfig returns thresholds suited to ~20-40x simulated coverage.
func DefaultConfig() Config {
	return Config{MinDepth: 8, MinAltDepth: 4, MinAltFrac: 0.6, RequireStrand: true}
}

// Validate checks the thresholds.
func (c Config) Validate() error {
	if c.MinDepth <= 0 || c.MinAltDepth <= 0 || c.MinAltFrac <= 0 || c.MinAltFrac > 1 {
		return fmt.Errorf("vcall: invalid config %+v", c)
	}
	return nil
}

// Call is one emitted variant.
type Call struct {
	Pos      int // 0-based reference position
	Ref, Alt dna.Base
	Depth    int // total coverage
	AltDepth int // reads supporting Alt
}

// Pileup accumulates per-position allele counts over one reference.
type Pileup struct {
	ref    dna.Sequence
	counts [][4]uint16 // per position, per base
	fwd    [][4]uint16 // forward-strand subset, for strand support
}

// NewPileup creates an empty pileup over ref.
func NewPileup(ref dna.Sequence) *Pileup {
	return &Pileup{
		ref:    ref,
		counts: make([][4]uint16, len(ref)),
		fwd:    make([][4]uint16, len(ref)),
	}
}

// Add applies one alignment: seq is the read in reference orientation
// (already reverse-complemented for reverse-strand alignments), refStart
// its leftmost reference base, cigar its alignment. reverse records
// strand for the strand-support filter.
func (p *Pileup) Add(refStart int, cigar align.Cigar, seq dna.Sequence, reverse bool) error {
	ri, qi := refStart, 0
	for _, op := range cigar {
		switch op.Op {
		case align.OpMatch:
			for j := 0; j < op.Len; j++ {
				if ri < 0 || ri >= len(p.ref) || qi >= len(seq) {
					return fmt.Errorf("vcall: alignment runs outside the reference (pos %d)", ri)
				}
				b := seq[qi]
				if p.counts[ri][b] < ^uint16(0) {
					p.counts[ri][b]++
					if !reverse {
						p.fwd[ri][b]++
					}
				}
				ri++
				qi++
			}
		case align.OpDelete:
			ri += op.Len
		case align.OpInsert, align.OpClip:
			qi += op.Len
		default:
			return fmt.Errorf("vcall: unsupported CIGAR op %c", byte(op.Op))
		}
	}
	return nil
}

// Depth returns total coverage at pos.
func (p *Pileup) Depth(pos int) int {
	d := 0
	for _, c := range p.counts[pos] {
		d += int(c)
	}
	return d
}

// Call scans the pileup and emits variants per cfg, sorted by position.
func (p *Pileup) Call(cfg Config) ([]Call, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []Call
	for pos := range p.counts {
		depth := p.Depth(pos)
		if depth < cfg.MinDepth {
			continue
		}
		ref := p.ref[pos]
		// Strongest non-reference allele.
		var alt dna.Base
		best := -1
		for b := dna.Base(0); b < dna.NumBases; b++ {
			if b == ref {
				continue
			}
			if int(p.counts[pos][b]) > best {
				best, alt = int(p.counts[pos][b]), b
			}
		}
		if best < cfg.MinAltDepth || float64(best) < cfg.MinAltFrac*float64(depth) {
			continue
		}
		if cfg.RequireStrand {
			fwd := int(p.fwd[pos][alt])
			rev := best - fwd
			if fwd == 0 || rev == 0 {
				continue
			}
		}
		out = append(out, Call{Pos: pos, Ref: ref, Alt: alt, Depth: depth, AltDepth: best})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
