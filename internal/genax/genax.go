// Package genax implements the GenAx baseline (§2.2 of the CASA paper,
// originally Fujiki et al., ISCA 2018): on-chip seed & position tables
// (12-mers) and a unidirectional RMEM search that strides by k, intersects
// position sets, and binary-searches the exact match end. The model
// reproduces GenAx's bottleneck as characterized by the CASA paper:
// "~4000 position intersections and >= 200 index fetches per read per
// segment", serialized within each of 128 seeding lanes.
package genax

import (
	"fmt"
	"slices"

	"casa/internal/dna"
	"casa/internal/dram"
	"casa/internal/energy"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Config sets GenAx's dimensions.
type Config struct {
	K              int     // seed table k-mer size (12)
	MinSMEM        int     // minimum reported SMEM length (19)
	Lanes          int     // parallel seeding lanes (128)
	PartitionBases int     // reference bases per on-chip segment (6 Mbases = GenAx's 1.5 MB)
	ClockHz        float64 // lane clock (matched to CASA's 2 GHz for fairness, §6)

	// FetchCycles is the dependent-access latency of one seed/position
	// table fetch within a lane. The binary RMEM search must know the
	// previous result before issuing the next fetch ("the binary search of
	// RMEM requires the hardware controller to know the next k-mer to
	// search", §2.2), so fetches serialize at the SRAM pipeline depth.
	FetchCycles int
	// LaneEfficiency is the fraction of lanes making progress per cycle.
	// The default of 1.0 follows the CASA paper's own evaluation
	// assumption ("assuming that GenAx can reach the 128 seeding lanes
	// parallelism", §6); lower it to model the SRAM bank conflicts §2.2
	// says "restrict the number of seeding lanes".
	LaneEfficiency float64
	// IntersectOpsPerCycle is the SIMD width of the position intersection
	// units: one SRAM line delivers several sorted positions per cycle.
	IntersectOpsPerCycle int
}

// DefaultConfig returns the paper's GenAx evaluation setup (68 MB SRAM,
// 128 seeding lanes, 12-mer seed & position tables).
func DefaultConfig() Config {
	return Config{
		K:                    12,
		MinSMEM:              19,
		Lanes:                128,
		PartitionBases:       6 << 20,
		ClockHz:              2e9,
		FetchCycles:          2,
		LaneEfficiency:       1.0,
		IntersectOpsPerCycle: 16,
	}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	switch {
	case c.K <= 0 || c.K > 15:
		return fmt.Errorf("genax: k=%d out of range (seed table is directly indexed by 4^k)", c.K)
	case c.MinSMEM < c.K:
		return fmt.Errorf("genax: MinSMEM=%d must be >= k=%d", c.MinSMEM, c.K)
	case c.Lanes <= 0:
		return fmt.Errorf("genax: lanes must be positive")
	case c.PartitionBases < c.K:
		return fmt.Errorf("genax: partition smaller than one k-mer")
	case c.ClockHz <= 0:
		return fmt.Errorf("genax: clock must be positive")
	case c.FetchCycles <= 0:
		return fmt.Errorf("genax: FetchCycles must be positive")
	case c.LaneEfficiency <= 0 || c.LaneEfficiency > 1:
		return fmt.Errorf("genax: LaneEfficiency must be in (0, 1]")
	case c.IntersectOpsPerCycle <= 0:
		return fmt.Errorf("genax: IntersectOpsPerCycle must be positive")
	}
	return nil
}

// Stats counts seeding-lane activity.
type Stats struct {
	Fetches         int64 // seed & position table fetches
	IntersectionOps int64 // per-element intersection operations
	Pivots          int64 // pivots processed
	RMEMs           int64 // right-maximal matches computed
	Reads           int64 // reads seeded (per strand)
}

func (s *Stats) add(o Stats) {
	s.Fetches += o.Fetches
	s.IntersectionOps += o.IntersectionOps
	s.Pivots += o.Pivots
	s.RMEMs += o.RMEMs
	s.Reads += o.Reads
}

// Tables is one reference segment's seed & position tables: the seed table
// is directly indexed by the packed k-mer and points into the sorted
// position table (Fig 3(b)).
type Tables struct {
	cfg       Config
	ref       dna.Sequence
	seed      []int32 // len 4^K+1: position-table range per k-mer
	positions []int32

	Stats Stats

	// OnFetch, when set, observes every seed-table fetch (the k-mer
	// looked up). GenCache's cache model hooks here to classify fetches
	// as cache hits or DRAM misses.
	OnFetch func(kmer dna.Kmer)
}

// BuildTables constructs the tables for one segment.
func BuildTables(ref dna.Sequence, cfg Config) (*Tables, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ref) > cfg.PartitionBases {
		return nil, fmt.Errorf("genax: segment of %d bases exceeds configured %d", len(ref), cfg.PartitionBases)
	}
	t := &Tables{cfg: cfg, ref: ref}
	numKmers := dna.NumKmers(cfg.K)
	counts := make([]int32, numKmers+1)
	n := len(ref) - cfg.K + 1
	kmers := make([]dna.Kmer, 0, max(n, 0))
	var v dna.Kmer
	mask := dna.Kmer(1)<<(2*uint(cfg.K)) - 1
	for i, b := range ref {
		v = (v<<2 | dna.Kmer(b)) & mask
		if i >= cfg.K-1 {
			kmers = append(kmers, v)
			counts[v+1]++
		}
	}
	t.seed = make([]int32, numKmers+1)
	for k := 1; k <= numKmers; k++ {
		t.seed[k] = t.seed[k-1] + counts[k]
	}
	t.positions = make([]int32, len(kmers))
	fill := slices.Clone(t.seed[:numKmers])
	for i, km := range kmers {
		t.positions[fill[km]] = int32(i)
		fill[km]++
	}
	return t, nil
}

// lookup returns the sorted positions of kmer, charging one table fetch.
func (t *Tables) lookup(kmer dna.Kmer) []int32 {
	t.Stats.Fetches++
	if t.OnFetch != nil {
		t.OnFetch(kmer)
	}
	return t.positions[t.seed[kmer]:t.seed[kmer+1]]
}

// Lookup exposes the seed & position table lookup for layered designs
// (GenCache's fast-seeding path reuses the same tables).
func (t *Tables) Lookup(kmer dna.Kmer) []int32 { return t.lookup(kmer) }

// Clone returns tables sharing this segment's seed & position arrays
// (never written after BuildTables) with fresh Stats, so clones can seed
// concurrently. The OnFetch hook is copied: callers installing one on a
// cloned table set must make it safe for concurrent use (or leave it nil,
// as the plain GenAx accelerator does).
func (t *Tables) Clone() *Tables {
	return &Tables{cfg: t.cfg, ref: t.ref, seed: t.seed, positions: t.positions, OnFetch: t.OnFetch}
}

// Ref returns the segment's reference sequence.
func (t *Tables) Ref() dna.Sequence { return t.ref }

// rmem computes the right-maximal match from pivot: the first k-mer's
// positions, then k-strided fetch-and-intersect until empty, then a
// binary stride reduction for the exact end (§2.2's description of the
// seed & position table algorithm).
func (t *Tables) rmem(read dna.Sequence, pivot int) (smem.Match, bool) {
	t.Stats.Pivots++
	if pivot+t.cfg.K > len(read) {
		return smem.Match{}, false
	}
	cur := t.lookup(dna.PackKmer(read, pivot, t.cfg.K))
	if len(cur) == 0 {
		return smem.Match{}, false
	}
	t.Stats.RMEMs++
	matched := t.cfg.K

	// Full k-strides: intersect H(cur)+matched with the next k-mer's hits.
	for pivot+matched+t.cfg.K <= len(read) {
		next := t.lookup(dna.PackKmer(read, pivot+matched, t.cfg.K))
		inter := intersectOffset(cur, next, int32(matched))
		t.Stats.IntersectionOps += int64(len(cur) + len(next))
		if len(inter) == 0 {
			break
		}
		cur, matched = inter, matched+t.cfg.K
	}

	// Binary stride reduction: probe descending power-of-two strides
	// (largest <= k-1, so every remainder 1..k-1 is reachable); each probe
	// fetches an overlapping k-mer ending at the trial extension and
	// intersects.
	trial := matched
	first := 1
	for first*2 <= t.cfg.K-1 {
		first *= 2
	}
	for stride := first; stride >= 1; stride /= 2 {
		ext := trial + stride
		if pivot+ext > len(read) {
			continue
		}
		// Overlapping k-mer covering the last k bases of the trial match.
		off := ext - t.cfg.K
		next := t.lookup(dna.PackKmer(read, pivot+off, t.cfg.K))
		inter := intersectOffset(cur, next, int32(off))
		t.Stats.IntersectionOps += int64(len(cur) + len(next))
		if len(inter) > 0 {
			cur, trial = inter, ext
		}
	}
	return smem.Match{Start: pivot, End: pivot + trial - 1, Hits: len(cur)}, true
}

// intersectOffset returns the elements p of a such that p+off is in b;
// both inputs are sorted, output stays sorted (one merge pass, the
// hardware's sorted-list intersection).
func intersectOffset(a, b []int32, off int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i]+off < b[j]:
			i++
		case a[i]+off > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// FindSMEMs runs the unidirectional search over every pivot, keeping the
// RMEMs with strictly increasing ends (the non-contained ones) of length
// >= minLen. GenAx has no pre-seeding filter: every pivot fetches.
func (t *Tables) FindSMEMs(read dna.Sequence, minLen int) []smem.Match {
	t.Stats.Reads++
	var out []smem.Match
	prevEnd := -1
	for pivot := 0; pivot+t.cfg.K <= len(read); pivot++ {
		m, ok := t.rmem(read, pivot)
		if !ok {
			continue
		}
		if m.End > prevEnd {
			out = append(out, m)
			prevEnd = m.End
		}
	}
	out = smem.FilterMinLen(out, minLen)
	smem.Sort(out)
	return out
}

// SRAMBytes returns the on-chip table capacity: 4^k seed pointers (4 B)
// plus one 4 B position per base.
func (c Config) SRAMBytes() int64 {
	return int64(dna.NumKmers(c.K))*4 + int64(c.PartitionBases)*4
}

// Accelerator is the GenAx performance model: segments processed in
// sequence, 128 lanes each owning one read at a time.
type Accelerator struct {
	cfg      Config
	segments []*Tables
}

// New splits ref into segments and builds their tables.
func New(ref dna.Sequence, cfg Config) (*Accelerator, error) {
	return NewWithOverlap(ref, cfg, 100)
}

// NewWithOverlap is New with an explicit segment overlap in bases.
func NewWithOverlap(ref dna.Sequence, cfg Config, overlap int) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("genax: empty reference")
	}
	if overlap < 0 || overlap >= cfg.PartitionBases {
		return nil, fmt.Errorf("genax: overlap %d out of range", overlap)
	}
	a := &Accelerator{cfg: cfg}
	step := cfg.PartitionBases - overlap
	for start := 0; ; start += step {
		end := min(start+cfg.PartitionBases, len(ref))
		t, err := BuildTables(ref[start:end], cfg)
		if err != nil {
			return nil, err
		}
		a.segments = append(a.segments, t)
		if end == len(ref) {
			break
		}
	}
	return a, nil
}

// Segments returns the number of reference segments.
func (a *Accelerator) Segments() int { return len(a.segments) }

// Clone returns an accelerator sharing this one's segment tables (their
// immutable seed & position arrays) with fresh activity counters, for
// lock-free per-worker batch seeding.
func (a *Accelerator) Clone() *Accelerator {
	c := &Accelerator{cfg: a.cfg}
	c.segments = make([]*Tables, len(a.segments))
	for i, t := range a.segments {
		c.segments[i] = t.Clone()
	}
	return c
}

// Result is the outcome of a GenAx seeding run.
type Result struct {
	Reads      [][]smem.Match // merged forward-strand SMEMs per read
	Rev        [][]smem.Match
	Stats      Stats
	Seconds    float64
	DRAM       *dram.Traffic
	Energy     energy.Report
	Throughput float64
	ReadsPerMJ float64
}

// Activity is the raw, additive outcome of seeding a batch of reads: the
// per-read SMEM results of both strands (already merged across segments)
// plus the lane-activity counters and read-stream bytes. Activities of
// disjoint sub-batches reduce (Reduce) to a Result identical to a
// sequential run over the concatenated batch.
type Activity struct {
	Reads     [][]smem.Match
	Rev       [][]smem.Match
	Stats     Stats
	ReadBytes int64
}

// SeedReads seeds every read (both strands) against every segment. It is
// exactly Reduce(Seed(reads)); use Seed and Reduce directly to split a
// batch across worker-owned Clones.
func (a *Accelerator) SeedReads(reads []dna.Sequence) *Result {
	return a.Reduce(a.Seed(reads))
}

// Seed seeds every read (both strands) against every segment and returns
// the raw activity. Seed mutates only this accelerator's segment
// counters: concurrent calls on distinct Clones are safe.
func (a *Accelerator) Seed(reads []dna.Sequence) *Activity {
	return a.SeedTrace(reads, nil, 0)
}

// SeedTrace is Seed with cycle-domain tracing: when tb is non-nil, every
// read gets per-segment spans "sNN" on the "seed" track, with read-local
// timestamps in serialized lane cycles (LaneCycles over the read's own
// activity delta: a lane owns one read at a time, so the per-read cycle
// count is exactly what a lane spends on it). Reads are keyed base+i so
// batch shards merge worker-count independently.
//
// Reads are mutually independent (the tables keep only additive
// counters), so sweeping read-outer here yields an Activity bit-identical
// to the segment-outer order a sequential hardware pass implies.
func (a *Accelerator) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) *Activity {
	act := &Activity{}
	var tracks []string
	if tb != nil {
		tracks = make([]string, len(a.segments))
		for si := range a.segments {
			tracks[si] = fmt.Sprintf("s%02d", si)
		}
	}
	befores := make([]Stats, len(a.segments))
	for si, seg := range a.segments {
		befores[si] = seg.Stats
	}
	nseg := int64(len(a.segments))
	for i, r := range reads {
		rc := r.ReverseComplement()
		var fwd, rev []smem.Match
		var cursor int64
		for si, seg := range a.segments {
			var before Stats
			if tb != nil {
				before = seg.Stats
			}
			fwd = append(fwd, seg.FindSMEMs(r, a.cfg.MinSMEM)...)
			rev = append(rev, seg.FindSMEMs(rc, a.cfg.MinSMEM)...)
			if tb != nil {
				cyc := LaneCycles(diff(seg.Stats, before), a.cfg)
				tb.Emit(base+i, "seed", tracks[si], cursor, cyc)
				cursor += cyc
			}
		}
		act.Reads = append(act.Reads, mergeSMEMs(fwd))
		act.Rev = append(act.Rev, mergeSMEMs(rev))
		act.ReadBytes += int64((len(r)+3)/4) * nseg
	}
	for si, seg := range a.segments {
		act.Stats.add(diff(seg.Stats, befores[si]))
	}
	return act
}

// Reduce folds the Activities of disjoint sub-batches (in input order)
// into one finalized Result; the lane timing and energy are modelled once
// over the summed counters, so the totals match a sequential run no
// matter how the batch was sharded.
func (a *Accelerator) Reduce(acts ...*Activity) *Result {
	res := &Result{DRAM: dram.NewTraffic(dram.GenAxConfig())}
	var readBytes int64
	for _, act := range acts {
		res.Reads = append(res.Reads, act.Reads...)
		res.Rev = append(res.Rev, act.Rev...)
		res.Stats.add(act.Stats)
		readBytes += act.ReadBytes
	}
	res.DRAM.Read(readBytes)

	// Timing: each lane serializes its read's dependent fetches (at the
	// SRAM pipeline latency) and intersection operations; the lanes run in
	// parallel, derated by bank conflicts.
	laneCycles := LaneCycles(res.Stats, a.cfg)
	effLanes := float64(a.cfg.Lanes) * a.cfg.LaneEfficiency
	res.Seconds = float64(laneCycles) / effLanes / a.cfg.ClockHz
	if d := res.DRAM.MinSeconds(); d > res.Seconds {
		res.Seconds = d
	}

	// Energy: the 68 MB SRAM's leakage plus per-fetch dynamic energy; a
	// 256-bit line covers 8 positions, so intersections charge per 8 ops.
	m := energy.NewMeter()
	sram := energy.SRAM256x256
	m.RegisterArrays("seed & position SRAM", sram, macros(a.cfg.SRAMBytes()*8, sram))
	m.Charge("seed & position SRAM", res.Stats.Fetches+(res.Stats.IntersectionOps+7)/8, sram.EnergyPJ)
	m.Register("seeding lanes", 2.0, energy.GenAxAreaMM2-sramAreaMM2(a.cfg, sram))
	m.ChargeJ("DDR4", res.DRAM.DynamicJ())
	m.Register("DDR4", res.DRAM.BackgroundW(), 0)
	m.Register("DRAM controller PHY", res.DRAM.Config().PHYW, 0)
	res.Energy = m.Report(res.Seconds)

	if n := len(res.Reads); res.Seconds > 0 {
		res.Throughput = float64(n) / res.Seconds
	}
	if j := res.Energy.TotalJ(); j > 0 {
		res.ReadsPerMJ = float64(len(res.Reads)) / (j * 1e3)
	}
	return res
}

// mergeSMEMs merges per-segment SMEM sets (duplicates summed, contained
// intervals dropped), as in core.MergeSMEMs.
func mergeSMEMs(ms []smem.Match) []smem.Match {
	if len(ms) == 0 {
		return nil
	}
	smem.Sort(ms)
	merged := ms[:0:0]
	for _, m := range ms {
		if n := len(merged); n > 0 && merged[n-1].Start == m.Start && merged[n-1].End == m.End {
			merged[n-1].Hits += m.Hits
			continue
		}
		merged = append(merged, m)
	}
	var out []smem.Match
	for i, m := range merged {
		contained := false
		for j, o := range merged {
			if i != j && o.Contains(m) && (o.Start != m.Start || o.End != m.End) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, m)
		}
	}
	return out
}

// LaneCycles converts lane activity into serialized per-lane cycles: each
// dependent table fetch stalls for the SRAM pipeline depth, and
// intersections run at the SIMD width of the intersection units. This is
// the conversion the timing model applies to the batch totals; applied to
// one read's delta it gives the cycles a lane spends on that read.
func LaneCycles(s Stats, cfg Config) int64 {
	return s.Fetches*int64(cfg.FetchCycles) +
		(s.IntersectionOps+int64(cfg.IntersectOpsPerCycle)-1)/int64(cfg.IntersectOpsPerCycle)
}

func diff(after, before Stats) Stats {
	return Stats{
		Fetches:         after.Fetches - before.Fetches,
		IntersectionOps: after.IntersectionOps - before.IntersectionOps,
		Pivots:          after.Pivots - before.Pivots,
		RMEMs:           after.RMEMs - before.RMEMs,
		Reads:           after.Reads - before.Reads,
	}
}

func macros(bitsTotal int64, model energy.ArrayModel) int {
	per := int64(model.Rows * model.Bits)
	return int((bitsTotal + per - 1) / per)
}

func sramAreaMM2(cfg Config, model energy.ArrayModel) float64 {
	return float64(macros(cfg.SRAMBytes()*8, model)) * model.AreaUM2 / 1e6
}
