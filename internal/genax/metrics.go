package genax

import "casa/internal/metrics"

// Engine is the metric-name prefix for the GenAx baseline.
const Engine = "genax"

// publishStats adds one lane-activity snapshot into the genax/* counters.
func publishStats(reg *metrics.Registry, s Stats) {
	reg.Counter("genax/lanes/fetches").Add(s.Fetches)
	reg.Counter("genax/lanes/intersection_ops").Add(s.IntersectionOps)
	reg.Counter("genax/smem/pivots").Add(s.Pivots)
	reg.Counter("genax/smem/rmems").Add(s.RMEMs)
	reg.Counter("genax/reads/seeded").Add(s.Reads)
}

// PublishMetrics adds this shard's additive activity counters into reg.
// Shard registries merged in any order equal the sequential run's.
func (act *Activity) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, act.Stats)
	reg.Counter("genax/dram/read_stream_bytes").Add(act.ReadBytes)
}

// PublishMetrics adds this segment's accumulated table counters into reg
// — for direct (non-Accelerator) use of the seed & position tables, e.g.
// as an SMEM finder. Call once per run per table instance.
func (t *Tables) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, t.Stats)
}

// PublishModelMetrics publishes the finalized model outputs of a reduced
// Result. Call once per run, after Reduce.
func (res *Result) PublishModelMetrics(reg *metrics.Registry) {
	reg.Gauge("genax/model/reads").Set(float64(len(res.Reads)))
	reg.Gauge("genax/model/seconds").Set(res.Seconds)
	reg.Gauge("genax/model/throughput_reads_per_s").Set(res.Throughput)
	reg.Gauge("genax/model/reads_per_mj").Set(res.ReadsPerMJ)
	res.DRAM.PublishMetrics(reg, Engine)
	res.Energy.PublishMetrics(reg, Engine)
}

// PublishMetrics publishes the aggregated lane counters and the model
// outputs of a sequential (single-shard) run. The read-stream byte
// counter is only available from per-shard activities and is not
// re-published here.
func (res *Result) PublishMetrics(reg *metrics.Registry) {
	publishStats(reg, res.Stats)
	res.PublishModelMetrics(reg)
}
