package genax

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

func testConfig() Config {
	c := DefaultConfig()
	c.K = 6
	c.MinSMEM = 6
	c.PartitionBases = 1 << 16
	return c
}

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func plantedRead(rng *rand.Rand, ref dna.Sequence, length, mutations int) dna.Sequence {
	start := rng.Intn(len(ref) - length)
	read := ref[start : start+length].Clone()
	for m := 0; m < mutations; m++ {
		read[rng.Intn(length)] = dna.Base(rng.Intn(4))
	}
	return read
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	for i, bad := range []Config{
		{K: 0, MinSMEM: 19, Lanes: 1, PartitionBases: 100, ClockHz: 1},
		{K: 16, MinSMEM: 19, Lanes: 1, PartitionBases: 100, ClockHz: 1},
		{K: 12, MinSMEM: 11, Lanes: 1, PartitionBases: 100, ClockHz: 1},
		{K: 12, MinSMEM: 19, Lanes: 0, PartitionBases: 100, ClockHz: 1},
		{K: 12, MinSMEM: 19, Lanes: 1, PartitionBases: 5, ClockHz: 1},
		{K: 12, MinSMEM: 19, Lanes: 1, PartitionBases: 100, ClockHz: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSeedTableLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	ref := randSeq(rng, 3000)
	tb, err := BuildTables(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[dna.Kmer][]int32)
	for i := 0; i+cfg.K <= len(ref); i++ {
		km := dna.PackKmer(ref, i, cfg.K)
		counts[km] = append(counts[km], int32(i))
	}
	for km, want := range counts {
		got := tb.lookup(km)
		if len(got) != len(want) {
			t.Fatalf("lookup(%s) = %d positions, want %d", dna.KmerString(km, cfg.K), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lookup(%s)[%d] = %d, want %d", dna.KmerString(km, cfg.K), i, got[i], want[i])
			}
		}
	}
	// Absent k-mer: empty, still one fetch.
	before := tb.Stats.Fetches
	var absent dna.Kmer
	for len(counts[absent]) > 0 {
		absent++
	}
	if got := tb.lookup(absent); len(got) != 0 {
		t.Errorf("absent k-mer returned %v", got)
	}
	if tb.Stats.Fetches != before+1 {
		t.Error("fetch not charged")
	}
}

func TestIntersectOffset(t *testing.T) {
	a := []int32{1, 5, 9, 20}
	b := []int32{7, 11, 30}
	got := intersectOffset(a, b, 2)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("intersectOffset = %v, want [5 9]", got)
	}
	if r := intersectOffset(nil, b, 0); len(r) != 0 {
		t.Errorf("empty a: %v", r)
	}
	if r := intersectOffset(a, nil, 0); len(r) != 0 {
		t.Errorf("empty b: %v", r)
	}
}

func TestFindSMEMsMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	for trial := 0; trial < 15; trial++ {
		ref := randSeq(rng, 400+rng.Intn(600))
		tb, err := BuildTables(ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		golden := smem.BruteForce{Ref: ref}
		for r := 0; r < 6; r++ {
			read := plantedRead(rng, ref, 40+rng.Intn(40), rng.Intn(5))
			want := golden.FindSMEMs(read, cfg.MinSMEM)
			got := tb.FindSMEMs(read, cfg.MinSMEM)
			if !smem.Equal(want, got) {
				t.Fatalf("trial %d read %d:\n got %v\nwant %v\nread %s", trial, r, got, want, read)
			}
		}
	}
}

func TestFindSMEMsRepetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	unit := randSeq(rng, 8)
	var ref dna.Sequence
	for i := 0; i < 60; i++ {
		ref = append(ref, unit...)
		if i%6 == 0 {
			ref = append(ref, randSeq(rng, 5)...)
		}
	}
	tb, err := BuildTables(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	for r := 0; r < 12; r++ {
		read := plantedRead(rng, ref, 50, rng.Intn(3))
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		got := tb.FindSMEMs(read, cfg.MinSMEM)
		if !smem.Equal(want, got) {
			t.Fatalf("read %d:\n got %v\nwant %v", r, got, want)
		}
	}
}

func TestEveryPivotFetches(t *testing.T) {
	// GenAx's defining cost: no pre-filter, every pivot fetches at least
	// the first k-mer (§2.2).
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	ref := randSeq(rng, 2000)
	tb, err := BuildTables(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	read := randSeq(rng, 60)
	tb.FindSMEMs(read, cfg.MinSMEM)
	pivots := int64(len(read) - cfg.K + 1)
	if tb.Stats.Pivots != pivots {
		t.Errorf("Pivots = %d, want %d", tb.Stats.Pivots, pivots)
	}
	if tb.Stats.Fetches < pivots {
		t.Errorf("Fetches = %d < pivots %d", tb.Stats.Fetches, pivots)
	}
}

func TestAcceleratorMatchesWholeGenomeGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	cfg.PartitionBases = 700
	ref := randSeq(rng, 2500)
	a, err := NewWithOverlap(ref, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", a.Segments())
	}
	golden := smem.BruteForce{Ref: ref}
	var reads []dna.Sequence
	for i := 0; i < 15; i++ {
		reads = append(reads, plantedRead(rng, ref, 50, rng.Intn(4)))
	}
	res := a.SeedReads(reads)
	for i, read := range reads {
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		if !smem.SameIntervals(want, res.Reads[i]) {
			t.Fatalf("read %d:\n got %v\nwant %v", i, res.Reads[i], want)
		}
	}
}

func TestAcceleratorTimingAndEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig()
	ref := randSeq(rng, 5000)
	a, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Sequence
	for i := 0; i < 20; i++ {
		reads = append(reads, plantedRead(rng, ref, 50, rng.Intn(3)))
	}
	res := a.SeedReads(reads)
	if res.Seconds <= 0 || res.Throughput <= 0 || res.ReadsPerMJ <= 0 {
		t.Fatalf("model outputs missing: %+v", res.Seconds)
	}
	if res.Stats.IntersectionOps == 0 {
		t.Error("no intersections counted")
	}
	if res.Energy.PowerW() <= 0 {
		t.Error("no power modelled")
	}
	if res.DRAM.TotalBytes() <= 0 {
		t.Error("no DRAM traffic")
	}
}

func TestSRAMBytesPaperScale(t *testing.T) {
	// GenAx's published setup: 68 MB SRAM for the 12-mer tables over a
	// 1.5 MB (6 Mbase) segment. 4^12 x 4B + 6M x 4B = 88 MB is the right
	// order; the paper's 68 MB packs positions tighter. Accept the band.
	got := float64(DefaultConfig().SRAMBytes()) / (1 << 20)
	if got < 50 || got > 100 {
		t.Errorf("SRAM = %.1f MB, want the ~68 MB scale", got)
	}
}

func TestNewErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := New(nil, cfg); err == nil {
		t.Error("empty ref accepted")
	}
	if _, err := NewWithOverlap(make(dna.Sequence, 10), cfg, cfg.PartitionBases); err == nil {
		t.Error("bad overlap accepted")
	}
}
