package idxio

import (
	"bytes"
	"io"
	"testing"
)

// FuzzIndexRoundTrip writes a container from fuzz-chosen header fields
// and payloads, then requires the reader to reproduce them exactly.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add("casa", int64(19), int64(4096), true, "chr1", int64(1000), []byte("payload-a"), []byte{})
	f.Add("sharded:fmindex", int64(0), int64(-1), false, "", int64(0), []byte{}, bytes.Repeat([]byte{7}, 5000))
	f.Fuzz(func(t *testing.T, eng string, minSMEM, part int64, exact bool,
		chromName string, chromLen int64, payloadA, payloadB []byte) {
		if len(eng) > maxNameLen || len(chromName) > maxNameLen {
			t.Skip()
		}
		hdr := Header{
			Engine:    eng,
			MinSMEM:   int(minSMEM),
			Partition: int(part),
			Exact:     exact,
			Chromosomes: []Chromosome{
				{Name: chromName, Start: 0, Length: chromLen},
			},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, hdr)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		if err := w.Section("a", func(w io.Writer) error {
			_, err := w.Write(payloadA)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Prefixed("p/").Section("b", func(w io.Writer) error {
			_, err := w.Write(payloadB)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, got, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		if got.Engine != eng || got.MinSMEM != int(minSMEM) ||
			got.Partition != int(part) || got.Exact != exact {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Chromosomes) != 1 || got.Chromosomes[0].Name != chromName ||
			got.Chromosomes[0].Length != chromLen {
			t.Fatalf("chromosomes mismatch: %+v", got.Chromosomes)
		}
		sec, err := r.Section("a")
		if err != nil {
			t.Fatal(err)
		}
		if b, err := io.ReadAll(sec); err != nil || !bytes.Equal(b, payloadA) {
			t.Fatalf("payload a mismatch (%v)", err)
		}
		sec, err = r.Prefixed("p/").Section("b")
		if err != nil {
			t.Fatal(err)
		}
		if b, err := io.ReadAll(sec); err != nil || !bytes.Equal(b, payloadB) {
			t.Fatalf("payload b mismatch (%v)", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzIndexCorrupted feeds arbitrary bytes — seeded with mutations of a
// valid container — to every reader entry point. The contract: errors,
// never panics, and never allocations proportional to lying on-disk
// lengths rather than actual input size.
func FuzzIndexCorrupted(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Engine:      "fmindex",
		MinSMEM:     19,
		Chromosomes: []Chromosome{{Name: "chr1", Start: 0, Length: 100}},
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Section("fmindex/fwd", func(w io.Writer) error {
		_, err := w.Write([]byte("some payload bytes"))
		return err
	}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncated
	f.Add([]byte("casa-idx"))                 // preamble only
	f.Add([]byte{})                           // empty
	f.Add(bytes.Repeat([]byte{0xFF}, 64))     // garbage
	flipped := append([]byte(nil), valid...)  //
	flipped[len(flipped)-4] ^= 0xFF           // payload corruption
	f.Add(flipped)                            //
	oversize := append([]byte(nil), valid...) //
	for i := 0; i < 8; i++ {                  // forge a huge section
		oversize[len(oversize)-2-18-8+i] = 0xFE //   length field
	}
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		// ReadInfo exercises the full walk (header, every section, CRC).
		hdr, infos, err := ReadInfo(bytes.NewReader(data))
		_ = hdr
		_ = infos
		_ = err

		// The streaming path: open, read a section if it exists, close.
		r, _, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		sec, err := r.Section("fmindex/fwd")
		if err == nil {
			_, _ = io.Copy(io.Discard, sec)
		}
		_ = r.Close()
	})
}
