package idxio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func sampleHeader() Header {
	return Header{
		Engine:       "fmindex",
		MinSMEM:      19,
		Partition:    4096,
		TableK:       8,
		CacheBytes:   1 << 14,
		Exact:        true,
		Shards:       5,
		ShardOverlap: 512,
		Chromosomes: []Chromosome{
			{Name: "chr1", Start: 0, Length: 1000},
			{Name: "chr2", Start: 1256, Length: 2000},
		},
	}
}

// buildSample writes a two-section container and returns its bytes.
func buildSample(t *testing.T, hdr Header) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Section("fmindex/fwd", func(w io.Writer) error {
		_, err := w.Write([]byte("forward-payload"))
		return err
	}); err != nil {
		t.Fatalf("Section fwd: %v", err)
	}
	if err := w.Section("fmindex/rev", func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte{0xAB}, 10000))
		return err
	}); err != nil {
		t.Fatalf("Section rev: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	hdr := sampleHeader()
	data := buildSample(t, hdr)

	r, got, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got.Engine != hdr.Engine || got.MinSMEM != hdr.MinSMEM ||
		got.Partition != hdr.Partition || got.TableK != hdr.TableK ||
		got.CacheBytes != hdr.CacheBytes || got.Exact != hdr.Exact ||
		got.Shards != hdr.Shards || got.ShardOverlap != hdr.ShardOverlap {
		t.Fatalf("header mismatch: got %+v want %+v", got, hdr)
	}
	if len(got.Chromosomes) != 2 || got.Chromosomes[1] != hdr.Chromosomes[1] {
		t.Fatalf("chromosomes mismatch: %+v", got.Chromosomes)
	}

	sec, err := r.Section("fmindex/fwd")
	if err != nil {
		t.Fatalf("Section fwd: %v", err)
	}
	payload, err := io.ReadAll(sec)
	if err != nil {
		t.Fatalf("reading fwd: %v", err)
	}
	if string(payload) != "forward-payload" {
		t.Fatalf("fwd payload = %q", payload)
	}
	sec, err = r.Section("fmindex/rev")
	if err != nil {
		t.Fatalf("Section rev: %v", err)
	}
	payload, err = io.ReadAll(sec)
	if err != nil {
		t.Fatalf("reading rev: %v", err)
	}
	if len(payload) != 10000 || payload[0] != 0xAB {
		t.Fatalf("rev payload len=%d", len(payload))
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// A reader may skip a section it does not care to stream: the next
// Section call drains and CRC-checks the previous one.
func TestSkipSectionStillChecksCRC(t *testing.T) {
	data := buildSample(t, sampleHeader())
	r, _, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/fwd"); err != nil {
		t.Fatal(err)
	}
	// Do not read fwd at all; jump straight to rev, then Close.
	if _, err := r.Section("fmindex/rev"); err != nil {
		t.Fatalf("skipping fwd: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close after skip: %v", err)
	}
}

func TestPrefixedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Engine: "sharded:cpu"})
	if err != nil {
		t.Fatal(err)
	}
	for i, payload := range []string{"alpha", "beta"} {
		pw := w.Prefixed("shard" + string(rune('0'+i)) + "/")
		if err := pw.Section("cpu/config", func(w io.Writer) error {
			_, err := io.WriteString(w, payload)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := pw.Close(); err == nil {
			t.Fatal("closing a prefixed writer should fail")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"alpha", "beta"} {
		pr := r.Prefixed("shard" + string(rune('0'+i)) + "/")
		sec, err := pr.Section("cpu/config")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		got, err := io.ReadAll(sec)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("shard %d payload = %q want %q", i, got, want)
		}
		if err := pr.Close(); err == nil {
			t.Fatal("closing a prefixed reader should fail")
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWrongSectionNameNamesBoth(t *testing.T) {
	data := buildSample(t, sampleHeader())
	r, _, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Section("fmindex/rev") // actual first section is fwd
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "fmindex/rev") || !strings.Contains(err.Error(), "fmindex/fwd") {
		t.Fatalf("error should name both sections: %v", err)
	}
}

func TestMissingSectionAtEnd(t *testing.T) {
	data := buildSample(t, sampleHeader())
	r, _, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/fwd"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/rev"); err != nil {
		t.Fatal(err)
	}
	_, err = r.Section("fmindex/extra")
	if err == nil || !strings.Contains(err.Error(), "fmindex/extra") {
		t.Fatalf("expected error naming the missing section, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	data := buildSample(t, sampleHeader())

	bad := append([]byte(nil), data...)
	copy(bad, "nonsense")
	if _, _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[8] = 99 // version field
	if _, _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
}

func TestHeaderCRCMismatch(t *testing.T) {
	data := buildSample(t, sampleHeader())
	bad := append([]byte(nil), data...)
	bad[20] ^= 0xFF // inside the header payload
	_, _, err := NewReader(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected header checksum error, got %v", err)
	}
}

func TestPayloadCRCMismatchNamesSection(t *testing.T) {
	data := buildSample(t, sampleHeader())
	// Flip the last payload byte of the rev section (just before the
	// 2-byte end marker).
	bad := append([]byte(nil), data...)
	bad[len(bad)-3] ^= 0xFF
	r, _, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/fwd"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/rev"); err != nil {
		t.Fatal(err)
	}
	err = r.Close()
	if err == nil || !strings.Contains(err.Error(), "fmindex/rev") || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected rev checksum error, got %v", err)
	}
}

func TestTruncationNamesSection(t *testing.T) {
	data := buildSample(t, sampleHeader())
	// Cut the container mid-way through the big rev payload.
	bad := data[:len(data)-5000]
	r, _, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("fmindex/fwd"); err != nil {
		t.Fatal(err)
	}
	sec, err := r.Section("fmindex/rev")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(sec)
	if err == nil || !strings.Contains(err.Error(), "fmindex/rev") || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("expected rev truncation error, got %v", err)
	}
}

func TestOversizedSectionLengthFailsBounded(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Engine: "casa"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("casa/accelerator", func(w io.Writer) error {
		_, err := w.Write([]byte("tiny"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The payload length u64 sits after nameLen(2) + name + crc(4).
	// Forge it to claim an enormous payload.
	off := len(data) - 2 /*end marker*/ - 4 /*payload*/ - 8 /*length*/
	for i := 0; i < 8; i++ {
		data[off+i] = 0xFF
	}
	r, _, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Section("casa/accelerator")
	if err == nil || !strings.Contains(err.Error(), "casa/accelerator") {
		t.Fatalf("expected bounded failure naming the section, got %v", err)
	}
}

func TestReadInfo(t *testing.T) {
	data := buildSample(t, sampleHeader())
	hdr, infos, err := ReadInfo(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if hdr.Engine != "fmindex" {
		t.Fatalf("engine = %q", hdr.Engine)
	}
	if len(infos) != 2 {
		t.Fatalf("sections = %d", len(infos))
	}
	if infos[0].Name != "fmindex/fwd" || infos[0].Size != int64(len("forward-payload")) {
		t.Fatalf("info[0] = %+v", infos[0])
	}
	if infos[1].Name != "fmindex/rev" || infos[1].Size != 10000 {
		t.Fatalf("info[1] = %+v", infos[1])
	}
	if infos[0].CRC == 0 && infos[1].CRC == 0 {
		t.Fatal("CRCs not recorded")
	}
}

func TestEmptyContainer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Engine: "brute"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, hdr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Engine != "brute" {
		t.Fatalf("engine = %q", hdr.Engine)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, infos, err := ReadInfo(bytes.NewReader(buf.Bytes())); err != nil || len(infos) != 0 {
		t.Fatalf("ReadInfo on empty container: %v %v", infos, err)
	}
}

func TestWriterRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Engine: "casa"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("", func(io.Writer) error { return nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	long := strings.Repeat("x", maxNameLen+1)
	if err := w.Section(long, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("oversized name accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("late", func(io.Writer) error { return nil }); err == nil {
		t.Fatal("section after Close accepted")
	}
}
