// Package idxio implements the casa-idx/v1 on-disk index container: a
// versioned, checksummed binary envelope every persisting engine
// serializes into. The layout is
//
//	magic "casa-idx" | u32 version | u32 headerLen | header | u32 crc(header)
//	section*  ( u16 nameLen | name | u32 crc(payload) | u64 payloadLen | payload )
//	u16 0     (end marker)
//
// with every integer little-endian. The header carries the engine's
// registry name, the cross-engine construction options and the reference
// chromosome map; each engine then appends the sections it owns
// ("casa/accelerator", "fmindex/fwd", ...), so the container never needs
// to know an engine's internals. Sharded engines namespace their inner
// engines' sections with Prefixed.
//
// Readers are streaming and hostile-input safe: section payloads are
// consumed through length-limited, CRC-checked readers in bounded
// chunks, so a corrupted or lying section length fails with an error
// naming the section instead of panicking or allocating unbounded
// memory. The fuzz targets in this package pin that contract.
package idxio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a casa-idx container; Version is the format version
// this package reads and writes.
const (
	Magic   = "casa-idx"
	Version = 1
)

// Format bounds: a reader never trusts an on-disk length beyond these,
// so corrupted files cannot drive unbounded allocations.
const (
	maxHeaderLen   = 1 << 24 // 16 MiB of header is already implausible
	maxNameLen     = 1 << 10
	maxChromosomes = 1 << 20
)

// Chromosome is one reference sequence's placement in the flattened
// reference (mirrors refidx.Chromosome without importing it).
type Chromosome struct {
	Name   string
	Start  int64
	Length int64
}

// Header is the container's self-description: which engine the sections
// belong to, the cross-engine options it was built with, and the
// chromosome map of the flattened reference. Engine-native configuration
// (core.Config, cpu.Config, ...) travels inside the engine's own
// sections, not here.
type Header struct {
	Engine       string
	MinSMEM      int
	Partition    int
	TableK       int
	CacheBytes   int64
	Exact        bool
	Shards       int
	ShardOverlap int
	Chromosomes  []Chromosome
}

// SectionInfo describes one section for inspection (casa-index -info).
type SectionInfo struct {
	Name string
	Size int64
	CRC  uint32
}

// ---------------------------------------------------------------------------
// Writer

// writerState is the shared core behind a Writer and its Prefixed views.
type writerState struct {
	w      io.Writer
	buf    bytes.Buffer // payload staging: CRC and length precede the payload
	closed bool
}

// Writer appends named, CRC'd sections to a container. Engines receive a
// Writer in SaveIndex and call Section once per payload they own;
// sections are written in call order and read back in the same order.
type Writer struct {
	st     *writerState
	prefix string
}

// NewWriter writes the container preamble (magic, version, header) to w
// and returns a section writer positioned at the first section.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	var hb bytes.Buffer
	if err := writeString16(&hb, hdr.Engine); err != nil {
		return nil, fmt.Errorf("idxio: header: %w", err)
	}
	for _, v := range []int64{
		int64(hdr.MinSMEM), int64(hdr.Partition), int64(hdr.TableK),
		hdr.CacheBytes, int64(hdr.Shards), int64(hdr.ShardOverlap),
	} {
		writeU64(&hb, uint64(v))
	}
	if hdr.Exact {
		hb.WriteByte(1)
	} else {
		hb.WriteByte(0)
	}
	if len(hdr.Chromosomes) > maxChromosomes {
		return nil, fmt.Errorf("idxio: header: %d chromosomes exceeds the format limit", len(hdr.Chromosomes))
	}
	writeU32(&hb, uint32(len(hdr.Chromosomes)))
	for _, c := range hdr.Chromosomes {
		if err := writeString16(&hb, c.Name); err != nil {
			return nil, fmt.Errorf("idxio: header: chromosome: %w", err)
		}
		writeU64(&hb, uint64(c.Start))
		writeU64(&hb, uint64(c.Length))
	}
	if hb.Len() > maxHeaderLen {
		return nil, fmt.Errorf("idxio: header of %d bytes exceeds the format limit", hb.Len())
	}

	var pre bytes.Buffer
	pre.WriteString(Magic)
	writeU32(&pre, Version)
	writeU32(&pre, uint32(hb.Len()))
	pre.Write(hb.Bytes())
	writeU32(&pre, crc32.ChecksumIEEE(hb.Bytes()))
	if _, err := w.Write(pre.Bytes()); err != nil {
		return nil, fmt.Errorf("idxio: writing header: %w", err)
	}
	return &Writer{st: &writerState{w: w}}, nil
}

// Prefixed returns a view of this writer that prepends prefix to every
// section name, so a composite engine can hand each sub-engine its own
// namespace ("shard0/" + "fmindex/fwd" = "shard0/fmindex/fwd").
func (w *Writer) Prefixed(prefix string) *Writer {
	return &Writer{st: w.st, prefix: w.prefix + prefix}
}

// Section appends one named section whose payload is produced by fn. The
// payload is staged in memory so its length and CRC precede it on disk;
// engine payloads are at most a few times the reference size, which the
// builder held in memory anyway.
func (w *Writer) Section(name string, fn func(io.Writer) error) error {
	if w.st.closed {
		return fmt.Errorf("idxio: section %q: writer already closed", name)
	}
	full := w.prefix + name
	if full == "" || len(full) > maxNameLen {
		return fmt.Errorf("idxio: section name %q must be 1..%d bytes", full, maxNameLen)
	}
	w.st.buf.Reset()
	if err := fn(&w.st.buf); err != nil {
		return fmt.Errorf("idxio: section %q: %w", full, err)
	}
	payload := w.st.buf.Bytes()
	var hd bytes.Buffer
	writeU16(&hd, uint16(len(full)))
	hd.WriteString(full)
	writeU32(&hd, crc32.ChecksumIEEE(payload))
	writeU64(&hd, uint64(len(payload)))
	if _, err := w.st.w.Write(hd.Bytes()); err != nil {
		return fmt.Errorf("idxio: section %q: %w", full, err)
	}
	if _, err := w.st.w.Write(payload); err != nil {
		return fmt.Errorf("idxio: section %q: %w", full, err)
	}
	return nil
}

// Close writes the end-of-sections marker. Only the root writer may be
// closed; prefixed views belong to their composite's caller.
func (w *Writer) Close() error {
	if w.prefix != "" {
		return fmt.Errorf("idxio: cannot close a prefixed section writer (%q)", w.prefix)
	}
	if w.st.closed {
		return nil
	}
	w.st.closed = true
	var hd bytes.Buffer
	writeU16(&hd, 0)
	if _, err := w.st.w.Write(hd.Bytes()); err != nil {
		return fmt.Errorf("idxio: writing end marker: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reader

// readerState is the shared core behind a Reader and its Prefixed views.
type readerState struct {
	r   io.Reader
	cur *sectionReader // section currently being consumed, if any
	end bool           // end marker consumed
}

// Reader walks a container's sections in order. Engines receive a Reader
// in LoadIndex and call Section once per payload they wrote, in the same
// order; payload bytes stream through a CRC-checking, length-limited
// reader, and the CRC is verified when the section is finished (drained
// by the next Section or Close call).
type Reader struct {
	st     *readerState
	prefix string
}

// NewReader parses the container preamble from r and returns a section
// reader positioned at the first section.
func NewReader(r io.Reader) (*Reader, Header, error) {
	var hdr Header
	var pre [16]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, hdr, fmt.Errorf("idxio: reading preamble: %w", err)
	}
	if string(pre[:8]) != Magic {
		return nil, hdr, fmt.Errorf("idxio: bad magic %q (not a casa-idx container)", pre[:8])
	}
	if v := binary.LittleEndian.Uint32(pre[8:12]); v != Version {
		return nil, hdr, fmt.Errorf("idxio: format version %d, this build reads version %d", v, Version)
	}
	hlen := binary.LittleEndian.Uint32(pre[12:16])
	if hlen > maxHeaderLen {
		return nil, hdr, fmt.Errorf("idxio: header length %d exceeds the format limit", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, hdr, fmt.Errorf("idxio: reading header: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return nil, hdr, fmt.Errorf("idxio: reading header checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(hb), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return nil, hdr, fmt.Errorf("idxio: header checksum mismatch (file %08x, computed %08x)", want, got)
	}
	hdr, err := parseHeader(hb)
	if err != nil {
		return nil, hdr, err
	}
	return &Reader{st: &readerState{r: r}}, hdr, nil
}

func parseHeader(b []byte) (Header, error) {
	var hdr Header
	p := &byteParser{b: b}
	hdr.Engine = p.string16()
	hdr.MinSMEM = int(p.u64())
	hdr.Partition = int(p.u64())
	hdr.TableK = int(p.u64())
	hdr.CacheBytes = int64(p.u64())
	hdr.Shards = int(p.u64())
	hdr.ShardOverlap = int(p.u64())
	hdr.Exact = p.u8() != 0
	n := p.u32()
	if p.err == nil && n > maxChromosomes {
		return hdr, fmt.Errorf("idxio: header: %d chromosomes exceeds the format limit", n)
	}
	for i := uint32(0); i < n && p.err == nil; i++ {
		c := Chromosome{Name: p.string16()}
		c.Start = int64(p.u64())
		c.Length = int64(p.u64())
		hdr.Chromosomes = append(hdr.Chromosomes, c)
	}
	if p.err != nil {
		return hdr, fmt.Errorf("idxio: header: %w", p.err)
	}
	if len(p.b) != 0 {
		return hdr, fmt.Errorf("idxio: header: %d trailing bytes", len(p.b))
	}
	return hdr, nil
}

// Prefixed returns a view of this reader that expects prefix before
// every section name, mirroring Writer.Prefixed.
func (r *Reader) Prefixed(prefix string) *Reader {
	return &Reader{st: r.st, prefix: r.prefix + prefix}
}

// Section finishes the previous section (draining and CRC-checking it)
// and opens the next one, which must carry the given name. The returned
// reader yields exactly the section's payload bytes.
func (r *Reader) Section(name string) (io.Reader, error) {
	full := r.prefix + name
	got, sr, err := r.next()
	if err != nil {
		return nil, err
	}
	if sr == nil {
		return nil, fmt.Errorf("idxio: section %q: container ended before it", full)
	}
	if got != full {
		return nil, fmt.Errorf("idxio: section %q: found %q instead", full, got)
	}
	return sr, nil
}

// next finishes the current section and reads the next section header.
// A nil sectionReader with nil error means the end marker was reached.
func (r *Reader) next() (string, *sectionReader, error) {
	st := r.st
	if st.cur != nil {
		if err := st.cur.finish(); err != nil {
			return "", nil, err
		}
		st.cur = nil
	}
	if st.end {
		return "", nil, nil
	}
	var lb [2]byte
	if _, err := io.ReadFull(st.r, lb[:]); err != nil {
		return "", nil, fmt.Errorf("idxio: reading section header: %w", err)
	}
	nameLen := binary.LittleEndian.Uint16(lb[:])
	if nameLen == 0 {
		st.end = true
		return "", nil, nil
	}
	if nameLen > maxNameLen {
		return "", nil, fmt.Errorf("idxio: section name length %d exceeds the format limit", nameLen)
	}
	nb := make([]byte, int(nameLen)+12)
	if _, err := io.ReadFull(st.r, nb); err != nil {
		return "", nil, fmt.Errorf("idxio: reading section header: %w", err)
	}
	name := string(nb[:nameLen])
	crc := binary.LittleEndian.Uint32(nb[nameLen : nameLen+4])
	size := binary.LittleEndian.Uint64(nb[nameLen+4:])
	if size > 1<<62 {
		return name, nil, fmt.Errorf("idxio: section %q: implausible payload length %d", name, size)
	}
	sr := &sectionReader{name: name, r: st.r, remaining: int64(size), want: crc, crc: crc32.NewIEEE()}
	st.cur = sr
	return name, sr, nil
}

// Close drains any unfinished section and requires the end marker,
// verifying that every written section was accounted for.
func (r *Reader) Close() error {
	if r.prefix != "" {
		return fmt.Errorf("idxio: cannot close a prefixed section reader (%q)", r.prefix)
	}
	for !r.st.end {
		name, sr, err := r.next()
		if err != nil {
			return err
		}
		if sr == nil {
			break
		}
		if err := sr.finish(); err != nil {
			return err
		}
		_ = name
	}
	return nil
}

// sectionReader streams one section's payload, checking length and CRC.
type sectionReader struct {
	name      string
	r         io.Reader
	remaining int64
	want      uint32
	crc       interface {
		io.Writer
		Sum32() uint32
	}
}

func (s *sectionReader) Read(p []byte) (int, error) {
	if s.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > s.remaining {
		p = p[:s.remaining]
	}
	n, err := s.r.Read(p)
	if n > 0 {
		s.remaining -= int64(n)
		s.crc.Write(p[:n])
	}
	if err == io.EOF && s.remaining > 0 {
		return n, fmt.Errorf("idxio: section %q: truncated payload (%d bytes missing)", s.name, s.remaining)
	}
	return n, err
}

// finish drains the unread remainder in bounded chunks and verifies the
// section's checksum.
func (s *sectionReader) finish() error {
	var scratch [4096]byte
	for s.remaining > 0 {
		n := s.remaining
		if n > int64(len(scratch)) {
			n = int64(len(scratch))
		}
		if _, err := io.ReadFull(s.r, scratch[:n]); err != nil {
			return fmt.Errorf("idxio: section %q: truncated payload: %w", s.name, err)
		}
		s.crc.Write(scratch[:n])
		s.remaining -= n
	}
	if got := s.crc.Sum32(); got != s.want {
		return fmt.Errorf("idxio: section %q: checksum mismatch (file %08x, computed %08x)", s.name, s.want, got)
	}
	return nil
}

// ReadInfo walks a whole container, verifying every checksum, and
// returns its header and section catalogue (casa-index -info).
func ReadInfo(r io.Reader) (Header, []SectionInfo, error) {
	sr, hdr, err := NewReader(r)
	if err != nil {
		return hdr, nil, err
	}
	var infos []SectionInfo
	for {
		name, sec, err := sr.next()
		if err != nil {
			return hdr, infos, err
		}
		if sec == nil {
			return hdr, infos, nil
		}
		size, want := sec.remaining, sec.want
		if err := sec.finish(); err != nil {
			return hdr, infos, err
		}
		sr.st.cur = nil
		infos = append(infos, SectionInfo{Name: name, Size: size, CRC: want})
	}
}

// ---------------------------------------------------------------------------
// Little-endian primitives

func writeU16(w *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.Write(b[:])
}

func writeU32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeString16(w *bytes.Buffer, s string) error {
	if len(s) > maxNameLen {
		return fmt.Errorf("string %q exceeds %d bytes", s, maxNameLen)
	}
	writeU16(w, uint16(len(s)))
	w.WriteString(s)
	return nil
}

// byteParser consumes little-endian primitives from a bounded buffer,
// recording the first error instead of panicking on truncation.
type byteParser struct {
	b   []byte
	err error
}

func (p *byteParser) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if len(p.b) < n {
		p.err = fmt.Errorf("truncated (%d bytes left, %d needed)", len(p.b), n)
		return nil
	}
	out := p.b[:n]
	p.b = p.b[n:]
	return out
}

func (p *byteParser) u8() byte {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *byteParser) u16() uint16 {
	b := p.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (p *byteParser) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *byteParser) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *byteParser) string16() string {
	n := p.u16()
	if n > maxNameLen {
		p.err = fmt.Errorf("string length %d exceeds the format limit", n)
		return ""
	}
	b := p.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}
