package seedex

import (
	"math/rand"
	"testing"

	"casa/internal/align"
	"casa/internal/dna"
)

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.Machines = 0
	if bad.Validate() == nil {
		t.Error("zero machines accepted")
	}
	bad = DefaultConfig()
	bad.Band = 0
	if bad.Validate() == nil {
		t.Error("zero band accepted")
	}
	bad = DefaultConfig()
	bad.Scoring.Match = 0
	if bad.Validate() == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("empty reference accepted")
	}
}

func TestExtendExactRead(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randSeq(rng, 2000)
	m, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const origin = 500
	read := ref[origin : origin+101].Clone()
	seed := Seed{QStart: 10, QEnd: 40, RefPos: origin + 10}
	a, ok := m.ExtendRead(read, []Seed{seed})
	if !ok {
		t.Fatal("extension failed")
	}
	if a.RefStart != origin {
		t.Errorf("RefStart = %d, want %d", a.RefStart, origin)
	}
	if a.Score != 101 {
		t.Errorf("score = %d, want 101 (all matches)", a.Score)
	}
	if a.Cigar.String() != "101M" {
		t.Errorf("cigar = %s", a.Cigar)
	}
	if a.EditDist != 0 {
		t.Errorf("edit distance = %d, want 0", a.EditDist)
	}
}

func TestExtendWithMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randSeq(rng, 2000)
	m, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const origin = 800
	read := ref[origin : origin+101].Clone()
	read[20] ^= 1
	read[70] ^= 2
	seed := Seed{QStart: 30, QEnd: 60, RefPos: origin + 30}
	a, ok := m.ExtendRead(read, []Seed{seed})
	if !ok {
		t.Fatal("extension failed")
	}
	sc := m.Config().Scoring
	want := 99*sc.Match - 2*sc.Mismatch
	if a.Score != want {
		t.Errorf("score = %d, want %d", a.Score, want)
	}
	if a.EditDist != 2 {
		t.Errorf("edit distance = %d, want 2", a.EditDist)
	}
}

func TestExtendPicksBestOfMultipleSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Two copies of a motif; the read matches copy B exactly and copy A
	// with mutations.
	motif := randSeq(rng, 101)
	mutated := motif.Clone()
	mutated[5] ^= 1
	mutated[50] ^= 3
	var ref dna.Sequence
	ref = append(ref, randSeq(rng, 300)...)
	aPos := len(ref)
	ref = append(ref, mutated...)
	ref = append(ref, randSeq(rng, 300)...)
	bPos := len(ref)
	ref = append(ref, motif...)
	ref = append(ref, randSeq(rng, 300)...)

	m, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seeds := []Seed{
		{QStart: 60, QEnd: 90, RefPos: int32(aPos + 60)},
		{QStart: 60, QEnd: 90, RefPos: int32(bPos + 60)},
	}
	a, ok := m.ExtendRead(motif, seeds)
	if !ok {
		t.Fatal("extension failed")
	}
	if a.RefStart != bPos {
		t.Errorf("chose RefStart %d, want the exact copy at %d", a.RefStart, bPos)
	}
	if a.EditDist != 0 {
		t.Errorf("edit distance = %d", a.EditDist)
	}
}

func TestExtendReadWithIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randSeq(rng, 1500)
	m, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const origin = 400
	window := ref[origin : origin+101]
	// Read = window with 2 bases deleted at 50.
	read := append(window[:50].Clone(), window[52:]...)
	seed := Seed{QStart: 0, QEnd: 40, RefPos: origin}
	a, ok := m.ExtendRead(read, seed0(seed))
	if !ok {
		t.Fatal("extension failed")
	}
	if a.EditDist > 2 {
		t.Errorf("edit distance = %d, want <= 2", a.EditDist)
	}
	hasDel := false
	for _, op := range a.Cigar {
		if op.Op == align.OpDelete {
			hasDel = true
		}
	}
	if !hasDel {
		t.Errorf("deletion not recovered: cigar %s", a.Cigar)
	}
}

func seed0(s Seed) []Seed { return []Seed{s} }

func TestExtendNoSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randSeq(rng, 500)
	m, _ := New(ref, DefaultConfig())
	if _, ok := m.ExtendRead(randSeq(rng, 50), nil); ok {
		t.Error("no-seed extension succeeded")
	}
	if _, ok := m.ExtendRead(nil, []Seed{{0, 10, 5}}); ok {
		t.Error("empty-read extension succeeded")
	}
}

func TestMaxHitsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := randSeq(rng, 3000)
	cfg := DefaultConfig()
	cfg.MaxHits = 3
	m, _ := New(ref, cfg)
	read := ref[100:201].Clone()
	var seeds []Seed
	for i := 0; i < 20; i++ {
		seeds = append(seeds, Seed{QStart: 0, QEnd: 30, RefPos: int32(100 + i)})
	}
	m.ExtendRead(read, seeds)
	if m.Stats.Extensions > 3 {
		t.Errorf("Extensions = %d, cap was 3", m.Stats.Extensions)
	}
}

func TestSecondsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randSeq(rng, 2000)
	m, _ := New(ref, DefaultConfig())
	if m.Seconds() != 0 {
		t.Error("idle machine has nonzero time")
	}
	for i := 0; i < 10; i++ {
		start := rng.Intn(len(ref) - 101)
		read := ref[start : start+101].Clone()
		m.ExtendRead(read, []Seed{{QStart: 0, QEnd: 50, RefPos: int32(start)}})
	}
	if m.Seconds() <= 0 {
		t.Error("no time accumulated")
	}
	if m.Stats.Extensions != 10 || m.Stats.EditRuns != 10 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestSecondScoreTracksRunnerUp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Two copies of a motif, one exact, one with a mismatch: the winner's
	// SecondScore must reflect the losing placement.
	motif := randSeq(rng, 80)
	worse := motif.Clone()
	worse[10] ^= 1
	var ref dna.Sequence
	ref = append(ref, randSeq(rng, 200)...)
	aPos := len(ref)
	ref = append(ref, worse...)
	ref = append(ref, randSeq(rng, 200)...)
	bPos := len(ref)
	ref = append(ref, motif...)
	ref = append(ref, randSeq(rng, 200)...)
	m, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	al, ok := m.ExtendRead(motif, []Seed{
		{QStart: 30, QEnd: 60, RefPos: int32(aPos + 30)},
		{QStart: 30, QEnd: 60, RefPos: int32(bPos + 30)},
	})
	if !ok {
		t.Fatal("extension failed")
	}
	sc := m.Config().Scoring
	if al.Score != 80*sc.Match {
		t.Errorf("winner score = %d", al.Score)
	}
	want := 79*sc.Match - sc.Mismatch
	if al.SecondScore != want {
		t.Errorf("SecondScore = %d, want %d", al.SecondScore, want)
	}
}

func TestSecondScoreUnsetForUniqueHit(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ref := randSeq(rng, 1000)
	m, _ := New(ref, DefaultConfig())
	read := ref[200:280].Clone()
	al, ok := m.ExtendRead(read, []Seed{{QStart: 0, QEnd: 40, RefPos: 200}})
	if !ok {
		t.Fatal("extension failed")
	}
	if al.SecondScore > 0 {
		t.Errorf("unique hit has SecondScore %d", al.SecondScore)
	}
}

func TestSameStartSeedsCollapse(t *testing.T) {
	// Multiple seeds pointing at the same placement are one candidate,
	// not competing evidence (SecondScore must stay unset).
	rng := rand.New(rand.NewSource(11))
	ref := randSeq(rng, 1000)
	m, _ := New(ref, DefaultConfig())
	read := ref[300:380].Clone()
	al, ok := m.ExtendRead(read, []Seed{
		{QStart: 0, QEnd: 30, RefPos: 300},
		{QStart: 40, QEnd: 70, RefPos: 340},
	})
	if !ok {
		t.Fatal("extension failed")
	}
	if al.SecondScore > 0 {
		t.Errorf("same-placement seeds produced SecondScore %d", al.SecondScore)
	}
}

func TestSeedAtReferenceEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randSeq(rng, 300)
	m, _ := New(ref, DefaultConfig())
	read := ref[:80].Clone()
	// Seed at position 0: window clamps at the reference start.
	a, ok := m.ExtendRead(read, []Seed{{QStart: 0, QEnd: 40, RefPos: 0}})
	if !ok {
		t.Fatal("edge extension failed")
	}
	if a.RefStart != 0 {
		t.Errorf("RefStart = %d, want 0", a.RefStart)
	}
}
