package seedex

import "casa/internal/metrics"

// Engine is the metric-name prefix for the seed-extension machine array.
const Engine = "seedex"

// PublishMetrics adds one extension-counter snapshot into the seedex/*
// counters. Snapshots from concurrent machines merged in any order equal
// a sequential run's totals.
func (s Stats) PublishMetrics(reg *metrics.Registry) {
	reg.Counter("seedex/extend/reads").Add(s.Reads)
	reg.Counter("seedex/extend/extensions").Add(s.Extensions)
	reg.Counter("seedex/extend/bsw_cycles").Add(s.BSWCycles)
	reg.Counter("seedex/extend/edit_runs").Add(s.EditRuns)
	reg.Counter("seedex/extend/edit_cycles").Add(s.EditCycles)
}

// PublishMetrics adds the machine's accumulated counters into reg. Call
// once per run per machine instance.
func (m *Machine) PublishMetrics(reg *metrics.Registry) {
	m.Stats.PublishMetrics(reg)
}
