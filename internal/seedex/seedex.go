// Package seedex models the SeedEx seed-extension accelerator (Fujiki et
// al., MICRO 2020) that CASA pairs with for end-to-end alignment (§5:
// "CASA then forwards the results to 5 SeedEx machines ... Each SeedEx
// machine contains 12 BSW cores and 4 edit machines"). Extension is real:
// banded Smith-Waterman around each seed's diagonal picks the best hit,
// and Myers edit machines verify the winner. Timing follows the systolic
// BSW structure: one anti-diagonal per cycle.
package seedex

import (
	"fmt"
	"sort"

	"casa/internal/align"
	"casa/internal/dna"
)

// Config sets the SeedEx machine array.
type Config struct {
	Machines     int // SeedEx machines (5)
	BSWCores     int // banded Smith-Waterman cores per machine (12)
	EditMachines int // edit machines per machine (4)
	Band         int // BSW band half-width in bases
	MaxHits      int // extension candidates per seed (cap)
	ClockHz      float64
	Scoring      align.Scoring
}

// DefaultConfig returns the paper's SeedEx arrangement.
func DefaultConfig() Config {
	return Config{
		Machines:     5,
		BSWCores:     12,
		EditMachines: 4,
		Band:         8,
		MaxHits:      8,
		ClockHz:      2e9,
		Scoring:      align.BWAMEM2(),
	}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	switch {
	case c.Machines <= 0 || c.BSWCores <= 0 || c.EditMachines <= 0:
		return fmt.Errorf("seedex: machine counts must be positive")
	case c.Band <= 0 || c.MaxHits <= 0:
		return fmt.Errorf("seedex: band and hit cap must be positive")
	case c.ClockHz <= 0:
		return fmt.Errorf("seedex: clock must be positive")
	default:
		return c.Scoring.Validate()
	}
}

// Seed is one extension candidate: an exact match of read[QStart..QEnd]
// (inclusive) at reference position RefPos.
type Seed struct {
	QStart, QEnd int
	RefPos       int32
}

// Alignment is the chosen alignment for a read.
type Alignment struct {
	Score       int
	SecondScore int // best score among the non-winning extensions (for MAPQ)
	RefStart    int // reference coordinate of the alignment start
	Cigar       align.Cigar
	EditDist    int // edit-machine verification result
	Seed        Seed
}

// Stats counts extension activity for the timing model.
type Stats struct {
	Reads      int64
	Extensions int64 // BSW core invocations
	BSWCycles  int64 // anti-diagonal cycles across all extensions
	EditRuns   int64 // edit machine invocations
	EditCycles int64 // edit machine cycles (one text column per cycle)
}

func (s *Stats) add(o Stats) {
	s.Reads += o.Reads
	s.Extensions += o.Extensions
	s.BSWCycles += o.BSWCycles
	s.EditRuns += o.EditRuns
	s.EditCycles += o.EditCycles
}

// Machine is the SeedEx array bound to a reference.
type Machine struct {
	cfg Config
	ref dna.Sequence

	Stats Stats
}

// New builds the machine array over ref.
func New(ref dna.Sequence, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("seedex: empty reference")
	}
	return &Machine{cfg: cfg, ref: ref}, nil
}

// ExtendRead extends every seed (up to MaxHits, longest seeds first) with
// a banded global alignment of the whole read against the seed-implied
// reference window, returns the best alignment, and verifies it on an
// edit machine. ok is false when no seed produced an in-band alignment.
func (m *Machine) ExtendRead(read dna.Sequence, seeds []Seed) (Alignment, bool) {
	m.Stats.Reads++
	if len(read) == 0 || len(seeds) == 0 {
		return Alignment{}, false
	}
	// Longest seeds first: they pin the most reliable diagonals.
	ordered := append([]Seed(nil), seeds...)
	sort.Slice(ordered, func(i, j int) bool {
		li := ordered[i].QEnd - ordered[i].QStart
		lj := ordered[j].QEnd - ordered[j].QStart
		if li != lj {
			return li > lj
		}
		return ordered[i].RefPos < ordered[j].RefPos
	})
	if len(ordered) > m.cfg.MaxHits {
		ordered = ordered[:m.cfg.MaxHits]
	}

	// Extend every retained seed, keep one candidate per distinct
	// reference start (a seed chain converging on the same placement is
	// one alignment, not competing evidence).
	type candidate struct {
		al Alignment
	}
	byStart := map[int]candidate{}
	for _, s := range ordered {
		res, start, ok := m.extendOne(read, s)
		if !ok {
			continue
		}
		refStart := start + res.RefLo
		if prev, dup := byStart[refStart]; !dup || res.Score > prev.al.Score {
			byStart[refStart] = candidate{al: Alignment{
				Score: res.Score, RefStart: refStart, Cigar: res.Cigar, Seed: s,
			}}
		}
	}
	if len(byStart) == 0 {
		return Alignment{}, false
	}
	best := Alignment{Score: -1 << 30}
	second := -1 << 30
	for _, c := range byStart {
		switch {
		case c.al.Score > best.Score || (c.al.Score == best.Score && c.al.RefStart < best.RefStart):
			if best.Score > -1<<30 {
				second = max(second, best.Score)
			}
			best = c.al
		default:
			second = max(second, c.al.Score)
		}
	}
	best.SecondScore = second
	// Edit-machine verification of the winning window.
	winStart := best.RefStart
	winEnd := winStart + best.Cigar.RefLen()
	m.Stats.EditRuns++
	m.Stats.EditCycles += int64(winEnd - winStart)
	best.EditDist = align.EditDistance(read, m.ref[winStart:winEnd])
	return best, true
}

// extendOne aligns the full read against the window implied by the seed's
// diagonal, padded by the band on both sides.
func (m *Machine) extendOne(read dna.Sequence, s Seed) (align.Result, int, bool) {
	diag := int(s.RefPos) - s.QStart // read index 0 maps here on the diagonal
	lo := diag - m.cfg.Band
	hi := diag + len(read) + m.cfg.Band
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.ref) {
		hi = len(m.ref)
	}
	if hi <= lo {
		return align.Result{}, 0, false
	}
	window := m.ref[lo:hi]
	m.Stats.Extensions++
	// Systolic BSW: one anti-diagonal per cycle over the banded matrix.
	m.Stats.BSWCycles += int64(len(read) + 2*m.cfg.Band)
	res, ok := align.BandedFit(read, window, 2*m.cfg.Band+2, m.cfg.Scoring)
	if !ok {
		return align.Result{}, 0, false
	}
	return res, lo, ok
}

// Seconds converts the accumulated activity into the modelled wall time:
// BSW cycles spread across Machines x BSWCores, edit cycles across
// Machines x EditMachines, and the two overlap (different units).
func (m *Machine) Seconds() float64 {
	bsw := float64(m.Stats.BSWCycles) / (float64(m.cfg.Machines*m.cfg.BSWCores) * m.cfg.ClockHz)
	edit := float64(m.Stats.EditCycles) / (float64(m.cfg.Machines*m.cfg.EditMachines) * m.cfg.ClockHz)
	if edit > bsw {
		return edit
	}
	return bsw
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }
