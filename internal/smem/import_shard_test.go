package smem_test

// Registers the "sharded:<name>" composites so the registry conformance
// harness and FuzzSMEMEnginesAgree compare them against the golden
// oracle with zero per-engine switches.
import _ "casa/internal/shard"
