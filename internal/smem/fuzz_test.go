package smem_test

import (
	"testing"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/readsim"
	"casa/internal/smem"
)

// fuzzRef is the fixed reference the fuzz target searches: small enough
// that one brute-force pass per input is cheap, repeat-rich enough that
// arbitrary reads still hit it.
func fuzzRef() dna.Sequence {
	return readsim.GenerateReference(readsim.DefaultGenome(2048, 3))
}

func fuzzAccelerator(ref dna.Sequence) (*core.Accelerator, core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.K = 7
	cfg.M = 4
	cfg.Stride = 5
	cfg.Groups = 4
	cfg.MinSMEM = 11
	cfg.PartitionBases = len(ref)
	cfg.ExactMatchPrepass = false
	a, err := core.New(ref, cfg)
	return a, cfg, err
}

// FuzzSMEMEnginesAgree feeds arbitrary read bytes (mapped onto 2-bit
// bases) to the brute-force golden finder and every registered engine in
// its Exact configuration and requires identical SMEM sets — intervals
// and hit counts. The single-partition CASA accelerator is additionally
// checked on the reverse strand (the registry interface reports forward
// SMEMs only).
func FuzzSMEMEnginesAgree(f *testing.F) {
	ref := fuzzRef()
	acc, cfg, err := fuzzAccelerator(ref)
	if err != nil {
		f.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	var engines []engine.Engine
	for _, fac := range engine.List() {
		if fac.Golden {
			continue // the oracle defines `want`
		}
		e, err := engine.New(fac.Name, ref, engine.Options{MinSMEM: cfg.MinSMEM, TableK: 7, Exact: true})
		if err != nil {
			f.Fatal(err)
		}
		engines = append(engines, e)
	}

	f.Add([]byte(ref[100:201].String()))
	f.Add([]byte(ref[500:520].String()))
	f.Add([]byte("ACGTACGTACGTACGTACGT"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x01\x02\x03ACGT\xfe\xff repeats"))
	// Shapes that stress the blocked rank layout and the batched/width-1
	// extension fast paths: homopolymers (one bit plane saturated, maximal
	// interval widths), ambiguity-collapsed runs (an N-run maps to a
	// single-base run mid-read), reads shorter than one 64-symbol block,
	// and lengths just off the 64 boundary.
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"))
	f.Add([]byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT"))
	f.Add([]byte(ref[0:20].String() + "NNNNNNNNNNNNNNNN" + ref[40:60].String()))
	f.Add([]byte(ref[300:313].String()))
	f.Add([]byte(ref[600:663].String()))
	f.Add([]byte(ref[700:765].String()))
	f.Add([]byte(ref[800:930].String()))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 256 {
			raw = raw[:256] // keep the brute-force oracle cheap
		}
		read := make(dna.Sequence, len(raw))
		for i, c := range raw {
			read[i] = dna.Base(c & 3)
		}
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		for _, e := range engines {
			if got := seedEngine(e, []dna.Sequence{read})[0]; !smem.Equal(want, got) {
				t.Fatalf("forward SMEMs disagree on %q:\n %s %v\nbrute %v", read, e.Name(), got, want)
			}
		}
		res := acc.SeedReads([]dna.Sequence{read})
		if got := res.Reads[0].Forward; !smem.Equal(want, got) {
			t.Fatalf("forward SMEMs disagree on %q:\n casa %v\nbrute %v", read, got, want)
		}
		wantR := golden.FindSMEMs(read.ReverseComplement(), cfg.MinSMEM)
		if got := res.Reads[0].Reverse; !smem.Equal(wantR, got) {
			t.Fatalf("reverse SMEMs disagree on %q:\n casa %v\nbrute %v", read, got, wantR)
		}
	})
}
