// Package smem defines maximal exact matches (MEMs), super-maximal exact
// matches (SMEMs) and right-maximal exact matches (RMEMs) over a read and a
// reference (§2.1 of the paper), and provides three independent SMEM
// finders used to cross-validate each other and the CASA simulator:
//
//   - BruteForce: definition-based golden model (trusted by construction).
//   - Bidirectional: BWA-MEM2-style search (forward search + backward
//     maximal extension, Fig 1(a)).
//   - Unidirectional: GenAx-style search (right-maximal match per pivot,
//     containment filtering, Fig 1(b)).
//
// All three produce identical SMEM sets; the property tests assert this,
// mirroring the paper's validation that "CASA produces identical SMEMs to
// GenAx and 100% SMEMs of BWA-MEM2 are contained" (§6).
package smem

import (
	"fmt"
	"sort"

	"casa/internal/dna"
	"casa/internal/fmindex"
	"casa/internal/metrics"
)

// Match is an exact match of read[Start..End] (inclusive bounds) against
// the reference, with its occurrence count.
type Match struct {
	Start int // first read index of the match
	End   int // last read index of the match (inclusive)
	Hits  int // number of occurrences in the reference
}

// Len returns the match length in bases.
func (m Match) Len() int { return m.End - m.Start + 1 }

// Contains reports whether m fully contains o on the read.
func (m Match) Contains(o Match) bool { return m.Start <= o.Start && o.End <= m.End }

// String formats the match for diagnostics.
func (m Match) String() string {
	return fmt.Sprintf("[%d,%d]x%d", m.Start, m.End, m.Hits)
}

// Sort orders matches by start, then end. SMEM sets are canonicalized this
// way before comparison.
func Sort(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Start != ms[j].Start {
			return ms[i].Start < ms[j].Start
		}
		return ms[i].End < ms[j].End
	})
}

// Equal reports whether two canonicalized match sets contain the same
// intervals (Hits included).
func Equal(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SameIntervals reports whether two canonicalized match sets contain the
// same intervals, ignoring hit counts.
func SameIntervals(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
	}
	return true
}

// FilterMinLen returns the matches with length >= minLen, preserving order.
// BWA-MEM2 only reports SMEMs at least l = 19 bases long.
func FilterMinLen(ms []Match, minLen int) []Match {
	out := ms[:0:0]
	for _, m := range ms {
		if m.Len() >= minLen {
			out = append(out, m)
		}
	}
	return out
}

// Finder computes the SMEMs of a read against a fixed reference. minLen is
// the minimum reported SMEM length (l in the paper, 19 by default).
type Finder interface {
	FindSMEMs(read dna.Sequence, minLen int) []Match
}

// ---------------------------------------------------------------------------
// Golden brute-force finder.

// BruteForce is the definition-based golden SMEM finder. It checks
// substring occurrence by scanning the reference directly, so it shares no
// code with the indexed finders. Quadratic in read length and linear in
// reference length per check: use only on small inputs (tests).
type BruteForce struct {
	Ref dna.Sequence
}

// occurs reports whether read[i..j] (inclusive) occurs in the reference.
func (b BruteForce) occurs(read dna.Sequence, i, j int) bool {
	if i < 0 || j >= len(read) || i > j {
		return false
	}
	pat := read[i : j+1]
outer:
	for p := 0; p+len(pat) <= len(b.Ref); p++ {
		for q, base := range pat {
			if b.Ref[p+q] != base {
				continue outer
			}
		}
		return true
	}
	return false
}

// countHits counts the occurrences of read[i..j] in the reference.
func (b BruteForce) countHits(read dna.Sequence, i, j int) int {
	pat := read[i : j+1]
	n := 0
outer:
	for p := 0; p+len(pat) <= len(b.Ref); p++ {
		for q, base := range pat {
			if b.Ref[p+q] != base {
				continue outer
			}
		}
		n++
	}
	return n
}

// FindMEMs returns every maximal exact match by definition: read[i..j]
// occurs, and neither read[i-1..j] nor read[i..j+1] occurs (or the
// extension runs off the read).
func (b BruteForce) FindMEMs(read dna.Sequence) []Match {
	var mems []Match
	for i := 0; i < len(read); i++ {
		// Largest j for this i (right-maximal).
		j := -1
		for e := i; e < len(read); e++ {
			if b.occurs(read, i, e) {
				j = e
			} else {
				break
			}
		}
		if j < i {
			continue
		}
		// MEM requires left-maximality too.
		if i > 0 && b.occurs(read, i-1, j) {
			continue
		}
		mems = append(mems, Match{Start: i, End: j, Hits: b.countHits(read, i, j)})
	}
	return mems
}

// FindSMEMs returns the SMEMs: MEMs not contained in any other MEM,
// filtered to length >= minLen.
func (b BruteForce) FindSMEMs(read dna.Sequence, minLen int) []Match {
	mems := b.FindMEMs(read)
	var smems []Match
	for i, m := range mems {
		contained := false
		for j, o := range mems {
			if i != j && o.Contains(m) {
				contained = true
				break
			}
		}
		if !contained {
			smems = append(smems, m)
		}
	}
	smems = FilterMinLen(smems, minLen)
	Sort(smems)
	return smems
}

// ---------------------------------------------------------------------------
// FM-index-backed finders.

// Bidirectional finds SMEMs with the BWA-MEM2 strategy: from each pivot,
// forward-search to the longest right extension, recording where hit counts
// change; then backward-search maximal left extensions and keep the
// super-maximal ones. The next pivot is the first mismatch position, so a
// read is covered in few iterations.
type Bidirectional struct {
	Index *fmindex.Bidirectional

	// Steps counts FM-index extension operations performed by the last
	// FindSMEMs call, for the CPU/ERT cost models.
	Steps int

	// TotalSteps accumulates Steps across every FindSMEMs call on this
	// finder, for end-of-run metrics publishing.
	TotalSteps int64
}

// NewBidirectional builds the finder (and both FM-indexes) over ref.
func NewBidirectional(ref dna.Sequence) *Bidirectional {
	return &Bidirectional{Index: fmindex.BuildBidirectional(ref)}
}

// Clone returns a finder sharing the FM-indexes (read-only during search)
// with its own Steps counter, so clones can search concurrently.
func (f *Bidirectional) Clone() *Bidirectional {
	return &Bidirectional{Index: f.Index}
}

// FindSMEMs implements Finder.
func (f *Bidirectional) FindSMEMs(read dna.Sequence, minLen int) []Match {
	f.Steps = 0
	var cands []Match
	pivot := 0
	for pivot < len(read) {
		steps := f.Index.ForwardSearch(read, pivot)
		f.Steps += len(steps) + 1
		if len(steps) == 0 {
			pivot++
			continue
		}
		// LEPs: ends where the hit count changes (including the last end).
		var leps []int
		for i, st := range steps {
			if i+1 == len(steps) || steps[i+1].Hits != st.Hits {
				leps = append(leps, st.End)
			}
		}
		for _, e := range leps {
			start, hits, ok := f.Index.LongestMatchEndingAt(read, e)
			f.Steps += e - start + 2
			if ok {
				cands = append(cands, Match{Start: start, End: e, Hits: hits})
			}
		}
		pivot = steps[len(steps)-1].End + 1 // first mismatch becomes next pivot
	}
	f.TotalSteps += int64(f.Steps)
	return dedupSMEMs(cands, minLen)
}

// PublishMetrics adds the finder's accumulated FM-index step count into
// reg under the fmindex engine prefix. Call once per run per finder
// instance; counts from concurrently used clones sum.
func (f *Bidirectional) PublishMetrics(reg *metrics.Registry) {
	reg.Counter("fmindex/search/steps").Add(f.TotalSteps)
}

// SeedCost returns the modelled cost of the most recent FindSMEMs call in
// FM-index extension steps — the per-read span duration the traced batch
// runner records for finder-backed engines.
func (f *Bidirectional) SeedCost() int64 { return int64(f.Steps) }

// Unidirectional finds SMEMs with the GenAx strategy: for every pivot, the
// right-maximal exact match (RMEM); SMEMs are the RMEMs not contained in an
// earlier, longer RMEM. Because e(i) is non-decreasing in i, containment
// reduces to e(i) > e(i-1).
type Unidirectional struct {
	Index *fmindex.Bidirectional

	// Pivots counts pivots whose RMEM search actually ran in the last call;
	// Fig 15's "naive" bar counts every read position here.
	Pivots int
}

// NewUnidirectional builds the finder over ref.
func NewUnidirectional(ref dna.Sequence) *Unidirectional {
	return &Unidirectional{Index: fmindex.BuildBidirectional(ref)}
}

// Clone returns a finder sharing the FM-indexes with its own Pivots
// counter, so clones can search concurrently.
func (f *Unidirectional) Clone() *Unidirectional {
	return &Unidirectional{Index: f.Index}
}

// SeedCost returns the modelled cost of the most recent FindSMEMs call in
// RMEM pivot searches, for the traced batch runner.
func (f *Unidirectional) SeedCost() int64 { return int64(f.Pivots) }

// FindSMEMs implements Finder.
func (f *Unidirectional) FindSMEMs(read dna.Sequence, minLen int) []Match {
	f.Pivots = 0
	var smems []Match
	prevEnd := -1
	for i := 0; i < len(read); i++ {
		f.Pivots++
		end, hits, ok := f.Index.LongestMatchFrom(read, i)
		if !ok {
			continue
		}
		if end > prevEnd {
			// Not contained in the previous RMEM: it is an SMEM candidate.
			smems = append(smems, Match{Start: i, End: end, Hits: hits})
			prevEnd = end
		}
	}
	smems = FilterMinLen(smems, minLen)
	Sort(smems)
	return smems
}

// dedupSMEMs removes candidates contained in another candidate, then
// filters by minLen and canonicalizes.
func dedupSMEMs(cands []Match, minLen int) []Match {
	Sort(cands)
	// Remove exact duplicates first.
	uniq := cands[:0:0]
	for i, m := range cands {
		if i == 0 || m != cands[i-1] {
			uniq = append(uniq, m)
		}
	}
	var smems []Match
	for i, m := range uniq {
		contained := false
		for j, o := range uniq {
			if i != j && o.Contains(m) {
				contained = true
				break
			}
		}
		if !contained {
			smems = append(smems, m)
		}
	}
	smems = FilterMinLen(smems, minLen)
	Sort(smems)
	return smems
}
