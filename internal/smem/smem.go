// Package smem defines maximal exact matches (MEMs), super-maximal exact
// matches (SMEMs) and right-maximal exact matches (RMEMs) over a read and a
// reference (§2.1 of the paper), and provides three independent SMEM
// finders used to cross-validate each other and the CASA simulator:
//
//   - BruteForce: definition-based golden model (trusted by construction).
//   - Bidirectional: BWA-MEM2-style search (forward search + backward
//     maximal extension, Fig 1(a)).
//   - Unidirectional: GenAx-style search (right-maximal match per pivot,
//     containment filtering, Fig 1(b)).
//
// All three produce identical SMEM sets; the property tests assert this,
// mirroring the paper's validation that "CASA produces identical SMEMs to
// GenAx and 100% SMEMs of BWA-MEM2 are contained" (§6).
package smem

import (
	"fmt"
	"slices"

	"casa/internal/dna"
	"casa/internal/fmindex"
	"casa/internal/metrics"
)

// Match is an exact match of read[Start..End] (inclusive bounds) against
// the reference, with its occurrence count.
type Match struct {
	Start int // first read index of the match
	End   int // last read index of the match (inclusive)
	Hits  int // number of occurrences in the reference
}

// Len returns the match length in bases.
func (m Match) Len() int { return m.End - m.Start + 1 }

// Contains reports whether m fully contains o on the read.
func (m Match) Contains(o Match) bool { return m.Start <= o.Start && o.End <= m.End }

// String formats the match for diagnostics.
func (m Match) String() string {
	return fmt.Sprintf("[%d,%d]x%d", m.Start, m.End, m.Hits)
}

// sortInline is the size up to which the canonicalizing sorts use insertion
// sort. Candidate sets arrive nearly sorted (appended in pivot order), so
// insertion sort is close to linear there, and both paths allocate nothing —
// unlike sort.Slice, whose closure and interface conversion cost two heap
// allocations per call.
const sortInline = 64

// Sort orders matches by start, then end. SMEM sets are canonicalized this
// way before comparison.
func Sort(ms []Match) {
	if len(ms) > sortInline {
		slices.SortFunc(ms, func(a, b Match) int {
			if a.Start != b.Start {
				return a.Start - b.Start
			}
			return a.End - b.End
		})
		return
	}
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].Start > m.Start || (ms[j].Start == m.Start && ms[j].End > m.End)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// SortCover orders matches in cover order: start ascending, end descending.
// In this order a match is contained in another candidate exactly when some
// earlier entry's end reaches its end, so containment filtering becomes one
// linear scan with a running maximum (see dedupAppend).
func SortCover(ms []Match) {
	if len(ms) > sortInline {
		slices.SortFunc(ms, func(a, b Match) int {
			if a.Start != b.Start {
				return a.Start - b.Start
			}
			return b.End - a.End
		})
		return
	}
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].Start > m.Start || (ms[j].Start == m.Start && ms[j].End < m.End)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// Retain copies a scratch-backed match set into an exactly sized fresh
// slice that is safe to keep after the scratch is reused. Empty sets return
// nil, matching the append-built results of the non-pooled paths (relevant
// for JSON round-trips, where nil and empty marshal differently).
func Retain(ms []Match) []Match {
	if len(ms) == 0 {
		return nil
	}
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}

// Equal reports whether two canonicalized match sets contain the same
// intervals (Hits included).
func Equal(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SameIntervals reports whether two canonicalized match sets contain the
// same intervals, ignoring hit counts.
func SameIntervals(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
	}
	return true
}

// FilterMinLen returns the matches with length >= minLen, preserving order.
// BWA-MEM2 only reports SMEMs at least l = 19 bases long.
func FilterMinLen(ms []Match, minLen int) []Match {
	out := ms[:0:0]
	for _, m := range ms {
		if m.Len() >= minLen {
			out = append(out, m)
		}
	}
	return out
}

// Finder computes the SMEMs of a read against a fixed reference. minLen is
// the minimum reported SMEM length (l in the paper, 19 by default).
type Finder interface {
	FindSMEMs(read dna.Sequence, minLen int) []Match
}

// ---------------------------------------------------------------------------
// Golden brute-force finder.

// BruteForce is the definition-based golden SMEM finder. It checks
// substring occurrence by scanning the reference directly, so it shares no
// code with the indexed finders. Quadratic in read length and linear in
// reference length per check: use only on small inputs (tests).
type BruteForce struct {
	Ref dna.Sequence
}

// occurs reports whether read[i..j] (inclusive) occurs in the reference.
func (b BruteForce) occurs(read dna.Sequence, i, j int) bool {
	if i < 0 || j >= len(read) || i > j {
		return false
	}
	pat := read[i : j+1]
outer:
	for p := 0; p+len(pat) <= len(b.Ref); p++ {
		for q, base := range pat {
			if b.Ref[p+q] != base {
				continue outer
			}
		}
		return true
	}
	return false
}

// countHits counts the occurrences of read[i..j] in the reference.
func (b BruteForce) countHits(read dna.Sequence, i, j int) int {
	pat := read[i : j+1]
	n := 0
outer:
	for p := 0; p+len(pat) <= len(b.Ref); p++ {
		for q, base := range pat {
			if b.Ref[p+q] != base {
				continue outer
			}
		}
		n++
	}
	return n
}

// FindMEMs returns every maximal exact match by definition: read[i..j]
// occurs, and neither read[i-1..j] nor read[i..j+1] occurs (or the
// extension runs off the read).
func (b BruteForce) FindMEMs(read dna.Sequence) []Match {
	var mems []Match
	for i := 0; i < len(read); i++ {
		// Largest j for this i (right-maximal).
		j := -1
		for e := i; e < len(read); e++ {
			if b.occurs(read, i, e) {
				j = e
			} else {
				break
			}
		}
		if j < i {
			continue
		}
		// MEM requires left-maximality too.
		if i > 0 && b.occurs(read, i-1, j) {
			continue
		}
		mems = append(mems, Match{Start: i, End: j, Hits: b.countHits(read, i, j)})
	}
	return mems
}

// FindSMEMs returns the SMEMs: MEMs not contained in any other MEM,
// filtered to length >= minLen.
func (b BruteForce) FindSMEMs(read dna.Sequence, minLen int) []Match {
	mems := b.FindMEMs(read)
	var smems []Match
	for i, m := range mems {
		contained := false
		for j, o := range mems {
			if i != j && o.Contains(m) {
				contained = true
				break
			}
		}
		if !contained {
			smems = append(smems, m)
		}
	}
	smems = FilterMinLen(smems, minLen)
	Sort(smems)
	return smems
}

// ---------------------------------------------------------------------------
// FM-index-backed finders.

// Bidirectional finds SMEMs with the BWA-MEM2 strategy: from each pivot,
// forward-search to the longest right extension, recording where hit counts
// change; then backward-search maximal left extensions and keep the
// super-maximal ones. The next pivot is the first mismatch position, so a
// read is covered in few iterations.
type Bidirectional struct {
	Index *fmindex.Bidirectional

	// Steps counts FM-index extension operations performed by the last
	// FindSMEMs call, for the CPU/ERT cost models.
	Steps int

	// TotalSteps accumulates Steps across every FindSMEMs call on this
	// finder, for end-of-run metrics publishing.
	TotalSteps int64

	scr bidiScratch
}

// bidiScratch holds the per-instance buffers of the hot search path. Each
// buffer is reset by reslicing to length zero and only ever grows, so after
// a warm-up read the steady-state search allocates nothing. The buffers are
// never shared: Clone hands each worker empty scratch of its own, and
// nothing scratch-backed escapes a FindSMEMs/AppendSMEMs call.
type bidiScratch struct {
	steps []fmindex.ForwardStep // forward-search steps of the current pivot
	leps  []int                 // left extension points of the current pivot
	cands []Match               // SMEM candidates of the current read
	back  []backExt             // per-LEP extension results, in LEP order
	ivs   []fmindex.Interval    // live chains' FM intervals (compacted)
	xs    []int32               // live chains' next read index
	lep   []int32               // live chains' back[] record index
	bs    []dna.Base            // ExtendLeftMany bases, gathered per round
	out   []fmindex.Interval    // ExtendLeftMany outputs
}

// backExt records one LEP's backward maximal extension: start stays end+1
// (and hits 0) until the first successful left extension, matching
// LongestMatchEndingAt's not-found convention.
type backExt struct {
	end   int // fixed right end (the LEP)
	start int // start of the longest extension found so far
	hits  int // hit count of that extension
}

// NewBidirectional builds the finder (and both FM-indexes) over ref.
func NewBidirectional(ref dna.Sequence) *Bidirectional {
	return &Bidirectional{Index: fmindex.BuildBidirectional(ref)}
}

// FromIndex wraps already-built FM-indexes (e.g. deserialized from a
// persistent index) as a finder; scratch grows on first use.
func FromIndex(ix *fmindex.Bidirectional) *Bidirectional {
	return &Bidirectional{Index: ix}
}

// Clone returns a finder sharing the FM-indexes (read-only during search)
// with its own Steps counter, so clones can search concurrently.
func (f *Bidirectional) Clone() *Bidirectional {
	return &Bidirectional{Index: f.Index}
}

// FindSMEMs implements Finder. It allocates the returned slice; hot paths
// use AppendSMEMs with a reusable destination instead.
func (f *Bidirectional) FindSMEMs(read dna.Sequence, minLen int) []Match {
	return f.AppendSMEMs(nil, read, minLen)
}

// AppendSMEMs appends the SMEMs of read to dst and returns the extended
// slice. All intermediate state lives in the finder's scratch buffers, so
// once those have grown past the largest read the call performs no heap
// allocation beyond growing dst itself. The SMEM set and the Steps count
// are identical to the scalar search's.
func (f *Bidirectional) AppendSMEMs(dst []Match, read dna.Sequence, minLen int) []Match {
	f.Steps = 0
	cands := f.scr.cands[:0]
	pivot := 0
	for pivot < len(read) {
		steps := f.Index.ForwardSearchAppend(f.scr.steps[:0], read, pivot)
		f.scr.steps = steps
		f.Steps += len(steps) + 1
		if len(steps) == 0 {
			pivot++
			continue
		}
		// LEPs: ends where the hit count changes (including the last end).
		leps := f.scr.leps[:0]
		for i, st := range steps {
			if i+1 == len(steps) || steps[i+1].Hits != st.Hits {
				leps = append(leps, st.End)
			}
		}
		f.scr.leps = leps
		if len(leps) == 1 {
			// One extension chain: the batch machinery would only add
			// bookkeeping.
			e := leps[0]
			start, hits, ok := f.Index.LongestMatchEndingAt(read, e)
			f.Steps += e - start + 2
			if ok {
				cands = append(cands, Match{Start: start, End: e, Hits: hits})
			}
		} else {
			cands = f.extendLeftBatch(cands, read, leps)
		}
		pivot = steps[len(steps)-1].End + 1 // first mismatch becomes next pivot
	}
	f.scr.cands = cands
	f.TotalSteps += int64(f.Steps)
	return dedupAppend(dst, cands, minLen)
}

// extendLeftBatch runs the backward maximal extensions of one pivot's LEPs
// concurrently: each round gathers the still-live searches and resolves all
// their next steps through a single ExtendLeftMany pass, so the dependent
// rank lookups of independent LEPs overlap in the memory system instead of
// serializing. Candidates are appended in LEP order and Steps is charged
// exactly as the scalar per-LEP search would, keeping model numbers
// byte-identical.
// narrowWidth is the occurrence count at or below which a backward chain
// leaves the rank domain and finishes by comparing the text at each
// occurrence directly (suffix-array positions are known, so each step is a
// handful of byte compares instead of two dependent Occ lookups).
const narrowWidth = 4

func (f *Bidirectional) extendLeftBatch(cands []Match, read dna.Sequence, leps []int) []Match {
	n := len(leps)
	back := growSlice(f.scr.back[:0], n)
	ivs := growSlice(f.scr.ivs[:0], n)
	xs := growSlice(f.scr.xs[:0], n)
	lep := growSlice(f.scr.lep[:0], n)
	bs := growSlice(f.scr.bs[:0], n)
	out := growSlice(f.scr.out[:0], n)
	f.scr.back, f.scr.ivs, f.scr.xs = back, ivs, xs
	f.scr.lep, f.scr.bs, f.scr.out = lep, bs, out

	fwd := f.Index.Fwd
	text := fwd.Text()
	all := fwd.All()
	for i, e := range leps {
		back[i] = backExt{end: e, start: e + 1}
		ivs[i], xs[i], lep[i] = all, int32(e), int32(i)
	}
	// Each round extends every live chain by one base through a single
	// ExtendLeftMany pass, then compacts the live chains to the array
	// prefix (order-preserving, so compaction never reorders work).
	for n > 0 {
		for i := 0; i < n; i++ {
			bs[i] = read[xs[i]]
		}
		fwd.ExtendLeftMany(ivs[:n], bs[:n], out[:n])
		w := 0
		for i := 0; i < n; i++ {
			if out[i].Empty() {
				continue // chain retired: mismatch
			}
			rec := &back[lep[i]]
			start := int(xs[i])
			rec.start = start
			rec.hits = out[i].Width()
			if rec.hits <= narrowWidth {
				// Few enough occurrences that tracking each text position
				// directly beats further rank rounds: an extension keeps
				// exactly the occurrences whose preceding text base matches,
				// so the surviving count is the next interval width. The
				// chain retires from the rank-batched rounds immediately.
				var pos [narrowWidth]int32
				width := rec.hits
				for k := 0; k < width; k++ {
					pos[k] = fwd.SuffixAt(out[i].Lo + int32(k))
				}
				for start > 0 {
					b := read[start-1]
					live := 0
					for k := 0; k < width; k++ {
						if p := pos[k]; p > 0 && text[p-1] == b {
							pos[live] = p - 1
							live++
						}
					}
					if live == 0 {
						break
					}
					width = live
					start--
					rec.start, rec.hits = start, width
				}
				continue
			}
			x := xs[i] - 1
			if x < 0 {
				continue // chain retired: reached the read start
			}
			ivs[w], xs[w], lep[w] = out[i], x, lep[i]
			w++
		}
		n = w
	}
	for i := range back {
		b := &back[i]
		f.Steps += b.end - b.start + 2
		if b.start <= b.end {
			cands = append(cands, Match{Start: b.start, End: b.end, Hits: b.hits})
		}
	}
	return cands
}

// growSlice returns s resized to n entries, reusing capacity when
// possible. Contents are unspecified; callers overwrite every entry.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// PublishMetrics adds the finder's accumulated FM-index step count into
// reg under the fmindex engine prefix. Call once per run per finder
// instance; counts from concurrently used clones sum.
func (f *Bidirectional) PublishMetrics(reg *metrics.Registry) {
	reg.Counter("fmindex/search/steps").Add(f.TotalSteps)
}

// SeedCost returns the modelled cost of the most recent FindSMEMs call in
// FM-index extension steps — the per-read span duration the traced batch
// runner records for finder-backed engines.
func (f *Bidirectional) SeedCost() int64 { return int64(f.Steps) }

// Unidirectional finds SMEMs with the GenAx strategy: for every pivot, the
// right-maximal exact match (RMEM); SMEMs are the RMEMs not contained in an
// earlier, longer RMEM. Because e(i) is non-decreasing in i, containment
// reduces to e(i) > e(i-1).
type Unidirectional struct {
	Index *fmindex.Bidirectional

	// Pivots counts pivots whose RMEM search actually ran in the last call;
	// Fig 15's "naive" bar counts every read position here.
	Pivots int
}

// NewUnidirectional builds the finder over ref.
func NewUnidirectional(ref dna.Sequence) *Unidirectional {
	return &Unidirectional{Index: fmindex.BuildBidirectional(ref)}
}

// Clone returns a finder sharing the FM-indexes with its own Pivots
// counter, so clones can search concurrently.
func (f *Unidirectional) Clone() *Unidirectional {
	return &Unidirectional{Index: f.Index}
}

// SeedCost returns the modelled cost of the most recent FindSMEMs call in
// RMEM pivot searches, for the traced batch runner.
func (f *Unidirectional) SeedCost() int64 { return int64(f.Pivots) }

// FindSMEMs implements Finder.
func (f *Unidirectional) FindSMEMs(read dna.Sequence, minLen int) []Match {
	return f.AppendSMEMs(nil, read, minLen)
}

// AppendSMEMs appends the SMEMs of read to dst and returns the extended
// slice; it allocates nothing beyond growing dst. Candidates arrive in
// pivot order with strictly increasing ends, so they are already canonical
// and the length filter can run inline.
func (f *Unidirectional) AppendSMEMs(dst []Match, read dna.Sequence, minLen int) []Match {
	f.Pivots = 0
	prevEnd := -1
	for i := 0; i < len(read); i++ {
		f.Pivots++
		end, hits, ok := f.Index.LongestMatchFrom(read, i)
		if !ok {
			continue
		}
		if end > prevEnd {
			// Not contained in the previous RMEM: it is an SMEM candidate.
			if end-i+1 >= minLen {
				dst = append(dst, Match{Start: i, End: end, Hits: hits})
			}
			prevEnd = end
		}
	}
	return dst
}

// dedupAppend canonicalizes cands in place — cover-order sort, exact
// duplicates and contained candidates dropped, minimum length applied last
// (short candidates still participate in containment) — and appends the
// surviving SMEMs to dst. In cover order a candidate is contained in
// another exactly when an earlier entry's end reaches its end, so one
// linear scan with a running maximum replaces the quadratic pairwise
// containment check. Survivors have strictly increasing starts and ends, so
// the output is already in canonical Sort order.
func dedupAppend(dst, cands []Match, minLen int) []Match {
	SortCover(cands)
	maxEnd := -1
	prevStart, prevEnd := -1, -1
	for _, m := range cands {
		if m.Start == prevStart && m.End == prevEnd {
			continue // exact duplicate (equal intervals imply equal hits)
		}
		prevStart, prevEnd = m.Start, m.End
		if m.End <= maxEnd {
			continue // contained in an earlier, longer candidate
		}
		maxEnd = m.End
		if m.Len() >= minLen {
			dst = append(dst, m)
		}
	}
	return dst
}
