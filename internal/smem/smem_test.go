package smem

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
)

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

// plantedRead copies a reference window and sprinkles mutations so that
// reads have realistic SMEM structure (long matches broken by mismatches).
func plantedRead(rng *rand.Rand, ref dna.Sequence, length, mutations int) dna.Sequence {
	start := rng.Intn(len(ref) - length)
	read := ref[start : start+length].Clone()
	for m := 0; m < mutations; m++ {
		i := rng.Intn(length)
		read[i] = dna.Base(rng.Intn(4))
	}
	return read
}

func TestMatchBasics(t *testing.T) {
	m := Match{Start: 3, End: 10, Hits: 2}
	if m.Len() != 8 {
		t.Errorf("Len = %d, want 8", m.Len())
	}
	if !m.Contains(Match{Start: 4, End: 9}) {
		t.Error("Contains failed on strict sub-interval")
	}
	if !m.Contains(m) {
		t.Error("Contains failed on itself")
	}
	if m.Contains(Match{Start: 2, End: 9}) {
		t.Error("Contains accepted left overhang")
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestFilterMinLen(t *testing.T) {
	ms := []Match{{0, 5, 1}, {0, 18, 1}, {2, 30, 1}}
	got := FilterMinLen(ms, 19)
	if len(got) != 2 {
		t.Fatalf("FilterMinLen kept %d, want 2", len(got))
	}
	if got[0].End != 18 || got[1].End != 30 {
		t.Errorf("FilterMinLen kept wrong matches: %v", got)
	}
}

func TestBruteForceFig1Example(t *testing.T) {
	// Construct a case shaped like Fig 1: a read with two SMEMs and a MEM
	// fully contained in one of them.
	ref := dna.FromString("AACATTGTCACTTTCATAACGGGGGGGG")
	read := dna.FromString("GGCATTGTCATCAT")
	bf := BruteForce{Ref: ref}
	smems := bf.FindSMEMs(read, 4)
	// CATTGTCA occurs at ref[2..9] => read[2..9] matches; shorter matches
	// contained in it must not be reported.
	for _, m := range smems {
		for _, o := range smems {
			if m != o && o.Contains(m) {
				t.Errorf("SMEM %v contained in %v", m, o)
			}
		}
	}
	found := false
	for _, m := range smems {
		if m.Start == 2 && m.End == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected SMEM [2,9], got %v", smems)
	}
}

func TestBruteForceNoMatch(t *testing.T) {
	bf := BruteForce{Ref: dna.FromString("AAAAAAAA")}
	if got := bf.FindSMEMs(dna.FromString("CCCC"), 1); len(got) != 0 {
		t.Errorf("expected no SMEMs, got %v", got)
	}
}

func TestBruteForceWholeReadMatch(t *testing.T) {
	ref := dna.FromString("TTTACGTACGTACGAAA")
	read := dna.FromString("ACGTACGTACG")
	bf := BruteForce{Ref: ref}
	smems := bf.FindSMEMs(read, 5)
	if len(smems) != 1 || smems[0].Start != 0 || smems[0].End != len(read)-1 {
		t.Errorf("whole-read SMEM wrong: %v", smems)
	}
	if smems[0].Hits != 1 {
		t.Errorf("hits = %d, want 1", smems[0].Hits)
	}
}

func TestBruteForceMEMsAreMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randSeq(rng, 400)
	read := plantedRead(rng, ref, 40, 3)
	bf := BruteForce{Ref: ref}
	for _, m := range bf.FindMEMs(read) {
		if !bf.occurs(read, m.Start, m.End) {
			t.Fatalf("MEM %v does not occur", m)
		}
		if m.Start > 0 && bf.occurs(read, m.Start-1, m.End) {
			t.Fatalf("MEM %v extendable left", m)
		}
		if m.End < len(read)-1 && bf.occurs(read, m.Start, m.End+1) {
			t.Fatalf("MEM %v extendable right", m)
		}
	}
}

func TestFindersAgreeOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		ref := randSeq(rng, 300+rng.Intn(500))
		bi := NewBidirectional(ref)
		uni := NewUnidirectional(ref)
		bf := BruteForce{Ref: ref}
		for r := 0; r < 8; r++ {
			var read dna.Sequence
			if r%2 == 0 {
				read = plantedRead(rng, ref, 50+rng.Intn(50), rng.Intn(5))
			} else {
				read = randSeq(rng, 30+rng.Intn(70))
			}
			for _, minLen := range []int{1, 10, 19} {
				want := bf.FindSMEMs(read, minLen)
				gotBi := bi.FindSMEMs(read, minLen)
				gotUni := uni.FindSMEMs(read, minLen)
				if !Equal(want, gotBi) {
					t.Fatalf("trial %d minLen %d: bidirectional\n got %v\nwant %v\nread %s\nref %s",
						trial, minLen, gotBi, want, read, ref)
				}
				if !Equal(want, gotUni) {
					t.Fatalf("trial %d minLen %d: unidirectional\n got %v\nwant %v\nread %s\nref %s",
						trial, minLen, gotUni, want, read, ref)
				}
			}
		}
	}
}

func TestFindersAgreeOnRepetitiveReference(t *testing.T) {
	// Tandem repeats produce many-hit k-mers and contained MEMs, the hard
	// case for containment filtering.
	rng := rand.New(rand.NewSource(3))
	unit := randSeq(rng, 23)
	var ref dna.Sequence
	for i := 0; i < 20; i++ {
		ref = append(ref, unit...)
		if i%3 == 0 {
			ref = append(ref, randSeq(rng, 11)...)
		}
	}
	bi := NewBidirectional(ref)
	uni := NewUnidirectional(ref)
	bf := BruteForce{Ref: ref}
	for r := 0; r < 10; r++ {
		read := plantedRead(rng, ref, 60, 2+rng.Intn(4))
		want := bf.FindSMEMs(read, 10)
		if got := bi.FindSMEMs(read, 10); !Equal(want, got) {
			t.Fatalf("bidirectional: got %v want %v", got, want)
		}
		if got := uni.FindSMEMs(read, 10); !Equal(want, got) {
			t.Fatalf("unidirectional: got %v want %v", got, want)
		}
	}
}

func TestSMEMsNeverNested(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randSeq(rng, 1000)
	uni := NewUnidirectional(ref)
	for r := 0; r < 30; r++ {
		read := plantedRead(rng, ref, 101, rng.Intn(6))
		smems := uni.FindSMEMs(read, 1)
		for i, m := range smems {
			for j, o := range smems {
				if i != j && o.Contains(m) {
					t.Fatalf("nested SMEMs %v in %v", m, o)
				}
			}
		}
		// Starts and ends must both be strictly increasing.
		for i := 1; i < len(smems); i++ {
			if smems[i].Start <= smems[i-1].Start || smems[i].End <= smems[i-1].End {
				t.Fatalf("SMEMs not strictly increasing: %v", smems)
			}
		}
	}
}

func TestUnidirectionalPivotCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randSeq(rng, 500)
	uni := NewUnidirectional(ref)
	read := plantedRead(rng, ref, 80, 2)
	uni.FindSMEMs(read, 19)
	if uni.Pivots != len(read) {
		t.Errorf("naive unidirectional must visit every pivot: %d != %d", uni.Pivots, len(read))
	}
}

func TestBidirectionalStepsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := randSeq(rng, 500)
	bi := NewBidirectional(ref)
	read := plantedRead(rng, ref, 80, 2)
	bi.FindSMEMs(read, 19)
	if bi.Steps <= 0 {
		t.Error("bidirectional finder must count FM-index steps")
	}
}

func TestEqualAndSameIntervals(t *testing.T) {
	a := []Match{{0, 10, 1}, {5, 30, 2}}
	b := []Match{{0, 10, 1}, {5, 30, 2}}
	c := []Match{{0, 10, 9}, {5, 30, 2}}
	if !Equal(a, b) || Equal(a, c) {
		t.Error("Equal misbehaves")
	}
	if !SameIntervals(a, c) {
		t.Error("SameIntervals must ignore hits")
	}
	if SameIntervals(a, a[:1]) {
		t.Error("SameIntervals must respect length")
	}
}

func TestSortCanonical(t *testing.T) {
	ms := []Match{{5, 9, 1}, {0, 3, 1}, {5, 7, 1}}
	Sort(ms)
	if ms[0].Start != 0 || ms[1] != (Match{5, 7, 1}) || ms[2] != (Match{5, 9, 1}) {
		t.Errorf("Sort order wrong: %v", ms)
	}
}
