package smem_test

import (
	"strings"
	"testing"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/genax"
	"casa/internal/readsim"
	"casa/internal/smem"
)

// The differential harness of the issue: randomized references with
// repeat families and N runs, reads at several lengths and error rates,
// and every SMEM engine — brute force (golden), FM-index bidirectional,
// the hash-based seed-table search (GenAx) and CASA — must agree exactly
// (smem.Equal: intervals AND hit counts) on every read. CASA runs over a
// single partition with the exact-match prepass off, the configuration
// under which its output is defined to be the exact SMEM set (the
// prepass intentionally retires the non-matching strand, and partition
// overlap double-counts hits; both are covered by core's own tests).

// diffRef builds a repeat-rich reference; withNs splices runs of 'N'
// through the FASTA ingestion path (dna.FromString replaces ambiguous
// bases deterministically, so every engine sees the same bases).
func diffRef(length int, seed int64, withNs bool) dna.Sequence {
	ref := readsim.GenerateReference(readsim.DefaultGenome(length, seed))
	if !withNs {
		return ref
	}
	s := []byte(ref.String())
	for _, span := range []struct{ at, n int }{
		{len(s) / 7, 15}, {len(s) / 3, 40}, {len(s) / 2, 7}, {5 * len(s) / 6, 25},
	} {
		for i := 0; i < span.n && span.at+i < len(s); i++ {
			s[span.at+i] = 'N'
		}
	}
	return dna.FromString(string(s))
}

// casaSingle builds a single-partition CASA accelerator whose SMEM output
// is directly comparable to the golden finder.
func casaSingle(t *testing.T, ref dna.Sequence, minSMEM int, filter func(*core.Config)) *core.Accelerator {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.K = 7
	cfg.M = 4
	cfg.Stride = 5
	cfg.Groups = 4
	cfg.MinSMEM = minSMEM
	cfg.PartitionBases = len(ref)
	cfg.ExactMatchPrepass = false
	filter(&cfg)
	a, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDifferentialEnginesAgree(t *testing.T) {
	filters := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"table+analysis", func(*core.Config) {}},
		{"table-only", func(c *core.Config) { c.UseAnalysis = false }},
		{"no-filter", func(c *core.Config) { c.UseFilterTable = false; c.UseAnalysis = false }},
	}
	profiles := []struct {
		name    string
		readLen int
		errRate float64
		minSMEM int
	}{
		{"exact-51bp", 51, 0, 11},
		{"err1pct-101bp", 101, 0.01, 11},
		{"err5pct-151bp", 151, 0.05, 15},
	}
	for _, withNs := range []bool{false, true} {
		refName := "plain"
		if withNs {
			refName = "with-Ns"
		}
		ref := diffRef(1<<14, 5, withNs)
		golden := smem.BruteForce{Ref: ref}
		fm := smem.NewBidirectional(ref)
		gcfg := genax.DefaultConfig()
		gcfg.K = 7
		gcfg.MinSMEM = 11
		gcfg.PartitionBases = len(ref)
		tables, err := genax.BuildTables(ref, gcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range profiles {
			prof := readsim.ReadProfile{
				Length: p.readLen, Count: 25, Seed: 13,
				ErrRate: p.errRate, IndelRate: p.errRate / 5, RevComp: true,
			}
			reads := readsim.Sequences(readsim.Simulate(ref, prof))

			// The golden SMEM sets, and the filter-independent engines,
			// computed once per read profile.
			want := make([][]smem.Match, len(reads))
			wantR := make([][]smem.Match, len(reads))
			t.Run(strings.Join([]string{refName, "finders", p.name}, "/"), func(t *testing.T) {
				for i, read := range reads {
					want[i] = golden.FindSMEMs(read, p.minSMEM)
					wantR[i] = golden.FindSMEMs(read.ReverseComplement(), p.minSMEM)
					if got := fm.FindSMEMs(read, p.minSMEM); !smem.Equal(want[i], got) {
						t.Fatalf("read %d: fm-index disagrees\n got %v\nwant %v", i, got, want[i])
					}
					if got := tables.FindSMEMs(read, p.minSMEM); !smem.Equal(want[i], got) {
						t.Fatalf("read %d: genax tables disagree\n got %v\nwant %v", i, got, want[i])
					}
				}
			})
			for _, fc := range filters {
				t.Run(strings.Join([]string{refName, "casa-" + fc.name, p.name}, "/"), func(t *testing.T) {
					acc := casaSingle(t, ref, p.minSMEM, fc.mut)
					res := acc.SeedReads(reads)
					for i := range reads {
						if got := res.Reads[i].Forward; !smem.Equal(want[i], got) {
							t.Fatalf("read %d: casa disagrees\n got %v\nwant %v", i, got, want[i])
						}
						if got := res.Reads[i].Reverse; !smem.Equal(wantR[i], got) {
							t.Fatalf("read %d reverse: casa disagrees\n got %v\nwant %v", i, got, wantR[i])
						}
					}
				})
			}
		}
	}
}
