package smem_test

import (
	"strings"
	"testing"

	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/readsim"
	"casa/internal/smem"
)

// seedEngine runs one sequential seeding pass on e and returns the
// per-read forward SMEM sets.
func seedEngine(e engine.Engine, reads []dna.Sequence) [][]smem.Match {
	act := e.SeedTrace(reads, nil, 0)
	return e.SMEMs(e.Reduce(reads, []engine.Activity{act}))
}

// TestRegistryEnginesMatchGolden is the registry-driven conformance
// suite: every registered engine, built in its Exact (golden-comparable)
// configuration, must report the brute-force finder's exact SMEM sets —
// intervals AND hit counts — on randomized repeat-rich references (with
// and without N runs) across several read lengths and error rates. A
// newly registered engine is conformance-tested automatically; an engine
// whose Exact mode cannot reproduce the definition is a registration
// bug, not a test gap.
func TestRegistryEnginesMatchGolden(t *testing.T) {
	profiles := []struct {
		name    string
		readLen int
		errRate float64
		minSMEM int
	}{
		{"exact-51bp", 51, 0, 11},
		{"err1pct-101bp", 101, 0.01, 11},
		{"err5pct-151bp", 151, 0.05, 15},
	}
	for _, withNs := range []bool{false, true} {
		refName := "plain"
		if withNs {
			refName = "with-Ns"
		}
		ref := diffRef(1<<14, 5, withNs)
		golden := smem.BruteForce{Ref: ref}
		for _, p := range profiles {
			prof := readsim.ReadProfile{
				Length: p.readLen, Count: 25, Seed: 13,
				ErrRate: p.errRate, IndelRate: p.errRate / 5, RevComp: true,
			}
			reads := readsim.Sequences(readsim.Simulate(ref, prof))
			want := make([][]smem.Match, len(reads))
			for i, read := range reads {
				want[i] = golden.FindSMEMs(read, p.minSMEM)
			}
			for _, f := range engine.List() {
				if f.Golden {
					continue // the oracle defines `want`
				}
				t.Run(strings.Join([]string{refName, f.Name, p.name}, "/"), func(t *testing.T) {
					e, err := engine.New(f.Name, ref, engine.Options{
						MinSMEM: p.minSMEM, TableK: 7, Exact: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := seedEngine(e, reads)
					for i := range reads {
						if !smem.Equal(want[i], got[i]) {
							t.Fatalf("read %d: %s disagrees with brute force\n got %v\nwant %v",
								i, f.Name, got[i], want[i])
						}
					}
				})
			}
		}
	}
}
