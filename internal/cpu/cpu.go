// Package cpu models software BWA-MEM2 seeding on a multicore CPU
// (the B-12T / B-32T bars of Fig 12). Behaviour comes from the exact
// FM-index bidirectional SMEM search in internal/smem; time comes from a
// first-order memory model: each FM-index extension step is a dependent
// pointer-chase ("frequent, irregular, and unpredictable memory access to
// DRAM", §1), so per-read latency is steps x miss-rate x DRAM latency x a
// CPU overhead factor, divided across threads.
//
// The model's purpose is the ~17x gap of Fig 12, which is driven by the
// serial-dependent-access structure, not by microarchitectural detail.
package cpu

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Config describes the CPU platform (Table 2) and the memory model.
type Config struct {
	Name           string
	Threads        int
	MinSMEM        int
	LatencyNS      float64 // DRAM random-access latency
	MissRate       float64 // fraction of FM steps missing the caches
	OverheadFactor float64 // non-memory CPU work per step, as a multiplier
	SocketWatts    float64 // package power while seeding (for efficiency)
}

// B12T is the 12-thread configuration of the i7-6800K baseline.
func B12T() Config {
	return Config{Name: "B-12T", Threads: 12, MinSMEM: 19,
		LatencyNS: 95, MissRate: 0.7, OverheadFactor: 1.0, SocketWatts: 140}
}

// B32T is the 32-thread configuration of the dual-socket Xeon baseline.
func B32T() Config {
	return Config{Name: "B-32T", Threads: 32, MinSMEM: 19,
		LatencyNS: 95, MissRate: 0.7, OverheadFactor: 1.0, SocketWatts: 290}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("cpu: threads must be positive")
	case c.MinSMEM <= 0:
		return fmt.Errorf("cpu: MinSMEM must be positive")
	case c.LatencyNS <= 0 || c.MissRate <= 0 || c.OverheadFactor <= 0:
		return fmt.Errorf("cpu: memory model parameters must be positive")
	}
	return nil
}

// Seeder runs FM-index SMEM seeding with the CPU cost model attached.
type Seeder struct {
	cfg    Config
	finder *smem.Bidirectional

	// Per-instance scratch for the per-read hot path: the reverse
	// complement and the search destination are built in reusable buffers,
	// and only exactly sized copies are retained in the Activity. Clone
	// hands each worker empty scratch of its own.
	rc  dna.Sequence
	buf []smem.Match
}

// New builds the FM-index over ref. Software BWA-MEM2 indexes the whole
// reference at once (no partitioning).
func New(ref dna.Sequence, cfg Config) (*Seeder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("cpu: empty reference")
	}
	return &Seeder{cfg: cfg, finder: smem.NewBidirectional(ref)}, nil
}

// FromFinder wraps an already-built FM-index finder (e.g. one
// deserialized from a persistent index) with the CPU cost model, so
// loading an index skips suffix-array construction entirely.
func FromFinder(f *smem.Bidirectional, cfg Config) (*Seeder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f == nil || f.Index == nil || f.Index.Len() == 0 {
		return nil, fmt.Errorf("cpu: empty finder")
	}
	return &Seeder{cfg: cfg, finder: f}, nil
}

// Finder exposes the underlying FM-index finder for persistence.
func (s *Seeder) Finder() *smem.Bidirectional { return s.finder }

// Clone returns a seeder sharing the FM-indexes (read-only during
// search) with its own step counter, so clones can seed concurrently.
func (s *Seeder) Clone() *Seeder {
	return &Seeder{cfg: s.cfg, finder: s.finder.Clone()}
}

// Result is the outcome of a software seeding run.
type Result struct {
	Reads      [][]smem.Match // forward-strand SMEMs per read
	Rev        [][]smem.Match
	Steps      int64   // FM-index extension operations
	Seconds    float64 // modelled wall time
	Throughput float64 // reads per second
	ReadsPerMJ float64 // using the socket power envelope
}

// Activity is the raw, additive outcome of seeding a batch of reads: the
// per-read SMEM results of both strands plus the FM-index step count.
// Activities of disjoint sub-batches reduce (Reduce) to a Result
// identical to a sequential run over the concatenated batch.
type Activity struct {
	Reads [][]smem.Match
	Rev   [][]smem.Match
	Steps int64
}

// SeedReads seeds every read on both strands and models the wall time.
// It is exactly Reduce(Seed(reads)); use Seed and Reduce directly to
// split a batch across worker-owned Clones.
func (s *Seeder) SeedReads(reads []dna.Sequence) *Result {
	return s.Reduce(s.Seed(reads))
}

// Seed seeds every read on both strands and returns the raw activity.
// Seed mutates only this seeder's step counter: concurrent calls on
// distinct Clones are safe.
func (s *Seeder) Seed(reads []dna.Sequence) *Activity {
	return s.SeedTrace(reads, nil, 0)
}

// SeedTrace is Seed with cycle-domain tracing: when tb is non-nil, every
// read gets "fwd" and "rev" spans on the "seed" track, with read-local
// timestamps in FM-index extension steps — the dependent pointer-chases
// the CPU timing model charges. Reads are keyed base+i so batch shards
// merge worker-count independently.
func (s *Seeder) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) *Activity {
	act := &Activity{
		Reads: make([][]smem.Match, 0, len(reads)),
		Rev:   make([][]smem.Match, 0, len(reads)),
	}
	for i, r := range reads {
		s.buf = s.finder.AppendSMEMs(s.buf[:0], r, s.cfg.MinSMEM)
		act.Reads = append(act.Reads, smem.Retain(s.buf))
		fwd := int64(s.finder.Steps)
		act.Steps += fwd
		s.rc = r.AppendReverseComplement(s.rc[:0])
		s.buf = s.finder.AppendSMEMs(s.buf[:0], s.rc, s.cfg.MinSMEM)
		act.Rev = append(act.Rev, smem.Retain(s.buf))
		rev := int64(s.finder.Steps)
		act.Steps += rev
		if tb != nil {
			tb.Emit(base+i, "seed", "fwd", 0, fwd)
			tb.Emit(base+i, "seed", "rev", fwd, rev)
		}
	}
	return act
}

// SeedReadInto seeds one read on both strands into the caller-owned
// buffers, reusing their backing arrays (fwd and rev are expected to be
// resliced to length zero). Together with the seeder's own scratch this
// makes the steady-state per-read path allocation-free; the allocation
// regression suite pins that property.
func (s *Seeder) SeedReadInto(fwd, rev []smem.Match, read dna.Sequence) ([]smem.Match, []smem.Match) {
	fwd = s.finder.AppendSMEMs(fwd, read, s.cfg.MinSMEM)
	s.rc = read.AppendReverseComplement(s.rc[:0])
	rev = s.finder.AppendSMEMs(rev, s.rc, s.cfg.MinSMEM)
	return fwd, rev
}

// Reduce folds the Activities of disjoint sub-batches (in input order)
// into one finalized Result, modelling the wall time once over the total
// step count.
func (s *Seeder) Reduce(acts ...*Activity) *Result {
	res := &Result{}
	for _, act := range acts {
		res.Reads = append(res.Reads, act.Reads...)
		res.Rev = append(res.Rev, act.Rev...)
		res.Steps += act.Steps
	}
	perStep := s.cfg.LatencyNS * 1e-9 * s.cfg.MissRate * s.cfg.OverheadFactor
	res.Seconds = float64(res.Steps) * perStep / float64(s.cfg.Threads)
	if res.Seconds > 0 {
		res.Throughput = float64(len(res.Reads)) / res.Seconds
	}
	if j := s.cfg.SocketWatts * res.Seconds; j > 0 {
		res.ReadsPerMJ = float64(len(res.Reads)) / (j * 1e3)
	}
	return res
}

// Config returns the platform configuration.
func (s *Seeder) Config() Config { return s.cfg }
