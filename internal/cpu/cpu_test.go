package cpu

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestConfigs(t *testing.T) {
	if err := B12T().Validate(); err != nil {
		t.Error(err)
	}
	if err := B32T().Validate(); err != nil {
		t.Error(err)
	}
	if B12T().Threads != 12 || B32T().Threads != 32 {
		t.Error("thread counts drifted")
	}
	bad := B12T()
	bad.Threads = 0
	if bad.Validate() == nil {
		t.Error("zero threads accepted")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, B12T()); err == nil {
		t.Error("empty reference accepted")
	}
	bad := B12T()
	bad.MissRate = 0
	if _, err := New(dna.FromString("ACGT"), bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSeedReadsMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randSeq(rng, 1500)
	cfg := B12T()
	s, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	var reads []dna.Sequence
	for i := 0; i < 10; i++ {
		start := rng.Intn(len(ref) - 101)
		read := ref[start : start+101].Clone()
		for m := 0; m < rng.Intn(4); m++ {
			read[rng.Intn(101)] = dna.Base(rng.Intn(4))
		}
		reads = append(reads, read)
	}
	res := s.SeedReads(reads)
	for i, read := range reads {
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		if !smem.Equal(want, res.Reads[i]) {
			t.Fatalf("read %d: got %v, want %v", i, res.Reads[i], want)
		}
		wantR := golden.FindSMEMs(read.ReverseComplement(), cfg.MinSMEM)
		if !smem.Equal(wantR, res.Rev[i]) {
			t.Fatalf("read %d reverse: got %v, want %v", i, res.Rev[i], wantR)
		}
	}
}

func TestTimingModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randSeq(rng, 2000)
	s, err := New(ref, B12T())
	if err != nil {
		t.Fatal(err)
	}
	reads := []dna.Sequence{randSeq(rng, 101), randSeq(rng, 101)}
	res := s.SeedReads(reads)
	if res.Steps <= 0 || res.Seconds <= 0 || res.Throughput <= 0 || res.ReadsPerMJ <= 0 {
		t.Fatalf("model outputs missing: %+v", res)
	}
	// Exact relation: seconds = steps x perStep / threads.
	cfg := s.Config()
	want := float64(res.Steps) * cfg.LatencyNS * 1e-9 * cfg.MissRate * cfg.OverheadFactor / float64(cfg.Threads)
	if diff := res.Seconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Seconds = %g, want %g", res.Seconds, want)
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := randSeq(rng, 2000)
	reads := []dna.Sequence{randSeq(rng, 101)}
	s12, _ := New(ref, B12T())
	s32, _ := New(ref, B32T())
	r12 := s12.SeedReads(reads)
	r32 := s32.SeedReads(reads)
	if r32.Throughput <= r12.Throughput {
		t.Errorf("B-32T (%.0f) not faster than B-12T (%.0f)", r32.Throughput, r12.Throughput)
	}
	// Same work, just more threads: 32/12 speedup exactly.
	ratio := r32.Throughput / r12.Throughput
	if ratio < 2.6 || ratio > 2.7 {
		t.Errorf("thread scaling ratio = %.2f, want 32/12", ratio)
	}
}
