package cpu

import "casa/internal/metrics"

// Engine is the metric-name prefix for the software (BWA-MEM2 class)
// baseline.
const Engine = "cpu"

// PublishMetrics adds this shard's additive activity counters into reg.
// Shard registries merged in any order equal the sequential run's.
func (act *Activity) PublishMetrics(reg *metrics.Registry) {
	reg.Counter("cpu/fm/steps").Add(act.Steps)
}

// PublishModelMetrics publishes the finalized model outputs of a reduced
// Result. Call once per run, after Reduce.
func (res *Result) PublishModelMetrics(reg *metrics.Registry) {
	reg.Gauge("cpu/model/reads").Set(float64(len(res.Reads)))
	reg.Gauge("cpu/model/seconds").Set(res.Seconds)
	reg.Gauge("cpu/model/throughput_reads_per_s").Set(res.Throughput)
	reg.Gauge("cpu/model/reads_per_mj").Set(res.ReadsPerMJ)
}

// PublishMetrics publishes the aggregated step counter and the model
// outputs of a sequential (single-shard) run.
func (res *Result) PublishMetrics(reg *metrics.Registry) {
	reg.Counter("cpu/fm/steps").Add(res.Steps)
	res.PublishModelMetrics(reg)
}
