package energy

import "casa/internal/metrics"

// PublishMetrics publishes the report's totals as gauges under
// engine/energy/*. Call once per run with the final report: gauges
// overwrite, so the registry always holds the latest run's values.
func (r Report) PublishMetrics(reg *metrics.Registry, engine string) {
	reg.Gauge(engine + "/energy/total_j").Set(r.TotalJ())
	reg.Gauge(engine + "/energy/dynamic_j").Set(r.DynamicJ())
	reg.Gauge(engine + "/energy/leakage_w").Set(r.LeakageW())
	reg.Gauge(engine + "/energy/power_w").Set(r.PowerW())
	reg.Gauge(engine + "/energy/area_mm2").Set(r.AreaMM2())
}
