package energy

import (
	"math"
	"strings"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable3Constants(t *testing.T) {
	// Guard the published constants against accidental edits.
	rows := CircuitTable()
	if len(rows) != 4 {
		t.Fatalf("Table 3 has %d rows, want 4", len(rows))
	}
	if rows[0].EnergyPJ != 2.33 || rows[1].EnergyPJ != 4.89 ||
		rows[2].EnergyPJ != 20.92 || rows[3].EnergyPJ != 17.60 {
		t.Errorf("Table 3 energies drifted: %+v", rows)
	}
	if rows[3].Name != "10T BCAM 256x72" || rows[3].Rows != 256 || rows[3].Bits != 72 {
		t.Errorf("BCAM row wrong: %+v", rows[3])
	}
}

func TestLeakageW(t *testing.T) {
	// 6.29 uA at 0.9 V = 5.661 uW.
	if got := SRAM256x24.LeakageW(); !approx(got, 6.29e-6*0.9, 1e-12) {
		t.Errorf("LeakageW = %g", got)
	}
}

func TestScaleWidth(t *testing.T) {
	m := ScaleWidth(BCAM256x72, 80)
	f := 80.0 / 72.0
	if !approx(m.EnergyPJ, 17.60*f, 1e-9) || !approx(m.AreaUM2, 18056*f, 1e-6) {
		t.Errorf("ScaleWidth wrong: %+v", m)
	}
	if m.Bits != 80 || m.DelayPS != BCAM256x72.DelayPS {
		t.Errorf("ScaleWidth metadata wrong: %+v", m)
	}
	if BCAM256x72.Bits != 72 {
		t.Error("ScaleWidth mutated its input")
	}
}

func TestKBits(t *testing.T) {
	if got := SRAM256x256.KBits(); got != 64 {
		t.Errorf("256x256 KBits = %g, want 64", got)
	}
}

func TestMeterChargeAndReport(t *testing.T) {
	m := NewMeter()
	m.RegisterArrays("tag", BCAM256x72, 2)
	m.Charge("tag", 1000, BCAM256x72.EnergyPJ)
	r := m.Report(1e-6)

	wantDyn := 1000 * 17.60e-12
	if !approx(r.DynamicJ(), wantDyn, 1e-15) {
		t.Errorf("DynamicJ = %g, want %g", r.DynamicJ(), wantDyn)
	}
	wantLeak := 2 * BCAM256x72.LeakageW()
	if !approx(r.LeakageW(), wantLeak, 1e-15) {
		t.Errorf("LeakageW = %g, want %g", r.LeakageW(), wantLeak)
	}
	wantPower := wantDyn/1e-6 + wantLeak
	if !approx(r.PowerW(), wantPower, 1e-9) {
		t.Errorf("PowerW = %g, want %g", r.PowerW(), wantPower)
	}
}

func TestMeterComponentIsolation(t *testing.T) {
	m := NewMeter()
	m.Charge("a", 10, 1.0)
	m.Charge("b", 20, 2.0)
	if got := m.Component("a").DynamicPJ; got != 10 {
		t.Errorf("a = %g pJ", got)
	}
	if got := m.Component("b").DynamicPJ; got != 40 {
		t.Errorf("b = %g pJ", got)
	}
	if got := m.Component("missing"); got.DynamicPJ != 0 || got.Name != "missing" {
		t.Errorf("missing component = %+v", got)
	}
}

func TestMeterConservation(t *testing.T) {
	// Sum of component energies must equal the report total.
	m := NewMeter()
	m.Charge("x", 5, 3.0)
	m.Charge("y", 7, 11.0)
	m.ChargeJ("z", 1e-9)
	r := m.Report(1.0)
	var sum float64
	for _, c := range r.Components {
		sum += c.DynamicPJ
	}
	if !approx(sum*1e-12, r.DynamicJ(), 1e-18) {
		t.Errorf("component sum %g != total %g", sum*1e-12, r.DynamicJ())
	}
}

func TestChargeJ(t *testing.T) {
	m := NewMeter()
	m.ChargeJ("dram", 2.5e-9)
	if got := m.Component("dram").DynamicPJ; !approx(got, 2500, 1e-9) {
		t.Errorf("ChargeJ = %g pJ, want 2500", got)
	}
}

func TestComponentPowerW(t *testing.T) {
	m := NewMeter()
	m.Register("ctrl", 0.5, 1.0)
	m.Charge("ctrl", 1e6, 1.0) // 1e6 pJ = 1 uJ
	r := m.Report(1e-3)
	want := 1e-6/1e-3 + 0.5 // 1 mW dynamic + 0.5 W leakage
	if !approx(r.ComponentPowerW("ctrl"), want, 1e-9) {
		t.Errorf("ComponentPowerW = %g, want %g", r.ComponentPowerW("ctrl"), want)
	}
	if r.ComponentPowerW("nope") != 0 {
		t.Error("unknown component must have zero power")
	}
}

func TestReportZeroSeconds(t *testing.T) {
	m := NewMeter()
	m.Charge("x", 1, 1)
	if p := m.Report(0).PowerW(); p != 0 {
		t.Errorf("PowerW with zero time = %g", p)
	}
}

func TestReportString(t *testing.T) {
	m := NewMeter()
	m.Register("block", 0.1, 2.0)
	m.Charge("block", 100, 5)
	s := m.Report(1e-6).String()
	if !strings.Contains(s, "block") || !strings.Contains(s, "TOTAL") {
		t.Errorf("report string missing rows:\n%s", s)
	}
}

func TestPaperTable4(t *testing.T) {
	rows := PaperTable4()
	if len(rows) != 6 {
		t.Fatalf("Table 4 rows = %d, want 6", len(rows))
	}
	// On-chip area sums to the published total minus nothing (DRAM rows
	// carry no area).
	var area float64
	for _, r := range rows {
		area += r.AreaMM2
	}
	if !approx(area, 13.764+4.049+188.411+90.329, 1e-9) {
		t.Errorf("Table 4 area sum = %g", area)
	}
	if PaperTotalAreaMM2 != 296.553 || GenAxAreaMM2 != 220.544 {
		t.Error("published area constants drifted")
	}
	// The paper's +33.9% area claim must follow from the constants.
	ratio := PaperTotalAreaMM2/GenAxAreaMM2 - 1
	if !approx(ratio, 0.339, 0.006) {
		t.Errorf("area increase = %.3f, want ~0.339", ratio)
	}
}

func TestRegisterAccumulates(t *testing.T) {
	m := NewMeter()
	m.Register("bank", 0.1, 1.0)
	m.Register("bank", 0.1, 1.0)
	c := m.Component("bank")
	if !approx(c.LeakageW, 0.2, 1e-12) || !approx(c.AreaMM2, 2.0, 1e-12) {
		t.Errorf("Register accumulation wrong: %+v", c)
	}
}
