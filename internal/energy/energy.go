// Package energy encodes the paper's 28 nm circuit models (Table 3) and
// provides the power/area accounting used to produce Table 4 and Fig 13.
//
// The paper obtains these numbers from the TSMC memory compiler, a
// silicon-verified CAM design [68], and Design Compiler synthesis; here the
// published constants are the model (see DESIGN.md's substitution table).
// Simulators report per-component *event counts* (array accesses, CAM
// searches, DRAM bytes); this package converts counts into joules and
// watts: dynamic energy = events x per-access energy, leakage power =
// leakage current x supply voltage, power = dynamic/time + leakage.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// VDD is the 28 nm nominal supply voltage in volts, used to convert the
// leakage currents of Table 3 into leakage power.
const VDD = 0.9

// ArrayModel is one row of Table 3: a memory macro characterized in the
// TSMC 28 nm process.
type ArrayModel struct {
	Name     string
	Rows     int
	Bits     int     // word width in bits
	DelayPS  float64 // access time, picoseconds
	AreaUM2  float64 // macro area, square micrometers
	EnergyPJ float64 // dynamic energy per access, picojoules
	LeakUA   float64 // leakage current, microamps
}

// LeakageW returns the macro's leakage power in watts.
func (m ArrayModel) LeakageW() float64 { return m.LeakUA * 1e-6 * VDD }

// KBits returns the macro capacity in kilobits.
func (m ArrayModel) KBits() float64 { return float64(m.Rows*m.Bits) / 1024 }

// Table 3 of the paper: circuit models in 28 nm.
var (
	// SRAM256x24 backs the mini index table ports (256 x 24 bit banks).
	SRAM256x24 = ArrayModel{Name: "6T SRAM 256x24", Rows: 256, Bits: 24,
		DelayPS: 424, AreaUM2: 2535, EnergyPJ: 2.33, LeakUA: 6.29}
	// SRAM256x60 backs the data array storing 60-bit search indicators.
	SRAM256x60 = ArrayModel{Name: "6T SRAM 256x60", Rows: 256, Bits: 60,
		DelayPS: 444, AreaUM2: 5563, EnergyPJ: 4.89, LeakUA: 14.18}
	// SRAM256x256 is the wide macro used for buffers and baseline SRAMs.
	SRAM256x256 = ArrayModel{Name: "6T SRAM 256x256", Rows: 256, Bits: 256,
		DelayPS: 548, AreaUM2: 22046, EnergyPJ: 20.92, LeakUA: 38.198}
	// BCAM256x72 is the silicon-verified 10T binary CAM macro backing the
	// 9-mer tag array (four 18-bit 9-mers share one 72-bit word, §5).
	BCAM256x72 = ArrayModel{Name: "10T BCAM 256x72", Rows: 256, Bits: 72,
		DelayPS: 495, AreaUM2: 18056, EnergyPJ: 17.60, LeakUA: 18.69}
)

// BCAM256x80 is the SMEM computing CAM macro (80-bit words = 40 bases).
// Not in Table 3; scaled linearly in width from the characterized 256x72
// macro, the same first-order scaling the paper applies when customizing
// CAM arrays from [68].
var BCAM256x80 = ScaleWidth(BCAM256x72, 80)

// ScaleWidth returns a copy of m rescaled to a new word width, scaling
// area, energy and leakage linearly with bit count (delay unchanged; CAM
// match time is set by the match-line, not the word width, to first
// order).
func ScaleWidth(m ArrayModel, bits int) ArrayModel {
	f := float64(bits) / float64(m.Bits)
	m.Name = fmt.Sprintf("%s scaled to %d bits", m.Name, bits)
	m.Bits = bits
	m.AreaUM2 *= f
	m.EnergyPJ *= f
	m.LeakUA *= f
	return m
}

// CircuitTable returns Table 3 rows in paper order, for table regeneration.
func CircuitTable() []ArrayModel {
	return []ArrayModel{SRAM256x24, SRAM256x60, SRAM256x256, BCAM256x72}
}

// Component accumulates the activity of one named hardware block.
type Component struct {
	Name      string
	DynamicPJ float64 // accumulated dynamic energy, picojoules
	LeakageW  float64 // static power, watts
	AreaMM2   float64 // silicon area, square millimeters
	Events    int64   // number of charged events (accesses/searches)
}

// Meter aggregates component activity over a simulated interval.
type Meter struct {
	components map[string]*Component
	order      []string
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{components: make(map[string]*Component)}
}

// Register declares a component with its static properties. Registering
// the same name twice accumulates leakage and area (e.g. per-bank
// registration).
func (m *Meter) Register(name string, leakageW, areaMM2 float64) {
	c := m.component(name)
	c.LeakageW += leakageW
	c.AreaMM2 += areaMM2
}

// RegisterArrays declares n instances of a Table 3 macro under name.
func (m *Meter) RegisterArrays(name string, model ArrayModel, n int) {
	m.Register(name, model.LeakageW()*float64(n), model.AreaUM2*float64(n)/1e6)
}

// Charge adds events dynamic events of energyPJ picojoules each.
func (m *Meter) Charge(name string, events int64, energyPJ float64) {
	c := m.component(name)
	c.DynamicPJ += float64(events) * energyPJ
	c.Events += events
}

// ChargeJ adds raw dynamic energy in joules (for non-array components such
// as DRAM transfers).
func (m *Meter) ChargeJ(name string, joules float64) {
	c := m.component(name)
	c.DynamicPJ += joules * 1e12
	c.Events++
}

func (m *Meter) component(name string) *Component {
	if c, ok := m.components[name]; ok {
		return c
	}
	c := &Component{Name: name}
	m.components[name] = c
	m.order = append(m.order, name)
	return c
}

// Component returns a snapshot of the named component (zero value if it
// was never touched).
func (m *Meter) Component(name string) Component {
	if c, ok := m.components[name]; ok {
		return *c
	}
	return Component{Name: name}
}

// Components returns snapshots in registration order.
func (m *Meter) Components() []Component {
	out := make([]Component, 0, len(m.order))
	for _, n := range m.order {
		out = append(out, *m.components[n])
	}
	return out
}

// Report converts accumulated activity over a simulated duration into a
// power/energy report.
type Report struct {
	Seconds    float64
	Components []Component
}

// Report builds the report for a simulated interval of the given seconds.
func (m *Meter) Report(seconds float64) Report {
	return Report{Seconds: seconds, Components: m.Components()}
}

// DynamicJ returns total dynamic energy in joules.
func (r Report) DynamicJ() float64 {
	var pj float64
	for _, c := range r.Components {
		pj += c.DynamicPJ
	}
	return pj * 1e-12
}

// LeakageW returns total leakage power in watts.
func (r Report) LeakageW() float64 {
	var w float64
	for _, c := range r.Components {
		w += c.LeakageW
	}
	return w
}

// TotalJ returns total energy (dynamic + leakage x time) in joules.
func (r Report) TotalJ() float64 { return r.DynamicJ() + r.LeakageW()*r.Seconds }

// PowerW returns average total power in watts over the interval.
func (r Report) PowerW() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.TotalJ() / r.Seconds
}

// ComponentPowerW returns the average power of one component.
func (r Report) ComponentPowerW(name string) float64 {
	for _, c := range r.Components {
		if c.Name == name && r.Seconds > 0 {
			return c.DynamicPJ*1e-12/r.Seconds + c.LeakageW
		}
	}
	return 0
}

// AreaMM2 returns total registered area.
func (r Report) AreaMM2() float64 {
	var a float64
	for _, c := range r.Components {
		a += c.AreaMM2
	}
	return a
}

// String renders a Table 4-style breakdown (area and power per component).
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %12s %12s\n", "Component", "area(mm2)", "power(W)")
	comps := append([]Component(nil), r.Components...)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	for _, c := range comps {
		var p float64
		if r.Seconds > 0 {
			p = c.DynamicPJ*1e-12/r.Seconds + c.LeakageW
		}
		fmt.Fprintf(&sb, "%-36s %12.3f %12.3f\n", c.Name, c.AreaMM2, p)
	}
	fmt.Fprintf(&sb, "%-36s %12.3f %12.3f\n", "TOTAL", r.AreaMM2(), r.PowerW())
	return sb.String()
}

// PaperTable4 lists the paper's published breakdown for cross-reference in
// EXPERIMENTS.md and the table-regeneration command.
type PaperRow struct {
	Component string
	DelayPS   float64 // 0 when not applicable
	AreaMM2   float64 // 0 when not applicable
	PowerW    float64
}

// PaperTable4 returns Table 4 exactly as published.
func PaperTable4() []PaperRow {
	return []PaperRow{
		{"Pre-seeding controller", 490, 13.764, 4.102},
		{"Computing controllers (total)", 480, 4.049, 0.354},
		{"Pre-seeding filter table (45MB)", 0, 188.411, 7.166},
		{"Computing CAMs (10MB)", 0, 90.329, 6.949},
		{"DDR4 (total)", 0, 0, 3.604},
		{"DRAM controller PHY", 0, 0, 1.798},
	}
}

// PaperTotalAreaMM2 is CASA's published total die area at 28 nm.
const PaperTotalAreaMM2 = 296.553

// GenAxAreaMM2 is GenAx's published area, the +33.9% comparison point.
const GenAxAreaMM2 = 220.544
