package dna

import (
	"bytes"
	"testing"
)

// FuzzDNARoundTrip checks the 2-bit packing layer and the strand algebra
// on arbitrary byte strings: Pack/Slice and Pack/Base round-trip exactly,
// PackKmer agrees with PackedSeq.Kmer, reverse-complement is an
// involution, and String/FromString round-trips standard bases.
func FuzzDNARoundTrip(f *testing.F) {
	f.Add([]byte("ACGT"))
	f.Add([]byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT"))
	f.Add([]byte("ACGTNacgtnRYKM-\x00\xff"))
	f.Add([]byte(""))
	f.Add([]byte("GATTACAGATTACAGATTACAGATTACAGATTACA"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		seq := make(Sequence, len(raw))
		for i, c := range raw {
			seq[i] = Base(c & 3)
		}

		p := Pack(seq)
		if p.Len() != len(seq) {
			t.Fatalf("Pack.Len = %d, want %d", p.Len(), len(seq))
		}
		if got := p.Slice(0, len(seq)); !got.Equal(seq) {
			t.Fatalf("Pack/Slice round-trip: got %s want %s", got, seq)
		}
		for i := range seq {
			if p.Base(i) != seq[i] {
				t.Fatalf("Pack.Base(%d) = %v, want %v", i, p.Base(i), seq[i])
			}
		}
		for k := 1; k <= 31 && k <= len(seq); k *= 2 {
			for i := 0; i+k <= len(seq); i++ {
				if p.Kmer(i, k) != PackKmer(seq, i, k) {
					t.Fatalf("Kmer(%d, %d) disagrees with PackKmer", i, k)
				}
			}
		}

		rc := seq.ReverseComplement()
		if len(rc) != len(seq) {
			t.Fatalf("rc length %d, want %d", len(rc), len(seq))
		}
		if rc2 := rc.ReverseComplement(); !rc2.Equal(seq) {
			t.Fatalf("reverse-complement not an involution: %s -> %s", seq, rc2)
		}
		for i, b := range seq {
			if rc[len(seq)-1-i] != b.Complement() {
				t.Fatalf("rc[%d] != complement of seq[%d]", len(seq)-1-i, i)
			}
		}

		if got := FromString(seq.String()); !got.Equal(seq) {
			t.Fatalf("String/FromString round-trip: got %s want %s", got, seq)
		}
		if !bytes.Equal([]byte(seq.String()), []byte(rc.ReverseComplement().String())) {
			t.Fatalf("string of double-rc differs")
		}
	})
}
