package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseByteRoundTrip(t *testing.T) {
	for _, b := range []Base{A, C, G, T} {
		if got := BaseFromByte(b.Byte()); got != b {
			t.Errorf("BaseFromByte(%q) = %v, want %v", b.Byte(), got, b)
		}
	}
}

func TestBaseLowerCase(t *testing.T) {
	cases := map[byte]Base{'a': A, 'c': C, 'g': G, 't': T, 'u': T, 'U': T}
	for c, want := range cases {
		if got := BaseFromByte(c); got != want {
			t.Errorf("BaseFromByte(%q) = %v, want %v", c, got, want)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
		if got := b.Complement().Complement(); got != b {
			t.Errorf("double complement of %v = %v", b, got)
		}
	}
}

func TestAmbiguousBaseDeterministic(t *testing.T) {
	for _, c := range []byte{'N', 'n', 'R', 'Y', 'W', '-'} {
		b1 := BaseFromByte(c)
		b2 := BaseFromByte(c)
		if b1 != b2 {
			t.Errorf("BaseFromByte(%q) nondeterministic: %v vs %v", c, b1, b2)
		}
		if b1 > 3 {
			t.Errorf("BaseFromByte(%q) = %d out of range", c, b1)
		}
	}
}

func TestIsStandard(t *testing.T) {
	for _, c := range []byte{'A', 'c', 'G', 't', 'U'} {
		if !IsStandard(c) {
			t.Errorf("IsStandard(%q) = false", c)
		}
	}
	for _, c := range []byte{'N', 'X', ' ', '1'} {
		if IsStandard(c) {
			t.Errorf("IsStandard(%q) = true", c)
		}
	}
}

func TestFromStringAndBack(t *testing.T) {
	const s = "ACGTACGTTTGGCCAA"
	if got := FromString(s).String(); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AACG", "CGTT"},
		{"TTTT", "AAAA"},
		{"GATTACA", "TGTAATC"},
	}
	for _, tc := range cases {
		if got := FromString(tc.in).ReverseComplement().String(); got != tc.want {
			t.Errorf("ReverseComplement(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Sequence, len(raw))
		for i, c := range raw {
			s[i] = Base(c & 3)
		}
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequenceEqual(t *testing.T) {
	a := FromString("ACGT")
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
	if a.Equal(FromString("ACG")) {
		t.Error("different lengths reported equal")
	}
	if a.Equal(FromString("ACGA")) {
		t.Error("different content reported equal")
	}
}

func TestPackKmerLexOrder(t *testing.T) {
	// Numeric order of packed k-mers must equal lexicographic order of the
	// strings: the mini index table relies on this (§4.1 step 2: "sort
	// k-mers in lexicographical order").
	rng := rand.New(rand.NewSource(1))
	const k = 7
	for trial := 0; trial < 200; trial++ {
		a := randomSeq(rng, k)
		b := randomSeq(rng, k)
		pa, pb := PackKmer(a, 0, k), PackKmer(b, 0, k)
		sa, sb := a.String(), b.String()
		switch {
		case sa < sb && !(pa < pb):
			t.Fatalf("lex %s < %s but packed %d >= %d", sa, sb, pa, pb)
		case sa > sb && !(pa > pb):
			t.Fatalf("lex %s > %s but packed %d <= %d", sa, sb, pa, pb)
		case sa == sb && pa != pb:
			t.Fatalf("equal strings pack differently")
		}
	}
}

func TestKmerStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 9, 10, 19, 31} {
		s := randomSeq(rng, k)
		v := PackKmer(s, 0, k)
		if got := KmerString(v, k); got != s.String() {
			t.Errorf("k=%d: KmerString = %s, want %s", k, got, s)
		}
	}
}

func TestKmerBase(t *testing.T) {
	s := FromString("ACGTACG")
	v := PackKmer(s, 0, len(s))
	for j, want := range s {
		if got := KmerBase(v, len(s), j); got != want {
			t.Errorf("KmerBase(%d) = %v, want %v", j, got, want)
		}
	}
}

func TestPackKmerOffset(t *testing.T) {
	s := FromString("AACGTACGTT")
	if got, want := PackKmer(s, 2, 4), PackKmer(FromString("CGTA"), 0, 4); got != want {
		t.Errorf("PackKmer offset = %d, want %d", got, want)
	}
}

func TestPackKmerTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > MaxK")
		}
	}()
	PackKmer(make(Sequence, 40), 0, 32)
}

func TestNumKmers(t *testing.T) {
	if NumKmers(0) != 1 || NumKmers(1) != 4 || NumKmers(10) != 1048576 {
		t.Errorf("NumKmers wrong: %d %d %d", NumKmers(0), NumKmers(1), NumKmers(10))
	}
}

func TestNumKmersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k = 32")
		}
	}()
	NumKmers(32)
}

func TestPackedSeqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 31, 32, 33, 100, 1000} {
		s := randomSeq(rng, n)
		p := Pack(s)
		if p.Len() != n {
			t.Fatalf("Len = %d, want %d", p.Len(), n)
		}
		for i := 0; i < n; i++ {
			if p.Base(i) != s[i] {
				t.Fatalf("n=%d: Base(%d) = %v, want %v", n, i, p.Base(i), s[i])
			}
		}
		if !p.Slice(0, n).Equal(s) {
			t.Fatalf("n=%d: Slice mismatch", n)
		}
	}
}

func TestPackedSeqKmerMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomSeq(rng, 200)
	p := Pack(s)
	for _, k := range []int{1, 9, 10, 19} {
		for i := 0; i+k <= len(s); i += 13 {
			if got, want := p.Kmer(i, k), PackKmer(s, i, k); got != want {
				t.Fatalf("Kmer(%d,%d) = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestPackedSeqBytes(t *testing.T) {
	// 4 Mbases must pack to 1 MB: the paper's "1MB reference partition".
	p := Pack(make(Sequence, 4<<20))
	if got := p.Bytes(); got != 1<<20 {
		t.Errorf("4 Mbase partition packs to %d bytes, want %d", got, 1<<20)
	}
}

func randomSeq(rng *rand.Rand, n int) Sequence {
	s := make(Sequence, n)
	for i := range s {
		s[i] = Base(rng.Intn(4))
	}
	return s
}
