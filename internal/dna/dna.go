// Package dna provides the 2-bit nucleotide encoding used throughout the
// CASA reproduction: base codes, packed sequences, k-mer packing, and
// reverse complements.
//
// Bases are encoded as A=0, C=1, G=2, T=3, matching the ordering used by
// BWA-MEM2 and the FM-index packages. Ambiguous bases (N and the other
// IUPAC codes) are replaced with a deterministic standard nucleotide during
// parsing, mirroring the paper's evaluation method ("We replaced all the N
// bases in the reference genome and reads with one of the standard
// nucleotides", §6).
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit nucleotide code: A=0, C=1, G=2, T=3.
type Base uint8

// The four standard nucleotides.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

// letters maps base codes to their ASCII letters.
var letters = [NumBases]byte{'A', 'C', 'G', 'T'}

// Byte returns the upper-case ASCII letter for b.
func (b Base) Byte() byte { return letters[b&3] }

// String returns the single-letter representation of b.
func (b Base) String() string { return string(letters[b&3]) }

// Complement returns the Watson-Crick complement (A<->T, C<->G).
// In the 2-bit code this is simply the bitwise NOT of the low two bits.
func (b Base) Complement() Base { return b ^ 3 }

// codeTable maps ASCII to base codes; 0xFF marks non-ACGT characters.
var codeTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	set := func(c byte, b Base) {
		t[c] = byte(b)
		t[c|0x20] = byte(b) // lower case
	}
	set('A', A)
	set('C', C)
	set('G', G)
	set('T', T)
	set('U', T) // RNA uracil reads as T
	return t
}()

// BaseFromByte converts an ASCII letter to a Base. Ambiguous IUPAC codes
// (N, R, Y, ...) are replaced deterministically: the replacement is derived
// from the character value so the same input always yields the same
// sequence, as in the paper's N-base replacement.
func BaseFromByte(c byte) Base {
	if b := codeTable[c]; b != 0xFF {
		return Base(b)
	}
	return Base(c & 3)
}

// IsStandard reports whether c is one of A, C, G, T (either case) or U/u.
func IsStandard(c byte) bool { return codeTable[c] != 0xFF }

// Sequence is an unpacked DNA sequence, one Base per element. It is the
// working representation for reads and small references; PackedSeq is used
// where the 2-bit density matters (CAM contents, FM-index text).
type Sequence []Base

// FromString builds a Sequence from an ASCII string, replacing ambiguous
// characters per BaseFromByte.
func FromString(s string) Sequence {
	seq := make(Sequence, len(s))
	for i := 0; i < len(s); i++ {
		seq[i] = BaseFromByte(s[i])
	}
	return seq
}

// String renders the sequence as upper-case ASCII.
func (s Sequence) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}

// Clone returns a copy of s.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// ReverseComplement returns the reverse complement of s as a new Sequence.
// Read aligners seed both the forward read and its reverse complement
// ("three reads (together with the reverse strands) are sent to the
// pre-seeding filter", §4.1).
func (s Sequence) ReverseComplement() Sequence {
	return s.AppendReverseComplement(nil)
}

// AppendReverseComplement appends the reverse complement of s to dst and
// returns the extended slice. Hot paths that seed both strands per read
// pass a reusable buffer (dst[:0]) so the steady state allocates nothing.
func (s Sequence) AppendReverseComplement(dst Sequence) Sequence {
	base := len(dst)
	dst = append(dst, s...)
	rc := dst[base:]
	for i, j := 0, len(rc)-1; i < j; i, j = i+1, j-1 {
		rc[i], rc[j] = rc[j]^3, rc[i]^3
	}
	if len(rc)%2 == 1 {
		rc[len(rc)/2] ^= 3
	}
	return dst
}

// Equal reports whether two sequences are identical.
func (s Sequence) Equal(t Sequence) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Kmer is a packed k-mer: 2 bits per base, the first base of the k-mer in
// the highest-order occupied bits so that lexicographic order of the string
// equals numeric order of the Kmer (for a fixed k). Supports k <= 31.
type Kmer uint64

// MaxK is the largest k-mer length representable by Kmer.
const MaxK = 31

// PackKmer packs s[i:i+k] into a Kmer. It panics if k > MaxK or the slice
// is too short; callers validate lengths at API boundaries.
func PackKmer(s Sequence, i, k int) Kmer {
	if k > MaxK {
		panic(fmt.Sprintf("dna: k=%d exceeds MaxK=%d", k, MaxK))
	}
	var v Kmer
	for _, b := range s[i : i+k] {
		v = v<<2 | Kmer(b)
	}
	return v
}

// KmerString unpacks a packed k-mer of length k back to ASCII,
// for diagnostics and table dumps.
func KmerString(v Kmer, k int) string {
	buf := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		buf[i] = Base(v & 3).Byte()
		v >>= 2
	}
	return string(buf)
}

// KmerBase returns base j (0-based from the left) of a packed k-mer of
// length k.
func KmerBase(v Kmer, k, j int) Base {
	return Base(v >> (2 * uint(k-1-j)) & 3)
}

// NumKmers returns 4^k, the number of distinct k-mers, as an int.
// It panics if the count would overflow int.
func NumKmers(k int) int {
	if k < 0 || k > 31 {
		panic(fmt.Sprintf("dna: invalid k=%d", k))
	}
	return 1 << (2 * uint(k))
}

// PackedSeq is a 2-bit-packed DNA sequence, 32 bases per uint64 word.
// It is the dense storage used for reference partitions: a "1 MB reference
// partition" in the paper is 4 Mbases at 2 bits per base.
type PackedSeq struct {
	words []uint64
	n     int
}

// Pack converts an unpacked Sequence into a PackedSeq.
func Pack(s Sequence) *PackedSeq {
	p := &PackedSeq{
		words: make([]uint64, (len(s)+31)/32),
		n:     len(s),
	}
	for i, b := range s {
		p.words[i/32] |= uint64(b) << (2 * uint(i%32))
	}
	return p
}

// Len returns the number of bases.
func (p *PackedSeq) Len() int { return p.n }

// Bytes returns the size of the packed storage in bytes.
func (p *PackedSeq) Bytes() int { return len(p.words) * 8 }

// Base returns base i.
func (p *PackedSeq) Base(i int) Base {
	return Base(p.words[i/32] >> (2 * uint(i%32)) & 3)
}

// Slice unpacks bases [i, j) into a fresh Sequence.
func (p *PackedSeq) Slice(i, j int) Sequence {
	s := make(Sequence, j-i)
	for x := i; x < j; x++ {
		s[x-i] = p.Base(x)
	}
	return s
}

// Kmer packs k bases starting at i; behaves like PackKmer on the unpacked
// sequence.
func (p *PackedSeq) Kmer(i, k int) Kmer {
	if k > MaxK {
		panic(fmt.Sprintf("dna: k=%d exceeds MaxK=%d", k, MaxK))
	}
	var v Kmer
	for x := i; x < i+k; x++ {
		v = v<<2 | Kmer(p.Base(x))
	}
	return v
}
