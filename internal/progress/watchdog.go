package progress

import (
	"bytes"
	"log/slog"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog watches a Tracker for stalls: when no shard completes (and
// nothing calls Touch) within the deadline, it logs every worker's
// last-known state and a full goroutine dump — the evidence needed to
// tell a straggler shard from a hung pool — then re-arms once progress
// resumes, so a run that stalls twice is reported twice.
//
// The watchdog polls at a quarter of the deadline (at least every 10ms)
// and fires at most once per stall episode.
type Watchdog struct {
	tracker  *Tracker
	deadline time.Duration
	log      *slog.Logger

	// OnStall, when non-nil, replaces the default slog report (tests).
	// It receives the stalled snapshot and the goroutine dump.
	OnStall func(s Snapshot, goroutines []byte)

	fired    atomic.Int64
	stopOnce sync.Once
	stop     chan struct{}
	finished chan struct{}
}

// NewWatchdog returns an unstarted watchdog over t. log may be nil, in
// which case stalls are reported through slog.Default.
func NewWatchdog(t *Tracker, deadline time.Duration, log *slog.Logger) *Watchdog {
	if log == nil {
		log = slog.Default()
	}
	return &Watchdog{
		tracker:  t,
		deadline: deadline,
		log:      log,
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
}

// Fired returns how many stall episodes have been reported so far.
func (w *Watchdog) Fired() int64 { return w.fired.Load() }

// Start launches the watch goroutine. It exits when the tracker
// finishes or Stop is called.
func (w *Watchdog) Start() {
	go func() {
		defer close(w.finished)
		poll := w.deadline / 4
		if poll < 10*time.Millisecond {
			poll = 10 * time.Millisecond
		}
		tick := time.NewTicker(poll)
		defer tick.Stop()
		var reportedMark time.Time // the lastMark we already fired on
		for {
			select {
			case <-w.stop:
				return
			case <-w.tracker.Done():
				return
			case <-tick.C:
				mark := w.tracker.LastProgress()
				if time.Since(mark) < w.deadline {
					continue
				}
				if mark.Equal(reportedMark) {
					continue // same episode, already reported
				}
				reportedMark = mark
				w.fired.Add(1)
				w.report(mark)
			}
		}
	}()
}

// Stop terminates the watch goroutine and waits for it to exit.
// Idempotent; safe after the tracker finished on its own.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.finished
}

// report emits one stall record: the aggregated snapshot, each worker's
// last-known state, and a goroutine dump (pprof "goroutine" profile,
// debug=1) to show where the pool is actually blocked.
func (w *Watchdog) report(mark time.Time) {
	s := w.tracker.Snapshot()
	var buf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&buf, 1)
	}
	if w.OnStall != nil {
		w.OnStall(s, buf.Bytes())
		return
	}
	w.log.Warn("stall: no shard completed within deadline",
		"deadline", w.deadline.String(),
		"last_progress", mark.Format(time.RFC3339Nano),
		"reads_done", s.ReadsDone,
		"total_reads", s.TotalReads,
		"shards_done", s.ShardsDone,
		"per_worker", s.PerWorker,
	)
	w.log.Warn("stall: goroutine dump", "goroutines", buf.String())
}
