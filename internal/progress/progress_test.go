package progress

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSnapshotAggregation(t *testing.T) {
	base := time.Unix(1000, 0)
	clock := base
	tr := New("rid1", "casa", 3, 100)
	tr.SetNow(func() time.Time { return clock })

	tr.ShardDone(0, 10, 9)
	tr.ShardDone(1, 20, 29)
	tr.ShardDone(0, 10, 39)
	tr.AddCycles(0, 500)
	tr.AddCycles(1, 1500)

	clock = base.Add(2 * time.Second)
	s := tr.Snapshot()
	if s.Schema != SchemaVersion {
		t.Fatalf("schema %q, want %q", s.Schema, SchemaVersion)
	}
	if s.RunID != "rid1" || s.Engine != "casa" || s.Workers != 3 {
		t.Fatalf("identity fields wrong: %+v", s)
	}
	if s.ReadsDone != 40 || s.ShardsDone != 3 || s.ModelCycles != 2000 {
		t.Fatalf("totals wrong: reads=%d shards=%d cycles=%d", s.ReadsDone, s.ShardsDone, s.ModelCycles)
	}
	if s.PercentDone != 40 {
		t.Fatalf("percent %v, want 40", s.PercentDone)
	}
	if s.ElapsedSeconds != 2 || s.HostReadsPerS != 20 || s.ModelCyclesPerS != 1000 {
		t.Fatalf("rates wrong: %+v", s)
	}
	// 60 reads left at 20 reads/s.
	if s.ETASeconds != 3 {
		t.Fatalf("eta %v, want 3", s.ETASeconds)
	}
	if s.Done {
		t.Fatal("done before Finish")
	}
	if len(s.PerWorker) != 3 {
		t.Fatalf("per_worker len %d, want 3", len(s.PerWorker))
	}
	if w0 := s.PerWorker[0]; w0.Reads != 20 || w0.Shards != 2 || w0.LastRead != 39 || w0.Cycles != 500 {
		t.Fatalf("worker 0 state wrong: %+v", w0)
	}
	if w2 := s.PerWorker[2]; w2.Reads != 0 || w2.LastRead != -1 {
		t.Fatalf("idle worker state wrong: %+v", w2)
	}

	tr.Finish()
	tr.Finish() // idempotent
	if !tr.Snapshot().Done {
		t.Fatal("snapshot not done after Finish")
	}
	select {
	case <-tr.Done():
	default:
		t.Fatal("Done channel not closed after Finish")
	}
}

func TestSnapshotUnknownTotal(t *testing.T) {
	tr := New("rid", "casa", 1, 0)
	tr.ShardDone(0, 10, 9)
	s := tr.Snapshot()
	if s.PercentDone != 0 || s.ETASeconds != 0 {
		t.Fatalf("percent/eta should be 0 with unknown total: %+v", s)
	}
	tr.AddTotal(40)
	if tr.Total() != 40 {
		t.Fatalf("total %d, want 40", tr.Total())
	}
	if s := tr.Snapshot(); s.PercentDone != 25 {
		t.Fatalf("percent %v, want 25", s.PercentDone)
	}
}

// TestSnapshotJSONShape pins the casa-progress/v1 field set: every field
// is always present (deterministic shape), so consumers never need
// missing-key handling.
func TestSnapshotJSONShape(t *testing.T) {
	tr := New("rid", "ert", 2, 10)
	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"schema", "run_id", "engine", "workers", "total_reads", "reads_done",
		"shards_done", "model_cycles", "percent_done", "elapsed_seconds",
		"host_reads_per_s", "model_cycles_per_s", "eta_seconds", "done", "per_worker",
	} {
		if _, ok := m[field]; !ok {
			t.Errorf("field %q missing from snapshot JSON", field)
		}
	}
	if m["schema"] != SchemaVersion {
		t.Fatalf("schema %v", m["schema"])
	}
	if pw, ok := m["per_worker"].([]any); !ok || len(pw) != 2 {
		t.Fatalf("per_worker %v", m["per_worker"])
	}
}

func TestShardDoneOutOfRangeIgnored(t *testing.T) {
	tr := New("rid", "casa", 2, 10)
	tr.ShardDone(-1, 5, 4)
	tr.ShardDone(2, 5, 4)
	tr.AddCycles(7, 100)
	if s := tr.Snapshot(); s.ReadsDone != 0 || s.ModelCycles != 0 {
		t.Fatalf("out-of-range updates leaked into snapshot: %+v", s)
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("run id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two run ids collided: %s", a)
	}
}

// TestWatchdogFiresOnStall stalls a run artificially (no shard ever
// completes) and requires the watchdog to fire exactly once for the
// episode, then again after progress resumes and stalls anew.
func TestWatchdogFiresOnStall(t *testing.T) {
	tr := New("rid", "casa", 2, 100)
	fired := make(chan Snapshot, 4)
	wd := NewWatchdog(tr, 30*time.Millisecond, nil)
	wd.OnStall = func(s Snapshot, goroutines []byte) {
		if !bytes.Contains(goroutines, []byte("goroutine")) {
			t.Errorf("stall report has no goroutine dump")
		}
		fired <- s
	}
	wd.Start()
	defer wd.Stop()

	select {
	case s := <-fired:
		if s.ReadsDone != 0 {
			t.Fatalf("stalled snapshot shows progress: %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire on a stalled run")
	}
	if wd.Fired() < 1 {
		t.Fatalf("Fired() = %d after report", wd.Fired())
	}

	// One episode fires once: no second report without fresh progress.
	select {
	case <-fired:
		t.Fatal("watchdog fired twice for one stall episode")
	case <-time.After(150 * time.Millisecond):
	}

	// Progress resumes, then stalls again: a new episode, a new report.
	tr.ShardDone(0, 10, 9)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not re-arm after progress resumed")
	}
}

// TestWatchdogQuietWhileProgressing keeps completing shards faster than
// the deadline and requires silence; finishing the tracker stops the
// watch goroutine.
func TestWatchdogQuietWhileProgressing(t *testing.T) {
	tr := New("rid", "casa", 1, 100)
	wd := NewWatchdog(tr, 200*time.Millisecond, nil)
	wd.OnStall = func(s Snapshot, _ []byte) {
		t.Errorf("watchdog fired on a progressing run: %+v", s)
	}
	wd.Start()
	for i := 0; i < 5; i++ {
		tr.ShardDone(0, 1, i)
		time.Sleep(20 * time.Millisecond)
	}
	tr.Finish()
	wd.Stop()
	if wd.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", wd.Fired())
	}
}

// TestWatchdogDefaultLogger routes a stall through the slog path and
// checks the run state and dump land in the log output.
func TestWatchdogDefaultLogger(t *testing.T) {
	var buf bytes.Buffer
	logger := newTestLogger(&buf)
	tr := New("rid", "casa", 1, 10)
	wd := NewWatchdog(tr, 25*time.Millisecond, logger)
	wd.Start()
	deadline := time.After(5 * time.Second)
	for wd.Fired() == 0 {
		select {
		case <-deadline:
			t.Fatal("watchdog never fired")
		case <-time.After(5 * time.Millisecond):
		}
	}
	tr.Finish()
	wd.Stop()
	out := buf.String()
	if !strings.Contains(out, "stall") || !strings.Contains(out, "goroutine") {
		t.Fatalf("stall log missing expected content:\n%s", out)
	}
}
