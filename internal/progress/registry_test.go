package progress

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRegistryAddGet covers registration, lookup, and the duplicate-ID
// rejection that protects handed-out run handles.
func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry(4)
	tr := New("run1", "casa", 1, 10)
	if err := r.Add(tr); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("run1", "ert", 1, 10)); err == nil {
		t.Fatal("duplicate run ID accepted")
	}
	got, ok := r.Get("run1")
	if !ok || got != tr {
		t.Fatalf("Get(run1) = %v, %v; want the registered tracker", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get of an unknown ID reported ok")
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestRegistryEvictsFinished pins the retention contract: live runs are
// never evicted, finished runs are dropped oldest-first beyond the keep
// bound.
func TestRegistryEvictsFinished(t *testing.T) {
	r := NewRegistry(2)
	live := New("live", "casa", 1, 10)
	if err := r.Add(live); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"f1", "f2", "f3"} {
		tr := New(id, "casa", 1, 10)
		tr.Finish()
		if err := r.Add(tr); err != nil {
			t.Fatal(err)
		}
		// Sweep between adds so the eviction order tracks finish
		// observation order deterministically.
		r.Len()
	}
	if _, ok := r.Get("f1"); ok {
		t.Fatal("oldest finished run f1 survived beyond the keep bound")
	}
	for _, id := range []string{"live", "f2", "f3"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("run %s evicted, want retained", id)
		}
	}
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "live" {
		t.Fatalf("IDs = %v, want live first then f2, f3", ids)
	}
}

// TestTrackerUpdates pins the coalescing shard-completion signal: a
// receive is possible after ShardDone, bursts coalesce rather than
// queue, and the channel is empty when nothing completed.
func TestTrackerUpdates(t *testing.T) {
	tr := New("rid", "casa", 2, 100)
	select {
	case <-tr.Updates():
		t.Fatal("update signalled before any shard completed")
	default:
	}
	tr.ShardDone(0, 10, 9)
	tr.ShardDone(1, 10, 19) // coalesces with the pending signal
	select {
	case <-tr.Updates():
	case <-time.After(time.Second):
		t.Fatal("no update signal after ShardDone")
	}
	select {
	case <-tr.Updates():
		t.Fatal("burst of completions queued more than one signal")
	default:
	}
	tr.ShardDone(0, 10, 29)
	select {
	case <-tr.Updates():
	case <-time.After(time.Second):
		t.Fatal("signal not re-armed after a drain")
	}
}

// TestRegistryEvictionRacesSnapshots hammers the serving access pattern
// under the race detector: one side adds and finishes runs fast enough
// to churn the eviction queue (keep bound 4), while concurrent readers —
// the GET /v1/runs and GET /v1/runs/{id} paths — list IDs and snapshot
// whatever they find. Every listed ID must either resolve to a
// snapshottable tracker or have been evicted between the list and the
// lookup; nothing may tear.
func TestRegistryEvictionRacesSnapshots(t *testing.T) {
	r := NewRegistry(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // the dispatcher side: register, progress, finish
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := New(fmt.Sprintf("run%06d", i), "casa", 2, 8)
			if err := r.Add(tr); err != nil {
				t.Error(err)
				return
			}
			tr.ShardDone(0, 4, 3)
			tr.Finish()
		}
	}()
	for g := 0; g < 4; g++ { // the handler side: list + snapshot
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range r.IDs() {
					if tr, ok := r.Get(id); ok {
						snap := tr.Snapshot()
						if snap.RunID != id {
							t.Errorf("snapshot of %s names run %s", id, snap.RunID)
							return
						}
					}
				}
				r.Len()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The keep bound must have held through the churn: at most 4 finished
	// runs (plus none live) remain addressable.
	if n := r.Len(); n > 4 {
		t.Fatalf("registry retains %d runs after churn, keep bound is 4", n)
	}
}
