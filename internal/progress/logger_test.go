package progress

import (
	"io"
	"log/slog"
)

// newTestLogger returns a text slog.Logger writing to w.
func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}
