// Package progress is the live half of the observability layer: while
// internal/metrics and internal/trace describe a run after it drains,
// this package answers "how far along is it right now?" for runs that
// take minutes to hours — per-worker liveness, percent-complete, host
// and model throughput, and an ETA, aggregated on demand into a
// casa-progress/v1 JSON snapshot served by internal/obshttp's /progress
// and /events endpoints and by the CLIs' -progress ticker.
//
// The hot-path contract mirrors internal/batch: each worker owns one
// cache-line-padded cell of atomic counters and touches nothing shared,
// so updating progress costs a handful of uncontended atomic adds per
// *shard* (not per read) and never perturbs the modelled hardware.
// Snapshot readers run concurrently with writers and see a consistent
// enough view for monitoring: every field is monotone, and the terminal
// snapshot (after Finish) is exact.
//
// Determinism: timings (elapsed, throughput, ETA) measure the host and
// differ run to run, but the counts in a terminal snapshot — reads done,
// shards done, accumulated model cycles — are deterministic for a fixed
// shard grain at any worker count, the same invariant the batch runner
// maintains for Results (enforced by internal/batch's progress tests).
package progress

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// padded is an atomic counter alone on its cache line, so per-worker
// cells never false-share with their neighbours.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// SchemaVersion identifies the snapshot JSON layout. Bump only on
// incompatible changes; new fields are not schema changes.
const SchemaVersion = "casa-progress/v1"

// NewRunID returns a fresh 8-byte random hex run identifier, the value
// the CLIs scope their structured logs and progress snapshots with.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a fixed ID keeps
		// the run observable rather than killing it over a label.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// cell is one worker's private progress state. Padded to a cache line so
// neighbouring workers never false-share.
type cell struct {
	reads  padded // reads completed by this worker
	shards padded // shards completed by this worker
	last   padded // 1 + the last global read index completed (0 = none)
	cycles padded // accumulated model cycles attributed to this worker
}

// Tracker aggregates one run's per-worker progress cells. Create with
// New; share the pointer between the batch runner (writer), the HTTP
// server and the CLI ticker (readers). All methods are safe for
// concurrent use except SetNow, which must be called before the run.
type Tracker struct {
	runID   string
	engine  string
	workers int
	now     func() time.Time
	start   time.Time

	total    padded // total reads expected (0 = unknown / streaming)
	lastMark padded // unix nanos of the most recent shard completion

	cells []cell

	// updates is a coalescing edge trigger: ShardDone performs a
	// non-blocking send, so a consumer that drains the channel sees "some
	// shard completed since my last snapshot" without per-shard buffering
	// — the hook live streams (casa-serve's per-shard SSE events) wait on
	// instead of polling.
	updates chan struct{}

	doneOnce sync.Once
	done     chan struct{}
}

// New returns a tracker for a run of workers worker goroutines over
// total reads. total may be 0 when the input is streamed and its size
// is unknown upfront; grow it with AddTotal as batches arrive
// (percent-complete and ETA stay zero while total is zero).
func New(runID, engine string, workers int, total int64) *Tracker {
	if workers < 1 {
		workers = 1
	}
	t := &Tracker{
		runID:   runID,
		engine:  engine,
		workers: workers,
		now:     time.Now,
		cells:   make([]cell, workers),
		updates: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	t.total.v.Store(total)
	t.start = t.now()
	t.lastMark.v.Store(t.start.UnixNano())
	return t
}

// SetNow replaces the tracker's clock (tests). Not safe once the run has
// started; call immediately after New.
func (t *Tracker) SetNow(now func() time.Time) {
	t.now = now
	t.start = now()
	t.lastMark.v.Store(t.start.UnixNano())
}

// RunID returns the run identifier the tracker was created with.
func (t *Tracker) RunID() string { return t.runID }

// Engine returns the engine label the tracker was created with.
func (t *Tracker) Engine() string { return t.engine }

// Workers returns the number of per-worker cells.
func (t *Tracker) Workers() int { return t.workers }

// AddTotal grows the expected read total by n — the streaming-input
// hook: casa-align learns its input size batch by batch.
func (t *Tracker) AddTotal(n int64) { t.total.v.Add(n) }

// Total returns the expected read total (0 = unknown).
func (t *Tracker) Total() int64 { return t.total.v.Load() }

// ShardDone records that worker completed one shard of reads reads whose
// highest global read index was lastRead. Called by the batch runner
// once per shard; out-of-range workers are ignored (defensive — the
// runner clamps its pool to the tracker's worker count).
func (t *Tracker) ShardDone(worker, reads, lastRead int) {
	if worker < 0 || worker >= len(t.cells) {
		return
	}
	c := &t.cells[worker]
	c.reads.v.Add(int64(reads))
	c.shards.v.Add(1)
	c.last.v.Store(int64(lastRead) + 1)
	t.Touch()
	select {
	case t.updates <- struct{}{}:
	default: // a signal is already pending; receivers coalesce
	}
}

// Updates returns the coalescing shard-completion signal: at least one
// receive is possible after every ShardDone, and consecutive completions
// between receives collapse into one signal. Event-driven consumers (the
// serving layer's per-shard SSE stream) select on it alongside Done and
// a heartbeat ticker instead of polling Snapshot.
func (t *Tracker) Updates() <-chan struct{} { return t.updates }

// AddCycles attributes model cycles to worker's cell (engines with a
// cycle-domain model call this per shard; others contribute nothing).
func (t *Tracker) AddCycles(worker int, cycles int64) {
	if worker < 0 || worker >= len(t.cells) || cycles <= 0 {
		return
	}
	t.cells[worker].cycles.v.Add(cycles)
}

// Touch bumps the liveness mark without recording work — for pipeline
// phases (extension, IO) that run between seeding batches, so the stall
// watchdog does not mistake them for a hung pool.
func (t *Tracker) Touch() { t.lastMark.v.Store(t.now().UnixNano()) }

// LastProgress returns the time of the most recent shard completion (or
// Touch, or the tracker's creation).
func (t *Tracker) LastProgress() time.Time {
	return time.Unix(0, t.lastMark.v.Load())
}

// Finish marks the run complete (successfully or after cancellation —
// the terminal snapshot reports whatever completed). Idempotent.
func (t *Tracker) Finish() { t.doneOnce.Do(func() { close(t.done) }) }

// Done returns a channel closed by Finish — the SSE handler's and the
// watchdog's termination signal.
func (t *Tracker) Done() <-chan struct{} { return t.done }

// Finished reports whether Finish has been called.
func (t *Tracker) Finished() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// WorkerState is one worker's cell in a snapshot.
type WorkerState struct {
	Worker   int   `json:"worker"`
	Reads    int64 `json:"reads"`
	Shards   int64 `json:"shards"`
	LastRead int64 `json:"last_read"` // highest global read index completed; -1 = none yet
	Cycles   int64 `json:"cycles"`
}

// Snapshot is one casa-progress/v1 document: the aggregated counts plus
// derived rates. The field set is fixed (deterministic shape); only the
// timing-derived values vary between identical runs.
type Snapshot struct {
	Schema          string        `json:"schema"`
	RunID           string        `json:"run_id"`
	Engine          string        `json:"engine"`
	Workers         int           `json:"workers"`
	TotalReads      int64         `json:"total_reads"` // 0 = unknown (streaming input)
	ReadsDone       int64         `json:"reads_done"`
	ShardsDone      int64         `json:"shards_done"`
	ModelCycles     int64         `json:"model_cycles"`
	PercentDone     float64       `json:"percent_done"`       // 0 when total unknown
	ElapsedSeconds  float64       `json:"elapsed_seconds"`    // host wall clock since New
	HostReadsPerS   float64       `json:"host_reads_per_s"`   // reads done / elapsed
	ModelCyclesPerS float64       `json:"model_cycles_per_s"` // modelled cycles simulated per host second
	ETASeconds      float64       `json:"eta_seconds"`        // 0 when total unknown or no rate yet
	Done            bool          `json:"done"`
	PerWorker       []WorkerState `json:"per_worker"`
}

// Snapshot aggregates the cells into one casa-progress/v1 document.
// Safe to call concurrently with workers still updating: each cell field
// is read atomically, so totals are monotone even if a worker lands a
// shard mid-aggregation.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaVersion,
		RunID:      t.runID,
		Engine:     t.engine,
		Workers:    t.workers,
		TotalReads: t.Total(),
		Done:       t.Finished(),
		PerWorker:  make([]WorkerState, t.workers),
	}
	for w := range t.cells {
		c := &t.cells[w]
		ws := WorkerState{
			Worker:   w,
			Reads:    c.reads.v.Load(),
			Shards:   c.shards.v.Load(),
			LastRead: c.last.v.Load() - 1,
			Cycles:   c.cycles.v.Load(),
		}
		s.PerWorker[w] = ws
		s.ReadsDone += ws.Reads
		s.ShardsDone += ws.Shards
		s.ModelCycles += ws.Cycles
	}
	elapsed := t.now().Sub(t.start).Seconds()
	if elapsed > 0 {
		s.ElapsedSeconds = elapsed
		s.HostReadsPerS = float64(s.ReadsDone) / elapsed
		s.ModelCyclesPerS = float64(s.ModelCycles) / elapsed
	}
	if s.TotalReads > 0 {
		s.PercentDone = 100 * float64(s.ReadsDone) / float64(s.TotalReads)
		if s.HostReadsPerS > 0 && s.ReadsDone < s.TotalReads {
			s.ETASeconds = float64(s.TotalReads-s.ReadsDone) / s.HostReadsPerS
		}
	}
	return s
}
