package progress

import (
	"fmt"
	"sync"
)

// Registry indexes the trackers of a multi-run process by run ID. The
// batch CLIs drive one tracker per process, so "the" tracker could live
// in a single obshttp slot; a serving process (casa-serve) runs many
// seeding requests over its lifetime and needs every live run — and the
// recent finished ones, for clients that fetch the terminal snapshot
// after their stream closed — addressable at GET /v1/runs/{id}.
//
// Finished runs are retained up to the keep bound (FIFO by finish
// observation order): a long-lived server's registry stays bounded no
// matter how many requests it serves. Live runs are never evicted.
type Registry struct {
	mu       sync.Mutex
	runs     map[string]*Tracker
	finished []string // eviction order: runs observed finished, oldest first
	keep     int
}

// DefaultKeepFinished is the finished-run retention bound used when
// NewRegistry is given a non-positive keep.
const DefaultKeepFinished = 64

// NewRegistry returns a registry retaining at most keep finished runs
// (non-positive means DefaultKeepFinished).
func NewRegistry(keep int) *Registry {
	if keep <= 0 {
		keep = DefaultKeepFinished
	}
	return &Registry{runs: make(map[string]*Tracker), keep: keep}
}

// Add registers t under its run ID. Duplicate IDs are rejected: run IDs
// are 64-bit random handles handed to clients, and silently replacing a
// live run's tracker would detach its observers.
func (r *Registry) Add(t *Tracker) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.runs[t.RunID()]; dup {
		return fmt.Errorf("progress: run %q already registered", t.RunID())
	}
	r.runs[t.RunID()] = t
	return nil
}

// Get returns the tracker registered under id, if any. Calling Get also
// sweeps newly finished runs into the eviction queue, so retention needs
// no background goroutine.
func (r *Registry) Get(id string) (*Tracker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweep()
	t, ok := r.runs[id]
	return t, ok
}

// Len returns the number of registered runs (live + retained finished).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweep()
	return len(r.runs)
}

// IDs returns the registered run IDs, live runs first and finished runs
// in finish observation order (oldest first) after them.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweep()
	ids := make([]string, 0, len(r.runs))
	for id, t := range r.runs {
		if !t.Finished() {
			ids = append(ids, id)
		}
	}
	return append(ids, r.finished...)
}

// sweep (caller holds r.mu) moves newly finished runs into the eviction
// queue and drops the oldest finished runs beyond the keep bound.
func (r *Registry) sweep() {
	queued := make(map[string]bool, len(r.finished))
	for _, id := range r.finished {
		queued[id] = true
	}
	for id, t := range r.runs {
		if t.Finished() && !queued[id] {
			r.finished = append(r.finished, id)
		}
	}
	for len(r.finished) > r.keep {
		delete(r.runs, r.finished[0])
		r.finished = r.finished[1:]
	}
}
