// Package suffixarray builds suffix arrays over 2-bit DNA texts using the
// SA-IS algorithm (linear time, induced sorting). The suffix array is the
// backbone of the FM-index (Fig 2 of the paper): the BWT is the last column
// of the sorted rotations, which is derived directly from the suffix array.
//
// SA-IS is used instead of a comparison sort so that whole reference
// partitions (4 Mbases) and full synthetic genomes index in well under a
// second, keeping the experiment harness fast.
package suffixarray

import "casa/internal/dna"

// Build returns the suffix array of seq with an implicit sentinel that is
// lexicographically smaller than every base appended at the end. The
// returned slice has len(seq)+1 entries; sa[0] == len(seq) is the sentinel
// suffix. This matches the textbook FM-index construction where '$' is
// inserted as the smallest character.
func Build(seq dna.Sequence) []int32 {
	n := len(seq)
	// Shift the alphabet by 1 so the sentinel can be 0.
	t := make([]int32, n+1)
	for i, b := range seq {
		t[i] = int32(b) + 1
	}
	t[n] = 0
	sa := make([]int32, n+1)
	sais(t, sa, dna.NumBases+1)
	return sa
}

// BuildNoSentinel returns the suffix array of seq without a sentinel entry:
// a permutation of [0, len(seq)) ordering the suffixes lexicographically,
// where a proper prefix sorts before any extension (standard suffix order).
func BuildNoSentinel(seq dna.Sequence) []int32 {
	sa := Build(seq)
	return sa[1:] // drop the sentinel suffix, order otherwise identical
}

// sais computes the suffix array of t into sa. t must end with a unique
// smallest sentinel (t[len(t)-1] == 0 appearing exactly once); sigma is the
// alphabet size (max symbol + 1).
func sais(t []int32, sa []int32, sigma int) {
	n := len(t)
	if n == 1 {
		sa[0] = 0
		return
	}
	if n == 2 {
		sa[0], sa[1] = 1, 0
		return
	}

	// Step 1: classify each suffix as S-type (true) or L-type (false).
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		if t[i] < t[i+1] || (t[i] == t[i+1] && isS[i+1]) {
			isS[i] = true
		}
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Bucket sizes per symbol.
	bkt := make([]int32, sigma)
	for _, c := range t {
		bkt[c]++
	}
	bktStart := make([]int32, sigma)
	bktEnd := make([]int32, sigma)
	setBounds := func() {
		var sum int32
		for c := 0; c < sigma; c++ {
			bktStart[c] = sum
			sum += bkt[c]
			bktEnd[c] = sum
		}
	}

	const empty = int32(-1)
	clear := func() {
		for i := range sa {
			sa[i] = empty
		}
	}

	// induce performs the standard two-pass induced sort assuming LMS
	// suffixes are already placed at the tails of their buckets.
	induce := func() {
		// Induce L-type from left to right.
		setBounds()
		head := make([]int32, sigma)
		copy(head, bktStart)
		for i := 0; i < n; i++ {
			j := sa[i]
			if j > 0 && !isS[j-1] {
				c := t[j-1]
				sa[head[c]] = j - 1
				head[c]++
			}
		}
		// Induce S-type from right to left.
		tail := make([]int32, sigma)
		copy(tail, bktEnd)
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j > 0 && isS[j-1] {
				c := t[j-1]
				tail[c]--
				sa[tail[c]] = j - 1
			}
		}
	}

	// Step 2: place LMS suffixes (unordered) and induce to sort LMS
	// substrings.
	clear()
	setBounds()
	tail := make([]int32, sigma)
	copy(tail, bktEnd)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			c := t[i]
			tail[c]--
			sa[tail[c]] = int32(i)
		}
	}
	induce()

	// Step 3: compact the sorted LMS substrings and assign names.
	nLMS := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[nLMS] = sa[i]
			nLMS++
		}
	}
	// Name buffer lives in the second half of sa.
	names := sa[nLMS:]
	for i := range names {
		names[i] = empty
	}
	name := int32(0)
	prev := int32(-1)
	for i := 0; i < nLMS; i++ {
		pos := sa[i]
		if prev >= 0 && !lmsSubstringEqual(t, isS, int(prev), int(pos)) {
			name++
		} else if prev < 0 {
			name = 0
		}
		names[pos/2] = name
		prev = pos
	}
	// Compact names in text order.
	reduced := make([]int32, 0, nLMS)
	lmsPos := make([]int32, 0, nLMS)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lmsPos = append(lmsPos, int32(i))
		}
	}
	for _, p := range lmsPos {
		reduced = append(reduced, names[p/2])
	}

	// Step 4: order the LMS suffixes.
	order := make([]int32, nLMS)
	if int(name)+1 < nLMS {
		// Names are not unique: recurse on the reduced string. The reduced
		// string ends with the sentinel's LMS (name 0, unique smallest).
		subSA := make([]int32, nLMS)
		sais(reduced, subSA, int(name)+1)
		for i := 0; i < nLMS; i++ {
			order[i] = lmsPos[subSA[i]]
		}
	} else {
		// Names unique: the induced order already sorts LMS suffixes, but
		// rebuild from names to keep the code path uniform.
		for i, nm := range reduced {
			order[nm] = lmsPos[i]
		}
	}

	// Step 5: place LMS suffixes in their true order and induce the final
	// suffix array.
	clear()
	setBounds()
	copy(tail, bktEnd)
	for i := nLMS - 1; i >= 0; i-- {
		j := order[i]
		c := t[j]
		tail[c]--
		sa[tail[c]] = j
	}
	induce()
}

// lmsSubstringEqual reports whether the LMS substrings starting at a and b
// are identical (same symbols and same L/S types up to and including the
// next LMS position).
func lmsSubstringEqual(t []int32, isS []bool, a, b int) bool {
	n := len(t)
	if a == b {
		return true
	}
	// The sentinel's LMS substring is unique.
	if a == n-1 || b == n-1 {
		return false
	}
	for i := 0; ; i++ {
		aLMS := i > 0 && isS[a+i] && !isS[a+i-1]
		bLMS := i > 0 && isS[b+i] && !isS[b+i-1]
		if i > 0 && aLMS && bLMS {
			return true
		}
		if aLMS != bLMS || t[a+i] != t[b+i] || isS[a+i] != isS[b+i] {
			return false
		}
		if a+i == n-1 || b+i == n-1 {
			return false
		}
	}
}
