package suffixarray

import (
	"math/rand"
	"sort"
	"testing"

	"casa/internal/dna"
)

// naive builds the suffix array (with sentinel) by direct comparison sort.
func naive(seq dna.Sequence) []int32 {
	n := len(seq)
	sa := make([]int32, n+1)
	for i := range sa {
		sa[i] = int32(i)
	}
	less := func(a, b int32) bool {
		// Compare suffixes with implicit sentinel (smaller than all bases).
		i, j := int(a), int(b)
		for i < n && j < n {
			if seq[i] != seq[j] {
				return seq[i] < seq[j]
			}
			i++
			j++
		}
		return i == n && j != n // shorter (hits sentinel first) is smaller
	}
	sort.Slice(sa, func(x, y int) bool { return less(sa[x], sa[y]) })
	return sa
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildEmpty(t *testing.T) {
	sa := Build(nil)
	if len(sa) != 1 || sa[0] != 0 {
		t.Errorf("empty SA = %v", sa)
	}
}

func TestBuildSingleBase(t *testing.T) {
	sa := Build(dna.FromString("A"))
	if !equal(sa, []int32{1, 0}) {
		t.Errorf("SA(A) = %v", sa)
	}
}

func TestBuildKnown(t *testing.T) {
	// Reference ATCTC from Fig 2 of the paper: SA = 5,4,2,0,3,1 in the
	// paper's row order ($ first). The paper sorts rotations; suffix order
	// with $ smallest is identical.
	sa := Build(dna.FromString("ATCTC"))
	want := []int32{5, 0, 4, 2, 3, 1}
	// Verify against naive rather than hand-derived order.
	if !equal(sa, naive(dna.FromString("ATCTC"))) {
		t.Errorf("SA(ATCTC) = %v, naive = %v", sa, naive(dna.FromString("ATCTC")))
	}
	_ = want
}

func TestBuildBanana(t *testing.T) {
	// Classic stress pattern with runs and repeats mapped onto DNA.
	for _, s := range []string{
		"AAAAAA", "ACACAC", "CACACA", "ACGTACGTACGT", "TTTTTTTTTA",
		"GATTACA", "AGCTTTTCATTCTGACTGCAACGGGCAATATGTCTC",
	} {
		seq := dna.FromString(s)
		if got, want := Build(seq), naive(seq); !equal(got, want) {
			t.Errorf("SA(%s) = %v, want %v", s, got, want)
		}
	}
}

func TestBuildRandomMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		seq := make(dna.Sequence, n)
		for i := range seq {
			seq[i] = dna.Base(rng.Intn(4))
		}
		if got, want := Build(seq), naive(seq); !equal(got, want) {
			t.Fatalf("trial %d (n=%d): SA mismatch\n got %v\nwant %v\nseq %s",
				trial, n, got, want, seq)
		}
	}
}

func TestBuildRandomSkewedAlphabet(t *testing.T) {
	// Low-entropy texts exercise the recursion path in SA-IS.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(500)
		seq := make(dna.Sequence, n)
		for i := range seq {
			if rng.Intn(10) == 0 {
				seq[i] = dna.Base(rng.Intn(4))
			} else {
				seq[i] = dna.A
			}
		}
		if got, want := Build(seq), naive(seq); !equal(got, want) {
			t.Fatalf("trial %d: mismatch on low-entropy text", trial)
		}
	}
}

func TestBuildIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := make(dna.Sequence, 10000)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	sa := Build(seq)
	seen := make([]bool, len(sa))
	for _, v := range sa {
		if v < 0 || int(v) >= len(sa) || seen[v] {
			t.Fatalf("not a permutation: %d", v)
		}
		seen[v] = true
	}
	if sa[0] != int32(len(seq)) {
		t.Errorf("sentinel suffix not first: sa[0] = %d", sa[0])
	}
}

func TestBuildSortedInvariant(t *testing.T) {
	// Suffixes must come out in strictly increasing lexicographic order.
	rng := rand.New(rand.NewSource(11))
	seq := make(dna.Sequence, 5000)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(3)) // 3-letter alphabet stresses ties
	}
	sa := Build(seq)
	n := len(seq)
	lessOrEqual := func(a, b int32) bool {
		i, j := int(a), int(b)
		for i < n && j < n {
			if seq[i] != seq[j] {
				return seq[i] < seq[j]
			}
			i++
			j++
		}
		return i == n
	}
	for i := 1; i < len(sa); i++ {
		if !lessOrEqual(sa[i-1], sa[i]) {
			t.Fatalf("suffixes %d and %d out of order", sa[i-1], sa[i])
		}
	}
}

func TestBuildNoSentinel(t *testing.T) {
	seq := dna.FromString("GATTACA")
	sa := BuildNoSentinel(seq)
	if len(sa) != len(seq) {
		t.Fatalf("len = %d, want %d", len(sa), len(seq))
	}
	full := Build(seq)
	if !equal(sa, full[1:]) {
		t.Errorf("BuildNoSentinel = %v, want %v", sa, full[1:])
	}
}

func TestBuildLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large SA build")
	}
	rng := rand.New(rand.NewSource(13))
	seq := make(dna.Sequence, 1<<20)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	sa := Build(seq)
	// Spot-check sortedness at random adjacent pairs.
	n := len(seq)
	cmp := func(a, b int32) int {
		i, j := int(a), int(b)
		for i < n && j < n {
			if seq[i] != seq[j] {
				if seq[i] < seq[j] {
					return -1
				}
				return 1
			}
			i++
			j++
		}
		if i == n {
			return -1
		}
		return 1
	}
	for trial := 0; trial < 2000; trial++ {
		i := 1 + rng.Intn(len(sa)-1)
		if cmp(sa[i-1], sa[i]) > 0 {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func BenchmarkBuild4Mbase(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	seq := make(dna.Sequence, 4<<20)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(seq)
	}
}
