package serve

import (
	"casa/internal/metrics"
	"casa/internal/smem"
)

// ReportSchema identifies the seeding report JSON layout. It is the same
// casa-smem/v1 document cmd/casa-smem emits with -json: a batch seeded
// through POST /v1/seed and one seeded offline by the CLI produce
// byte-identical modelled fields (engine, min_smem, workers, reads,
// smems, metrics) for the same inputs — only run_id varies.
const ReportSchema = "casa-smem/v1"

// Report is one seeding run's casa-smem/v1 document. Field order is
// fixed and the embedded registry serializes with sorted names, so the
// same run always produces the same bytes. Reads counts the completed
// prefix; on an interrupted (cancelled) run it is smaller than the input
// and Interrupted is set.
//
// Results is a serving-side extension (new fields are not schema
// changes): the per-read SMEM sets, present only when the client asked
// for them (?include=smems). The CLI never sets it, keeping CLI and
// server reports byte-comparable by default.
type Report struct {
	Schema      string            `json:"schema"`
	RunID       string            `json:"run_id"`
	Engine      string            `json:"engine"`
	Verify      string            `json:"verify,omitempty"`
	MinSMEM     int               `json:"min_smem"`
	Workers     int               `json:"workers"`
	Reads       int               `json:"reads"`
	SMEMs       int               `json:"smems"`
	Mismatches  int               `json:"mismatches"`
	Interrupted bool              `json:"interrupted,omitempty"`
	Metrics     *metrics.Registry `json:"metrics"`
	Results     []ReadSMEMs       `json:"results,omitempty"`
}

// ReadSMEMs is one read's SMEM set in a Report's Results extension.
type ReadSMEMs struct {
	Name  string     `json:"name"`
	SMEMs []SMEMJSON `json:"smems"`
}

// SMEMJSON is one forward-strand SMEM: the closed read interval
// [start, end] and its reference occurrence count.
type SMEMJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Hits  int `json:"hits"`
}

// toSMEMs converts one read's matches to their JSON shape.
func toSMEMs(ms []smem.Match) []SMEMJSON {
	out := make([]SMEMJSON, len(ms))
	for i, m := range ms {
		out[i] = SMEMJSON{Start: m.Start, End: m.End, Hits: m.Hits}
	}
	return out
}
