package serve

// Wall-clock run telemetry: the serving layer's second time domain.
// Every accepted request is measured through five lifecycle stages —
//
//	received   reading and parsing the uploaded batch
//	parsed     validation, tracker setup and queue admission
//	queued     waiting behind the running request
//	running    the batch.SeedEngineCtx run itself
//	reporting  serializing/streaming the response back
//
// — each recorded as one wall-clock span (internal/trace's WallTrace,
// run ID as the span name) exported at /debug/runtrace and via
// casa-serve's -trace flag, and folded into lifetime histograms
// (serve/queue/wait_us, serve/run/duration_us) served at /metrics and
// summarized at /v1/stats. None of this touches the modelled cycle
// domain: the engine still runs on a per-request registry whose numbers
// stay byte-identical to an offline casa-smem run, and wall instruments
// only ever observe host timestamps taken outside the seeding hot path
// (per request and per queue transition, never per read).

import (
	"net/http"
	"strings"
	"time"

	"casa/internal/metrics"
	"casa/internal/obshttp"
	"casa/internal/trace"
)

// wallProc is the process label of every serving-lifecycle wall span.
const wallProc = "casa-serve"

// StatsSchema identifies the GET /v1/stats JSON layout.
const StatsSchema = "casa-serve-stats/v1"

// recordLifecycle emits the received→parsed→queued→running span chain of
// one finished run and observes the queue-wait and run-duration
// histograms. Called by the dispatcher after the run completes (the
// reporting span is the handler's, emitted once the response is
// written). Jobs cancelled while queued still get their chain — their
// running span has zero duration — so every accepted run is visible in
// the trace.
func (s *Server) recordLifecycle(j *job) {
	id := j.tracker.RunID()
	s.wall.Record(wallProc, "received", id, j.received, j.parsed.Sub(j.received))
	s.wall.Record(wallProc, "parsed", id, j.parsed, j.queued.Sub(j.parsed))
	s.wall.Record(wallProc, "queued", id, j.queued, j.started.Sub(j.queued))
	s.wall.Record(wallProc, "running", id, j.started, j.finished.Sub(j.started))
	s.histQueueWait.Observe(maxZero(j.started.Sub(j.queued).Microseconds()))
	s.histRunDur.Observe(maxZero(j.finished.Sub(j.started).Microseconds()))
}

// recordReporting emits the terminal reporting span: run end to response
// written. Handler-side, so a client that vanished mid-response simply
// has no reporting span.
func (s *Server) recordReporting(j *job, wrote time.Time) {
	s.wall.Record(wallProc, "reporting", j.tracker.RunID(), j.finished, wrote.Sub(j.finished))
}

// foldRunWall folds one finished run's batch-layer wall recorder into the
// server: the per-worker busy times feed the lifetime utilization
// instruments (lifetime/batch/worker_busy_us, the per-run imbalance
// histogram behind run_imbalance_permille in /v1/stats), and the spans
// themselves are nested into the lifecycle trace — re-labelled onto the
// casa-serve process with the worker/host label as the track and the run
// ID prefixed to the span name, so /debug/runtrace shows each run's
// shard gantt directly under its received→…→reporting chain.
func (s *Server) foldRunWall(runID string, runWall *trace.WallTrace) {
	spans := runWall.Spans()
	if len(spans) == 0 {
		return
	}
	workers, _ := trace.WallWorkers(spans)
	var busy int64
	for _, st := range workers {
		busy += st.BusyUS
	}
	s.reg.Counter("lifetime/batch/worker_busy_us").Add(busy)
	if imb := trace.WallImbalance(workers); imb > 0 {
		s.histImbalance.Observe(int64(imb * 1000))
	}
	if dropped := runWall.Dropped(); dropped > 0 {
		s.reg.Counter("lifetime/batch/wall_spans_dropped").Add(dropped)
	}
	for _, sp := range spans {
		s.wall.AddSpan(trace.WallSpan{
			Proc:  wallProc,
			Track: sp.Proc,
			Name:  runID + " " + sp.Name,
			Start: sp.Start,
			Dur:   sp.Dur,
		})
	}
}

func maxZero(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// retryAfterSeconds derives the 429 Retry-After hint from observed run
// durations: waiting requests (the queue plus the running one) times the
// p50 run duration, rounded up to whole seconds and clamped to [1, 300].
// With no completed run yet there is nothing to extrapolate from and the
// hint falls back to 1s.
func retryAfterSeconds(queued int, p50us int64) int {
	if p50us <= 0 {
		return 1
	}
	us := int64(queued+1) * p50us
	secs := int((us + 999_999) / 1_000_000)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// Quantiles is one histogram's /v1/stats summary: observation count and
// upper-bound p50/p99 estimates in microseconds.
type Quantiles struct {
	Count int64 `json:"count"`
	P50us int64 `json:"p50_us"`
	P99us int64 `json:"p99_us"`
}

// Stats is the GET /v1/stats document: a point-in-time JSON summary of
// the server's lifetime — uptime, terminal run counts, queue state and
// latency quantiles — for operators and dashboards that want one
// structured snapshot instead of parsing the Prometheus exposition.
// Adding fields is not a schema change.
type Stats struct {
	Schema        string  `json:"schema"`
	Engine        string  `json:"engine"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	RunsAccepted  int64 `json:"runs_accepted"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsCancelled int64 `json:"runs_cancelled"`
	RunsRejected  int64 `json:"runs_rejected"`
	ReadsSeeded   int64 `json:"reads_seeded"`

	BytesIn    int64 `json:"bytes_in"`
	BytesOut   int64 `json:"bytes_out"`
	SSEStreams int64 `json:"sse_streams"`

	QueueWait   Quantiles            `json:"queue_wait"`
	RunDuration Quantiles            `json:"run_duration"`
	HTTP        map[string]Quantiles `json:"http"` // endpoint label -> request durations

	// Pool utilization across served runs: total worker busy time and the
	// per-run load-imbalance ratio (max/mean worker busy, in permille so
	// the integer histogram keeps 3 digits: 1000 = perfectly balanced).
	WorkerBusyUS int64     `json:"worker_busy_us"`
	RunImbalance Quantiles `json:"run_imbalance_permille"`

	TraceSpans   int   `json:"trace_spans"`
	TraceDropped int64 `json:"trace_dropped"`
}

// quantiles summarizes a live histogram.
func quantiles(h *metrics.Histogram) Quantiles {
	return Quantiles{Count: h.Count(), P50us: h.Quantile(0.5), P99us: h.Quantile(0.99)}
}

// stats assembles the /v1/stats document from the serving registry.
func (s *Server) stats() Stats {
	st := Stats{
		Schema:        StatsSchema,
		Engine:        s.proto.Name(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		RunsAccepted:  s.reg.Counter("serve/runs/accepted").Value(),
		RunsCompleted: s.reg.Counter("serve/runs/completed").Value(),
		RunsCancelled: s.reg.Counter("serve/runs/cancelled").Value(),
		RunsRejected:  s.reg.Counter("serve/runs/rejected").Value(),
		ReadsSeeded:   s.reg.Counter("serve/reads/seeded").Value(),
		BytesIn:       s.reg.Counter("http/server/bytes_in").Value(),
		BytesOut:      s.reg.Counter("http/server/bytes_out").Value(),
		SSEStreams:    s.reg.Counter("serve/sse/streams").Value(),
		QueueWait:     quantiles(s.histQueueWait),
		RunDuration:   quantiles(s.histRunDur),
		HTTP:          map[string]Quantiles{},
		WorkerBusyUS:  s.reg.Counter("lifetime/batch/worker_busy_us").Value(),
		RunImbalance:  quantiles(s.histImbalance),
		TraceSpans:    s.wall.Len(),
		TraceDropped:  s.wall.Dropped(),
	}
	for _, snap := range s.reg.Snapshots() {
		if snap.Kind != "histogram" || !strings.HasPrefix(snap.Name, "http/") || !strings.HasSuffix(snap.Name, "/duration_us") {
			continue
		}
		ep := strings.TrimSuffix(strings.TrimPrefix(snap.Name, "http/"), "/duration_us")
		st.HTTP[ep] = Quantiles{
			Count: snap.Count,
			P50us: metrics.QuantileFromBuckets(snap.Bounds, snap.Counts, snap.Count, 0.5),
			P99us: metrics.QuantileFromBuckets(snap.Bounds, snap.Counts, snap.Count, 0.99),
		}
	}
	return st
}

// handleStats serves the lifetime summary at GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	obshttp.WriteJSON(w, s.stats())
}

// handleRunTrace serves the wall-clock lifecycle trace as Chrome
// trace_event JSON (casa-walltrace/v1) at GET /debug/runtrace — load it
// in Perfetto to see every recent run's received→…→reporting waterfall.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.WriteRunTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
