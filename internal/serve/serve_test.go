package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"casa/internal/batch"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/metrics"
	"casa/internal/seqio"
	"casa/internal/smem"
	"casa/internal/trace"
)

// testRef returns a deterministic reference and a FASTQ batch of reads
// sampled from it.
func testRef(t *testing.T, bases, nReads, readLen int) (dna.Sequence, []byte, []dna.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ref := make(dna.Sequence, bases)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var fq bytes.Buffer
	var reads []dna.Sequence
	for i := 0; i < nReads; i++ {
		at := rng.Intn(bases - readLen)
		read := ref[at : at+readLen]
		reads = append(reads, read)
		fmt.Fprintf(&fq, "@r%d\n%s\n+\n%s\n", i, read, strings.Repeat("I", readLen))
	}
	return ref, fq.Bytes(), reads
}

func startTestServer(t *testing.T, ref dna.Sequence, cfg Config) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// postSeed submits a batch and decodes the report (also returning the
// raw bytes: *metrics.Registry serializes but does not deserialize, so
// byte-level comparisons go through the raw document).
func postSeed(t *testing.T, url string, body []byte) (int, *Report, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, raw
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v (%s)", err, raw)
	}
	return resp.StatusCode, &rep, raw
}

// metricsJSON extracts and compacts the report's metrics object.
func metricsJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc struct {
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, doc.Metrics); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedMatchesOfflineRun pins the serving contract: a served batch
// reports the same modelled fields as running the registry engine
// directly over the same inputs — and two concurrent requests against
// one loaded reference both do.
func TestSeedMatchesOfflineRun(t *testing.T) {
	ref, fq, reads := testRef(t, 1<<14, 60, 80)
	cfg := Config{Engine: "casa", Workers: 4, EngineOptions: engine.Options{MinSMEM: 19}}
	s := startTestServer(t, ref, cfg)

	// The offline equivalent: same engine, same options, same pool shape.
	eng, err := engine.New("casa", ref, engine.Options{MinSMEM: 19})
	if err != nil {
		t.Fatal(err)
	}
	wantReg := metrics.New()
	res, done, err := batch.SeedEngineCtx(context.Background(), eng.Clone(),
		reads, batch.Options{Workers: 4, Metrics: wantReg})
	if err != nil || done != len(reads) {
		t.Fatalf("offline run: done %d err %v", done, err)
	}
	wantSMEMs := 0
	for _, ms := range eng.SMEMs(res) {
		wantSMEMs += len(ms)
	}
	wantMetrics, err := json.Marshal(wantReg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make([]*Report, 2)
	raws := make([][]byte, 2)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, rep, raw := postSeed(t, "http://"+s.Addr()+"/v1/seed", fq)
			if code != http.StatusOK {
				t.Errorf("request %d: code %d", i, code)
				return
			}
			reports[i], raws[i] = rep, raw
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("request %d: no report", i)
		}
		if rep.Schema != ReportSchema || rep.Engine != "casa" || rep.MinSMEM != 19 || rep.Workers != 4 {
			t.Fatalf("request %d header fields wrong: %+v", i, rep)
		}
		if rep.Reads != len(reads) || rep.SMEMs != wantSMEMs || rep.Interrupted {
			t.Fatalf("request %d: reads %d smems %d interrupted %v; want %d, %d, false",
				i, rep.Reads, rep.SMEMs, rep.Interrupted, len(reads), wantSMEMs)
		}
		if got := metricsJSON(t, raws[i]); !bytes.Equal(got, wantMetrics) {
			t.Fatalf("request %d: served metrics differ from the offline run's", i)
		}
		if seen[rep.RunID] {
			t.Fatalf("run ID %s reused across requests", rep.RunID)
		}
		seen[rep.RunID] = true
	}
}

// TestSeedResultsExtension checks ?include=smems returns per-read SMEM
// sets agreeing with a direct engine run.
func TestSeedResultsExtension(t *testing.T) {
	ref, fq, reads := testRef(t, 1<<13, 10, 60)
	s := startTestServer(t, ref, Config{Engine: "fmindex"})

	code, rep, _ := postSeed(t, "http://"+s.Addr()+"/v1/seed?include=smems", fq)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(rep.Results) != len(reads) {
		t.Fatalf("results cover %d reads, want %d", len(rep.Results), len(reads))
	}
	eng, err := engine.New("fmindex", ref, engine.Options{MinSMEM: 19})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.SMEMs(eng.Reduce(reads, []engine.Activity{eng.SeedTrace(reads, nil, 0)}))
	for i, rs := range rep.Results {
		if rs.Name != fmt.Sprintf("r%d", i) {
			t.Fatalf("result %d named %q", i, rs.Name)
		}
		got := make([]smem.Match, len(rs.SMEMs))
		for j, m := range rs.SMEMs {
			got[j] = smem.Match{Start: m.Start, End: m.End, Hits: m.Hits}
		}
		if !smem.SameIntervals(got, want[i]) {
			t.Fatalf("read %d: served SMEMs %v, engine says %v", i, got, want[i])
		}
	}
}

// TestSeedSSE drives the streaming response: progress events (the first
// immediately), then the terminal report event carrying casa-smem/v1.
func TestSeedSSE(t *testing.T) {
	ref, fq, reads := testRef(t, 1<<14, 40, 80)
	s := startTestServer(t, ref, Config{Engine: "casa", Workers: 2})

	req, err := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/seed", bytes.NewReader(fq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get("X-Casa-Run") == "" {
		t.Fatal("no X-Casa-Run header on the stream")
	}

	var progressEvents int
	var report *Report
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				progressEvents++
			case "report":
				report = new(Report)
				if err := json.Unmarshal([]byte(data), report); err != nil {
					t.Fatalf("report event does not parse: %v", err)
				}
			default:
				t.Fatalf("unexpected event %q", event)
			}
		}
	}
	if progressEvents < 1 {
		t.Fatal("stream carried no progress events")
	}
	if report == nil {
		t.Fatal("stream ended without a report event")
	}
	if report.Schema != ReportSchema || report.Reads != len(reads) || report.Interrupted {
		t.Fatalf("terminal report wrong: %+v", report)
	}
}

// blockingEngine is a registry-shaped engine whose seeding blocks until
// released, for driving queue admission and cancellation determinism.
type blockingEngine struct {
	release chan struct{} // closed (or received from) to let a shard finish
	started chan struct{} // signalled once a shard begins seeding
}

type blockAct struct{}

func (blockAct) PublishMetrics(*metrics.Registry) {}

type blockRes struct{ n int }

func (blockRes) PublishModelMetrics(*metrics.Registry) {}

func (e *blockingEngine) Name() string         { return "blocking" }
func (e *blockingEngine) Clone() engine.Engine { return e } // shared channels are the point
func (e *blockingEngine) SeedTrace(reads []dna.Sequence, _ *trace.Buffer, _ int) engine.Activity {
	select {
	case e.started <- struct{}{}:
	default:
	}
	<-e.release
	return blockAct{}
}
func (e *blockingEngine) Reduce(reads []dna.Sequence, acts []engine.Activity) engine.Result {
	return blockRes{n: len(reads)}
}
func (e *blockingEngine) SMEMs(res engine.Result) [][]smem.Match {
	return make([][]smem.Match, res.(blockRes).n)
}

// fastqBatch builds a tiny FASTQ payload of n reads.
func fastqBatch(n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "@q%d\nACGTACGTACGT\n+\nIIIIIIIIIIII\n", i)
	}
	return b.Bytes()
}

// TestQueueBackpressure fills the queue behind a blocked run and checks
// the overflow request gets 429 + Retry-After, then that releasing the
// engine completes every admitted request.
func TestQueueBackpressure(t *testing.T) {
	be := &blockingEngine{release: make(chan struct{}), started: make(chan struct{}, 16)}
	s, err := StartEngine("127.0.0.1:0", be, Config{QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := "http://" + s.Addr() + "/v1/seed"

	type outcome struct {
		code int
		rep  *Report
	}
	results := make(chan outcome, 2)
	post := func() {
		code, rep, _ := postSeed(t, url, fastqBatch(3))
		results <- outcome{code, rep}
	}
	go post() // occupies the dispatcher
	select {
	case <-be.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never started seeding")
	}
	go post() // sits in the queue (depth 1)
	// The queued slot is taken asynchronously; wait until it shows up.
	deadline := time.After(10 * time.Second)
	for len(s.queue) == 0 {
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Post(url, "text/plain", bytes.NewReader(fastqBatch(3)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: code %d body %q, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	close(be.release)
	for i := 0; i < 2; i++ {
		select {
		case o := <-results:
			if o.code != http.StatusOK || o.rep == nil || o.rep.Reads != 3 {
				t.Fatalf("admitted request %d: code %d report %+v", i, o.code, o.rep)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted request never completed after release")
		}
	}
}

// TestClientDisconnectFreesSlot cancels a streaming request mid-run and
// checks the dispatcher moves on: the next request is served by the same
// engine.
func TestClientDisconnectFreesSlot(t *testing.T) {
	be := &blockingEngine{release: make(chan struct{}, 16), started: make(chan struct{}, 16)}
	s, err := StartEngine("127.0.0.1:0", be, Config{QueueDepth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := "http://" + s.Addr() + "/v1/seed"

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(fastqBatch(1)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-be.started:
	case <-time.After(10 * time.Second):
		t.Fatal("streaming request never started seeding")
	}
	cancel() // client walks away mid-shard
	<-errc
	// The claimed shard must still drain (RunCtx semantics): release it.
	be.release <- struct{}{}

	// The slot is free: an ordinary request completes.
	done := make(chan *Report, 1)
	go func() {
		_, rep, _ := postSeed(t, url, fastqBatch(1))
		done <- rep
	}()
	select {
	case <-be.started:
		be.release <- struct{}{} // one read = one shard
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up request never reached the engine: slot not freed")
	}
	select {
	case rep := <-done:
		if rep == nil || rep.Reads != 1 || rep.Interrupted {
			t.Fatalf("follow-up report wrong: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up request never completed")
	}
}

// TestRunsEndpoint checks run snapshots are addressable during and after
// a run, and unknown IDs 404.
func TestRunsEndpoint(t *testing.T) {
	ref, fq, reads := testRef(t, 1<<13, 20, 60)
	s := startTestServer(t, ref, Config{Engine: "casa"})
	base := "http://" + s.Addr()

	code, rep, _ := postSeed(t, base+"/v1/seed", fq)
	if code != http.StatusOK {
		t.Fatalf("seed: code %d", code)
	}
	resp, err := http.Get(base + "/v1/runs/" + rep.RunID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs/%s: code %d", rep.RunID, resp.StatusCode)
	}
	var snap struct {
		Schema    string `json:"schema"`
		RunID     string `json:"run_id"`
		ReadsDone int64  `json:"reads_done"`
		Done      bool   `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "casa-progress/v1" || snap.RunID != rep.RunID ||
		snap.ReadsDone != int64(len(reads)) || !snap.Done {
		t.Fatalf("terminal snapshot wrong: %+v", snap)
	}

	if resp, err := http.Get(base + "/v1/runs/deadbeef"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown run: code %d, want 404", resp.StatusCode)
		}
	}

	var runs struct {
		Runs []string `json:"runs"`
	}
	resp2, err := http.Get(base + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || runs.Runs[0] != rep.RunID {
		t.Fatalf("run inventory %v, want [%s]", runs.Runs, rep.RunID)
	}
}

// TestSeedRejections covers the request-validation surface: bad methods,
// empty and malformed bodies, oversized batches, multipart extraction.
func TestSeedRejections(t *testing.T) {
	ref, _, _ := testRef(t, 1<<12, 1, 60)
	s := startTestServer(t, ref, Config{Engine: "fmindex", MaxBodyBytes: 256})
	url := "http://" + s.Addr() + "/v1/seed"

	if resp, err := http.Get(url); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/seed: code %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
			t.Fatalf("Allow %q, want POST", allow)
		}
	}
	for name, body := range map[string][]byte{
		"empty":     nil,
		"malformed": []byte("this is not a sequence format"),
	} {
		code, _, _ := postSeed(t, url, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s body: code %d, want 400", name, code)
		}
	}
	code, _, _ := postSeed(t, url, fastqBatch(64)) // > 256 bytes
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d, want 413", code)
	}

	// Multipart upload (curl -F reads=@reads.fq).
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("reads", "reads.fq")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(fastqBatch(2))
	mw.Close()
	resp, err := http.Post(url, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge && resp.StatusCode != http.StatusOK {
		t.Fatalf("multipart: code %d", resp.StatusCode)
	}
}

// TestDrainFinishesInFlight starts a run, shuts the server down while it
// is in flight, and checks Shutdown waits for the run and the client
// still receives its full report.
func TestDrainFinishesInFlight(t *testing.T) {
	be := &blockingEngine{release: make(chan struct{}), started: make(chan struct{}, 16)}
	s, err := StartEngine("127.0.0.1:0", be, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr()

	done := make(chan *Report, 1)
	go func() {
		_, rep, _ := postSeed(t, url+"/v1/seed", fastqBatch(2))
		done <- rep
	}()
	select {
	case <-be.started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never started seeding")
	}

	shut := make(chan error, 1)
	go func() { shut <- s.Close() }()
	// Draining: readiness flips and new work is refused.
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			break // listener already closed: also an acceptable drain state
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("healthz never reported draining")
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-shut:
		t.Fatal("Shutdown returned while a run was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(be.release)
	select {
	case err := <-shut:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung after the run finished")
	}
	select {
	case rep := <-done:
		if rep == nil || rep.Reads != 2 {
			t.Fatalf("drained request report wrong: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained request never answered")
	}
}

// TestParseReadsSniffsFormats covers the FASTA/FASTQ sniffing.
func TestParseReadsSniffsFormats(t *testing.T) {
	fa := ">a\nACGT\n>b\nGGGG\n"
	recs, err := parseReads(strings.NewReader(fa))
	if err != nil || len(recs) != 2 || recs[0].Name != "a" {
		t.Fatalf("FASTA: %v, %v", recs, err)
	}
	fq := "@a\nACGT\n+\nIIII\n"
	recs, err = parseReads(strings.NewReader(fq))
	if err != nil || len(recs) != 1 || len(recs[0].Qual) != 4 {
		t.Fatalf("FASTQ: %v, %v", recs, err)
	}
	if _, err := parseReads(strings.NewReader("")); err == nil {
		t.Fatal("empty body accepted")
	}
	if _, err := parseReads(strings.NewReader("ACGT")); err == nil {
		t.Fatal("headerless body accepted")
	}
	_ = seqio.Record{}
}

// TestIncludeRejectsUnknown pins the ?include= validation: a typo'd value
// is a 400 naming the supported set, not a silently thinner report.
func TestIncludeRejectsUnknown(t *testing.T) {
	ref, fq, _ := testRef(t, 1<<12, 2, 60)
	s := startTestServer(t, ref, Config{Engine: "fmindex"})
	url := "http://" + s.Addr() + "/v1/seed"

	code, _, raw := postSeed(t, url+"?include=smem", fq)
	if code != http.StatusBadRequest {
		t.Fatalf("?include=smem: code %d, want 400", code)
	}
	if !strings.Contains(string(raw), `"smem"`) || !strings.Contains(string(raw), "smems") {
		t.Fatalf("rejection %q names neither the bad value nor the supported set", raw)
	}
	// An empty value is a harmless no-op, not an error.
	if code, _, _ := postSeed(t, url+"?include=", fq); code != http.StatusOK {
		t.Fatalf("?include=: code %d, want 200", code)
	}
}

// TestRetryAfterSeconds pins the 429 hint derivation: queue occupancy
// times the median run, ceil'd to seconds and clamped to [1, 300], with
// a 1s fallback before any run has completed.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued int
		p50us  int64
		want   int
	}{
		{0, 0, 1},               // nothing observed yet: fallback
		{5, -1, 1},              // defensive: negative estimate
		{0, 400_000, 1},         // 1 running x 0.4s rounds up to 1s
		{2, 1_500_000, 5},       // (2+1) x 1.5s = 4.5s -> 5s
		{1, 1_000_000, 2},       // exact seconds stay exact
		{7, 3_600_000_000, 300}, // clamp: hours-long estimates cap at 300s
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.p50us); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", c.queued, c.p50us, got, c.want)
		}
	}
}

// TestStatsEndpoint seeds one batch and checks GET /v1/stats reflects it:
// schema, terminal run counts, populated latency quantiles and (after the
// middleware's deferred record lands) the per-endpoint http map.
func TestStatsEndpoint(t *testing.T) {
	ref, fq, reads := testRef(t, 1<<13, 10, 60)
	s := startTestServer(t, ref, Config{Engine: "casa"})
	base := "http://" + s.Addr()

	if code, _, _ := postSeed(t, base+"/v1/seed", fq); code != http.StatusOK {
		t.Fatalf("seed: code %d", code)
	}

	getStats := func() Stats {
		t.Helper()
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/stats: code %d", resp.StatusCode)
		}
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := getStats()
	if st.Schema != StatsSchema || st.Engine != "casa" {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.RunsAccepted != 1 || st.RunsCompleted != 1 || st.RunsRejected != 0 {
		t.Fatalf("run counts wrong: %+v", st)
	}
	if st.ReadsSeeded != int64(len(reads)) {
		t.Fatalf("reads_seeded = %d, want %d", st.ReadsSeeded, len(reads))
	}
	if st.QueueCapacity != 8 || st.QueueDepth != 0 {
		t.Fatalf("queue state wrong: %+v", st)
	}
	if st.RunDuration.Count != 1 || st.RunDuration.P50us <= 0 || st.RunDuration.P99us < st.RunDuration.P50us {
		t.Fatalf("run_duration quantiles wrong: %+v", st.RunDuration)
	}
	if st.QueueWait.Count != 1 {
		t.Fatalf("queue_wait count = %d, want 1", st.QueueWait.Count)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime %f", st.UptimeSeconds)
	}
	if st.TraceSpans < 4 {
		t.Fatalf("trace_spans = %d, want the run's lifecycle chain", st.TraceSpans)
	}

	// The middleware records a request's histogram after its response is
	// written, so the seed request's entry may land a beat after the
	// client sees the report: poll for the http map.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if q, ok := getStats().HTTP["v1_seed"]; ok && q.Count >= 1 && q.P50us > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("http map never gained v1_seed: %+v", getStats().HTTP)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunTraceEndpoint checks /debug/runtrace serves a Chrome trace with
// the lifecycle span chain of a completed run, named by its run ID.
func TestRunTraceEndpoint(t *testing.T) {
	ref, fq, _ := testRef(t, 1<<13, 5, 60)
	s := startTestServer(t, ref, Config{Engine: "casa"})
	base := "http://" + s.Addr()

	code, rep, _ := postSeed(t, base+"/v1/seed", fq)
	if code != http.StatusOK {
		t.Fatalf("seed: code %d", code)
	}

	type traceDoc struct {
		Events []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat"` // lifecycle track of "X" span events
			TS    *int64 `json:"ts"`
			Dur   *int64 `json:"dur"`
		} `json:"traceEvents"`
		Other struct {
			Schema string `json:"schema"`
			Domain string `json:"domain"`
		} `json:"otherData"`
	}
	getTrace := func() traceDoc {
		t.Helper()
		resp, err := http.Get(base + "/debug/runtrace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/runtrace: code %d", resp.StatusCode)
		}
		var doc traceDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := getTrace()
	if doc.Other.Schema != trace.WallSchemaVersion || doc.Other.Domain != "wall" {
		t.Fatalf("trace header wrong: %+v", doc.Other)
	}
	tracks := map[string]bool{}
	for _, ev := range doc.Events {
		if ev.Phase != "X" || ev.Name != rep.RunID {
			continue
		}
		tracks[ev.Cat] = true
		if ev.TS == nil || ev.Dur == nil || *ev.TS < 0 || *ev.Dur < 0 {
			t.Fatalf("span on %q has bad ts/dur: %+v", ev.Cat, ev)
		}
	}
	for _, want := range []string{"received", "parsed", "queued", "running"} {
		if !tracks[want] {
			t.Fatalf("run %s has no %q span (tracks %v)", rep.RunID, want, tracks)
		}
	}
	// The reporting span is emitted after the response is written, so it
	// may trail the client's read: poll for it.
	deadline := time.Now().Add(10 * time.Second)
	for !tracks["reporting"] {
		if time.Now().After(deadline) {
			t.Fatal("reporting span never appeared")
		}
		time.Sleep(5 * time.Millisecond)
		for _, ev := range getTrace().Events {
			if ev.Phase == "X" && ev.Name == rep.RunID {
				tracks[ev.Cat] = true
			}
		}
	}
}

// TestRunWallFolding pins the per-run pool profiling: a served run's
// batch-layer shard spans are nested into the lifecycle trace (casa-serve
// process, worker label as track, run ID prefixed to the name) and feed
// the lifetime utilization stats (worker_busy_us, run_imbalance).
func TestRunWallFolding(t *testing.T) {
	ref, fq, _ := testRef(t, 1<<13, 12, 60)
	s := startTestServer(t, ref, Config{Engine: "casa", Workers: 2})
	base := "http://" + s.Addr()

	code, rep, _ := postSeed(t, base+"/v1/seed", fq)
	if code != http.StatusOK {
		t.Fatalf("seed: code %d", code)
	}

	var shardSpans, hostSpans int
	for _, sp := range s.wall.Spans() {
		if !strings.HasPrefix(sp.Name, rep.RunID+" ") {
			continue
		}
		name := strings.TrimPrefix(sp.Name, rep.RunID+" ")
		if sp.Proc != wallProc {
			t.Fatalf("folded span %+v not on the %q process", sp, wallProc)
		}
		if _, _, _, ok := trace.ParseWallShardName(name); ok {
			shardSpans++
			if _, ok := trace.ParseWallWorkerProc(sp.Track); !ok {
				t.Fatalf("shard span %+v track is not a worker label", sp)
			}
		}
		if sp.Track == trace.WallHostProc {
			hostSpans++
		}
	}
	if shardSpans == 0 {
		t.Fatal("no shard spans folded into the lifecycle trace")
	}
	if hostSpans == 0 {
		t.Fatal("no host-phase (reduce/merge) spans folded into the lifecycle trace")
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.WorkerBusyUS <= 0 {
		t.Fatalf("worker_busy_us = %d, want > 0", st.WorkerBusyUS)
	}
	if st.RunImbalance.Count != 1 {
		t.Fatalf("run_imbalance count = %d, want 1", st.RunImbalance.Count)
	}
	// Permille ratio: max/mean >= 1 by construction, so >= 1000.
	if st.RunImbalance.P50us < 1000 {
		t.Fatalf("run_imbalance p50 = %d permille, want >= 1000", st.RunImbalance.P50us)
	}
}

// TestHealthzBuildInfo checks the readiness body carries the build
// identity without breaking status-code-only consumers.
func TestHealthzBuildInfo(t *testing.T) {
	ref, _, _ := testRef(t, 1<<12, 1, 60)
	s := startTestServer(t, ref, Config{Engine: "casa"})

	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: code %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
		Engine string `json:"engine"`
		Build  struct {
			Module    string `json:"module"`
			GoVersion string `json:"go_version"`
		} `json:"build_info"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Engine != "casa" {
		t.Fatalf("healthz body %+v", body)
	}
	if body.Build.Module != "casa" || body.Build.GoVersion == "" {
		t.Fatalf("healthz build info %+v", body.Build)
	}
}
