// Package serve is the seeding front door: a long-running multi-tenant
// HTTP server that loads a reference once, builds one engine via the
// internal/engine registry, and seeds client-submitted read batches over
// the shared immutable index — the host-side counterpart of CASA's
// batch-oriented accelerator pipeline, and the serving layer the
// ROADMAP's "seeding-as-a-service" item calls for.
//
// Requests flow through a bounded FIFO queue with a concurrency cap of
// one batch.SeedEngineCtx run at a time: within a run the pool fans out
// over engine clones exactly as the CLIs do, so the modelled numbers of
// a served batch are byte-identical to an offline casa-smem run of the
// same inputs. A full queue answers 429 with Retry-After; a client
// disconnect cancels its run via RunCtx's drain semantics (claimed
// shards finish, the completed prefix stays consistent) and frees the
// slot; Shutdown stops accepting, finishes the in-flight and queued
// runs, and then stops the dispatcher — the SIGTERM drain casa-serve
// relies on.
//
// Endpoints (handler plumbing shared with internal/obshttp):
//
//	POST /v1/seed        seed a FASTA/FASTQ batch (body or multipart);
//	                     JSON casa-smem/v1 report, or — with
//	                     Accept: text/event-stream — an SSE stream of
//	                     per-shard "progress" events then one "report"
//	GET  /v1/runs        run IDs known to this process
//	GET  /v1/runs/{id}   one run's casa-progress/v1 snapshot
//	GET  /v1/stats       lifetime summary (casa-serve-stats/v1 JSON)
//	GET  /healthz        200 serving / 503 draining
//	GET  /metrics        lifetime serving + per-endpoint http metrics
//	GET  /debug/runtrace wall-clock run lifecycle trace (Chrome JSON)
//	     /debug/pprof/   the standard profiles
//
// Observability (see telemetry.go and docs/OBSERVABILITY.md): every
// request flows through obshttp.Instrument (per-endpoint counts, status
// classes, duration histograms, access logs keyed by run ID), every
// accepted run is traced through its wall-clock lifecycle
// (received→parsed→queued→running→reporting), and each finished run's
// engine registry is folded into the server registry under lifetime/.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"casa/internal/batch"
	"casa/internal/buildinfo"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/metrics"
	"casa/internal/obshttp"
	"casa/internal/progress"
	"casa/internal/trace"
)

// Config tunes the serving layer. The zero value serves the casa engine
// with library defaults.
type Config struct {
	// Engine is the registry name of the seeding engine ("" = casa).
	Engine string

	// EngineOptions are the construction knobs passed to the registry.
	// A zero MinSMEM is resolved to the engines' shared default (19) so
	// the reported min_smem matches what the engines actually did.
	EngineOptions engine.Options

	// Workers is the per-run pool size (0 = one per CPU), the same knob
	// as the CLIs' -workers.
	Workers int

	// QueueDepth bounds the requests waiting behind the running one
	// (0 = 8). A full queue answers 429 + Retry-After.
	QueueDepth int

	// MaxBodyBytes caps an uploaded read batch (0 = 64 MiB).
	MaxBodyBytes int64

	// EventInterval is the SSE heartbeat cadence between shard
	// completions (0 = 1s).
	EventInterval time.Duration

	// KeepFinished bounds the finished runs retained for GET /v1/runs
	// (0 = progress.DefaultKeepFinished).
	KeepFinished int

	// TraceSpanCapacity bounds the wall-clock lifecycle spans retained
	// for /debug/runtrace and -trace (0 = trace.DefaultWallCapacity;
	// five spans per run, oldest runs evicted first).
	TraceSpanCapacity int

	// Log receives request/lifecycle records and the access log
	// (nil = slog.Default).
	Log *slog.Logger
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Engine == "" {
		c.Engine = "casa"
	}
	if c.EngineOptions.MinSMEM == 0 {
		c.EngineOptions.MinSMEM = 19
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.EventInterval <= 0 {
		c.EventInterval = time.Second
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// job is one accepted seeding request travelling from its handler to the
// dispatcher and back.
type job struct {
	ctx     context.Context // the request context: cancelled on client disconnect
	reads   []dna.Sequence
	names   []string
	tracker *progress.Tracker
	done    chan *Report // buffered: the dispatcher never blocks on a gone handler

	// Wall-clock lifecycle milestones (telemetry.go). The handler stamps
	// the first three; the dispatcher stamps started/finished, and the
	// send on done orders them before the handler's reporting span.
	received time.Time // request entered the handler
	parsed   time.Time // batch read and parsed
	queued   time.Time // admitted into the queue
	started  time.Time // dequeued by the dispatcher
	finished time.Time // run (and report assembly) complete
}

// Server is a running seeding front door. Create with Start (registry
// name over a reference) or StartEngine (an already-built engine).
type Server struct {
	cfg   Config
	proto engine.Engine // cloned per request: counters never leak across tenants

	ln      net.Listener
	srv     *http.Server
	reg     *metrics.Registry  // lifetime serving counters, at /metrics
	runs    *progress.Registry // run ID -> tracker, at /v1/runs/{id}
	wall    *trace.WallTrace   // run lifecycle spans, at /debug/runtrace
	started time.Time          // process uptime origin for /v1/stats

	// Hot serving instruments, resolved once (Registry lookups lock).
	histQueueWait *metrics.Histogram // serve/queue/wait_us
	histRunDur    *metrics.Histogram // serve/run/duration_us
	histImbalance *metrics.Histogram // lifetime/batch/imbalance_permille
	gQueueDepth   *metrics.Gauge     // serve/queue/depth

	queue        chan *job
	quitOnce     sync.Once
	quit         chan struct{} // closed at Shutdown, after the listener drains
	dispatchDone chan struct{}
	serveDone    chan struct{}
	draining     atomic.Bool

	mu  sync.Mutex
	err error
}

// Start builds cfg.Engine over ref via the registry and serves on addr
// (host:port; port 0 picks a free port).
func Start(addr string, ref dna.Sequence, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if f, ok := engine.Lookup(cfg.Engine); ok {
		cfg.Engine = f.Name
	}
	eng, err := engine.New(cfg.Engine, ref, cfg.EngineOptions)
	if err != nil {
		return nil, err
	}
	return StartEngine(addr, eng, cfg)
}

// StartEngine serves an already-built engine on addr. proto is never
// seeded directly: every request runs on a fresh Clone, so per-request
// reports carry only their own run's counters.
func StartEngine(addr string, proto engine.Engine, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		proto:        proto,
		ln:           ln,
		reg:          metrics.New(),
		runs:         progress.NewRegistry(cfg.KeepFinished),
		wall:         trace.NewWall(cfg.TraceSpanCapacity),
		started:      time.Now(),
		queue:        make(chan *job, cfg.QueueDepth),
		quit:         make(chan struct{}),
		dispatchDone: make(chan struct{}),
		serveDone:    make(chan struct{}),
	}
	wallBounds := metrics.PowerOfTwoBounds(30)
	s.histQueueWait = s.reg.Histogram("serve/queue/wait_us", wallBounds)
	s.histRunDur = s.reg.Histogram("serve/run/duration_us", wallBounds)
	s.histImbalance = s.reg.Histogram("lifetime/batch/imbalance_permille", wallBounds)
	s.gQueueDepth = s.reg.Gauge("serve/queue/depth")

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/v1/seed", s.handleSeed)
	mux.HandleFunc("/v1/runs", s.handleRuns)
	mux.HandleFunc("/v1/runs/", s.handleRun)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", obshttp.MetricsHandler(s.reg))
	mux.HandleFunc("/debug/runtrace", s.handleRunTrace)
	obshttp.RegisterPprof(mux)

	s.srv = &http.Server{
		// Every request passes through the instrumentation middleware:
		// per-endpoint wall-clock metrics into the serving registry and
		// one access-log record per request, run-ID-correlated.
		Handler: obshttp.Instrument(mux, s.reg, cfg.Log),
		// A seed request legitimately waits behind the queue for minutes,
		// so there is no fixed write budget; slowloris protection comes
		// from the header/read timeouts, and queue admission bounds how
		// many such long-lived requests exist.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       time.Minute,
	}
	go func() {
		defer close(s.serveDone)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	go s.dispatch()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Runs returns the run registry (snapshots of live and recent runs).
func (s *Server) Runs() *progress.Registry { return s.runs }

// dispatch is the serving loop: one queued run at a time, in FIFO order.
// After quit (the listener has drained, so no handler can enqueue) it
// flushes whatever is left — jobs whose clients disconnected while
// queued — and exits.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for {
		select {
		case j := <-s.queue:
			s.gQueueDepth.Set(float64(len(s.queue)))
			s.runJob(j)
		case <-s.quit:
			for {
				select {
				case j := <-s.queue:
					s.gQueueDepth.Set(float64(len(s.queue)))
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// runJob seeds one request's batch on a fresh engine clone. Cancelled
// jobs (client gone while queued) finish their tracker and report the
// empty prefix without touching the engine.
func (s *Server) runJob(j *job) {
	j.started = time.Now()
	rep := &Report{
		Schema:  ReportSchema,
		RunID:   j.tracker.RunID(),
		Engine:  s.proto.Name(),
		MinSMEM: s.cfg.EngineOptions.MinSMEM,
		Workers: j.tracker.Workers(),
	}
	if err := j.ctx.Err(); err != nil {
		j.tracker.Finish()
		rep.Interrupted = true
		rep.Metrics = metrics.New()
		j.finished = j.started // never ran: a zero-length running span
		s.reg.Counter("serve/runs/cancelled").Add(1)
		s.recordLifecycle(j)
		j.done <- rep
		return
	}
	eng := s.proto.Clone()
	reg := metrics.New()
	// Each run records its pool's wall spans into a private recorder —
	// sized to the run, so a huge batch cannot evict other runs' lifecycle
	// spans — then foldRunWall nests them under this run's lifecycle trace
	// and feeds the lifetime worker-utilization instruments.
	runWall := trace.NewWall(0)
	pool := batch.Options{
		Workers:  s.cfg.Workers,
		Metrics:  reg,
		Progress: j.tracker,
		Wall:     runWall,
	}
	res, done, err := batch.SeedEngineCtx(j.ctx, eng, j.reads, pool)
	j.tracker.Finish()
	smems := eng.SMEMs(res)
	total := 0
	for _, ms := range smems[:done] {
		total += len(ms)
	}
	rep.Reads = done
	rep.SMEMs = total
	rep.Interrupted = err != nil
	rep.Metrics = reg
	if j.names != nil {
		rep.Results = make([]ReadSMEMs, done)
		for i := 0; i < done; i++ {
			rep.Results[i] = ReadSMEMs{Name: j.names[i], SMEMs: toSMEMs(smems[i])}
		}
	}
	j.finished = time.Now()
	s.reg.Counter("serve/reads/seeded").Add(int64(done))
	s.reg.Counter("serve/runs/completed").Add(1)
	if err != nil {
		s.reg.Counter("serve/runs/cancelled").Add(1)
	}
	// Fold this run's engine registry into the server's lifetime
	// aggregate. The per-request registry the report carries is untouched
	// — reports stay byte-identical to offline runs — while /metrics
	// accumulates lifetime/casa/reads/seeded and friends across runs.
	if skipped := s.reg.MergePrefixed(reg, "lifetime"); skipped > 0 {
		s.reg.Counter("serve/lifetime/skipped_names").Add(int64(skipped))
	}
	s.foldRunWall(rep.RunID, runWall)
	s.recordLifecycle(j)
	s.cfg.Log.Info("run finished", "run_id", rep.RunID, "reads", done, "smems", total, "interrupted", rep.Interrupted,
		"queue_wait_us", maxZero(j.started.Sub(j.queued).Microseconds()),
		"run_us", j.finished.Sub(j.started).Microseconds())
	j.done <- rep
}

// handleSeed admits one read batch into the queue and answers with the
// run's report — as one JSON document, or as an SSE stream of per-shard
// progress events followed by the final "report" event when the client
// asks for text/event-stream.
func (s *Server) handleSeed(w http.ResponseWriter, r *http.Request) {
	received := time.Now()
	if !obshttp.RequireMethod(w, r, http.MethodPost) {
		return
	}
	if s.draining.Load() {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	wantResults, err := parseInclude(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	recs, err := readBatch(r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("read batch exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(recs) == 0 {
		http.Error(w, "read batch holds no records", http.StatusBadRequest)
		return
	}
	reads := make([]dna.Sequence, len(recs))
	var names []string
	if wantResults {
		names = make([]string, len(recs))
	}
	for i, rec := range recs {
		reads[i] = rec.Seq
		if names != nil {
			names[i] = rec.Name
		}
	}

	runID := progress.NewRunID()
	workers := batch.Options{Workers: s.cfg.Workers}.WorkerCount()
	tracker := progress.New(runID, s.proto.Name(), workers, int64(len(reads)))
	j := &job{
		ctx: r.Context(), reads: reads, names: names, tracker: tracker,
		done:     make(chan *Report, 1),
		received: received, parsed: time.Now(),
	}
	j.queued = time.Now()
	select {
	case s.queue <- j:
		s.gQueueDepth.Set(float64(len(s.queue)))
	default:
		s.reg.Counter("serve/runs/rejected").Add(1)
		// The hint extrapolates from observed run durations: everything
		// ahead of a retrying client (the queue plus the running request)
		// times the median run, clamped. Before any run completes there
		// is nothing to extrapolate from and the hint is 1s.
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(len(s.queue), s.histRunDur.Quantile(0.5))))
		http.Error(w, "seed queue is full, retry later", http.StatusTooManyRequests)
		return
	}
	s.reg.Counter("serve/runs/accepted").Add(1)
	if err := s.runs.Add(tracker); err != nil {
		// Run IDs are 64-bit random; a collision is effectively a broken
		// RNG. The run still executes, it is just not addressable.
		s.cfg.Log.Warn("run not registered", "run_id", runID, "err", err)
	}
	s.cfg.Log.Info("run accepted", "run_id", runID, "reads", len(reads), "queued", len(s.queue))
	w.Header().Set("X-Casa-Run", runID)

	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamSeed(w, r, j)
		return
	}
	select {
	case rep := <-j.done:
		obshttp.WriteJSON(w, rep)
		s.recordReporting(j, time.Now())
	case <-r.Context().Done():
		// Client gone: the dispatcher observes the cancelled context —
		// mid-run it drains the claimed shards, queued it skips the job —
		// and the buffered done channel absorbs the report.
	}
}

// streamSeed answers one admitted job as an SSE stream: an immediate
// snapshot, one "progress" event per completed shard (coalesced under
// load) with heartbeats in between, and the terminal "report" event.
func (s *Server) streamSeed(w http.ResponseWriter, r *http.Request, j *job) {
	es, err := obshttp.NewEventStream(w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.reg.Counter("serve/sse/streams").Add(1)
	active := s.reg.Gauge("serve/sse/active")
	active.Add(1)
	defer active.Add(-1)
	if err := es.Emit("progress", j.tracker.Snapshot()); err != nil {
		return
	}
	heartbeat := time.NewTicker(s.cfg.EventInterval)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case rep := <-j.done:
			_ = es.Emit("report", rep)
			s.recordReporting(j, time.Now())
			return
		case <-j.tracker.Updates():
			if err := es.Emit("progress", j.tracker.Snapshot()); err != nil {
				return
			}
		case <-heartbeat.C:
			if err := es.Emit("progress", j.tracker.Snapshot()); err != nil {
				return
			}
		}
	}
}

// parseInclude reports whether the client asked for per-read SMEM sets
// in the report (?include=smems). Unknown values are an error: silently
// ignoring a typo ("smem") would hand back a report without the results
// the client asked for, which reads like an empty run.
func parseInclude(r *http.Request) (smems bool, err error) {
	for _, v := range r.URL.Query()["include"] {
		switch v {
		case "smems":
			smems = true
		case "":
			// ?include= with no value: a harmless no-op.
		default:
			return false, fmt.Errorf("unknown include value %q (supported: smems)", v)
		}
	}
	return smems, nil
}

// handleRuns lists the run IDs known to this process.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	obshttp.WriteJSON(w, struct {
		Runs []string `json:"runs"`
	}{Runs: s.runs.IDs()})
}

// handleRun serves one run's casa-progress/v1 snapshot — live runs keep
// updating, finished runs answer their terminal snapshot until evicted.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	t, ok := s.runs.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown run %q", id), http.StatusNotFound)
		return
	}
	obshttp.WriteJSON(w, t.Snapshot())
}

// handleHealthz distinguishes a serving process from a draining one, the
// readiness signal load balancers and the smoke test key on. The body
// carries the build identity so "which build is this replica running?"
// is one curl, not a deploy-log archaeology session; status-code-only
// consumers are unaffected.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	obshttp.WriteJSON(w, struct {
		Status string         `json:"status"`
		Engine string         `json:"engine"`
		Build  buildinfo.Info `json:"build_info"`
	}{Status: "ok", Engine: s.proto.Name(), Build: buildinfo.Current()})
}

// handleIndex lists the serving surface.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if !obshttp.RequireMethod(w, r, http.MethodGet) {
		return
	}
	fmt.Fprintf(w, "casa-serve (%s engine):\n  POST /v1/seed\n  GET  /v1/runs\n  GET  /v1/runs/{id}\n  GET  /v1/stats\n  GET  /healthz\n  GET  /metrics\n  GET  /debug/runtrace\n       /debug/pprof/\n",
		s.proto.Name())
}

// WriteRunTrace writes the wall-clock run lifecycle trace as Chrome
// trace_event JSON (casa-walltrace/v1) — the document /debug/runtrace
// serves, and what casa-serve's -trace flag writes at shutdown.
func (s *Server) WriteRunTrace(w io.Writer) error {
	return trace.WriteChromeWall(w, s.wall.Spans(), s.wall.Dropped())
}

// TraceStats reports the lifecycle trace ring's occupancy: the spans
// currently retained and how many the ring has evicted so far — the
// numbers /v1/stats serves as trace_spans/trace_dropped, exposed here for
// casa-serve's shutdown log.
func (s *Server) TraceStats() (spans int, dropped int64) {
	return s.wall.Len(), s.wall.Dropped()
}

// Metrics returns the process-level serving registry (for a final flush
// at shutdown).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Shutdown drains gracefully: stop accepting (new seeds answer 503
// while existing connections settle, then the listener closes), wait for
// every in-flight and queued run to finish and its handler to answer,
// then stop the dispatcher. It returns the first background serve error,
// if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.srv.Shutdown(ctx)
	// The listener has drained (or ctx expired): no handler can enqueue
	// anymore, so the dispatcher can flush and exit.
	s.quitOnce.Do(func() { close(s.quit) })
	<-s.dispatchDone
	<-s.serveDone
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// Close is Shutdown with a 30-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
