package serve

import (
	"bufio"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"

	"casa/internal/seqio"
)

// readBatch extracts the request's read batch: the raw body, or — for
// multipart/form-data uploads (curl -F reads=@reads.fq) — the first
// "reads" part (falling back to the first file part of any name). The
// payload itself is sniffed: '>' opens FASTA, '@' opens FASTQ, matching
// how the formats are distinguished in the wild.
func readBatch(r *http.Request) ([]seqio.Record, error) {
	body := io.Reader(r.Body)
	ct, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err == nil && ct == "multipart/form-data" {
		part, err := readsPart(multipart.NewReader(r.Body, params["boundary"]))
		if err != nil {
			return nil, err
		}
		body = part
	}
	return parseReads(body)
}

// readsPart returns the multipart part holding the reads.
func readsPart(mr *multipart.Reader) (*multipart.Part, error) {
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, fmt.Errorf("multipart body has no \"reads\" part")
		}
		if err != nil {
			return nil, err
		}
		if part.FormName() == "reads" || part.FileName() != "" {
			return part, nil
		}
	}
}

// parseReads sniffs the format from the first byte and parses the batch.
func parseReads(r io.Reader) ([]seqio.Record, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	first, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("empty read batch")
	}
	if err := br.UnreadByte(); err != nil {
		return nil, err
	}
	switch first {
	case '>':
		return seqio.ReadFasta(br)
	case '@':
		return seqio.ReadFastq(br)
	default:
		return nil, fmt.Errorf("read batch is neither FASTA ('>') nor FASTQ ('@'): starts with %q", first)
	}
}
