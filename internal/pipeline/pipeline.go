// Package pipeline models the end-to-end genome-analysis pipeline of §7.3
// (Fig 14): I/O, seeding, preprocessing of seed extension (chaining, seed
// packaging), seed extension, and postprocessing, for the four compared
// systems — BWA-MEM2, CASA+SeedEx, ERT+SeedEx, and GenAx+SeedEx.
//
// Seeding times come from running the actual engine models; extension
// comes from running the real SeedEx machines on the seeds CASA produced
// (all engines emit identical SMEM sets, so the extension workload is
// shared). The systems differ structurally exactly as the paper explains:
// CASA and GenAx hold the reference on-chip, so seeding and extension run
// in parallel and seed preprocessing is negligible, while ERT "needs the
// CPU to perform the extra process on seeds and reference, such as
// chaining and packaging reads".
package pipeline

import (
	"fmt"
	"math"

	"casa/internal/core"
	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/seedex"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Config sets the pipeline cost model around the engines.
type Config struct {
	DiskGBs          float64 // FASTQ in / SAM out streaming bandwidth
	FastqBytesPerBP  float64 // FASTQ bytes per base (sequence+quality+headers)
	SamBytesPerRead  float64 // SAM record bytes per read
	ChainPerSeedNS   float64 // CPU chaining/packaging per seed (ERT preprocessing)
	PostPerReadNS    float64 // CPU postprocessing per read (SAM fields, MAPQ)
	CPUGigaCellsPerS float64 // software banded-SW throughput for the BWA bar
	MaxHitsPerSMEM   int     // extension candidates resolved per SMEM

	// Seeding-time multipliers projecting the partitioned accelerators to
	// the paper's pass counts (see experiments.Scale.PaperProjection);
	// 0 means 1.0.
	CASASeedingScale  float64
	GenAxSeedingScale float64
}

// DefaultConfig returns the model defaults.
func DefaultConfig() Config {
	return Config{
		DiskGBs:          2.0,
		FastqBytesPerBP:  2.5,
		SamBytesPerRead:  350,
		ChainPerSeedNS:   400,
		PostPerReadNS:    500,
		CPUGigaCellsPerS: 20,
		MaxHitsPerSMEM:   4,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.DiskGBs <= 0 || c.FastqBytesPerBP <= 0 || c.SamBytesPerRead <= 0 ||
		c.ChainPerSeedNS < 0 || c.PostPerReadNS < 0 || c.CPUGigaCellsPerS <= 0 ||
		c.MaxHitsPerSMEM <= 0 {
		return fmt.Errorf("pipeline: invalid config %+v", c)
	}
	return nil
}

// Breakdown is one system's stacked running time (Fig 14's components).
type Breakdown struct {
	System         string
	IO             float64 // input reading, SAM encoding/decoding
	Seeding        float64 // seeding alone (serial systems)
	PreProcessing  float64 // suffix-array lookup, chaining, packaging
	Extension      float64 // seed extension alone (serial systems)
	Overlapped     float64 // seeding + extension running in parallel
	PostProcessing float64
}

// Total returns the stacked wall time.
func (b Breakdown) Total() float64 {
	return b.IO + b.Seeding + b.PreProcessing + b.Extension + b.Overlapped + b.PostProcessing
}

// Normalize scales every component by 1/t.
func (b Breakdown) Normalize(t float64) Breakdown {
	if t <= 0 {
		return b
	}
	b.IO /= t
	b.Seeding /= t
	b.PreProcessing /= t
	b.Extension /= t
	b.Overlapped /= t
	b.PostProcessing /= t
	return b
}

// Engines bundles pre-built engines so a comparison reuses indexes.
type Engines struct {
	CASA   *core.Accelerator
	ERT    *ert.Accelerator
	GenAx  *genax.Accelerator
	BWA    *cpu.Seeder
	SeedEx *seedex.Machine
}

// BuildEngines constructs all engines over one reference through the
// registry factories (the native configs pass verbatim via
// engine.Options.Config).
func BuildEngines(ref dna.Sequence, casaCfg core.Config, ertCfg ert.AccelConfig,
	genaxCfg genax.Config, cpuCfg cpu.Config, sxCfg seedex.Config) (*Engines, error) {
	ca, err := engine.Build[*core.Accelerator]("casa", ref, engine.Options{Config: casaCfg})
	if err != nil {
		return nil, fmt.Errorf("pipeline: casa: %w", err)
	}
	ea, err := engine.Build[*ert.Accelerator]("ert", ref, engine.Options{Config: ertCfg})
	if err != nil {
		return nil, fmt.Errorf("pipeline: ert: %w", err)
	}
	ga, err := engine.Build[*genax.Accelerator]("genax", ref, engine.Options{Config: genaxCfg})
	if err != nil {
		return nil, fmt.Errorf("pipeline: genax: %w", err)
	}
	ba, err := engine.Build[*cpu.Seeder]("cpu", ref, engine.Options{Config: cpuCfg})
	if err != nil {
		return nil, fmt.Errorf("pipeline: cpu: %w", err)
	}
	sx, err := seedex.New(ref, sxCfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: seedex: %w", err)
	}
	return &Engines{CASA: ca, ERT: ea, GenAx: ga, BWA: ba, SeedEx: sx}, nil
}

// Result is the full Fig 14 comparison: one breakdown per system plus the
// extension workload shared between them.
type Result struct {
	Breakdowns []Breakdown // BWA-MEM2, CASA+SeedEx, ERT+SeedEx, GenAx+SeedEx
	Alignments []seedex.Alignment
	Aligned    int // reads with a successful extension
	TotalSeeds int64
}

// Run executes the end-to-end comparison for a read batch.
func Run(e *Engines, reads []dna.Sequence, cfg Config) (*Result, error) {
	return RunTrace(e, reads, cfg, nil)
}

// RunTrace is Run with system-timeline tracing: when tr is non-nil, each
// compared system gets one trace process ("pipeline:<system>") holding the
// Fig 14 stage waterfall as system spans in modelled-wall nanoseconds —
// tracks io, seeding, chaining, extension and postprocess. For the
// overlapped systems (CASA, GenAx) the seeding and extension spans start
// together and run in parallel, so the §7.3 overlap is directly visible
// on the Perfetto timeline; the serial systems stack every stage.
func RunTrace(e *Engines, reads []dna.Sequence, cfg Config, tr *trace.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Seeding on every engine.
	casaRes := e.CASA.SeedReads(reads)
	ertRes := e.ERT.SeedReads(reads)
	genaxRes := e.GenAx.SeedReads(reads)
	bwaRes := e.BWA.SeedReads(reads)
	casaSeed := casaRes.Seconds * scaleOr1(cfg.CASASeedingScale)
	genaxSeed := genaxRes.Seconds * scaleOr1(cfg.GenAxSeedingScale)

	// Shared extension workload: SeedEx on the better strand per read.
	sxBefore := e.SeedEx.Stats
	for i, read := range reads {
		al, ok := extendBestStrand(e, read, casaRes.Reads[i], cfg.MaxHitsPerSMEM)
		if ok {
			res.Alignments = append(res.Alignments, al)
			res.Aligned++
		}
	}
	sxStats := diffSeedexStats(e.SeedEx.Stats, sxBefore)
	extSeconds := seedexSeconds(e.SeedEx, sxStats)
	for i := range casaRes.Reads {
		res.TotalSeeds += int64(len(casaRes.Reads[i].Forward) + len(casaRes.Reads[i].Reverse))
	}

	// Common IO model.
	var bases int64
	for _, r := range reads {
		bases += int64(len(r))
	}
	ioSeconds := (float64(bases)*cfg.FastqBytesPerBP + float64(len(reads))*cfg.SamBytesPerRead) /
		(cfg.DiskGBs * 1e9)
	post := float64(len(reads)) * cfg.PostPerReadNS * 1e-9
	chain := float64(res.TotalSeeds) * cfg.ChainPerSeedNS * 1e-9

	// BWA-MEM2: everything serial on the CPU, software extension.
	swCells := float64(sxStats.BSWCycles) * float64(2*e.SeedEx.Config().Band+1)
	bwaExt := swCells / (cfg.CPUGigaCellsPerS * 1e9)
	res.Breakdowns = append(res.Breakdowns, Breakdown{
		System:         "BWA-MEM2",
		IO:             ioSeconds,
		Seeding:        bwaRes.Seconds,
		PreProcessing:  chain,
		Extension:      bwaExt,
		PostProcessing: post,
	})

	// CASA+SeedEx: on-chip reference lets seeding and extension overlap;
	// preprocessing is negligible ("SMEMs generated by CASA and GenAx can
	// be directly used in SeedEx").
	res.Breakdowns = append(res.Breakdowns, Breakdown{
		System:         "CASA+SeedEx",
		IO:             ioSeconds,
		Overlapped:     maxF(casaSeed, extSeconds),
		PostProcessing: post,
	})

	// ERT+SeedEx: no on-chip reference, so the CPU chains and packages
	// seeds between seeding and extension; the stages serialize.
	res.Breakdowns = append(res.Breakdowns, Breakdown{
		System:         "ERT+SeedEx",
		IO:             ioSeconds,
		Seeding:        ertRes.Seconds,
		PreProcessing:  chain,
		Extension:      extSeconds,
		PostProcessing: post,
	})

	// GenAx+SeedEx: overlapped like CASA, but slower seeding.
	res.Breakdowns = append(res.Breakdowns, Breakdown{
		System:         "GenAx+SeedEx",
		IO:             ioSeconds,
		Overlapped:     maxF(genaxSeed, extSeconds),
		PostProcessing: post,
	})

	if tr != nil {
		emitSerial(tr, "BWA-MEM2", ioSeconds, bwaRes.Seconds, chain, bwaExt, post)
		emitOverlapped(tr, "CASA+SeedEx", ioSeconds, casaSeed, extSeconds, post)
		emitSerial(tr, "ERT+SeedEx", ioSeconds, ertRes.Seconds, chain, extSeconds, post)
		emitOverlapped(tr, "GenAx+SeedEx", ioSeconds, genaxSeed, extSeconds, post)
	}
	return res, nil
}

// ns converts modelled seconds to the trace's nanosecond unit.
func ns(seconds float64) int64 { return int64(math.Round(seconds * 1e9)) }

// emitSerial records a serial system's stage waterfall: every stage ends
// before the next begins.
func emitSerial(tr *trace.Trace, system string, io, seed, chain, ext, post float64) {
	tb := tr.NewBuffer("pipeline:" + system)
	var cursor int64
	for _, stage := range []struct {
		track   string
		seconds float64
	}{
		{"io", io}, {"seeding", seed}, {"chaining", chain},
		{"extension", ext}, {"postprocess", post},
	} {
		tb.EmitSystem(stage.track, stage.track, cursor, ns(stage.seconds))
		cursor += ns(stage.seconds)
	}
}

// emitOverlapped records an overlapped system's waterfall: seeding and
// extension start together after IO (the on-chip reference lets them run
// in parallel), and postprocessing follows the longer of the two.
func emitOverlapped(tr *trace.Trace, system string, io, seed, ext, post float64) {
	tb := tr.NewBuffer("pipeline:" + system)
	tb.EmitSystem("io", "io", 0, ns(io))
	cursor := ns(io)
	tb.EmitSystem("seeding", "seeding", cursor, ns(seed))
	tb.EmitSystem("extension", "extension", cursor, ns(ext))
	cursor += ns(maxF(seed, ext))
	tb.EmitSystem("postprocess", "postprocess", cursor, ns(post))
}

func scaleOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// extendBestStrand resolves seed positions for both strands and extends
// whichever aligns better.
func extendBestStrand(e *Engines, read dna.Sequence, rr core.ReadResult, maxHits int) (seedex.Alignment, bool) {
	fwdSeeds := resolveSeeds(e.CASA, read, rr.Forward, maxHits)
	rc := read.ReverseComplement()
	revSeeds := resolveSeeds(e.CASA, rc, rr.Reverse, maxHits)

	bestOK := false
	var best seedex.Alignment
	if al, ok := e.SeedEx.ExtendRead(read, fwdSeeds); ok {
		best, bestOK = al, true
	}
	if al, ok := e.SeedEx.ExtendRead(rc, revSeeds); ok && (!bestOK || al.Score > best.Score) {
		best, bestOK = al, true
	}
	return best, bestOK
}

// resolveSeeds converts SMEMs into positioned SeedEx seeds.
func resolveSeeds(ca *core.Accelerator, read dna.Sequence, smems []smem.Match, maxHits int) []seedex.Seed {
	var seeds []seedex.Seed
	for _, m := range smems {
		for _, pos := range ca.HitPositions(read, m, maxHits) {
			seeds = append(seeds, seedex.Seed{QStart: m.Start, QEnd: m.End, RefPos: pos})
		}
	}
	return seeds
}

func diffSeedexStats(after, before seedex.Stats) seedex.Stats {
	return seedex.Stats{
		Reads:      after.Reads - before.Reads,
		Extensions: after.Extensions - before.Extensions,
		BSWCycles:  after.BSWCycles - before.BSWCycles,
		EditRuns:   after.EditRuns - before.EditRuns,
		EditCycles: after.EditCycles - before.EditCycles,
	}
}

// seedexSeconds applies the SeedEx timing model to a stats delta.
func seedexSeconds(m *seedex.Machine, s seedex.Stats) float64 {
	cfg := m.Config()
	bsw := float64(s.BSWCycles) / (float64(cfg.Machines*cfg.BSWCores) * cfg.ClockHz)
	edit := float64(s.EditCycles) / (float64(cfg.Machines*cfg.EditMachines) * cfg.ClockHz)
	return maxF(bsw, edit)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
