package pipeline

import (
	"testing"

	"casa/internal/core"
	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/readsim"
	"casa/internal/seedex"
)

// testEngines builds small-geometry engines over a shared reference.
func testEngines(t *testing.T, refLen int, seed int64) (*Engines, dna.Sequence) {
	t.Helper()
	ref := readsim.GenerateReference(readsim.DefaultGenome(refLen, seed))

	casaCfg := core.DefaultConfig()
	casaCfg.K, casaCfg.M, casaCfg.MinSMEM = 13, 7, 19
	casaCfg.PartitionBases = 1 << 16

	ertCfg := ert.DefaultAccelConfig()
	ertCfg.Index = ert.Config{K: 13, MinSMEM: 19, MaxDepth: 128}

	genaxCfg := genax.DefaultConfig()
	genaxCfg.K = 9
	genaxCfg.PartitionBases = 1 << 16

	e, err := BuildEngines(ref, casaCfg, ertCfg, genaxCfg, cpu.B12T(), seedex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, ref
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.DiskGBs = 0
	if bad.Validate() == nil {
		t.Error("zero disk bandwidth accepted")
	}
}

func TestBreakdownTotalAndNormalize(t *testing.T) {
	b := Breakdown{IO: 1, Seeding: 2, PreProcessing: 3, Extension: 4, Overlapped: 5, PostProcessing: 6}
	if b.Total() != 21 {
		t.Errorf("Total = %f", b.Total())
	}
	n := b.Normalize(21)
	if got := n.Total(); got < 0.999 || got > 1.001 {
		t.Errorf("normalized total = %f", got)
	}
	if same := b.Normalize(0); same != b {
		t.Error("Normalize(0) must be a no-op")
	}
}

func TestRunEndToEnd(t *testing.T) {
	e, ref := testEngines(t, 120000, 1)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(40, 7)))
	res, err := Run(e, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdowns) != 4 {
		t.Fatalf("got %d breakdowns, want 4", len(res.Breakdowns))
	}
	names := map[string]bool{}
	for _, b := range res.Breakdowns {
		names[b.System] = true
		if b.Total() <= 0 {
			t.Errorf("%s: zero total time", b.System)
		}
	}
	for _, want := range []string{"BWA-MEM2", "CASA+SeedEx", "ERT+SeedEx", "GenAx+SeedEx"} {
		if !names[want] {
			t.Errorf("system %q missing", want)
		}
	}
	// Most simulated reads must align.
	if res.Aligned < len(reads)*8/10 {
		t.Errorf("only %d/%d reads aligned", res.Aligned, len(reads))
	}
	if res.TotalSeeds <= 0 {
		t.Error("no seeds counted")
	}
}

func TestRunOrderingMatchesFig14(t *testing.T) {
	// The paper's ordering: CASA+SeedEx fastest, then GenAx+SeedEx, then
	// ERT+SeedEx, then BWA-MEM2 (CASA 1.4x GenAx, 2.4x ERT, 6x BWA).
	e, ref := testEngines(t, 200000, 2)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(60, 11)))
	res, err := Run(e, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, b := range res.Breakdowns {
		byName[b.System] = b.Total()
	}
	if !(byName["CASA+SeedEx"] <= byName["GenAx+SeedEx"]) {
		t.Errorf("CASA (%.2e) slower than GenAx (%.2e)", byName["CASA+SeedEx"], byName["GenAx+SeedEx"])
	}
	if !(byName["CASA+SeedEx"] < byName["BWA-MEM2"]) {
		t.Errorf("CASA (%.2e) not faster than BWA (%.2e)", byName["CASA+SeedEx"], byName["BWA-MEM2"])
	}
	if !(byName["ERT+SeedEx"] < byName["BWA-MEM2"]) {
		t.Errorf("ERT (%.2e) not faster than BWA (%.2e)", byName["ERT+SeedEx"], byName["BWA-MEM2"])
	}
}

func TestRunStructuralClaims(t *testing.T) {
	e, ref := testEngines(t, 120000, 3)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(30, 13)))
	res, err := Run(e, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Breakdowns {
		switch b.System {
		case "CASA+SeedEx", "GenAx+SeedEx":
			if b.Overlapped <= 0 {
				t.Errorf("%s: no overlapped seeding+extension", b.System)
			}
			if b.Seeding != 0 || b.Extension != 0 || b.PreProcessing != 0 {
				t.Errorf("%s: serial components must be zero: %+v", b.System, b)
			}
		case "ERT+SeedEx":
			if b.Overlapped != 0 {
				t.Errorf("ERT must not overlap: %+v", b)
			}
			if b.PreProcessing <= 0 {
				t.Errorf("ERT needs CPU preprocessing: %+v", b)
			}
		case "BWA-MEM2":
			if b.Seeding <= 0 || b.Extension <= 0 {
				t.Errorf("BWA components missing: %+v", b)
			}
		}
	}
}

func TestAlignmentsLandAtOrigin(t *testing.T) {
	// End-to-end correctness: exact simulated reads must align back to
	// their sampled origin.
	e, ref := testEngines(t, 100000, 4)
	sim := readsim.Simulate(ref, readsim.ReadProfile{Length: 101, Count: 30, Seed: 17})
	reads := readsim.Sequences(sim)
	res, err := Run(e, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Aligned < 25 {
		t.Fatalf("only %d/30 exact reads aligned", res.Aligned)
	}
	// Map alignments back: exact reads must either land at their origin
	// or at an equally perfect copy elsewhere (repeat arrays make exact
	// reads genuinely multi-mapping; edit distance 0 proves the placement
	// is as good as the origin).
	for i := range reads {
		al, ok := extendBestStrand(e, reads[i], e.CASA.SeedReads(reads[i : i+1]).Reads[0], 4)
		if !ok {
			continue
		}
		if sim[i].Errors == 0 && al.RefStart != sim[i].Origin && al.EditDist != 0 {
			t.Errorf("read %d aligned at %d (edit %d), simulated origin %d",
				i, al.RefStart, al.EditDist, sim[i].Origin)
		}
	}
}

func TestBuildEnginesErrors(t *testing.T) {
	bad := core.DefaultConfig()
	bad.K = 0
	_, err := BuildEngines(dna.FromString("ACGT"), bad, ert.DefaultAccelConfig(),
		genax.DefaultConfig(), cpu.B12T(), seedex.DefaultConfig())
	if err == nil {
		t.Error("invalid CASA config accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	e, ref := testEngines(t, 50000, 5)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(5, 19)))
	bad := DefaultConfig()
	bad.MaxHitsPerSMEM = 0
	if _, err := Run(e, reads, bad); err == nil {
		t.Error("invalid pipeline config accepted")
	}
}
