package pipeline

import (
	"testing"

	"casa/internal/readsim"
	"casa/internal/trace"
)

// TestRunTraceTimeline checks the Fig 14 system timelines: every system
// gets a valid stage waterfall, serial systems stack their stages, and the
// overlapped systems start seeding and extension together.
func TestRunTraceTimeline(t *testing.T) {
	e, ref := testEngines(t, 1<<16, 5)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(40, 6)))

	tr := trace.New(trace.PolicyAll, 0)
	res, err := RunTrace(e, reads, DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if err := trace.Validate(spans); err != nil {
		t.Fatal(err)
	}

	bySystem := map[string]map[string]trace.Span{}
	for _, s := range spans {
		if s.Read != trace.SystemRead {
			t.Fatalf("pipeline span %+v is not a system span", s)
		}
		if bySystem[s.Proc] == nil {
			bySystem[s.Proc] = map[string]trace.Span{}
		}
		bySystem[s.Proc][s.Track] = s
	}
	for _, b := range res.Breakdowns {
		proc := "pipeline:" + b.System
		stages := bySystem[proc]
		if stages == nil {
			t.Fatalf("no timeline for %s", proc)
		}
		if _, ok := stages["io"]; !ok {
			t.Fatalf("%s: no io span", proc)
		}
	}

	// Serial systems: every stage starts where the previous ended.
	for _, sys := range []string{"BWA-MEM2", "ERT+SeedEx"} {
		stages := bySystem["pipeline:"+sys]
		var cursor int64
		for _, track := range []string{"io", "seeding", "chaining", "extension", "postprocess"} {
			s, ok := stages[track]
			if !ok {
				t.Fatalf("%s: missing %s span", sys, track)
			}
			if s.Start != cursor {
				t.Errorf("%s/%s starts at %d, want %d", sys, track, s.Start, cursor)
			}
			cursor = s.End()
		}
	}

	// Overlapped systems: seeding and extension share a start after io,
	// and postprocess begins at the longer one's end.
	for _, sys := range []string{"CASA+SeedEx", "GenAx+SeedEx"} {
		stages := bySystem["pipeline:"+sys]
		io, seed, ext, post := stages["io"], stages["seeding"], stages["extension"], stages["postprocess"]
		if seed.Start != io.End() || ext.Start != io.End() {
			t.Errorf("%s: seeding (%d) and extension (%d) must both start at io end (%d)",
				sys, seed.Start, ext.Start, io.End())
		}
		longer := seed.End()
		if ext.End() > longer {
			longer = ext.End()
		}
		if post.Start != longer {
			t.Errorf("%s: postprocess starts at %d, want %d", sys, post.Start, longer)
		}
	}

	// Run must be exactly RunTrace with no trace attached.
	res2, err := Run(e, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Breakdowns) != len(res.Breakdowns) {
		t.Fatalf("Run and RunTrace disagree on breakdown count")
	}
}
