package core

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
)

func randCosts(rng *rand.Rand, n int, filterMax, computeMax int64, discardP float64) []ReadCost {
	costs := make([]ReadCost, n)
	for i := range costs {
		costs[i] = ReadCost{
			FilterCycles:  1 + rng.Int63n(filterMax),
			ComputeCycles: 1 + rng.Int63n(computeMax),
			Discarded:     rng.Float64() < discardP,
		}
	}
	return costs
}

func TestEventSimNeverBeatsClosedForm(t *testing.T) {
	// The closed form assumes perfect phase decoupling, so it is a lower
	// bound on the event-simulated makespan.
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for trial := 0; trial < 100; trial++ {
		costs := randCosts(rng, 1+rng.Intn(300), 10, 200, rng.Float64())
		got := SimulatePartitionPass(costs, cfg)
		lb := ClosedFormCycles(costs, cfg)
		if got.Cycles < lb {
			t.Fatalf("trial %d: event sim %d below closed form %d", trial, got.Cycles, lb)
		}
	}
}

func TestEventSimFilterBoundMatchesClosedForm(t *testing.T) {
	// When the filter dominates (heavy lookups, light compute), the FIFO
	// never backs up and the makespan is the filter total plus at most
	// the final read's compute tail.
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	costs := randCosts(rng, 500, 50, 3, 0)
	got := SimulatePartitionPass(costs, cfg)
	lb := ClosedFormCycles(costs, cfg)
	if got.FilterStall != 0 {
		t.Errorf("filter-bound pass stalled %d cycles", got.FilterStall)
	}
	if got.Cycles > lb+3 {
		t.Errorf("filter-bound makespan %d exceeds closed form %d by more than a tail", got.Cycles, lb)
	}
}

func TestEventSimComputeBoundWithinPipelineFill(t *testing.T) {
	// Compute-bound: the lanes dominate; the event makespan exceeds the
	// closed form only by the pipeline fill (the filter time of the reads
	// needed to occupy the lanes) and load imbalance at the tail.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	costs := randCosts(rng, 400, 2, 400, 0)
	got := SimulatePartitionPass(costs, cfg)
	lb := ClosedFormCycles(costs, cfg)
	if float64(got.Cycles) > 1.25*float64(lb) {
		t.Errorf("compute-bound makespan %d more than 25%% above closed form %d", got.Cycles, lb)
	}
}

func TestEventSimTinyFIFOStalls(t *testing.T) {
	// A depth-1 FIFO with compute-bound reads must back-pressure the
	// filter; the 512-entry FIFO must not.
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig()
	costs := randCosts(rng, 200, 1, 500, 0)
	small := cfg
	small.FIFODepth = 1
	if got := SimulatePartitionPass(costs, small); got.FilterStall == 0 {
		t.Error("depth-1 FIFO never stalled a compute-bound pass")
	}
	if got := SimulatePartitionPass(costs, cfg); got.PeakFIFODepth > cfg.FIFODepth {
		t.Errorf("FIFO exceeded its capacity: %d > %d", got.PeakFIFODepth, cfg.FIFODepth)
	}
}

func TestEventSimDiscardedReadsSkipFIFO(t *testing.T) {
	cfg := DefaultConfig()
	costs := []ReadCost{
		{FilterCycles: 5, ComputeCycles: 100, Discarded: true},
		{FilterCycles: 5, ComputeCycles: 100, Discarded: true},
	}
	got := SimulatePartitionPass(costs, cfg)
	if got.Cycles != 10 {
		t.Errorf("discarded-only pass = %d cycles, want 10 (filter only)", got.Cycles)
	}
	if got.PeakFIFODepth != 0 {
		t.Errorf("discarded reads entered the FIFO")
	}
}

func TestEventSimEmpty(t *testing.T) {
	got := SimulatePartitionPass(nil, DefaultConfig())
	if got.Cycles != 0 || got.FilterStall != 0 {
		t.Errorf("empty pass = %+v", got)
	}
}

func TestEventSimValidatesSeedReadsModel(t *testing.T) {
	// End-to-end fidelity check: measure real per-read costs from a
	// partition pass (stats deltas around SeedRead), then confirm the
	// closed-form model SeedReads uses stays within 25% of the
	// event-simulated makespan on that workload.
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	ref := randSeq(rng, 4000)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var costs []ReadCost
	for i := 0; i < 120; i++ {
		var read dna.Sequence
		if i%3 == 0 {
			read = randSeq(rng, 60) // mostly-foreign read
		} else {
			read = plantedRead(rng, ref, 60, rng.Intn(4))
		}
		before := p.Stats
		p.SeedRead(read)
		delta := diffStats(p.Stats, before)
		costs = append(costs, ReadCost{
			FilterCycles:  (delta.Filter.Lookups + int64(cfg.FilterBanks) - 1) / int64(cfg.FilterBanks),
			ComputeCycles: delta.ComputeCycles,
			Discarded:     delta.ReadsDiscarded > 0,
		})
	}
	got := SimulatePartitionPass(costs, cfg)
	lb := ClosedFormCycles(costs, cfg)
	if got.Cycles < lb {
		t.Fatalf("event sim %d below closed form %d", got.Cycles, lb)
	}
	if float64(got.Cycles) > 1.25*float64(lb) {
		t.Errorf("closed form underestimates the real pass by >25%%: %d vs %d", lb, got.Cycles)
	}
}
