package core

import (
	"math/rand"
	"testing"
)

func TestIndicatorAddOccurrence(t *testing.T) {
	var s SearchIndicator
	s = s.addOccurrence(85, 40, 20) // 85 mod 40 = 5; entry 85/40=2, group 2
	if s.StartMask != 1<<5 {
		t.Errorf("StartMask = %b", s.StartMask)
	}
	if s.GroupMask != 1<<2 {
		t.Errorf("GroupMask = %b", s.GroupMask)
	}
	s = s.addOccurrence(5, 40, 20) // same offset, group 0
	if s.StartCount() != 1 || s.GroupCount() != 2 {
		t.Errorf("counts = %d, %d", s.StartCount(), s.GroupCount())
	}
	if s.Empty() {
		t.Error("non-empty indicator reported empty")
	}
	if (SearchIndicator{}).Empty() != true {
		t.Error("zero indicator not empty")
	}
}

func TestRotateMask(t *testing.T) {
	if got := rotateMask(1<<39, 1, 40); got != 1 {
		t.Errorf("rotate wrap = %b", got)
	}
	if got := rotateMask(1, -1, 40); got != 1<<39 {
		t.Errorf("negative rotate = %b", got)
	}
	if got := rotateMask(0b101, 40, 40); got != 0b101 {
		t.Errorf("full rotate = %b", got)
	}
	if got := rotateMask(0b11, 2, 40); got != 0b1100 {
		t.Errorf("rotate 2 = %b", got)
	}
}

func TestAlignedPaperExample(t *testing.T) {
	// Example 2 of Fig 10 with CAM entry size 5: ATTG (pivot 4's k-mer)
	// starts at offset 4 in its entry, TCAT (the CRkM) at offset 4. The
	// read distance is 4, 4 mod 5 = 4, but the hit distance mod 5 is 0:
	// unaligned, pivot 4 is disposable. (1-based indices in the paper;
	// 0-based below: z=3, crkmStart=7.)
	pivotInd := SearchIndicator{StartMask: 1 << 4}
	crkmInd := SearchIndicator{StartMask: 1 << 4}
	if Aligned(pivotInd, crkmInd, 3, 7, 5) {
		t.Error("paper example 2 must be unaligned")
	}
	// If TCAT instead started at offset 3 = (4+4) mod 5, they would align.
	crkmAligned := SearchIndicator{StartMask: 1 << 3}
	if !Aligned(pivotInd, crkmAligned, 3, 7, 5) {
		t.Error("offset (4+4) mod 5 = 3 must align")
	}
}

func TestAlignedNeverFalseNegative(t *testing.T) {
	// Safety property: whenever true occurrence positions are at the exact
	// read distance, Aligned must report aligned. Random trials.
	rng := rand.New(rand.NewSource(1))
	const stride = 40
	for trial := 0; trial < 2000; trial++ {
		z := rng.Intn(80)
		crkmStart := z + 1 + rng.Intn(80)
		d := crkmStart - z
		a := rng.Intn(1 << 20) // pivot k-mer hit position
		b := a + d             // CRkM hit at the exact distance
		pivotInd := SearchIndicator{StartMask: 1 << uint(a%stride)}
		crkmInd := SearchIndicator{StartMask: 1 << uint(b%stride)}
		// Noise offsets must not break the guarantee.
		pivotInd.StartMask |= 1 << uint(rng.Intn(stride))
		crkmInd.StartMask |= 1 << uint(rng.Intn(stride))
		if !Aligned(pivotInd, crkmInd, z, crkmStart, stride) {
			t.Fatalf("trial %d: exact-distance hits reported unaligned (z=%d, crkm=%d, a=%d, b=%d)",
				trial, z, crkmStart, a, b)
		}
	}
}

func TestAlignedDetectsImpossibleDistances(t *testing.T) {
	// A single offset pair whose congruence differs from the read distance
	// must be unaligned.
	pivotInd := SearchIndicator{StartMask: 1 << 0}
	crkmInd := SearchIndicator{StartMask: 1 << 10}
	// Read distance 5: need offset b = (0+5) mod 40 = 5, but only 10 set.
	if Aligned(pivotInd, crkmInd, 0, 5, 40) {
		t.Error("impossible congruence reported aligned")
	}
}
