package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"casa/internal/dna"
	"casa/internal/smem"
)

// Property-based tests (testing/quick) over the core data structures and
// invariants: the pre-seeding filter's exactness, search-indicator
// algebra, SMEM merging, and Algorithm 1's output structure.

// seqFromBytes maps raw fuzz bytes onto a DNA sequence.
func seqFromBytes(raw []byte) dna.Sequence {
	s := make(dna.Sequence, len(raw))
	for i, c := range raw {
		s[i] = dna.Base(c & 3)
	}
	return s
}

func TestPropertyFilterExactness(t *testing.T) {
	cfg := testConfig()
	f := func(raw []byte, probe uint32) bool {
		if len(raw) < cfg.K {
			return true
		}
		if len(raw) > 800 {
			raw = raw[:800]
		}
		part := seqFromBytes(raw)
		filter, err := BuildFilter(part, cfg)
		if err != nil {
			return false
		}
		// A probe k-mer is reported present iff it occurs in the partition.
		km := dna.Kmer(probe) % dna.Kmer(dna.NumKmers(cfg.K))
		want := false
		for i := 0; i+cfg.K <= len(part); i++ {
			if dna.PackKmer(part, i, cfg.K) == km {
				want = true
				break
			}
		}
		_, got := filter.Lookup(km)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIndicatorSubsumesOccurrences(t *testing.T) {
	cfg := testConfig()
	f := func(raw []byte) bool {
		if len(raw) < cfg.K {
			return true
		}
		if len(raw) > 600 {
			raw = raw[:600]
		}
		part := seqFromBytes(raw)
		filter, err := BuildFilter(part, cfg)
		if err != nil {
			return false
		}
		// Every occurrence's start offset and group must be present in the
		// indicator, and the indicator must contain nothing else.
		for i := 0; i+cfg.K <= len(part); i += 5 {
			km := dna.PackKmer(part, i, cfg.K)
			ind, ok := filter.Lookup(km)
			if !ok {
				return false
			}
			var want SearchIndicator
			for _, pos := range filter.Positions(km) {
				want = want.addOccurrence(int(pos), cfg.Stride, cfg.Groups)
			}
			if ind != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeSMEMsIdempotent(t *testing.T) {
	f := func(starts []uint8, lens []uint8) bool {
		var ms []smem.Match
		for i := range starts {
			if i >= len(lens) {
				break
			}
			s := int(starts[i]) % 80
			l := 1 + int(lens[i])%40
			ms = append(ms, smem.Match{Start: s, End: s + l, Hits: 1})
		}
		once := MergeSMEMs(append([]smem.Match(nil), ms...))
		twice := MergeSMEMs(append([]smem.Match(nil), once...))
		if !smem.Equal(once, twice) {
			return false
		}
		// No merged interval may contain another.
		for i, m := range once {
			for j, o := range once {
				if i != j && o.Contains(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySeedReadOutputStructure(t *testing.T) {
	// Structural invariants of Algorithm 1's output on arbitrary inputs:
	// SMEMs sorted with strictly increasing starts AND ends, length >=
	// MinSMEM, positive hit counts, within read bounds.
	rng := rand.New(rand.NewSource(99))
	cfg := testConfig()
	part := randSeq(rng, 1500)
	p, err := NewPartition(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		read := seqFromBytes(raw)
		out := p.SeedRead(read)
		prevStart, prevEnd := -1, -1
		for _, m := range out {
			if m.Start < 0 || m.End >= len(read) || m.Len() < cfg.MinSMEM || m.Hits <= 0 {
				return false
			}
			if m.Start <= prevStart || m.End <= prevEnd {
				return false
			}
			prevStart, prevEnd = m.Start, m.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPivotFilterSafety(t *testing.T) {
	// The analyses must never change the result set, only the work: for
	// random reads, table+analysis output == table-only output == golden.
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	part := randSeq(rng, 1000)
	withA, err := NewPartition(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgNoA := cfg
	cfgNoA.UseAnalysis = false
	withoutA, err := NewPartition(part, cfgNoA)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte, plant bool, mutations uint8) bool {
		var read dna.Sequence
		if plant && len(part) > 60 {
			start := int(mutations) % (len(part) - 50)
			read = part[start : start+50].Clone()
			for m := 0; m < int(mutations%5); m++ {
				read[(m*13)%len(read)] ^= 1
			}
		} else {
			if len(raw) > 120 {
				raw = raw[:120]
			}
			read = seqFromBytes(raw)
		}
		a := withA.SeedRead(read)
		b := withoutA.SeedRead(read)
		return smem.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExactCheckSoundness(t *testing.T) {
	// ExactCheck may miss (conservative) but must never claim a match for
	// a read that does not occur, and its hit count must equal the true
	// occurrence count when it does match.
	rng := rand.New(rand.NewSource(11))
	cfg := testConfig()
	part := randSeq(rng, 800)
	p, err := NewPartition(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: part}
	f := func(raw []byte, plant bool, off uint16) bool {
		var read dna.Sequence
		if plant {
			start := int(off) % (len(part) - 40)
			read = part[start : start+40].Clone()
		} else {
			if len(raw) < cfg.K {
				return true
			}
			if len(raw) > 60 {
				raw = raw[:60]
			}
			read = seqFromBytes(raw)
		}
		hits, ok := p.ExactCheck(read)
		if !ok {
			return true // misses are allowed (conservative)
		}
		want := golden.FindSMEMs(read, len(read))
		return len(want) == 1 && want[0].Hits == hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
