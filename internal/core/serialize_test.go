package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	cfg.PartitionBases = 900
	ref := randSeq(rng, 2600)
	orig, err := NewWithOverlap(ref, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Partitions() != orig.Partitions() {
		t.Fatalf("partitions = %d, want %d", loaded.Partitions(), orig.Partitions())
	}
	if loaded.Config() != orig.Config() {
		t.Fatalf("config mismatch:\n%+v\n%+v", loaded.Config(), orig.Config())
	}
	for i := 0; i < orig.Partitions(); i++ {
		if !loaded.Partition(i).Ref().Equal(orig.Partition(i).Ref()) {
			t.Fatalf("partition %d reference mismatch", i)
		}
	}

	// Behavioural equivalence: identical SMEM results on a batch.
	var reads []dna.Sequence
	for i := 0; i < 15; i++ {
		reads = append(reads, plantedRead(rng, ref, 50, rng.Intn(4)))
	}
	a := orig.SeedReads(reads)
	b := loaded.SeedReads(reads)
	for i := range reads {
		if !smem.Equal(a.Reads[i].Forward, b.Reads[i].Forward) ||
			!smem.Equal(a.Reads[i].Reverse, b.Reads[i].Reverse) {
			t.Fatalf("read %d: loaded index disagrees\n%v\n%v", i, a.Reads[i], b.Reads[i])
		}
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycle model diverged: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestIndexRoundTripDefaultGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	cfg.PartitionBases = 1 << 17
	ref := randSeq(rng, 200000)
	orig, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	read := plantedRead(rng, ref, 101, 2)
	a := orig.SeedReads([]dna.Sequence{read})
	b := loaded.SeedReads([]dna.Sequence{read})
	if !smem.Equal(a.Reads[0].Forward, b.Reads[0].Forward) {
		t.Fatalf("k=19 round trip mismatch: %v vs %v", a.Reads[0].Forward, b.Reads[0].Forward)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("not an index at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadIndex(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Right magic, truncated body.
	if _, err := ReadIndex(strings.NewReader(indexMagic)); err == nil {
		t.Error("truncated index accepted")
	}
}

func TestReadIndexRejectsCorruptHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	orig, err := New(randSeq(rng, 500), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the K field (first config word after the magic): K=0 must be
	// rejected by config validation.
	copy(data[len(indexMagic):len(indexMagic)+8], make([]byte, 8))
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupt config accepted")
	}
}
