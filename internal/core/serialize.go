package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"casa/internal/dna"
)

// Index serialization: the paper builds the pre-seeding filter tables
// offline for each reference partition (§4.1); WriteIndex/ReadIndex
// persist a fully built Accelerator (partitioned reference + filters) so
// the expensive construction happens once (cmd/casa-index) and later runs
// load it directly.

// indexMagic identifies the file format; the trailing digit is the
// version.
const indexMagic = "CASAIDX1"

// WriteIndex serializes the accelerator's configuration, partitioning and
// per-partition filter tables.
func (a *Accelerator) WriteIndex(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	writeConfig(bw, a.cfg)
	writeU64(bw, uint64(a.overlap))
	writeU64(bw, uint64(a.refLen))
	writeU64(bw, uint64(len(a.parts)))
	for pi, p := range a.parts {
		writeU64(bw, uint64(a.starts[pi]))
		if err := writePartition(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIndex reconstructs an accelerator from WriteIndex output.
func ReadIndex(r io.Reader) (*Accelerator, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: not a CASA index (magic %q)", magic)
	}
	cfg, err := readConfig(br)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: index holds invalid config: %w", err)
	}
	overlap, err := readU64(br)
	if err != nil {
		return nil, err
	}
	refLen, err := readU64(br)
	if err != nil {
		return nil, err
	}
	nParts, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if nParts == 0 || nParts > 1<<20 {
		return nil, fmt.Errorf("core: implausible partition count %d", nParts)
	}
	a := &Accelerator{cfg: cfg, overlap: int(overlap), refLen: int(refLen)}
	for i := uint64(0); i < nParts; i++ {
		start, err := readU64(br)
		if err != nil {
			return nil, err
		}
		p, err := readPartition(br, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		a.starts = append(a.starts, int(start))
		a.parts = append(a.parts, p)
	}
	return a, nil
}

// writePartition emits the packed reference and the filter arrays.
func writePartition(w *bufio.Writer, p *Partition) error {
	writeU64(w, uint64(len(p.ref)))
	// 2-bit packed reference.
	var cur byte
	for i, b := range p.ref {
		cur |= byte(b) << uint(2*(i%4))
		if i%4 == 3 {
			if err := w.WriteByte(cur); err != nil {
				return err
			}
			cur = 0
		}
	}
	if len(p.ref)%4 != 0 {
		if err := w.WriteByte(cur); err != nil {
			return err
		}
	}
	f := p.filter
	// Mini index: store only the bucket end offsets (starts are the
	// previous end), one varint-free u32 per 4^M entries.
	writeU64(w, uint64(len(f.mini)))
	for _, r := range f.mini {
		writeU32(w, uint32(r.end))
	}
	writeU64(w, uint64(len(f.tags)))
	for _, t := range f.tags {
		writeU64(w, t)
	}
	for _, d := range f.data {
		writeU64(w, d.StartMask)
		writeU64(w, d.GroupMask)
	}
	writeU64(w, uint64(len(f.positions)))
	for _, pi := range f.posIndex {
		writeU32(w, uint32(pi))
	}
	for _, pos := range f.positions {
		writeU32(w, uint32(pos))
	}
	return nil
}

// readPartition reconstructs one partition.
func readPartition(r *bufio.Reader, cfg Config) (*Partition, error) {
	refLen, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if refLen > uint64(cfg.PartitionBases) {
		return nil, fmt.Errorf("partition of %d bases exceeds config %d", refLen, cfg.PartitionBases)
	}
	ref := make(dna.Sequence, refLen)
	packed := make([]byte, (refLen+3)/4)
	if _, err := io.ReadFull(r, packed); err != nil {
		return nil, err
	}
	for i := range ref {
		ref[i] = dna.Base(packed[i/4] >> uint(2*(i%4)) & 3)
	}

	nMini, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if nMini != uint64(dna.NumKmers(cfg.M)) {
		return nil, fmt.Errorf("mini index size %d does not match m=%d", nMini, cfg.M)
	}
	f := &Filter{cfg: cfg, mini: make([]tagRange, nMini)}
	f.initDerived()
	prev := int32(0)
	for i := range f.mini {
		end, err := readU32(r)
		if err != nil {
			return nil, err
		}
		f.mini[i] = tagRange{start: prev, end: int32(end)}
		prev = int32(end)
	}
	nTags, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if nTags > refLen {
		return nil, fmt.Errorf("tag count %d exceeds partition size", nTags)
	}
	f.tags = make([]uint64, nTags)
	for i := range f.tags {
		if f.tags[i], err = readU64(r); err != nil {
			return nil, err
		}
	}
	f.data = make([]SearchIndicator, nTags)
	for i := range f.data {
		if f.data[i].StartMask, err = readU64(r); err != nil {
			return nil, err
		}
		if f.data[i].GroupMask, err = readU64(r); err != nil {
			return nil, err
		}
	}
	nPos, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if nPos > refLen {
		return nil, fmt.Errorf("position count %d exceeds partition size", nPos)
	}
	f.posIndex = make([]int32, nTags+1)
	for i := range f.posIndex {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		f.posIndex[i] = int32(v)
	}
	f.positions = make([]int32, nPos)
	for i := range f.positions {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		f.positions[i] = int32(v)
	}
	return &Partition{cfg: cfg, ref: ref, packed: dna.Pack(ref), filter: f}, nil
}

// writeConfig/readConfig serialize the numeric and boolean fields in a
// fixed order.
func writeConfig(w *bufio.Writer, c Config) {
	for _, v := range []uint64{
		uint64(c.K), uint64(c.M), uint64(c.MinSMEM), uint64(c.Stride),
		uint64(c.Groups), uint64(c.ComputeCAMs), uint64(c.PartitionBases),
		uint64(c.FilterBanks), uint64(c.FIFODepth),
	} {
		writeU64(w, v)
	}
	writeU64(w, uint64(c.ClockHz))
	flags := uint64(0)
	for i, b := range []bool{c.UseFilterTable, c.UseAnalysis, c.ExactMatchPrepass, c.GroupGating, c.EntryGating} {
		if b {
			flags |= 1 << uint(i)
		}
	}
	writeU64(w, flags)
}

func readConfig(r *bufio.Reader) (Config, error) {
	var vals [10]uint64
	for i := range vals {
		v, err := readU64(r)
		if err != nil {
			return Config{}, err
		}
		vals[i] = v
	}
	flags, err := readU64(r)
	if err != nil {
		return Config{}, err
	}
	c := Config{
		K: int(vals[0]), M: int(vals[1]), MinSMEM: int(vals[2]), Stride: int(vals[3]),
		Groups: int(vals[4]), ComputeCAMs: int(vals[5]), PartitionBases: int(vals[6]),
		FilterBanks: int(vals[7]), FIFODepth: int(vals[8]), ClockHz: float64(vals[9]),
	}
	c.UseFilterTable = flags&1 != 0
	c.UseAnalysis = flags&2 != 0
	c.ExactMatchPrepass = flags&4 != 0
	c.GroupGating = flags&8 != 0
	c.EntryGating = flags&16 != 0
	return c, nil
}

func writeU64(w *bufio.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
