package core

import (
	"math/rand"
	"testing"

	"casa/internal/cam"
	"casa/internal/dna"
)

// These tests stand in for the paper's RTL verification: the behavioural
// SMEM computing model (filter positions + longest common extension) is
// cross-checked against a bit-accurate binary CAM holding the partition
// exactly as the hardware does — non-overlapped 40-base (80-bit) entries
// in round-robin power-gated groups, searched with padded don't-care
// queries built from the search indicators.

// camImage stores part into a cam.Bank per the §3 layout and returns it.
func camImage(part dna.Sequence, cfg Config) *cam.Bank {
	entries := (len(part) + cfg.Stride - 1) / cfg.Stride
	// One array per group round-robin: array i gets entries i, i+groups...
	// To keep GroupOf(entry) == entry%groups (the addOccurrence
	// convention maps position x to group (x/stride)%groups), use one
	// entry per "array" with groups-sized round robin. Rows per array can
	// be 1 for the test; the energy geometry is irrelevant here.
	bank := cam.NewBank(entries, 1, 2*cfg.Stride, cfg.Groups)
	for e := 0; e < entries; e++ {
		var w cam.Word
		for off := 0; off < cfg.Stride; off++ {
			x := e*cfg.Stride + off
			if x >= len(part) {
				break
			}
			w = w.SetBits(2*off, 2, uint64(part[x]))
		}
		bank.Array(e).Write(0, w)
	}
	return bank
}

// padQuery builds the padded key and care mask for matching kmer at entry
// offset s: bases occupy bit range [2s, 2(s+k)) of the 80-bit word; bits
// outside are X (don't care). The part of the k-mer past the entry end is
// returned as a remainder to verify against the successor entry.
func padQuery(kmer dna.Kmer, k, s, stride int) (key, care cam.Word, rem dna.Sequence) {
	inEntry := min(k, stride-s)
	for j := 0; j < inEntry; j++ {
		key = key.SetBits(2*(s+j), 2, uint64(dna.KmerBase(kmer, k, j)))
	}
	care = cam.MaskRange(2*s, 2*inEntry)
	for j := inEntry; j < k; j++ {
		rem = append(rem, dna.KmerBase(kmer, k, j))
	}
	return key, care, rem
}

func TestCAMImageMatchesIndicatorSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig() // k=7, stride=5, groups=4
	part := randSeq(rng, 600)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bank := camImage(part, cfg)

	for x := 0; x+cfg.K <= len(part); x += 3 {
		kmer := dna.PackKmer(part, x, cfg.K)
		ind, ok := f.Lookup(kmer)
		if !ok {
			t.Fatalf("present k-mer missing from filter")
		}
		// Gather CAM-detected occurrence positions using only the
		// indicator (start offsets + group mask), as the hardware does.
		found := map[int]bool{}
		for s := 0; s < cfg.Stride; s++ {
			if ind.StartMask>>uint(s)&1 == 0 {
				continue
			}
			key, care, rem := padQuery(kmer, cfg.K, s, cfg.Stride)
			for _, m := range bank.SearchGroups(key, care, ind.GroupMask) {
				// The candidate's remainder must continue in the successor
				// entry (the next multi-stride match cycle).
				pos := m.Array*cfg.Stride + s
				match := true
				for j, b := range rem {
					nx := pos + (cfg.Stride - s) + j
					if nx >= len(part) || part[nx] != b {
						match = false
						break
					}
				}
				if match {
					found[pos] = true
				}
			}
		}
		// The CAM view must equal the filter's position list exactly.
		want := f.Positions(kmer)
		if len(found) != len(want) {
			t.Fatalf("pos %d: CAM found %d occurrences, filter has %d", x, len(found), len(want))
		}
		for _, p := range want {
			if !found[int(p)] {
				t.Fatalf("pos %d: CAM missed occurrence at %d", x, p)
			}
		}
	}
}

func TestCAMGroupGatingNeverLosesMatches(t *testing.T) {
	// Searching only the indicator's groups must find the same entries as
	// searching every group (the indicator is exact, not approximate).
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	part := randSeq(rng, 400)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bank := camImage(part, cfg)
	for x := 0; x+cfg.K <= len(part); x += 7 {
		kmer := dna.PackKmer(part, x, cfg.K)
		ind, _ := f.Lookup(kmer)
		for s := 0; s < cfg.Stride; s++ {
			if ind.StartMask>>uint(s)&1 == 0 {
				continue
			}
			key, care, _ := padQuery(kmer, cfg.K, s, cfg.Stride)
			gated := bank.SearchGroups(key, care, ind.GroupMask)
			all := bank.SearchGroups(key, care, ^uint64(0))
			// Each gated match appears among the all-groups matches, and
			// every all-groups match at this offset whose group is in the
			// mask is found by the gated search.
			if len(gated) > len(all) {
				t.Fatalf("gated search found more than ungated")
			}
			for _, g := range gated {
				ok := false
				for _, a := range all {
					if a == g {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("gated match %v missing from full search", g)
				}
			}
		}
	}
}

func TestCAMStrideSearchReplaysRMEM(t *testing.T) {
	// Replay a full multi-stride CAM search for one pivot and verify the
	// end position equals the behavioural RMEM search's.
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	part := randSeq(rng, 500)
	p, err := NewPartition(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bank := camImage(part, cfg)
	for trial := 0; trial < 40; trial++ {
		read := plantedRead(rng, part, 40, rng.Intn(3))
		for pivot := 0; pivot+cfg.K <= len(read); pivot += 5 {
			kmer := dna.PackKmer(read, pivot, cfg.K)
			ind, ok := p.Filter().Lookup(kmer)
			if !ok {
				continue
			}
			// Behavioural result.
			m, ok := p.rmemSearch(read, pivot, kmer, ind)
			if !ok {
				continue
			}
			// CAM replay: for every occurrence entry/offset, extend by
			// comparing successor entries one stride at a time (what the
			// CAM's enabled-successor search does), and track the longest.
			best := 0
			for s := 0; s < cfg.Stride; s++ {
				if ind.StartMask>>uint(s)&1 == 0 {
					continue
				}
				key, care, rem := padQuery(kmer, cfg.K, s, cfg.Stride)
				for _, bm := range bank.SearchGroups(key, care, ind.GroupMask) {
					pos := bm.Array*cfg.Stride + s
					// Verify the k-mer remainder, then extend base by base
					// (a stride search is just a bulk comparison; per-base
					// replay gives the same end).
					okRem := true
					for j, b := range rem {
						nx := pos + (cfg.Stride - s) + j
						if nx >= len(part) || part[nx] != b {
							okRem = false
							break
						}
					}
					if !okRem {
						continue
					}
					ext := cfg.K
					for pivot+ext < len(read) && pos+ext < len(part) && read[pivot+ext] == part[pos+ext] {
						ext++
					}
					if ext > best {
						best = ext
					}
				}
			}
			if got := m.End - m.Start + 1; got != best {
				t.Fatalf("pivot %d: behavioural RMEM length %d != CAM replay %d", pivot, got, best)
			}
		}
	}
}
