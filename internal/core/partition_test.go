package core

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

// plantedRead copies a window of ref and injects mutations.
func plantedRead(rng *rand.Rand, ref dna.Sequence, length, mutations int) dna.Sequence {
	start := rng.Intn(len(ref) - length)
	read := ref[start : start+length].Clone()
	for m := 0; m < mutations; m++ {
		read[rng.Intn(length)] = dna.Base(rng.Intn(4))
	}
	return read
}

// seedVariants runs SeedRead under every ablation combination that must
// preserve results.
func seedVariants(t *testing.T, ref, read dna.Sequence, cfg Config) [][]smem.Match {
	t.Helper()
	variants := []func(*Config){
		func(c *Config) {}, // full CASA
		func(c *Config) { c.UseAnalysis = false },
		func(c *Config) { c.UseAnalysis = false; c.UseFilterTable = false },
		func(c *Config) { c.ExactMatchPrepass = false },
		func(c *Config) { c.GroupGating = false; c.EntryGating = false },
	}
	var out [][]smem.Match
	for i, f := range variants {
		c := cfg
		f(&c)
		p, err := NewPartition(ref, c)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		out = append(out, p.SeedRead(read))
	}
	return out
}

func TestSeedReadMatchesGolden(t *testing.T) {
	// The central correctness claim: CASA's filter-enabled algorithm
	// produces exactly the golden SMEM set (length >= k) — "CASA produces
	// identical SMEMs to GenAx and ... the same alignment as BWA-MEM2".
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	for trial := 0; trial < 20; trial++ {
		ref := randSeq(rng, 400+rng.Intn(800))
		golden := smem.BruteForce{Ref: ref}
		for r := 0; r < 8; r++ {
			var read dna.Sequence
			switch r % 3 {
			case 0:
				read = plantedRead(rng, ref, 40+rng.Intn(60), rng.Intn(5))
			case 1:
				read = randSeq(rng, 30+rng.Intn(40))
			default:
				read = plantedRead(rng, ref, 50, 0) // exact-match read
			}
			want := golden.FindSMEMs(read, cfg.MinSMEM)
			for vi, got := range seedVariants(t, ref, read, cfg) {
				if !smem.Equal(want, got) {
					t.Fatalf("trial %d read %d variant %d:\n got %v\nwant %v\nread %s\nref %s",
						trial, r, vi, got, want, read, ref)
				}
			}
		}
	}
}

func TestSeedReadRepetitiveReference(t *testing.T) {
	// Tandem repeats: multi-hit k-mers, contained RMEMs, alignment checks
	// with many offsets.
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	unit := randSeq(rng, 11)
	var ref dna.Sequence
	for i := 0; i < 40; i++ {
		ref = append(ref, unit...)
		if i%4 == 0 {
			ref = append(ref, randSeq(rng, 7)...)
		}
	}
	golden := smem.BruteForce{Ref: ref}
	for r := 0; r < 20; r++ {
		read := plantedRead(rng, ref, 45, rng.Intn(4))
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		for vi, got := range seedVariants(t, ref, read, cfg) {
			if !smem.Equal(want, got) {
				t.Fatalf("read %d variant %d:\n got %v\nwant %v", r, vi, got, want)
			}
		}
	}
}

func TestSeedReadPaperGeometry(t *testing.T) {
	// k=19, m=10, stride 40, 101 bp reads: the paper's exact dimensions.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.PartitionBases = 1 << 18
	ref := randSeq(rng, 50000)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	for r := 0; r < 10; r++ {
		read := plantedRead(rng, ref, 101, rng.Intn(6))
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		got := p.SeedRead(read)
		if !smem.Equal(want, got) {
			t.Fatalf("read %d:\n got %v\nwant %v", r, got, want)
		}
	}
}

func TestSeedReadEmptyAndShortReads(t *testing.T) {
	cfg := testConfig()
	p, err := NewPartition(dna.FromString("ACGTACGTACGTACGT"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SeedRead(nil); got != nil {
		t.Errorf("empty read produced %v", got)
	}
	if got := p.SeedRead(dna.FromString("ACG")); got != nil {
		t.Errorf("sub-k read produced %v", got)
	}
}

func TestSeedReadNoHitReadDiscarded(t *testing.T) {
	cfg := testConfig()
	p, err := NewPartition(dna.FromString("AAAAAAAAAAAAAAAAAAAAAAAA"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := p.SeedRead(dna.FromString("CCCCCCCCCCCC"))
	if got != nil {
		t.Errorf("no-hit read produced %v", got)
	}
	if p.Stats.ReadsDiscarded != 1 {
		t.Errorf("ReadsDiscarded = %d, want 1", p.Stats.ReadsDiscarded)
	}
	if p.Stats.ComputeCycles != 0 {
		t.Errorf("discarded read consumed %d compute cycles", p.Stats.ComputeCycles)
	}
}

func TestExactMatchPrepassDetects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	ref := randSeq(rng, 3000)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	read := ref[100:180].Clone()
	got := p.SeedRead(read)
	if p.Stats.ReadsExact != 1 {
		t.Errorf("exact read not taken by the prepass: %+v", p.Stats)
	}
	if len(got) != 1 || got[0].Start != 0 || got[0].End != len(read)-1 {
		t.Errorf("exact read SMEMs = %v", got)
	}
	// The prepass must skip the pivot loop entirely.
	if p.Stats.PivotsComputed != 0 {
		t.Errorf("exact read still computed %d pivots", p.Stats.PivotsComputed)
	}
}

func TestExactMatchPrepassHitsCount(t *testing.T) {
	cfg := testConfig()
	// Reference with the read planted twice.
	rng := rand.New(rand.NewSource(5))
	read := randSeq(rng, 30)
	var ref dna.Sequence
	ref = append(ref, randSeq(rng, 50)...)
	ref = append(ref, read...)
	ref = append(ref, randSeq(rng, 50)...)
	ref = append(ref, read...)
	ref = append(ref, randSeq(rng, 50)...)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := p.SeedRead(read)
	if len(got) != 1 || got[0].Hits != 2 {
		t.Errorf("planted-twice read: %v, want 1 SMEM with 2 hits", got)
	}
}

func TestInexactReadSkipsPrepass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig()
	ref := randSeq(rng, 3000)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	read := plantedRead(rng, ref, 60, 3)
	// Ensure it is actually inexact.
	if (smem.BruteForce{Ref: ref}).FindSMEMs(read, len(read)) != nil {
		t.Skip("mutations landed on duplicate bases; read still exact")
	}
	p.SeedRead(read)
	if p.Stats.ReadsExact != 0 {
		t.Error("inexact read classified exact")
	}
}

func TestFilterReducesPivots(t *testing.T) {
	// Fig 15's shape: table filtering removes most pivots; analysis
	// removes more. Use a read mostly foreign to the partition.
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	cfg.ExactMatchPrepass = false
	ref := randSeq(rng, 4000)
	reads := make([]dna.Sequence, 50)
	for i := range reads {
		if i%10 == 0 {
			reads[i] = plantedRead(rng, ref, 60, 2)
		} else {
			reads[i] = randSeq(rng, 60) // foreign: nearly no 7-mer... actually
		}
	}
	run := func(mutate func(*Config)) int64 {
		c := cfg
		mutate(&c)
		p, err := NewPartition(ref, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reads {
			p.SeedRead(r)
		}
		return p.Stats.PivotsComputed
	}
	naive := run(func(c *Config) { c.UseFilterTable = false; c.UseAnalysis = false })
	table := run(func(c *Config) { c.UseAnalysis = false })
	analysis := run(func(c *Config) {})
	if !(naive >= table && table >= analysis) {
		t.Errorf("pivot counts not monotone: naive=%d table=%d analysis=%d", naive, table, analysis)
	}
	if analysis >= naive {
		t.Errorf("filtering had no effect: naive=%d analysis=%d", naive, analysis)
	}
}

func TestStatsConservation(t *testing.T) {
	// Every pivot slot is either filtered (by one of the three mechanisms)
	// or computed.
	rng := rand.New(rand.NewSource(8))
	cfg := testConfig()
	cfg.ExactMatchPrepass = false
	ref := randSeq(rng, 3000)
	p, err := NewPartition(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		p.SeedRead(plantedRead(rng, ref, 70, rng.Intn(6)))
	}
	s := p.Stats
	if s.PivotsTotal != s.PivotsFilteredTable+s.PivotsFilteredCRkM+s.PivotsFilteredAlign+s.PivotsComputed {
		t.Errorf("pivot conservation violated: %+v", s)
	}
	if s.PivotsComputed != s.RMEMSearches {
		t.Errorf("computed pivots %d != RMEM searches %d", s.PivotsComputed, s.RMEMSearches)
	}
	if s.CAMSearches <= 0 || s.CAMRowsEnabled <= 0 {
		t.Errorf("CAM activity missing: %+v", s)
	}
}

func TestEntryGatingReducesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig()
	ref := randSeq(rng, 4000)
	reads := make([]dna.Sequence, 20)
	for i := range reads {
		reads[i] = plantedRead(rng, ref, 60, 2)
	}
	rows := func(group, entry bool) int64 {
		c := cfg
		c.GroupGating, c.EntryGating = group, entry
		p, err := NewPartition(ref, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reads {
			p.SeedRead(r)
		}
		return p.Stats.CAMRowsEnabled
	}
	gated := rows(true, true)
	naive := rows(false, false)
	if gated >= naive {
		t.Errorf("gating saved nothing: gated=%d naive=%d", gated, naive)
	}
	// The paper reports gating cuts CAM power to ~4.2% of naive; with the
	// small test geometry demand a clear (>2x) reduction.
	if gated*2 > naive {
		t.Errorf("gating reduction too small: gated=%d naive=%d", gated, naive)
	}
}

func TestRollingKmers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	read := randSeq(rng, 60)
	for _, k := range []int{1, 7, 19, 31} {
		p := &Partition{cfg: Config{K: k}}
		got := p.rollingKmersInto(read)
		if len(got) != len(read)-k+1 {
			t.Fatalf("k=%d: %d kmers", k, len(got))
		}
		for i := range got {
			if got[i] != dna.PackKmer(read, i, k) {
				t.Fatalf("k=%d i=%d: rolling %d != packed %d", k, i, got[i], dna.PackKmer(read, i, k))
			}
		}
		// Scratch reuse must not leak stale entries into a shorter read.
		short := randSeq(rng, k+3)
		again := p.rollingKmersInto(short)
		if len(again) != 4 {
			t.Fatalf("k=%d reuse: %d kmers", k, len(again))
		}
		for i := range again {
			if again[i] != dna.PackKmer(short, i, k) {
				t.Fatalf("k=%d reuse i=%d: rolling != packed", k, i)
			}
		}
	}
	if (&Partition{cfg: Config{K: 7}}).rollingKmersInto(randSeq(rng, 5)) != nil {
		t.Error("short read must yield no kmers")
	}
}
