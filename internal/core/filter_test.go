package core

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
)

// testConfig returns a small-geometry config suitable for unit tests:
// k=7, m=4, stride 5, 4 groups.
func testConfig() Config {
	c := DefaultConfig()
	c.K = 7
	c.M = 4
	c.MinSMEM = 7
	c.Stride = 5
	c.Groups = 4
	c.PartitionBases = 1 << 16
	return c
}

func randSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestBuildFilterRejectsBadConfig(t *testing.T) {
	c := testConfig()
	c.K = 0
	if _, err := BuildFilter(dna.FromString("ACGT"), c); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBuildFilterRejectsOversizedPartition(t *testing.T) {
	c := testConfig()
	c.PartitionBases = 8
	c.Stride = 5
	if _, err := BuildFilter(make(dna.Sequence, 100), c); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestFilterNoFalseNegativesOrPositives(t *testing.T) {
	// §4.1: "the proposed pre-seeding filter table avoids k-mer false
	// positives or misses, unlike the bloom filter in GenCache."
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	part := randSeq(rng, 3000)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[dna.Kmer]bool)
	for i := 0; i+cfg.K <= len(part); i++ {
		present[dna.PackKmer(part, i, cfg.K)] = true
	}
	// Every present k-mer must be found.
	for km := range present {
		if _, ok := f.Lookup(km); !ok {
			t.Fatalf("false negative for %s", dna.KmerString(km, cfg.K))
		}
	}
	// Random absent k-mers must not be found.
	for trial := 0; trial < 2000; trial++ {
		km := dna.Kmer(rng.Intn(dna.NumKmers(cfg.K)))
		if _, ok := f.Lookup(km); ok != present[km] {
			t.Fatalf("lookup(%s) = %v, want %v", dna.KmerString(km, cfg.K), ok, present[km])
		}
	}
	if f.DistinctKmers() != len(present) {
		t.Errorf("DistinctKmers = %d, want %d", f.DistinctKmers(), len(present))
	}
}

func TestFilterIndicatorsMatchOccurrences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	part := randSeq(rng, 2000)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+cfg.K <= len(part); i += 17 {
		km := dna.PackKmer(part, i, cfg.K)
		ind, ok := f.Lookup(km)
		if !ok {
			t.Fatalf("present k-mer missing")
		}
		// Recompute the expected indicator from all occurrences.
		var want SearchIndicator
		for _, pos := range f.Positions(km) {
			want = want.addOccurrence(int(pos), cfg.Stride, cfg.Groups)
		}
		if ind != want {
			t.Fatalf("indicator mismatch at %d: %+v vs %+v", i, ind, want)
		}
		// This occurrence's own offsets must be present.
		if ind.StartMask&(1<<uint(i%cfg.Stride)) == 0 {
			t.Fatalf("own start offset missing at %d", i)
		}
		if ind.GroupMask&(1<<uint((i/cfg.Stride)%cfg.Groups)) == 0 {
			t.Fatalf("own group missing at %d", i)
		}
	}
}

func TestFilterPositionsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	// Repetitive text: many multi-occurrence k-mers.
	unit := randSeq(rng, 13)
	var part dna.Sequence
	for i := 0; i < 60; i++ {
		part = append(part, unit...)
		part = append(part, randSeq(rng, 3)...)
	}
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[dna.Kmer]int)
	for i := 0; i+cfg.K <= len(part); i++ {
		counts[dna.PackKmer(part, i, cfg.K)]++
	}
	for km, want := range counts {
		pos := f.Positions(km)
		if len(pos) != want {
			t.Fatalf("positions(%s) = %d, want %d", dna.KmerString(km, cfg.K), len(pos), want)
		}
		for j := 1; j < len(pos); j++ {
			if pos[j] <= pos[j-1] {
				t.Fatal("positions not sorted")
			}
		}
		for _, p := range pos {
			if !part[p : int(p)+cfg.K].Equal(dna.FromString(dna.KmerString(km, cfg.K))) {
				t.Fatalf("position %d does not hold the k-mer", p)
			}
		}
	}
}

func TestFilterStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	part := randSeq(rng, 1000)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Lookup(dna.PackKmer(part, 0, cfg.K)) // hit
	missing := dna.Kmer(0)
	for f.Positions(missing) != nil {
		missing++
	}
	f.Lookup(missing) // miss
	s := f.Stats
	if s.Lookups != 2 || s.MiniAccesses != 2 || s.TagSearches != 2 {
		t.Errorf("lookup counts wrong: %+v", s)
	}
	if s.Hits != 1 || s.DataAccesses != 1 {
		t.Errorf("hit accounting wrong: %+v", s)
	}
	// Gated tag search: enabled rows must be bounded by the largest
	// m-mer bucket, far below the total number of tags.
	if s.TagRowsEnabled > int64(f.DistinctKmers()) {
		t.Errorf("range decoder gating ineffective: %d rows for %d tags",
			s.TagRowsEnabled, f.DistinctKmers())
	}
	// Positions and Contains-via-findQuiet must not charge stats.
	before := f.Stats
	f.Positions(dna.PackKmer(part, 0, cfg.K))
	if f.Stats != before {
		t.Error("Positions charged filter stats")
	}
}

func TestFilterContains(t *testing.T) {
	cfg := testConfig()
	part := dna.FromString("ACGTACGTACGTACG")
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains(dna.PackKmer(part, 0, cfg.K)) {
		t.Error("present k-mer not contained")
	}
	if f.Contains(dna.PackKmer(dna.FromString("TTTTTTT"), 0, cfg.K)) {
		t.Error("absent k-mer contained")
	}
}

func TestFilterTinyPartition(t *testing.T) {
	cfg := testConfig()
	// Exactly one k-mer.
	part := dna.FromString("ACGTACG")
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.DistinctKmers() != 1 {
		t.Errorf("DistinctKmers = %d", f.DistinctKmers())
	}
	// Shorter than k: empty filter.
	f2, err := BuildFilter(dna.FromString("ACG"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f2.DistinctKmers() != 0 {
		t.Errorf("short partition has %d k-mers", f2.DistinctKmers())
	}
}

func TestFilterDefaultGeometryWorks(t *testing.T) {
	// Full k=19/m=10 geometry on a small but realistic partition.
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	cfg.PartitionBases = 1 << 20
	part := randSeq(rng, 200000)
	f, err := BuildFilter(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+cfg.K <= len(part); i += 997 {
		if _, ok := f.Lookup(dna.PackKmer(part, i, cfg.K)); !ok {
			t.Fatalf("false negative at %d with default geometry", i)
		}
	}
}
