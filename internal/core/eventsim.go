package core

// Discrete-event simulation of one partition pass through the Fig 9
// pipeline: the multi-banked pre-seeding filter feeding the 512-entry
// FIFO, which the parallel SMEM computing CAM lanes drain. The closed-form
// cycle model in SeedReads (max of the two phase totals) assumes the FIFO
// fully decouples the phases; this event simulator models the coupling —
// FIFO back-pressure stalls the filter, an empty FIFO starves the lanes —
// and is used by tests to bound the closed form's error and by
// casa-sim-style analyses to study FIFO sizing.

// ReadCost is one strand-read's per-phase cost in cycles.
type ReadCost struct {
	FilterCycles  int64 // cycles the filter needs for this read's lookups
	ComputeCycles int64 // cycles one CAM lane needs for this read
	Discarded     bool  // no k-mer hit: never enters the FIFO
}

// PassResult is the simulated outcome of one partition pass.
type PassResult struct {
	Cycles        int64 // makespan
	FilterStall   int64 // filter cycles lost to FIFO back-pressure
	LaneIdle      int64 // lane-cycles spent starved (FIFO empty, work remaining)
	PeakFIFODepth int
}

// SimulatePartitionPass runs the event simulation: reads stream through
// the filter in order; completed reads enter the FIFO (unless discarded);
// ComputeCAMs lanes pull reads FIFO-order and work independently.
func SimulatePartitionPass(costs []ReadCost, cfg Config) PassResult {
	fifoCap := cfg.FIFODepth
	if fifoCap <= 0 {
		fifoCap = 1
	}
	lanes := make([]int64, cfg.ComputeCAMs) // next free cycle per lane
	var res PassResult

	// readyAt[i] is when read i enters the FIFO; consumption happens in
	// FIFO order, so lane assignment is a simple earliest-free choice.
	var filterClock int64
	type fifoItem struct {
		ready   int64
		compute int64
	}
	var queue []fifoItem

	// drainUntil pops queued reads whose turn comes before t, assigning
	// them to lanes; returns the number of items consumed.
	head := 0
	drainUntil := func(t int64) {
		for head < len(queue) {
			it := queue[head]
			// Earliest lane.
			li := 0
			for j := range lanes {
				if lanes[j] < lanes[li] {
					li = j
				}
			}
			start := max(it.ready, lanes[li])
			if start >= t {
				break
			}
			if lanes[li] < it.ready {
				res.LaneIdle += it.ready - lanes[li]
			}
			lanes[li] = start + it.compute
			head++
		}
	}

	for _, c := range costs {
		// The filter may have to wait for FIFO space before it can emit
		// the next read.
		for {
			drainUntil(filterClock)
			if len(queue)-head < fifoCap {
				break
			}
			// Stall the filter until the earliest lane frees an entry.
			next := lanes[0]
			for _, l := range lanes {
				if l < next {
					next = l
				}
			}
			stallTo := max(next, queue[head].ready)
			if stallTo <= filterClock {
				stallTo = filterClock + 1
			}
			res.FilterStall += stallTo - filterClock
			filterClock = stallTo
		}
		filterClock += c.FilterCycles
		if c.Discarded {
			continue
		}
		queue = append(queue, fifoItem{ready: filterClock, compute: c.ComputeCycles})
		if d := len(queue) - head; d > res.PeakFIFODepth {
			res.PeakFIFODepth = d
		}
	}
	// Drain everything.
	drainUntil(1 << 62)
	res.Cycles = filterClock
	for _, l := range lanes {
		if l > res.Cycles {
			res.Cycles = l
		}
	}
	return res
}

// ClosedFormCycles is the SeedReads model for the same inputs: the longer
// of the two phase totals, with compute spread across the lanes.
func ClosedFormCycles(costs []ReadCost, cfg Config) int64 {
	var filter, compute int64
	for _, c := range costs {
		filter += c.FilterCycles
		if !c.Discarded {
			compute += c.ComputeCycles
		}
	}
	lanes := int64(cfg.ComputeCAMs)
	return max(filter, (compute+lanes-1)/lanes)
}
