package core

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/smem"
)

func TestNewPartitioning(t *testing.T) {
	cfg := testConfig()
	cfg.PartitionBases = 1000
	ref := make(dna.Sequence, 3500)
	a, err := NewWithOverlap(ref, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	// step 900: starts 0, 900, 1800, 2700 -> ends 1000,1900,2800,3500.
	if a.Partitions() != 4 {
		t.Fatalf("partitions = %d, want 4", a.Partitions())
	}
	if got := len(a.Partition(3).Ref()); got != 800 {
		t.Errorf("last partition length = %d, want 800", got)
	}
}

func TestNewErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := New(nil, cfg); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewWithOverlap(make(dna.Sequence, 100), cfg, cfg.PartitionBases); err == nil {
		t.Error("overlap >= partition accepted")
	}
	bad := cfg
	bad.K = 0
	if _, err := New(make(dna.Sequence, 100), bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSeedReadsMatchesWholeGenomeGolden(t *testing.T) {
	// Partitioned seeding with overlap >= read length, merged across
	// partitions, must reproduce the whole-reference SMEM set exactly
	// (intervals; hit counts can double-count occurrences inside the
	// overlap region). This is the paper's §6 validation claim. The
	// exact-match prepass is disabled: its read retirement intentionally
	// skips the non-matching strand of resolved reads (tested separately
	// in TestSeedReadsExactRetirement).
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	cfg.ExactMatchPrepass = false
	cfg.PartitionBases = 700
	ref := randSeq(rng, 3000)
	const readLen = 50
	a, err := NewWithOverlap(ref, cfg, readLen)
	if err != nil {
		t.Fatal(err)
	}
	golden := smem.BruteForce{Ref: ref}
	var reads []dna.Sequence
	for i := 0; i < 25; i++ {
		reads = append(reads, plantedRead(rng, ref, readLen, rng.Intn(4)))
	}
	res := a.SeedReads(reads)
	for i, read := range reads {
		want := golden.FindSMEMs(read, cfg.MinSMEM)
		got := res.Reads[i].Forward
		if !smem.SameIntervals(want, got) {
			t.Fatalf("read %d forward:\n got %v\nwant %v", i, got, want)
		}
		wantR := golden.FindSMEMs(read.ReverseComplement(), cfg.MinSMEM)
		if !smem.SameIntervals(wantR, res.Reads[i].Reverse) {
			t.Fatalf("read %d reverse:\n got %v\nwant %v", i, res.Reads[i].Reverse, wantR)
		}
	}
}

func TestSeedReadsExactRetirement(t *testing.T) {
	// With the prepass on, an exactly matching read retires at its first
	// matching partition: the matching strand reports the full-read SMEM
	// with that partition's hits; the other strand reports nothing.
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	cfg.PartitionBases = 700
	ref := randSeq(rng, 2500)
	a, err := NewWithOverlap(ref, cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	exact := ref[300:360].Clone()        // forward exact
	revRead := exact.ReverseComplement() // reverse-strand exact
	inexact := plantedRead(rng, ref, 60, 3)
	res := a.SeedReads([]dna.Sequence{exact, revRead, inexact})

	if got := res.Reads[0].Forward; len(got) != 1 || got[0].Start != 0 || got[0].End != 59 {
		t.Errorf("exact forward read: %v", got)
	}
	if got := res.Reads[0].Reverse; got != nil {
		t.Errorf("retired read's reverse strand reported %v", got)
	}
	if got := res.Reads[1].Reverse; len(got) != 1 || got[0].End != 59 {
		t.Errorf("reverse-exact read: %v", got)
	}
	// The inexact read still gets full SMEMs on both strands.
	golden := smem.BruteForce{Ref: ref}
	if want := golden.FindSMEMs(inexact, cfg.MinSMEM); !smem.SameIntervals(want, res.Reads[2].Forward) {
		t.Errorf("inexact forward: got %v want %v", res.Reads[2].Forward, want)
	}
	if res.Stats.ReadsExact < 2 {
		t.Errorf("ReadsExact = %d, want >= 2", res.Stats.ReadsExact)
	}
}

func TestMergeSMEMs(t *testing.T) {
	in := []smem.Match{
		{Start: 5, End: 30, Hits: 2},
		{Start: 5, End: 30, Hits: 1}, // duplicate: hits sum
		{Start: 6, End: 29, Hits: 1}, // contained: dropped
		{Start: 0, End: 10, Hits: 1}, // distinct: kept
	}
	got := MergeSMEMs(in)
	want := []smem.Match{{Start: 0, End: 10, Hits: 1}, {Start: 5, End: 30, Hits: 3}}
	if !smem.Equal(got, want) {
		t.Errorf("MergeSMEMs = %v, want %v", got, want)
	}
	if MergeSMEMs(nil) != nil {
		t.Error("MergeSMEMs(nil) != nil")
	}
}

func TestResultTimingAndThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	ref := randSeq(rng, 5000)
	a, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Sequence
	for i := 0; i < 40; i++ {
		reads = append(reads, plantedRead(rng, ref, 60, rng.Intn(3)))
	}
	res := a.SeedReads(reads)
	if res.Seconds <= 0 || res.Cycles <= 0 {
		t.Fatalf("no time modelled: %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
	if got := res.Throughput() * res.Seconds; int(got+0.5) != len(reads) {
		t.Errorf("throughput x time = %.1f reads, want %d", got, len(reads))
	}
	if res.DRAM.TotalBytes() <= 0 {
		t.Error("no DRAM traffic recorded")
	}
	if res.ReadsPerMJ() <= 0 {
		t.Error("energy efficiency must be positive")
	}
}

func TestResultEnergyBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	ref := randSeq(rng, 5000)
	a, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reads []dna.Sequence
	for i := 0; i < 20; i++ {
		reads = append(reads, plantedRead(rng, ref, 60, 1))
	}
	res := a.SeedReads(reads)
	r := res.Energy
	if r.PowerW() <= 0 {
		t.Fatal("no power modelled")
	}
	// Components the breakdown must include.
	for _, name := range []string{
		"pre-seeding filter: mini index",
		"pre-seeding filter: tag array",
		"pre-seeding filter: data array",
		"computing CAMs",
		"pre-seeding controller",
		"computing controllers",
		"DDR4",
		"DRAM controller PHY",
	} {
		found := false
		for _, c := range r.Components {
			if c.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("component %q missing from the breakdown", name)
		}
	}
	if r.AreaMM2() <= 0 {
		t.Error("no area modelled")
	}
}

func TestPaperGeometryAreaMatchesTable4(t *testing.T) {
	// With the paper's full dimensions, the area synthesized from Table 3
	// macros must land near Table 4: filter ~188 mm^2, computing CAMs
	// ~90 mm^2, total ~297 mm^2.
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig()
	ref := randSeq(rng, 1<<16) // small text; area depends on capacity, not content
	a, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := a.SeedReads([]dna.Sequence{plantedRead(rng, ref, 101, 1)})
	var filter, cams float64
	for _, c := range res.Energy.Components {
		switch c.Name {
		case "pre-seeding filter: mini index", "pre-seeding filter: tag array", "pre-seeding filter: data array":
			filter += c.AreaMM2
		case "computing CAMs":
			cams += c.AreaMM2
		}
	}
	if filter < 150 || filter > 230 {
		t.Errorf("filter area = %.1f mm^2, Table 4 says 188.4", filter)
	}
	if cams < 70 || cams > 110 {
		t.Errorf("computing CAM area = %.1f mm^2, Table 4 says 90.3", cams)
	}
	total := res.Energy.AreaMM2()
	if total < 240 || total > 360 {
		t.Errorf("total area = %.1f mm^2, Table 4 says 296.6", total)
	}
}

func TestStatsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	cfg.PartitionBases = 1000
	ref := randSeq(rng, 2500)
	a, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads := []dna.Sequence{plantedRead(rng, ref, 50, 1)}
	res := a.SeedReads(reads)
	// Each read is seeded on both strands against every partition.
	want := int64(2 * a.Partitions())
	if res.Stats.ReadsSeeded != want {
		t.Errorf("ReadsSeeded = %d, want %d", res.Stats.ReadsSeeded, want)
	}
	// Aggregate must equal the sum over partitions.
	var sum PartStats
	for i := 0; i < a.Partitions(); i++ {
		sum.add(a.Partition(i).Stats)
	}
	if res.Stats != sum {
		t.Errorf("aggregate stats mismatch:\n res %+v\n sum %+v", res.Stats, sum)
	}
}

func TestAblationThroughputOrdering(t *testing.T) {
	// Filtering and the exact-match prepass must not slow CASA down.
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig()
	cfg.PartitionBases = 2000
	ref := randSeq(rng, 8000)
	var reads []dna.Sequence
	for i := 0; i < 30; i++ {
		reads = append(reads, plantedRead(rng, ref, 60, rng.Intn(2)))
	}
	run := func(mutate func(*Config)) float64 {
		c := cfg
		mutate(&c)
		a, err := New(ref, c)
		if err != nil {
			t.Fatal(err)
		}
		return a.SeedReads(reads).Throughput()
	}
	full := run(func(c *Config) {})
	naive := run(func(c *Config) {
		c.UseFilterTable = false
		c.UseAnalysis = false
		c.ExactMatchPrepass = false
	})
	if full < naive {
		t.Errorf("full CASA (%.0f reads/s) slower than naive (%.0f reads/s)", full, naive)
	}
}
