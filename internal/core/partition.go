package core

import (
	"math/bits"

	"casa/internal/dna"
	"casa/internal/smem"
)

// PartStats counts SMEM-computing activity for one partition. Pivot
// counters are the Fig 15 quantities; CAM counters feed the energy model.
type PartStats struct {
	ReadsSeeded    int64 // reads that entered SeedRead
	ReadsDiscarded int64 // reads with no k-mer hit (dropped before the FIFO)
	ReadsExact     int64 // reads resolved by the exact-match prepass

	PivotsTotal         int64 // pivot slots examined
	PivotsFilteredTable int64 // discarded: k-mer absent from the filter
	PivotsFilteredCRkM  int64 // discarded: Analysis 1 (non-extendable SMEM)
	PivotsFilteredAlign int64 // discarded: Analysis 2 (unaligned k-mer)
	PivotsComputed      int64 // pivots that triggered an RMEM search

	RMEMSearches   int64 // RMEM searches started
	StrideSteps    int64 // full-stride CAM match cycles
	BinSearchSteps int64 // binary-search CAM cycles for SMEM ends
	CAMSearches    int64 // computing-CAM search operations
	CAMRowsEnabled int64 // computing-CAM match-line activations

	ComputeCycles int64 // SMEM-computing phase cycles

	Filter FilterStats // pre-seeding filter activity
}

// add accumulates o into s.
func (s *PartStats) add(o PartStats) {
	s.ReadsSeeded += o.ReadsSeeded
	s.ReadsDiscarded += o.ReadsDiscarded
	s.ReadsExact += o.ReadsExact
	s.PivotsTotal += o.PivotsTotal
	s.PivotsFilteredTable += o.PivotsFilteredTable
	s.PivotsFilteredCRkM += o.PivotsFilteredCRkM
	s.PivotsFilteredAlign += o.PivotsFilteredAlign
	s.PivotsComputed += o.PivotsComputed
	s.RMEMSearches += o.RMEMSearches
	s.StrideSteps += o.StrideSteps
	s.BinSearchSteps += o.BinSearchSteps
	s.CAMSearches += o.CAMSearches
	s.CAMRowsEnabled += o.CAMRowsEnabled
	s.ComputeCycles += o.ComputeCycles
	s.Filter.add(o.Filter)
}

// Partition is one reference partition loaded into a CASA instance: the
// packed reference held by the SMEM computing CAMs plus its pre-seeding
// filter. SeedRead executes Algorithm 1 against it.
type Partition struct {
	cfg    Config
	ref    dna.Sequence
	packed *dna.PackedSeq
	filter *Filter

	// Stats accumulates activity across SeedRead calls.
	Stats PartStats

	scr partScratch
}

// partScratch holds the partition's reusable per-read buffers. All are
// sized to the read (not the reference), only ever grow, and never escape
// a seeding call, so after warm-up the per-read path stops allocating.
// Clone hands each worker a partition with empty scratch of its own.
type partScratch struct {
	kmers   []dna.Kmer        // rolling k-mers of the current read
	inds    []SearchIndicator // per-pivot search indicators
	exists  []bool            // per-pivot filter existence
	extLens []int             // per-hit extension lengths (rmemSearch)
	anchors []int             // exact-match anchor offsets
	aInds   []SearchIndicator // exact-check anchor indicators
}

// growN returns s resized to n entries, reusing capacity when possible.
// Contents are unspecified; callers overwrite (or clear) every entry.
func growN[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// NewPartition builds the filter and CAM image for one partition.
func NewPartition(ref dna.Sequence, cfg Config) (*Partition, error) {
	f, err := BuildFilter(ref, cfg)
	if err != nil {
		return nil, err
	}
	return &Partition{cfg: cfg, ref: ref, packed: dna.Pack(ref), filter: f}, nil
}

// Clone returns a partition sharing this one's immutable state (the
// reference, its packed CAM image and the filter's index arrays) with
// fresh activity counters. Seeding mutates only the counters, so clones
// may seed concurrently without locks.
func (p *Partition) Clone() *Partition {
	return &Partition{cfg: p.cfg, ref: p.ref, packed: p.packed, filter: p.filter.Clone()}
}

// Ref returns the partition's reference sequence.
func (p *Partition) Ref() dna.Sequence { return p.ref }

// Filter exposes the partition's pre-seeding filter.
func (p *Partition) Filter() *Filter { return p.filter }

// Config returns the partition's configuration.
func (p *Partition) Config() Config { return p.cfg }

// SeedRead runs CASA's filter-enabled SMEM seeding (Algorithm 1) for one
// read against this partition, returning the SMEMs (length >= MinSMEM)
// with their hit counts. Strand handling lives in the Accelerator: pass
// the reverse complement separately for the other strand.
func (p *Partition) SeedRead(read dna.Sequence) []smem.Match {
	return p.appendSeed(nil, read, p.cfg.ExactMatchPrepass)
}

// appendSeed is SeedRead appending into dst, with the exact-match prepass
// controlled by the caller: the Accelerator's two-stage flow (§4.3)
// performs the exact check separately (ExactCheck) and runs the SMEM stage
// without it. All intermediate arrays live in the partition's scratch, so
// the steady-state call allocates nothing beyond growing dst.
func (p *Partition) appendSeed(dst []smem.Match, read dna.Sequence, prepass bool) []smem.Match {
	p.Stats.ReadsSeeded++
	L := len(read)
	maxPivot := L - p.cfg.K
	if maxPivot < 0 {
		return dst
	}

	// Pre-seeding phase: fetch the search indicators of every pivot's
	// k-mer (both the pivot checks and the CRkM checks of Algorithm 1 read
	// from this array; the hardware ships it through the FIFO with the
	// read). Without the filter table the naive design skips this phase.
	kmers := p.rollingKmersInto(read)
	inds := growN(p.scr.inds, maxPivot+1)
	exists := growN(p.scr.exists, maxPivot+1)
	p.scr.inds, p.scr.exists = inds, exists
	anyHit := false
	if p.cfg.UseFilterTable {
		for i := 0; i <= maxPivot; i++ {
			inds[i], exists[i] = p.filter.Lookup(kmers[i])
			anyHit = anyHit || exists[i]
		}
		// The filter streams lookups from several reads at once ("three
		// reads (together with the reverse strands) are sent to the
		// pre-seeding filter each time", §4.1), so its cycle cost is
		// computed at batch granularity in the Accelerator: lookups are
		// counted here, divided by the bank width there.
		if !anyHit {
			// The read never reaches the FIFO or the computing CAMs.
			p.Stats.ReadsDiscarded++
			p.Stats.PivotsTotal += int64(maxPivot + 1)
			p.Stats.PivotsFilteredTable += int64(maxPivot + 1)
			return dst
		}
	} else {
		// Clear stale indicators from the previous read: the no-table
		// configuration leaves them untouched (exactMatch still reads them,
		// and must see the zero value the old fresh allocation provided).
		for i := range inds {
			inds[i] = SearchIndicator{}
		}
		for i := 0; i <= maxPivot; i++ {
			exists[i] = true
		}
	}

	// Exact-match pre-processing (§4.3): if the whole read matches the
	// partition, its single SMEM is the read itself and the expensive
	// pivot loop is skipped. Reads shorter than the minimum SMEM length
	// cannot be resolved this way (their full-read match is unreportable).
	if prepass && L >= p.cfg.MinSMEM {
		if hits, ok := p.exactMatch(read, kmers, inds, exists); ok {
			p.Stats.ReadsExact++
			return append(dst, smem.Match{Start: 0, End: L - 1, Hits: hits})
		}
	}

	var last smem.Match
	haveLast := false
	for pivot := 0; pivot <= maxPivot; pivot++ {
		p.Stats.PivotsTotal++
		if !exists[pivot] {
			// Table-filtered pivots never reach the FIFO: only existing
			// pivots ship with the read ("sent to the 512-entry FIFO
			// together with its pivots' search indicators", §4.1), so the
			// computing controller never sees them.
			p.Stats.PivotsFilteredTable++
			continue
		}
		p.Stats.ComputeCycles++ // computing controller examines the pivot
		if haveLast && p.cfg.UseAnalysis {
			y := last.End
			crkmStart := y - p.cfg.K + 2 // start of the closest right k-mer
			if pivot <= crkmStart {
				// Analysis 1: is the last SMEM non-extendable? If its CRkM
				// runs off the read or has no hit, every RMEM from this
				// pivot is contained in the last SMEM.
				if y == L-1 || !exists[crkmStart] {
					p.Stats.PivotsFilteredCRkM++
					continue
				}
				// Analysis 2: shifted-AND alignment test between the
				// pivot's k-mer and the CRkM (over-approximates "aligned",
				// never "unaligned", so discarding is safe).
				if !Aligned(inds[pivot], inds[crkmStart], pivot, crkmStart, p.cfg.Stride) {
					p.Stats.PivotsFilteredAlign++
					continue
				}
			}
		}
		p.Stats.PivotsComputed++
		p.Stats.ComputeCycles++ // controller issues the RMEM search
		m, ok := p.rmemSearch(read, pivot, kmers[pivot], inds[pivot])
		if !ok {
			continue
		}
		// OVERLAP_Check: discard RMEMs fully contained in the last SMEM.
		// RMEM ends are non-decreasing in the pivot, so containment in any
		// previous SMEM reduces to containment in the last one.
		if haveLast && m.End <= last.End {
			continue
		}
		last, haveLast = m, true
		// Candidates arrive with strictly ascending starts, so the output
		// is already canonically sorted; the length filter runs inline.
		if m.Len() >= p.cfg.MinSMEM {
			dst = append(dst, m)
		}
	}
	return dst
}

// rmemSearch performs the unidirectional right-maximal exact match search
// for the k-mer starting at pivot: a padded first search locates the
// k-mer's entries (only the groups named by the indicator are enabled),
// consecutive full-stride matches extend it, and a final binary search
// pins the exact SMEM end (§4.1 "Energy-efficient SMEM Computing CAMs").
func (p *Partition) rmemSearch(read dna.Sequence, pivot int, kmer dna.Kmer, ind SearchIndicator) (smem.Match, bool) {
	positions := p.filter.Positions(kmer)
	p.Stats.RMEMSearches++

	// First search: the padded k-mer query against the enabled groups.
	// groupRows is the match-line cost of a non-entry-gated search: the
	// k-mer's groups when group gating is on, the whole CAM otherwise.
	entries := int64(p.cfg.EntriesPerPartition())
	groupRows := entries
	if p.cfg.GroupGating && p.cfg.UseFilterTable {
		groups := int64(ind.GroupCount())
		if groups == 0 {
			groups = int64(bits.OnesCount64(occupiedGroups(positions, p.cfg)))
		}
		groupRows = entries / int64(p.cfg.Groups) * groups
	}
	p.Stats.CAMSearches++
	p.Stats.ComputeCycles++
	p.Stats.CAMRowsEnabled += groupRows
	if len(positions) == 0 {
		return smem.Match{}, false
	}

	// Behavioural extension: the longest right extension over every hit.
	// The hardware realizes this as stride-by-stride CAM matching; the
	// result is identical because a stride matches iff the reference
	// extends the read at that hit.
	best := 0
	extLens := growN(p.scr.extLens, len(positions))
	p.scr.extLens = extLens
	for i, pos := range positions {
		ext := p.lce(read, pivot+p.cfg.K, int(pos)+p.cfg.K)
		extLens[i] = p.cfg.K + ext
		if extLens[i] > best {
			best = extLens[i]
		}
	}
	hits := 0
	for _, l := range extLens {
		if l == best {
			hits++
		}
	}

	// Cost model: full-stride match cycles. Stride t (1-based) is matched
	// by the entries that survived stride t-1; with entry gating only the
	// successors of matched entries are enabled, otherwise the whole
	// enabled group stays on.
	fullStrides := best / p.cfg.Stride
	for t := 1; t <= fullStrides; t++ {
		p.Stats.CAMSearches++
		p.Stats.StrideSteps++
		p.Stats.ComputeCycles++
		if p.cfg.EntryGating {
			survivors := int64(0)
			for _, l := range extLens {
				if l >= t*p.cfg.Stride {
					survivors++
				}
			}
			p.Stats.CAMRowsEnabled += survivors
		} else {
			p.Stats.CAMRowsEnabled += groupRows
		}
	}
	// Binary search for the exact end inside the first mismatched stride,
	// unless the match ran to the end of the read.
	if pivot+best < len(read) {
		steps := int64(bits.Len(uint(p.cfg.Stride)))
		p.Stats.BinSearchSteps += steps
		p.Stats.CAMSearches += steps
		p.Stats.ComputeCycles += steps
		if p.cfg.EntryGating {
			p.Stats.CAMRowsEnabled += steps * int64(hits)
		} else {
			p.Stats.CAMRowsEnabled += steps * groupRows
		}
	}
	return smem.Match{Start: pivot, End: pivot + best - 1, Hits: hits}, true
}

// exactMatch implements the §4.3 pre-processing: gather the indicators of
// non-overlapping k-mers across the read, check that they can be mutually
// aligned (shifted-AND, §4.2's machinery), and only then attempt the full
// whole-read CAM match. Aborts at the first unaligned k-mer or mismatch.
func (p *Partition) exactMatch(read dna.Sequence, kmers []dna.Kmer, inds []SearchIndicator, exists []bool) (hits int, ok bool) {
	L := len(read)
	maxPivot := L - p.cfg.K
	anchors := p.anchorOffsets(maxPivot)
	for _, a := range anchors {
		p.Stats.ComputeCycles++ // controller gathers and checks one anchor
		if !exists[a] {
			return 0, false
		}
		if a > 0 && !Aligned(inds[0], inds[a], 0, a, p.cfg.Stride) {
			// The anchor cannot be at distance a from the first k-mer in
			// any CAM alignment: the read cannot match exactly.
			return 0, false
		}
	}

	// Whole-read match: extend every hit of the first k-mer.
	positions := p.filter.Positions(kmers[0])
	strides := (L + p.cfg.Stride - 1) / p.cfg.Stride
	p.Stats.CAMSearches += int64(strides)
	p.Stats.ComputeCycles += int64(strides)
	if p.cfg.GroupGating {
		p.Stats.CAMRowsEnabled += int64(strides) * int64(len(positions))
	} else {
		p.Stats.CAMRowsEnabled += int64(strides) * int64(p.cfg.EntriesPerPartition())
	}
	for _, pos := range positions {
		if p.lce(read, p.cfg.K, int(pos)+p.cfg.K) >= L-p.cfg.K {
			hits++
		}
	}
	return hits, hits > 0
}

// lce returns the longest common extension: the number of bases for which
// read[ri:] equals ref[pi:], bounded by both lengths.
func (p *Partition) lce(read dna.Sequence, ri, pi int) int {
	n := 0
	for ri+n < len(read) && pi+n < len(p.ref) && read[ri+n] == p.ref[pi+n] {
		n++
	}
	return n
}

// ExactCheck is the standalone exact-match test of the two-stage flow
// (§4.3): it fetches search indicators for a handful of non-overlapping
// anchor k-mers only (not every pivot), checks that the anchors can be
// mutually aligned with the shifted-AND test, and verifies candidates by
// whole-read CAM matching. Its filter cost is therefore ~L/k lookups per
// read instead of the L-k+1 of a full pre-seeding pass — the saving that
// lets the exact-match stage sweep all partitions cheaply.
func (p *Partition) ExactCheck(read dna.Sequence) (hits int, ok bool) {
	L := len(read)
	maxPivot := L - p.cfg.K
	if maxPivot < 0 {
		return 0, false
	}
	anchors := p.anchorOffsets(maxPivot)
	inds := growN(p.scr.aInds, len(anchors))
	p.scr.aInds = inds
	for ai, a := range anchors {
		p.Stats.ComputeCycles++
		ind, exists := p.filter.Lookup(dna.PackKmer(read, a, p.cfg.K))
		if !exists {
			return 0, false
		}
		inds[ai] = ind
		if ai > 0 && !Aligned(inds[0], ind, 0, a, p.cfg.Stride) {
			return 0, false
		}
	}
	// Whole-read match: extend every hit of the first anchor.
	positions := p.filter.Positions(dna.PackKmer(read, 0, p.cfg.K))
	strides := (L + p.cfg.Stride - 1) / p.cfg.Stride
	p.Stats.CAMSearches += int64(strides)
	p.Stats.ComputeCycles += int64(strides)
	if p.cfg.GroupGating {
		p.Stats.CAMRowsEnabled += int64(strides) * int64(len(positions))
	} else {
		p.Stats.CAMRowsEnabled += int64(strides) * int64(p.cfg.EntriesPerPartition())
	}
	for _, pos := range positions {
		if p.lce(read, p.cfg.K, int(pos)+p.cfg.K) >= L-p.cfg.K {
			hits++
		}
	}
	if hits > 0 {
		p.Stats.ReadsExact++
		return hits, true
	}
	return 0, false
}

// anchorOffsets fills the scratch anchor list with the exact-match anchor
// offsets: non-overlapping k-mers at 0, K, 2K, ..., plus the final k-mer so
// the tail is covered.
func (p *Partition) anchorOffsets(maxPivot int) []int {
	anchors := p.scr.anchors[:0]
	for off := 0; off <= maxPivot; off += p.cfg.K {
		anchors = append(anchors, off)
	}
	if anchors[len(anchors)-1] != maxPivot {
		anchors = append(anchors, maxPivot)
	}
	p.scr.anchors = anchors
	return anchors
}

// rollingKmersInto packs every k-mer of read in one pass (incremental shift
// instead of repacking k bases per pivot), into the partition's scratch.
func (p *Partition) rollingKmersInto(read dna.Sequence) []dna.Kmer {
	k := p.cfg.K
	n := len(read) - k + 1
	if n <= 0 {
		return nil
	}
	out := growN(p.scr.kmers, n)
	p.scr.kmers = out
	mask := dna.Kmer(1)<<(2*uint(k)) - 1
	var v dna.Kmer
	for i, b := range read {
		v = (v<<2 | dna.Kmer(b)) & mask
		if i >= k-1 {
			out[i-k+1] = v
		}
	}
	return out
}

// occupiedGroups returns the group mask actually covering the positions,
// used when an indicator is unavailable (naive mode energy accounting).
func occupiedGroups(positions []int32, cfg Config) uint64 {
	var mask uint64
	for _, pos := range positions {
		mask |= 1 << uint((int(pos)/cfg.Stride)%cfg.Groups)
	}
	return mask
}
