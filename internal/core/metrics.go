package core

import "casa/internal/metrics"

// Engine is the metric-name prefix for the CASA accelerator.
const Engine = "casa"

// publishPartStats adds one aggregated PartStats into the casa/* counters.
func publishPartStats(reg *metrics.Registry, s PartStats) {
	reg.Counter("casa/reads/seeded").Add(s.ReadsSeeded)
	reg.Counter("casa/reads/discarded").Add(s.ReadsDiscarded)
	reg.Counter("casa/reads/exact").Add(s.ReadsExact)

	reg.Counter("casa/pivots/total").Add(s.PivotsTotal)
	reg.Counter("casa/pivots/filtered_table").Add(s.PivotsFilteredTable)
	reg.Counter("casa/pivots/filtered_crkm").Add(s.PivotsFilteredCRkM)
	reg.Counter("casa/pivots/filtered_align").Add(s.PivotsFilteredAlign)
	reg.Counter("casa/pivots/computed").Add(s.PivotsComputed)

	reg.Counter("casa/smem/rmem_searches").Add(s.RMEMSearches)
	reg.Counter("casa/smem/stride_steps").Add(s.StrideSteps)
	reg.Counter("casa/smem/binsearch_steps").Add(s.BinSearchSteps)
	reg.Counter("casa/smem/cam_searches").Add(s.CAMSearches)
	reg.Counter("casa/smem/cam_rows_enabled").Add(s.CAMRowsEnabled)
	reg.Counter("casa/smem/compute_cycles").Add(s.ComputeCycles)

	reg.Counter("casa/filter/lookups").Add(s.Filter.Lookups)
	reg.Counter("casa/filter/hits").Add(s.Filter.Hits)
	reg.Counter("casa/filter/mini_accesses").Add(s.Filter.MiniAccesses)
	reg.Counter("casa/filter/tag_searches").Add(s.Filter.TagSearches)
	reg.Counter("casa/filter/tag_rows_enabled").Add(s.Filter.TagRowsEnabled)
	reg.Counter("casa/filter/data_accesses").Add(s.Filter.DataAccesses)
}

// PublishMetrics adds this shard's additive activity counters into reg.
// Safe to call from the worker that owns the activity; shard registries
// merged in any order equal the sequential run's registry.
func (act *Activity) PublishMetrics(reg *metrics.Registry) {
	var s PartStats
	for _, p := range act.Stage1 {
		s.add(p)
	}
	for _, p := range act.Stage2 {
		s.add(p)
	}
	publishPartStats(reg, s)
	reg.Counter("casa/dram/read_stream_bytes").Add(act.ReadBytes)
}

// PublishModelMetrics publishes the finalized model outputs (gauges) of a
// reduced Result: cycles, time, throughput, DRAM traffic and energy.
// Call once per run, after Reduce.
func (res *Result) PublishModelMetrics(reg *metrics.Registry) {
	reg.Gauge("casa/model/reads").Set(float64(len(res.Reads)))
	reg.Gauge("casa/model/cycles").Set(float64(res.Cycles))
	reg.Gauge("casa/model/seconds").Set(res.Seconds)
	reg.Gauge("casa/model/throughput_reads_per_s").Set(res.Throughput())
	reg.Gauge("casa/model/reads_per_mj").Set(res.ReadsPerMJ())
	res.DRAM.PublishMetrics(reg, Engine)
	res.Energy.PublishMetrics(reg, Engine)
}

// PublishMetrics publishes both the aggregated activity counters and the
// model gauges of a sequential (single-shard) run.
func (res *Result) PublishMetrics(reg *metrics.Registry) {
	publishPartStats(reg, res.Stats)
	reg.Counter("casa/dram/read_stream_bytes").Add(res.DRAM.BytesRead)
	res.PublishModelMetrics(reg)
}
