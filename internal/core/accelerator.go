package core

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/dram"
	"casa/internal/energy"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Accelerator is a full CASA instance: the reference split into partitions
// (each with its pre-seeding filter and computing-CAM image), the DRAM
// subsystem streaming read batches, and the power/area model. Reads are
// seeded against every partition in turn, exactly as the hardware
// timeshares its on-chip memory across the genome ("the same batch of
// reads should conduct such an expensive process repeatedly ... in the
// human genome due to the limited on-chip memory", §2.2).
type Accelerator struct {
	cfg     Config
	overlap int
	parts   []*Partition
	starts  []int // global offset of each partition
	refLen  int

	scr accScratch
}

// accScratch holds the accelerator's reusable per-read buffers: the
// reverse complement, the per-strand candidate accumulators, and the merge
// destination. Together with the per-partition scratch this makes the
// steady-state per-read sweep allocation-free; Clone hands each worker an
// accelerator with empty scratch of its own, and nothing scratch-backed
// survives past the next read (retained results are exact-size copies).
type accScratch struct {
	rc     dna.Sequence
	strand [2][]smem.Match
	merged []smem.Match
}

// DefaultPartitionOverlap is the number of bases adjacent partitions
// share so that no exact match of up to that length is lost at a cut.
// Matches the 101 bp read length of the evaluation datasets.
const DefaultPartitionOverlap = 100

// New splits ref into partitions of cfg.PartitionBases (overlapping by
// DefaultPartitionOverlap) and builds each partition's filter.
func New(ref dna.Sequence, cfg Config) (*Accelerator, error) {
	return NewWithOverlap(ref, cfg, DefaultPartitionOverlap)
}

// NewWithOverlap is New with an explicit partition overlap.
func NewWithOverlap(ref dna.Sequence, cfg Config, overlap int) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if overlap < 0 || overlap >= cfg.PartitionBases {
		return nil, fmt.Errorf("core: overlap %d out of range [0, %d)", overlap, cfg.PartitionBases)
	}
	a := &Accelerator{cfg: cfg, overlap: overlap, refLen: len(ref)}
	step := cfg.PartitionBases - overlap
	for start := 0; ; start += step {
		end := min(start+cfg.PartitionBases, len(ref))
		p, err := NewPartition(ref[start:end], cfg)
		if err != nil {
			return nil, err
		}
		a.parts = append(a.parts, p)
		a.starts = append(a.starts, start)
		if end == len(ref) {
			break
		}
	}
	return a, nil
}

// Clone returns an accelerator sharing this one's immutable index state
// (reference slices, packed images, filter arrays) but with fresh activity
// counters. Clones are the unit of parallelism for batch seeding: each
// worker owns one clone, so the hot path needs no locking, and their
// Activities reduce to totals bit-identical to a sequential run. Cloning
// is O(partitions), not O(reference): no index data is copied.
func (a *Accelerator) Clone() *Accelerator {
	c := &Accelerator{cfg: a.cfg, overlap: a.overlap, starts: a.starts, refLen: a.refLen}
	c.parts = make([]*Partition, len(a.parts))
	for i, p := range a.parts {
		c.parts[i] = p.Clone()
	}
	return c
}

// Partitions returns the number of reference partitions.
func (a *Accelerator) Partitions() int { return len(a.parts) }

// Partition returns partition i for inspection.
func (a *Accelerator) Partition(i int) *Partition { return a.parts[i] }

// Config returns the accelerator configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// ReadResult holds the seeding output for one read: the merged SMEM sets
// for the forward sequence and its reverse complement.
type ReadResult struct {
	Forward []smem.Match
	Reverse []smem.Match
}

// Result is the outcome of seeding a read batch.
type Result struct {
	Reads []ReadResult

	Stats   PartStats     // aggregated activity over all partitions
	Seconds float64       // modelled seeding time
	Cycles  int64         // modelled controller cycles (sum over partitions)
	DRAM    *dram.Traffic // read-streaming traffic
	Energy  energy.Report // per-component energy/power/area
}

// Throughput returns reads per second.
func (r *Result) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(len(r.Reads)) / r.Seconds
}

// ReadsPerMJ returns the paper's energy-efficiency metric (Fig 13b).
func (r *Result) ReadsPerMJ() float64 {
	j := r.Energy.TotalJ()
	if j <= 0 {
		return 0
	}
	return float64(len(r.Reads)) / (j * 1e3)
}

// Activity is the raw, additive outcome of seeding a batch of reads: the
// per-read SMEM results plus the per-partition, per-stage activity deltas
// and the DRAM read-stream bytes. Every counter is a per-read sum, so the
// Activities of disjoint sub-batches reduce (Reduce) to a Result whose
// simulated cycles, stats and energy are bit-identical to one sequential
// run over the concatenated batch — the invariant the parallel batch
// runner (internal/batch) relies on. The cycle conversion (stageCycles)
// applies ceiling divisions per partition pass, so it must run on the
// summed deltas, never per sub-batch; Activity keeps the deltas raw for
// exactly that reason.
type Activity struct {
	Reads     []ReadResult
	Stage1    []PartStats // per-partition exact-match-stage deltas
	Stage2    []PartStats // per-partition SMEM-stage deltas
	ReadBytes int64       // read-stream bytes fetched from DRAM
}

// SeedReads runs the full seeding flow for a batch of reads and returns
// the finalized Result. It is exactly Reduce(Seed(reads)): use Seed and
// Reduce directly to split a batch across worker-owned Clones (see
// internal/batch) without perturbing the simulated totals.
func (a *Accelerator) SeedReads(reads []dna.Sequence) *Result {
	return a.Reduce(a.Seed(reads))
}

// Seed runs the paper's two-stage seeding flow (§4.3) for a batch of
// reads and returns the raw activity:
//
//  1. Exact-match stage: every partition is swept with the cheap
//     anchor-based ExactCheck; a strand that matches exactly retires at
//     its first matching partition (its single SMEM is the whole read),
//     so it never costs another partition pass.
//  2. SMEM stage: the remaining strands run Algorithm 1 against every
//     partition, with per-partition SMEM sets merged per strand.
//
// A read streams from DRAM for a partition pass while at least one of its
// strands is still live. Seed mutates only this accelerator's partition
// counters: concurrent calls on distinct Clones are safe.
func (a *Accelerator) Seed(reads []dna.Sequence) *Activity {
	return a.SeedTrace(reads, nil, 0)
}

// SeedTrace is Seed with cycle-domain tracing: when tb is non-nil, every
// read gets a two-level span timeline — one span per stage on the "exact"
// and "smem" tracks, plus per-partition sub-spans on the "pNN" tracks —
// with read-local timestamps in modelled controller cycles. Reads are
// keyed base+i, so batch shards pass their shard offset and the merged
// trace is worker-count independent.
//
// Per-read cycles apply stageCycles to the read's own partition deltas;
// because the conversion takes ceilings over banked lanes, per-read cycles
// are an attribution of the batch total, not an exact decomposition (the
// Result's Cycles still come from Reduce over the summed deltas).
//
// Reads are mutually independent (exact-match retirement only couples a
// read's own two strands), so processing read-outer here yields an
// Activity bit-identical to a partition-outer sweep.
func (a *Accelerator) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) *Activity {
	act := &Activity{
		Reads:  make([]ReadResult, len(reads)),
		Stage1: make([]PartStats, len(a.parts)),
		Stage2: make([]PartStats, len(a.parts)),
	}

	var tracks []string
	if tb != nil {
		tracks = make([]string, len(a.parts))
		for pi := range a.parts {
			tracks[pi] = fmt.Sprintf("p%02d", pi)
		}
	}

	for i, r := range reads {
		a.seedStrands(r, act, tb, tracks, base+i)
		a.scr.merged = appendMergedSMEMs(a.scr.merged[:0], a.scr.strand[0])
		fwd := smem.Retain(a.scr.merged)
		a.scr.merged = appendMergedSMEMs(a.scr.merged[:0], a.scr.strand[1])
		act.Reads[i] = ReadResult{Forward: fwd, Reverse: smem.Retain(a.scr.merged)}
	}
	return act
}

// seedStrands runs the two-stage partition sweep for one read's strands
// (strand 0 = forward, strand 1 = reverse complement), leaving the
// unmerged per-strand candidate sets in a.scr.strand — valid until the
// next call. act, when non-nil, accumulates the per-partition stage deltas
// and DRAM bytes; tb, when non-nil, receives the per-read cycle spans
// keyed readKey.
func (a *Accelerator) seedStrands(read dna.Sequence, act *Activity, tb *trace.Buffer, tracks []string, readKey int) {
	a.scr.rc = read.AppendReverseComplement(a.scr.rc[:0])
	seqs := [2]dna.Sequence{read, a.scr.rc}
	readBytes := int64((len(read) + 3) / 4) // 2-bit packed
	var retired [2]bool
	strand := [2][]smem.Match{a.scr.strand[0][:0], a.scr.strand[1][:0]}
	var cursor, stage1Total int64

	// Stage 1: exact-match sweep with retirement. The hardware scans
	// the partitions sequentially; a read streams from DRAM for a
	// partition pass while at least one of its strands is live, and a
	// resolved read retires BOTH strands (its exact placement is known,
	// so the opposite strand reports no SMEMs — the aligner already has
	// the position) and skips every later partition.
	if a.cfg.ExactMatchPrepass {
		for pi, p := range a.parts {
			if retired[0] && retired[1] {
				break
			}
			if act != nil {
				act.ReadBytes += readBytes
			}
			before := p.Stats
			for s := 0; s < 2; s++ {
				if retired[s] || len(seqs[s]) < a.cfg.MinSMEM {
					continue
				}
				if hits, ok := p.ExactCheck(seqs[s]); ok {
					retired[s] = true
					retired[s^1] = true
					strand[s] = append(strand[s], smem.Match{Start: 0, End: len(seqs[s]) - 1, Hits: hits})
				}
			}
			d := diffStats(p.Stats, before)
			if act != nil {
				act.Stage1[pi].add(d)
			}
			if tb != nil {
				cyc := stageCycles(d, a.cfg)
				if cyc > 0 {
					tb.Emit(readKey, tracks[pi], "exact", cursor, cyc)
				}
				cursor += cyc
			}
		}
		stage1Total = cursor
		tb.Emit(readKey, "exact", "exact", 0, stage1Total)
	}

	// Stage 2: full SMEM computing for the remaining strands, again
	// sweeping the partitions in order. Read streaming: a read fetched
	// for a partition pass serves both its exact check and its SMEM
	// computation, so with the prepass on, stage 1 already charged this
	// read's bytes; without it, the SMEM stage is the only fetch.
	for pi, p := range a.parts {
		if retired[0] && retired[1] {
			break
		}
		if !a.cfg.ExactMatchPrepass && act != nil {
			act.ReadBytes += readBytes
		}
		before := p.Stats
		for s := 0; s < 2; s++ {
			if !retired[s] {
				strand[s] = p.appendSeed(strand[s], seqs[s], false)
			}
		}
		d := diffStats(p.Stats, before)
		if act != nil {
			act.Stage2[pi].add(d)
		}
		if tb != nil {
			cyc := stageCycles(d, a.cfg)
			if cyc > 0 {
				tb.Emit(readKey, tracks[pi], "smem", cursor, cyc)
			}
			cursor += cyc
		}
	}
	tb.Emit(readKey, "smem", "smem", stage1Total, cursor-stage1Total)
	a.scr.strand = strand
}

// SeedReadInto seeds one read on both strands into the caller-owned
// buffers, reusing their backing arrays (fwd and rev are expected to be
// resliced to length zero). Together with the per-partition scratch this
// is the allocation-free steady-state path the allocation regression suite
// pins; partition activity counters still accumulate exactly as in Seed.
func (a *Accelerator) SeedReadInto(fwd, rev []smem.Match, read dna.Sequence) ([]smem.Match, []smem.Match) {
	a.seedStrands(read, nil, nil, nil, 0)
	fwd = appendMergedSMEMs(fwd, a.scr.strand[0])
	rev = appendMergedSMEMs(rev, a.scr.strand[1])
	return fwd, rev
}

// Reduce folds the Activities of disjoint sub-batches (in input order)
// into one finalized Result: per-read results are concatenated, the
// per-partition deltas are summed before the cycle conversion, and time,
// DRAM traffic and energy are modelled once over the totals. Reducing N
// shard Activities yields the same Result as one sequential Seed over the
// whole batch, regardless of how the reads were sharded.
func (a *Accelerator) Reduce(acts ...*Activity) *Result {
	res := &Result{DRAM: dram.NewTraffic(dram.CASAConfig())}
	stage1 := make([]PartStats, len(a.parts))
	stage2 := make([]PartStats, len(a.parts))
	var readBytes int64
	for _, act := range acts {
		res.Reads = append(res.Reads, act.Reads...)
		for pi := range a.parts {
			stage1[pi].add(act.Stage1[pi])
			stage2[pi].add(act.Stage2[pi])
		}
		readBytes += act.ReadBytes
	}
	res.DRAM.Read(readBytes)

	var totalCycles int64
	for pi := range a.parts {
		// Per-partition phase overlap: the pre-seeding filter and the SMEM
		// computing unit pipeline across read batches, so a partition pass
		// costs the longer of the two phases (Fig 9).
		totalCycles += stageCycles(stage1[pi], a.cfg)
		totalCycles += stageCycles(stage2[pi], a.cfg)
		res.Stats.add(stage1[pi])
		res.Stats.add(stage2[pi])
	}

	res.Cycles = totalCycles
	res.Seconds = float64(totalCycles) / a.cfg.ClockHz
	if d := res.DRAM.MinSeconds(); d > res.Seconds {
		res.Seconds = d
	}
	res.Energy = a.energyReport(res)
	return res
}

// ActivityCycles converts one Activity's partition deltas into modelled
// controller cycles, the same per-partition conversion Reduce applies to
// the summed deltas. Because stageCycles takes ceilings over banked
// lanes, per-shard cycles summed over a batch can differ from the
// reduced Result.Cycles by rounding: ActivityCycles exists for live
// progress attribution (internal/progress), where per-shard monotone
// accumulation matters; the Result stays the quotable number. For a
// fixed shard grain the per-shard sum is deterministic at any worker
// count.
func (a *Accelerator) ActivityCycles(act *Activity) int64 {
	var total int64
	for pi := range a.parts {
		total += stageCycles(act.Stage1[pi], a.cfg)
		total += stageCycles(act.Stage2[pi], a.cfg)
	}
	return total
}

// stageCycles converts one partition pass's activity delta into cycles:
// the longer of the banked filter phase and the CAM-lane compute phase.
func stageCycles(delta PartStats, cfg Config) int64 {
	computeCycles := (delta.ComputeCycles + int64(cfg.ComputeCAMs) - 1) / int64(cfg.ComputeCAMs)
	filterCycles := (delta.Filter.Lookups + int64(cfg.FilterBanks) - 1) / int64(cfg.FilterBanks)
	return max(filterCycles, computeCycles)
}

// HitPositions resolves the global reference positions of an SMEM on a
// read: the occurrences of read[m.Start..m.End], collected across the
// partitions (duplicates from overlap regions removed), up to max
// positions (max <= 0 means all). This is the "location of hits" the
// hardware forwards to the SeedEx machines with each SMEM (§3).
func (a *Accelerator) HitPositions(read dna.Sequence, m smem.Match, max int) []int32 {
	if m.Start < 0 || m.End >= len(read) || m.Len() < a.cfg.K {
		return nil
	}
	kmer := dna.PackKmer(read, m.Start, a.cfg.K)
	seen := make(map[int32]struct{})
	var out []int32
	for pi, p := range a.parts {
		base := int32(a.starts[pi])
		for _, pos := range p.filter.Positions(kmer) {
			if p.lce(read, m.Start+a.cfg.K, int(pos)+a.cfg.K) < m.Len()-a.cfg.K {
				continue
			}
			g := base + pos
			if _, dup := seen[g]; dup {
				continue
			}
			seen[g] = struct{}{}
			out = append(out, g)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// MergeSMEMs merges per-partition SMEM sets for one read strand: exact
// duplicate intervals have their hits summed (the same match found in the
// overlap region of two partitions), and intervals contained in a longer
// reported interval are dropped. With a partition overlap of at least the
// read length, the result equals the whole-reference SMEM set.
func MergeSMEMs(ms []smem.Match) []smem.Match {
	if len(ms) == 0 {
		return nil
	}
	return appendMergedSMEMs(nil, ms)
}

// appendMergedSMEMs is MergeSMEMs appending into dst, reordering and
// compacting ms in place. After the cover-order sort (start ascending, end
// descending) duplicate intervals are adjacent — their hits sum — and an
// interval is strictly contained in another exactly when an earlier entry's
// end reaches its end, so a linear scan with a running maximum replaces the
// quadratic pairwise check. Survivors have strictly increasing starts and
// ends, i.e. they are already canonically sorted.
func appendMergedSMEMs(dst, ms []smem.Match) []smem.Match {
	smem.SortCover(ms)
	w := 0
	for _, m := range ms {
		if w > 0 && ms[w-1].Start == m.Start && ms[w-1].End == m.End {
			ms[w-1].Hits += m.Hits
			continue
		}
		ms[w] = m
		w++
	}
	maxEnd := -1
	for _, m := range ms[:w] {
		if m.End <= maxEnd {
			continue
		}
		maxEnd = m.End
		dst = append(dst, m)
	}
	return dst
}

// energyReport converts accumulated activity into the Table 4 style
// power/area breakdown.
func (a *Accelerator) energyReport(res *Result) energy.Report {
	m := energy.NewMeter()
	cfg := a.cfg

	// Macro counts from the configured capacities (bits / macro bits).
	miniBits := int64(dna.NumKmers(cfg.M)) * 48
	tagBits := int64(cfg.PartitionBases) * 18
	dataBits := int64(cfg.PartitionBases) * int64(cfg.IndicatorBits())
	camBits := cfg.ComputeCAMBytes() * 8

	mini, tag, data, cam := energy.SRAM256x24, energy.BCAM256x72, energy.SRAM256x60, energy.BCAM256x80
	m.RegisterArrays("pre-seeding filter: mini index", mini, macros(miniBits, mini))
	m.RegisterArrays("pre-seeding filter: tag array", tag, macros(tagBits, tag))
	m.RegisterArrays("pre-seeding filter: data array", data, macros(dataBits, data))
	m.RegisterArrays("computing CAMs", cam, macros(camBits, cam))

	// Controllers: synthesized blocks; area and average active power come
	// from the paper's Design Compiler results (Table 4) since we cannot
	// synthesize here. Modelled as constant power while seeding runs.
	m.Register("pre-seeding controller", 4.102, 13.764)
	m.Register("computing controllers", 0.354, 4.049)

	st := res.Stats
	// Mini index: one 48-bit read touches two 24-bit banks.
	m.Charge("pre-seeding filter: mini index", st.Filter.MiniAccesses*2, mini.EnergyPJ)
	// Tag array: four 18-bit 9-mers share a 72-bit word, so four enabled
	// tag entries cost one physical row; per-row energy is E/256.
	m.Charge("pre-seeding filter: tag array", (st.Filter.TagRowsEnabled+3)/4, tag.EnergyPJ/256)
	m.Charge("pre-seeding filter: data array", st.Filter.DataAccesses, data.EnergyPJ)
	m.Charge("computing CAMs", st.CAMRowsEnabled, cam.EnergyPJ/256)

	// DRAM + PHY.
	m.ChargeJ("DDR4", res.DRAM.DynamicJ())
	m.Register("DDR4", res.DRAM.BackgroundW(), 0)
	m.Register("DRAM controller PHY", res.DRAM.Config().PHYW, 0)

	return m.Report(res.Seconds)
}

// macros returns the number of memory macros needed for the given bits.
func macros(bits int64, model energy.ArrayModel) int {
	per := int64(model.Rows * model.Bits)
	return int((bits + per - 1) / per)
}

func diffStats(after, before PartStats) PartStats {
	d := after
	d.ReadsSeeded -= before.ReadsSeeded
	d.ReadsDiscarded -= before.ReadsDiscarded
	d.ReadsExact -= before.ReadsExact
	d.PivotsTotal -= before.PivotsTotal
	d.PivotsFilteredTable -= before.PivotsFilteredTable
	d.PivotsFilteredCRkM -= before.PivotsFilteredCRkM
	d.PivotsFilteredAlign -= before.PivotsFilteredAlign
	d.PivotsComputed -= before.PivotsComputed
	d.RMEMSearches -= before.RMEMSearches
	d.StrideSteps -= before.StrideSteps
	d.BinSearchSteps -= before.BinSearchSteps
	d.CAMSearches -= before.CAMSearches
	d.CAMRowsEnabled -= before.CAMRowsEnabled
	d.ComputeCycles -= before.ComputeCycles
	d.Filter.Lookups -= before.Filter.Lookups
	d.Filter.Hits -= before.Filter.Hits
	d.Filter.MiniAccesses -= before.Filter.MiniAccesses
	d.Filter.TagSearches -= before.Filter.TagSearches
	d.Filter.TagRowsEnabled -= before.Filter.TagRowsEnabled
	d.Filter.DataAccesses -= before.Filter.DataAccesses
	return d
}
