package core

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultConfigPaperDimensions(t *testing.T) {
	c := DefaultConfig()
	if c.K != 19 || c.M != 10 || c.MinSMEM != 19 || c.Stride != 40 ||
		c.Groups != 20 || c.ComputeCAMs != 10 {
		t.Errorf("paper dimensions drifted: %+v", c)
	}
	if c.IndicatorBits() != 60 {
		t.Errorf("search indicator = %d bits, want 60", c.IndicatorBits())
	}
}

func TestOnChipBudgetMatchesPaper(t *testing.T) {
	// §1/§4.1: 45 MB pre-seeding filter + 10 MB computing CAMs = 55 MB.
	c := DefaultConfig()
	mb := func(b int64) float64 { return float64(b) / (1 << 20) }
	if got := mb(c.FilterBytes()); got < 44 || got > 46 {
		t.Errorf("filter = %.2f MB, want ~45", got)
	}
	if got := mb(c.ComputeCAMBytes()); got != 10 {
		t.Errorf("computing CAMs = %.2f MB, want 10", got)
	}
	if got := mb(c.OnChipBytes()); got < 54 || got > 56 {
		t.Errorf("on-chip = %.2f MB, want ~55", got)
	}
}

func TestFilterBytesComponents(t *testing.T) {
	// Fig 11: mini index 6MB, tag array 9MB, data array 30MB.
	c := DefaultConfig()
	mini := int64(1<<20) * 48 / 8
	tag := int64(c.PartitionBases) * 18 / 8
	data := int64(c.PartitionBases) * 60 / 8
	if mini != 6<<20 {
		t.Errorf("mini index = %d, want 6MB", mini)
	}
	if tag != 9<<20 {
		t.Errorf("tag array = %d, want 9MB", tag)
	}
	if data != 30<<20 {
		t.Errorf("data array = %d, want 30MB", data)
	}
	if c.FilterBytes() != mini+tag+data {
		t.Errorf("FilterBytes = %d, want %d", c.FilterBytes(), mini+tag+data)
	}
}

func TestEntriesPerPartition(t *testing.T) {
	c := DefaultConfig()
	if got := c.EntriesPerPartition(); got != (4<<20)/40+1 && got != (4<<20+39)/40 {
		t.Errorf("EntriesPerPartition = %d", got)
	}
	c.PartitionBases = 80
	if got := c.EntriesPerPartition(); got != 2 {
		t.Errorf("80 bases / stride 40 = %d entries, want 2", got)
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.K = 32 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.M = c.K },
		func(c *Config) { c.MinSMEM = c.K - 1 },
		func(c *Config) { c.Stride = 0 },
		func(c *Config) { c.Stride = 65 },
		func(c *Config) { c.Groups = 0 },
		func(c *Config) { c.ComputeCAMs = 0 },
		func(c *Config) { c.PartitionBases = 10 },
		func(c *Config) { c.FilterBanks = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.UseFilterTable = false }, // analyses still on
	}
	for i, f := range mutate {
		c := DefaultConfig()
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestNaiveConfigValid(t *testing.T) {
	c := DefaultConfig()
	c.UseFilterTable = false
	c.UseAnalysis = false
	if err := c.Validate(); err != nil {
		t.Errorf("naive mode invalid: %v", err)
	}
}
