package core

import "math/bits"

// SearchIndicator is the per-k-mer word stored in the pre-seeding filter's
// data array (§3, "search indicator ... a tuple that combines the start
// position and the group indicator of a k-mer"). StartMask bit s is set
// when some occurrence x of the k-mer has x mod Stride == s (how many X
// bases to pad, §3 "Non-overlapped Storage"); GroupMask bit g is set when
// some occurrence lives in computing-CAM group g. With the default
// Stride=40 and Groups=20 the indicator is the paper's 60-bit data-array
// word.
type SearchIndicator struct {
	StartMask uint64 // Stride bits: start offsets within a CAM entry
	GroupMask uint64 // Groups bits: CAM groups containing the k-mer
}

// Empty reports whether the k-mer has no recorded occurrence.
func (s SearchIndicator) Empty() bool { return s.StartMask == 0 && s.GroupMask == 0 }

// StartCount returns the number of distinct start offsets.
func (s SearchIndicator) StartCount() int { return bits.OnesCount64(s.StartMask) }

// GroupCount returns the number of CAM groups to enable.
func (s SearchIndicator) GroupCount() int { return bits.OnesCount64(s.GroupMask) }

// addOccurrence records an occurrence at partition position x.
func (s SearchIndicator) addOccurrence(x, stride, groups int) SearchIndicator {
	s.StartMask |= 1 << uint(x%stride)
	s.GroupMask |= 1 << uint((x/stride)%groups)
	return s
}

// rotateMask rotates a stride-bit mask left by d (mod stride).
func rotateMask(mask uint64, d, stride int) uint64 {
	d = ((d % stride) + stride) % stride
	full := uint64(1)<<uint(stride) - 1
	return ((mask << uint(d)) | (mask >> uint(stride-d))) & full
}

// Aligned implements the paper's Analysis 2 alignment test (§4.2) between
// the k-mer starting at pivot z and the CRkM starting at read index
// crkmStart: the pair is *possibly aligned* iff some occurrence offset a of
// z's k-mer and some offset b of the CRkM satisfy
//
//	(b - a) mod stride == (crkmStart - z) mod stride.
//
// This is the necessary condition |b_j - a_i| mod s == (d_r) mod s the
// CAM architecture evaluates with a shifted-AND on the start masks; it may
// over-approximate (report aligned for a truly unaligned pair), never the
// reverse, so discarding unaligned pivots is always safe.
func Aligned(pivotInd, crkmInd SearchIndicator, z, crkmStart, stride int) bool {
	d := crkmStart - z
	return rotateMask(pivotInd.StartMask, d, stride)&crkmInd.StartMask != 0
}
