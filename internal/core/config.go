// Package core implements CASA, the paper's primary contribution: a
// CAM-based SMEM seeding accelerator built from a pre-seeding filter table
// (mini index + 9-mer tag CAM + data array, §4.1), SMEM computing CAMs with
// non-overlapped reference storage and group-level power gating (§3, §4.1),
// the filter-enabled SMEM seeding algorithm (Algorithm 1, §4.2), and the
// exact-match read pre-processing pass (§4.3).
//
// The implementation is a behavioural + cycle-approximate architectural
// simulator: SMEM results are bit-exact (cross-validated against the golden
// finders in internal/smem), while cycles and energy are accounted from the
// same per-event activity the paper's cycle-level C++ simulator counts.
package core

import (
	"fmt"

	"casa/internal/dna"
)

// Config holds CASA's architectural parameters. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	K              int     // seed k-mer size (19 in the paper)
	M              int     // mini index m-mer size (10)
	MinSMEM        int     // minimum reported SMEM length (l = 19)
	Stride         int     // bases per computing-CAM entry (40 = 80-bit word)
	Groups         int     // computing-CAM power-gating groups (20)
	ComputeCAMs    int     // parallel SMEM computing CAM lanes (10)
	PartitionBases int     // reference bases per partition (4 Mbases = "1MB")
	FilterBanks    int     // pre-seeding filter banks (parallel lookups/cycle)
	FIFODepth      int     // read FIFO between filter and computing stages (512)
	ClockHz        float64 // controller clock (2 GHz)

	// Ablation switches (all true in the paper's CASA configuration).
	UseFilterTable    bool // pre-seeding filter table ("table" in Fig 15)
	UseAnalysis       bool // CRkM + alignment analyses ("table+analysis")
	ExactMatchPrepass bool // §4.3 exact-match read pre-processing
	GroupGating       bool // enable only the CAM group holding the k-mer
	EntryGating       bool // enable only successor entries during strides
}

// DefaultConfig returns the paper's CASA configuration (§5, §6).
func DefaultConfig() Config {
	return Config{
		K:              19,
		M:              10,
		MinSMEM:        19,
		Stride:         40,
		Groups:         20,
		ComputeCAMs:    10,
		PartitionBases: 4 << 20,
		// The paper never states the filter's bank count, but its
		// published throughput (~3 Mreads/s over 768 partition passes of
		// ~166 pivot lookups each at 2 GHz) requires a few hundred
		// lookups per cycle; 512 banks back-solve to that rate and keep
		// the pre-seeding phase faster than SMEM computing, as §4.1
		// asserts.
		FilterBanks:       512,
		FIFODepth:         512,
		ClockHz:           2e9,
		UseFilterTable:    true,
		UseAnalysis:       true,
		ExactMatchPrepass: true,
		GroupGating:       true,
		EntryGating:       true,
	}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	switch {
	case c.K <= 0 || c.K > dna.MaxK:
		return fmt.Errorf("core: k=%d out of range (1..%d)", c.K, dna.MaxK)
	case c.M <= 0 || c.M >= c.K:
		return fmt.Errorf("core: m=%d must be in (0, k=%d)", c.M, c.K)
	case c.K-c.M > 31:
		return fmt.Errorf("core: k-m=%d too large for the tag array", c.K-c.M)
	case c.MinSMEM < c.K:
		// CASA seeds with k-mers: matches shorter than k are invisible to
		// the filter, so the minimum SMEM length must be >= k (the paper
		// keeps "k less than [or equal to] the minimum SMEM length").
		return fmt.Errorf("core: MinSMEM=%d must be >= k=%d", c.MinSMEM, c.K)
	case c.Stride <= 0 || c.Stride > 64:
		return fmt.Errorf("core: stride=%d out of range (1..64)", c.Stride)
	case c.Groups <= 0 || c.Groups > 64:
		return fmt.Errorf("core: groups=%d out of range (1..64)", c.Groups)
	case c.ComputeCAMs <= 0:
		return fmt.Errorf("core: ComputeCAMs=%d must be positive", c.ComputeCAMs)
	case c.PartitionBases < c.Stride:
		return fmt.Errorf("core: partition of %d bases smaller than one CAM entry", c.PartitionBases)
	case c.FilterBanks <= 0:
		return fmt.Errorf("core: FilterBanks=%d must be positive", c.FilterBanks)
	case c.ClockHz <= 0:
		return fmt.Errorf("core: ClockHz must be positive")
	case !c.UseFilterTable && c.UseAnalysis:
		return fmt.Errorf("core: the pivot analyses need the filter table's search indicators")
	}
	return nil
}

// OnChipBytes returns the modelled on-chip memory of one CASA instance:
// the pre-seeding filter (mini index + tag + data arrays) plus the
// computing CAMs, matching the paper's 45 MB + 10 MB = 55 MB budget at the
// default dimensions.
func (c Config) OnChipBytes() int64 {
	return c.FilterBytes() + c.ComputeCAMBytes()
}

// FilterBytes returns the pre-seeding filter capacity in bytes:
// 4^m entries x 48-bit pointers (mini index) + n x 18-bit tags +
// n x 60-bit search indicators, with n = PartitionBases.
func (c Config) FilterBytes() int64 {
	mini := int64(dna.NumKmers(c.M)) * 48 / 8
	tag := int64(c.PartitionBases) * 18 / 8
	data := int64(c.PartitionBases) * int64(c.IndicatorBits()) / 8
	return mini + tag + data
}

// ComputeCAMBytes returns the computing CAM capacity: ComputeCAMs copies
// of the 2-bit-packed partition.
func (c Config) ComputeCAMBytes() int64 {
	return int64(c.ComputeCAMs) * int64(c.PartitionBases) / 4
}

// IndicatorBits returns the width of one search indicator word:
// Stride start-position bits + Groups group-indicator bits (40+20=60).
func (c Config) IndicatorBits() int { return c.Stride + c.Groups }

// EntriesPerPartition returns the number of computing-CAM entries holding
// one partition (non-overlapped storage: n/stride).
func (c Config) EntriesPerPartition() int {
	return (c.PartitionBases + c.Stride - 1) / c.Stride
}
