package core

import (
	"fmt"
	"slices"

	"casa/internal/dna"
)

// FilterStats counts pre-seeding filter activity for the cycle and energy
// models. Tag rows searched reflects the range decoder's power gating:
// only the rows between the mini-index start/end pointers are enabled
// (§4.1, "the start and end pointers fetched from the mini-index table are
// decoded in a range decoder to power-gating corresponding entries").
type FilterStats struct {
	Lookups        int64 // k-mer existence queries
	Hits           int64 // queries that found the k-mer
	MiniAccesses   int64 // mini index table reads
	TagSearches    int64 // tag-array search operations
	TagRowsEnabled int64 // tag rows activated across all searches
	DataAccesses   int64 // data-array (search indicator) reads
}

// add accumulates o into s.
func (s *FilterStats) add(o FilterStats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.MiniAccesses += o.MiniAccesses
	s.TagSearches += o.TagSearches
	s.TagRowsEnabled += o.TagRowsEnabled
	s.DataAccesses += o.DataAccesses
}

// Filter is the pre-seeding filter table for one reference partition: a
// mini index over m-mers, a tag array of (k-m)-mers, and a data array of
// search indicators (Fig 8). It stores only the k-mers that exist in the
// partition, so capacity grows linearly in the partition size (O(4^m + n))
// instead of exponentially in k.
//
// The behavioural model additionally keeps, per distinct k-mer, the sorted
// occurrence positions; the hardware equivalent is the computing CAM
// itself (positions are recovered by CAM matching), but the SMEM computing
// model needs them to resolve hits without a bit-level search of millions
// of entries per pivot.
type Filter struct {
	cfg Config

	mini      []tagRange // len 4^M
	tags      []uint64   // sorted (k-m)-mer values, grouped by m-mer prefix
	data      []SearchIndicator
	posIndex  []int32 // len(tags)+1: range of positions per tag entry
	positions []int32 // occurrence start positions, sorted per k-mer

	// Derived from cfg once at construction (initDerived) so the per-lookup
	// hot path does not recompute the tag split on every call.
	suffixBits uint
	suffixMask uint64

	// Stats accumulates lookup activity; reset by the caller per batch.
	Stats FilterStats
}

// initDerived fills the fields derived from cfg; every construction site
// (build, deserialize, clone) must call it.
func (f *Filter) initDerived() {
	f.suffixBits = uint(2 * (f.cfg.K - f.cfg.M))
	f.suffixMask = uint64(1)<<f.suffixBits - 1
}

// tagRange is one mini-index entry: the start/end pointers into the tag
// array for all (k-m)-mers sharing this m-mer prefix.
type tagRange struct {
	start, end int32
}

// Clone returns a filter sharing this one's index arrays (built offline,
// never written during lookups) with fresh Stats. Lookup and Positions on
// distinct clones are safe to run concurrently.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		cfg:       f.cfg,
		mini:      f.mini,
		tags:      f.tags,
		data:      f.data,
		posIndex:  f.posIndex,
		positions: f.positions,
	}
	c.initDerived()
	return c
}

// BuildFilter constructs the filter for one reference partition. Building
// happens offline in the paper (§4.1, "CASA builds the mini index table
// and the tag table offline for each reference partition").
func BuildFilter(part dna.Sequence, cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(part) > cfg.PartitionBases {
		return nil, fmt.Errorf("core: partition of %d bases exceeds configured %d", len(part), cfg.PartitionBases)
	}
	posBits := bitsFor(len(part))
	if 2*cfg.K+posBits > 64 {
		return nil, fmt.Errorf("core: k=%d with %d-base partition does not fit the packed build key", cfg.K, len(part))
	}

	// Pack (k-mer, position) pairs and sort once: lexicographic k-mer
	// order, then position order within a k-mer.
	n := len(part) - cfg.K + 1
	if n < 0 {
		n = 0
	}
	keys := make([]uint64, 0, n)
	for x := 0; x < n; x++ {
		keys = append(keys, uint64(dna.PackKmer(part, x, cfg.K))<<uint(posBits)|uint64(x))
	}
	slices.Sort(keys)

	f := &Filter{
		cfg:  cfg,
		mini: make([]tagRange, dna.NumKmers(cfg.M)),
	}
	f.initDerived()
	posMask := uint64(1)<<uint(posBits) - 1
	suffixBits := f.suffixBits
	suffixMask := f.suffixMask

	var prefixes []uint64 // m-mer prefix of each distinct k-mer, in order
	var prevKmer uint64
	havePrev := false
	for _, key := range keys {
		kmer := key >> uint(posBits)
		x := int(key & posMask)
		if !havePrev || kmer != prevKmer {
			f.tags = append(f.tags, kmer&suffixMask)
			f.data = append(f.data, SearchIndicator{})
			f.posIndex = append(f.posIndex, int32(len(f.positions)))
			prefixes = append(prefixes, kmer>>uint(suffixBits))
			prevKmer, havePrev = kmer, true
		}
		last := len(f.data) - 1
		f.data[last] = f.data[last].addOccurrence(x, cfg.Stride, cfg.Groups)
		f.positions = append(f.positions, int32(x))
	}
	f.posIndex = append(f.posIndex, int32(len(f.positions)))

	// Mini index ranges: one pass over the distinct k-mers' prefixes
	// (already in ascending order because the keys were sorted).
	idx := 0
	for p := range f.mini {
		start := idx
		for idx < len(prefixes) && prefixes[idx] == uint64(p) {
			idx++
		}
		f.mini[p] = tagRange{start: int32(start), end: int32(idx)}
	}
	return f, nil
}

// DistinctKmers returns the number of distinct k-mers stored.
func (f *Filter) DistinctKmers() int { return len(f.tags) }

// Lookup reports whether kmer exists in the partition and returns its
// search indicator. It charges the mini-index access, the gated tag-array
// search, and (on a hit) the data-array access.
func (f *Filter) Lookup(kmer dna.Kmer) (SearchIndicator, bool) {
	idx, ok := f.find(kmer)
	if !ok {
		return SearchIndicator{}, false
	}
	f.Stats.DataAccesses++
	return f.data[idx], true
}

// Positions returns the sorted occurrence positions of kmer without
// charging filter activity (the computing phase resolves positions inside
// the computing CAM, not the filter).
func (f *Filter) Positions(kmer dna.Kmer) []int32 {
	idx, ok := f.findQuiet(kmer)
	if !ok {
		return nil
	}
	return f.positions[f.posIndex[idx]:f.posIndex[idx+1]]
}

// Contains reports existence without returning the indicator (still
// charges the lookup: the hardware performs the same accesses).
func (f *Filter) Contains(kmer dna.Kmer) bool {
	_, ok := f.find(kmer)
	return ok
}

// find locates kmer's tag entry, charging filter activity.
func (f *Filter) find(kmer dna.Kmer) (int, bool) {
	f.Stats.Lookups++
	f.Stats.MiniAccesses++
	r := f.mini[uint64(kmer)>>f.suffixBits]
	f.Stats.TagSearches++
	f.Stats.TagRowsEnabled += int64(r.end - r.start)
	idx, ok := f.search(r, uint64(kmer)&f.suffixMask)
	if ok {
		f.Stats.Hits++
	}
	return idx, ok
}

// findQuiet locates kmer's tag entry without touching Stats.
func (f *Filter) findQuiet(kmer dna.Kmer) (int, bool) {
	return f.search(f.mini[uint64(kmer)>>f.suffixBits], uint64(kmer)&f.suffixMask)
}

// search is an open-coded binary search over the tag range: sort.Search's
// closure would allocate and indirect on every lookup, and this is the
// hottest loop of the pre-seeding phase.
func (f *Filter) search(r tagRange, suffix uint64) (int, bool) {
	tags := f.tags
	lo, hi := int(r.start), int(r.end)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tags[mid] < suffix {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(r.end) && tags[lo] == suffix {
		return lo, true
	}
	return 0, false
}

// bitsFor returns the number of bits needed to represent values < n.
func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
