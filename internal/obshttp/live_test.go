package obshttp

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"casa/internal/progress"
)

// TestProgressEndpoint round-trips a snapshot through /progress and
// checks the 503 contract without a tracker.
func TestProgressEndpoint(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, _ := get(t, base+"/progress"); code != http.StatusServiceUnavailable {
		t.Fatalf("/progress without tracker: code %d, want 503", code)
	}
	if code, _ := get(t, base+"/events"); code != http.StatusServiceUnavailable {
		t.Fatalf("/events without tracker: code %d, want 503", code)
	}

	tr := progress.New("runid42", "casa", 2, 100)
	tr.ShardDone(0, 25, 24)
	s.SetProgress(tr)

	code, body := get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: code %d body %q", code, body)
	}
	var snap progress.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress body does not parse: %v", err)
	}
	if snap.Schema != progress.SchemaVersion || snap.RunID != "runid42" || snap.ReadsDone != 25 {
		t.Fatalf("/progress snapshot wrong: %+v", snap)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	snap progress.Snapshot
}

// readSSE consumes the stream until EOF, parsing every event.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var snap progress.Snapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("SSE data line does not parse: %v (%q)", err, line)
			}
			events = append(events, sseEvent{name: name, snap: snap})
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return events
}

// TestEventsStream drives a tracker while a client holds /events open:
// the stream must deliver at least two distinct progress snapshots, end
// with a terminal "done" event, and then close.
func TestEventsStream(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := progress.New("rid", "casa", 1, 50)
	s.SetProgress(tr)
	s.SetEventInterval(5 * time.Millisecond)

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events content type %q", ct)
	}

	go func() {
		for i := 0; i < 5; i++ {
			tr.ShardDone(0, 10, i*10+9)
			time.Sleep(15 * time.Millisecond)
		}
		tr.Finish()
	}()

	events := readSSE(t, bufio.NewScanner(resp.Body))
	if len(events) < 3 {
		t.Fatalf("stream delivered %d events, want at least initial + progress + done", len(events))
	}
	last := events[len(events)-1]
	if last.name != "done" || !last.snap.Done || last.snap.ReadsDone != 50 {
		t.Fatalf("terminal event wrong: %+v", last)
	}
	distinct := map[int64]bool{}
	for _, e := range events[:len(events)-1] {
		if e.name != "progress" {
			t.Fatalf("non-terminal event named %q", e.name)
		}
		distinct[e.snap.ReadsDone] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("progress events show %d distinct reads_done values, want >= 2", len(distinct))
	}
}

// TestEventsStreamEndsOnShutdown verifies graceful shutdown does not
// hang on an open SSE stream: the quit channel ends the handler and the
// client sees EOF.
func TestEventsStreamEndsOnShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := progress.New("rid", "casa", 1, 0)
	s.SetProgress(tr)
	s.SetEventInterval(10 * time.Millisecond)

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	readSSE(t, bufio.NewScanner(resp.Body)) // must reach EOF
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the open SSE stream")
	}
}

// TestServerWatchdog arms the server-managed watchdog on a stalled
// tracker and checks it fires, and that Shutdown stops it.
func TestServerWatchdog(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := progress.New("rid", "casa", 1, 10)
	s.SetProgress(tr)
	s.StartWatchdog(20*time.Millisecond, nil)

	s.mu.Lock()
	wd := s.watchdog
	s.mu.Unlock()
	if wd == nil {
		t.Fatal("watchdog not armed")
	}
	deadline := time.After(5 * time.Second)
	for wd.Fired() == 0 {
		select {
		case <-deadline:
			t.Fatal("server watchdog never fired on a stalled run")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
