package obshttp

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"

	"casa/internal/metrics"
	"casa/internal/progress"
	"casa/internal/trace"
)

// do issues one request with no body and returns the status code and the
// Allow header.
func do(t *testing.T, method, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Allow")
}

// traceSpans returns a small published-trace fixture.
func traceSpans() []trace.Span {
	tr := trace.New(trace.PolicyAll, 0)
	tr.NewBuffer("casa").Emit(0, "exact", "exact", 0, 10)
	return tr.Spans()
}

// TestMethodMatrix drives every read-only endpoint with every relevant
// method: GET and HEAD pass through to the handler, everything else is
// 405 with an Allow header naming GET.
func TestMethodMatrix(t *testing.T) {
	reg := metrics.New()
	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := progress.New("rid", "casa", 1, 10)
	s.SetProgress(tr)
	s.PublishTrace(traceSpans())
	base := "http://" + s.Addr()

	// Per endpoint: the code GET must produce (HEAD must match it).
	endpoints := []struct {
		path    string
		getCode int
	}{
		{"/", http.StatusOK},
		{"/progress", http.StatusOK},
		{"/events", http.StatusOK}, // run finished below, so the stream terminates
		{"/metrics", http.StatusOK},
		{"/trace", http.StatusOK},
	}
	tr.Finish() // lets GET /events return instead of streaming forever
	for _, ep := range endpoints {
		for _, method := range []string{
			http.MethodGet, http.MethodHead, http.MethodPost,
			http.MethodPut, http.MethodDelete, http.MethodPatch,
		} {
			code, allow := do(t, method, base+ep.path)
			switch method {
			case http.MethodGet, http.MethodHead:
				if code != ep.getCode {
					t.Errorf("%s %s: code %d, want %d", method, ep.path, code, ep.getCode)
				}
			default:
				if code != http.StatusMethodNotAllowed {
					t.Errorf("%s %s: code %d, want 405", method, ep.path, code)
				}
				if !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodHead) {
					t.Errorf("%s %s: Allow %q, want GET and HEAD listed", method, ep.path, allow)
				}
			}
		}
	}
}

// TestIndexAdvertisesEnabledEndpoints pins the dynamic index page: the
// live endpoints appear only once their backing state is attached, and
// /metrics without a registry is a 503, not a 404.
func TestIndexAdvertisesEnabledEndpoints(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/")
	if code != http.StatusOK {
		t.Fatalf("index: code %d", code)
	}
	for _, absent := range []string{"/metrics", "/progress", "/events", "/trace"} {
		if strings.Contains(body, absent) {
			t.Errorf("bare index advertises %s, which would 503", absent)
		}
	}
	if !strings.Contains(body, "/debug/pprof/") {
		t.Error("index does not list /debug/pprof/, which is always served")
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics with nil registry: code %d, want 503", code)
	}

	s.SetProgress(progress.New("rid", "casa", 1, 10))
	s.PublishTrace(traceSpans())
	_, body = get(t, base+"/")
	for _, present := range []string{"/progress", "/events", "/trace"} {
		if !strings.Contains(body, present) {
			t.Errorf("index misses %s after it became available", present)
		}
	}
	if strings.Contains(body, "/metrics") {
		t.Error("index advertises /metrics on a server started without a registry")
	}
}

// TestWatchdogArmsLazily covers the flag-ordering bug: StartWatchdog
// before SetProgress must arm once the tracker arrives, not silently do
// nothing.
func TestWatchdogArmsLazily(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.StartWatchdog(20*time.Millisecond, nil) // no tracker yet: pending
	s.mu.Lock()
	armedEarly := s.watchdog != nil
	s.mu.Unlock()
	if armedEarly {
		t.Fatal("watchdog armed before any tracker existed")
	}

	tr := progress.New("rid", "casa", 1, 10)
	s.SetProgress(tr)
	s.mu.Lock()
	wd := s.watchdog
	s.mu.Unlock()
	if wd == nil {
		t.Fatal("watchdog still unarmed after SetProgress")
	}
	deadline := time.After(5 * time.Second)
	for wd.Fired() == 0 {
		select {
		case <-deadline:
			t.Fatal("lazily armed watchdog never fired on a stalled run")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestEventsAfterFinish pins the late-subscriber contract: a client
// connecting after the run finished gets one progress snapshot and the
// terminal done event immediately — no hang, then EOF.
func TestEventsAfterFinish(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := progress.New("rid", "casa", 1, 20)
	tr.ShardDone(0, 20, 19)
	tr.Finish()
	s.SetProgress(tr)

	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewScanner(resp.Body))
	if len(events) != 2 {
		t.Fatalf("late subscriber got %d events, want exactly progress + done", len(events))
	}
	if events[0].name != "progress" || events[1].name != "done" {
		t.Fatalf("late subscriber events: %s, %s; want progress, done", events[0].name, events[1].name)
	}
	if !events[1].snap.Done || events[1].snap.ReadsDone != 20 {
		t.Fatalf("terminal snapshot wrong: %+v", events[1].snap)
	}
}

// TestShutdownRacesEventsStream opens a stream and shuts the server down
// immediately — the shutdown must not deadlock against the handler's
// startup, whichever side wins the race.
func TestShutdownRacesEventsStream(t *testing.T) {
	for i := 0; i < 10; i++ {
		s, err := Start("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := progress.New("rid", "casa", 1, 0)
		s.SetProgress(tr)
		if err := s.SetEventInterval(time.Millisecond); err != nil {
			t.Fatal(err)
		}

		streamDone := make(chan struct{})
		go func() {
			defer close(streamDone)
			resp, err := http.Get("http://" + s.Addr() + "/events")
			if err != nil {
				return // shutdown won before the connection: fine
			}
			defer resp.Body.Close()
			readSSE(t, bufio.NewScanner(resp.Body))
		}()

		shutDone := make(chan error, 1)
		go func() { shutDone <- s.Close() }()
		select {
		case err := <-shutDone:
			if err != nil {
				t.Fatalf("iteration %d: shutdown: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: shutdown hung against a racing stream", i)
		}
		<-streamDone
	}
}

// TestSetEventInterval pins the validation contract: non-positive
// cadences are errors and leave the configured interval untouched.
func TestSetEventInterval(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetEventInterval(50 * time.Millisecond); err != nil {
		t.Fatalf("positive interval rejected: %v", err)
	}
	for _, d := range []time.Duration{0, -time.Second} {
		if err := s.SetEventInterval(d); err == nil {
			t.Fatalf("SetEventInterval(%v) accepted, want error", d)
		}
	}
	if _, interval := s.progressState(); interval != 50*time.Millisecond {
		t.Fatalf("rejected interval overwrote the configured one: %v", interval)
	}
}
