package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"casa/internal/metrics"
)

// This file is the handler plumbing shared between the observability
// sidecar (this package's Server) and the serving front door
// (internal/serve): method guards, the metrics exposition handler, JSON
// responses, pprof registration, and the Server-Sent Events writer. Both
// muxes are built from these pieces so the two HTTP surfaces keep
// identical semantics.

// RequireMethod enforces an endpoint's method set: it reports whether
// r.Method is one of allowed and otherwise writes 405 with the Allow
// header listing the permitted set. Allowing GET implies HEAD (net/http
// suppresses the body on HEAD automatically), matching RFC 9110's
// expectation that the two travel together.
func RequireMethod(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
			return true
		}
	}
	if contains(allowed, http.MethodGet) && !contains(allowed, http.MethodHead) {
		allowed = append(allowed, http.MethodHead)
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	http.Error(w, fmt.Sprintf("method %s not allowed (allow: %s)",
		r.Method, strings.Join(allowed, ", ")), http.StatusMethodNotAllowed)
	return false
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// MetricsHandler serves reg's Prometheus text exposition. A nil registry
// answers 503: the process exists but was not configured with metrics —
// the endpoint is valid, the service behind it is not wired up — which
// distinguishes it from a 404 typo in the scrape config.
func MetricsHandler(reg *metrics.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !RequireMethod(w, r, http.MethodGet) {
			return
		}
		if reg == nil {
			http.Error(w, "metrics not configured for this process", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// WriteJSON writes v as an indented JSON response, the encoding every
// JSON endpoint (progress snapshots, seed reports) shares.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// RegisterPprof registers the standard runtime profile handlers on mux
// explicitly — no default-mux blank import, so profiles appear only on
// muxes that opt in.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// EventStream is a started Server-Sent Events response. Create with
// NewEventStream, which writes the stream headers and lifts the server's
// per-request write deadline (an SSE stream legitimately outlives any
// fixed write budget; slow-client protection falls to the event cadence:
// a blocked Emit surfaces as an error on the next event).
type EventStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
}

// NewEventStream upgrades w to an SSE response. It fails only when the
// ResponseWriter cannot stream (no http.Flusher), which the caller must
// report as a 500 before any body is written.
func NewEventStream(w http.ResponseWriter) (*EventStream, error) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("obshttp: response writer cannot stream (no http.Flusher)")
	}
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	return &EventStream{w: w, flusher: flusher}, nil
}

// Emit writes one named event with v marshalled as its JSON data line
// and flushes it to the client. The first error (marshal or a gone
// client) ends the stream: callers return on a non-nil error.
func (es *EventStream) Emit(event string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(es.w, "event: %s\ndata: %s\n\n", event, raw); err != nil {
		return err
	}
	es.flusher.Flush()
	return nil
}
