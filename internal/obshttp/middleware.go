package obshttp

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"casa/internal/metrics"
)

// Wall-clock HTTP instrumentation for the serving front door: a
// middleware that wraps a whole mux and records, per endpoint, request
// counts, status classes and duration histograms, plus process-wide
// in-flight and byte counters — and emits one structured access-log
// record per request carrying the run ID (the X-Casa-Run response
// header), so a run can be joined across the log line, the /v1/runs
// snapshot, the wall-clock trace span and the metrics delta.
//
// These are *wall-clock* numbers about the host serving path; they never
// touch the modelled cycle domain. The CLIs' -http sidecar deliberately
// does NOT use this middleware: its registry is the run's engine
// registry, whose JSON lands in reports that must stay byte-identical to
// offline runs — http/* names leaking into it would break that contract.

// durationBuckets is the shared power-of-two microsecond layout of every
// wall-clock duration histogram (1 µs .. ~9 min).
const durationBuckets = 30

// maxEndpointLabels bounds the distinct per-endpoint metric families one
// instrumented server can create: after the cap, unseen labels collapse
// into "other" so request paths (an attacker-controlled input) cannot
// grow the registry without bound.
const maxEndpointLabels = 64

// EndpointLabel maps a request path to the metric-name segment its
// per-endpoint metrics are filed under: "/v1/seed" -> "v1_seed", "/" ->
// "index". Run-scoped paths collapse ("/v1/runs/<id>" -> "v1_runs_id"),
// as do the pprof profiles, so label cardinality stays bounded by the
// serving surface, not by traffic.
func EndpointLabel(path string) string {
	switch {
	case path == "" || path == "/":
		return "index"
	case strings.HasPrefix(path, "/v1/runs/"):
		return "v1_runs_id"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "debug_pprof"
	}
	var b strings.Builder
	b.Grow(len(path))
	lastUnderscore := true // leading separators collapse away
	for i := 0; i < len(path) && b.Len() < 48; i++ {
		c := path[i]
		switch {
		case 'a' <= c && c <= 'z' || '0' <= c && c <= '9':
			b.WriteByte(c)
			lastUnderscore = false
		case 'A' <= c && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	label := strings.TrimSuffix(b.String(), "_")
	if label == "" {
		return "other"
	}
	return label
}

// Instrument wraps next with per-endpoint wall-clock metrics in reg and
// one access-log record per request through log. Either may be nil to
// disable that half. The returned handler preserves streaming: the
// response writer it passes down implements http.Flusher (delegating to
// the underlying writer) and Unwrap, so SSE upgrades and
// ResponseController deadline lifts work unchanged.
func Instrument(next http.Handler, reg *metrics.Registry, log *slog.Logger) http.Handler {
	if reg == nil && log == nil {
		return next
	}
	return &instrumented{
		next:   next,
		reg:    reg,
		log:    log,
		bounds: metrics.PowerOfTwoBounds(durationBuckets),
		labels: make(map[string]bool),
	}
}

type instrumented struct {
	next   http.Handler
	reg    *metrics.Registry
	log    *slog.Logger
	bounds []int64

	mu     sync.Mutex
	labels map[string]bool
}

// label resolves the request path's endpoint label, collapsing to
// "other" once the distinct-label cap is reached.
func (in *instrumented) label(path string) string {
	l := EndpointLabel(path)
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.labels[l] {
		return l
	}
	if len(in.labels) >= maxEndpointLabels {
		return "other"
	}
	in.labels[l] = true
	return l
}

func (in *instrumented) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ep := in.label(r.URL.Path)

	var inFlight *metrics.Gauge
	if in.reg != nil {
		inFlight = in.reg.Gauge("http/server/in_flight")
		inFlight.Add(1)
	}

	cr := &countingReader{rc: r.Body}
	r.Body = cr
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if inFlight != nil {
			inFlight.Add(-1)
		}
		status := sw.status
		if status == 0 {
			// The handler wrote neither header nor body (e.g. a streaming
			// client vanished before the first byte): net/http sends 200.
			status = http.StatusOK
		}
		wallUS := time.Since(start).Microseconds()
		if in.reg != nil {
			in.reg.Counter("http/" + ep + "/requests").Inc()
			in.reg.Counter("http/" + ep + "/status_" + statusClass(status)).Inc()
			in.reg.Histogram("http/"+ep+"/duration_us", in.bounds).Observe(wallUS)
			in.reg.Counter("http/server/bytes_in").Add(cr.n)
			in.reg.Counter("http/server/bytes_out").Add(sw.bytes)
		}
		if in.log != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes_in", cr.n),
				slog.Int64("bytes_out", sw.bytes),
				slog.Int64("wall_us", wallUS),
			}
			if runID := sw.Header().Get("X-Casa-Run"); runID != "" {
				attrs = append(attrs, slog.String("run_id", runID))
			}
			in.log.LogAttrs(r.Context(), slog.LevelInfo, "http request", attrs...)
		}
	}()
	in.next.ServeHTTP(sw, r)
}

// statusClass buckets a status code into its class segment ("2xx").
func statusClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusWriter captures the response status and body byte count while
// delegating everything — including streaming — to the wrapped writer.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher so NewEventStream's upgrade check passes
// through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer
// (write-deadline lifts on SSE streams).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// countingReader counts the request body bytes the handler actually read.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }
