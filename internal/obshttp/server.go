// Package obshttp is the shared observability HTTP server behind the
// CLIs' -http flag: one dedicated-mux server exposing /metrics (the
// Prometheus text exposition), /debug/pprof/* (explicitly registered, no
// default-mux blank import), /trace (the run's casa-trace/v1 Chrome
// JSON), and — when a progress tracker is attached — the live endpoints
// /progress (one casa-progress/v1 JSON snapshot) and /events (a
// Server-Sent Events stream of periodic snapshots), with conservative
// timeouts and graceful shutdown. It replaces the per-command copies of
// the default-mux ListenAndServe/log.Fatal pattern, which leaked pprof
// handlers onto every mux in the process and could not be shut down or
// bound to :0 for tests.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"casa/internal/metrics"
	"casa/internal/progress"
	"casa/internal/trace"
)

// defaultEventInterval is the /events snapshot cadence when the caller
// does not override it with SetEventInterval.
const defaultEventInterval = time.Second

// Server is a running observability endpoint. Create with Start.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu            sync.Mutex
	spans         []trace.Span
	tracker       *progress.Tracker
	eventInterval time.Duration
	err           error

	watchdog *progress.Watchdog

	quit chan struct{} // closed at Shutdown: unblocks long-lived SSE handlers
	done chan struct{}
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// the observability endpoints in a background goroutine:
//
//	/metrics       Prometheus text exposition of reg
//	/trace         Chrome trace_event JSON of the published span stream
//	/debug/pprof/  the standard runtime profiles
//
// The trace endpoint returns 503 until PublishTrace is called — a trace
// is only complete once the run has drained, and publishing a finished
// snapshot keeps the handler race-free against still-emitting workers.
func Start(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:            ln,
		eventInterval: defaultEventInterval,
		quit:          make(chan struct{}),
		done:          make(chan struct{}),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "casa observability endpoints:\n  /metrics\n  /trace\n  /progress\n  /events\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		spans := s.spans
		s.mu.Unlock()
		if spans == nil {
			http.Error(w, "trace not yet available: run with -trace and wait for the run to finish",
				http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChrome(w, spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{
		Handler: mux,
		// Slow-client protection without breaking the long pollers: a 30 s
		// CPU profile (/debug/pprof/profile) streams for its whole window,
		// so the write timeout must comfortably exceed it.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetProgress attaches the run's progress tracker, enabling /progress
// and /events. Call it before the run starts; without a tracker both
// endpoints return 503.
func (s *Server) SetProgress(t *progress.Tracker) {
	s.mu.Lock()
	s.tracker = t
	s.mu.Unlock()
}

// SetEventInterval overrides the /events snapshot cadence (default 1s).
// Zero or negative is rejected (the stream would spin).
func (s *Server) SetEventInterval(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.eventInterval = d
	s.mu.Unlock()
}

// StartWatchdog arms a stall watchdog on the attached tracker: when no
// shard completes within deadline, it logs the per-worker last-known
// state and a goroutine dump through log (nil means slog.Default), once
// per stall episode. The watchdog stops at Shutdown. It is a no-op
// without a tracker or with a non-positive deadline, and at most one
// watchdog is armed per server.
func (s *Server) StartWatchdog(deadline time.Duration, log *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tracker == nil || deadline <= 0 || s.watchdog != nil {
		return
	}
	s.watchdog = progress.NewWatchdog(s.tracker, deadline, log)
	s.watchdog.Start()
}

// progressState reads the tracker and event interval under the lock.
func (s *Server) progressState() (*progress.Tracker, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracker, s.eventInterval
}

// handleProgress serves one casa-progress/v1 snapshot as JSON.
func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	t, _ := s.progressState()
	if t == nil {
		http.Error(w, "no progress tracker attached to this run", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleEvents serves the live run as a Server-Sent Events stream: an
// immediate "progress" event, one more per event interval, and a final
// "done" event when the run finishes (then the stream closes). The
// stream also ends on client disconnect and at server shutdown.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, interval := s.progressState()
	if t == nil {
		http.Error(w, "no progress tracker attached to this run", http.StatusServiceUnavailable)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// The server's WriteTimeout protects against slow clients, but an SSE
	// stream legitimately outlives any fixed budget: lift the per-request
	// write deadline for this response only.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	emit := func(event string) bool {
		raw, err := json.Marshal(t.Snapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	if !emit("progress") {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		case <-t.Done():
			emit("done")
			return
		case <-ticker.C:
			if !emit("progress") {
				return
			}
		}
	}
}

// PublishTrace makes spans available at /trace. Call it with the merged
// stream (Trace.Spans) after the run drains; publishing an immutable
// snapshot is what keeps the handler free of data races with workers.
func (s *Server) PublishTrace(spans []trace.Span) {
	s.mu.Lock()
	s.spans = spans
	s.mu.Unlock()
}

// Shutdown gracefully drains in-flight requests and stops the server.
// Long-lived /events streams are told to end first (graceful drain would
// otherwise wait on them forever), and any armed watchdog is stopped. It
// returns the first background serve error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	wd := s.watchdog
	s.watchdog = nil
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	if wd != nil {
		wd.Stop()
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// Close is Shutdown with a 5-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
