// Package obshttp is the shared observability HTTP server behind the
// CLIs' -http flag: one dedicated-mux server exposing /metrics (the
// Prometheus text exposition), /debug/pprof/* (explicitly registered, no
// default-mux blank import), /trace (the run's casa-trace/v1 Chrome
// JSON), and — when a progress tracker is attached — the live endpoints
// /progress (one casa-progress/v1 JSON snapshot) and /events (a
// Server-Sent Events stream of periodic snapshots), with conservative
// timeouts and graceful shutdown. It replaces the per-command copies of
// the default-mux ListenAndServe/log.Fatal pattern, which leaked pprof
// handlers onto every mux in the process and could not be shut down or
// bound to :0 for tests.
//
// The handler plumbing (method guards, metrics exposition, SSE streams,
// pprof registration — see handlers.go) is exported and shared with the
// serving front door, internal/serve.
package obshttp

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"casa/internal/metrics"
	"casa/internal/progress"
	"casa/internal/trace"
)

// defaultEventInterval is the /events snapshot cadence when the caller
// does not override it with SetEventInterval.
const defaultEventInterval = time.Second

// Server is a running observability endpoint. Create with Start.
type Server struct {
	srv *http.Server
	ln  net.Listener
	reg *metrics.Registry

	mu            sync.Mutex
	spans         []trace.Span
	tracker       *progress.Tracker
	eventInterval time.Duration
	err           error

	watchdog *progress.Watchdog
	// wdDeadline/wdLog hold a StartWatchdog request made before a tracker
	// was attached; SetProgress arms it. wdDeadline > 0 marks it pending.
	wdDeadline time.Duration
	wdLog      *slog.Logger

	quit chan struct{} // closed at Shutdown: unblocks long-lived SSE handlers
	done chan struct{}
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// the observability endpoints in a background goroutine:
//
//	/metrics       Prometheus text exposition of reg (503 when reg is nil)
//	/trace         Chrome trace_event JSON of the published span stream
//	/debug/pprof/  the standard runtime profiles
//
// The trace endpoint returns 503 until PublishTrace is called — a trace
// is only complete once the run has drained, and publishing a finished
// snapshot keeps the handler race-free against still-emitting workers.
// Read-only endpoints accept GET/HEAD only (anything else is 405).
func Start(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:            ln,
		reg:           reg,
		eventInterval: defaultEventInterval,
		quit:          make(chan struct{}),
		done:          make(chan struct{}),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/trace", s.handleTrace)
	RegisterPprof(mux)

	s.srv = &http.Server{
		Handler: mux,
		// Slow-client protection without breaking the long pollers: a 30 s
		// CPU profile (/debug/pprof/profile) streams for its whole window,
		// so the write timeout must comfortably exceed it.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// handleIndex lists the endpoints this process actually serves right
// now: /progress and /events appear once a tracker is attached, /trace
// once a span stream is published, /metrics when a registry was
// configured. Advertising an endpoint that would 503 misleads operators
// discovering a process by its index page.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	s.mu.Lock()
	hasTracker, hasTrace := s.tracker != nil, s.spans != nil
	s.mu.Unlock()
	fmt.Fprint(w, "casa observability endpoints:\n")
	if s.reg != nil {
		fmt.Fprint(w, "  /metrics\n")
	}
	if hasTrace {
		fmt.Fprint(w, "  /trace\n")
	}
	if hasTracker {
		fmt.Fprint(w, "  /progress\n  /events\n")
	}
	fmt.Fprint(w, "  /debug/pprof/\n")
}

// handleTrace serves the published span stream as Chrome trace JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	s.mu.Lock()
	spans := s.spans
	s.mu.Unlock()
	if spans == nil {
		http.Error(w, "trace not yet available: run with -trace and wait for the run to finish",
			http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChrome(w, spans); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SetProgress attaches the run's progress tracker, enabling /progress
// and /events (without a tracker both endpoints return 503), and arms
// any watchdog requested before the tracker existed. Call it before the
// run starts.
func (s *Server) SetProgress(t *progress.Tracker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracker = t
	s.armWatchdogLocked()
}

// SetEventInterval overrides the /events snapshot cadence (default 1s).
// Zero or negative intervals are rejected with an error: accepting one
// would make the stream spin, and silently keeping the old cadence hid
// caller bugs.
func (s *Server) SetEventInterval(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("obshttp: event interval must be positive, got %v", d)
	}
	s.mu.Lock()
	s.eventInterval = d
	s.mu.Unlock()
	return nil
}

// StartWatchdog arms a stall watchdog on the attached tracker: when no
// shard completes within deadline, it logs the per-worker last-known
// state and a goroutine dump through log (nil means slog.Default), once
// per stall episode. The watchdog stops at Shutdown. Called before a
// tracker is attached, the request is remembered and armed by
// SetProgress — flag-ordering in the CLIs must not silently disable the
// watchdog. It is a no-op with a non-positive deadline, and at most one
// watchdog is armed per server.
func (s *Server) StartWatchdog(deadline time.Duration, log *slog.Logger) {
	if deadline <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watchdog != nil || s.wdDeadline > 0 {
		return
	}
	s.wdDeadline, s.wdLog = deadline, log
	s.armWatchdogLocked()
}

// armWatchdogLocked (caller holds s.mu) starts the pending watchdog once
// both halves — a tracker and a StartWatchdog request — are present.
func (s *Server) armWatchdogLocked() {
	if s.tracker == nil || s.wdDeadline <= 0 || s.watchdog != nil {
		return
	}
	s.watchdog = progress.NewWatchdog(s.tracker, s.wdDeadline, s.wdLog)
	s.watchdog.Start()
}

// progressState reads the tracker and event interval under the lock.
func (s *Server) progressState() (*progress.Tracker, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracker, s.eventInterval
}

// handleProgress serves one casa-progress/v1 snapshot as JSON.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	t, _ := s.progressState()
	if t == nil {
		http.Error(w, "no progress tracker attached to this run", http.StatusServiceUnavailable)
		return
	}
	WriteJSON(w, t.Snapshot())
}

// handleEvents serves the live run as a Server-Sent Events stream: an
// immediate "progress" event, one more per event interval, and a final
// "done" event when the run finishes (then the stream closes). A client
// connecting after the run finished gets the initial snapshot and the
// terminal "done" immediately. The stream also ends on client disconnect
// and at server shutdown.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	t, interval := s.progressState()
	if t == nil {
		http.Error(w, "no progress tracker attached to this run", http.StatusServiceUnavailable)
		return
	}
	es, err := NewEventStream(w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := es.Emit("progress", t.Snapshot()); err != nil {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		case <-t.Done():
			_ = es.Emit("done", t.Snapshot())
			return
		case <-ticker.C:
			if err := es.Emit("progress", t.Snapshot()); err != nil {
				return
			}
		}
	}
}

// PublishTrace makes spans available at /trace. Call it with the merged
// stream (Trace.Spans) after the run drains; publishing an immutable
// snapshot is what keeps the handler free of data races with workers.
func (s *Server) PublishTrace(spans []trace.Span) {
	s.mu.Lock()
	s.spans = spans
	s.mu.Unlock()
}

// Shutdown gracefully drains in-flight requests and stops the server.
// Long-lived /events streams are told to end first (graceful drain would
// otherwise wait on them forever), and any armed or pending watchdog is
// stopped. It returns the first background serve error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	wd := s.watchdog
	s.watchdog = nil
	s.wdDeadline = 0
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	if wd != nil {
		wd.Stop()
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// Close is Shutdown with a 5-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
