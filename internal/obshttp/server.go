// Package obshttp is the shared observability HTTP server behind the
// CLIs' -http flag: one dedicated-mux server exposing /metrics (the
// Prometheus text exposition), /debug/pprof/* (explicitly registered, no
// default-mux blank import) and /trace (the run's casa-trace/v1 Chrome
// JSON), with conservative timeouts and graceful shutdown. It replaces
// the per-command copies of the default-mux ListenAndServe/log.Fatal
// pattern, which leaked pprof handlers onto every mux in the process and
// could not be shut down or bound to :0 for tests.
package obshttp

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"casa/internal/metrics"
	"casa/internal/trace"
)

// Server is a running observability endpoint. Create with Start.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu    sync.Mutex
	spans []trace.Span
	err   error

	done chan struct{}
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// the observability endpoints in a background goroutine:
//
//	/metrics       Prometheus text exposition of reg
//	/trace         Chrome trace_event JSON of the published span stream
//	/debug/pprof/  the standard runtime profiles
//
// The trace endpoint returns 503 until PublishTrace is called — a trace
// is only complete once the run has drained, and publishing a finished
// snapshot keeps the handler race-free against still-emitting workers.
func Start(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "casa observability endpoints:\n  /metrics\n  /trace\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		spans := s.spans
		s.mu.Unlock()
		if spans == nil {
			http.Error(w, "trace not yet available: run with -trace and wait for the run to finish",
				http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChrome(w, spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{
		Handler: mux,
		// Slow-client protection without breaking the long pollers: a 30 s
		// CPU profile (/debug/pprof/profile) streams for its whole window,
		// so the write timeout must comfortably exceed it.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// PublishTrace makes spans available at /trace. Call it with the merged
// stream (Trace.Spans) after the run drains; publishing an immutable
// snapshot is what keeps the handler free of data races with workers.
func (s *Server) PublishTrace(spans []trace.Span) {
	s.mu.Lock()
	s.spans = spans
	s.mu.Unlock()
}

// Shutdown gracefully drains in-flight requests and stops the server.
// It returns the first background serve error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// Close is Shutdown with a 5-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
