package obshttp

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"casa/internal/metrics"
)

func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"":                     "index",
		"/":                    "index",
		"/v1/seed":             "v1_seed",
		"/v1/runs":             "v1_runs",
		"/v1/runs/aabbccdd":    "v1_runs_id",
		"/v1/stats":            "v1_stats",
		"/metrics":             "metrics",
		"/healthz":             "healthz",
		"/debug/pprof/profile": "debug_pprof",
		"/debug/runtrace":      "debug_runtrace",
		"/Weird//Path-%2e":     "weird_path_2e",
		"/...":                 "other",
	}
	for path, want := range cases {
		if got := EndpointLabel(path); got != want {
			t.Errorf("EndpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
	// Every label must be a single valid metric-name segment: filing it
	// under http/<label>/requests must not panic.
	reg := metrics.New()
	for path := range cases {
		reg.Counter("http/" + EndpointLabel(path) + "/requests")
	}
}

func TestInstrumentMetricsAndAccessLog(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/seed", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-Casa-Run", "deadbeef01020304")
		fmt.Fprint(w, "report")
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	})

	reg := metrics.New()
	var logBuf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&logBuf, nil))
	srv := httptest.NewServer(Instrument(mux, reg, log))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/seed", "text/plain", strings.NewReader("@r\nACGT\n+\nIIII\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code %d", resp.StatusCode)
	}
	if resp2, err := http.Get(srv.URL + "/boom"); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
	}

	if got := reg.Counter("http/v1_seed/requests").Value(); got != 1 {
		t.Fatalf("http/v1_seed/requests = %d, want 1", got)
	}
	if got := reg.Counter("http/v1_seed/status_2xx").Value(); got != 1 {
		t.Fatalf("http/v1_seed/status_2xx = %d, want 1", got)
	}
	if got := reg.Counter("http/boom/status_5xx").Value(); got != 1 {
		t.Fatalf("http/boom/status_5xx = %d, want 1", got)
	}
	h := reg.Histogram("http/v1_seed/duration_us", metrics.PowerOfTwoBounds(30))
	if h.Count() != 1 {
		t.Fatalf("duration histogram count = %d, want 1", h.Count())
	}
	if got := reg.Counter("http/server/bytes_in").Value(); got < 10 {
		t.Fatalf("bytes_in = %d, want >= body size", got)
	}
	if got := reg.Counter("http/server/bytes_out").Value(); got < int64(len("report")) {
		t.Fatalf("bytes_out = %d, want >= %d", got, len("report"))
	}
	if got := reg.Gauge("http/server/in_flight").Value(); got != 0 {
		t.Fatalf("in_flight after requests settled = %g, want 0", got)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "http request") {
		t.Fatalf("no access-log records:\n%s", logs)
	}
	if !strings.Contains(logs, "run_id=deadbeef01020304") {
		t.Fatalf("access log lacks the run_id:\n%s", logs)
	}
	if !strings.Contains(logs, "path=/v1/seed") || !strings.Contains(logs, "status=200") {
		t.Fatalf("access log lacks method/path/status fields:\n%s", logs)
	}
	if !strings.Contains(logs, "status=500") {
		t.Fatalf("access log lacks the 500 record:\n%s", logs)
	}
	if !strings.Contains(logs, "wall_us=") {
		t.Fatalf("access log lacks the wall duration:\n%s", logs)
	}
}

func TestInstrumentPreservesStreaming(t *testing.T) {
	// The wrapped writer must still upgrade to SSE (http.Flusher) and
	// count the streamed bytes.
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		es, err := NewEventStream(w)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		es.Emit("progress", map[string]int{"n": 1})
	})
	reg := metrics.New()
	srv := httptest.NewServer(Instrument(mux, reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q: Flusher did not survive the wrapper", ct)
	}
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "event: progress") {
		t.Fatalf("stream body %q", buf[:n])
	}
}

func TestInstrumentLabelCardinalityBounded(t *testing.T) {
	reg := metrics.New()
	h := Instrument(http.NotFoundHandler(), reg, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < maxEndpointLabels+32; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/path%04d", srv.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	distinct := 0
	var otherSeen bool
	for _, s := range reg.Snapshots() {
		if strings.HasSuffix(s.Name, "/requests") {
			distinct++
			if s.Name == "http/other/requests" {
				otherSeen = true
			}
		}
	}
	if distinct > maxEndpointLabels+1 {
		t.Fatalf("%d distinct endpoint families, want <= %d", distinct, maxEndpointLabels+1)
	}
	if !otherSeen {
		t.Fatal("overflow labels did not collapse into \"other\"")
	}
}

func TestInstrumentNilHalves(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Instrument(inner, nil, nil); got.(http.HandlerFunc) == nil {
		t.Fatal("nil/nil should return next unchanged")
	}
	// Metrics-only and log-only halves both work.
	reg := metrics.New()
	srv := httptest.NewServer(Instrument(inner, reg, nil))
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if got := reg.Counter("http/x/requests").Value(); got != 1 {
		t.Fatalf("metrics-only half recorded %d requests, want 1", got)
	}
	var buf bytes.Buffer
	srv2 := httptest.NewServer(Instrument(inner, nil, slog.New(slog.NewTextHandler(&buf, nil))))
	resp2, err := http.Get(srv2.URL + "/y")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	srv2.Close()
	if !strings.Contains(buf.String(), "path=/y") {
		t.Fatalf("log-only half wrote:\n%s", buf.String())
	}
}
