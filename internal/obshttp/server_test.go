package obshttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"casa/internal/metrics"
	"casa/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.New()
	reg.Counter("obshttp_test/hits").Add(7)

	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "obshttp_test") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}

	// /trace is unavailable until a finished stream is published.
	if code, _ := get(t, base+"/trace"); code != http.StatusServiceUnavailable {
		t.Fatalf("/trace before publish: code %d, want 503", code)
	}
	tr := trace.New(trace.PolicyAll, 0)
	b := tr.NewBuffer("casa")
	b.Emit(0, "exact", "exact", 0, 10)
	b.Emit(1, "exact", "exact", 0, 20)
	s.PublishTrace(tr.Spans())
	code, body := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace after publish: code %d", code)
	}
	spans, err := trace.Parse([]byte(body))
	if err != nil {
		t.Fatalf("/trace body does not parse: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("/trace returned %d spans, want 2", len(spans))
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _ := get(t, base+"/no-such"); code != http.StatusNotFound {
		t.Fatalf("/no-such: code %d, want 404", code)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
