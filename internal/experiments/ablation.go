package experiments

import (
	"casa/internal/core"
	"casa/internal/dna"
)

// Ablations for the design choices DESIGN.md §6 calls out: each row runs
// the CASA simulator with one knob changed and reports the modelled
// throughput, energy efficiency, CAM activity, and pivot filtering.

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Name           string
	Throughput     float64 // reads/s (raw, not projected: rows share scale)
	ReadsPerMJ     float64
	CAMRowsEnabled int64
	PivotsComputed int64
	OnChipMB       float64
}

// AblationResult is one sweep.
type AblationResult struct {
	Sweep string
	Rows  []AblationRow
}

// runAblation builds and runs one configuration over the first workload.
func (s *Suite) runAblation(name string, reads []dna.Sequence, cfg core.Config) (AblationRow, error) {
	acc, err := core.New(s.Workloads[0].Ref, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	res := acc.SeedReads(reads)
	return AblationRow{
		Name:           name,
		Throughput:     res.Throughput(),
		ReadsPerMJ:     res.ReadsPerMJ(),
		CAMRowsEnabled: res.Stats.CAMRowsEnabled,
		PivotsComputed: res.Stats.PivotsComputed,
		OnChipMB:       float64(cfg.OnChipBytes()) / (1 << 20),
	}, nil
}

// ablationReads returns a capped read set so sweeps stay fast.
func (s *Suite) ablationReads() []dna.Sequence {
	reads := s.Workloads[0].Reads
	if len(reads) > 500 {
		reads = reads[:500]
	}
	return reads
}

// AblationFeatures toggles CASA's algorithmic features one at a time.
func (s *Suite) AblationFeatures() (*AblationResult, error) {
	reads := s.ablationReads()
	out := &AblationResult{Sweep: "features"}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full CASA", func(c *core.Config) {}},
		{"no analyses", func(c *core.Config) { c.UseAnalysis = false }},
		{"no filter table", func(c *core.Config) { c.UseFilterTable = false; c.UseAnalysis = false }},
		{"no exact prepass", func(c *core.Config) { c.ExactMatchPrepass = false }},
		{"no CAM gating", func(c *core.Config) { c.GroupGating = false; c.EntryGating = false }},
		{"naive (all off)", func(c *core.Config) {
			c.UseFilterTable = false
			c.UseAnalysis = false
			c.ExactMatchPrepass = false
			c.GroupGating = false
			c.EntryGating = false
		}},
	}
	for _, v := range variants {
		cfg := s.CASAConfig()
		v.mutate(&cfg)
		row, err := s.runAblation(v.name, reads, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationKmer sweeps the seed size (the Fig 5 driver): larger k filters
// more pivots at the same linear memory cost, the paper's central
// scaling argument.
func (s *Suite) AblationKmer() (*AblationResult, error) {
	reads := s.ablationReads()
	out := &AblationResult{Sweep: "k-mer size"}
	for _, k := range []int{12, 14, 16, 19} {
		cfg := s.CASAConfig()
		cfg.K = k
		cfg.M = k / 2
		cfg.MinSMEM = 19
		row, err := s.runAblation("k="+itoa(k), reads, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationGroups sweeps the CAM power-gating group count.
func (s *Suite) AblationGroups() (*AblationResult, error) {
	reads := s.ablationReads()
	out := &AblationResult{Sweep: "CAM groups"}
	for _, g := range []int{1, 5, 10, 20, 40} {
		cfg := s.CASAConfig()
		cfg.Groups = g
		row, err := s.runAblation("groups="+itoa(g), reads, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationStride sweeps the CAM entry width (bases per 2-bit-packed CAM
// word): wider entries mean fewer stride steps but more padded-query
// offsets and wider match lines.
func (s *Suite) AblationStride() (*AblationResult, error) {
	reads := s.ablationReads()
	out := &AblationResult{Sweep: "CAM entry stride"}
	for _, st := range []int{20, 40, 64} {
		cfg := s.CASAConfig()
		cfg.Stride = st
		row, err := s.runAblation("stride="+itoa(st), reads, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationBanks sweeps the pre-seeding filter's bank count (the
// filter-phase throughput knob back-solved in core.DefaultConfig).
func (s *Suite) AblationBanks() (*AblationResult, error) {
	reads := s.ablationReads()
	out := &AblationResult{Sweep: "filter banks"}
	for _, b := range []int{32, 128, 512, 1024} {
		cfg := s.CASAConfig()
		cfg.FilterBanks = b
		row, err := s.runAblation("banks="+itoa(b), reads, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Ablations runs every sweep.
func (s *Suite) Ablations() ([]*AblationResult, error) {
	var out []*AblationResult
	for _, fn := range []func() (*AblationResult, error){
		s.AblationFeatures, s.AblationKmer, s.AblationGroups, s.AblationStride, s.AblationBanks,
	} {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
