package experiments

import (
	"fmt"
	"strings"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/energy"
	"casa/internal/pipeline"
	"casa/internal/readsim"
)

// ---------------------------------------------------------------------------
// Fig 5: hit pivots per read per partition as k grows.

// Fig5Row is one bar of Fig 5.
type Fig5Row struct {
	K         int
	HitPivots float64 // average k-mers per read with a hit in one partition
}

// Fig5Result reproduces Fig 5.
type Fig5Result struct {
	Workload string
	Rows     []Fig5Row
	// Ratio12to19 is the paper's 6.04x headline: hit pivots at k=12 over
	// k=19.
	Ratio12to19 float64
}

// Fig5 measures the decline of hit pivots with k ("increasing k from 12
// to 19 results in a 6.04-fold decrease in the number of k-mers that
// leads to a hit on a reference genome partition", §3). The paper
// averages over 768 partitions, so almost every (read, partition) pair is
// non-originating; the harness reproduces that regime directly by taking
// the partition from the front of the genome and sampling the measured
// reads from the disjoint remainder — hits then come from k-mer
// collisions and repeats, the quantities that decline with k.
func (s *Suite) Fig5() (*Fig5Result, error) {
	w := s.Workloads[0]
	partBases := min(4<<20, len(w.Ref)/2) // the paper's 4 Mbase partition when possible
	part := w.Ref[:partBases]
	sim := readsim.Simulate(w.Ref[partBases:], readsim.DefaultProfile(s.Scale.Reads, s.Scale.Seed+50))
	reads := readsim.Sequences(sim)
	res := &Fig5Result{Workload: w.Name}
	for _, k := range []int{12, 14, 16, 19} {
		cfg := s.CASAConfig()
		cfg.K = k
		cfg.M = k / 2
		cfg.MinSMEM = k
		cfg.PartitionBases = partBases
		f, err := core.BuildFilter(part, cfg)
		if err != nil {
			return nil, err
		}
		var hits int64
		for _, read := range reads {
			for i := 0; i+k <= len(read); i++ {
				if f.Contains(dna.PackKmer(read, i, k)) {
					hits++
				}
			}
		}
		res.Rows = append(res.Rows, Fig5Row{
			K:         k,
			HitPivots: float64(hits) / float64(len(reads)),
		})
	}
	if last := res.Rows[len(res.Rows)-1].HitPivots; last > 0 {
		res.Ratio12to19 = res.Rows[0].HitPivots / last
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig 12 + Fig 13: seeding throughput, power, energy efficiency.

// EngineMetrics is one engine's bar in Fig 12/13.
type EngineMetrics struct {
	Name       string
	Throughput float64 // reads/s (Fig 12)
	PowerW     float64 // Fig 13a (accelerators only)
	ReadsPerMJ float64 // Fig 13b
	DRAMGBs    float64 // average DRAM bandwidth
}

// ThroughputResult reproduces Fig 12 (one genome) and carries the Fig 13
// quantities measured in the same runs.
type ThroughputResult struct {
	Workload string
	Engines  []EngineMetrics // B-12T, B-32T, CASA, ERT, GenAx
}

// Metric fetches an engine row by name.
func (r *ThroughputResult) Metric(name string) EngineMetrics {
	for _, e := range r.Engines {
		if e.Name == name {
			return e
		}
	}
	return EngineMetrics{Name: name}
}

// Fig12 runs the five systems on workload w.
func (s *Suite) Fig12(w Workload) (*ThroughputResult, error) {
	runs, err := s.Runs(w)
	if err != nil {
		return nil, err
	}
	e, err := s.Engines(w)
	if err != nil {
		return nil, err
	}
	cf := s.casaFactor(e.casa.Partitions())
	gf := s.genaxFactor(e.genax.Segments())
	res := &ThroughputResult{Workload: w.Name}
	res.Engines = append(res.Engines,
		EngineMetrics{Name: "B-12T", Throughput: runs.b12.Throughput, ReadsPerMJ: runs.b12.ReadsPerMJ},
		EngineMetrics{Name: "B-32T", Throughput: runs.b32.Throughput, ReadsPerMJ: runs.b32.ReadsPerMJ},
		EngineMetrics{
			Name:       "CASA",
			Throughput: runs.casa.Throughput() / cf,
			PowerW:     runs.casa.Energy.PowerW(),
			ReadsPerMJ: runs.casa.ReadsPerMJ() / cf,
			DRAMGBs:    runs.casa.DRAM.BandwidthGBs(runs.casa.Seconds),
		},
		EngineMetrics{
			Name:       "ERT",
			Throughput: runs.ert.Throughput,
			PowerW:     runs.ert.Energy.PowerW(),
			ReadsPerMJ: runs.ert.ReadsPerMJ,
			DRAMGBs:    runs.ert.DRAM.BandwidthGBs(runs.ert.Seconds),
		},
		EngineMetrics{
			Name:       "GenAx",
			Throughput: runs.genax.Throughput / gf,
			PowerW:     runs.genax.Energy.PowerW(),
			ReadsPerMJ: runs.genax.ReadsPerMJ / gf,
			DRAMGBs:    runs.genax.DRAM.BandwidthGBs(runs.genax.Seconds),
		},
	)
	return res, nil
}

// Fig12All runs Fig 12 for every workload (GRCh38-like and GRCm39-like).
func (s *Suite) Fig12All() ([]*ThroughputResult, error) {
	var out []*ThroughputResult
	for _, w := range s.Workloads {
		r, err := s.Fig12(w)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig 14: end-to-end breakdown.

// Fig14Result reproduces Fig 14: normalized running time per system.
type Fig14Result struct {
	Workload   string
	Breakdowns []pipeline.Breakdown // normalized to BWA-MEM2 = 1.0
	SpeedupVs  map[string]float64   // CASA+SeedEx speedup over each system
}

// Fig14 runs the end-to-end pipeline comparison on workload w.
func (s *Suite) Fig14(w Workload) (*Fig14Result, error) {
	pe, err := s.PipelineEngines(w)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.CASASeedingScale = s.casaFactor(pe.CASA.Partitions())
	cfg.GenAxSeedingScale = s.genaxFactor(pe.GenAx.Segments())
	res, err := pipeline.Run(pe, w.Reads, cfg)
	if err != nil {
		return nil, err
	}
	var bwaTotal, casaTotal float64
	for _, b := range res.Breakdowns {
		if b.System == "BWA-MEM2" {
			bwaTotal = b.Total()
		}
		if b.System == "CASA+SeedEx" {
			casaTotal = b.Total()
		}
	}
	out := &Fig14Result{Workload: w.Name, SpeedupVs: map[string]float64{}}
	for _, b := range res.Breakdowns {
		out.Breakdowns = append(out.Breakdowns, b.Normalize(bwaTotal))
		if casaTotal > 0 {
			out.SpeedupVs[b.System] = b.Total() / casaTotal
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig 15: pivot-filter ablation.

// Fig15Result reproduces Fig 15: average pivots that trigger SMEM
// computation per read, per partition, for the three designs.
type Fig15Result struct {
	Workload      string
	Naive         float64
	Table         float64
	TableAnalysis float64
	// Filter rates relative to naive (the paper reports 98.9% and 99.9%).
	TableFilterRate    float64
	AnalysisFilterRate float64
}

// Fig15 measures pivot counts on the first partition of the first
// workload under the three ablation modes.
func (s *Suite) Fig15() (*Fig15Result, error) {
	w := s.Workloads[0]
	part := w.Ref[:min(s.Scale.CASAPartition, len(w.Ref))]
	res := &Fig15Result{Workload: w.Name}
	run := func(mutate func(*core.Config)) (float64, error) {
		cfg := s.CASAConfig()
		cfg.ExactMatchPrepass = false // isolate the pivot filters, as Fig 15 does
		mutate(&cfg)
		p, err := core.NewPartition(part, cfg)
		if err != nil {
			return 0, err
		}
		for _, read := range w.Reads {
			p.SeedRead(read)
		}
		return float64(p.Stats.PivotsComputed) / float64(len(w.Reads)), nil
	}
	var err error
	if res.Naive, err = run(func(c *core.Config) { c.UseFilterTable = false; c.UseAnalysis = false }); err != nil {
		return nil, err
	}
	if res.Table, err = run(func(c *core.Config) { c.UseAnalysis = false }); err != nil {
		return nil, err
	}
	if res.TableAnalysis, err = run(func(c *core.Config) {}); err != nil {
		return nil, err
	}
	if res.Naive > 0 {
		res.TableFilterRate = 1 - res.Table/res.Naive
		res.AnalysisFilterRate = 1 - res.TableAnalysis/res.Naive
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig 16: inexact-matching throughput.

// Fig16Result reproduces Fig 16: throughput on error-containing reads
// only, normalized to GenAx.
type Fig16Result struct {
	Workload     string
	CASA         float64 // normalized throughput (GenAx = 1)
	ERT          float64
	GenAx        float64
	CASAOverERT  float64
	InexactReads int
}

// Fig16 seeds only inexact reads (the exact-match prepass cannot help) on
// the three accelerators.
func (s *Suite) Fig16() (*Fig16Result, error) {
	w := s.Workloads[0]
	// A higher error rate makes nearly every read inexact; keep only the
	// reads with injected errors.
	profile := readsim.ReadProfile{
		Length: 101, Count: s.Scale.Reads, Seed: s.Scale.Seed + 99,
		MutRate: 0.01, ErrRate: 0.01, RevComp: true,
	}
	var reads []dna.Sequence
	for _, r := range readsim.Simulate(w.Ref, profile) {
		if !r.Exact() {
			reads = append(reads, r.Seq)
		}
	}
	e, err := s.Engines(w)
	if err != nil {
		return nil, err
	}
	casaRes := e.casa.SeedReads(reads)
	ertRes := e.ert.SeedReads(reads)
	genaxRes := e.genax.SeedReads(reads)
	casaTP := casaRes.Throughput() / s.casaFactor(e.casa.Partitions())
	genaxTP := genaxRes.Throughput / s.genaxFactor(e.genax.Segments())
	res := &Fig16Result{Workload: w.Name, GenAx: 1, InexactReads: len(reads)}
	if genaxTP > 0 {
		res.CASA = casaTP / genaxTP
		res.ERT = ertRes.Throughput / genaxTP
	}
	if ertRes.Throughput > 0 {
		res.CASAOverERT = casaTP / ertRes.Throughput
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Table 3 + Table 4.

// Table3 returns the 28 nm circuit models (constants, for regeneration).
func Table3() []energy.ArrayModel { return energy.CircuitTable() }

// Table4Result reproduces Table 4 from the model at the paper's full
// geometry: the area synthesized from Table 3 macro counts plus the
// published controller blocks, and the measured per-component power of a
// seeding run.
type Table4Result struct {
	Report      energy.Report
	PaperRows   []energy.PaperRow
	TotalArea   float64
	PaperArea   float64
	AreaVsGenAx float64
}

// Table4 runs a short seeding batch at the paper's partition geometry and
// reports the breakdown.
func (s *Suite) Table4() (*Table4Result, error) {
	w := s.Workloads[0]
	cfg := core.DefaultConfig() // full 4 Mbase partitions, 45+10 MB
	a, err := core.New(w.Ref, cfg)
	if err != nil {
		return nil, err
	}
	n := min(200, len(w.Reads))
	run := a.SeedReads(w.Reads[:n])
	res := &Table4Result{
		Report:    run.Energy,
		PaperRows: energy.PaperTable4(),
		TotalArea: run.Energy.AreaMM2(),
		PaperArea: energy.PaperTotalAreaMM2,
	}
	res.AreaVsGenAx = res.TotalArea/energy.GenAxAreaMM2 - 1
	return res, nil
}

// ---------------------------------------------------------------------------
// Headline summary (§7.1, §7.2).

// Summary carries the paper's headline ratios recomputed from the runs.
type Summary struct {
	// Throughput ratios, averaged over workloads (paper: 17.26, 7.53,
	// 5.47, 1.2).
	CASAOverB12   float64
	CASAOverB32   float64
	CASAOverGenAx float64
	CASAOverERT   float64
	// Energy-efficiency ratios (paper: 6.69 over GenAx, 2.57 over ERT).
	EffOverGenAx float64
	EffOverERT   float64
	// CASA's DRAM bandwidth (paper: < 30 GB/s).
	CASADRAMGBs float64
	// Exact-match reads fraction (paper: ~80%).
	ExactFraction float64
}

// Summarize recomputes the headline ratios across all workloads.
func (s *Suite) Summarize() (*Summary, error) {
	var sum Summary
	n := 0
	for _, w := range s.Workloads {
		r, err := s.Fig12(w)
		if err != nil {
			return nil, err
		}
		casa := r.Metric("CASA")
		if b := r.Metric("B-12T"); b.Throughput > 0 {
			sum.CASAOverB12 += casa.Throughput / b.Throughput
		}
		if b := r.Metric("B-32T"); b.Throughput > 0 {
			sum.CASAOverB32 += casa.Throughput / b.Throughput
		}
		if g := r.Metric("GenAx"); g.Throughput > 0 {
			sum.CASAOverGenAx += casa.Throughput / g.Throughput
			sum.EffOverGenAx += casa.ReadsPerMJ / g.ReadsPerMJ
		}
		if e := r.Metric("ERT"); e.Throughput > 0 {
			sum.CASAOverERT += casa.Throughput / e.Throughput
			sum.EffOverERT += casa.ReadsPerMJ / e.ReadsPerMJ
		}
		sum.CASADRAMGBs += casa.DRAMGBs
		sum.ExactFraction += readsim.ExactFraction(w.Sim)
		n++
	}
	f := float64(n)
	sum.CASAOverB12 /= f
	sum.CASAOverB32 /= f
	sum.CASAOverGenAx /= f
	sum.CASAOverERT /= f
	sum.EffOverGenAx /= f
	sum.EffOverERT /= f
	sum.CASADRAMGBs /= f
	sum.ExactFraction /= f
	return &sum, nil
}

// ---------------------------------------------------------------------------
// Rendering helpers.

// RenderTable formats a header and rows as an aligned text table.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		_ = i
		sb.WriteString(strings.Repeat("-", w) + "  ")
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
