package experiments

import "testing"

func TestAblationFeatures(t *testing.T) {
	s := getSuite(t)
	res, err := s.AblationFeatures()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]AblationRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
		if r.Throughput <= 0 || r.ReadsPerMJ <= 0 {
			t.Errorf("%s: missing model outputs", r.Name)
		}
	}
	full, naive := rows["full CASA"], rows["naive (all off)"]
	if full.Throughput <= naive.Throughput {
		t.Errorf("full CASA (%.0f) not faster than naive (%.0f)", full.Throughput, naive.Throughput)
	}
	if !(full.PivotsComputed <= rows["no analyses"].PivotsComputed &&
		rows["no analyses"].PivotsComputed <= rows["no filter table"].PivotsComputed) {
		t.Errorf("pivot counts not monotone (full <= no-analyses <= no-table): %+v", res.Rows)
	}
	if gating := rows["no CAM gating"]; gating.CAMRowsEnabled <= full.CAMRowsEnabled {
		t.Errorf("disabling gating did not increase CAM rows: %d vs %d",
			gating.CAMRowsEnabled, full.CAMRowsEnabled)
	}
}

func TestAblationKmer(t *testing.T) {
	s := getSuite(t)
	res, err := s.AblationKmer()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Larger k filters more pivots.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PivotsComputed > res.Rows[i-1].PivotsComputed {
			t.Errorf("pivots computed must not grow with k: %+v", res.Rows)
		}
	}
	// Memory must not explode with k (the paper's contrast with O(4^k)
	// tables, which would grow 4^7 = 16384x from k=12 to k=19). At test
	// scale the 4^m mini index dominates the small partitions, so allow
	// a modest constant factor.
	if res.Rows[3].OnChipMB > 4*res.Rows[0].OnChipMB {
		t.Errorf("on-chip memory grows too fast with k: %+v", res.Rows)
	}
}

func TestAblationGroups(t *testing.T) {
	s := getSuite(t)
	res, err := s.AblationGroups()
	if err != nil {
		t.Fatal(err)
	}
	// More groups -> fewer enabled rows per search.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.CAMRowsEnabled >= first.CAMRowsEnabled {
		t.Errorf("group gating not reducing rows: %d (g=1) vs %d (g=40)",
			first.CAMRowsEnabled, last.CAMRowsEnabled)
	}
}

func TestAblationStrideAndBanks(t *testing.T) {
	s := getSuite(t)
	st, err := s.AblationStride()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 3 {
		t.Fatalf("stride rows = %d", len(st.Rows))
	}
	b, err := s.AblationBanks()
	if err != nil {
		t.Fatal(err)
	}
	// More banks can only help throughput.
	for i := 1; i < len(b.Rows); i++ {
		if b.Rows[i].Throughput < b.Rows[i-1].Throughput*0.99 {
			t.Errorf("more banks reduced throughput: %+v", b.Rows)
		}
	}
}
