// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7) on synthetic workloads: Fig 5 (k-mer hit pivots),
// Fig 12 (seeding throughput), Fig 13 (power and energy efficiency),
// Fig 14 (end-to-end breakdown), Fig 15 (pivot filtering ablation),
// Fig 16 (inexact-matching throughput), Table 3 (circuit models) and
// Table 4 (power/area breakdown). EXPERIMENTS.md records paper-vs-measured
// for each.
//
// Scaling: the paper evaluates a 3.1 Gbase genome with 787 M reads on a
// 28 nm ASIC; this harness runs the same models on synthetic genomes of a
// few Mbases with thousands of reads, preserving the quantities that
// drive every comparison (per-partition k-mer hit rates, filter rates,
// exact-match fractions, per-read activity). Absolute Mreads/s therefore
// scale down; orderings and ratios are the reproduction target.
package experiments

import (
	"fmt"

	"casa/internal/core"
	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/ert"
	"casa/internal/genax"
	"casa/internal/pipeline"
	"casa/internal/readsim"
	"casa/internal/seedex"
)

// Scale dimensions one experiment run.
type Scale struct {
	GenomeBases   int   // synthetic genome length
	Reads         int   // simulated 101 bp reads per workload
	Seed          int64 // base RNG seed
	CASAPartition int   // CASA partition size in bases
	GenAxSegment  int   // GenAx segment size in bases (1.5x CASA's, as in the paper)
	GenAxK        int   // GenAx seed-table k, scaled to keep the paper's table occupancy
	ERTK          int   // ERT index k (15 in the paper)

	// PaperProjection rescales the partitioned accelerators' time to the
	// paper's pass counts (CASA: 768 partition passes over GRCh38, GenAx:
	// 512 segment passes, §2.2). A small synthetic genome needs only a
	// handful of passes, which overstates the partitioned designs against
	// ERT and the CPU (which index the whole genome once); the projection
	// multiplies CASA's and GenAx's modelled time by paperPasses/actual
	// so cross-system ratios are comparable to Fig 12/13/14/16.
	PaperProjection bool
}

// Paper pass counts over GRCh38 (§2.2).
const (
	CASAPaperPasses  = 768
	GenAxPaperPasses = 512
)

// DefaultScale is the full harness scale (minutes of runtime).
func DefaultScale() Scale {
	return Scale{
		GenomeBases:   8 << 20,
		Reads:         2000,
		Seed:          1,
		CASAPartition: 512 << 10,
		GenAxSegment:  768 << 10,
		// GenAx's 12-mer table over a 6 Mbase segment is ~36% occupied;
		// a 768 Kbase segment needs k=11 (4^11 = 4.2 M) to stay in the
		// same occupancy regime, which is what drives GenAx's fetch and
		// intersection load.
		GenAxK:          11,
		ERTK:            15,
		PaperProjection: true,
	}
}

// SmallScale is a fast scale for tests (seconds of runtime).
func SmallScale() Scale {
	return Scale{
		GenomeBases:     256 << 10,
		Reads:           200,
		Seed:            1,
		CASAPartition:   64 << 10,
		GenAxSegment:    96 << 10,
		GenAxK:          9, // 4^9 = 262 K: ~37% occupancy at 96 Kbase segments
		ERTK:            15,
		PaperProjection: true,
	}
}

// Workload is one genome + read set (the harness builds a human-like and
// a mouse-like workload, standing in for GRCh38/ERR194147 and
// GRCm39/DWGSIM).
type Workload struct {
	Name  string
	Ref   dna.Sequence
	Sim   []readsim.Read
	Reads []dna.Sequence
}

// Suite owns the workloads and lazily-built engines.
type Suite struct {
	Scale     Scale
	Workloads []Workload

	engines map[string]*engineSet
	runs    map[string]*engineRuns
}

// engineSet bundles the per-workload engines.
type engineSet struct {
	casa  *core.Accelerator
	ert   *ert.Accelerator
	genax *genax.Accelerator
	b12   *cpu.Seeder
	b32   *cpu.Seeder
}

// engineRuns caches the per-workload seeding results.
type engineRuns struct {
	casa  *core.Result
	ert   *ert.Result
	genax *genax.Result
	b12   *cpu.Result
	b32   *cpu.Result
}

// NewSuite builds the human-like and mouse-like workloads.
func NewSuite(scale Scale) *Suite {
	s := &Suite{
		Scale:   scale,
		engines: make(map[string]*engineSet),
		runs:    make(map[string]*engineRuns),
	}
	for i, name := range []string{"human-like", "mouse-like"} {
		gcfg := readsim.DefaultGenome(scale.GenomeBases, scale.Seed+int64(i))
		ref := readsim.GenerateReference(gcfg)
		sim := readsim.Simulate(ref, readsim.DefaultProfile(scale.Reads, scale.Seed+10+int64(i)))
		s.Workloads = append(s.Workloads, Workload{
			Name:  name,
			Ref:   ref,
			Sim:   sim,
			Reads: readsim.Sequences(sim),
		})
	}
	return s
}

// CASAConfig returns the paper's CASA configuration scaled to the suite's
// partition size.
func (s *Suite) CASAConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PartitionBases = s.Scale.CASAPartition
	return cfg
}

// GenAxConfig returns the GenAx configuration at the suite scale.
func (s *Suite) GenAxConfig() genax.Config {
	cfg := genax.DefaultConfig()
	cfg.PartitionBases = s.Scale.GenAxSegment
	if s.Scale.GenAxK > 0 {
		cfg.K = s.Scale.GenAxK
	}
	return cfg
}

// ERTConfig returns the ASIC-ERT configuration at the suite scale.
func (s *Suite) ERTConfig() ert.AccelConfig {
	cfg := ert.DefaultAccelConfig()
	cfg.Index.K = s.Scale.ERTK
	return cfg
}

// Engines builds (once) and returns the engines for workload w.
func (s *Suite) Engines(w Workload) (*engineSet, error) {
	if e, ok := s.engines[w.Name]; ok {
		return e, nil
	}
	ca, err := engine.Build[*core.Accelerator]("casa", w.Ref, engine.Options{Config: s.CASAConfig()})
	if err != nil {
		return nil, fmt.Errorf("experiments: casa: %w", err)
	}
	ea, err := engine.Build[*ert.Accelerator]("ert", w.Ref, engine.Options{Config: s.ERTConfig()})
	if err != nil {
		return nil, fmt.Errorf("experiments: ert: %w", err)
	}
	ga, err := engine.Build[*genax.Accelerator]("genax", w.Ref, engine.Options{Config: s.GenAxConfig()})
	if err != nil {
		return nil, fmt.Errorf("experiments: genax: %w", err)
	}
	b12, err := engine.Build[*cpu.Seeder]("cpu", w.Ref, engine.Options{Config: cpu.B12T()})
	if err != nil {
		return nil, fmt.Errorf("experiments: cpu: %w", err)
	}
	b32, err := engine.Build[*cpu.Seeder]("cpu", w.Ref, engine.Options{Config: cpu.B32T()})
	if err != nil {
		return nil, fmt.Errorf("experiments: cpu: %w", err)
	}
	e := &engineSet{casa: ca, ert: ea, genax: ga, b12: b12, b32: b32}
	s.engines[w.Name] = e
	return e, nil
}

// Runs seeds workload w on every engine (once) and caches the results.
func (s *Suite) Runs(w Workload) (*engineRuns, error) {
	if r, ok := s.runs[w.Name]; ok {
		return r, nil
	}
	e, err := s.Engines(w)
	if err != nil {
		return nil, err
	}
	r := &engineRuns{
		casa:  e.casa.SeedReads(w.Reads),
		ert:   e.ert.SeedReads(w.Reads),
		genax: e.genax.SeedReads(w.Reads),
		b12:   e.b12.SeedReads(w.Reads),
		b32:   e.b32.SeedReads(w.Reads),
	}
	s.runs[w.Name] = r
	return r, nil
}

// casaFactor returns the time multiplier projecting a CASA run to the
// paper's 768 partition passes (1.0 when projection is off).
func (s *Suite) casaFactor(parts int) float64 {
	if !s.Scale.PaperProjection || parts <= 0 {
		return 1
	}
	return float64(CASAPaperPasses) / float64(parts)
}

// genaxFactor is casaFactor for GenAx's 512 segment passes.
func (s *Suite) genaxFactor(segments int) float64 {
	if !s.Scale.PaperProjection || segments <= 0 {
		return 1
	}
	return float64(GenAxPaperPasses) / float64(segments)
}

// PipelineEngines assembles a pipeline.Engines from the suite's engines
// plus a fresh SeedEx array.
func (s *Suite) PipelineEngines(w Workload) (*pipeline.Engines, error) {
	e, err := s.Engines(w)
	if err != nil {
		return nil, err
	}
	sx, err := seedex.New(w.Ref, seedex.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &pipeline.Engines{CASA: e.casa, ERT: e.ert, GenAx: e.genax, BWA: e.b12, SeedEx: sx}, nil
}
