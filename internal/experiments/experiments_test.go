package experiments

import (
	"strings"
	"testing"
)

// suite is shared across tests: building engines is the expensive part.
var shared *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		shared = NewSuite(SmallScale())
	}
	return shared
}

func TestNewSuiteWorkloads(t *testing.T) {
	s := getSuite(t)
	if len(s.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2", len(s.Workloads))
	}
	for _, w := range s.Workloads {
		if len(w.Ref) != s.Scale.GenomeBases {
			t.Errorf("%s: genome %d bases", w.Name, len(w.Ref))
		}
		if len(w.Reads) != s.Scale.Reads {
			t.Errorf("%s: %d reads", w.Name, len(w.Reads))
		}
	}
	if s.Workloads[0].Ref.Equal(s.Workloads[1].Ref) {
		t.Error("the two species share a genome")
	}
}

func TestFig5Declines(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].HitPivots > res.Rows[i-1].HitPivots {
			t.Errorf("hit pivots must decline with k: %+v", res.Rows)
		}
	}
	// The paper's 6.04x decline needs the full 4 Mbase partition (where
	// random 12-mer collisions hit ~24% of pivots); SmallScale partitions
	// only show the repeat-divergence component of the decline. Demand
	// monotone decline here; EXPERIMENTS.md records the DefaultScale run.
	if res.Ratio12to19 < 1.1 {
		t.Errorf("k=12/k=19 ratio = %.2f, want a decline", res.Ratio12to19)
	}
}

func TestFig12Ordering(t *testing.T) {
	s := getSuite(t)
	for _, w := range s.Workloads {
		res, err := s.Fig12(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Engines) != 5 {
			t.Fatalf("engines = %d", len(res.Engines))
		}
		casa := res.Metric("CASA")
		for _, other := range []string{"B-12T", "B-32T", "GenAx"} {
			if m := res.Metric(other); casa.Throughput <= m.Throughput {
				t.Errorf("%s: CASA (%.0f) not faster than %s (%.0f)",
					w.Name, casa.Throughput, other, m.Throughput)
			}
		}
		if b32, b12 := res.Metric("B-32T"), res.Metric("B-12T"); b32.Throughput <= b12.Throughput {
			t.Errorf("%s: B-32T not faster than B-12T", w.Name)
		}
	}
}

func TestFig13PowerShape(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig12(s.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	casa, ert, genax := res.Metric("CASA"), res.Metric("ERT"), res.Metric("GenAx")
	// Fig 13a: ERT consumes the most power (DRAM-dominated).
	if !(ert.PowerW > casa.PowerW) {
		t.Errorf("ERT power (%.1f) must exceed CASA (%.1f)", ert.PowerW, casa.PowerW)
	}
	// Fig 13b: CASA has the best energy efficiency.
	if !(casa.ReadsPerMJ > ert.ReadsPerMJ && casa.ReadsPerMJ > genax.ReadsPerMJ) {
		t.Errorf("CASA efficiency (%.1f) must beat ERT (%.1f) and GenAx (%.1f)",
			casa.ReadsPerMJ, ert.ReadsPerMJ, genax.ReadsPerMJ)
	}
	// §7.2: CASA and GenAx stay under 30 GB/s DRAM bandwidth.
	if casa.DRAMGBs >= 30 {
		t.Errorf("CASA DRAM bandwidth %.1f GB/s >= 30", casa.DRAMGBs)
	}
}

func TestFig14(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig14(s.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdowns) != 4 {
		t.Fatalf("breakdowns = %d", len(res.Breakdowns))
	}
	// Normalized to BWA-MEM2 = 1.0.
	for _, b := range res.Breakdowns {
		if b.System == "BWA-MEM2" {
			if tot := b.Total(); tot < 0.999 || tot > 1.001 {
				t.Errorf("BWA normalized total = %f", tot)
			}
		} else if b.Total() >= 1.0 {
			t.Errorf("%s slower than BWA-MEM2: %f", b.System, b.Total())
		}
	}
	if res.SpeedupVs["BWA-MEM2"] <= 1 {
		t.Errorf("CASA+SeedEx not faster than BWA-MEM2: %f", res.SpeedupVs["BWA-MEM2"])
	}
}

func TestFig15FilterRates(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Naive >= res.Table && res.Table >= res.TableAnalysis) {
		t.Fatalf("pivot counts not monotone: %+v", res)
	}
	// The paper reports 98.9% / 99.9%; at test scale demand strong rates.
	if res.TableFilterRate < 0.5 {
		t.Errorf("table filter rate %.3f too low", res.TableFilterRate)
	}
	if res.AnalysisFilterRate < res.TableFilterRate {
		t.Errorf("analysis must filter more than table alone: %+v", res)
	}
}

func TestFig16(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if res.InexactReads == 0 {
		t.Fatal("no inexact reads generated")
	}
	if res.GenAx != 1 {
		t.Error("normalization broken")
	}
	// Fig 16: CASA beats GenAx on inexact reads (paper: 3.86x).
	if res.CASA <= 1 {
		t.Errorf("CASA normalized inexact throughput = %.2f, want > 1", res.CASA)
	}
}

func TestTable3(t *testing.T) {
	if len(Table3()) != 4 {
		t.Error("Table 3 must have 4 rows")
	}
}

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry partition build")
	}
	s := getSuite(t)
	res, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Area synthesized from Table 3 macros must land near the paper's.
	if res.TotalArea < 240 || res.TotalArea > 360 {
		t.Errorf("total area = %.1f mm^2, paper says %.1f", res.TotalArea, res.PaperArea)
	}
	if res.AreaVsGenAx < 0.1 || res.AreaVsGenAx > 0.7 {
		t.Errorf("area increase vs GenAx = %.3f, paper says 0.339", res.AreaVsGenAx)
	}
	if len(res.PaperRows) != 6 {
		t.Error("paper rows missing")
	}
}

func TestSummarize(t *testing.T) {
	s := getSuite(t)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.CASAOverB12 <= 1 || sum.CASAOverGenAx <= 1 {
		t.Errorf("CASA speedups missing: %+v", sum)
	}
	if sum.CASAOverB12 <= sum.CASAOverB32 {
		t.Error("speedup over B-12T must exceed B-32T")
	}
	if sum.EffOverGenAx <= 1 || sum.EffOverERT <= 1 {
		t.Errorf("efficiency ratios: %+v", sum)
	}
	if sum.ExactFraction < 0.5 || sum.ExactFraction > 0.95 {
		t.Errorf("exact fraction = %.2f", sum.ExactFraction)
	}
	if sum.CASADRAMGBs >= 30 {
		t.Errorf("CASA DRAM bandwidth %.1f >= 30 GB/s", sum.CASADRAMGBs)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "333") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("render lines = %d", len(lines))
	}
}
