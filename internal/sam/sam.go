// Package sam writes alignment results in the SAM format (the Sequence
// Alignment/Map text format consumed by samtools and the GATK pipeline
// the paper's §1 motivates). Only the subset needed by a single-end
// aligner is implemented: @HD/@SQ/@PG headers and the eleven mandatory
// fields with NM/AS tags.
package sam

import (
	"bufio"
	"fmt"
	"io"

	"casa/internal/align"
	"casa/internal/dna"
)

// Flag bits (SAM spec §1.4).
const (
	FlagPaired       = 0x1 // template has multiple segments
	FlagProperPair   = 0x2 // both mates aligned in proper orientation/insert
	FlagUnmapped     = 0x4
	FlagMateUnmapped = 0x8
	FlagReverse      = 0x10 // sequence is reverse-complemented in the record
	FlagMateReverse  = 0x20
	FlagFirstInPair  = 0x40
	FlagLastInPair   = 0x80
)

// Record is one SAM alignment line.
type Record struct {
	QName string
	Flag  int
	RName string // reference name; "*" when unmapped
	Pos   int    // 1-based leftmost mapping position; 0 when unmapped
	MapQ  int
	Cigar align.Cigar
	// Mate fields (paired-end); zero values render as "*"/0.
	RNext string // "=" when the mate maps to the same reference
	PNext int    // 1-based mate position
	TLen  int    // signed observed template length
	Seq   dna.Sequence
	Qual  []byte // Phred+33; may be nil
	// Optional tags.
	EditDistance int // NM:i
	Score        int // AS:i
	HasTags      bool
}

// Unmapped returns a record for a read that failed to align.
func Unmapped(name string, seq dna.Sequence, qual []byte) Record {
	return Record{QName: name, Flag: FlagUnmapped, RName: "*", Seq: seq, Qual: qual}
}

// Writer emits a SAM header followed by records.
type Writer struct {
	bw     *bufio.Writer
	wrote  bool
	refs   []RefSeq
	pgName string
}

// RefSeq describes one reference sequence for the @SQ header.
type RefSeq struct {
	Name   string
	Length int
}

// NewWriter creates a SAM writer for the given reference set. pgName is
// recorded in the @PG header line.
func NewWriter(w io.Writer, refs []RefSeq, pgName string) *Writer {
	return &Writer{bw: bufio.NewWriter(w), refs: refs, pgName: pgName}
}

// writeHeader emits @HD, @SQ and @PG lines once.
func (w *Writer) writeHeader() {
	fmt.Fprintf(w.bw, "@HD\tVN:1.6\tSO:unsorted\n")
	for _, r := range w.refs {
		fmt.Fprintf(w.bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length)
	}
	if w.pgName != "" {
		fmt.Fprintf(w.bw, "@PG\tID:%s\tPN:%s\n", w.pgName, w.pgName)
	}
}

// Write emits one record (emitting the header first if needed).
func (w *Writer) Write(rec Record) error {
	if !w.wrote {
		w.writeHeader()
		w.wrote = true
	}
	cigar := "*"
	if len(rec.Cigar) > 0 {
		cigar = rec.Cigar.String()
	}
	qual := "*"
	if len(rec.Qual) == len(rec.Seq) && len(rec.Qual) > 0 {
		qual = string(rec.Qual)
	}
	rname := rec.RName
	if rname == "" {
		rname = "*"
	}
	rnext := rec.RNext
	if rnext == "" {
		rnext = "*"
	}
	_, err := fmt.Fprintf(w.bw, "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s",
		rec.QName, rec.Flag, rname, rec.Pos, rec.MapQ, cigar, rnext, rec.PNext, rec.TLen, rec.Seq, qual)
	if err != nil {
		return err
	}
	if rec.HasTags {
		if _, err := fmt.Fprintf(w.bw, "\tNM:i:%d\tAS:i:%d", rec.EditDistance, rec.Score); err != nil {
			return err
		}
	}
	return w.bw.WriteByte('\n')
}

// Flush writes buffered output (emitting the header even for empty
// record sets, so downstream tools see a valid file).
func (w *Writer) Flush() error {
	if !w.wrote {
		w.writeHeader()
		w.wrote = true
	}
	return w.bw.Flush()
}

// MapQFromScores converts a best and second-best alignment score into a
// Phred-scaled mapping quality, the standard heuristic: confident unique
// hits get high MAPQ, ties get 0.
func MapQFromScores(best, second, readLen int) int {
	if best <= 0 {
		return 0
	}
	if second < 0 {
		second = 0
	}
	diff := best - second
	if diff <= 0 {
		return 0
	}
	q := 40 * diff / max(best, 1)
	if q > 60 {
		q = 60
	}
	return q
}
