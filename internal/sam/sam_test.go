package sam

import (
	"bytes"
	"strings"
	"testing"

	"casa/internal/align"
	"casa/internal/dna"
)

func TestWriterHeaderAndRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "chr1", Length: 1000}}, "casa-align")
	rec := Record{
		QName:        "read1",
		Flag:         0,
		RName:        "chr1",
		Pos:          42,
		MapQ:         60,
		Cigar:        align.Cigar{{Op: align.OpMatch, Len: 10}},
		Seq:          dna.FromString("ACGTACGTAC"),
		Qual:         []byte("IIIIIIIIII"),
		EditDistance: 1,
		Score:        9,
		HasTags:      true,
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "@HD\tVN:1.6") {
		t.Errorf("HD line: %q", lines[0])
	}
	if lines[1] != "@SQ\tSN:chr1\tLN:1000" {
		t.Errorf("SQ line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "@PG\tID:casa-align") {
		t.Errorf("PG line: %q", lines[2])
	}
	fields := strings.Split(lines[3], "\t")
	if len(fields) != 13 {
		t.Fatalf("record has %d fields: %q", len(fields), lines[3])
	}
	want := []string{"read1", "0", "chr1", "42", "60", "10M", "*", "0", "0", "ACGTACGTAC", "IIIIIIIIII", "NM:i:1", "AS:i:9"}
	for i, f := range want {
		if fields[i] != f {
			t.Errorf("field %d = %q, want %q", i, fields[i], f)
		}
	}
}

func TestUnmappedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, nil, "")
	rec := Unmapped("r", dna.FromString("ACG"), nil)
	if rec.Flag&FlagUnmapped == 0 {
		t.Error("unmapped flag missing")
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	line := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := line[len(line)-1]
	fields := strings.Split(last, "\t")
	if fields[2] != "*" || fields[3] != "0" || fields[5] != "*" || fields[10] != "*" {
		t.Errorf("unmapped record: %q", last)
	}
}

func TestFlushEmitsHeaderForEmptyOutput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "c", Length: 5}}, "p")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@SQ\tSN:c") {
		t.Errorf("empty flush lacks header: %q", buf.String())
	}
}

func TestPairedFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "chr1", Length: 1000}}, "")
	rec := Record{
		QName: "p", Flag: FlagPaired | FlagProperPair | FlagFirstInPair | FlagMateReverse,
		RName: "chr1", Pos: 100, MapQ: 60,
		Cigar: align.Cigar{{Op: align.OpMatch, Len: 4}},
		RNext: "=", PNext: 400, TLen: 404,
		Seq: dna.FromString("ACGT"),
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fields := strings.Split(lines[len(lines)-1], "\t")
	if fields[1] != "99" { // 0x1|0x2|0x20|0x40
		t.Errorf("flag = %s, want 99", fields[1])
	}
	if fields[6] != "=" || fields[7] != "400" || fields[8] != "404" {
		t.Errorf("mate fields = %s %s %s", fields[6], fields[7], fields[8])
	}
}

func TestFlagConstants(t *testing.T) {
	// SAM spec values must never drift.
	want := map[int]int{
		FlagPaired: 0x1, FlagProperPair: 0x2, FlagUnmapped: 0x4,
		FlagMateUnmapped: 0x8, FlagReverse: 0x10, FlagMateReverse: 0x20,
		FlagFirstInPair: 0x40, FlagLastInPair: 0x80,
	}
	for got, exp := range want {
		if got != exp {
			t.Errorf("flag constant %#x != %#x", got, exp)
		}
	}
}

func TestMapQFromScores(t *testing.T) {
	if q := MapQFromScores(100, 100, 100); q != 0 {
		t.Errorf("tied scores MAPQ = %d, want 0", q)
	}
	if q := MapQFromScores(100, 0, 100); q <= 30 {
		t.Errorf("unique hit MAPQ = %d, want high", q)
	}
	if q := MapQFromScores(0, 0, 100); q != 0 {
		t.Errorf("zero score MAPQ = %d", q)
	}
	if q := MapQFromScores(100, -5, 100); q > 60 {
		t.Errorf("MAPQ = %d exceeds cap", q)
	}
	// Monotone in the gap.
	if MapQFromScores(100, 80, 100) >= MapQFromScores(100, 20, 100) {
		t.Error("MAPQ not monotone in score gap")
	}
}
