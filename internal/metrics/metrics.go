// Package metrics is the engine-wide observability layer of the CASA
// reproduction: a lightweight, std-lib-only registry of named counters,
// gauges and histograms that every engine (casa, ert, genax, gencache,
// cpu, fmindex, seedex) publishes into under a shared naming scheme.
//
// Names are slash-separated paths of the form
//
//	engine/stage/counter
//
// (e.g. "casa/pivots/filtered_table", "ert/cache/hits",
// "gencache/model/seconds"), each segment lower-case [a-z0-9_]+. The
// scheme mirrors the paper's evaluation structure (§6–§7): per-stage
// activity counters feed the Fig 12–15 breakdowns, model gauges carry the
// finalized time/energy numbers.
//
// Determinism contract: counters and histograms are integer-valued and
// additive, so merging any sharding of a workload's per-worker registries
// (Registry.Merge) yields byte-identical totals to a sequential run —
// the same invariant internal/batch maintains for engine Results. Gauges
// are point-in-time values set once from a finalized Result; Merge
// overwrites them with the source value.
//
// Hot-path cost: obtaining a *Counter is a locked map lookup, but engines
// do it once per batch (or hold the pointer); Counter.Add is a single
// atomic add with no allocation.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SchemaVersion identifies the JSON document layout emitted by
// Registry.WriteJSON. Bump only on incompatible changes; additions of new
// metric names are not schema changes.
const SchemaVersion = "casa-metrics/v1"

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; obtain shared instances from Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the monotonicity
// contract; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float metric (seconds, watts, reads/s). Set
// replaces the value; gauges are written once per run from finalized
// Results, not accumulated.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop, safe for concurrent use). The
// serving layer uses gauges as live levels — in-flight requests, queue
// depth, open SSE streams — where paired +1/-1 shifts, not one-shot Sets,
// are the natural update. Model gauges keep the set-once discipline.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution of integer observations
// (per-read SMEM counts, pivots per read, ...). Buckets are defined by
// ascending upper bounds; an implicit +Inf bucket catches the rest.
// Integer sums keep merges byte-identical regardless of worker order.
type Histogram struct {
	bounds []int64        // ascending upper bounds (inclusive)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// PowerOfTwoBounds returns the n ascending bounds 1, 2, 4, ..., 2^(n-1)
// — the shared bucket layout of the serving layer's wall-clock duration
// histograms (unit: microseconds; 30 buckets span 1 µs to ~9 min, enough
// for any request this side of a timeout). A shared helper rather than
// per-call-site literals so every duration histogram agrees on bounds
// and Merge never trips over a mismatch.
func PowerOfTwoBounds(n int) []int64 {
	if n < 1 {
		n = 1
	}
	if n > 62 {
		n = 62
	}
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = 1 << i
	}
	return bounds
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// of the recorded observations: the upper bound of the bucket holding the
// rank-⌈q·n⌉ observation. Returns 0 when the histogram is empty. For
// observations in the +Inf bucket the estimate is twice the largest
// finite bound — a deliberate overestimate, never an underestimate, which
// is the safe direction for the backpressure hints derived from it.
func (h *Histogram) Quantile(q float64) int64 {
	return QuantileFromBuckets(h.bounds, h.BucketCounts(), h.n.Load(), q)
}

// QuantileFromBuckets is Histogram.Quantile over an already-frozen
// snapshot (bounds without +Inf, per-bucket counts with the +Inf bucket
// last, total observation count) — the form /v1/stats computes from
// Registry.Snapshots.
func QuantileFromBuckets(bounds, counts []int64, n int64, q float64) int64 {
	if n <= 0 || len(counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	// The +Inf bucket (or a snapshot whose counts undershoot n).
	if len(bounds) == 0 {
		return 0
	}
	return 2 * bounds[len(bounds)-1]
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (not including +Inf).
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts, the last entry being the
// +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry holds the named metrics of one run (or one worker's shard of a
// run). Metric creation is locked; reads and updates of the returned
// instruments are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// validName reports whether name follows the engine/stage/counter scheme:
// 2–4 slash-separated segments of [a-z0-9_]+.
func validName(name string) bool {
	segs := strings.Split(name, "/")
	if len(segs) < 2 || len(segs) > 4 {
		return false
	}
	for _, s := range segs {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !('a' <= c && c <= 'z' || '0' <= c && c <= '9' || c == '_') {
				return false
			}
		}
	}
	return true
}

// checkName panics on malformed names: metric names are compile-time
// constants in engine code, so a bad one is a programming error, not a
// runtime condition.
func checkName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: name %q does not match engine/stage/counter ([a-z0-9_]+ segments)", name))
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Panics if name is malformed or already registered as another
// kind.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkKindFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkKindFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds if needed. Re-registration with
// different bounds panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	checkName(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	r.checkKindFree(name, "histogram")
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkKindFree panics if name is already taken by a different kind.
// Callers hold r.mu.
func (r *Registry) checkKindFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as histogram, requested as %s", name, kind))
	}
}

// Merge folds src into r: counters and histogram buckets add, gauges take
// src's value. Merging the per-worker registries of any sharding of a
// batch — in any order — yields the same totals as a sequential run,
// because every additive metric is integer-valued.
//
// Histograms merge by identity of bounds: if src and r both hold a
// histogram under the same name but with different bucket bounds, Merge
// panics (via Registry.Histogram's re-registration check). Bounds are
// compile-time constants wherever histograms are created, so a
// disagreement is a programming error — silently resampling one layout
// into the other would corrupt the determinism contract.
func (r *Registry) Merge(src *Registry) {
	r.mergePrefixed(src, "")
}

// MergePrefixed folds src into r with every metric name prefixed by
// prefix+"/" — how a serving process accumulates each finished run's
// engine registry into its lifetime registry ("casa/reads/seeded"
// becomes "lifetime/casa/reads/seeded") without colliding with its own
// serving metrics. Names that would exceed the 4-segment limit are
// skipped; the count of skipped names is returned so callers can surface
// the gap instead of silently under-reporting.
func (r *Registry) MergePrefixed(src *Registry, prefix string) int {
	return r.mergePrefixed(src, prefix+"/")
}

func (r *Registry) mergePrefixed(src *Registry, prefix string) int {
	if r == src {
		return 0
	}
	src.mu.Lock()
	names := make([]string, 0, len(src.counters)+len(src.gauges)+len(src.histograms))
	for name := range src.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	type cval struct {
		name string
		v    int64
	}
	cvals := make([]cval, 0, len(names))
	for _, name := range names {
		cvals = append(cvals, cval{name, src.counters[name].Value()})
	}
	type gval struct {
		name string
		v    float64
	}
	gvals := make([]gval, 0, len(src.gauges))
	for name, g := range src.gauges {
		gvals = append(gvals, gval{name, g.Value()})
	}
	type hval struct {
		name   string
		bounds []int64
		counts []int64
		sum    int64
		n      int64
	}
	hvals := make([]hval, 0, len(src.histograms))
	for name, h := range src.histograms {
		hvals = append(hvals, hval{name, h.Bounds(), h.BucketCounts(), h.Sum(), h.Count()})
	}
	src.mu.Unlock()

	skipped := 0
	for _, c := range cvals {
		if name, ok := prefixed(prefix, c.name); ok {
			r.Counter(name).Add(c.v)
		} else {
			skipped++
		}
	}
	for _, g := range gvals {
		if name, ok := prefixed(prefix, g.name); ok {
			r.Gauge(name).Set(g.v)
		} else {
			skipped++
		}
	}
	for _, h := range hvals {
		name, ok := prefixed(prefix, h.name)
		if !ok {
			skipped++
			continue
		}
		dst := r.Histogram(name, h.bounds)
		for i, n := range h.counts {
			dst.counts[i].Add(n)
		}
		dst.sum.Add(h.sum)
		dst.n.Add(h.n)
	}
	return skipped
}

// prefixed joins prefix (either "" or "lifetime/"-style, slash included)
// with name, reporting whether the result still fits the naming scheme.
func prefixed(prefix, name string) (string, bool) {
	if prefix == "" {
		return name, true
	}
	full := prefix + name
	return full, validName(full)
}

// Snapshot is one metric's frozen value, used for deterministic output.
type Snapshot struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"

	Counter int64
	Gauge   float64

	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// Snapshots returns every metric's current value, sorted by name.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Snapshot{Name: name, Kind: "counter", Counter: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Gauge: g.Value()})
	}
	for name, h := range r.histograms {
		out = append(out, Snapshot{
			Name: name, Kind: "histogram",
			Bounds: h.Bounds(), Counts: h.BucketCounts(), Sum: h.Sum(), Count: h.Count(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// histogramJSON is the JSON shape of one histogram.
type histogramJSON struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// document is the WriteJSON layout (SchemaVersion).
type document struct {
	Schema     string                   `json:"schema"`
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms,omitempty"`
}

// WriteJSON writes the registry as one JSON document. Output is
// deterministic: encoding/json sorts map keys, and all additive values
// are integers.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := r.jsonDocument()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// MarshalJSON implements json.Marshaler so a Registry can be embedded in
// larger JSON documents (the casa-smem -json output).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.jsonDocument())
}

func (r *Registry) jsonDocument() document {
	doc := document{
		Schema:   SchemaVersion,
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
	}
	for _, s := range r.Snapshots() {
		switch s.Kind {
		case "counter":
			doc.Counters[s.Name] = s.Counter
		case "gauge":
			doc.Gauges[s.Name] = s.Gauge
		case "histogram":
			if doc.Histograms == nil {
				doc.Histograms = map[string]histogramJSON{}
			}
			doc.Histograms[s.Name] = histogramJSON{
				Bounds: s.Bounds, Counts: s.Counts, Sum: s.Sum, Count: s.Count,
			}
		}
	}
	return doc
}

// WriteText writes the registry in a Prometheus-style text exposition
// format (slashes become underscores), sorted by name, for the /metrics
// endpoint and the -metrics CLI flag.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshots() {
		flat := strings.ReplaceAll(s.Name, "/", "_")
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", flat, flat, s.Counter)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", flat, flat, s.Gauge)
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", flat); err != nil {
				return err
			}
			cum := int64(0)
			for i, n := range s.Counts {
				cum += n
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmt.Sprintf("%d", s.Bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", flat, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", flat, s.Sum, flat, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two registries hold the same metrics with the
// same values (the determinism-test comparison).
func Equal(a, b *Registry) bool {
	sa, sb := a.Snapshots(), b.Snapshots()
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		x, y := sa[i], sb[i]
		if x.Name != y.Name || x.Kind != y.Kind || x.Counter != y.Counter ||
			x.Gauge != y.Gauge || x.Sum != y.Sum || x.Count != y.Count ||
			len(x.Bounds) != len(y.Bounds) || len(x.Counts) != len(y.Counts) {
			return false
		}
		for j := range x.Bounds {
			if x.Bounds[j] != y.Bounds[j] {
				return false
			}
		}
		for j := range x.Counts {
			if x.Counts[j] != y.Counts[j] {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference
// between two registries, or "" if they are equal. Test helpers use it
// for actionable failure messages.
func Diff(a, b *Registry) string {
	sa, sb := a.Snapshots(), b.Snapshots()
	ia, ib := 0, 0
	for ia < len(sa) || ib < len(sb) {
		switch {
		case ib >= len(sb) || (ia < len(sa) && sa[ia].Name < sb[ib].Name):
			return fmt.Sprintf("metric %q only in first registry", sa[ia].Name)
		case ia >= len(sa) || sa[ia].Name > sb[ib].Name:
			return fmt.Sprintf("metric %q only in second registry", sb[ib].Name)
		default:
			x, y := sa[ia], sb[ib]
			if x.Kind != y.Kind {
				return fmt.Sprintf("%s: kind %s vs %s", x.Name, x.Kind, y.Kind)
			}
			if x.Counter != y.Counter {
				return fmt.Sprintf("%s: %d vs %d", x.Name, x.Counter, y.Counter)
			}
			if x.Gauge != y.Gauge {
				return fmt.Sprintf("%s: %g vs %g", x.Name, x.Gauge, y.Gauge)
			}
			if x.Sum != y.Sum || x.Count != y.Count {
				return fmt.Sprintf("%s: sum/count %d/%d vs %d/%d", x.Name, x.Sum, x.Count, y.Sum, y.Count)
			}
			for j := range x.Counts {
				if x.Counts[j] != y.Counts[j] {
					return fmt.Sprintf("%s: bucket %d: %d vs %d", x.Name, j, x.Counts[j], y.Counts[j])
				}
			}
			ia++
			ib++
		}
	}
	return ""
}
