package metrics

import (
	"bufio"
	"bytes"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestWriteTextExpositionGrammar checks WriteText against the Prometheus
// text-exposition rules a scraper depends on: every sample line matches
// the grammar, each family's TYPE line precedes its samples, families
// appear in sorted order, histogram buckets are cumulative with an +Inf
// bucket equal to the family's _count, and metric names contain no
// characters the format forbids.
func TestWriteTextExpositionGrammar(t *testing.T) {
	r := New()
	r.Counter("engine/casa/reads").Add(42)
	r.Counter("engine/casa/cycles").Add(9000)
	r.Gauge("model/throughput").Set(123.5)
	h := r.Histogram("seed/len", []int64{10, 20, 40})
	for _, v := range []int64{5, 15, 15, 30, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	var (
		typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (-?[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)
	)

	typed := map[string]string{} // family -> declared type
	var familyOrder []string
	type bucketState struct {
		last    int64
		inf     int64
		hasInf  bool
		lastLE  float64
		ordered bool
	}
	buckets := map[string]*bucketState{}
	values := map[string]string{}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed comment line %q", line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("family %s declared twice", m[1])
			}
			typed[m[1]] = m[2]
			familyOrder = append(familyOrder, m[1])
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("sample line %q does not match the exposition grammar", line)
		}
		name, le, val := m[1], m[2], m[3]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		kind, ok := typed[family]
		if !ok {
			t.Fatalf("sample %q appears before its TYPE line", line)
		}
		if strings.HasSuffix(name, "_bucket") {
			if kind != "histogram" {
				t.Fatalf("%s: bucket sample on %s family", name, kind)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("%s: bucket value %q: %v", name, val, err)
			}
			st := buckets[family]
			if st == nil {
				st = &bucketState{ordered: true}
				buckets[family] = st
			}
			if n < st.last {
				t.Errorf("%s: bucket counts not cumulative: %d after %d", family, n, st.last)
			}
			st.last = n
			if le == "+Inf" {
				st.hasInf, st.inf = true, n
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: le=%q: %v", family, le, err)
				}
				if st.hasInf || b <= st.lastLE && st.lastLE != 0 {
					st.ordered = false
				}
				st.lastLE = b
			}
			continue
		}
		if le != "" {
			t.Fatalf("non-bucket sample %q carries an le label", line)
		}
		values[name] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("families not emitted in sorted order: %v", familyOrder)
	}
	for fam, kind := range typed {
		switch kind {
		case "counter", "gauge":
			if _, ok := values[fam]; !ok {
				t.Errorf("%s family %s has no sample", kind, fam)
			}
		case "histogram":
			st := buckets[fam]
			if st == nil || !st.hasInf {
				t.Fatalf("histogram %s missing an +Inf bucket", fam)
			}
			if !st.ordered {
				t.Errorf("histogram %s bucket bounds not increasing with +Inf last", fam)
			}
			count, ok := values[fam+"_count"]
			if !ok {
				t.Fatalf("histogram %s missing _count", fam)
			}
			if n, _ := strconv.ParseInt(count, 10, 64); n != st.inf {
				t.Errorf("histogram %s: +Inf bucket %d != _count %d", fam, st.inf, n)
			}
			if _, ok := values[fam+"_sum"]; !ok {
				t.Errorf("histogram %s missing _sum", fam)
			}
		}
	}

	// Pin the histogram numbers themselves: 5 observations, cumulative
	// buckets 1/3/4 then +Inf=5, sum 165.
	st := buckets["seed_len"]
	if st == nil || st.inf != 5 {
		t.Fatalf("seed_len +Inf bucket = %+v, want 5", st)
	}
	if values["seed_len_sum"] != "165" {
		t.Errorf("seed_len_sum = %s, want 165", values["seed_len_sum"])
	}
}
