package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGetOrCreateIdentity(t *testing.T) {
	r := New()
	a := r.Counter("casa/pivots/total")
	b := r.Counter("casa/pivots/total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	b.Inc()
	if got := r.Counter("casa/pivots/total").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
}

func TestNameValidation(t *testing.T) {
	r := New()
	for _, good := range []string{"casa/pivots/total", "ert/cache/hits", "a/b", "x/y/z/w", "cpu/model/reads_per_mj"} {
		r.Counter(good) // must not panic
	}
	for _, bad := range []string{"", "casa", "Casa/pivots/total", "casa//total", "/casa/x", "casa/x/", "a/b/c/d/e", "casa/piv ots/x", "casa/pivots/Total"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("malformed name %q accepted", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestKindClashPanics(t *testing.T) {
	r := New()
	r.Counter("casa/model/cycles")
	defer func() {
		if recover() == nil {
			t.Error("gauge under counter name accepted")
		}
	}()
	r.Gauge("casa/model/cycles")
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("casa/model/seconds")
	g.Set(1.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("casa/reads/smems_per_read", []int64{0, 1, 4})
	for _, v := range []int64{0, 0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 3, 1} // <=0, <=1, <=4, +Inf
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 7 || h.Sum() != 110 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("a/b", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("bounds mismatch accepted")
		}
	}()
	r.Histogram("a/b", []int64{1, 3})
}

func TestMergeSumsCountersAndHistograms(t *testing.T) {
	shard := func(n int64) *Registry {
		r := New()
		r.Counter("casa/pivots/total").Add(n)
		r.Gauge("casa/model/seconds").Set(float64(n))
		h := r.Histogram("casa/reads/smems_per_read", []int64{1, 10})
		h.Observe(n)
		return r
	}
	merged := New()
	for _, n := range []int64{1, 2, 3} {
		merged.Merge(shard(n))
	}
	if got := merged.Counter("casa/pivots/total").Value(); got != 6 {
		t.Errorf("merged counter = %d, want 6", got)
	}
	if got := merged.Gauge("casa/model/seconds").Value(); got != 3 {
		t.Errorf("merged gauge = %g, want 3 (last write)", got)
	}
	h := merged.Histogram("casa/reads/smems_per_read", []int64{1, 10})
	if h.Count() != 3 || h.Sum() != 6 {
		t.Errorf("merged histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	counts := h.BucketCounts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 0 {
		t.Errorf("merged buckets = %v", counts)
	}
}

func TestMergeOrderInvariant(t *testing.T) {
	mk := func(order []int64) *Registry {
		dst := New()
		for _, n := range order {
			src := New()
			src.Counter("e/s/c").Add(n)
			src.Histogram("e/s/h", []int64{5}).Observe(n)
			dst.Merge(src)
		}
		return dst
	}
	a := mk([]int64{1, 2, 3, 4})
	b := mk([]int64{4, 3, 2, 1})
	if !Equal(a, b) {
		t.Fatalf("merge order changed totals: %s", Diff(a, b))
	}
}

func TestSelfMergeIsNoop(t *testing.T) {
	r := New()
	r.Counter("e/s/c").Add(5)
	r.Merge(r)
	if got := r.Counter("e/s/c").Value(); got != 5 {
		t.Fatalf("self-merge doubled counter: %d", got)
	}
}

func TestSnapshotsSorted(t *testing.T) {
	r := New()
	r.Counter("z/s/c").Inc()
	r.Gauge("a/s/g").Set(1)
	r.Counter("m/s/c").Inc()
	snaps := r.Snapshots()
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name >= snaps[i].Name {
			t.Fatalf("snapshots not sorted: %q >= %q", snaps[i-1].Name, snaps[i].Name)
		}
	}
}

func TestWriteJSONStable(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("casa/pivots/total").Add(42)
		r.Counter("ert/cache/hits").Add(7)
		r.Gauge("casa/model/seconds").Set(0.5)
		r.Histogram("casa/reads/smems_per_read", []int64{1}).Observe(3)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON output not byte-stable across identical registries")
	}
	var doc struct {
		Schema   string             `json:"schema"`
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", doc.Schema, SchemaVersion)
	}
	if doc.Counters["casa/pivots/total"] != 42 || doc.Gauges["casa/model/seconds"] != 0.5 {
		t.Errorf("document content wrong: %+v", doc)
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("casa/pivots/total").Add(42)
	r.Gauge("casa/model/seconds").Set(0.5)
	r.Histogram("casa/reads/smems_per_read", []int64{1, 4}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE casa_pivots_total counter",
		"casa_pivots_total 42",
		"casa_model_seconds 0.5",
		`casa_reads_smems_per_read_bucket{le="4"} 1`,
		`casa_reads_smems_per_read_bucket{le="+Inf"} 1`,
		"casa_reads_smems_per_read_sum 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentCounterAdds(t *testing.T) {
	r := New()
	c := r.Counter("e/s/c")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Counter("e/s/c2").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || r.Counter("e/s/c2").Value() != 8000 {
		t.Fatalf("lost updates: %d %d", c.Value(), r.Counter("e/s/c2").Value())
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := New(), New()
	a.Counter("e/s/c").Add(1)
	b.Counter("e/s/c").Add(1)
	if !Equal(a, b) || Diff(a, b) != "" {
		t.Fatal("identical registries reported unequal")
	}
	b.Counter("e/s/c").Add(1)
	if Equal(a, b) || Diff(a, b) == "" {
		t.Fatal("different registries reported equal")
	}
}

func TestGaugeAdd(t *testing.T) {
	r := New()
	g := r.Gauge("serve/queue/depth")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after +3-1 = %g, want 2", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after paired concurrent shifts = %g, want 2", got)
	}
}

func TestPowerOfTwoBounds(t *testing.T) {
	b := PowerOfTwoBounds(5)
	want := []int64{1, 2, 4, 8, 16}
	if len(b) != len(want) {
		t.Fatalf("bounds %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds %v, want %v", b, want)
		}
	}
	if got := PowerOfTwoBounds(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PowerOfTwoBounds(0) = %v, want [1]", got)
	}
	if got := PowerOfTwoBounds(100); len(got) != 62 {
		t.Fatalf("PowerOfTwoBounds(100) has %d bounds, want the 62 cap", len(got))
	}
	// The layout must be a valid ascending histogram spec.
	New().Histogram("a/b", PowerOfTwoBounds(30))
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("serve/run/duration_us", PowerOfTwoBounds(10))
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	// 90 observations in the (2,4] bucket, 10 in (256,512].
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(400)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4", got)
	}
	if got := h.Quantile(0.99); got != 512 {
		t.Fatalf("p99 = %d, want 512", got)
	}
	if got := h.Quantile(1); got != 512 {
		t.Fatalf("p100 = %d, want 512", got)
	}
	// An observation beyond the largest bound lands in +Inf: the estimate
	// is twice the largest finite bound, an upper bound by construction.
	h.Observe(1 << 20)
	if got := h.Quantile(1); got != 1024 {
		t.Fatalf("p100 with +Inf observation = %d, want 1024", got)
	}
}

func TestQuantileFromBucketsSnapshot(t *testing.T) {
	r := New()
	h := r.Histogram("a/b", []int64{10, 100})
	for i := 0; i < 7; i++ {
		h.Observe(5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(50)
	}
	var snap Snapshot
	for _, s := range r.Snapshots() {
		if s.Name == "a/b" {
			snap = s
		}
	}
	if got := QuantileFromBuckets(snap.Bounds, snap.Counts, snap.Count, 0.5); got != 10 {
		t.Fatalf("snapshot p50 = %d, want 10", got)
	}
	if got := QuantileFromBuckets(snap.Bounds, snap.Counts, snap.Count, 0.9); got != 100 {
		t.Fatalf("snapshot p90 = %d, want 100", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0, 0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %d, want 0", got)
	}
}

func TestMergePrefixed(t *testing.T) {
	src := New()
	src.Counter("casa/reads/seeded").Add(7)
	src.Gauge("casa/model/seconds").Set(1.5)
	src.Histogram("casa/smem/lengths", []int64{1, 2}).Observe(2)

	dst := New()
	dst.Counter("serve/runs/completed").Add(1)
	if skipped := dst.MergePrefixed(src, "lifetime"); skipped != 0 {
		t.Fatalf("skipped %d names, want 0", skipped)
	}
	if got := dst.Counter("lifetime/casa/reads/seeded").Value(); got != 7 {
		t.Fatalf("lifetime counter = %d, want 7", got)
	}
	if got := dst.Gauge("lifetime/casa/model/seconds").Value(); got != 1.5 {
		t.Fatalf("lifetime gauge = %g, want 1.5", got)
	}
	if got := dst.Histogram("lifetime/casa/smem/lengths", []int64{1, 2}).Count(); got != 1 {
		t.Fatalf("lifetime histogram count = %d, want 1", got)
	}
	// Accumulation across runs: a second merge adds.
	dst.MergePrefixed(src, "lifetime")
	if got := dst.Counter("lifetime/casa/reads/seeded").Value(); got != 14 {
		t.Fatalf("lifetime counter after second run = %d, want 14", got)
	}
	// The destination's own metrics are untouched.
	if got := dst.Counter("serve/runs/completed").Value(); got != 1 {
		t.Fatalf("serving counter perturbed: %d", got)
	}
}

func TestMergePrefixedSkipsOverlongNames(t *testing.T) {
	src := New()
	src.Counter("a/b/c/d").Add(1) // 4 segments: prefixing would make 5
	src.Counter("a/b").Add(2)
	dst := New()
	if skipped := dst.MergePrefixed(src, "lifetime"); skipped != 1 {
		t.Fatalf("skipped %d names, want 1", skipped)
	}
	if got := dst.Counter("lifetime/a/b").Value(); got != 2 {
		t.Fatalf("short name not merged: %d", got)
	}
	for _, s := range dst.Snapshots() {
		if strings.Contains(s.Name, "c/d") {
			t.Fatalf("overlong name %q merged anyway", s.Name)
		}
	}
}

// TestMergeHistogramBoundsDisagree pins Merge's behavior when source and
// destination hold the same histogram name with different bucket bounds:
// it panics (the re-registration check), because bounds are compile-time
// constants and silently resampling one layout into the other would
// corrupt the additive-merge determinism contract.
func TestMergeHistogramBoundsDisagree(t *testing.T) {
	a := New()
	a.Histogram("serve/queue/wait_us", []int64{1, 2, 4}).Observe(3)
	b := New()
	b.Histogram("serve/queue/wait_us", []int64{1, 2, 8}).Observe(3)
	defer func() {
		if recover() == nil {
			t.Error("Merge with disagreeing histogram bounds did not panic")
		}
	}()
	a.Merge(b)
}

// TestMergePrefixedHistogramBoundsDisagree: the same contract holds on
// the prefixed (lifetime) path.
func TestMergePrefixedHistogramBoundsDisagree(t *testing.T) {
	dst := New()
	dst.Histogram("lifetime/casa/smem/lengths", []int64{1, 2})
	src := New()
	src.Histogram("casa/smem/lengths", []int64{1, 4}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Error("MergePrefixed with disagreeing bounds did not panic")
		}
	}()
	dst.MergePrefixed(src, "lifetime")
}
