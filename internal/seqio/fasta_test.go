package seqio

import (
	"bytes"
	"strings"
	"testing"

	"casa/internal/dna"
)

func TestReadFastaBasic(t *testing.T) {
	in := ">chr1 test chromosome\nACGT\nACGT\n>chr2\nTTTT\n"
	recs, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Desc != "test chromosome" {
		t.Errorf("header parse: %q %q", recs[0].Name, recs[0].Desc)
	}
	if got := recs[0].Seq.String(); got != "ACGTACGT" {
		t.Errorf("seq = %q, want ACGTACGT", got)
	}
	if got := recs[1].Seq.String(); got != "TTTT" {
		t.Errorf("seq2 = %q", got)
	}
}

func TestReadFastaLowerCaseAndN(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">r\nacgtN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].Seq) != 5 {
		t.Fatalf("len = %d, want 5 (N replaced, not dropped)", len(recs[0].Seq))
	}
	if got := recs[0].Seq[:4].String(); got != "ACGT" {
		t.Errorf("lower-case parse = %q", got)
	}
}

func TestReadFastaNReplacementDeterministic(t *testing.T) {
	const in = ">r\nNNNNNNNN\n"
	a, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Seq.Equal(b[0].Seq) {
		t.Error("N replacement is nondeterministic")
	}
	// Long N runs must not be constant: that would fabricate repeats.
	allSame := true
	for _, x := range a[0].Seq {
		if x != a[0].Seq[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("run of N replaced by a constant base")
	}
}

func TestReadFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header not rejected")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "a", Desc: "first", Seq: dna.FromString("ACGTACGTACGTACGT")},
		{Name: "b", Seq: dna.FromString("TTT")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Seq.Equal(recs[0].Seq) || !got[1].Seq.Equal(recs[1].Seq) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got[0].Desc != "first" {
		t.Errorf("desc lost: %q", got[0].Desc)
	}
}

func TestReadFastqBasic(t *testing.T) {
	in := "@read1 desc\nACGT\n+\nIIII\n@read2\nTT\n+read2\nAB\n"
	recs, err := ReadFastq(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "read1" || recs[0].Seq.String() != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if string(recs[1].Qual) != "AB" {
		t.Errorf("record 1 qual = %q", recs[1].Qual)
	}
}

func TestReadFastqErrors(t *testing.T) {
	cases := []string{
		"ACGT\n+\nIIII\n",   // missing @
		"@r\nACGT\nIIII\n",  // missing +
		"@r\nACGT\n+\nII\n", // qual length mismatch
		"@r\nACGT\n+\n",     // truncated
		"@r\nACGT\n",        // truncated earlier
	}
	for _, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", in)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: dna.FromString("ACGTTGCA"), Qual: []byte("IIIIIIII")},
		{Name: "r2", Desc: "sim", Seq: dna.FromString("GG"), Qual: []byte("!~")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !got[i].Seq.Equal(recs[i].Seq) || string(got[i].Qual) != string(recs[i].Qual) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteFastqDefaultQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFastq(&buf, []Record{{Name: "r", Seq: dna.FromString("ACG")}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "III" {
		t.Errorf("default quality = %q, want III", got[0].Qual)
	}
}

func TestForEachFastqStreams(t *testing.T) {
	in := "@a\nAC\n+\nII\n@b\nGT\n+\nII\n"
	var names []string
	err := ForEachFastq(strings.NewReader(in), func(r Record) error {
		names = append(names, r.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestFastaCRLF(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">r\r\nACGT\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq.String() != "ACGT" {
		t.Errorf("CRLF handling: %q", recs[0].Seq.String())
	}
}
