package seqio

import (
	"bytes"
	"strings"
	"testing"

	"casa/internal/dna"
)

func TestReadFastaBasic(t *testing.T) {
	in := ">chr1 test chromosome\nACGT\nACGT\n>chr2\nTTTT\n"
	recs, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Desc != "test chromosome" {
		t.Errorf("header parse: %q %q", recs[0].Name, recs[0].Desc)
	}
	if got := recs[0].Seq.String(); got != "ACGTACGT" {
		t.Errorf("seq = %q, want ACGTACGT", got)
	}
	if got := recs[1].Seq.String(); got != "TTTT" {
		t.Errorf("seq2 = %q", got)
	}
}

func TestReadFastaLowerCaseAndN(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">r\nacgtN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].Seq) != 5 {
		t.Fatalf("len = %d, want 5 (N replaced, not dropped)", len(recs[0].Seq))
	}
	if got := recs[0].Seq[:4].String(); got != "ACGT" {
		t.Errorf("lower-case parse = %q", got)
	}
}

func TestReadFastaNReplacementDeterministic(t *testing.T) {
	const in = ">r\nNNNNNNNN\n"
	a, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Seq.Equal(b[0].Seq) {
		t.Error("N replacement is nondeterministic")
	}
	// Long N runs must not be constant: that would fabricate repeats.
	allSame := true
	for _, x := range a[0].Seq {
		if x != a[0].Seq[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("run of N replaced by a constant base")
	}
}

func TestReadFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header not rejected")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "a", Desc: "first", Seq: dna.FromString("ACGTACGTACGTACGT")},
		{Name: "b", Seq: dna.FromString("TTT")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Seq.Equal(recs[0].Seq) || !got[1].Seq.Equal(recs[1].Seq) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got[0].Desc != "first" {
		t.Errorf("desc lost: %q", got[0].Desc)
	}
}

// rewrap re-wraps raw sequence text (which may contain ambiguous bases) at
// the given width, preserving the header lines.
func rewrap(raw string, width int) string {
	var out strings.Builder
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(line, ">") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		for len(line) > width {
			out.WriteString(line[:width])
			out.WriteByte('\n')
			line = line[width:]
		}
		if len(line) > 0 {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// TestReadFastaWrapInvariance is the headline-bugfix property test: the
// same raw sequence text (including N runs spanning line breaks) must
// decode to the identical genome at every line width.
func TestReadFastaWrapInvariance(t *testing.T) {
	const raw = ">chr1 with ambiguity\n" +
		"ACGTNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNACGTRYKMSWBDHVacgtnnn\n" +
		"NNNNACGTACGTNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNTTT\n" +
		">chr2\nNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN\n"
	want, err := ReadFasta(strings.NewReader(rewrap(raw, 60)))
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, 7, 60, 10_000} {
		got, err := ReadFasta(strings.NewReader(rewrap(raw, width)))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(want) {
			t.Fatalf("width %d: %d records, want %d", width, len(got), len(want))
		}
		for i := range want {
			if !got[i].Seq.Equal(want[i].Seq) {
				t.Errorf("width %d: record %d decodes differently from width 60:\n got %s\nwant %s",
					width, i, got[i].Seq, want[i].Seq)
			}
		}
	}
}

// TestFastaRoundTripWrapWidths asserts ReadFasta(WriteFasta(recs, w)) is
// identical for the issue's width set, for sequences long enough that
// every width actually wraps.
func TestFastaRoundTripWrapWidths(t *testing.T) {
	seq := make([]byte, 500)
	for i := range seq {
		seq[i] = "ACGT"[i%4]
	}
	recs := []Record{
		{Name: "a", Desc: "desc", Seq: dna.FromString(string(seq))},
		{Name: "b", Seq: dna.FromString("TTTACGTACGT")},
	}
	for _, width := range []int{1, 7, 60, 10_000} {
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, width); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		got, err := ReadFasta(&buf)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("width %d: %d records, want %d", width, len(got), len(recs))
		}
		for i := range recs {
			if !got[i].Seq.Equal(recs[i].Seq) {
				t.Errorf("width %d: record %d not preserved", width, i)
			}
		}
	}
}

func TestReadFastqBasic(t *testing.T) {
	in := "@read1 desc\nACGT\n+\nIIII\n@read2\nTT\n+read2\nAB\n"
	recs, err := ReadFastq(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "read1" || recs[0].Seq.String() != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if string(recs[1].Qual) != "AB" {
		t.Errorf("record 1 qual = %q", recs[1].Qual)
	}
}

func TestReadFastqErrors(t *testing.T) {
	cases := []string{
		"ACGT\n+\nIIII\n",              // missing @
		"@r\nACGT\nIIII\n",             // missing +
		"@r\nACGT\n+\nII\n",            // qual length mismatch
		"@r\nACGT\n+\n",                // truncated
		"@r\nACGT\n",                   // truncated earlier
		"@r\nACGT\n+OTHERNAME\nIIII\n", // separator contradicts header
	}
	for _, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", in)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: dna.FromString("ACGTTGCA"), Qual: []byte("IIIIIIII")},
		{Name: "r2", Desc: "sim", Seq: dna.FromString("GG"), Qual: []byte("!~")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !got[i].Seq.Equal(recs[i].Seq) || string(got[i].Qual) != string(recs[i].Qual) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteFastqDefaultQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFastq(&buf, []Record{{Name: "r", Seq: dna.FromString("ACG")}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "III" {
		t.Errorf("default quality = %q, want III", got[0].Qual)
	}
}

func TestForEachFastqStreams(t *testing.T) {
	in := "@a\nAC\n+\nII\n@b\nGT\n+\nII\n"
	var names []string
	err := ForEachFastq(strings.NewReader(in), func(r Record) error {
		names = append(names, r.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestFastqSeparatorValidation(t *testing.T) {
	// Matching name (with or without description) is accepted.
	for _, in := range []string{
		"@read1\nAC\n+\nII\n",
		"@read1\nAC\n+read1\nII\n",
		"@read1 desc\nAC\n+read1\nII\n",
		"@read1 desc\nAC\n+read1 desc\nII\n",
	} {
		if _, err := ReadFastq(strings.NewReader(in)); err != nil {
			t.Errorf("valid separator rejected: %q: %v", in, err)
		}
	}
	// Contradicting name is a parse error.
	if _, err := ReadFastq(strings.NewReader("@read1\nAC\n+read2\nII\n")); err == nil {
		t.Error("contradicting separator name accepted")
	}
}

func TestFastaCRLF(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">r\r\nACGT\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq.String() != "ACGT" {
		t.Errorf("CRLF handling: %q", recs[0].Seq.String())
	}
}
