// Package seqio reads and writes the FASTA and FASTQ formats used to ship
// reference genomes and sequencing reads. It is the I/O substrate for the
// CASA evaluation pipeline (§6 of the paper loads UCSC assemblies as FASTA
// and ERR194147 / DWGSIM reads as FASTQ).
//
// Wrap invariance: ambiguous bases (N and the other IUPAC codes) are
// replaced deterministically as a function of the base's global offset
// within its record, never of the line layout. The same reference wrapped
// at any line width therefore decodes to the identical genome, and a
// WriteFasta → ReadFasta round trip preserves every sequence exactly
// regardless of the width chosen.
package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"casa/internal/dna"
)

// Record is one named sequence, optionally with per-base quality scores
// (FASTQ). Qual is empty for FASTA records.
type Record struct {
	Name string       // header up to the first whitespace
	Desc string       // remainder of the header line, if any
	Seq  dna.Sequence // sequence with ambiguous bases replaced
	Qual []byte       // Phred+33 qualities; len(Qual)==len(Seq) for FASTQ
}

// ReadFasta parses all FASTA records from r. Sequence lines may be wrapped
// at any width. Ambiguous bases (N etc.) are replaced deterministically per
// dna.BaseFromByte.
func ReadFasta(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []Record
	var cur *Record
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			line = bytes.TrimRight(line, "\r\n")
			switch {
			case len(line) == 0:
				// blank line: ignore
			case line[0] == '>':
				name, desc := splitHeader(string(line[1:]))
				recs = append(recs, Record{Name: name, Desc: desc})
				cur = &recs[len(recs)-1]
			case cur == nil:
				return nil, fmt.Errorf("seqio: line %d: sequence data before first FASTA header", lineNo)
			default:
				appendBases(&cur.Seq, line)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("seqio: read: %w", err)
		}
	}
	return recs, nil
}

// WriteFasta writes records in FASTA format with lines wrapped at width
// (60 if width <= 0).
func WriteFasta(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.Name, rec.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.Name)
		}
		s := rec.Seq.String()
		for i := 0; i < len(s); i += width {
			end := min(i+width, len(s))
			bw.WriteString(s[i:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFastq parses all FASTQ records from r. Multi-line sequences are not
// supported (Illumina FASTQ is strictly 4 lines per record, which is what
// the evaluation datasets use).
func ReadFastq(r io.Reader) ([]Record, error) {
	var recs []Record
	err := ForEachFastq(r, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, err
}

// ForEachFastq streams FASTQ records to fn without accumulating them,
// for read sets too large to hold unpacked in memory.
func ForEachFastq(r io.Reader, fn func(Record) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	lineNo := 0
	readLine := func() ([]byte, error) {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			return bytes.TrimRight(line, "\r\n"), nil
		}
		return nil, err
	}
	for {
		header, err := readLine()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("seqio: read: %w", err)
		}
		if len(header) == 0 {
			continue
		}
		if header[0] != '@' {
			return fmt.Errorf("seqio: line %d: FASTQ header must start with '@', got %q", lineNo, header)
		}
		seqLine, err := readLine()
		if err != nil {
			return fmt.Errorf("seqio: line %d: truncated FASTQ record (missing sequence)", lineNo)
		}
		plus, err := readLine()
		if err != nil || len(plus) == 0 || plus[0] != '+' {
			return fmt.Errorf("seqio: line %d: FASTQ separator '+' missing", lineNo)
		}
		name, desc := splitHeader(string(header[1:]))
		// The separator line may repeat the header; when it carries text,
		// a name that contradicts the '@' header means the record
		// boundaries are off by a line (or the file is corrupt).
		if sep := string(plus[1:]); sep != "" {
			sepName, _ := splitHeader(sep)
			if sepName != name {
				return fmt.Errorf("seqio: line %d: FASTQ separator %q contradicts header %q", lineNo, sepName, name)
			}
		}
		qual, err := readLine()
		if err != nil {
			return fmt.Errorf("seqio: line %d: truncated FASTQ record (missing quality)", lineNo)
		}
		if len(qual) != len(seqLine) {
			return fmt.Errorf("seqio: line %d: quality length %d != sequence length %d", lineNo, len(qual), len(seqLine))
		}
		var seq dna.Sequence
		appendBases(&seq, seqLine)
		if e := fn(Record{Name: name, Desc: desc, Seq: seq, Qual: append([]byte(nil), qual...)}); e != nil {
			return e
		}
	}
}

// WriteFastq writes records in 4-line FASTQ format. Records without
// qualities get a constant 'I' (Q40) quality string.
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if len(qual) != len(rec.Seq) {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if rec.Desc != "" {
			fmt.Fprintf(bw, "@%s %s\n", rec.Name, rec.Desc)
		} else {
			fmt.Fprintf(bw, "@%s\n", rec.Name)
		}
		bw.WriteString(rec.Seq.String())
		bw.WriteString("\n+\n")
		bw.Write(qual)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func splitHeader(h string) (name, desc string) {
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// appendBases decodes one line of sequence text onto seq. Ambiguous bases
// are replaced as a function of the character and the base's global offset
// in the record (len(*seq)+i), so runs of N do not become a constant base
// (which would fabricate artificial repeats) while the decoded sequence
// stays invariant under re-wrapping the same text at any line width.
func appendBases(seq *dna.Sequence, line []byte) {
	off := len(*seq)
	for i, c := range line {
		if dna.IsStandard(c) {
			*seq = append(*seq, dna.BaseFromByte(c))
		} else {
			*seq = append(*seq, dna.Base((int(c)+off+i)&3))
		}
	}
}
