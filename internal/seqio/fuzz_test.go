package seqio

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic on arbitrary input, and
// whatever they accept must survive a write/read round trip.

func FuzzReadFasta(f *testing.F) {
	f.Add(">r desc\nACGT\nNNN\n")
	f.Add(">a\n>b\nTT\n")
	f.Add("")
	f.Add(">only-header")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFasta(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input round-trips through the writer.
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, 60); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		again, err := ReadFasta(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !again[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}

func FuzzReadFastq(f *testing.F) {
	f.Add("@r\nACGT\n+\nIIII\n")
	f.Add("@r\nACGT\n+\nII\n")
	f.Add("@a\nAC\n+\nII\n@b\nGT\n+\nII\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFastq(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFastq(&buf, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		again, err := ReadFastq(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !again[i].Seq.Equal(recs[i].Seq) || !bytes.Equal(again[i].Qual, recs[i].Qual) {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}
