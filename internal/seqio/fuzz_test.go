package seqio

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic on arbitrary input, and
// whatever they accept must survive a write/read round trip.

func FuzzReadFasta(f *testing.F) {
	f.Add(">r desc\nACGT\nNNN\n")
	f.Add(">a\n>b\nTT\n")
	f.Add("")
	f.Add(">only-header")
	// N runs spanning line breaks: the decoded replacement must depend on
	// the record offset only, never the wrap position (wrap-invariance).
	f.Add(">n\nACGTNNN\nNNNNACG\nNNNNNNN\n")
	f.Add(">n\nNN\nNN\nNN\nNN\nNN\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFasta(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input round-trips through the writer.
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, 60); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		again, err := ReadFasta(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !again[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
		// Wrap invariance: splitting every sequence line into width-1
		// lines must decode to the same sequences. (Skipped for inputs
		// with \r, where re-splitting moves the carriage return onto its
		// own — then trimmed-to-blank — line and legitimately changes the
		// decoded bytes.)
		if strings.ContainsAny(in, "\r") {
			return
		}
		var narrow strings.Builder
		for _, line := range strings.Split(in, "\n") {
			if strings.HasPrefix(line, ">") {
				narrow.WriteString(line)
				narrow.WriteByte('\n')
				continue
			}
			if strings.Contains(line, ">") {
				// An isolated mid-line '>' would become a header line at
				// width 1, changing the record structure rather than the
				// decoding — not a wrap-invariance question.
				return
			}
			for i := 0; i < len(line); i++ {
				narrow.WriteByte(line[i])
				narrow.WriteByte('\n')
			}
		}
		rewrapped, err := ReadFasta(strings.NewReader(narrow.String()))
		if err != nil {
			t.Fatalf("width-1 rewrap of accepted input rejected: %v", err)
		}
		if len(rewrapped) != len(recs) {
			t.Fatalf("rewrap changed record count: %d -> %d", len(recs), len(rewrapped))
		}
		for i := range recs {
			if !rewrapped[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d decodes differently at width 1 (wrap-dependent decoding)", i)
			}
		}
	})
}

func FuzzReadFastq(f *testing.F) {
	f.Add("@r\nACGT\n+\nIIII\n")
	f.Add("@r\nACGT\n+\nII\n")
	f.Add("@a\nAC\n+\nII\n@b\nGT\n+\nII\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFastq(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFastq(&buf, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		again, err := ReadFastq(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !again[i].Seq.Equal(recs[i].Seq) || !bytes.Equal(again[i].Qual, recs[i].Qual) {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}
