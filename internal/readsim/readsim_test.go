package readsim

import (
	"testing"

	"casa/internal/dna"
)

func TestGenerateReferenceLengthAndDeterminism(t *testing.T) {
	cfg := DefaultGenome(100000, 42)
	a := GenerateReference(cfg)
	if len(a) != cfg.Length {
		t.Fatalf("length = %d, want %d", len(a), cfg.Length)
	}
	b := GenerateReference(cfg)
	if !a.Equal(b) {
		t.Error("same seed produced different genomes")
	}
	cfg.Seed = 43
	c := GenerateReference(cfg)
	if a.Equal(c) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenerateReferenceEmpty(t *testing.T) {
	if g := GenerateReference(GenomeConfig{Length: 0}); g != nil {
		t.Errorf("zero-length genome = %v", g)
	}
}

func TestGenerateReferenceBaseDistribution(t *testing.T) {
	g := GenerateReference(DefaultGenome(200000, 1))
	var counts [4]int
	for _, b := range g {
		counts[b]++
	}
	for b, c := range counts {
		frac := float64(c) / float64(len(g))
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("base %d fraction %.3f out of [0.15,0.35]", b, frac)
		}
	}
}

func TestGenerateReferenceHasRepeats(t *testing.T) {
	// With repeat families the number of distinct 19-mers must be clearly
	// below the count for an i.i.d. random sequence of the same length.
	n := 400000
	rep := GenerateReference(DefaultGenome(n, 2))
	uni := GenerateReference(GenomeConfig{Length: n, Seed: 2}) // no repeats
	distinct := func(s dna.Sequence) int {
		seen := make(map[dna.Kmer]struct{})
		for i := 0; i+19 <= len(s); i++ {
			seen[dna.PackKmer(s, i, 19)] = struct{}{}
		}
		return len(seen)
	}
	// Diverged interspersed copies keep most 19-mers distinct (that is
	// Fig 5's point), so the reduction comes from the exact repeats
	// (satellite + tandem arrays, ~7% of the genome).
	dr, du := distinct(rep), distinct(uni)
	if float64(dr) > 0.97*float64(du) {
		t.Errorf("repeat genome distinct 19-mers %d not below unique genome %d", dr, du)
	}
}

func TestSimulateBasics(t *testing.T) {
	ref := GenerateReference(DefaultGenome(50000, 3))
	p := DefaultProfile(500, 7)
	reads := Simulate(ref, p)
	if len(reads) != p.Count {
		t.Fatalf("got %d reads, want %d", len(reads), p.Count)
	}
	for i, r := range reads {
		if len(r.Seq) != p.Length {
			t.Fatalf("read %d length %d, want %d", i, len(r.Seq), p.Length)
		}
		if len(r.Qual) != p.Length {
			t.Fatalf("read %d qual length %d", i, len(r.Qual))
		}
		if r.Origin < 0 || r.Origin+p.Length > len(ref) {
			t.Fatalf("read %d origin %d out of range", i, r.Origin)
		}
		if r.Name == "" {
			t.Fatalf("read %d has no name", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	ref := GenerateReference(DefaultGenome(20000, 4))
	p := DefaultProfile(100, 9)
	a := Simulate(ref, p)
	b := Simulate(ref, p)
	for i := range a {
		if !a[i].Seq.Equal(b[i].Seq) || a[i].Origin != b[i].Origin {
			t.Fatalf("read %d differs between runs", i)
		}
	}
}

func TestSimulateGroundTruth(t *testing.T) {
	ref := GenerateReference(DefaultGenome(30000, 5))
	p := DefaultProfile(300, 11)
	reads := Simulate(ref, p)
	for i, r := range reads {
		if !r.Exact() {
			continue
		}
		window := ref[r.Origin : r.Origin+p.Length]
		got := r.Seq
		if r.Reverse {
			got = got.ReverseComplement()
		}
		if !got.Equal(window) {
			t.Fatalf("read %d marked exact but differs from reference window", i)
		}
	}
}

func TestSimulateExactFraction(t *testing.T) {
	// The default profile must give roughly the paper's ~80% exact reads.
	ref := GenerateReference(DefaultGenome(100000, 6))
	reads := Simulate(ref, DefaultProfile(5000, 13))
	frac := ExactFraction(reads)
	if frac < 0.70 || frac > 0.92 {
		t.Errorf("exact fraction %.3f outside [0.70, 0.92]", frac)
	}
}

func TestSimulateErrorRateKnobs(t *testing.T) {
	ref := GenerateReference(DefaultGenome(50000, 8))
	clean := ReadProfile{Length: 101, Count: 200, Seed: 1}
	reads := Simulate(ref, clean)
	if ExactFraction(reads) != 1.0 {
		t.Error("zero error rates must give 100% exact reads")
	}
	dirty := ReadProfile{Length: 101, Count: 200, Seed: 1, ErrRate: 0.05}
	if f := ExactFraction(Simulate(ref, dirty)); f > 0.2 {
		t.Errorf("5%% error rate gave %.2f exact fraction", f)
	}
}

func TestSimulateStrands(t *testing.T) {
	ref := GenerateReference(DefaultGenome(30000, 9))
	reads := Simulate(ref, DefaultProfile(400, 15))
	nRev := 0
	for _, r := range reads {
		if r.Reverse {
			nRev++
		}
	}
	if nRev < 120 || nRev > 280 {
		t.Errorf("reverse-strand count %d of 400 is implausible", nRev)
	}
	fwd := Simulate(ref, ReadProfile{Length: 50, Count: 100, Seed: 2})
	for _, r := range fwd {
		if r.Reverse {
			t.Fatal("RevComp=false produced a reverse read")
		}
	}
}

func TestSimulateEdgeCases(t *testing.T) {
	ref := GenerateReference(DefaultGenome(200, 10))
	if r := Simulate(ref, ReadProfile{Length: 0, Count: 5}); r != nil {
		t.Error("zero-length reads accepted")
	}
	if r := Simulate(ref, ReadProfile{Length: 500, Count: 5}); r != nil {
		t.Error("reads longer than reference accepted")
	}
	// Read length exactly the reference length is allowed.
	r := Simulate(ref, ReadProfile{Length: 200, Count: 2, Seed: 1})
	if len(r) != 2 || r[0].Origin != 0 {
		t.Errorf("full-length read sim failed: %+v", r)
	}
}

func TestRecordsAndSequences(t *testing.T) {
	ref := GenerateReference(DefaultGenome(5000, 11))
	reads := Simulate(ref, DefaultProfile(10, 17))
	recs := Records(reads)
	seqs := Sequences(reads)
	if len(recs) != 10 || len(seqs) != 10 {
		t.Fatal("wrong count")
	}
	for i := range reads {
		if !recs[i].Seq.Equal(reads[i].Seq) || !seqs[i].Equal(reads[i].Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestSimulatePairsBasics(t *testing.T) {
	ref := GenerateReference(DefaultGenome(100000, 21))
	pp := DefaultPairProfile(200, 31)
	pairs := SimulatePairs(ref, pp)
	if len(pairs) != 200 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, p := range pairs {
		if len(p.R1.Seq) != pp.Read.Length || len(p.R2.Seq) != pp.Read.Length {
			t.Fatalf("pair %d: mate lengths %d/%d", i, len(p.R1.Seq), len(p.R2.Seq))
		}
		if p.R1.Reverse || !p.R2.Reverse {
			t.Fatalf("pair %d: orientation must be FR", i)
		}
		if p.Insert < pp.Read.Length {
			t.Fatalf("pair %d: insert %d below read length", i, p.Insert)
		}
		// Mate origins consistent with the fragment.
		if got := p.R2.Origin - p.R1.Origin + pp.Read.Length; got != p.Insert {
			t.Fatalf("pair %d: origins inconsistent with insert: %d vs %d", i, got, p.Insert)
		}
	}
}

func TestSimulatePairsGroundTruth(t *testing.T) {
	ref := GenerateReference(DefaultGenome(50000, 22))
	pairs := SimulatePairs(ref, DefaultPairProfile(100, 33))
	for i, p := range pairs {
		if p.R1.Exact() {
			if !p.R1.Seq.Equal(ref[p.R1.Origin : p.R1.Origin+len(p.R1.Seq)]) {
				t.Fatalf("pair %d: exact R1 differs from reference", i)
			}
		}
		if p.R2.Exact() {
			window := ref[p.R2.Origin : p.R2.Origin+len(p.R2.Seq)]
			if !p.R2.Seq.ReverseComplement().Equal(window) {
				t.Fatalf("pair %d: exact R2 differs from reference", i)
			}
		}
	}
}

func TestSimulatePairsInsertDistribution(t *testing.T) {
	ref := GenerateReference(DefaultGenome(200000, 23))
	pp := DefaultPairProfile(2000, 35)
	pairs := SimulatePairs(ref, pp)
	var sum float64
	for _, p := range pairs {
		sum += float64(p.Insert)
	}
	mean := sum / float64(len(pairs))
	if mean < 330 || mean > 370 {
		t.Errorf("mean insert = %.1f, want ~350", mean)
	}
}

func TestSimulatePairsEdgeCases(t *testing.T) {
	ref := GenerateReference(DefaultGenome(500, 24))
	pp := DefaultPairProfile(5, 1)
	pp.InsertMean = 10000 // longer than the reference
	if SimulatePairs(ref, pp) != nil {
		t.Error("oversized insert accepted")
	}
	pp = DefaultPairProfile(5, 1)
	pp.Read.Length = 0
	if SimulatePairs(ref, pp) != nil {
		t.Error("zero-length mates accepted")
	}
}

func TestPairRecords(t *testing.T) {
	ref := GenerateReference(DefaultGenome(20000, 25))
	pairs := SimulatePairs(ref, DefaultPairProfile(10, 41))
	r1, r2 := PairRecords(pairs)
	if len(r1) != 10 || len(r2) != 10 {
		t.Fatalf("records: %d/%d", len(r1), len(r2))
	}
	for i := range pairs {
		if !r1[i].Seq.Equal(pairs[i].R1.Seq) || !r2[i].Seq.Equal(pairs[i].R2.Seq) {
			t.Fatalf("pair %d record mismatch", i)
		}
	}
}

func TestExactFractionEmpty(t *testing.T) {
	if ExactFraction(nil) != 0 {
		t.Error("ExactFraction(nil) != 0")
	}
}
