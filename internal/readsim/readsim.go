// Package readsim generates synthetic reference genomes and simulated
// sequencing reads. It substitutes for the paper's evaluation inputs
// (GRCh38/GRCm39 assemblies, the ERR194147 Illumina run, and DWGSIM-
// simulated mouse reads, §6), which are not shippable here.
//
// The substitution preserves the statistics CASA's evaluation depends on:
//
//   - sharply declining k-mer hit rates as k grows (Fig 5), produced by a
//     random base sequence plus mammalian-style repeat families;
//   - multi-hit seeds from interspersed (Alu-like) and tandem repeats;
//   - a tunable exact-match read fraction (~80% for ERR194147 per §2.2),
//     produced by per-base substitution/indel error rates.
package readsim

import (
	"fmt"
	"math/rand"

	"casa/internal/dna"
	"casa/internal/seqio"
)

// GenomeConfig controls synthetic reference generation.
type GenomeConfig struct {
	Length int   // total bases
	Seed   int64 // RNG seed; same seed -> same genome

	// Repeat structure. Mammalian genomes are ~50% repetitive; the defaults
	// approximate that with interspersed elements and tandem arrays.
	InterspersedFamilies int     // number of distinct repeat families (0 = default)
	InterspersedUnitLen  int     // element length, e.g. 300 for Alu-like
	InterspersedFraction float64 // fraction of the genome covered by them
	InterspersedDiverge  float64 // per-base divergence between copies
	TandemFraction       float64 // fraction covered by tandem arrays
	TandemUnitLen        int     // tandem repeat unit length
	SatelliteFraction    float64 // fraction covered by one high-copy satellite
	SatelliteUnitLen     int     // satellite unit length (alpha satellite: 171)
}

// DefaultGenome returns a config producing a genome with mammalian-like
// repeat content at the given length.
func DefaultGenome(length int, seed int64) GenomeConfig {
	return GenomeConfig{
		Length:               length,
		Seed:                 seed,
		InterspersedFamilies: 64,
		InterspersedUnitLen:  300,
		InterspersedFraction: 0.35,
		// Genome-wide interspersed elements (Alu/LINE-like) are split into
		// many subfamilies and are old and diverged (~18% per base), so
		// most 19-mers stay unique to one copy while 12-mers still
		// cross-hit — the Fig 5 effect.
		InterspersedDiverge: 0.18,
		TandemFraction:      0.05,
		TandemUnitLen:       24,
		SatelliteFraction:   0.04,
		SatelliteUnitLen:    171,
	}
}

// GenerateReference builds a synthetic genome per cfg.
func GenerateReference(cfg GenomeConfig) dna.Sequence {
	if cfg.Length <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.InterspersedFamilies == 0 && cfg.InterspersedFraction > 0 {
		cfg.InterspersedFamilies = 8
	}
	if cfg.InterspersedUnitLen == 0 {
		cfg.InterspersedUnitLen = 300
	}
	if cfg.TandemUnitLen == 0 {
		cfg.TandemUnitLen = 24
	}
	if cfg.SatelliteUnitLen == 0 {
		cfg.SatelliteUnitLen = 171
	}

	// Repeat family consensus sequences. The satellite is one genome-wide
	// unit (like alpha satellite): its long, lightly diverged tandem
	// arrays give the k-mer frequency distribution the heavy tail real
	// genomes have — a few k-mers with very many hits — which is what
	// drives the intersection load of seed & position table designs.
	families := make([]dna.Sequence, cfg.InterspersedFamilies)
	for i := range families {
		families[i] = randomSeq(rng, cfg.InterspersedUnitLen)
	}
	satellite := randomSeq(rng, cfg.SatelliteUnitLen)

	// Block types are drawn weighted by their remaining *block* quota
	// (base quota over mean block length) so the configured fractions are
	// genome coverage fractions AND the coverage stays uniform along the
	// genome — a satellite array is ~17x longer than an Alu copy, so
	// weighting by remaining bases would exhaust the satellite quota in
	// the first few percent of the sequence.
	genome := make(dna.Sequence, 0, cfg.Length)
	const (
		meanSatCopies = 29 // 10 + Intn(40), on average
		meanTanCopies = 6  // 3 + Intn(8), on average
		meanUniqLen   = 400
	)
	targetSat := int(cfg.SatelliteFraction * float64(cfg.Length))
	targetInt := int(cfg.InterspersedFraction * float64(cfg.Length))
	targetTan := int(cfg.TandemFraction * float64(cfg.Length))
	emitSat, emitInt, emitTan := 0, 0, 0
	for len(genome) < cfg.Length {
		defSat := max(targetSat-emitSat, 0) / (meanSatCopies * cfg.SatelliteUnitLen)
		defInt := max(targetInt-emitInt, 0) / cfg.InterspersedUnitLen
		defTan := max(targetTan-emitTan, 0) / (meanTanCopies * cfg.TandemUnitLen)
		used := emitSat + emitInt + emitTan
		defUniq := max(cfg.Length-len(genome)-(targetSat+targetInt+targetTan-used), 0) / meanUniqLen
		r := rng.Intn(defSat + defInt + defTan + defUniq + 1)
		switch {
		case r < defSat:
			// A satellite array: tens of near-identical copies.
			before := len(genome)
			copies := 10 + rng.Intn(40)
			for c := 0; c < copies; c++ {
				for _, b := range satellite {
					if rng.Float64() < 0.01 {
						b = dna.Base(rng.Intn(4))
					}
					genome = append(genome, b)
				}
			}
			emitSat += len(genome) - before
		case r < defSat+defInt && len(families) > 0:
			// Insert a diverged copy of a repeat family element.
			fam := families[rng.Intn(len(families))]
			copySeq := fam.Clone()
			for i := range copySeq {
				if rng.Float64() < cfg.InterspersedDiverge {
					copySeq[i] = dna.Base(rng.Intn(4))
				}
			}
			genome = append(genome, copySeq...)
			emitInt += len(copySeq)
		case r < defSat+defInt+defTan:
			// Insert a tandem array of 3-10 copies.
			unit := randomSeq(rng, cfg.TandemUnitLen)
			copies := 3 + rng.Intn(8)
			for c := 0; c < copies; c++ {
				genome = append(genome, unit...)
			}
			emitTan += copies * len(unit)
		default:
			// Unique sequence tract.
			genome = append(genome, randomSeq(rng, 200+rng.Intn(400))...)
		}
	}
	return genome[:cfg.Length]
}

// ReadProfile controls the read simulator, DWGSIM-style.
type ReadProfile struct {
	Length    int     // read length in bp (101 in the paper)
	Count     int     // number of reads to generate
	Seed      int64   // RNG seed
	MutRate   float64 // per-base haplotype SNP rate (sample vs reference)
	ErrRate   float64 // per-base sequencing substitution error rate
	IndelRate float64 // per-read probability of a 1-3 bp indel
	RevComp   bool    // also sample from the reverse strand
}

// DefaultProfile matches the paper's workload shape: 101 bp reads with an
// error profile giving roughly 80% exact-match reads (§2.2's observation
// about ERR194147 on GRCh38).
func DefaultProfile(count int, seed int64) ReadProfile {
	return ReadProfile{
		Length:    101,
		Count:     count,
		Seed:      seed,
		MutRate:   0.001,
		ErrRate:   0.001,
		IndelRate: 0.0002,
		RevComp:   true,
	}
}

// Read is one simulated read with its ground truth.
type Read struct {
	Seq     dna.Sequence
	Qual    []byte
	Origin  int  // 0-based reference position of the first sampled base
	Reverse bool // sampled from the reverse strand
	Errors  int  // number of injected differences vs the reference window
	Name    string
}

// Exact reports whether the read matches the reference window exactly.
func (r Read) Exact() bool { return r.Errors == 0 }

// Simulate samples reads from ref per profile. Deterministic for a given
// profile (including Seed).
func Simulate(ref dna.Sequence, p ReadProfile) []Read {
	if p.Length <= 0 || p.Length > len(ref) {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	reads := make([]Read, 0, p.Count)
	for i := 0; i < p.Count; i++ {
		origin := rng.Intn(len(ref) - p.Length + 1)
		window := ref[origin : origin+p.Length].Clone()
		errs := 0

		// Haplotype SNPs and sequencing substitution errors.
		for j := range window {
			if rng.Float64() < p.MutRate+p.ErrRate {
				old := window[j]
				window[j] = dna.Base((int(old) + 1 + rng.Intn(3)) & 3)
				if window[j] != old {
					errs++
				}
			}
		}
		// Occasional small indel: delete or duplicate 1-3 bases, then
		// re-trim/pad from the reference so the length stays fixed.
		if rng.Float64() < p.IndelRate && p.Length > 10 {
			pos := 1 + rng.Intn(p.Length-5)
			n := 1 + rng.Intn(3)
			if rng.Intn(2) == 0 && pos+n < len(window) {
				window = append(window[:pos], window[pos+n:]...)
				window = append(window, randomSeq(rng, n)...)
			} else {
				ins := randomSeq(rng, n)
				window = append(window[:pos], append(ins, window[pos:len(window)-n]...)...)
			}
			errs += n
		}

		rev := p.RevComp && rng.Intn(2) == 1
		if rev {
			window = window.ReverseComplement()
		}
		qual := make([]byte, p.Length)
		for j := range qual {
			qual[j] = byte('!' + 35 + rng.Intn(7)) // Q35-Q41, Illumina-like
		}
		reads = append(reads, Read{
			Seq:     window,
			Qual:    qual,
			Origin:  origin,
			Reverse: rev,
			Errors:  errs,
			Name:    fmt.Sprintf("sim_%d_pos%d_rev%t_err%d", i, origin, rev, errs),
		})
	}
	return reads
}

// Variant is one planted difference between a donor genome and the
// reference (SNPs only; the small-indel machinery lives in ReadProfile).
type Variant struct {
	Pos int // 0-based reference position
	Ref dna.Base
	Alt dna.Base
}

// Donor derives a donor genome from ref by planting SNPs at the given
// per-base rate, returning the mutated sequence and the truth set sorted
// by position. Reads sampled from the donor carry these variants
// haplotype-consistently, which is what a variant caller needs (the §1
// genome-analysis pipeline this system feeds).
func Donor(ref dna.Sequence, rate float64, seed int64) (dna.Sequence, []Variant) {
	rng := rand.New(rand.NewSource(seed))
	donor := ref.Clone()
	var variants []Variant
	for i := range donor {
		if rng.Float64() < rate {
			alt := dna.Base((int(donor[i]) + 1 + rng.Intn(3)) & 3)
			if alt == donor[i] {
				continue
			}
			variants = append(variants, Variant{Pos: i, Ref: donor[i], Alt: alt})
			donor[i] = alt
		}
	}
	return donor, variants
}

// PairProfile controls paired-end simulation: two reads from the ends of
// one sequenced fragment, facing each other (Illumina FR orientation).
type PairProfile struct {
	Read       ReadProfile // per-mate length/error settings (RevComp ignored)
	InsertMean int         // mean fragment length
	InsertSD   int         // fragment length standard deviation
}

// DefaultPairProfile matches common Illumina libraries: 101 bp mates,
// 350 +- 50 bp fragments.
func DefaultPairProfile(count int, seed int64) PairProfile {
	p := DefaultProfile(count, seed)
	p.RevComp = false
	return PairProfile{Read: p, InsertMean: 350, InsertSD: 50}
}

// ReadPair is one simulated fragment's two mates. R1 is the fragment's
// left end read forward; R2 the right end read reverse-complemented
// (their Origin fields give each mate's leftmost reference base).
type ReadPair struct {
	R1, R2 Read
	Insert int // fragment length
}

// SimulatePairs samples read pairs from ref. Deterministic per profile.
func SimulatePairs(ref dna.Sequence, p PairProfile) []ReadPair {
	L := p.Read.Length
	if L <= 0 || p.InsertMean < L || p.InsertMean > len(ref) {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Read.Seed))
	pairs := make([]ReadPair, 0, p.Read.Count)
	for i := 0; i < p.Read.Count; i++ {
		insert := p.InsertMean
		if p.InsertSD > 0 {
			insert += int(rng.NormFloat64() * float64(p.InsertSD))
		}
		if insert < L {
			insert = L
		}
		if insert > len(ref) {
			insert = len(ref)
		}
		frag := rng.Intn(len(ref) - insert + 1)

		mate := func(origin int, reverse bool, idx int) Read {
			window := ref[origin : origin+L].Clone()
			errs := 0
			for j := range window {
				if rng.Float64() < p.Read.MutRate+p.Read.ErrRate {
					old := window[j]
					window[j] = dna.Base((int(old) + 1 + rng.Intn(3)) & 3)
					if window[j] != old {
						errs++
					}
				}
			}
			seq := window
			if reverse {
				seq = window.ReverseComplement()
			}
			qual := make([]byte, L)
			for j := range qual {
				qual[j] = byte('!' + 35 + rng.Intn(7))
			}
			return Read{
				Seq: seq, Qual: qual, Origin: origin, Reverse: reverse, Errors: errs,
				Name: fmt.Sprintf("pair_%d/%d_pos%d_rev%t_err%d", i, idx, origin, reverse, errs),
			}
		}
		pairs = append(pairs, ReadPair{
			R1:     mate(frag, false, 1),
			R2:     mate(frag+insert-L, true, 2),
			Insert: insert,
		})
	}
	return pairs
}

// PairRecords converts pairs into two parallel FASTQ record sets.
func PairRecords(pairs []ReadPair) (r1, r2 []seqio.Record) {
	for _, p := range pairs {
		r1 = append(r1, seqio.Record{Name: p.R1.Name, Seq: p.R1.Seq, Qual: p.R1.Qual})
		r2 = append(r2, seqio.Record{Name: p.R2.Name, Seq: p.R2.Seq, Qual: p.R2.Qual})
	}
	return r1, r2
}

// ExactFraction returns the fraction of reads with zero injected errors.
func ExactFraction(reads []Read) float64 {
	if len(reads) == 0 {
		return 0
	}
	n := 0
	for _, r := range reads {
		if r.Exact() {
			n++
		}
	}
	return float64(n) / float64(len(reads))
}

// Records converts simulated reads to seqio records (e.g. to write FASTQ).
func Records(reads []Read) []seqio.Record {
	recs := make([]seqio.Record, len(reads))
	for i, r := range reads {
		recs[i] = seqio.Record{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
	}
	return recs
}

// Sequences extracts just the base sequences.
func Sequences(reads []Read) []dna.Sequence {
	out := make([]dna.Sequence, len(reads))
	for i, r := range reads {
		out[i] = r.Seq
	}
	return out
}

func randomSeq(rng *rand.Rand, n int) dna.Sequence {
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}
