package engine

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/genax"
	"casa/internal/smem"
	"casa/internal/trace"
)

// genaxEngine adapts the GenAx baseline accelerator.
type genaxEngine struct{ a *genax.Accelerator }

// GenAx wraps an already-built GenAx accelerator as an Engine.
func GenAx(a *genax.Accelerator) Engine { return genaxEngine{a} }

func (e genaxEngine) Name() string  { return "genax" }
func (e genaxEngine) Clone() Engine { return genaxEngine{e.a.Clone()} }

func (e genaxEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.a.SeedTrace(reads, tb, base)
}

func (e genaxEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	return e.a.Reduce(typedActs[*genax.Activity](acts)...)
}

func (e genaxEngine) SMEMs(res Result) [][]smem.Match {
	return res.(*genax.Result).Reads
}

func (e genaxEngine) Model(res Result) Model {
	r := res.(*genax.Result)
	return Model{Seconds: r.Seconds, ReadsPerS: r.Throughput}
}

func (e genaxEngine) Unwrap() any { return e.a }

// genaxConfig resolves the shared GenAx knobs; gencache reuses it for
// its embedded GenAx configuration.
func genaxConfig(ref dna.Sequence, opt Options) genax.Config {
	cfg := genax.DefaultConfig()
	if opt.TableK > 0 {
		cfg.K = opt.TableK
	}
	if opt.MinSMEM > 0 {
		cfg.MinSMEM = opt.MinSMEM
	}
	if opt.Partition > 0 {
		cfg.PartitionBases = opt.Partition
	}
	if opt.Exact {
		// One segment (overlap double-counts hits) and a table k-mer no
		// larger than the reporting floor.
		cfg.PartitionBases = len(ref)
		if cfg.K > cfg.MinSMEM {
			cfg.K = cfg.MinSMEM
		}
	}
	return cfg
}

func genaxFactory() Factory {
	return Factory{
		Name:        "genax",
		Description: "GenAx baseline: hash seed-table RMEM search with lane-parallel intersection",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := genaxConfig(ref, opt)
			switch c := opt.Config.(type) {
			case nil:
			case genax.Config:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: genax: Config is %T, want genax.Config", opt.Config)
			}
			a, err := genax.New(ref, cfg)
			if err != nil {
				return nil, err
			}
			return genaxEngine{a}, nil
		},
	}
}
