package engine

// The built-in engines, registered in the order the paper compares them
// (and the order benchmark rows and `-engine list` present them).
func init() {
	Register(casaFactory())
	Register(ertFactory())
	Register(genaxFactory())
	Register(gencacheFactory())
	Register(cpuFactory())
	Register(fmindexFactory())
	Register(bruteFactory())
}
