package engine_test

import (
	"strings"
	"testing"

	"casa/internal/engine"
	"casa/internal/readsim"
)

// perReadAllocators lists the engines whose steady-state per-read path
// legitimately allocates, with the reason. Everything else registered in
// the engine list must expose the allocation-free ReadSeeder path and
// hold exactly zero allocations per read once its scratch is warm. A new
// engine fails this test until it either goes allocation-free or is
// added here with a justification.
var perReadAllocators = map[string]string{
	// The oracle recomputes every SMEM from the definition with fresh
	// quadratic scans; it exists to be obviously correct, not fast.
	"brute": "definition-based oracle, allocates per scan by design",
	// The ERT walk materialises per-read trees/paths as it descends.
	"ert": "radix-tree walk builds per-read node state",
	// GenAx's automaton model allocates per-read state machines.
	"genax": "Sitara automaton model allocates per-read machine state",
	// GenCache layers a cache model over GenAx and inherits its
	// allocations, plus per-read cache bookkeeping.
	"gencache": "cache model allocates per-read bookkeeping over genax",
}

// TestSeedZeroAlloc pins the tentpole guarantee: for every registered
// engine with the ReadSeeder capability, a warmed worker clone performs
// zero heap allocations per read. testing.AllocsPerRun averages over
// runs, so a single stray allocation anywhere in the hot path fails.
func TestSeedZeroAlloc(t *testing.T) {
	ref := readsim.GenerateReference(readsim.DefaultGenome(1<<14, 3))
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(32, 5)))
	opt := engine.Options{
		MinSMEM:    19,
		Partition:  len(ref) / 2,
		TableK:     8,
		CacheBytes: 1 << 14,
	}

	for _, f := range engine.List() {
		f := f
		// A sharded composite is allocation-free exactly when its inner
		// engine is: the merge path reuses per-clone scratch, so the
		// inner engine's excuse (or lack of one) carries over.
		excuseKey := strings.TrimPrefix(f.Name, "sharded:")
		t.Run(f.Name, func(t *testing.T) {
			e, err := engine.New(f.Name, ref, opt)
			if err != nil {
				t.Fatal(err)
			}
			// Workers always seed on clones; so does this test, which also
			// pins that Clone hands out instances with independent scratch.
			w := e.Clone()
			rs, ok := w.(engine.ReadSeeder)
			var dst engine.Seeds
			if ok && len(reads) > 0 {
				ok = rs.SeedReadInto(&dst, reads[0])
			}
			if !ok {
				reason, excused := perReadAllocators[excuseKey]
				if !excused {
					t.Fatalf("engine %q has no allocation-free ReadSeeder path and is not excused", f.Name)
				}
				t.Skipf("allocating by design: %s", reason)
			}
			if reason, excused := perReadAllocators[excuseKey]; excused {
				t.Fatalf("engine %q is excused as %q but supports the zero-alloc path; drop the excuse", f.Name, reason)
			}

			// Warm the scratch over the whole corpus: buffers only grow, so
			// after one full pass every read fits without reallocation.
			for _, r := range reads {
				rs.SeedReadInto(&dst, r)
			}

			i := 0
			allocs := testing.AllocsPerRun(3*len(reads), func() {
				rs.SeedReadInto(&dst, reads[i%len(reads)])
				i++
			})
			if allocs != 0 {
				t.Errorf("engine %q: %v allocs per seeded read, want 0", f.Name, allocs)
			}
		})
	}
}
