package engine

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/ert"
	"casa/internal/smem"
	"casa/internal/trace"
)

// ertEngine adapts the ASIC-ERT baseline accelerator.
type ertEngine struct{ a *ert.Accelerator }

// ERT wraps an already-built ERT accelerator as an Engine.
func ERT(a *ert.Accelerator) Engine { return ertEngine{a} }

func (e ertEngine) Name() string  { return "ert" }
func (e ertEngine) Clone() Engine { return ertEngine{e.a.Clone()} }

func (e ertEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.a.SeedTrace(reads, tb, base)
}

// Reduce replays the order-sensitive k-mer reuse cache over reads — the
// completed batch prefix — so the Result matches a sequential run.
func (e ertEngine) Reduce(reads []dna.Sequence, acts []Activity) Result {
	return e.a.Reduce(reads, typedActs[*ert.Activity](acts)...)
}

func (e ertEngine) SMEMs(res Result) [][]smem.Match {
	return res.(*ert.Result).Reads
}

func (e ertEngine) Model(res Result) Model {
	r := res.(*ert.Result)
	return Model{Seconds: r.Seconds, ReadsPerS: r.Throughput}
}

func (e ertEngine) Unwrap() any { return e.a }

func ertFactory() Factory {
	return Factory{
		Name:        "ert",
		Description: "ASIC-ERT baseline: enumerated-radix-tree walker with a k-mer reuse cache",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := ert.DefaultAccelConfig()
			switch c := opt.Config.(type) {
			case nil:
				if opt.MinSMEM > 0 {
					cfg.Index.MinSMEM = opt.MinSMEM
				}
				if opt.Exact && cfg.Index.K > cfg.Index.MinSMEM {
					// The tree k-mer may not exceed the reporting floor.
					cfg.Index.K = cfg.Index.MinSMEM
				}
			case ert.AccelConfig:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: ert: Config is %T, want ert.AccelConfig", opt.Config)
			}
			a, err := ert.NewAccelerator(ref, cfg)
			if err != nil {
				return nil, err
			}
			return ertEngine{a}, nil
		},
	}
}
