package engine_test

// The sharded composites register themselves on import; pulling them in
// here makes every registry-wide suite in this package (list order,
// optional interfaces, persistence, zero-alloc) cover "sharded:<name>"
// alongside the flat engines.
import _ "casa/internal/shard"
