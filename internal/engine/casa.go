package engine

import (
	"fmt"
	"io"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/idxio"
	"casa/internal/smem"
	"casa/internal/trace"
)

// casaEngine adapts *core.Accelerator — the paper's CAM-based design —
// to the Engine interface.
type casaEngine struct{ a *core.Accelerator }

// CASA wraps an already-built CASA accelerator (e.g. one loaded from a
// serialized index) as an Engine.
func CASA(a *core.Accelerator) Engine { return &casaEngine{a} }

func (e *casaEngine) Name() string  { return "casa" }
func (e *casaEngine) Clone() Engine { return &casaEngine{e.a.Clone()} }

func (e *casaEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.a.SeedTrace(reads, tb, base)
}

func (e *casaEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	return e.a.Reduce(typedActs[*core.Activity](acts)...)
}

func (e *casaEngine) SMEMs(res Result) [][]smem.Match {
	r := res.(*core.Result)
	out := make([][]smem.Match, len(r.Reads))
	for i, rr := range r.Reads {
		out[i] = rr.Forward
	}
	return out
}

// SeedReadInto implements ReadSeeder: the accelerator's per-read sweep
// runs against per-clone scratch and appends the merged strand SMEM sets
// into dst's reused buffers.
func (e *casaEngine) SeedReadInto(dst *Seeds, read dna.Sequence) bool {
	dst.Forward, dst.Reverse = e.a.SeedReadInto(dst.Forward[:0], dst.Reverse[:0], read)
	return true
}

func (e *casaEngine) ActivityCycles(act Activity) int64 {
	return e.a.ActivityCycles(act.(*core.Activity))
}

func (e *casaEngine) Model(res Result) Model {
	r := res.(*core.Result)
	return Model{Seconds: r.Seconds, Cycles: r.Cycles, ReadsPerS: r.Throughput()}
}

func (e *casaEngine) ReadSeeds(res Result) []Seeds {
	r := res.(*core.Result)
	out := make([]Seeds, len(r.Reads))
	for i, rr := range r.Reads {
		out[i] = Seeds{Forward: rr.Forward, Reverse: rr.Reverse}
	}
	return out
}

func (e *casaEngine) HitPositions(strand dna.Sequence, m smem.Match, maxHits int) []int32 {
	return e.a.HitPositions(strand, m, maxHits)
}

func (e *casaEngine) Unwrap() any { return e.a }

// SaveIndex implements IndexPersister with a single section holding the
// core package's native serialization (configuration, partitioning and
// per-partition filter tables).
func (e *casaEngine) SaveIndex(w *idxio.Writer) error {
	return w.Section("casa/accelerator", func(sw io.Writer) error {
		return e.a.WriteIndex(sw)
	})
}

// LoadIndex implements IndexPersister on a NewEmpty instance.
func (e *casaEngine) LoadIndex(r *idxio.Reader) error {
	sec, err := r.Section("casa/accelerator")
	if err != nil {
		return err
	}
	a, err := core.ReadIndex(sec)
	if err != nil {
		return err
	}
	e.a = a
	return nil
}

func casaFactory() Factory {
	return Factory{
		Name:        "casa",
		Description: "CAM-based SMEM seeding accelerator (the paper's design)",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := core.DefaultConfig()
			switch c := opt.Config.(type) {
			case nil:
				if opt.MinSMEM > 0 {
					cfg.MinSMEM = opt.MinSMEM
				}
				if opt.Partition > 0 {
					cfg.PartitionBases = opt.Partition
				} else if cfg.PartitionBases > len(ref) {
					// Shrink to one partition for small references.
					for cfg.PartitionBases/2 >= len(ref) && cfg.PartitionBases > 1024 {
						cfg.PartitionBases /= 2
					}
				}
				if opt.Exact {
					// The configuration under which CASA's output is
					// defined to be the exact SMEM set: one partition
					// (overlap double-counts hits), no exact-match
					// prepass (it retires the non-matching strand), and
					// a pivot geometry valid at any MinSMEM >= K.
					cfg.K, cfg.M, cfg.Stride, cfg.Groups = 7, 4, 5, 4
					cfg.PartitionBases = len(ref)
					cfg.ExactMatchPrepass = false
				}
			case core.Config:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: casa: Config is %T, want core.Config", opt.Config)
			}
			a, err := core.New(ref, cfg)
			if err != nil {
				return nil, err
			}
			return &casaEngine{a}, nil
		},
		NewEmpty: func(Options) (Engine, error) {
			// The serialized accelerator carries its full configuration;
			// the header options are informational for casa.
			return &casaEngine{}, nil
		},
	}
}
