package engine

import (
	"fmt"
	"io"
	"strings"

	"casa/internal/dna"
)

// Factory describes one registered engine: how to construct it over a
// reference and how to present it to users.
type Factory struct {
	// Name is the canonical registry name ("casa", "ert", ...).
	Name string

	// Aliases are alternative names resolving to this factory.
	Aliases []string

	// Description is the one-line summary `-engine list` prints.
	Description string

	// Golden marks the definition-based oracle: exact by construction
	// but far too slow to benchmark, so harnesses that measure (rather
	// than validate) skip it.
	Golden bool

	// New constructs an engine over ref with the given options.
	New func(ref dna.Sequence, opt Options) (Engine, error)

	// NewEmpty constructs an unbound engine instance for LoadIndex to
	// fill from a serialized index; the returned engine must implement
	// IndexPersister. nil marks an engine that does not persist — cheap
	// to rebuild from FASTA (brute, and the table engines whose tables
	// build in one linear pass); TestIndexPersistenceCoverage documents
	// each excuse.
	NewEmpty func(opt Options) (Engine, error)
}

var (
	factories []Factory
	byName    = map[string]*Factory{}
)

// Register adds a factory to the registry. It is meant to be called from
// init (the registry is not locked) and panics on a duplicate name or
// alias — both are programming errors.
func Register(f Factory) {
	if f.Name == "" || f.New == nil {
		panic("engine: Register needs a name and a constructor")
	}
	factories = append(factories, f)
	p := &factories[len(factories)-1]
	for _, name := range append([]string{f.Name}, f.Aliases...) {
		if _, dup := byName[name]; dup {
			panic(fmt.Sprintf("engine: duplicate registration of %q", name))
		}
		byName[name] = p
	}
}

// Lookup resolves a name or alias to its factory.
func Lookup(name string) (Factory, bool) {
	f, ok := byName[name]
	if !ok {
		return Factory{}, false
	}
	return *f, true
}

// List returns every registered factory in registration order (the
// benchmark's row order and the conformance harness's iteration order).
func List() []Factory {
	return append([]Factory(nil), factories...)
}

// Names returns the canonical engine names in registration order.
func Names() []string {
	names := make([]string, len(factories))
	for i, f := range factories {
		names[i] = f.Name
	}
	return names
}

// New constructs the named engine over ref. Unknown names report the
// registry's valid names, so every consumer gives the same guidance.
func New(name string, ref dna.Sequence, opt Options) (Engine, error) {
	f, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f.New(ref, opt)
}

// Build constructs the named engine and unwraps it to its concrete type
// (e.g. Build[*core.Accelerator]("casa", ...)), for callers needing the
// native API behind the registry's construction path.
func Build[T any](name string, ref dna.Sequence, opt Options) (T, error) {
	var zero T
	e, err := New(name, ref, opt)
	if err != nil {
		return zero, err
	}
	u, ok := e.(Unwrapper)
	if !ok {
		return zero, fmt.Errorf("engine: %s does not expose a concrete implementation", name)
	}
	t, ok := u.Unwrap().(T)
	if !ok {
		return zero, fmt.Errorf("engine: %s unwraps to %T, not %T", name, u.Unwrap(), zero)
	}
	return t, nil
}

// WriteList prints the registry — one line per engine with its
// description and aliases — in registration order. The CLIs' `-engine
// list` shares it so every tool shows the same catalogue.
func WriteList(w io.Writer) {
	for _, f := range List() {
		alias := ""
		if len(f.Aliases) > 0 {
			alias = " (aliases: " + strings.Join(f.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "%-10s %s%s\n", f.Name, f.Description, alias)
	}
}

// typedActs converts the type-erased shard activities back to one
// engine's concrete activity type for its Reduce.
func typedActs[A any](acts []Activity) []A {
	out := make([]A, len(acts))
	for i, a := range acts {
		out[i] = a.(A)
	}
	return out
}
