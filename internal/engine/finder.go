package engine

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/idxio"
	"casa/internal/metrics"
	"casa/internal/smem"
	"casa/internal/trace"
)

// finderActivity is one shard's per-read SMEM sets from a plain
// smem.Finder; finders publish their counters per worker instance (see
// PublishWorkerMetrics), not per shard.
type finderActivity struct{ smems [][]smem.Match }

func (finderActivity) PublishMetrics(*metrics.Registry) {}

// finderResult is a reduced finder run; finders have no hardware model.
type finderResult struct{ smems [][]smem.Match }

func (finderResult) PublishModelMetrics(*metrics.Registry) {}

// seedCoster is the optional finder extension the trace path uses: the
// modelled cost of the finder's most recent FindSMEMs call, in the
// finder's native unit (FM-index steps, ...).
type seedCoster interface {
	SeedCost() int64
}

// appendFinder is the optional allocation-free finder extension:
// AppendSMEMs appends the read's SMEMs to dst, reusing its capacity and
// the finder's internal scratch.
type appendFinder interface {
	AppendSMEMs(dst []smem.Match, read dna.Sequence, minLen int) []smem.Match
}

// finderEngine lifts any smem.Finder to an Engine: forward-strand SMEMs
// only, no timing model.
type finderEngine struct {
	name   string
	minLen int
	finder smem.Finder
	// clone derives a worker's independent finder; nil shares the
	// original (stateless finders).
	clone func(smem.Finder) smem.Finder
	// publish folds one instance's cumulative counters into a registry;
	// nil for finders that count nothing.
	publish func(smem.Finder, *metrics.Registry)

	// save/load serialize the finder into / out of a casa-idx container;
	// nil marks a finder with nothing worth persisting (brute scans the
	// raw reference), whose SaveIndex reports a clean error.
	save func(*finderEngine, *idxio.Writer) error
	load func(*finderEngine, *idxio.Reader) error

	// buf is the per-instance search destination for append-capable
	// finders; retained results are exact-size copies of it.
	buf []smem.Match
}

func (e *finderEngine) Name() string { return e.name }

func (e *finderEngine) Clone() Engine {
	c := *e
	if e.clone != nil {
		c.finder = e.clone(e.finder)
	}
	// The struct copy above would share buf's backing array with e; a
	// clone must own its scratch (it regrows on first use).
	c.buf = nil
	return &c
}

func (e *finderEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	out := make([][]smem.Match, len(reads))
	costed, _ := e.finder.(seedCoster)
	appender, _ := e.finder.(appendFinder)
	for i, r := range reads {
		if appender != nil {
			e.buf = appender.AppendSMEMs(e.buf[:0], r, e.minLen)
			out[i] = smem.Retain(e.buf)
		} else {
			out[i] = e.finder.FindSMEMs(r, e.minLen)
		}
		if tb != nil && costed != nil {
			tb.Emit(base+i, "seed", "find", 0, costed.SeedCost())
		}
	}
	return finderActivity{out}
}

// SeedReadInto implements ReadSeeder for finder engines whose finder
// supports append-style search (the FM-index finders). Finder engines are
// forward-strand only, so Reverse is reset empty. The brute-force oracle
// runs behind this same adapter but allocates by design (quadratic
// definition-based scans); it reports false and stays on FindSMEMs.
func (e *finderEngine) SeedReadInto(dst *Seeds, read dna.Sequence) bool {
	appender, ok := e.finder.(appendFinder)
	if !ok {
		return false
	}
	dst.Forward = appender.AppendSMEMs(dst.Forward[:0], read, e.minLen)
	dst.Reverse = dst.Reverse[:0]
	return true
}

func (e *finderEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	var merged [][]smem.Match
	for _, a := range acts {
		merged = append(merged, a.(finderActivity).smems...)
	}
	return finderResult{merged}
}

func (e *finderEngine) SMEMs(res Result) [][]smem.Match {
	return res.(finderResult).smems
}

func (e *finderEngine) PublishWorkerMetrics(reg *metrics.Registry) {
	if e.publish != nil {
		e.publish(e.finder, reg)
	}
}

func (e *finderEngine) Unwrap() any { return e.finder }

// SaveIndex / LoadIndex implement IndexPersister for finders with
// persistence hooks; hook-less finders (brute) fail with a clear error
// and rebuild from FASTA instead.
func (e *finderEngine) SaveIndex(w *idxio.Writer) error {
	if e.save == nil {
		return fmt.Errorf("engine: %s does not support index persistence", e.name)
	}
	return e.save(e, w)
}

func (e *finderEngine) LoadIndex(r *idxio.Reader) error {
	if e.load == nil {
		return fmt.Errorf("engine: %s does not support index persistence", e.name)
	}
	return e.load(e, r)
}

// minSMEMOrDefault resolves the finder engines' reporting floor; the
// accelerator engines get theirs from their configs' defaults.
func minSMEMOrDefault(opt Options) int {
	if opt.MinSMEM > 0 {
		return opt.MinSMEM
	}
	return 19
}

func fmindexFactory() Factory {
	// shell builds the engine around a finder-to-be: New fills it with a
	// fresh build, NewEmpty leaves it for LoadIndex.
	shell := func(opt Options) *finderEngine {
		return &finderEngine{
			name:   "fmindex",
			minLen: minSMEMOrDefault(opt),
			clone: func(f smem.Finder) smem.Finder {
				return f.(*smem.Bidirectional).Clone()
			},
			publish: func(f smem.Finder, reg *metrics.Registry) {
				f.(*smem.Bidirectional).PublishMetrics(reg)
			},
			save: func(e *finderEngine, w *idxio.Writer) error {
				return saveBidirectional(w, "fmindex/", e.finder.(*smem.Bidirectional))
			},
			load: func(e *finderEngine, r *idxio.Reader) error {
				f, err := loadBidirectional(r, "fmindex/")
				if err != nil {
					return err
				}
				e.finder = f
				return nil
			},
		}
	}
	return Factory{
		Name:        "fmindex",
		Aliases:     []string{"fm"},
		Description: "bidirectional FM-index SMEM search (behavioural reference, no timing model)",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			e := shell(opt)
			e.finder = smem.NewBidirectional(ref)
			return e, nil
		},
		NewEmpty: func(opt Options) (Engine, error) {
			return shell(opt), nil
		},
	}
}

func bruteFactory() Factory {
	return Factory{
		Name:        "brute",
		Aliases:     []string{"bruteforce", "golden"},
		Description: "definition-based brute-force oracle (exact by construction; quadratic, validation only)",
		Golden:      true,
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			// BruteForce holds no mutable state: every worker shares it.
			return &finderEngine{
				name:   "brute",
				minLen: minSMEMOrDefault(opt),
				finder: smem.BruteForce{Ref: ref},
			}, nil
		},
	}
}
