// Package engine defines the seeding-engine abstraction every harness in
// this repository runs against — the batch pool, the CLIs, the bench, the
// differential and determinism tests — plus a registry of named factories
// so a new engine becomes selectable, benchmarked and differential-tested
// by registering one Factory.
//
// The contract mirrors the Seed/Reduce/Clone split the concrete engines
// already share: Clone gives each pool worker an independent instance
// over shared read-only indexes, SeedTrace computes one shard's
// order-independent Activity, and Reduce — always called on the engine
// the pool was started with — folds the shard activities into the final
// Result, replaying any order-sensitive model state (ERT's reuse cache,
// GenCache's multi-bank cache) so the Result is bit-identical to a
// sequential run at any worker count.
package engine

import (
	"casa/internal/dna"
	"casa/internal/metrics"
	"casa/internal/smem"
	"casa/internal/trace"
)

// Activity is one shard's order-independent record of engine work: pure
// counters and per-read outputs, safe to compute concurrently and merge
// in any order. PublishMetrics folds the shard's counters into a
// registry (each pool worker publishes into a private registry; the pool
// merges them deterministically).
type Activity interface {
	PublishMetrics(reg *metrics.Registry)
}

// Result is a reduced run: per-read SMEM sets plus whatever hardware
// model outputs the engine computes. PublishModelMetrics records the
// model gauges (seconds, energy, cache rates, ...) once per run.
type Result interface {
	PublishModelMetrics(reg *metrics.Registry)
}

// Engine is one seeding engine instance bound to a reference. Engines
// are not goroutine-safe; concurrent use goes through Clone, one
// instance per worker.
type Engine interface {
	// Name returns the engine's registry name ("casa", "ert", ...); the
	// batch pool uses it as the default observability label.
	Name() string

	// Clone returns an independent instance sharing the read-only
	// indexes, with fresh counters and model state.
	Clone() Engine

	// SeedTrace seeds one shard of reads, emitting per-read spans into tb
	// (nil disables tracing) with read indices offset by base, and
	// returns the shard's Activity.
	SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity

	// Reduce folds shard activities — in shard order, covering exactly
	// reads — into the run's Result. reads is the full ordered batch the
	// activities describe; engines with order-sensitive model state (the
	// ERT reuse cache) replay it from reads, the rest ignore it.
	Reduce(reads []dna.Sequence, acts []Activity) Result

	// SMEMs returns the per-read forward-strand SMEM sets of one of this
	// engine's Results, in read order.
	SMEMs(res Result) [][]smem.Match
}

// Model carries an engine's simulated-hardware outputs for one Result:
// modelled seconds, controller cycles (0 when the engine's model has no
// cycle domain) and modelled reads/s.
type Model struct {
	Seconds   float64
	Cycles    int64
	ReadsPerS float64
}

// Modeler is implemented by engines with a hardware timing model;
// engines without one (the plain FM-index finder, the brute-force
// golden) omit it and benchmarks report host time only.
type Modeler interface {
	Model(res Result) Model
}

// CycleCoster is implemented by engines whose activities carry modelled
// controller cycles; the batch pool uses it to attribute cycles to live
// progress cells as shards complete.
type CycleCoster interface {
	ActivityCycles(act Activity) int64
}

// WorkerPublisher is implemented by engines whose instances accumulate
// counters outside their activities (the finder engines' cumulative step
// counts). The batch pool publishes every worker instance once, in
// worker order, after the pool drains.
type WorkerPublisher interface {
	PublishWorkerMetrics(reg *metrics.Registry)
}

// Seeds is one read's SMEM sets on both strands (Reverse is against the
// reverse-complemented read).
type Seeds struct {
	Forward []smem.Match
	Reverse []smem.Match
}

// ReadSeeder is the optional steady-state hot-path capability: seeding a
// single read into caller-owned buffers. SeedReadInto appends the read's
// SMEM sets into dst's slices (reslicing them to length zero first, so
// their backing arrays are reused across calls) and reports whether this
// instance supports the allocation-free path — false means dst is
// untouched and the caller must fall back to SeedTrace. For engines
// returning true, a warmed-up instance performs zero heap allocations per
// read; the allocation regression suite (TestSeedZeroAlloc) pins this for
// the casa, cpu and fmindex engines. Implementations may keep internal
// scratch on the instance, so the usual Clone-per-worker rule applies.
type ReadSeeder interface {
	SeedReadInto(dst *Seeds, read dna.Sequence) bool
}

// Positioner is implemented by engines that can drive alignment: both
// strands' SMEMs plus the reference positions behind a match. Only CASA
// models the hit-position path (the CAM rows are position-addressed);
// the baselines model SMEM search alone.
type Positioner interface {
	ReadSeeds(res Result) []Seeds
	HitPositions(strand dna.Sequence, m smem.Match, maxHits int) []int32
}

// Unwrapper exposes the concrete engine behind an adapter
// (*core.Accelerator, *ert.Accelerator, ...) for callers that need the
// full native API; Build is the typed front door.
type Unwrapper interface {
	Unwrap() any
}

// Options are the cross-engine construction knobs. Zero values mean the
// engine's defaults; knobs an engine has no counterpart for are ignored.
// Config overrides every knob with a full engine-specific configuration.
type Options struct {
	// MinSMEM is the minimum reported SMEM length (0 = the engines'
	// shared default, 19).
	MinSMEM int

	// Partition is the partition/segment size in bases for the
	// partitioned engines (casa, genax, gencache). 0 keeps the engine
	// default; CASA additionally shrinks the default down to fit small
	// references in one partition.
	Partition int

	// TableK is the seed-table k-mer width of the hash-table engines
	// (genax, gencache); 0 = default. Benchmarks and tests shrink it so
	// table memory scales with the test reference.
	TableK int

	// CacheBytes is the multi-bank seed-table cache capacity of the
	// caching engines (gencache); 0 = default.
	CacheBytes int64

	// Exact requests the golden-comparable configuration: the engine's
	// forward-strand SMEMs must equal the brute-force finder's by
	// definition. It forces a single partition (partition overlap
	// double-counts hits), disables output-changing shortcuts (CASA's
	// exact-match prepass, GenCache's fast-seeding bypass) and shrinks
	// pivot k-mers below MinSMEM where validation requires it. The
	// registry conformance and fuzz harnesses build every engine this
	// way.
	Exact bool

	// Shards is the shard count of the sharded composite engines
	// (sharded:<inner>); 0 = their default. The flat engines ignore it.
	Shards int

	// ShardOverlap is the inter-shard overlap in bases of the sharded
	// composite engines; it must be at least the longest read seeded, or
	// SMEMs spanning a shard boundary are lost. 0 = their default. The
	// flat engines ignore it.
	ShardOverlap int

	// Config, when non-nil, must hold the engine's native configuration
	// (core.Config for casa, ert.AccelConfig for ert, ...) and is used
	// verbatim; every other knob is ignored.
	Config any
}
