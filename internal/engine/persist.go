package engine

import (
	"fmt"
	"io"
	"strings"

	"casa/internal/fmindex"
	"casa/internal/idxio"
	"casa/internal/smem"
)

// IndexPersister is the optional persistence capability: engines that
// can serialize their built indexes into a casa-idx container and
// reconstruct themselves from one. SaveIndex appends only the sections
// the engine owns; LoadIndex consumes them in the same order on an
// instance produced by the factory's NewEmpty. Engines without the
// capability rebuild from FASTA (Factory.NewEmpty == nil documents the
// excuse).
type IndexPersister interface {
	SaveIndex(w *idxio.Writer) error
	LoadIndex(r *idxio.Reader) error
}

// HeaderFor assembles the container header recorded alongside an
// engine's sections: the registry name, the cross-engine options the
// engine was built with and the reference's chromosome map.
func HeaderFor(name string, opt Options, chroms []idxio.Chromosome) idxio.Header {
	return idxio.Header{
		Engine:       name,
		MinSMEM:      opt.MinSMEM,
		Partition:    opt.Partition,
		TableK:       opt.TableK,
		CacheBytes:   opt.CacheBytes,
		Exact:        opt.Exact,
		Shards:       opt.Shards,
		ShardOverlap: opt.ShardOverlap,
		Chromosomes:  chroms,
	}
}

// OptionsFromHeader restores the cross-engine options a container was
// built with, so a loaded engine reports the same MinSMEM (etc.) the
// builder used.
func OptionsFromHeader(hdr idxio.Header) Options {
	return Options{
		MinSMEM:      hdr.MinSMEM,
		Partition:    hdr.Partition,
		TableK:       hdr.TableK,
		CacheBytes:   hdr.CacheBytes,
		Exact:        hdr.Exact,
		Shards:       hdr.Shards,
		ShardOverlap: hdr.ShardOverlap,
	}
}

// SaveIndex writes a complete casa-idx container for e to w: header,
// the engine's sections, end marker. opt must be the options e was
// built with (they are recorded in the header and re-applied on load);
// chroms is the reference's chromosome map (may be nil for a bare
// flattened reference).
func SaveIndex(w io.Writer, e Engine, opt Options, chroms []idxio.Chromosome) error {
	p, ok := e.(IndexPersister)
	if !ok {
		return fmt.Errorf("engine: %s does not support index persistence", e.Name())
	}
	iw, err := idxio.NewWriter(w, HeaderFor(e.Name(), opt, chroms))
	if err != nil {
		return err
	}
	if err := p.SaveIndex(iw); err != nil {
		return err
	}
	return iw.Close()
}

// LoadIndex reads a casa-idx container and reconstructs the engine that
// wrote it, resolving the engine through the registry so every consumer
// (CLIs, server, tests) loads any persisting engine the same way.
func LoadIndex(r io.Reader) (Engine, idxio.Header, error) {
	ir, hdr, err := idxio.NewReader(r)
	if err != nil {
		return nil, hdr, err
	}
	f, ok := Lookup(hdr.Engine)
	if !ok {
		return nil, hdr, fmt.Errorf("engine: index built by unknown engine %q (registered: %s)",
			hdr.Engine, strings.Join(Names(), ", "))
	}
	if f.NewEmpty == nil {
		return nil, hdr, fmt.Errorf("engine: %s does not support index persistence", f.Name)
	}
	e, err := f.NewEmpty(OptionsFromHeader(hdr))
	if err != nil {
		return nil, hdr, err
	}
	p, ok := e.(IndexPersister)
	if !ok {
		return nil, hdr, fmt.Errorf("engine: %s: NewEmpty returned a non-persisting engine", f.Name)
	}
	if err := p.LoadIndex(ir); err != nil {
		return nil, hdr, err
	}
	if err := ir.Close(); err != nil {
		return nil, hdr, err
	}
	return e, hdr, nil
}

// saveBidirectional persists a bidirectional FM-index finder as two
// sections, "<prefix>fwd" and "<prefix>rev", one serialized FMIndex
// each. The fmindex and cpu engines share it (with their own prefixes),
// as does every sharded composite wrapping them.
func saveBidirectional(w *idxio.Writer, prefix string, f *smem.Bidirectional) error {
	pw := w.Prefixed(prefix)
	if err := pw.Section("fwd", f.Index.Fwd.Serialize); err != nil {
		return err
	}
	return pw.Section("rev", f.Index.Rev.Serialize)
}

// loadBidirectional reads saveBidirectional's sections back, checking
// the two indexes describe the same text (Rev indexes its reversal).
func loadBidirectional(r *idxio.Reader, prefix string) (*smem.Bidirectional, error) {
	pr := r.Prefixed(prefix)
	sec, err := pr.Section("fwd")
	if err != nil {
		return nil, err
	}
	fwd, err := fmindex.Deserialize(sec)
	if err != nil {
		return nil, fmt.Errorf("engine: section %q: %w", prefix+"fwd", err)
	}
	sec, err = pr.Section("rev")
	if err != nil {
		return nil, err
	}
	rev, err := fmindex.Deserialize(sec)
	if err != nil {
		return nil, fmt.Errorf("engine: section %q: %w", prefix+"rev", err)
	}
	ft, rt := fwd.Text(), rev.Text()
	if len(ft) != len(rt) {
		return nil, fmt.Errorf("engine: sections %q/%q index texts of different lengths (%d, %d)",
			prefix+"fwd", prefix+"rev", len(ft), len(rt))
	}
	for i, b := range ft {
		if rt[len(rt)-1-i] != b {
			return nil, fmt.Errorf("engine: section %q does not index the reversal of %q (base %d)",
				prefix+"rev", prefix+"fwd", i)
		}
	}
	return smem.FromIndex(&fmindex.Bidirectional{Fwd: fwd, Rev: rev}), nil
}
