package engine

import (
	"fmt"

	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/smem"
	"casa/internal/trace"
)

// cpuEngine adapts the software BWA-MEM2-class CPU seeding baseline.
type cpuEngine struct{ s *cpu.Seeder }

// CPU wraps an already-built CPU seeder as an Engine.
func CPU(s *cpu.Seeder) Engine { return cpuEngine{s} }

func (e cpuEngine) Name() string  { return "cpu" }
func (e cpuEngine) Clone() Engine { return cpuEngine{e.s.Clone()} }

func (e cpuEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.s.SeedTrace(reads, tb, base)
}

func (e cpuEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	return e.s.Reduce(typedActs[*cpu.Activity](acts)...)
}

func (e cpuEngine) SMEMs(res Result) [][]smem.Match {
	return res.(*cpu.Result).Reads
}

// SeedReadInto implements ReadSeeder: both strands are searched through
// the seeder's per-clone scratch into dst's reused buffers.
func (e cpuEngine) SeedReadInto(dst *Seeds, read dna.Sequence) bool {
	dst.Forward, dst.Reverse = e.s.SeedReadInto(dst.Forward[:0], dst.Reverse[:0], read)
	return true
}

func (e cpuEngine) Model(res Result) Model {
	r := res.(*cpu.Result)
	return Model{Seconds: r.Seconds, ReadsPerS: r.Throughput}
}

func (e cpuEngine) Unwrap() any { return e.s }

func cpuFactory() Factory {
	return Factory{
		Name:        "cpu",
		Aliases:     []string{"bwa"},
		Description: "software BWA-MEM2-class FM-index seeding with the multicore memory model",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := cpu.B12T()
			switch c := opt.Config.(type) {
			case nil:
				if opt.MinSMEM > 0 {
					cfg.MinSMEM = opt.MinSMEM
				}
			case cpu.Config:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: cpu: Config is %T, want cpu.Config", opt.Config)
			}
			s, err := cpu.New(ref, cfg)
			if err != nil {
				return nil, err
			}
			return cpuEngine{s}, nil
		},
	}
}
