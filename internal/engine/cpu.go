package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"casa/internal/cpu"
	"casa/internal/dna"
	"casa/internal/idxio"
	"casa/internal/smem"
	"casa/internal/trace"
)

// cpuEngine adapts the software BWA-MEM2-class CPU seeding baseline.
type cpuEngine struct{ s *cpu.Seeder }

// CPU wraps an already-built CPU seeder as an Engine.
func CPU(s *cpu.Seeder) Engine { return &cpuEngine{s} }

func (e *cpuEngine) Name() string  { return "cpu" }
func (e *cpuEngine) Clone() Engine { return &cpuEngine{e.s.Clone()} }

func (e *cpuEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.s.SeedTrace(reads, tb, base)
}

func (e *cpuEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	return e.s.Reduce(typedActs[*cpu.Activity](acts)...)
}

func (e *cpuEngine) SMEMs(res Result) [][]smem.Match {
	return res.(*cpu.Result).Reads
}

// SeedReadInto implements ReadSeeder: both strands are searched through
// the seeder's per-clone scratch into dst's reused buffers.
func (e *cpuEngine) SeedReadInto(dst *Seeds, read dna.Sequence) bool {
	dst.Forward, dst.Reverse = e.s.SeedReadInto(dst.Forward[:0], dst.Reverse[:0], read)
	return true
}

func (e *cpuEngine) Model(res Result) Model {
	r := res.(*cpu.Result)
	return Model{Seconds: r.Seconds, ReadsPerS: r.Throughput}
}

func (e *cpuEngine) Unwrap() any { return e.s }

// SaveIndex implements IndexPersister: the platform configuration (the
// cost model is part of the engine's identity) plus the shared
// bidirectional FM-index sections under the "cpu/" prefix.
func (e *cpuEngine) SaveIndex(w *idxio.Writer) error {
	if err := w.Section("cpu/config", func(sw io.Writer) error {
		return writeCPUConfig(sw, e.s.Config())
	}); err != nil {
		return err
	}
	return saveBidirectional(w, "cpu/", e.s.Finder())
}

// LoadIndex implements IndexPersister on a NewEmpty instance.
func (e *cpuEngine) LoadIndex(r *idxio.Reader) error {
	sec, err := r.Section("cpu/config")
	if err != nil {
		return err
	}
	cfg, err := readCPUConfig(sec)
	if err != nil {
		return fmt.Errorf("engine: section %q: %w", "cpu/config", err)
	}
	f, err := loadBidirectional(r, "cpu/")
	if err != nil {
		return err
	}
	s, err := cpu.FromFinder(f, cfg)
	if err != nil {
		return err
	}
	e.s = s
	return nil
}

// writeCPUConfig / readCPUConfig persist cpu.Config manually (the name
// length-prefixed, integers as u64, floats as IEEE-754 bits) so the
// payload is byte-stable across Go versions, unlike encoding/gob.
func writeCPUConfig(w io.Writer, cfg cpu.Config) error {
	var buf []byte
	if len(cfg.Name) > 1<<10 {
		return fmt.Errorf("engine: cpu config name of %d bytes", len(cfg.Name))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cfg.Name)))
	buf = append(buf, cfg.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Threads))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.MinSMEM))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.LatencyNS))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.MissRate))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.OverheadFactor))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.SocketWatts))
	_, err := w.Write(buf)
	return err
}

func readCPUConfig(r io.Reader) (cpu.Config, error) {
	var cfg cpu.Config
	var lb [2]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return cfg, err
	}
	nameLen := binary.LittleEndian.Uint16(lb[:])
	if nameLen > 1<<10 {
		return cfg, fmt.Errorf("config name length %d exceeds the format limit", nameLen)
	}
	body := make([]byte, int(nameLen)+6*8)
	if _, err := io.ReadFull(r, body); err != nil {
		return cfg, err
	}
	cfg.Name = string(body[:nameLen])
	u := body[nameLen:]
	cfg.Threads = int(binary.LittleEndian.Uint64(u[0:]))
	cfg.MinSMEM = int(binary.LittleEndian.Uint64(u[8:]))
	cfg.LatencyNS = math.Float64frombits(binary.LittleEndian.Uint64(u[16:]))
	cfg.MissRate = math.Float64frombits(binary.LittleEndian.Uint64(u[24:]))
	cfg.OverheadFactor = math.Float64frombits(binary.LittleEndian.Uint64(u[32:]))
	cfg.SocketWatts = math.Float64frombits(binary.LittleEndian.Uint64(u[40:]))
	return cfg, nil
}

func cpuFactory() Factory {
	return Factory{
		Name:        "cpu",
		Aliases:     []string{"bwa"},
		Description: "software BWA-MEM2-class FM-index seeding with the multicore memory model",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := cpu.B12T()
			switch c := opt.Config.(type) {
			case nil:
				if opt.MinSMEM > 0 {
					cfg.MinSMEM = opt.MinSMEM
				}
			case cpu.Config:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: cpu: Config is %T, want cpu.Config", opt.Config)
			}
			s, err := cpu.New(ref, cfg)
			if err != nil {
				return nil, err
			}
			return &cpuEngine{s}, nil
		},
		NewEmpty: func(Options) (Engine, error) {
			// The serialized cpu/config section carries the platform
			// configuration; header options are informational.
			return &cpuEngine{}, nil
		},
	}
}
