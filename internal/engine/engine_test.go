package engine_test

import (
	"strings"
	"testing"

	"casa/internal/core"
	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/readsim"
	"casa/internal/smem"
)

func testRef(t *testing.T) dna.Sequence {
	t.Helper()
	return readsim.GenerateReference(readsim.DefaultGenome(1<<13, 3))
}

func TestListOrderAndGolden(t *testing.T) {
	base := []string{"casa", "ert", "genax", "gencache", "cpu", "fmindex", "brute"}
	want := append([]string{}, base...)
	// package shard's init registers one composite per flat engine, in
	// the flat registration order.
	for _, n := range base {
		want = append(want, "sharded:"+n)
	}
	got := engine.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registration order %v, want %v", got, want)
	}
	for _, f := range engine.List() {
		// Golden-ness propagates through the sharded composite: the
		// sharded oracle is still an oracle.
		if f.Golden != (strings.TrimPrefix(f.Name, "sharded:") == "brute") {
			t.Errorf("%s: Golden=%v", f.Name, f.Golden)
		}
		if f.Description == "" {
			t.Errorf("%s: no description", f.Name)
		}
	}
}

func TestLookupAliases(t *testing.T) {
	for alias, name := range map[string]string{
		"bruteforce": "brute", "golden": "brute", "bwa": "cpu", "fm": "fmindex",
		"sharded:golden": "sharded:brute", "sharded:fm": "sharded:fmindex",
	} {
		f, ok := engine.Lookup(alias)
		if !ok || f.Name != name {
			t.Errorf("Lookup(%q) = %v, %v; want factory %q", alias, f.Name, ok, name)
		}
	}
}

func TestUnknownEngineError(t *testing.T) {
	_, err := engine.New("warp-drive", testRef(t), engine.Options{})
	if err == nil {
		t.Fatal("no error for unknown engine")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "engine: unknown engine") {
		t.Errorf("error %q should carry the registry's prefix", msg)
	}
	for _, name := range engine.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q should list registered engine %q", msg, name)
		}
	}
}

func TestBuildUnwrapsConcreteType(t *testing.T) {
	ref := testRef(t)
	cfg := core.DefaultConfig()
	cfg.PartitionBases = len(ref)
	acc, err := engine.Build[*core.Accelerator]("casa", ref, engine.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Config().PartitionBases != len(ref) {
		t.Fatalf("Config override not applied: %+v", acc.Config())
	}
	if _, err := engine.Build[*core.Accelerator]("ert", ref, engine.Options{}); err == nil {
		t.Fatal("Build should reject a type mismatch")
	}
}

func TestConfigTypeMismatch(t *testing.T) {
	ref := testRef(t)
	for _, name := range []string{"casa", "ert", "genax", "gencache", "cpu", "sharded:casa"} {
		if _, err := engine.New(name, ref, engine.Options{Config: 42}); err == nil {
			t.Errorf("%s: accepted a bogus Config", name)
		}
	}
}

func TestEveryEngineSeedsAndReduces(t *testing.T) {
	ref := testRef(t)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(8, 7)))
	for _, f := range engine.List() {
		e, err := engine.New(f.Name, ref, engine.Options{MinSMEM: 19, TableK: 8})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if e.Name() != f.Name {
			t.Errorf("%s: Name() = %q", f.Name, e.Name())
		}
		c := e.Clone()
		act := c.SeedTrace(reads, nil, 0)
		res := c.Reduce(reads, []engine.Activity{act})
		got := c.SMEMs(res)
		if len(got) != len(reads) {
			t.Fatalf("%s: %d SMEM sets for %d reads", f.Name, len(got), len(reads))
		}
		total := 0
		for _, ms := range got {
			total += len(ms)
		}
		if total == 0 {
			t.Errorf("%s: no SMEMs on an error-free workload", f.Name)
		}
	}
}

func TestOptionalInterfaces(t *testing.T) {
	ref := testRef(t)
	modeled := map[string]bool{"casa": true, "ert": true, "genax": true, "gencache": true, "cpu": true}
	for _, f := range engine.List() {
		e, err := engine.New(f.Name, ref, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		// Sharded composites forward every capability dynamically, so
		// they satisfy Modeler and CycleCoster for any inner engine
		// (reporting zero when the inner has no model).
		sharded := strings.HasPrefix(f.Name, "sharded:")
		if _, ok := e.(engine.Modeler); ok != (modeled[f.Name] || sharded) {
			t.Errorf("%s: Modeler=%v, want %v", f.Name, ok, modeled[f.Name] || sharded)
		}
		// Positioner stays casa-only: sharded per-shard hit positions are
		// shard-local and deliberately not exposed as global positions.
		if _, ok := e.(engine.Positioner); ok != (f.Name == "casa") {
			t.Errorf("%s: Positioner=%v", f.Name, ok)
		}
		if _, ok := e.(engine.CycleCoster); ok != (f.Name == "casa" || sharded) {
			t.Errorf("%s: CycleCoster=%v", f.Name, ok)
		}
		if _, ok := e.(engine.Unwrapper); !ok {
			t.Errorf("%s: no Unwrapper", f.Name)
		}
	}
}

func TestExactModeIsGoldenComparable(t *testing.T) {
	// A smoke check here; the full randomized conformance harness lives
	// in internal/smem (TestRegistryEnginesMatchGolden).
	ref := testRef(t)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(4, 11)))
	golden := smem.BruteForce{Ref: ref}
	for _, f := range engine.List() {
		if f.Golden {
			continue
		}
		e, err := engine.New(f.Name, ref, engine.Options{MinSMEM: 19, TableK: 7, Exact: true})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		act := e.SeedTrace(reads, nil, 0)
		got := e.SMEMs(e.Reduce(reads, []engine.Activity{act}))
		for i, read := range reads {
			if want := golden.FindSMEMs(read, 19); !smem.Equal(want, got[i]) {
				t.Errorf("%s read %d:\n got %v\nwant %v", f.Name, i, got[i], want)
			}
		}
	}
}

func TestWriteList(t *testing.T) {
	var sb strings.Builder
	engine.WriteList(&sb)
	out := sb.String()
	for _, name := range engine.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("listing misses %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "bruteforce") {
		t.Errorf("listing misses aliases:\n%s", out)
	}
}
