package engine

import (
	"casa/internal/dna"
	"casa/internal/smem"
)

// Positions resolves the reference occurrences of read[m.Start..m.End]
// by direct scan — the engine-agnostic positioning fallback for engines
// without native hit location (see Positioner, which casa implements
// with its k-mer filter banks). max <= 0 returns all occurrences.
//
// O(len(ref) × SMEM length) per call: fine for demo-scale references,
// not for production genomes.
func Positions(ref, read dna.Sequence, m smem.Match, max int) []int32 {
	if m.Start < 0 || m.End >= len(read) {
		return nil
	}
	pat := read[m.Start : m.End+1]
	var out []int32
scan:
	for p := 0; p+len(pat) <= len(ref); p++ {
		for i, b := range pat {
			if ref[p+i] != b {
				continue scan
			}
		}
		out = append(out, int32(p))
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
