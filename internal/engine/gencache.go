package engine

import (
	"fmt"

	"casa/internal/dna"
	"casa/internal/gencache"
	"casa/internal/smem"
	"casa/internal/trace"
)

// gencacheEngine adapts the GenCache baseline accelerator.
type gencacheEngine struct{ a *gencache.Accelerator }

// GenCache wraps an already-built GenCache accelerator as an Engine.
func GenCache(a *gencache.Accelerator) Engine { return gencacheEngine{a} }

func (e gencacheEngine) Name() string  { return "gencache" }
func (e gencacheEngine) Clone() Engine { return gencacheEngine{e.a.Clone()} }

func (e gencacheEngine) SeedTrace(reads []dna.Sequence, tb *trace.Buffer, base int) Activity {
	return e.a.SeedTrace(reads, tb, base)
}

// Reduce replays the order-sensitive multi-bank cache over the recorded
// per-shard fetch streams, so the Result matches a sequential run.
func (e gencacheEngine) Reduce(_ []dna.Sequence, acts []Activity) Result {
	return e.a.Reduce(typedActs[*gencache.Activity](acts)...)
}

func (e gencacheEngine) SMEMs(res Result) [][]smem.Match {
	return res.(*gencache.Result).Reads
}

func (e gencacheEngine) Model(res Result) Model {
	r := res.(*gencache.Result)
	return Model{Seconds: r.Seconds, ReadsPerS: r.Throughput}
}

func (e gencacheEngine) Unwrap() any { return e.a }

func gencacheFactory() Factory {
	return Factory{
		Name:        "gencache",
		Description: "GenCache baseline: GenAx seeding behind a multi-bank seed-table cache with an exact-match bypass",
		New: func(ref dna.Sequence, opt Options) (Engine, error) {
			cfg := gencache.DefaultConfig()
			switch c := opt.Config.(type) {
			case nil:
				cfg.GenAx = genaxConfig(ref, opt)
				if opt.CacheBytes > 0 {
					cfg.CacheBytes = opt.CacheBytes
				}
				if opt.Exact {
					// The bypass reports the matching strand only and
					// counts hits within one segment; exact output
					// needs the full SMEM path.
					cfg.FastSeeding = false
				}
			case gencache.Config:
				cfg = c
			default:
				return nil, fmt.Errorf("engine: gencache: Config is %T, want gencache.Config", opt.Config)
			}
			a, err := gencache.New(ref, cfg)
			if err != nil {
				return nil, err
			}
			return gencacheEngine{a}, nil
		},
	}
}
