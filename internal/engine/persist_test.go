package engine_test

import (
	"bytes"
	"strings"
	"testing"

	"casa/internal/dna"
	"casa/internal/engine"
	"casa/internal/idxio"
	"casa/internal/readsim"
	"casa/internal/smem"
)

// nonPersisters documents why each engine without Factory.NewEmpty gets
// away with rebuilding from FASTA, mirroring the allocation suite's
// excuse map: an engine may only skip persistence for a reason stated
// here, and a stale excuse (the engine learned to persist) fails too.
var nonPersisters = map[string]string{
	"brute":    "definition-based scan of the raw reference; there is no index to persist",
	"ert":      "radix tree builds in one linear pass over the reference; rebuild is as fast as loading",
	"genax":    "seed hash table builds in one linear pass; rebuild is as fast as loading",
	"gencache": "seed hash table builds in one linear pass; rebuild is as fast as loading",
}

func TestIndexPersistenceCoverage(t *testing.T) {
	for _, f := range engine.List() {
		base := strings.TrimPrefix(f.Name, "sharded:")
		_, excused := nonPersisters[base]
		if f.NewEmpty == nil && !excused {
			t.Errorf("%s: does not persist and carries no documented excuse", f.Name)
		}
		if f.NewEmpty != nil && excused {
			t.Errorf("%s: persists now; drop its stale excuse", f.Name)
		}
	}
}

// TestIndexRoundTripSMEMsIdentical pins the acceptance criterion at the
// engine layer: for every persisting engine, an instance loaded from a
// serialized index produces per-read SMEM sets identical to the fresh
// FASTA-built instance that wrote it (the CLI smoke extends this to
// byte-identical casa-smem reports).
func TestIndexRoundTripSMEMsIdentical(t *testing.T) {
	ref := testRef(t)
	reads := readsim.Sequences(readsim.Simulate(ref, readsim.DefaultProfile(16, 5)))
	chroms := []idxio.Chromosome{{Name: "chr1", Start: 0, Length: int64(len(ref))}}
	for _, f := range engine.List() {
		opt := engine.Options{MinSMEM: 19, TableK: 8, Shards: 2}
		built, err := engine.New(f.Name, ref, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if f.NewEmpty == nil {
			if err := engine.SaveIndex(&bytes.Buffer{}, built, opt, chroms); err == nil {
				t.Errorf("%s: SaveIndex should fail for a non-persisting engine", f.Name)
			}
			continue
		}
		var buf bytes.Buffer
		if err := engine.SaveIndex(&buf, built, opt, chroms); err != nil {
			t.Fatalf("%s: SaveIndex: %v", f.Name, err)
		}
		loaded, hdr, err := engine.LoadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: LoadIndex: %v", f.Name, err)
		}
		if hdr.Engine != f.Name || hdr.MinSMEM != 19 || len(hdr.Chromosomes) != 1 ||
			hdr.Chromosomes[0] != chroms[0] {
			t.Fatalf("%s: header round trip: %+v", f.Name, hdr)
		}
		if loaded.Name() != built.Name() {
			t.Fatalf("%s: loaded engine is %q", f.Name, loaded.Name())
		}
		want := seedAll(built, reads)
		got := seedAll(loaded, reads)
		for i := range reads {
			if !smem.Equal(want[i], got[i]) {
				t.Fatalf("%s read %d:\nfresh  %v\nloaded %v", f.Name, i, want[i], got[i])
			}
		}

		// The container must also survive an inspection pass.
		hdr2, infos, err := idxio.ReadInfo(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadInfo: %v", f.Name, err)
		}
		if hdr2.Engine != f.Name || len(infos) == 0 {
			t.Fatalf("%s: ReadInfo: engine %q, %d sections", f.Name, hdr2.Engine, len(infos))
		}
	}
}

func seedAll(e engine.Engine, reads []dna.Sequence) [][]smem.Match {
	c := e.Clone()
	act := c.SeedTrace(reads, nil, 0)
	return c.SMEMs(c.Reduce(reads, []engine.Activity{act}))
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, _, err := engine.LoadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid container naming an unknown engine must list the registry.
	var buf bytes.Buffer
	w, err := idxio.NewWriter(&buf, idxio.Header{Engine: "warp-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = engine.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "warp-drive") || !strings.Contains(err.Error(), "casa") {
		t.Fatalf("err = %v", err)
	}
}

// A truncated container must fail cleanly on load, whatever the engine.
func TestLoadIndexRejectsTruncation(t *testing.T) {
	ref := testRef(t)
	for _, name := range []string{"casa", "cpu", "fmindex"} {
		opt := engine.Options{MinSMEM: 19}
		built, err := engine.New(name, ref, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := engine.SaveIndex(&buf, built, opt, nil); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for _, cut := range []int{len(data) / 3, len(data) - 7} {
			if _, _, err := engine.LoadIndex(bytes.NewReader(data[:cut])); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
	}
}
