package pairing

import (
	"math/rand"
	"testing"

	"casa/internal/dna"
	"casa/internal/readsim"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Error(err)
	}
	for i, mutate := range []func(*Options){
		func(o *Options) { o.MinInsert = 0 },
		func(o *Options) { o.MaxInsert = o.MinInsert },
		func(o *Options) { o.Band = 0 },
		func(o *Options) { o.MinRescuePercent = 101 },
		func(o *Options) { o.Scoring.Match = 0 },
	} {
		o := DefaultOptions()
		mutate(&o)
		if o.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProper(t *testing.T) {
	opt := DefaultOptions()
	fwd := Mate{Mapped: true, Pos: 1000, RefLen: 101}
	rev := Mate{Mapped: true, Pos: 1300, RefLen: 101, Reverse: true}
	ok, tlen := Proper(fwd, rev, opt)
	if !ok || tlen != 401 {
		t.Errorf("Proper = %v, %d; want true, 401", ok, tlen)
	}
	// Order independence.
	if ok2, tlen2 := Proper(rev, fwd, opt); !ok2 || tlen2 != 401 {
		t.Error("Proper not symmetric")
	}
	// Same strand: never proper.
	if ok, _ := Proper(fwd, Mate{Mapped: true, Pos: 1300, RefLen: 101}, opt); ok {
		t.Error("FF pair reported proper")
	}
	// RF orientation (reverse left of forward): not proper.
	if ok, _ := Proper(Mate{Mapped: true, Pos: 1400, RefLen: 101},
		Mate{Mapped: true, Pos: 1000, RefLen: 101, Reverse: true}, opt); ok {
		t.Error("RF pair reported proper")
	}
	// Insert outside the window.
	far := Mate{Mapped: true, Pos: 9000, RefLen: 101, Reverse: true}
	if ok, _ := Proper(fwd, far, opt); ok {
		t.Error("oversized insert reported proper")
	}
	// Unmapped mate.
	if ok, _ := Proper(fwd, Mate{}, opt); ok {
		t.Error("unmapped mate reported proper")
	}
}

func TestRescueForwardPartner(t *testing.T) {
	// Partner maps forward; the mate should be rescued downstream on the
	// reverse strand.
	ref := readsim.GenerateReference(readsim.DefaultGenome(20000, 1))
	pairs := readsim.SimulatePairs(ref, readsim.DefaultPairProfile(20, 3))
	opt := DefaultOptions()
	rescued := 0
	for _, p := range pairs {
		partner := Mate{Mapped: true, Pos: p.R1.Origin, RefLen: len(p.R1.Seq)}
		// R2.Seq is passed exactly as sequenced (reverse-complemented by
		// the simulator); Rescue undoes the orientation itself.
		m, ok := Rescue(ref, p.R2.Seq, partner, opt)
		if !ok {
			continue
		}
		rescued++
		if !m.Reverse {
			t.Fatal("rescued mate must be on the reverse strand")
		}
		if m.Pos != p.R2.Origin && m.EditDist > p.R2.Errors {
			t.Errorf("rescued at %d (edit %d), true origin %d", m.Pos, m.EditDist, p.R2.Origin)
		}
		if proper, _ := Proper(partner, m, opt); !proper {
			t.Errorf("rescued pair not proper: partner %d, mate %d", partner.Pos, m.Pos)
		}
	}
	if rescued < len(pairs)*8/10 {
		t.Errorf("rescued only %d/%d mates", rescued, len(pairs))
	}
}

func TestRescueReversePartner(t *testing.T) {
	ref := readsim.GenerateReference(readsim.DefaultGenome(20000, 2))
	pairs := readsim.SimulatePairs(ref, readsim.DefaultPairProfile(20, 5))
	opt := DefaultOptions()
	rescued := 0
	for _, p := range pairs {
		partner := Mate{Mapped: true, Pos: p.R2.Origin, RefLen: len(p.R2.Seq), Reverse: true}
		m, ok := Rescue(ref, p.R1.Seq, partner, opt)
		if !ok {
			continue
		}
		rescued++
		if m.Reverse {
			t.Fatal("rescued mate must be on the forward strand")
		}
		if proper, _ := Proper(partner, m, opt); !proper {
			t.Errorf("rescued pair not proper")
		}
	}
	if rescued < len(pairs)*8/10 {
		t.Errorf("rescued only %d/%d mates", rescued, len(pairs))
	}
}

func TestRescueRejectsForeignMate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := readsim.GenerateReference(readsim.DefaultGenome(20000, 3))
	partner := Mate{Mapped: true, Pos: 5000, RefLen: 101}
	foreign := make(dna.Sequence, 101)
	for i := range foreign {
		foreign[i] = dna.Base(rng.Intn(4))
	}
	if _, ok := Rescue(ref, foreign, partner, DefaultOptions()); ok {
		t.Error("random sequence rescued")
	}
}

func TestRescueEdgeCases(t *testing.T) {
	ref := readsim.GenerateReference(readsim.DefaultGenome(5000, 4))
	opt := DefaultOptions()
	if _, ok := Rescue(ref, nil, Mate{Mapped: true, Pos: 100, RefLen: 101}, opt); ok {
		t.Error("empty mate rescued")
	}
	if _, ok := Rescue(ref, ref[:101].Clone(), Mate{}, opt); ok {
		t.Error("unmapped partner used for rescue")
	}
	// Partner near the reference end: window clamps, may fail gracefully.
	partner := Mate{Mapped: true, Pos: len(ref) - 102, RefLen: 101}
	Rescue(ref, ref[:101].Clone(), partner, opt) // must not panic
}
